// Quickstart: build a small program with the assembler, run it on the
// out-of-order core with TEA attached, and print the time-proportional
// Per-Instruction Cycle Stacks — the Figure 1 worked example, end to
// end.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/pics"
	"repro/internal/program"
)

func main() {
	// A loop whose load misses deep into the memory hierarchy and whose
	// branch is perfectly predictable — so the PICS should attribute
	// almost all time to the load, under cache-miss signatures.
	b := program.NewBuilder("quickstart")
	buf := b.Alloc(16<<20, 4096) // 16 MiB: exceeds the 2 MiB LLC
	b.Func("main")
	b.MoviU(isa.X(1), buf)
	b.Movi(isa.X(2), 0)
	b.Movi(isa.X(3), 20000)
	b.Label("loop")
	b.Load(isa.X(4), isa.X(1), 0)       // I1: the performance-critical load
	b.Add(isa.X(5), isa.X(4), isa.X(2)) // I2: depends on I1
	b.Addi(isa.X(1), isa.X(1), 832)     // I3: stride crosses lines and pages
	b.Addi(isa.X(2), isa.X(2), 1)       // I4
	b.Blt(isa.X(2), isa.X(3), "loop")   // I5: well-predicted branch
	b.Halt()
	prog := b.MustBuild()

	// Attach TEA (sampling) and the golden reference (per-cycle) to the
	// same core: both observe the exact same execution.
	c := cpu.New(cpu.DefaultConfig(), prog)
	teaCfg := core.DefaultConfig()
	teaCfg.IntervalCycles = 256
	teaCfg.JitterCycles = 16
	tea := core.NewTEA(c, teaCfg)
	golden := core.NewGolden(c)
	c.Attach(tea)
	c.Attach(golden)

	stats := c.Run()
	fmt.Printf("ran %d instructions in %d cycles (IPC %.2f), %d TEA samples\n\n",
		stats.Committed, stats.Cycles, stats.IPC(), tea.SampleCnt)

	total := golden.Profile().Total()
	fmt.Println("TEA Per-Instruction Cycle Stacks (top 5):")
	for _, pc := range tea.Profile().TopInstructions(5) {
		fmt.Print(tea.Profile().RenderInstruction(pc, prog, total))
	}

	fmt.Printf("\nTEA error vs the golden reference: %.1f%%\n",
		100*pics.Error(tea.Profile(), golden.Profile()))
	fmt.Println("\nReading the stacks: the load carries (ST-L1,ST-LLC) and")
	fmt.Println("(ST-L1,ST-TLB,...) signatures — it misses the caches and the TLB and")
	fmt.Println("its latency is what the core exposes. The ALU ops and the branch are")
	fmt.Println("'Base': they commit in parallel without events.")
}
