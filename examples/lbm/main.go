// The lbm case study (Section 6, Figures 10 and 11): TEA identifies a
// streaming load whose LLC misses are not hidden, software prefetching
// is applied, and the prefetch distance is swept — the load-latency
// bottleneck shrinks until store bandwidth (DR-SQ) takes over.
package main

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/events"
)

func main() {
	rc := analysis.DefaultRunConfig()
	rc.Scale = 0.5

	fmt.Println("=== Figure 10: why is lbm slow? ===")
	tp := analysis.CaseStudyLBM(rc)
	total := tp.Golden.Total()
	pc := tp.PCs[0]
	in := tp.Run.Program.Inst(pc)
	fmt.Printf("\nTEA's top instruction: %s\n", in.String())
	fmt.Print(tp.TEA.RenderInstruction(pc, tp.Run.Program, total))
	fmt.Println("\nThe leading load of each source line misses the LLC — (ST-L1,ST-LLC) —")
	fmt.Println("and its latency is not hidden: the loop body fills the ROB, so the next")
	fmt.Println("iteration's loads issue too late. Fix: software prefetching.")

	fmt.Println("\n=== Figure 11: prefetch distance sweep ===")
	pts := analysis.PrefetchSweep(rc, []int{0, 1, 2, 3, 4, 5, 6})
	fmt.Printf("\n%-9s %10s %8s %12s %12s\n", "distance", "cycles", "speedup", "load LLC-miss", "store DR-SQ")
	for _, pt := range pts {
		var loadLLC, storeDRSQ float64
		for sig, v := range pt.LoadStack {
			if sig.Has(events.STLLC) {
				loadLLC += v
			}
		}
		for sig, v := range pt.StoreStack {
			if sig.Has(events.DRSQ) {
				storeDRSQ += v
			}
		}
		gt := pt.Run.Golden.Total()
		fmt.Printf("%-9d %10d %7.2fx %11.1f%% %11.1f%%\n",
			pt.Distance, pt.Cycles, pt.Speedup, 100*loadLLC/gt, 100*storeDRSQ/gt)
	}
	fmt.Println("\nAs distance grows, the top load's LLC-miss component vanishes (its")
	fmt.Println("time becomes ST-L1 'LLC hit') and the bottleneck moves toward store")
	fmt.Println("bandwidth — the paper's 1.28x speedup at the interior optimum.")
}
