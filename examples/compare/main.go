// Compare: run one benchmark once and profile it with every technique
// simultaneously — TEA, NCI-TEA, IBS, SPE, RIS — against the golden
// reference, demonstrating the out-of-band evaluation methodology of
// Section 4 (all techniques sample the exact same cycles).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/pics"
	"repro/internal/workloads"
)

func main() {
	bench := flag.String("bench", "fotonik3d", "benchmark to compare on")
	flag.Parse()

	w, err := workloads.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rc := analysis.DefaultRunConfig()
	br := analysis.RunBenchmark(w, rc)

	fmt.Printf("benchmark %s: %d cycles, IPC %.2f (%s)\n\n",
		w.Name, br.Stats.Cycles, br.Stats.IPC(), w.Behavior)

	fmt.Printf("%-10s %18s %18s\n", "technique", "instruction error", "function error")
	for _, prof := range br.Techniques() {
		fmt.Printf("%-10s %17.1f%% %17.1f%%\n",
			prof.Name,
			100*pics.Error(prof, br.Golden),
			100*pics.ErrorByFunction(prof, br.Golden, br.Program))
	}

	fmt.Println("\nTop instruction, per technique (height as % of execution):")
	total := br.Golden.Total()
	profiles := append([]*pics.Profile{br.Golden}, br.Techniques()...)
	for _, prof := range profiles {
		top := prof.TopInstructions(1)
		if len(top) == 0 {
			continue
		}
		in := br.Program.Inst(top[0])
		fmt.Printf("  %-10s -> %-24s (%5.1f%%)\n",
			prof.Name, in.String(), 100*prof.Insts[top[0]].Total()/total)
	}
	fmt.Println("\nTime-proportional techniques find the instruction the core exposes the")
	fmt.Println("latency of; dispatch/fetch tagging finds whatever passes the front-end")
	fmt.Println("while that instruction stalls.")
}
