// Trace replay: capture one execution as a TraceDoctor-style binary
// trace, then profile it offline as many times as you like — the
// capture-once / analyze-many methodology the paper uses to evaluate 15
// configurations from a single FPGA run (Section 4).
package main

import (
	"bytes"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/pics"
	"repro/internal/profilers"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	// 1. Run the core once, with only the trace writer attached.
	w, err := workloads.ByName("bwaves")
	if err != nil {
		fail(err)
	}
	prog := w.Build(2000)
	c := cpu.New(cpu.DefaultConfig(), prog)
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	c.Attach(tw)
	stats := c.Run()
	if tw.Err() != nil {
		fail(tw.Err())
	}
	fmt.Printf("captured %s: %d cycles -> %d trace bytes (%.1f B/cycle, %d records)\n\n",
		w.Name, stats.Cycles, buf.Len(), float64(buf.Len())/float64(stats.Cycles), tw.Records)

	// 2. Replay the trace into any set of profilers — no re-simulation.
	golden := core.NewGolden(nil)
	teaCfg := core.DefaultConfig()
	teaCfg.IntervalCycles = 256
	teaCfg.JitterCycles = 16
	tea := core.NewTEA(nil, teaCfg)
	ibs := profilers.NewIBS(256, 16, 9)
	if _, err := trace.Replay(bytes.NewReader(buf.Bytes()), golden, tea, ibs); err != nil {
		fail(err)
	}

	fmt.Println("offline profiles from the trace:")
	for _, prof := range []*pics.Profile{tea.Profile(), ibs.Profile()} {
		fmt.Printf("  %-4s error vs golden: %5.1f%%\n",
			prof.Name, 100*pics.Error(prof, golden.Profile()))
	}

	// 3. Replay again with a different sampling interval — same trace.
	tea2 := core.NewTEA(nil, core.Config{IntervalCycles: 1024, JitterCycles: 64, Seed: 3,
		Set: teaCfg.Set})
	if _, err := trace.Replay(bytes.NewReader(buf.Bytes()), tea2); err != nil {
		fail(err)
	}
	fmt.Printf("  TEA at 4x sparser sampling: %5.1f%% error\n",
		100*pics.Error(tea2.Profile(), golden.Profile()))
	fmt.Println("\nOne capture, many analyses: techniques sample the exact same cycles,")
	fmt.Println("so accuracy comparisons are apples to apples.")
}

// fail reports a diagnostic error and exits nonzero — examples fail
// loudly, they never crash with a stack trace.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracereplay:", err)
	os.Exit(1)
}
