// The nab case study (Section 6, Figure 12): TEA shows that an fsqrt
// is performance-critical with an all-Base stack — its latency simply
// is not hidden — and that the serializing fsflags/frflags accesses
// around the preceding comparison flush the pipeline (FL-EX). Removing
// them (the -ffast-math effect) yields a ~2x speedup.
package main

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/events"
	"repro/internal/isa"
)

func main() {
	rc := analysis.DefaultRunConfig()
	rc.Scale = 0.5

	st := analysis.CaseStudyNAB(rc)
	tp := st.PICS
	total := tp.Golden.Total()

	fmt.Println("=== Figure 12: why is nab slow? ===")
	fmt.Println("\nTEA PICS for the hottest instructions:")
	for _, pc := range tp.PCs {
		fmt.Print(tp.TEA.RenderInstruction(pc, tp.Run.Program, total))
	}

	// Find the fsqrt and csrflush in the profile.
	var sqrtBase, flexCycles float64
	for pc, stack := range tp.Golden.Insts {
		in := tp.Run.Program.Inst(pc)
		if in == nil {
			continue
		}
		for sig, v := range stack {
			if in.Op == isa.OpFSqrt && sig == 0 {
				sqrtBase += v
			}
			if sig.Has(events.FLEX) {
				flexCycles += v
			}
		}
	}
	fmt.Printf("\nfsqrt.d time with no events (Base): %.1f%% of execution\n", 100*sqrtBase/total)
	fmt.Printf("serializing flag accesses (FL-EX): %.1f%% of execution\n", 100*flexCycles/total)
	fmt.Println("\nThe fsqrt is critical *because* the preceding csrflush (fsflags/")
	fmt.Println("frflags) flushed the pipeline, so the fsqrt issues too late for its")
	fmt.Println("latency to be hidden. TEA's accuracy lets the developer trust both the")
	fmt.Println("fsqrt's Base time and the FL-EX attribution.")

	fmt.Printf("\nFix: relax IEEE 754 compliance (remove the flag accesses):\n")
	fmt.Printf("  baseline:  %d cycles\n", st.BaselineCycles)
	fmt.Printf("  fast-math: %d cycles\n", st.FastMathCycles)
	fmt.Printf("  speedup:   %.2fx (paper: 1.96x / 2.45x)\n", st.FastMathSpeedup)
}
