package profilers

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/events"
	"repro/internal/isa"
	"repro/internal/pics"
	"repro/internal/program"
)

func TestDTEAConstruction(t *testing.T) {
	d := NewDTEA(256, 16, 1)
	if d.Profile().Name != NameDTEA {
		t.Errorf("name = %q", d.Profile().Name)
	}
	if d.Profile().Set != events.TEASet {
		t.Errorf("D-TEA must track TEA's full event set")
	}
	if d.point != TagDispatch {
		t.Errorf("D-TEA must tag at dispatch")
	}
}

func TestAblationLadderShape(t *testing.T) {
	ladder := AblationLadder()
	if len(ladder) < 4 {
		t.Fatalf("ladder has %d rungs", len(ladder))
	}
	if ladder[0].Set != 0 {
		t.Errorf("first rung should be TIP (no events)")
	}
	if ladder[len(ladder)-1].Set != events.TEASet {
		t.Errorf("last rung should be TEA's full set")
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i].Set.Bits() <= ladder[i-1].Set.Bits() {
			t.Errorf("ladder bits not strictly ascending at rung %d", i)
		}
		// Each rung is a superset of the previous.
		for _, e := range ladder[i-1].Set.Events() {
			if !ladder[i].Set.Has(e) {
				t.Errorf("rung %d dropped event %v from rung %d", i, e, i-1)
			}
		}
	}
}

func TestRunAblationProducesAllRungs(t *testing.T) {
	b := program.NewBuilder("ab")
	arr := b.Alloc(8<<20, 4096)
	b.Func("main")
	b.MoviU(isa.X(1), arr)
	b.Movi(isa.X(2), 0)
	b.Movi(isa.X(3), 600)
	b.Label("top")
	b.Load(isa.X(4), isa.X(1), 0)
	b.Addi(isa.X(1), isa.X(1), 8192)
	b.Addi(isa.X(2), isa.X(2), 1)
	b.Blt(isa.X(2), isa.X(3), "top")
	b.Halt()
	c := cpu.New(cpu.DefaultConfig(), b.MustBuild())
	rungs, golden, ladder := RunAblation(c, 128, 8, 3)
	if len(rungs) != len(ladder) {
		t.Fatalf("got %d rung profiles for %d rungs", len(rungs), len(ladder))
	}
	if golden.Total() == 0 {
		t.Fatalf("golden profile empty")
	}
	for i, prof := range rungs {
		if prof.Total() == 0 {
			t.Errorf("rung %d profile empty", i)
		}
		if e := pics.Error(prof, golden); e > 0.25 {
			t.Errorf("rung %d error %.3f vs projected golden, want small", i, e)
		}
	}
}
