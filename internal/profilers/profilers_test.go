package profilers

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/events"
	"repro/internal/isa"
	"repro/internal/pics"
	"repro/internal/program"
	"repro/internal/stats"
)

// memStallLoop is a pointer-advancing loop whose load misses the LLC on
// every iteration: the load dominates commit stalls while independent
// ALU work dispatches during the stall — the exact situation where
// front-end tagging goes wrong (Section 2).
func memStallLoop(n int64) *program.Program {
	b := program.NewBuilder("memstall")
	base := b.Alloc(32<<20, 64)
	b.Func("main")
	b.MoviU(isa.X(1), base)
	b.Movi(isa.X(2), 0)
	b.Movi(isa.X(3), n)
	b.Label("top")
	b.Load(isa.X(4), isa.X(1), 0)
	b.Add(isa.X(5), isa.X(4), isa.X(2)) // depends on the load
	// Independent filler that dispatches while the load stalls commit.
	for i := 0; i < 12; i++ {
		b.Addi(isa.X(6+i%4), isa.X(0), int64(i))
	}
	b.Addi(isa.X(1), isa.X(1), 8192)
	b.Addi(isa.X(2), isa.X(2), 1)
	b.Blt(isa.X(2), isa.X(3), "top")
	b.Halt()
	return b.MustBuild()
}

// flushLoop triggers serializing flushes every iteration (the nab
// pattern), where NCI selection misattributes Flushed samples.
func flushLoop(n int64) *program.Program {
	b := program.NewBuilder("flushloop")
	b.Func("main")
	b.Movi(isa.X(1), 7)
	b.FMovI(isa.F(1), isa.X(1))
	b.Movi(isa.X(9), 0)
	b.Movi(isa.X(10), n)
	b.Label("top")
	b.CsrFlush()
	b.FSqrt(isa.F(2), isa.F(1))
	b.FAdd(isa.F(3), isa.F(2), isa.F(1))
	b.Addi(isa.X(9), isa.X(9), 1)
	b.Blt(isa.X(9), isa.X(10), "top")
	b.Halt()
	return b.MustBuild()
}

type harness struct {
	golden *core.TEA
	tea    *core.TEA
	nci    *NCITEA
	ibs    *FrontEndTagger
	spe    *FrontEndTagger
	ris    *FrontEndTagger
	stats  *cpu.Stats
}

func runAll(t *testing.T, p *program.Program, interval uint64) *harness {
	t.Helper()
	c := cpu.New(cpu.DefaultConfig(), p)
	h := &harness{
		golden: core.NewGolden(c),
		nci:    NewNCITEA(interval, interval/16, 3),
		ibs:    NewIBS(interval, interval/16, 4),
		spe:    NewSPE(interval, interval/16, 5),
		ris:    NewRIS(interval, interval/16, 6),
	}
	cfg := core.DefaultConfig()
	cfg.IntervalCycles = interval
	cfg.JitterCycles = interval / 16
	cfg.Seed = 2
	h.tea = core.NewTEA(c, cfg)
	for _, pr := range []cpu.Probe{h.golden, h.tea, h.nci, h.ibs, h.spe, h.ris} {
		c.Attach(pr)
	}
	h.stats = c.Run()
	return h
}

func TestAccuracyOrderingOnMemoryStalls(t *testing.T) {
	h := runAll(t, memStallLoop(3000), 512)
	g := h.golden.Profile()
	teaErr := pics.Error(h.tea.Profile(), g)
	ibsErr := pics.Error(h.ibs.Profile(), g)
	speErr := pics.Error(h.spe.Profile(), g)
	risErr := pics.Error(h.ris.Profile(), g)
	if teaErr > 0.15 {
		t.Errorf("TEA error = %v, want small", teaErr)
	}
	// The paper's headline: dispatch/fetch tagging is dramatically less
	// accurate because the sampled instruction is whatever dispatches
	// during the stall, not the stalling load.
	// Fixed iteration order keeps failure messages stable across runs
	// (ranging over a map literal reports in random order).
	for _, c := range []struct {
		name string
		err  float64
	}{{"IBS", ibsErr}, {"SPE", speErr}, {"RIS", risErr}} {
		if c.err < 2*teaErr {
			t.Errorf("%s error = %v, TEA = %v; front-end tagging should be much worse", c.name, c.err, teaErr)
		}
		if c.err < 0.2 {
			t.Errorf("%s error = %v, expected large error on stall-heavy code", c.name, c.err)
		}
	}
}

func TestNCIMisattributesFlushes(t *testing.T) {
	h := runAll(t, flushLoop(400), 256)
	g := h.golden.Profile()
	teaErr := pics.Error(h.tea.Profile(), g)
	nciErr := pics.Error(h.nci.Profile(), g)
	if teaErr > 0.2 {
		t.Errorf("TEA error = %v on flush loop, want small", teaErr)
	}
	if nciErr < teaErr {
		t.Errorf("NCI-TEA error (%v) should exceed TEA error (%v) on flush-heavy code", nciErr, teaErr)
	}
	// NCI attributes Flushed samples to the *next* instruction: the
	// fsqrt after the csrflush. TEA attributes them to the csrflush.
	var csrPC, sqrtPC uint64
	prog := flushLoop(400)
	for i := range prog.Insts {
		switch prog.Insts[i].Op {
		case isa.OpCsrFlush:
			csrPC = isa.PCOf(i)
		case isa.OpFSqrt:
			sqrtPC = isa.PCOf(i)
		}
	}
	teaCsr := h.tea.Profile().Insts[csrPC].Total()
	nciCsr := 0.0
	if st := h.nci.Profile().Insts[csrPC]; st != nil {
		nciCsr = st.Total()
	}
	if teaCsr == 0 {
		t.Fatalf("TEA attributed nothing to the flushing csrflush")
	}
	if nciCsr >= teaCsr {
		t.Errorf("NCI csrflush attribution (%v) should be below TEA's (%v)", nciCsr, teaCsr)
	}
	_ = sqrtPC
}

func TestTaggersDropSquashedSamples(t *testing.T) {
	// Ordering-violation program: squashes occur, so some tagged µops
	// never commit.
	b := program.NewBuilder("squashy")
	base := b.Alloc(4096, 64)
	b.Func("main")
	b.MoviU(isa.X(1), base)
	b.Movi(isa.X(2), 3)
	b.Movi(isa.X(9), 0)
	b.Movi(isa.X(10), 300)
	b.Label("top")
	b.Movi(isa.X(4), 800)
	b.Movi(isa.X(5), 2)
	b.Div(isa.X(4), isa.X(4), isa.X(5))
	b.Div(isa.X(4), isa.X(4), isa.X(5))
	b.Add(isa.X(3), isa.X(1), isa.X(4))
	b.Addi(isa.X(3), isa.X(3), -200)
	b.Store(isa.X(3), isa.X(2), 0)
	b.Load(isa.X(6), isa.X(1), 0)
	b.Add(isa.X(7), isa.X(6), isa.X(6))
	b.Addi(isa.X(9), isa.X(9), 1)
	b.Blt(isa.X(9), isa.X(10), "top")
	b.Halt()
	p := b.MustBuild()

	c := cpu.New(cpu.DefaultConfig(), p)
	ibs := NewIBS(64, 8, 9)
	c.Attach(ibs)
	st := c.Run()
	if st.Violations == 0 {
		t.Fatalf("program did not trigger ordering violations")
	}
	if ibs.Dropped == 0 {
		t.Errorf("IBS dropped no samples despite %d squashed µops", st.Squashed)
	}
	if ibs.Samples == 0 {
		t.Errorf("IBS recorded no samples at all")
	}
}

func TestTaggerEventSetsRestrictSignatures(t *testing.T) {
	h := runAll(t, memStallLoop(800), 256)
	for _, tc := range []struct {
		prof *pics.Profile
		set  events.Set
	}{
		{h.ibs.Profile(), events.IBSSet},
		{h.spe.Profile(), events.SPESet},
		{h.ris.Profile(), events.RISSet},
	} {
		for pc, st := range tc.prof.Insts {
			for sig := range st {
				if sig.Mask(tc.set) != sig {
					t.Errorf("%s signature %v at %#x outside its event set",
						tc.prof.Name, sig, pc)
				}
			}
		}
	}
}

func TestCountersMatchGoldenEventPresence(t *testing.T) {
	p := memStallLoop(500)
	c := cpu.New(cpu.DefaultConfig(), p)
	cnt := NewCounters()
	g := core.NewGolden(c)
	c.Attach(cnt)
	c.Attach(g)
	c.Run()

	// The loop's load must show LLC miss counts.
	found := false
	for pc := range cnt.Counts {
		if cnt.EventCount(pc, events.STLLC) > 100 {
			found = true
		}
	}
	if !found {
		t.Errorf("counters did not record the recurring LLC misses")
	}
	// Executions must cover every instruction the golden profile saw.
	for pc := range g.Profile().Insts {
		if cnt.Executions[pc] == 0 {
			t.Errorf("no execution count for profiled pc %#x", pc)
		}
	}
}

func TestEventStatsCombinedFraction(t *testing.T) {
	// Strided loads over a huge region: every page transition produces
	// a combined (ST-L1/ST-LLC/ST-TLB) signature.
	p := memStallLoop(600)
	c := cpu.New(cpu.DefaultConfig(), p)
	es := NewEventStats()
	c.Attach(es)
	c.Run()
	if es.Total == 0 || es.WithEvent == 0 {
		t.Fatalf("event stats empty: %+v", es)
	}
	if es.Combined == 0 {
		t.Errorf("stride-8K loads should produce combined cache+TLB events")
	}
	f := es.CombinedFraction()
	if f <= 0 || f > 1 {
		t.Errorf("combined fraction = %v out of range", f)
	}
}

func TestStallProbeCollectsDurations(t *testing.T) {
	p := memStallLoop(400)
	c := cpu.New(cpu.DefaultConfig(), p)
	sp := NewStallProbe()
	c.Attach(sp)
	c.Run()
	if len(sp.EventStalls) == 0 {
		t.Fatalf("no event-carrying stalls recorded for a memory-bound loop")
	}
	// Event-carrying stalls (LLC misses) must be much longer than
	// event-free stalls — the Section 3 interpretability argument.
	p99free := stats.Percentile(sp.EventFreeStalls, 99)
	meanEvent := stats.Mean(sp.EventStalls)
	if len(sp.EventFreeStalls) > 0 && p99free > meanEvent {
		t.Errorf("p99 event-free stall %v exceeds mean event stall %v", p99free, meanEvent)
	}
}

func TestProfilerInterfaceCompliance(t *testing.T) {
	var _ Profiler = (*FrontEndTagger)(nil)
	var _ Profiler = (*NCITEA)(nil)
	var _ Profiler = (*core.TEA)(nil)
}
