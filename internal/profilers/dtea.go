package profilers

import (
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/events"
	"repro/internal/pics"
)

// NameDTEA names the dispatch-tagged TEA configuration.
const NameDTEA = "D-TEA"

// NewDTEA builds the dispatch-tagged TEA variant the paper evaluated
// but omitted for space (Section 5): TEA's full nine-event set combined
// with IBS-style dispatch tagging. The paper notes it "yields similar
// accuracy to IBS, SPE, and RIS" — demonstrating that the event set is
// not what separates TEA from the front-end taggers; time-proportional
// selection is.
func NewDTEA(interval, jitter, seed uint64) *FrontEndTagger {
	return newTagger(NameDTEA, TagDispatch, events.TEASet, interval, jitter, seed)
}

// EventSetAblation evaluates the Figure 3 tradeoff: the accuracy of a
// time-proportional TEA unit when its PSV tracks progressively larger
// event sets drawn from the event hierarchies. Smaller sets cost fewer
// bits but merge components; the error is measured against a golden
// reference projected onto the same set, so it isolates *sampling*
// accuracy — the interpretability loss is visible in the shrinking
// component count instead.
type EventSetAblation struct {
	// Name labels the configuration (e.g. "2-bit stall-only").
	Name string
	// Set is the tracked event set.
	Set events.Set
}

// AblationLadder returns the PSV-width ladder of Figure 3, from a
// single stall bit to TEA's full nine events.
func AblationLadder() []EventSetAblation {
	return []EventSetAblation{
		{"0-bit (TIP: no events)", 0},
		{"2-bit stalls (ST-L1, ST-TLB)", events.NewSet(events.STL1, events.STTLB)},
		{"3-bit stalls (+ST-LLC)", events.NewSet(events.STL1, events.STTLB, events.STLLC)},
		{"6-bit (+flushes)", events.NewSet(events.STL1, events.STTLB, events.STLLC,
			events.FLMB, events.FLEX, events.FLMO)},
		{"9-bit (TEA: +drain events)", events.TEASet},
	}
}

// RunAblation attaches one TEA unit per ladder rung plus a golden
// reference to a single core and returns each rung's profile alongside
// the golden profile.
func RunAblation(c *cpu.CPU, interval, jitter, seed uint64) (rungs []*pics.Profile, golden *pics.Profile, ladder []EventSetAblation) {
	g := core.NewGolden(c)
	c.Attach(g)
	ladder = AblationLadder()
	units := make([]*core.TEA, len(ladder))
	for i, rung := range ladder {
		cfg := core.DefaultConfig()
		cfg.IntervalCycles = interval
		cfg.JitterCycles = jitter
		cfg.Seed = seed
		cfg.Set = rung.Set
		units[i] = core.NewTEA(c, cfg)
		c.Attach(units[i])
	}
	c.Run()
	rungs = make([]*pics.Profile, len(units))
	for i, u := range units {
		rungs[i] = u.Profile()
		rungs[i].Name = ladder[i].Name
	}
	return rungs, g.Profile(), ladder
}
