// Package profilers implements the performance-analysis approaches the
// paper compares TEA against: the instruction-driven front-end-tagging
// techniques (AMD IBS and Arm SPE tag at dispatch, IBM RIS tags at
// fetch), NCI-TEA (TEA's events with Intel PEBS' next-committing-
// instruction selection), TIP (time-proportional addresses without
// events), and event-driven PMC counting. All are cpu.Probes, so every
// technique samples the exact same cycles of the same execution — the
// paper's single-trace evaluation methodology.
package profilers

import (
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/events"
	"repro/internal/pics"
)

// Technique names used across the evaluation.
const (
	NameTEA    = "TEA"
	NameNCITEA = "NCI-TEA"
	NameIBS    = "IBS"
	NameSPE    = "SPE"
	NameRIS    = "RIS"
	NameTIP    = "TIP"
	NameGolden = "golden"
)

// Profiler is the common interface of every technique: run as a probe,
// then produce a PICS profile.
type Profiler interface {
	cpu.Probe
	Profile() *pics.Profile
}

// ---------------------------------------------------------------------------
// Front-end tagging (IBS, SPE, RIS)

// TagPoint selects the pipeline stage at which a technique tags the
// instruction whose events it records.
type TagPoint uint8

const (
	// TagDispatch tags the next dispatched instruction (AMD IBS, Arm
	// SPE).
	TagDispatch TagPoint = iota
	// TagFetch tags the next fetched instruction (IBM RIS instruction
	// groups are formed in the fetch stage).
	TagFetch
)

// FrontEndTagger models IBS/SPE/RIS: at each sample point it arms the
// tagger; the next instruction passing the tag stage is tracked, and
// when it commits, the sample records its address and the events it
// was subjected to (restricted to the technique's event set). Tagged
// instructions that are squashed drop the sample, as real hardware
// does. Tagging in the front-end is exactly what makes these
// techniques non-time-proportional (Section 2).
type FrontEndTagger struct {
	cpu.BaseProbe
	name    string
	point   TagPoint
	set     events.Set
	sampler *core.Sampler

	armed   bool
	hasTag  bool
	tagged  uint64 // sequence number of the tagged instruction
	profile *pics.Profile

	Samples uint64
	Dropped uint64
}

// NewIBS models AMD Instruction-Based Sampling (dispatch tagging).
func NewIBS(interval, jitter, seed uint64) *FrontEndTagger {
	return newTagger(NameIBS, TagDispatch, events.IBSSet, interval, jitter, seed)
}

// NewSPE models the Arm Statistical Profiling Extension (dispatch
// tagging, SPE event set).
func NewSPE(interval, jitter, seed uint64) *FrontEndTagger {
	return newTagger(NameSPE, TagDispatch, events.SPESet, interval, jitter, seed)
}

// NewRIS models IBM Random Instruction Sampling (fetch tagging).
func NewRIS(interval, jitter, seed uint64) *FrontEndTagger {
	return newTagger(NameRIS, TagFetch, events.RISSet, interval, jitter, seed)
}

func newTagger(name string, point TagPoint, set events.Set, interval, jitter, seed uint64) *FrontEndTagger {
	prof := pics.NewProfile(name, set)
	prof.Seed = seed
	return &FrontEndTagger{
		name:    name,
		point:   point,
		set:     set,
		sampler: core.NewSeededSampler(interval, jitter, seed),
		profile: prof,
	}
}

// Profile returns the technique's PICS.
func (f *FrontEndTagger) Profile() *pics.Profile { return f.profile }

// OnCycle arms the tagger at each sample point.
func (f *FrontEndTagger) OnCycle(ci *cpu.CycleInfo) {
	if f.sampler.Fires(ci.Cycle) {
		f.armed = true
	}
}

// OnFetch tags at fetch for RIS. The tag is the sequence number: it is
// stable across hooks and a squash always drops the tag before the same
// sequence number is re-fetched, so matching is exact.
func (f *FrontEndTagger) OnFetch(r cpu.Ref, cycle uint64) {
	if f.point == TagFetch && f.armed && !f.hasTag {
		f.armed = false
		f.hasTag = true
		f.tagged = r.Seq
	}
}

// OnDispatch tags at dispatch for IBS/SPE.
func (f *FrontEndTagger) OnDispatch(r cpu.Ref, cycle uint64) {
	if f.point == TagDispatch && f.armed && !f.hasTag {
		f.armed = false
		f.hasTag = true
		f.tagged = r.Seq
	}
}

// OnCommit records the sample when the tagged instruction retires; its
// PSV is final here.
func (f *FrontEndTagger) OnCommit(r cpu.Ref, cycle uint64) {
	if f.hasTag && r.Seq == f.tagged {
		f.profile.Add(r.PC, r.PSV, float64(f.sampler.Interval()))
		f.Samples++
		f.hasTag = false
	}
}

// OnSquash drops the sample if the tagged instruction is squashed.
func (f *FrontEndTagger) OnSquash(r cpu.Ref, cycle uint64) {
	if f.hasTag && r.Seq == f.tagged {
		f.hasTag = false
		f.Dropped++
	}
}

// ---------------------------------------------------------------------------
// NCI-TEA

// NCITEA combines TEA's event set with the Next-Committing-Instruction
// selection policy of Intel PEBS: every sample — including those taken
// in the Flushed state — is attributed to the instruction that commits
// next. That misattributes flush cost to the instruction *after* the
// mispredicted branch or excepting instruction, which is exactly the
// inaccuracy Section 5.1 quantifies against TEA's last-committed
// selection.
type NCITEA struct {
	cpu.BaseProbe
	sampler *core.Sampler
	pending float64 // weight awaiting the next commit
	profile *pics.Profile
}

// NewNCITEA builds the NCI-TEA configuration.
func NewNCITEA(interval, jitter, seed uint64) *NCITEA {
	prof := pics.NewProfile(NameNCITEA, events.TEASet)
	prof.Seed = seed
	return &NCITEA{
		sampler: core.NewSeededSampler(interval, jitter, seed),
		profile: prof,
	}
}

// Profile returns the technique's PICS.
func (n *NCITEA) Profile() *pics.Profile { return n.profile }

// OnCycle attributes Compute samples to the oldest committing µop and
// defers every other state to the next commit.
func (n *NCITEA) OnCycle(ci *cpu.CycleInfo) {
	if !n.sampler.Fires(ci.Cycle) {
		return
	}
	w := float64(n.sampler.Interval())
	if ci.State == events.Compute && len(ci.Committed) > 0 {
		r := ci.Committed[0]
		n.profile.Add(r.PC, r.PSV, w)
		return
	}
	// Stalled, Drained, and crucially also Flushed: next commit.
	n.pending += w
}

// OnCommit resolves deferred samples.
func (n *NCITEA) OnCommit(r cpu.Ref, cycle uint64) {
	if n.pending != 0 {
		n.profile.Add(r.PC, r.PSV, n.pending)
		n.pending = 0
	}
}

// ---------------------------------------------------------------------------
// Event-driven counting (PMC-style)

// Counters is the event-driven approach of Section 5.3: it counts, per
// static instruction, how many dynamic executions were subjected to
// each performance event — the per-instruction view a PMC-based
// profiler provides. The Figure 7 study correlates these counts with
// the events' true impact from the golden reference.
type Counters struct {
	cpu.BaseProbe
	// Counts maps PC -> per-event dynamic occurrence counts.
	Counts map[uint64]*[events.NumEvents]uint64
	// Executions counts committed dynamic executions per PC.
	Executions map[uint64]uint64
}

// NewCounters builds the counting probe.
func NewCounters() *Counters {
	return &Counters{
		Counts:     make(map[uint64]*[events.NumEvents]uint64),
		Executions: make(map[uint64]uint64),
	}
}

// OnCommit counts the committed instruction's events.
func (c *Counters) OnCommit(r cpu.Ref, cycle uint64) {
	c.Executions[r.PC]++
	if r.PSV == 0 {
		return
	}
	arr := c.Counts[r.PC]
	if arr == nil {
		arr = new([events.NumEvents]uint64)
		c.Counts[r.PC] = arr
	}
	for _, e := range r.PSV.Events() {
		arr[e]++
	}
}

// EventCount returns the number of dynamic executions of pc subjected
// to event e.
func (c *Counters) EventCount(pc uint64, e events.Event) uint64 {
	if arr := c.Counts[pc]; arr != nil {
		return arr[e]
	}
	return 0
}

// ---------------------------------------------------------------------------
// Dynamic-execution event statistics

// EventStats measures the combined-event statistics of Section 5.2: of
// all dynamic executions subjected to at least one event, how many saw
// two or more (combined events)?
type EventStats struct {
	cpu.BaseProbe
	Total     uint64 // committed dynamic instructions
	WithEvent uint64 // subjected to >= 1 event
	Combined  uint64 // subjected to >= 2 events
}

// NewEventStats builds the probe.
func NewEventStats() *EventStats { return &EventStats{} }

// OnCommit classifies the committed instruction's signature.
func (s *EventStats) OnCommit(r cpu.Ref, cycle uint64) {
	s.Total++
	if r.PSV == 0 {
		return
	}
	s.WithEvent++
	if r.PSV.IsCombined() {
		s.Combined++
	}
}

// CombinedFraction returns the fraction of event-subjected executions
// that saw combined events (the paper reports 30.0%).
func (s *EventStats) CombinedFraction() float64 {
	if s.WithEvent == 0 {
		return 0
	}
	return float64(s.Combined) / float64(s.WithEvent)
}

// ---------------------------------------------------------------------------
// Unattributed-stall analysis

// StallProbe measures, for every committed instruction that stalled
// commit, how many cycles it stalled and whether TEA assigned it any
// event — the Section 3 analysis showing that 99% of event-free commit
// stalls are shorter than 5.8 cycles, i.e. TEA's nine events capture
// everything that can majorly impact performance.
type StallProbe struct {
	cpu.BaseProbe
	haveCur      bool
	currentSeq   uint64
	currentPSV   events.PSV
	currentStall uint64
	// EventFreeStalls collects stall durations of instructions with an
	// empty PSV; EventStalls those with at least one event.
	EventFreeStalls []float64
	EventStalls     []float64
}

// NewStallProbe builds the probe.
func NewStallProbe() *StallProbe { return &StallProbe{} }

// OnCycle accumulates consecutive Stalled cycles per head µop.
func (s *StallProbe) OnCycle(ci *cpu.CycleInfo) {
	if ci.State == events.Stalled {
		if !s.haveCur || s.currentSeq != ci.Head.Seq {
			s.flush()
			s.haveCur = true
			s.currentSeq = ci.Head.Seq
			s.currentPSV = 0
		}
		s.currentStall++
		return
	}
	s.flush()
}

// OnCommit captures the stalled head's final signature: every stall run
// ends with its head committing (the head only leaves the ROB by
// commit), and OnCommit fires before the OnCycle that ends the run.
func (s *StallProbe) OnCommit(r cpu.Ref, cycle uint64) {
	if s.haveCur && r.Seq == s.currentSeq {
		s.currentPSV = r.PSV
	}
}

func (s *StallProbe) flush() {
	if !s.haveCur || s.currentStall == 0 {
		s.haveCur = false
		s.currentStall = 0
		return
	}
	if s.currentPSV == 0 {
		s.EventFreeStalls = append(s.EventFreeStalls, float64(s.currentStall))
	} else {
		s.EventStalls = append(s.EventStalls, float64(s.currentStall))
	}
	s.haveCur = false
	s.currentStall = 0
}

// OnDone flushes the trailing stall.
func (s *StallProbe) OnDone(total uint64) { s.flush() }
