package program

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestBuilderForwardAndBackwardLabels(t *testing.T) {
	b := NewBuilder("labels")
	b.Func("main")
	b.Movi(isa.X(1), 0)
	b.Label("loop")
	b.Addi(isa.X(1), isa.X(1), 1)
	b.Movi(isa.X(2), 10)
	b.Blt(isa.X(1), isa.X(2), "loop") // backward
	b.Beq(isa.X(1), isa.X(2), "done") // forward
	b.Nop()
	b.Label("done")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	loopIdx, doneIdx := 1, 6
	if p.Insts[3].Target != loopIdx {
		t.Errorf("backward branch target = %d, want %d", p.Insts[3].Target, loopIdx)
	}
	if p.Insts[4].Target != doneIdx {
		t.Errorf("forward branch target = %d, want %d", p.Insts[4].Target, doneIdx)
	}
	if p.Insts[loopIdx].Label != "loop" || p.Insts[doneIdx].Label != "done" {
		t.Errorf("labels not attached to instructions")
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.Func("main")
	b.Jmp("nowhere")
	b.Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("expected undefined-label error, got %v", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("dup")
	b.Label("a").Nop()
	b.Label("a").Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("expected duplicate-label error, got %v", err)
	}
}

func TestBuilderTrailingLabel(t *testing.T) {
	b := NewBuilder("trail")
	b.Nop()
	b.Label("end")
	if _, err := b.Build(); err == nil {
		t.Fatalf("expected error for label after last instruction")
	}
}

func TestFuncBoundariesAndLookup(t *testing.T) {
	b := NewBuilder("funcs")
	b.Func("first")
	b.Nop().Nop().Nop()
	b.Func("second")
	b.Nop().Nop()
	b.Func("third")
	b.Halt()
	p := b.MustBuild()
	if len(p.Funcs) != 3 {
		t.Fatalf("got %d functions, want 3", len(p.Funcs))
	}
	cases := map[int]string{0: "first", 2: "first", 3: "second", 4: "second", 5: "third"}
	for idx, want := range cases {
		if got := p.FuncOf(idx); got != want {
			t.Errorf("FuncOf(%d) = %q, want %q", idx, got, want)
		}
	}
	if got := p.FuncOf(99); got != "<unknown>" {
		t.Errorf("FuncOf(out of range) = %q", got)
	}
	if got := p.FuncOfPC(isa.PCOf(3)); got != "second" {
		t.Errorf("FuncOfPC = %q, want second", got)
	}
}

func TestAllocAlignmentAndNonOverlap(t *testing.T) {
	b := NewBuilder("alloc")
	a1 := b.Alloc(100, 64)
	a2 := b.Alloc(8, 4096)
	a3 := b.Alloc(16, 0) // default align 8
	if a1%64 != 0 || a2%4096 != 0 || a3%8 != 0 {
		t.Errorf("misaligned allocations: %#x %#x %#x", a1, a2, a3)
	}
	if a2 < a1+100 {
		t.Errorf("allocations overlap: a1=%#x+100 a2=%#x", a1, a2)
	}
	if a3 < a2+8 {
		t.Errorf("allocations overlap: a2=%#x+8 a3=%#x", a2, a3)
	}
	if a1 < DataBase {
		t.Errorf("allocation below DataBase")
	}
}

func TestSetWordAndData(t *testing.T) {
	b := NewBuilder("data")
	addr := b.Alloc(16, 8)
	b.SetWord(addr, 42)
	b.SetWord(addr+8, 99)
	b.Nop().Halt()
	p := b.MustBuild()
	if p.Data[addr] != 42 || p.Data[addr+8] != 99 {
		t.Errorf("data image wrong: %v", p.Data)
	}
}

func TestSetWordUnaligned(t *testing.T) {
	b := NewBuilder("unaligned")
	b.SetWord(DataBase+3, 1)
	b.Nop()
	if _, err := b.Build(); err == nil {
		t.Fatalf("expected unaligned SetWord error")
	}
}

func TestInstLookupByPC(t *testing.T) {
	b := NewBuilder("pc")
	b.Func("main")
	b.Movi(isa.X(1), 7)
	b.Halt()
	p := b.MustBuild()
	in := p.Inst(isa.PCOf(0))
	if in == nil || in.Op != isa.OpMovi {
		t.Fatalf("Inst(PCOf(0)) = %v", in)
	}
	if p.Inst(isa.PCOf(5)) != nil {
		t.Errorf("out-of-range PC should return nil")
	}
}

func TestDisassembleContainsLabelsAndMnemonics(t *testing.T) {
	b := NewBuilder("disasm")
	b.Func("main")
	b.Label("top").Movi(isa.X(1), 1)
	b.Jmp("top")
	p := b.MustBuild()
	text := p.Disassemble()
	for _, want := range []string{"top:", "movi x1, 1", "jmp @0"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustBuild should panic on error")
		}
	}()
	b := NewBuilder("bad")
	b.Jmp("missing")
	b.MustBuild()
}
