// Package program provides a small assembler for building programs in
// the simulator's ISA: forward label resolution, function boundaries
// for function-granularity profiling, and data-section initialization.
package program

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/simerr"
)

// DataBase is the lowest virtual address used for program data. Code
// lives below it (see isa.CodeBase).
const DataBase uint64 = 0x1000_0000

// Function describes one function of the program: the half-open range
// of static-instruction indices [Start, End).
type Function struct {
	Name  string
	Start int
	End   int
}

// Program is an assembled program: the static instruction sequence,
// function table, and initial data memory contents.
type Program struct {
	Insts []isa.Inst
	Funcs []Function
	// Data holds the initial contents of data memory as 8-byte words
	// keyed by virtual address (8-byte aligned).
	Data map[uint64]uint64
	// Name labels the program (used in reports).
	Name string
}

// NumInsts returns the static instruction count.
func (p *Program) NumInsts() int { return len(p.Insts) }

// FuncOf returns the name of the function containing static instruction
// index, or "<unknown>" if the index is outside every function.
func (p *Program) FuncOf(index int) string {
	i := sort.Search(len(p.Funcs), func(i int) bool { return p.Funcs[i].End > index })
	if i < len(p.Funcs) && index >= p.Funcs[i].Start {
		return p.Funcs[i].Name
	}
	return "<unknown>"
}

// FuncOfPC returns the function containing the given code address.
func (p *Program) FuncOfPC(pc uint64) string { return p.FuncOf(isa.IndexOf(pc)) }

// Inst returns the static instruction at a code address.
func (p *Program) Inst(pc uint64) *isa.Inst {
	idx := isa.IndexOf(pc)
	if idx < 0 || idx >= len(p.Insts) {
		return nil
	}
	return &p.Insts[idx]
}

// Disassemble returns a listing of the whole program.
func (p *Program) Disassemble() string {
	out := ""
	for i := range p.Insts {
		in := &p.Insts[i]
		if in.Label != "" {
			out += in.Label + ":\n"
		}
		out += fmt.Sprintf("  %5d  %#08x  %s\n", i, isa.PCOf(i), in.String())
	}
	return out
}

// Builder assembles a Program instruction by instruction.
type Builder struct {
	name    string
	insts   []isa.Inst
	labels  map[string]int   // resolved label -> instruction index
	fixups  map[string][]int // unresolved label -> branch sites
	funcs   []Function
	curFunc string
	fnStart int
	data    map[uint64]uint64
	nextVar uint64
	pending string // label awaiting the next emitted instruction
	err     error
}

// NewBuilder returns an empty builder for a named program.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:    name,
		labels:  make(map[string]int),
		fixups:  make(map[string][]int),
		data:    make(map[uint64]uint64),
		nextVar: DataBase,
	}
}

func (b *Builder) setErr(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("program %q: "+format, append([]any{b.name}, args...)...)
	}
}

// Func starts a new function. All subsequently emitted instructions
// belong to it until the next Func call or Build.
func (b *Builder) Func(name string) *Builder {
	b.closeFunc()
	b.curFunc = name
	b.fnStart = len(b.insts)
	return b
}

func (b *Builder) closeFunc() {
	if b.curFunc != "" && len(b.insts) > b.fnStart {
		b.funcs = append(b.funcs, Function{Name: b.curFunc, Start: b.fnStart, End: len(b.insts)})
	}
	b.curFunc = ""
}

// Label defines a branch-target label at the next emitted instruction.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.setErr("duplicate label %q", name)
		return b
	}
	b.labels[name] = len(b.insts)
	b.pending = name
	return b
}

func (b *Builder) emit(in isa.Inst) *Builder {
	if b.pending != "" {
		in.Label = b.pending
		b.pending = ""
	}
	b.insts = append(b.insts, in)
	return b
}

// I emits a raw instruction.
func (b *Builder) I(in isa.Inst) *Builder { return b.emit(in) }

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(isa.Inst{Op: isa.OpNop}) }

// Op3 emits a three-register operation rd = rs1 op rs2.
func (b *Builder) Op3(op isa.Op, rd, rs1, rs2 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 isa.Reg) *Builder { return b.Op3(isa.OpAdd, rd, rs1, rs2) }

// Sub emits rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 isa.Reg) *Builder { return b.Op3(isa.OpSub, rd, rs1, rs2) }

// Mul emits rd = rs1 * rs2.
func (b *Builder) Mul(rd, rs1, rs2 isa.Reg) *Builder { return b.Op3(isa.OpMul, rd, rs1, rs2) }

// Div emits rd = rs1 / rs2.
func (b *Builder) Div(rd, rs1, rs2 isa.Reg) *Builder { return b.Op3(isa.OpDiv, rd, rs1, rs2) }

// Rem emits rd = rs1 % rs2.
func (b *Builder) Rem(rd, rs1, rs2 isa.Reg) *Builder { return b.Op3(isa.OpRem, rd, rs1, rs2) }

// And emits rd = rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 isa.Reg) *Builder { return b.Op3(isa.OpAnd, rd, rs1, rs2) }

// Or emits rd = rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 isa.Reg) *Builder { return b.Op3(isa.OpOr, rd, rs1, rs2) }

// Xor emits rd = rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 isa.Reg) *Builder { return b.Op3(isa.OpXor, rd, rs1, rs2) }

// Shl emits rd = rs1 << rs2.
func (b *Builder) Shl(rd, rs1, rs2 isa.Reg) *Builder { return b.Op3(isa.OpShl, rd, rs1, rs2) }

// Slt emits rd = (rs1 < rs2) ? 1 : 0.
func (b *Builder) Slt(rd, rs1, rs2 isa.Reg) *Builder { return b.Op3(isa.OpSlt, rd, rs1, rs2) }

// Addi emits rd = rs1 + imm.
func (b *Builder) Addi(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.OpAddi, Rd: rd, Rs1: rs1, Imm: imm})
}

// Andi emits rd = rs1 & imm.
func (b *Builder) Andi(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.OpAndi, Rd: rd, Rs1: rs1, Imm: imm})
}

// Shli emits rd = rs1 << imm.
func (b *Builder) Shli(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.OpShli, Rd: rd, Rs1: rs1, Imm: imm})
}

// Shri emits rd = rs1 >> imm.
func (b *Builder) Shri(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.OpShri, Rd: rd, Rs1: rs1, Imm: imm})
}

// Movi emits rd = imm.
func (b *Builder) Movi(rd isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.OpMovi, Rd: rd, Imm: imm})
}

// MoviU emits rd = imm for an unsigned (address) immediate.
func (b *Builder) MoviU(rd isa.Reg, imm uint64) *Builder {
	return b.Movi(rd, int64(imm))
}

// FAdd emits fd = fs1 + fs2.
func (b *Builder) FAdd(fd, fs1, fs2 isa.Reg) *Builder { return b.Op3(isa.OpFAdd, fd, fs1, fs2) }

// FSub emits fd = fs1 - fs2.
func (b *Builder) FSub(fd, fs1, fs2 isa.Reg) *Builder { return b.Op3(isa.OpFSub, fd, fs1, fs2) }

// FMul emits fd = fs1 * fs2.
func (b *Builder) FMul(fd, fs1, fs2 isa.Reg) *Builder { return b.Op3(isa.OpFMul, fd, fs1, fs2) }

// FDiv emits fd = fs1 / fs2.
func (b *Builder) FDiv(fd, fs1, fs2 isa.Reg) *Builder { return b.Op3(isa.OpFDiv, fd, fs1, fs2) }

// FMin emits fd = min(fs1, fs2).
func (b *Builder) FMin(fd, fs1, fs2 isa.Reg) *Builder { return b.Op3(isa.OpFMin, fd, fs1, fs2) }

// FMax emits fd = max(fs1, fs2).
func (b *Builder) FMax(fd, fs1, fs2 isa.Reg) *Builder { return b.Op3(isa.OpFMax, fd, fs1, fs2) }

// FSqrt emits fd = sqrt(fs1).
func (b *Builder) FSqrt(fd, fs1 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.OpFSqrt, Rd: fd, Rs1: fs1})
}

// FCmpLT emits rd = (fs1 < fs2) ? 1 : 0, modeling flt.d.
func (b *Builder) FCmpLT(rd, fs1, fs2 isa.Reg) *Builder {
	return b.Op3(isa.OpFCmpLT, rd, fs1, fs2)
}

// FMovI emits fd = float64(rs1).
func (b *Builder) FMovI(fd, rs1 isa.Reg) *Builder {
	return b.emit(isa.Inst{Op: isa.OpFMovI, Rd: fd, Rs1: rs1})
}

// Load emits rd = mem[rs1+imm].
func (b *Builder) Load(rd, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.OpLoad, Rd: rd, Rs1: rs1, Imm: imm})
}

// LoadF emits fd = mem[rs1+imm] as float64.
func (b *Builder) LoadF(fd, rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.OpLoadF, Rd: fd, Rs1: rs1, Imm: imm})
}

// Store emits mem[rs1+imm] = rs2.
func (b *Builder) Store(rs1, rs2 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.OpStore, Rs1: rs1, Rs2: rs2, Imm: imm})
}

// StoreF emits mem[rs1+imm] = fs2.
func (b *Builder) StoreF(rs1, fs2 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.OpStoreF, Rs1: rs1, Rs2: fs2, Imm: imm})
}

// Prefetch emits a software prefetch of mem[rs1+imm].
func (b *Builder) Prefetch(rs1 isa.Reg, imm int64) *Builder {
	return b.emit(isa.Inst{Op: isa.OpPrefetch, Rs1: rs1, Imm: imm})
}

func (b *Builder) branch(op isa.Op, rs1, rs2 isa.Reg, label string) *Builder {
	idx := len(b.insts)
	if target, ok := b.labels[label]; ok {
		return b.emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Target: target})
	}
	b.fixups[label] = append(b.fixups[label], idx)
	return b.emit(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Target: -1})
}

// Beq emits a branch to label if rs1 == rs2.
func (b *Builder) Beq(rs1, rs2 isa.Reg, label string) *Builder {
	return b.branch(isa.OpBeq, rs1, rs2, label)
}

// Bne emits a branch to label if rs1 != rs2.
func (b *Builder) Bne(rs1, rs2 isa.Reg, label string) *Builder {
	return b.branch(isa.OpBne, rs1, rs2, label)
}

// Blt emits a branch to label if rs1 < rs2.
func (b *Builder) Blt(rs1, rs2 isa.Reg, label string) *Builder {
	return b.branch(isa.OpBlt, rs1, rs2, label)
}

// Bge emits a branch to label if rs1 >= rs2.
func (b *Builder) Bge(rs1, rs2 isa.Reg, label string) *Builder {
	return b.branch(isa.OpBge, rs1, rs2, label)
}

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) *Builder {
	return b.branch(isa.OpJmp, isa.NoReg, isa.NoReg, label)
}

// Call emits a function call to label: the return address is written to
// the link register (x31 by convention) and control transfers to label.
func (b *Builder) Call(label string) *Builder {
	idx := len(b.insts)
	if target, ok := b.labels[label]; ok {
		return b.emit(isa.Inst{Op: isa.OpCall, Rd: isa.X(31), Target: target})
	}
	b.fixups[label] = append(b.fixups[label], idx)
	return b.emit(isa.Inst{Op: isa.OpCall, Rd: isa.X(31), Target: -1})
}

// Ret emits a return through the link register (x31).
func (b *Builder) Ret() *Builder {
	return b.emit(isa.Inst{Op: isa.OpRet, Rs1: isa.X(31)})
}

// CsrFlush emits the serializing pipeline-flushing CSR instruction.
func (b *Builder) CsrFlush() *Builder { return b.emit(isa.Inst{Op: isa.OpCsrFlush}) }

// Halt emits the program terminator.
func (b *Builder) Halt() *Builder { return b.emit(isa.Inst{Op: isa.OpHalt}) }

// Alloc reserves size bytes of data memory aligned to align and returns
// the base virtual address.
func (b *Builder) Alloc(size, align uint64) uint64 {
	if align == 0 {
		align = 8
	}
	addr := (b.nextVar + align - 1) &^ (align - 1)
	b.nextVar = addr + size
	return addr
}

// SetWord initializes the 8-byte data word at addr (must be 8-byte
// aligned) to value.
func (b *Builder) SetWord(addr, value uint64) {
	if addr%8 != 0 {
		b.setErr("SetWord: unaligned address %#x", addr)
		return
	}
	b.data[addr] = value
}

// Build finalizes the program: resolves branch fixups, closes the
// current function, and returns the program.
func (b *Builder) Build() (*Program, error) {
	b.closeFunc()
	if b.pending != "" {
		b.setErr("label %q defined after the last instruction", b.pending)
	}
	for label, sites := range b.fixups {
		target, ok := b.labels[label]
		if !ok {
			b.setErr("undefined label %q", label)
			continue
		}
		for _, site := range sites {
			b.insts[site].Target = target
		}
	}
	if b.err != nil {
		return nil, b.err
	}
	p := &Program{Name: b.name, Insts: b.insts, Funcs: b.funcs, Data: b.data}
	sort.Slice(p.Funcs, func(i, j int) bool { return p.Funcs[i].Start < p.Funcs[j].Start })
	return p, nil
}

// MustBuild is Build that panics on error, for statically known-good
// programs such as the built-in workloads.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		// Typed so run APIs recover it as simerr.ErrInvalidProgram; the
		// built-in workloads never hit this.
		panic(simerr.Wrap(simerr.ErrInvalidProgram,
			simerr.Snapshot{Program: b.name}, err, "building program"))
	}
	return p
}
