package program

import (
	"testing"

	"repro/internal/isa"
)

func blockProgram() *Program {
	b := NewBuilder("blocks")
	b.Func("main")
	b.Movi(isa.X(1), 0)               // 0  bb0
	b.Movi(isa.X(2), 10)              // 1  bb0
	b.Label("loop")                   //
	b.Addi(isa.X(1), isa.X(1), 1)     // 2  bb1 (branch target)
	b.Blt(isa.X(1), isa.X(2), "loop") // 3 bb1 (ends block)
	b.Nop()                           // 4  bb2 (after branch)
	b.Func("tail")
	b.Nop()  // 5  bb3 (function start)
	b.Halt() // 6  bb3... halt splits after
	return b.MustBuild()
}

func TestBasicBlocksBoundaries(t *testing.T) {
	p := blockProgram()
	blocks := p.BasicBlocks()
	if len(blocks) < 4 {
		t.Fatalf("got %d blocks, want >= 4: %+v", len(blocks), blocks)
	}
	// Blocks partition [0, len(insts)) contiguously.
	if blocks[0].Start != 0 {
		t.Errorf("first block starts at %d", blocks[0].Start)
	}
	for i := 1; i < len(blocks); i++ {
		if blocks[i].Start != blocks[i-1].End {
			t.Errorf("gap between block %d and %d", i-1, i)
		}
	}
	if blocks[len(blocks)-1].End != p.NumInsts() {
		t.Errorf("last block ends at %d, want %d", blocks[len(blocks)-1].End, p.NumInsts())
	}
	// The loop target (index 2) must start a block, and the instruction
	// after the branch (index 4) must start a block.
	starts := map[int]bool{}
	for _, bb := range blocks {
		starts[bb.Start] = true
	}
	if !starts[2] {
		t.Errorf("branch target is not a leader")
	}
	if !starts[4] {
		t.Errorf("post-branch instruction is not a leader")
	}
	if !starts[5] {
		t.Errorf("function start is not a leader")
	}
}

func TestBasicBlocksNoBranchInMiddle(t *testing.T) {
	p := blockProgram()
	for _, bb := range p.BasicBlocks() {
		for i := bb.Start; i < bb.End-1; i++ {
			if isa.IsBranch(p.Insts[i].Op) {
				t.Errorf("branch at %d in the middle of block [%d,%d)", i, bb.Start, bb.End)
			}
		}
	}
}

func TestBlockOf(t *testing.T) {
	p := blockProgram()
	blocks := p.BasicBlocks()
	for _, bb := range blocks {
		for i := bb.Start; i < bb.End; i++ {
			if got := BlockOf(blocks, i); got != bb.Index {
				t.Errorf("BlockOf(%d) = %d, want %d", i, got, bb.Index)
			}
		}
	}
	if BlockOf(blocks, -1) != -1 || BlockOf(blocks, p.NumInsts()+5) != -1 {
		t.Errorf("out-of-range BlockOf should return -1")
	}
}

func TestBlockNamesCarryFunction(t *testing.T) {
	p := blockProgram()
	sawMain, sawTail := false, false
	for _, bb := range p.BasicBlocks() {
		if bb.Func == "main" {
			sawMain = true
		}
		if bb.Func == "tail" {
			sawTail = true
		}
		if bb.Name() == "" {
			t.Errorf("empty block name")
		}
	}
	if !sawMain || !sawTail {
		t.Errorf("block functions missing: main=%v tail=%v", sawMain, sawTail)
	}
}

func TestBasicBlocksEmptyProgram(t *testing.T) {
	p := &Program{}
	if got := p.BasicBlocks(); got != nil {
		t.Errorf("empty program should have no blocks, got %v", got)
	}
}
