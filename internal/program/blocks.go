package program

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// BasicBlock is a maximal straight-line region of static instructions:
// control enters only at Start and leaves only at End-1 (half-open
// index range [Start, End)).
type BasicBlock struct {
	// Index is the block's position in program order.
	Index int
	Start int
	End   int
	// Func is the enclosing function.
	Func string
}

// Name returns a stable human-readable block label.
func (bb BasicBlock) Name() string {
	return fmt.Sprintf("%s.bb%d", bb.Func, bb.Index)
}

// BasicBlocks computes the control-flow-graph basic blocks of the
// program: leaders are the first instruction, every branch target, and
// every instruction following a branch; function boundaries also split
// blocks (the paper evaluates cycle-stack error at basic-block
// granularity alongside instruction and function, Section 5.4).
func (p *Program) BasicBlocks() []BasicBlock {
	n := len(p.Insts)
	if n == 0 {
		return nil
	}
	leader := make([]bool, n+1)
	leader[0] = true
	leader[n] = true
	for i := range p.Insts {
		in := &p.Insts[i]
		if isa.IsBranch(in.Op) {
			if in.Target >= 0 && in.Target < n {
				leader[in.Target] = true
			}
			if i+1 <= n {
				leader[i+1] = true
			}
		}
		if in.Op == isa.OpHalt && i+1 <= n {
			leader[i+1] = true
		}
	}
	for _, f := range p.Funcs {
		if f.Start < n {
			leader[f.Start] = true
		}
		if f.End <= n {
			leader[f.End] = true
		}
	}

	var blocks []BasicBlock
	start := 0
	for i := 1; i <= n; i++ {
		if !leader[i] {
			continue
		}
		blocks = append(blocks, BasicBlock{
			Index: len(blocks),
			Start: start,
			End:   i,
			Func:  p.FuncOf(start),
		})
		start = i
	}
	return blocks
}

// BlockOf returns the basic block containing static instruction index,
// given the blocks slice from BasicBlocks. It returns -1 if the index
// is out of range.
func BlockOf(blocks []BasicBlock, index int) int {
	i := sort.Search(len(blocks), func(i int) bool { return blocks[i].End > index })
	if i < len(blocks) && index >= blocks[i].Start {
		return i
	}
	return -1
}
