package program

import (
	"testing"

	"repro/internal/isa"
)

// TestBuilderEmitsEveryOpcode drives every builder helper and checks
// the emitted opcode, operands, and immediates.
func TestBuilderEmitsEveryOpcode(t *testing.T) {
	b := NewBuilder("allops")
	b.Func("main")
	x1, x2, x3 := isa.X(1), isa.X(2), isa.X(3)
	f1, f2, f3 := isa.F(1), isa.F(2), isa.F(3)

	type want struct {
		op  isa.Op
		rd  isa.Reg
		imm int64
	}
	var wants []want
	emit := func(op isa.Op, rd isa.Reg, imm int64) { wants = append(wants, want{op, rd, imm}) }

	b.Nop()
	emit(isa.OpNop, isa.Reg(0), 0)
	b.Add(x3, x1, x2)
	emit(isa.OpAdd, x3, 0)
	b.Sub(x3, x1, x2)
	emit(isa.OpSub, x3, 0)
	b.Mul(x3, x1, x2)
	emit(isa.OpMul, x3, 0)
	b.Div(x3, x1, x2)
	emit(isa.OpDiv, x3, 0)
	b.Rem(x3, x1, x2)
	emit(isa.OpRem, x3, 0)
	b.And(x3, x1, x2)
	emit(isa.OpAnd, x3, 0)
	b.Or(x3, x1, x2)
	emit(isa.OpOr, x3, 0)
	b.Xor(x3, x1, x2)
	emit(isa.OpXor, x3, 0)
	b.Shl(x3, x1, x2)
	emit(isa.OpShl, x3, 0)
	b.Slt(x3, x1, x2)
	emit(isa.OpSlt, x3, 0)
	b.Addi(x3, x1, 5)
	emit(isa.OpAddi, x3, 5)
	b.Andi(x3, x1, 6)
	emit(isa.OpAndi, x3, 6)
	b.Shli(x3, x1, 7)
	emit(isa.OpShli, x3, 7)
	b.Shri(x3, x1, 8)
	emit(isa.OpShri, x3, 8)
	b.Movi(x3, 9)
	emit(isa.OpMovi, x3, 9)
	b.MoviU(x3, 10)
	emit(isa.OpMovi, x3, 10)
	b.FAdd(f3, f1, f2)
	emit(isa.OpFAdd, f3, 0)
	b.FSub(f3, f1, f2)
	emit(isa.OpFSub, f3, 0)
	b.FMul(f3, f1, f2)
	emit(isa.OpFMul, f3, 0)
	b.FDiv(f3, f1, f2)
	emit(isa.OpFDiv, f3, 0)
	b.FMin(f3, f1, f2)
	emit(isa.OpFMin, f3, 0)
	b.FMax(f3, f1, f2)
	emit(isa.OpFMax, f3, 0)
	b.FSqrt(f3, f1)
	emit(isa.OpFSqrt, f3, 0)
	b.FCmpLT(x3, f1, f2)
	emit(isa.OpFCmpLT, x3, 0)
	b.FMovI(f3, x1)
	emit(isa.OpFMovI, f3, 0)
	b.Load(x3, x1, 16)
	emit(isa.OpLoad, x3, 16)
	b.LoadF(f3, x1, 24)
	emit(isa.OpLoadF, f3, 24)
	b.Store(x1, x2, 32)
	emit(isa.OpStore, isa.Reg(0), 32)
	b.StoreF(x1, f2, 40)
	emit(isa.OpStoreF, isa.Reg(0), 40)
	b.Prefetch(x1, 48)
	emit(isa.OpPrefetch, isa.Reg(0), 48)
	b.I(isa.Inst{Op: isa.OpIMovF, Rd: x3, Rs1: f1})
	emit(isa.OpIMovF, x3, 0)
	b.Label("end")
	b.Beq(x1, x2, "end")
	emit(isa.OpBeq, isa.Reg(0), 0)
	b.Bne(x1, x2, "end")
	emit(isa.OpBne, isa.Reg(0), 0)
	b.Blt(x1, x2, "end")
	emit(isa.OpBlt, isa.Reg(0), 0)
	b.Bge(x1, x2, "end")
	emit(isa.OpBge, isa.Reg(0), 0)
	b.Jmp("end")
	emit(isa.OpJmp, isa.Reg(0), 0)
	b.CsrFlush()
	emit(isa.OpCsrFlush, isa.Reg(0), 0)
	b.Halt()
	emit(isa.OpHalt, isa.Reg(0), 0)

	p := b.MustBuild()
	if p.NumInsts() != len(wants) {
		t.Fatalf("emitted %d instructions, want %d", p.NumInsts(), len(wants))
	}
	for i, w := range wants {
		in := p.Insts[i]
		if in.Op != w.op {
			t.Errorf("inst %d: op %v, want %v", i, in.Op, w.op)
			continue
		}
		if d := in.Dests(); d != isa.NoReg && w.rd != isa.Reg(0) && d != w.rd {
			t.Errorf("inst %d (%v): rd %v, want %v", i, in.Op, d, w.rd)
		}
		if w.imm != 0 && in.Imm != w.imm {
			t.Errorf("inst %d (%v): imm %d, want %d", i, in.Op, in.Imm, w.imm)
		}
	}
	// All branch targets resolved to the "end" label.
	endIdx := 0
	for i := range p.Insts {
		if p.Insts[i].Label == "end" {
			endIdx = i
		}
	}
	for i := range p.Insts {
		if isa.IsBranch(p.Insts[i].Op) && p.Insts[i].Target != endIdx {
			t.Errorf("branch at %d targets %d, want %d", i, p.Insts[i].Target, endIdx)
		}
	}
}
