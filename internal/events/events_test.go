package events

import (
	"testing"
	"testing/quick"
)

func TestEventNames(t *testing.T) {
	want := map[Event]string{
		DRL1: "DR-L1", DRTLB: "DR-TLB", DRSQ: "DR-SQ",
		FLMB: "FL-MB", FLEX: "FL-EX", FLMO: "FL-MO",
		STL1: "ST-L1", STTLB: "ST-TLB", STLLC: "ST-LLC",
	}
	for e, name := range want {
		if e.String() != name {
			t.Errorf("event %d: got %q, want %q", e, e.String(), name)
		}
	}
	if Event(200).String() != "EV-?" {
		t.Errorf("out-of-range event name = %q", Event(200).String())
	}
}

func TestEventDescriptionsNonEmpty(t *testing.T) {
	for _, e := range AllEvents() {
		if e.Description() == "" || e.Description() == "unknown event" {
			t.Errorf("event %s has no description", e)
		}
	}
	if Event(99).Description() != "unknown event" {
		t.Errorf("unexpected description for invalid event")
	}
}

func TestAllEventsCountAndOrder(t *testing.T) {
	evs := AllEvents()
	if len(evs) != NumEvents {
		t.Fatalf("AllEvents returned %d events, want %d", len(evs), NumEvents)
	}
	for i, e := range evs {
		if int(e) != i {
			t.Errorf("AllEvents[%d] = %v, want event %d", i, e, i)
		}
	}
}

func TestPSVSetHasClear(t *testing.T) {
	var p PSV
	p = p.Set(STL1).Set(STTLB)
	if !p.Has(STL1) || !p.Has(STTLB) {
		t.Fatalf("expected ST-L1 and ST-TLB set in %v", p)
	}
	if p.Has(FLMB) {
		t.Fatalf("FL-MB unexpectedly set")
	}
	p = p.Clear(STL1)
	if p.Has(STL1) {
		t.Fatalf("ST-L1 still set after Clear")
	}
	if !p.Has(STTLB) {
		t.Fatalf("Clear removed unrelated bit")
	}
}

func TestPSVCountAndCombined(t *testing.T) {
	var p PSV
	if p.Count() != 0 || p.IsCombined() {
		t.Fatalf("zero PSV should have count 0 and not be combined")
	}
	p = p.Set(STL1)
	if p.Count() != 1 || p.IsCombined() {
		t.Fatalf("single-event PSV misclassified: count=%d", p.Count())
	}
	p = p.Set(STLLC).Set(STTLB)
	if p.Count() != 3 || !p.IsCombined() {
		t.Fatalf("triple-event PSV misclassified: count=%d", p.Count())
	}
}

func TestPSVString(t *testing.T) {
	if s := PSV(0).String(); s != "Base" {
		t.Errorf("empty PSV String = %q, want Base", s)
	}
	if s := PSV(0).Set(FLMB).String(); s != "FL-MB" {
		t.Errorf("solitary PSV String = %q, want FL-MB", s)
	}
	combined := PSV(0).Set(STL1).Set(STTLB)
	if s := combined.String(); s != "(ST-L1,ST-TLB)" {
		t.Errorf("combined PSV String = %q, want (ST-L1,ST-TLB)", s)
	}
}

func TestPSVMask(t *testing.T) {
	full := PSV(0).Set(DRSQ).Set(FLMO).Set(STL1)
	masked := full.Mask(IBSSet)
	if masked.Has(DRSQ) || masked.Has(FLMO) {
		t.Errorf("IBS mask retained events IBS does not support: %v", masked)
	}
	if !masked.Has(STL1) {
		t.Errorf("IBS mask dropped supported event ST-L1")
	}
}

func TestPSVEventsRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		p := PSV(raw) & PSV(TEASet) // restrict to valid bits
		var rebuilt PSV
		for _, e := range p.Events() {
			rebuilt = rebuilt.Set(e)
		}
		return rebuilt == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPSVOrIsUnion(t *testing.T) {
	f := func(a, b uint16) bool {
		pa, pb := PSV(a)&PSV(TEASet), PSV(b)&PSV(TEASet)
		u := pa.Or(pb)
		for _, e := range AllEvents() {
			if u.Has(e) != (pa.Has(e) || pb.Has(e)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPSVCountMatchesEventsLen(t *testing.T) {
	f := func(raw uint16) bool {
		p := PSV(raw) & PSV(TEASet)
		return p.Count() == len(p.Events())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTable1EventSets(t *testing.T) {
	if TEASet.Size() != 9 {
		t.Errorf("TEA tracks %d events, want 9", TEASet.Size())
	}
	if IBSSet.Size() != 6 {
		t.Errorf("IBS tracks %d events, want 6", IBSSet.Size())
	}
	if SPESet.Size() != 5 {
		t.Errorf("SPE tracks %d events, want 5", SPESet.Size())
	}
	if RISSet.Size() != 7 {
		t.Errorf("RIS tracks %d events, want 7", RISSet.Size())
	}
	// Per Section 3, the front-end tagging techniques need about one
	// byte of PSV storage (6, 5, and 7 bits).
	if IBSSet.Bits() != 6 || SPESet.Bits() != 5 || RISSet.Bits() != 7 {
		t.Errorf("PSV bit widths: IBS=%d SPE=%d RIS=%d, want 6/5/7",
			IBSSet.Bits(), SPESet.Bits(), RISSet.Bits())
	}
	// Every technique's event set is a subset of TEA's.
	for _, set := range []Set{IBSSet, SPESet, RISSet} {
		for _, e := range set.Events() {
			if !TEASet.Has(e) {
				t.Errorf("event %s not in TEA's set", e)
			}
		}
	}
}

func TestSetHasMatchesEvents(t *testing.T) {
	for _, set := range []Set{TEASet, IBSSet, SPESet, RISSet} {
		seen := map[Event]bool{}
		for _, e := range set.Events() {
			seen[e] = true
		}
		for _, e := range AllEvents() {
			if set.Has(e) != seen[e] {
				t.Errorf("set %v: Has(%s)=%v but membership=%v", set, e, set.Has(e), seen[e])
			}
		}
	}
}

func TestStateOf(t *testing.T) {
	want := map[Event]CommitState{
		DRL1: Drained, DRTLB: Drained, DRSQ: Drained,
		STL1: Stalled, STTLB: Stalled, STLLC: Stalled,
		FLMB: Flushed, FLEX: Flushed, FLMO: Flushed,
	}
	for e, s := range want {
		if StateOf(e) != s {
			t.Errorf("StateOf(%s) = %v, want %v", e, StateOf(e), s)
		}
	}
}

func TestEventsForPartitionsEvents(t *testing.T) {
	total := 0
	for _, s := range []CommitState{Stalled, Drained, Flushed} {
		evs := EventsFor(s)
		total += len(evs)
		for _, e := range evs {
			if StateOf(e) != s {
				t.Errorf("EventsFor(%v) contains %s which maps to %v", s, e, StateOf(e))
			}
		}
	}
	if total != NumEvents {
		t.Errorf("commit states partition %d events, want %d", total, NumEvents)
	}
	if len(EventsFor(Compute)) != 0 {
		t.Errorf("Compute state should have no explaining events")
	}
}

func TestCommitStateString(t *testing.T) {
	names := map[CommitState]string{
		Compute: "Compute", Stalled: "Stalled", Drained: "Drained", Flushed: "Flushed",
	}
	for s, n := range names {
		if s.String() != n {
			t.Errorf("state %d String = %q, want %q", s, s.String(), n)
		}
	}
	if CommitState(99).String() != "State?" {
		t.Errorf("invalid state String = %q", CommitState(99).String())
	}
}

func TestHierarchyStalled(t *testing.T) {
	h := Hierarchy(Stalled)
	if !h.IsRoot || h.Root != Stalled {
		t.Fatalf("hierarchy root malformed: %+v", h)
	}
	// Level 2: ST-L1 and ST-TLB independent; ST-LLC depends on ST-L1.
	var l1 *HierarchyNode
	for _, c := range h.Children {
		if c.Event == STL1 {
			l1 = c
		}
	}
	if l1 == nil {
		t.Fatalf("ST-L1 missing from Stalled hierarchy level 2")
	}
	if len(l1.Children) != 1 || l1.Children[0].Event != STLLC {
		t.Fatalf("ST-LLC should be the dependent child of ST-L1")
	}
}

func TestHierarchyCoversAllEvents(t *testing.T) {
	seen := map[Event]bool{}
	for _, s := range []CommitState{Stalled, Drained, Flushed} {
		Hierarchy(s).Walk(func(n *HierarchyNode) {
			if !n.IsRoot {
				seen[n.Event] = true
			}
		})
	}
	for _, e := range AllEvents() {
		if !seen[e] {
			t.Errorf("event %s missing from hierarchies", e)
		}
	}
}

func TestDependsOnAndRootOf(t *testing.T) {
	if !DependsOn(STLLC, STL1) {
		t.Errorf("ST-LLC should depend on ST-L1")
	}
	if DependsOn(STL1, STLLC) || DependsOn(STTLB, STL1) {
		t.Errorf("unexpected dependency reported")
	}
	if RootOf(STLLC) != STL1 {
		t.Errorf("RootOf(ST-LLC) = %v, want ST-L1", RootOf(STLLC))
	}
	for _, e := range []Event{DRL1, DRTLB, DRSQ, FLMB, FLEX, FLMO, STL1, STTLB} {
		if RootOf(e) != e {
			t.Errorf("RootOf(%s) = %v, want itself", e, RootOf(e))
		}
	}
}

func TestEventStringOutOfRange(t *testing.T) {
	for _, e := range []Event{Event(NumEvents), Event(NumEvents + 1), Event(255)} {
		if got := e.String(); got != "EV-?" {
			t.Errorf("Event(%d).String() = %q, want \"EV-?\"", uint8(e), got)
		}
		if got := e.Description(); got != "unknown event" {
			t.Errorf("Event(%d).Description() = %q, want \"unknown event\"", uint8(e), got)
		}
	}
}

// TestEventNamesExhaustive pins eventNames (and Description) to
// NumEvents: adding a tenth event without naming and describing it is
// a bug this test — and the tealint eventswitch analyzer — must catch.
func TestEventNamesExhaustive(t *testing.T) {
	if len(eventNames) != NumEvents {
		t.Fatalf("eventNames has %d entries, want NumEvents = %d", len(eventNames), NumEvents)
	}
	seenName := map[string]Event{}
	seenDesc := map[string]Event{}
	for _, e := range AllEvents() {
		name := e.String()
		if name == "" || name == "EV-?" {
			t.Errorf("event %d has no name", uint8(e))
		}
		if prev, dup := seenName[name]; dup {
			t.Errorf("events %d and %d share the name %q", uint8(prev), uint8(e), name)
		}
		seenName[name] = e
		desc := e.Description()
		if desc == "" || desc == "unknown event" {
			t.Errorf("event %s has no Table 1 description", e)
		}
		if prev, dup := seenDesc[desc]; dup {
			t.Errorf("events %s and %s share the description %q", prev, e, desc)
		}
		seenDesc[desc] = e
	}
	if n := len(AllEvents()); n != NumEvents {
		t.Errorf("AllEvents() returned %d events, want %d", n, NumEvents)
	}
}
