package events

// CommitState classifies the commit stage of the core in a given cycle.
// The three non-compute states are the ones PICS must explain by
// mapping them back to performance events (Section 2 of the paper).
type CommitState uint8

const (
	// Compute: the core is committing one or more instructions.
	Compute CommitState = iota
	// Stalled: the ROB-head instruction has not finished executing.
	Stalled
	// Drained: the ROB is empty because of a front-end stall.
	Drained
	// Flushed: the ROB is empty because an instruction flushed the
	// pipeline (mispredicted branch, exception, ordering violation).
	Flushed

	// NumCommitStates is the number of commit states.
	NumCommitStates = 4
)

var stateNames = [NumCommitStates]string{"Compute", "Stalled", "Drained", "Flushed"}

// String returns the paper's name for the commit state.
func (s CommitState) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "State?"
}

// StateOf returns the commit state an event explains, following the
// DR-/ST-/FL- naming convention of Table 1.
func StateOf(e Event) CommitState {
	switch e {
	case DRL1, DRTLB, DRSQ:
		return Drained
	case STL1, STTLB, STLLC:
		return Stalled
	case FLMB, FLEX, FLMO:
		return Flushed
	}
	return Compute
}

// EventsFor returns the events that explain a given non-compute commit
// state, in canonical order.
func EventsFor(s CommitState) []Event {
	var evs []Event
	for _, e := range AllEvents() {
		if StateOf(e) == s {
			evs = append(evs, e)
		}
	}
	return evs
}

// HierarchyNode is one node of a performance-event hierarchy (Figure 3).
// Dependent events can only occur if their parent event occurred (a
// load can only miss in the LLC if it already missed in L1); independent
// events are siblings under the same commit state.
type HierarchyNode struct {
	// Event is the event at this node. The root node of a commit-state
	// hierarchy has no event and Root set instead.
	Event Event
	// Root names the commit state for the hierarchy root.
	Root CommitState
	// IsRoot reports whether this node is the commit-state root.
	IsRoot bool
	// Children are the dependent events of this node.
	Children []*HierarchyNode
}

// Hierarchy returns the event hierarchy for a commit state. For the
// Stalled state this is the Figure 3 hierarchy: the L1 data cache miss
// and L1 data TLB miss are independent Level-2 events, and the LLC miss
// depends on the L1 miss.
func Hierarchy(s CommitState) *HierarchyNode {
	root := &HierarchyNode{Root: s, IsRoot: true}
	switch s {
	case Stalled:
		l1 := &HierarchyNode{Event: STL1}
		l1.Children = []*HierarchyNode{{Event: STLLC}}
		tlb := &HierarchyNode{Event: STTLB}
		root.Children = []*HierarchyNode{l1, tlb}
	case Drained:
		root.Children = []*HierarchyNode{
			{Event: DRL1}, {Event: DRTLB}, {Event: DRSQ},
		}
	case Flushed:
		root.Children = []*HierarchyNode{
			{Event: FLMB}, {Event: FLEX}, {Event: FLMO},
		}
	}
	return root
}

// DependsOn reports whether event e can only occur after event parent
// occurred for the same instruction (a dependent event in the paper's
// terminology). Only ST-LLC depends on ST-L1 in TEA's event set.
func DependsOn(e, parent Event) bool {
	return e == STLLC && parent == STL1
}

// RootOf returns the root event of e's dependency chain. Capturing a
// dependent event without its root loses interpretability (Section 3):
// if only LLC misses were captured, LLC hits could not be identified.
func RootOf(e Event) Event {
	if e == STLLC {
		return STL1
	}
	return e
}

// Walk visits every node of the hierarchy in depth-first order.
func (n *HierarchyNode) Walk(visit func(*HierarchyNode)) {
	visit(n)
	for _, c := range n.Children {
		c.Walk(visit)
	}
}
