// Package events defines the microarchitectural performance events that
// TEA tracks, the Performance Signature Vector (PSV) attached to every
// in-flight instruction, the event sets supported by the evaluated
// performance-analysis techniques (Table 1 of the paper), and the event
// hierarchy used to reason about event selection (Figure 3).
package events

import "strings"

// Event identifies one of the nine performance events TEA captures.
// Events are named X-Y where X is the commit state the event explains
// (DR = Drained, ST = Stalled, FL = Flushed) and Y is the event itself.
type Event uint8

const (
	// DRL1 is an L1 instruction cache miss (explains Drained).
	DRL1 Event = iota
	// DRTLB is an L1 instruction TLB miss (explains Drained).
	DRTLB
	// DRSQ is a store stalled at dispatch because the store queue is
	// full of completed but not yet retired stores (explains Drained).
	DRSQ
	// FLMB is a mispredicted branch (explains Flushed).
	FLMB
	// FLEX is an instruction that caused an exception or serializing
	// pipeline flush (explains Flushed).
	FLEX
	// FLMO is a memory ordering violation: a load executed before an
	// older store to the same address (explains Flushed).
	FLMO
	// STL1 is an L1 data cache miss (explains Stalled).
	STL1
	// STTLB is an L1 data TLB miss (explains Stalled).
	STTLB
	// STLLC is a last-level cache miss caused by a load (explains Stalled).
	STLLC

	// NumEvents is the number of performance events TEA tracks.
	NumEvents = 9
)

var eventNames = [NumEvents]string{
	"DR-L1", "DR-TLB", "DR-SQ", "FL-MB", "FL-EX", "FL-MO",
	"ST-L1", "ST-TLB", "ST-LLC",
}

// String returns the paper's name for the event (e.g. "ST-L1").
func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return "EV-?"
}

// Description returns the Table 1 description of the event.
func (e Event) Description() string {
	switch e {
	case DRL1:
		return "L1 instruction cache miss"
	case DRTLB:
		return "L1 instruction TLB miss"
	case DRSQ:
		return "Store instruction stalled at dispatch"
	case FLMB:
		return "Mispredicted branch"
	case FLEX:
		return "Instruction caused exception"
	case FLMO:
		return "Memory ordering violation"
	case STL1:
		return "L1 data cache miss"
	case STTLB:
		return "L1 data TLB miss"
	case STLLC:
		return "LLC miss caused by a load instruction"
	}
	return "unknown event"
}

// AllEvents lists every event in canonical (Table 1) order.
func AllEvents() []Event {
	evs := make([]Event, NumEvents)
	for i := range evs {
		evs[i] = Event(i)
	}
	return evs
}

// PSV is a Performance Signature Vector: one bit per supported
// performance event, recording the events a dynamic instruction was
// subjected to during its execution. The zero PSV means the instruction
// encountered no events; the paper calls this signature "Base".
type PSV uint16

// Set returns the PSV with the bit for event e set.
func (p PSV) Set(e Event) PSV { return p | 1<<e }

// Clear returns the PSV with the bit for event e cleared.
func (p PSV) Clear(e Event) PSV { return p &^ (1 << e) }

// Has reports whether the bit for event e is set.
func (p PSV) Has(e Event) bool { return p&(1<<e) != 0 }

// Or returns the union of two signature vectors.
func (p PSV) Or(q PSV) PSV { return p | q }

// Mask restricts the PSV to the events contained in set, modeling a
// technique that tracks only a subset of the events.
func (p PSV) Mask(set Set) PSV { return p & PSV(set) }

// Count returns the number of events set in the PSV. A count of two or
// more is a combined event in the paper's terminology.
func (p PSV) Count() int {
	n := 0
	for v := p; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// IsCombined reports whether the PSV records a combined event, i.e. the
// instruction was subjected to two or more events.
func (p PSV) IsCombined() bool { return p.Count() >= 2 }

// Events returns the events set in the PSV in canonical order.
func (p PSV) Events() []Event {
	var evs []Event
	for i := 0; i < NumEvents; i++ {
		if p.Has(Event(i)) {
			evs = append(evs, Event(i))
		}
	}
	return evs
}

// String renders the signature the way the paper labels cycle-stack
// components: "Base" for the empty signature, the event name for a
// solitary event, and a parenthesized list for combined events.
func (p PSV) String() string {
	evs := p.Events()
	switch len(evs) {
	case 0:
		return "Base"
	case 1:
		return evs[0].String()
	}
	names := make([]string, len(evs))
	for i, e := range evs {
		names[i] = e.String()
	}
	return "(" + strings.Join(names, ",") + ")"
}

// Set is a set of events tracked by a performance-analysis technique,
// represented as a bit mask in PSV bit order.
type Set uint16

// NewSet builds an event set from a list of events.
func NewSet(evs ...Event) Set {
	var s Set
	for _, e := range evs {
		s |= 1 << e
	}
	return s
}

// Has reports whether the set contains event e.
func (s Set) Has(e Event) bool { return s&(1<<e) != 0 }

// Events returns the members of the set in canonical order.
func (s Set) Events() []Event { return PSV(s).Events() }

// Size returns the number of events in the set.
func (s Set) Size() int { return PSV(s).Count() }

// Bits returns the number of PSV bits a technique tracking this set
// must allocate per instruction.
func (s Set) Bits() int { return s.Size() }

// Event sets per technique, following Table 1 of the paper. TEA tracks
// all nine events. IBS and SPE do not capture the DR-SQ dispatch-stall
// event nor the memory-ordering-violation flush; RIS captures DR-SQ but
// reports neither memory ordering violations nor LLC misses; SPE lacks
// the exception flush.
var (
	// TEASet is the full nine-event set tracked by TEA.
	TEASet = NewSet(DRL1, DRTLB, DRSQ, FLMB, FLEX, FLMO, STL1, STTLB, STLLC)
	// IBSSet approximates the events AMD IBS reports (6 bits).
	IBSSet = NewSet(DRL1, DRTLB, FLMB, FLEX, STL1, STTLB)
	// SPESet approximates the events Arm SPE reports (5 bits).
	SPESet = NewSet(DRL1, DRTLB, FLMB, STL1, STTLB)
	// RISSet approximates the events IBM RIS reports (7 bits).
	RISSet = NewSet(DRL1, DRTLB, DRSQ, FLMB, FLEX, STL1, STTLB)
)
