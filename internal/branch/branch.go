// Package branch implements the direction predictor of the simulated
// core: a TAGE-style predictor (base bimodal table plus tagged tables
// indexed with geometrically increasing global-history lengths),
// approximating the 28 KB TAGE predictor of the Table 2 configuration.
// Unconditional jumps are always predicted correctly (the BTB holds
// their targets); conditional branches consult the predictor.
package branch

// Config sizes the predictor.
type Config struct {
	// BimodalBits is log2 of the base bimodal table size.
	BimodalBits int
	// TableBits is log2 of each tagged table size.
	TableBits int
	// TagBits is the partial tag width in the tagged tables.
	TagBits int
	// HistoryLengths lists the global-history length per tagged table,
	// shortest first (geometric series in real TAGE).
	HistoryLengths []int
}

// DefaultConfig returns a four-table TAGE-lite predictor.
func DefaultConfig() Config {
	return Config{
		BimodalBits:    13,
		TableBits:      11,
		TagBits:        9,
		HistoryLengths: []int{5, 15, 44, 130},
	}
}

type taggedEntry struct {
	tag    uint32
	ctr    int8 // signed 3-bit counter: >= 0 predicts taken
	useful uint8
}

// Predictor is the TAGE-lite direction predictor.
type Predictor struct {
	cfg     Config
	bimodal []int8 // 2-bit saturating counters: >= 2 predicts taken
	tables  [][]taggedEntry
	history uint64 // global history, newest outcome in bit 0

	Lookups     uint64
	Mispredicts uint64
}

// New builds a predictor.
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:     cfg,
		bimodal: make([]int8, 1<<cfg.BimodalBits),
		tables:  make([][]taggedEntry, len(cfg.HistoryLengths)),
	}
	for i := range p.bimodal {
		p.bimodal[i] = 2 // weakly taken
	}
	for i := range p.tables {
		p.tables[i] = make([]taggedEntry, 1<<cfg.TableBits)
	}
	return p
}

func (p *Predictor) foldHistory(length, bits int) uint64 {
	// Fold the newest `length` history bits into `bits` bits.
	h := p.history
	if length < 64 {
		h &= (1 << length) - 1
	}
	var folded uint64
	for h != 0 {
		folded ^= h & ((1 << bits) - 1)
		h >>= bits
	}
	return folded
}

func (p *Predictor) index(pc uint64, table int) uint64 {
	hl := p.cfg.HistoryLengths[table]
	return (pc>>2 ^ p.foldHistory(hl, p.cfg.TableBits) ^ uint64(table)*0x9E37) &
		((1 << p.cfg.TableBits) - 1)
}

func (p *Predictor) tag(pc uint64, table int) uint32 {
	hl := p.cfg.HistoryLengths[table]
	return uint32((pc>>2 ^ p.foldHistory(hl, p.cfg.TagBits)<<1 ^ uint64(table)*0x7F4A) &
		((1 << p.cfg.TagBits) - 1))
}

// provider identifies which component supplied a prediction.
type provider struct {
	table int // -1 = bimodal
	index uint64
}

// Predict returns the predicted direction for the conditional branch at
// pc, along with an opaque provider token to pass to Update.
func (p *Predictor) Predict(pc uint64) (taken bool, prov provider) {
	p.Lookups++
	for t := len(p.tables) - 1; t >= 0; t-- {
		idx := p.index(pc, t)
		e := &p.tables[t][idx]
		if e.tag == p.tag(pc, t) && e.useful > 0 {
			return e.ctr >= 0, provider{table: t, index: idx}
		}
	}
	idx := pc >> 2 & ((1 << p.cfg.BimodalBits) - 1)
	return p.bimodal[idx] >= 2, provider{table: -1, index: idx}
}

// Update trains the predictor with the branch's actual outcome and
// records a misprediction if the earlier prediction was wrong.
func (p *Predictor) Update(pc uint64, prov provider, predicted, actual bool) {
	if predicted != actual {
		p.Mispredicts++
	}

	if prov.table >= 0 {
		e := &p.tables[prov.table][prov.index]
		if actual {
			if e.ctr < 3 {
				e.ctr++
			}
		} else if e.ctr > -4 {
			e.ctr--
		}
		if predicted == actual {
			if e.useful < 3 {
				e.useful++
			}
		} else if e.useful > 0 {
			e.useful--
		}
	} else {
		b := &p.bimodal[prov.index]
		if actual {
			if *b < 3 {
				*b++
			}
		} else if *b > 0 {
			*b--
		}
	}

	// On a misprediction, allocate in a longer-history table to learn
	// the correlated pattern.
	if predicted != actual {
		start := prov.table + 1
		for t := start; t < len(p.tables); t++ {
			idx := p.index(pc, t)
			e := &p.tables[t][idx]
			if e.useful == 0 {
				e.tag = p.tag(pc, t)
				e.useful = 1
				if actual {
					e.ctr = 0
				} else {
					e.ctr = -1
				}
				break
			}
			e.useful-- // age the occupant; allocate next time
		}
	}

	p.history = p.history<<1 | b2u(actual)
}

// MispredictRate returns the fraction of predictions that were wrong.
func (p *Predictor) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Lookups)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
