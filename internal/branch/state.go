// Checkpoint support: exportable predictor state and a canonical
// fingerprint encoding. Unlike the memory hierarchy, every bit of
// predictor state is durable (there is no transient timing state), so
// State/SetState round-trip the predictor exactly and CanonState is a
// plain flattening.
package branch

import "repro/internal/simerr"

// TaggedEntryState is one exported tagged-table entry.
type TaggedEntryState struct {
	Tag    uint32
	Ctr    int8
	Useful uint8
}

// PredictorState is the exported state of the TAGE-lite predictor:
// bimodal counters, every tagged table, and the global history
// register. Statistics are not part of it.
type PredictorState struct {
	Bimodal []int8
	Tables  [][]TaggedEntryState
	History uint64
}

// State exports the predictor's contents.
func (p *Predictor) State() PredictorState {
	st := PredictorState{
		Bimodal: append([]int8(nil), p.bimodal...),
		Tables:  make([][]TaggedEntryState, len(p.tables)),
		History: p.history,
	}
	for i, t := range p.tables {
		es := make([]TaggedEntryState, len(t))
		for j, e := range t {
			es[j] = TaggedEntryState{Tag: e.tag, Ctr: e.ctr, Useful: e.useful}
		}
		st.Tables[i] = es
	}
	return st
}

// SetState restores contents exported by State on a predictor built
// from the same configuration.
func (p *Predictor) SetState(st PredictorState) error {
	if len(st.Bimodal) != len(p.bimodal) || len(st.Tables) != len(p.tables) {
		return simerr.New(simerr.ErrInvalidConfig, simerr.Snapshot{},
			"branch: predictor state (%d bimodal, %d tables) does not fit predictor (%d bimodal, %d tables)",
			len(st.Bimodal), len(st.Tables), len(p.bimodal), len(p.tables))
	}
	for i, es := range st.Tables {
		if len(es) != len(p.tables[i]) {
			return simerr.New(simerr.ErrInvalidConfig, simerr.Snapshot{},
				"branch: predictor state table %d has %d entries, predictor has %d",
				i, len(es), len(p.tables[i]))
		}
	}
	copy(p.bimodal, st.Bimodal)
	for i, es := range st.Tables {
		for j, e := range es {
			p.tables[i][j] = taggedEntry{tag: e.Tag, ctr: e.Ctr, useful: e.Useful}
		}
	}
	p.history = st.History
	return nil
}

// CanonState appends the predictor's canonical encoding: history, then
// every bimodal counter, then every tagged-table entry in table order.
func (p *Predictor) CanonState(dst []uint64) []uint64 {
	dst = append(dst, p.history)
	for _, ctr := range p.bimodal {
		dst = append(dst, uint64(uint8(ctr)))
	}
	for _, t := range p.tables {
		for _, e := range t {
			dst = append(dst, uint64(e.tag), uint64(uint8(e.ctr)), uint64(e.useful))
		}
	}
	return dst
}
