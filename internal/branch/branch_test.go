package branch

import (
	"math/rand/v2"
	"testing"
)

// run feeds a deterministic outcome sequence for one branch PC and
// returns the mispredict rate over the last half (after warm-up).
func run(p *Predictor, pc uint64, outcomes []bool) float64 {
	half := len(outcomes) / 2
	wrong := 0
	for i, actual := range outcomes {
		pred, prov := p.Predict(pc)
		p.Update(pc, prov, pred, actual)
		if i >= half && pred != actual {
			wrong++
		}
	}
	return float64(wrong) / float64(len(outcomes)-half)
}

func TestAlwaysTakenLearned(t *testing.T) {
	p := New(DefaultConfig())
	outcomes := make([]bool, 200)
	for i := range outcomes {
		outcomes[i] = true
	}
	if rate := run(p, 0x10000, outcomes); rate != 0 {
		t.Errorf("always-taken branch mispredicted at rate %v after warmup", rate)
	}
}

func TestAlwaysNotTakenLearned(t *testing.T) {
	p := New(DefaultConfig())
	outcomes := make([]bool, 200)
	if rate := run(p, 0x10000, outcomes); rate != 0 {
		t.Errorf("never-taken branch mispredicted at rate %v after warmup", rate)
	}
}

func TestLoopPatternLearnedByTAGE(t *testing.T) {
	// T T T N repeating: a bimodal predictor alone mispredicts the exit
	// every iteration (25%); TAGE history tables should learn it.
	p := New(DefaultConfig())
	outcomes := make([]bool, 2000)
	for i := range outcomes {
		outcomes[i] = i%4 != 3
	}
	if rate := run(p, 0x10000, outcomes); rate > 0.05 {
		t.Errorf("periodic pattern mispredict rate = %v, want <= 0.05", rate)
	}
}

func TestAlternatingPatternLearned(t *testing.T) {
	p := New(DefaultConfig())
	outcomes := make([]bool, 1000)
	for i := range outcomes {
		outcomes[i] = i%2 == 0
	}
	if rate := run(p, 0x20000, outcomes); rate > 0.05 {
		t.Errorf("alternating pattern mispredict rate = %v, want <= 0.05", rate)
	}
}

func TestRandomBranchesMispredictOften(t *testing.T) {
	p := New(DefaultConfig())
	rng := rand.New(rand.NewPCG(42, 1))
	outcomes := make([]bool, 4000)
	for i := range outcomes {
		outcomes[i] = rng.IntN(2) == 0
	}
	rate := run(p, 0x30000, outcomes)
	if rate < 0.25 {
		t.Errorf("random branch mispredict rate = %v, unrealistically low", rate)
	}
}

func TestIndependentBranchesDoNotDestroyEachOther(t *testing.T) {
	p := New(DefaultConfig())
	// Two biased branches at different PCs, interleaved.
	wrongA, wrongB, n := 0, 0, 3000
	for i := 0; i < n; i++ {
		predA, provA := p.Predict(0x40000)
		p.Update(0x40000, provA, predA, true)
		if i > n/2 && !predA {
			wrongA++
		}
		predB, provB := p.Predict(0x45678)
		p.Update(0x45678, provB, predB, false)
		if i > n/2 && predB {
			wrongB++
		}
	}
	if wrongA > n/100 || wrongB > n/100 {
		t.Errorf("interleaved biased branches mispredicted: A=%d B=%d", wrongA, wrongB)
	}
}

func TestMispredictRateAccounting(t *testing.T) {
	p := New(DefaultConfig())
	pred, prov := p.Predict(0x50000)
	p.Update(0x50000, prov, pred, !pred) // force one mispredict
	if p.Lookups != 1 || p.Mispredicts != 1 {
		t.Errorf("lookups=%d mispredicts=%d, want 1/1", p.Lookups, p.Mispredicts)
	}
	if p.MispredictRate() != 1 {
		t.Errorf("rate = %v, want 1", p.MispredictRate())
	}
	empty := New(DefaultConfig())
	if empty.MispredictRate() != 0 {
		t.Errorf("empty predictor rate should be 0")
	}
}
