package isa

import (
	"strings"
	"testing"
)

func TestRegisterConstructors(t *testing.T) {
	if X(0) != RegZero {
		t.Errorf("X(0) != RegZero")
	}
	if X(5).IsFP() {
		t.Errorf("X(5) classified as FP")
	}
	if !F(0).IsFP() {
		t.Errorf("F(0) not classified as FP")
	}
	if F(31) != Reg(63) {
		t.Errorf("F(31) = %d, want 63", F(31))
	}
	if X(7).String() != "x7" || F(3).String() != "f3" || NoReg.String() != "-" {
		t.Errorf("register names wrong: %s %s %s", X(7), F(3), NoReg)
	}
}

func TestRegisterConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { X(-1) }, func() { X(32) }, func() { F(-1) }, func() { F(32) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for out-of-range register")
				}
			}()
			f()
		}()
	}
}

func TestOpStringsUnique(t *testing.T) {
	seen := map[string]Op{}
	for o := Op(0); o < numOps; o++ {
		name := o.String()
		if name == "" || strings.HasPrefix(name, "op") {
			t.Errorf("op %d has no mnemonic", o)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("ops %d and %d share mnemonic %q", prev, o, name)
		}
		seen[name] = o
	}
}

func TestClassOf(t *testing.T) {
	want := map[Op]Class{
		OpAdd: ClassALU, OpAddi: ClassALU, OpMovi: ClassALU, OpSlt: ClassALU,
		OpMul: ClassMulDiv, OpDiv: ClassMulDiv, OpRem: ClassMulDiv,
		OpFAdd: ClassFP, OpFCmpLT: ClassFP, OpFMovI: ClassFP,
		OpFDiv: ClassFPDiv, OpFSqrt: ClassFPDiv,
		OpLoad: ClassLoad, OpLoadF: ClassLoad, OpPrefetch: ClassLoad,
		OpStore: ClassStore, OpStoreF: ClassStore,
		OpBeq: ClassBranch, OpJmp: ClassBranch,
		OpCsrFlush: ClassSystem, OpHalt: ClassSystem,
	}
	for o, c := range want {
		if ClassOf(o) != c {
			t.Errorf("ClassOf(%s) = %v, want %v", o, ClassOf(o), c)
		}
	}
}

func TestPredicates(t *testing.T) {
	if !IsBranch(OpJmp) || !IsBranch(OpBeq) || IsBranch(OpAdd) {
		t.Errorf("IsBranch misclassifies")
	}
	if !IsCondBranch(OpBlt) || IsCondBranch(OpJmp) {
		t.Errorf("IsCondBranch misclassifies")
	}
	if !IsLoad(OpLoad) || !IsLoad(OpLoadF) || IsLoad(OpPrefetch) || IsLoad(OpStore) {
		t.Errorf("IsLoad misclassifies")
	}
	if !IsStore(OpStore) || !IsStore(OpStoreF) || IsStore(OpLoad) {
		t.Errorf("IsStore misclassifies")
	}
	if !IsMem(OpPrefetch) || !IsMem(OpLoad) || !IsMem(OpStoreF) || IsMem(OpAdd) {
		t.Errorf("IsMem misclassifies")
	}
	if !IsSerializing(OpCsrFlush) || IsSerializing(OpHalt) {
		t.Errorf("IsSerializing misclassifies")
	}
}

func TestPCIndexRoundTrip(t *testing.T) {
	for _, idx := range []int{0, 1, 17, 100000} {
		if got := IndexOf(PCOf(idx)); got != idx {
			t.Errorf("IndexOf(PCOf(%d)) = %d", idx, got)
		}
	}
	if PCOf(1)-PCOf(0) != InstBytes {
		t.Errorf("instructions are not %d bytes apart", InstBytes)
	}
}

func TestDests(t *testing.T) {
	cases := []struct {
		in   Inst
		want Reg
	}{
		{Inst{Op: OpAdd, Rd: X(3), Rs1: X(1), Rs2: X(2)}, X(3)},
		{Inst{Op: OpLoad, Rd: X(4), Rs1: X(1)}, X(4)},
		{Inst{Op: OpStore, Rs1: X(1), Rs2: X(2)}, NoReg},
		{Inst{Op: OpPrefetch, Rs1: X(1)}, NoReg},
		{Inst{Op: OpBeq, Rs1: X(1), Rs2: X(2)}, NoReg},
		{Inst{Op: OpCsrFlush}, NoReg},
		{Inst{Op: OpHalt}, NoReg},
		{Inst{Op: OpFSqrt, Rd: F(1), Rs1: F(2)}, F(1)},
	}
	for _, c := range cases {
		if got := c.in.Dests(); got != c.want {
			t.Errorf("%s: Dests = %v, want %v", c.in.String(), got, c.want)
		}
	}
}

func TestSources(t *testing.T) {
	add := Inst{Op: OpAdd, Rd: X(3), Rs1: X(1), Rs2: X(2)}
	if s1, s2 := add.Sources(); s1 != X(1) || s2 != X(2) {
		t.Errorf("add sources = %v,%v", s1, s2)
	}
	movi := Inst{Op: OpMovi, Rd: X(3), Imm: 7}
	if s1, s2 := movi.Sources(); s1 != NoReg || s2 != NoReg {
		t.Errorf("movi sources = %v,%v", s1, s2)
	}
	ld := Inst{Op: OpLoad, Rd: X(3), Rs1: X(1)}
	if s1, s2 := ld.Sources(); s1 != X(1) || s2 != NoReg {
		t.Errorf("load sources = %v,%v", s1, s2)
	}
	st := Inst{Op: OpStore, Rs1: X(1), Rs2: X(2)}
	if s1, s2 := st.Sources(); s1 != X(1) || s2 != X(2) {
		t.Errorf("store sources = %v,%v", s1, s2)
	}
	sqrt := Inst{Op: OpFSqrt, Rd: F(0), Rs1: F(1)}
	if s1, s2 := sqrt.Sources(); s1 != F(1) || s2 != NoReg {
		t.Errorf("fsqrt sources = %v,%v", s1, s2)
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpAdd, Rd: X(3), Rs1: X(1), Rs2: X(2)}, "add x3, x1, x2"},
		{Inst{Op: OpMovi, Rd: X(3), Imm: -4}, "movi x3, -4"},
		{Inst{Op: OpAddi, Rd: X(3), Rs1: X(1), Imm: 8}, "addi x3, x1, 8"},
		{Inst{Op: OpLoad, Rd: X(4), Rs1: X(5), Imm: 16}, "ld x4, 16(x5)"},
		{Inst{Op: OpStore, Rs1: X(5), Rs2: X(6), Imm: 24}, "sd x6, 24(x5)"},
		{Inst{Op: OpPrefetch, Rs1: X(5), Imm: 64}, "prefetch 64(x5)"},
		{Inst{Op: OpBne, Rs1: X(1), Rs2: X(2), Target: 7}, "bne x1, x2, @7"},
		{Inst{Op: OpJmp, Target: 3}, "jmp @3"},
		{Inst{Op: OpFSqrt, Rd: F(1), Rs1: F(2)}, "fsqrt f1, f2"},
		{Inst{Op: OpCsrFlush}, "csrflush"},
		{Inst{Op: OpHalt}, "halt"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("disasm = %q, want %q", got, c.want)
		}
	}
}
