// Package isa defines the instruction set executed by the simulated
// out-of-order core: a small RISC-style 64-bit ISA with integer and
// floating-point arithmetic, loads, stores, branches, a software
// prefetch instruction, and a serializing CSR-flush instruction that
// models RISC-V fsflags/frflags (which always flush the pipeline on the
// BOOM core, Section 6 of the paper).
package isa

import "fmt"

// Reg identifies an architectural register. Registers 0..31 are the
// integer registers X0..X31 (X0 is hardwired to zero); registers 32..63
// are the floating-point registers F0..F31.
type Reg uint8

const (
	// NumIntRegs is the number of integer registers.
	NumIntRegs = 32
	// NumFPRegs is the number of floating-point registers.
	NumFPRegs = 32
	// NumRegs is the total architectural register count.
	NumRegs = NumIntRegs + NumFPRegs
	// RegZero is the hardwired-zero integer register X0.
	RegZero Reg = 0
	// NoReg marks an absent register operand.
	NoReg Reg = 255
)

// X returns the n'th integer register.
func X(n int) Reg {
	if n < 0 || n >= NumIntRegs {
		//tealint:ignore nakedpanic compile-time-style misuse of the assembler DSL; recovered at API boundaries
		panic(fmt.Sprintf("isa: integer register X%d out of range", n))
	}
	return Reg(n)
}

// F returns the n'th floating-point register.
func F(n int) Reg {
	if n < 0 || n >= NumFPRegs {
		//tealint:ignore nakedpanic compile-time-style misuse of the assembler DSL; recovered at API boundaries
		panic(fmt.Sprintf("isa: fp register F%d out of range", n))
	}
	return Reg(NumIntRegs + n)
}

// IsFP reports whether r is a floating-point register.
func (r Reg) IsFP() bool { return r != NoReg && r >= NumIntRegs }

// String returns the assembly name of the register.
func (r Reg) String() string {
	switch {
	case r == NoReg:
		return "-"
	case r.IsFP():
		return fmt.Sprintf("f%d", r-NumIntRegs)
	default:
		return fmt.Sprintf("x%d", r)
	}
}

// Op is an instruction opcode.
type Op uint8

const (
	// OpNop does nothing.
	OpNop Op = iota

	// Integer ALU operations: rd = rs1 OP rs2 (or imm).
	OpAdd  // rd = rs1 + rs2
	OpSub  // rd = rs1 - rs2
	OpMul  // rd = rs1 * rs2
	OpDiv  // rd = rs1 / rs2 (0 if rs2 == 0)
	OpRem  // rd = rs1 % rs2 (0 if rs2 == 0)
	OpAnd  // rd = rs1 & rs2
	OpOr   // rd = rs1 | rs2
	OpXor  // rd = rs1 ^ rs2
	OpShl  // rd = rs1 << (rs2 & 63)
	OpShr  // rd = rs1 >> (rs2 & 63) (logical)
	OpAddi // rd = rs1 + imm
	OpAndi // rd = rs1 & imm
	OpShli // rd = rs1 << (imm & 63)
	OpShri // rd = rs1 >> (imm & 63)
	OpMovi // rd = imm
	OpSlt  // rd = 1 if rs1 < rs2 else 0 (signed)

	// Floating-point operations on F registers.
	OpFAdd   // fd = fs1 + fs2
	OpFSub   // fd = fs1 - fs2
	OpFMul   // fd = fs1 * fs2
	OpFDiv   // fd = fs1 / fs2
	OpFSqrt  // fd = sqrt(fs1)
	OpFNeg   // fd = -fs1
	OpFMin   // fd = min(fs1, fs2)
	OpFMax   // fd = max(fs1, fs2)
	OpFCmpLT // rd(int) = 1 if fs1 < fs2 else 0 (models flt.d)
	OpFMovI  // fd = float64(rs1): int-to-fp move/convert
	OpIMovF  // rd = int64(fs1): fp-to-int move/convert

	// Memory operations. Effective address = rs1 + imm.
	OpLoad     // rd(int) = mem[rs1+imm]
	OpLoadF    // fd = mem[rs1+imm] interpreted as float64
	OpStore    // mem[rs1+imm] = rs2(int)
	OpStoreF   // mem[rs1+imm] = fs2
	OpPrefetch // prefetch mem[rs1+imm] into the data caches (no rd)

	// Control flow. Branch targets are static-instruction indices
	// resolved by the program builder.
	OpBeq  // branch if rs1 == rs2
	OpBne  // branch if rs1 != rs2
	OpBlt  // branch if rs1 < rs2 (signed)
	OpBge  // branch if rs1 >= rs2 (signed)
	OpJmp  // unconditional jump
	OpCall // call: rd = return address, jump to Target
	OpRet  // return: indirect jump to rs1

	// OpCsrFlush is a serializing CSR access that always flushes the
	// pipeline when it commits, modeling the RISC-V fsflags/frflags
	// instructions the compiler inserts for IEEE 754 compliance (the
	// nab case study, Section 6).
	OpCsrFlush

	// OpHalt ends the program.
	OpHalt

	numOps
)

var opNames = [numOps]string{
	OpNop: "nop",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpAddi: "addi", OpAndi: "andi", OpShli: "shli", OpShri: "shri",
	OpMovi: "movi", OpSlt: "slt",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFSqrt: "fsqrt", OpFNeg: "fneg", OpFMin: "fmin", OpFMax: "fmax",
	OpFCmpLT: "flt", OpFMovI: "fmvi", OpIMovF: "imvf",
	OpLoad: "ld", OpLoadF: "fld", OpStore: "sd", OpStoreF: "fsd",
	OpPrefetch: "prefetch",
	OpBeq:      "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge", OpJmp: "jmp",
	OpCall: "call", OpRet: "ret",
	OpCsrFlush: "csrflush",
	OpHalt:     "halt",
}

// String returns the mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", o)
}

// Class groups opcodes by the functional unit that executes them.
type Class uint8

const (
	// ClassALU is simple integer arithmetic and logic.
	ClassALU Class = iota
	// ClassMulDiv is integer multiply/divide.
	ClassMulDiv
	// ClassFP is pipelined floating-point arithmetic.
	ClassFP
	// ClassFPDiv is unpipelined FP divide/sqrt.
	ClassFPDiv
	// ClassLoad is loads and software prefetches.
	ClassLoad
	// ClassStore is stores.
	ClassStore
	// ClassBranch is branches and jumps.
	ClassBranch
	// ClassSystem is serializing system instructions and halt.
	ClassSystem
)

// ClassOf returns the functional-unit class of an opcode.
func ClassOf(o Op) Class {
	switch o {
	case OpMul, OpDiv, OpRem:
		return ClassMulDiv
	case OpFAdd, OpFSub, OpFMul, OpFNeg, OpFMin, OpFMax, OpFCmpLT, OpFMovI, OpIMovF:
		return ClassFP
	case OpFDiv, OpFSqrt:
		return ClassFPDiv
	case OpLoad, OpLoadF, OpPrefetch:
		return ClassLoad
	case OpStore, OpStoreF:
		return ClassStore
	case OpBeq, OpBne, OpBlt, OpBge, OpJmp, OpCall, OpRet:
		return ClassBranch
	case OpCsrFlush, OpHalt:
		return ClassSystem
	}
	return ClassALU
}

// IsBranch reports whether the opcode is a control-flow instruction.
func IsBranch(o Op) bool { return ClassOf(o) == ClassBranch }

// IsCondBranch reports whether the opcode is a conditional branch.
func IsCondBranch(o Op) bool {
	switch o {
	case OpBeq, OpBne, OpBlt, OpBge:
		return true
	}
	return false
}

// IsLoad reports whether the opcode reads data memory into a register.
func IsLoad(o Op) bool { return o == OpLoad || o == OpLoadF }

// IsStore reports whether the opcode writes data memory.
func IsStore(o Op) bool { return o == OpStore || o == OpStoreF }

// IsMem reports whether the opcode accesses data memory (including
// software prefetches, which occupy load/store resources).
func IsMem(o Op) bool { return IsLoad(o) || IsStore(o) || o == OpPrefetch }

// IsSerializing reports whether the opcode must execute alone in the
// pipeline and flushes it at commit.
func IsSerializing(o Op) bool { return o == OpCsrFlush }

// Inst is one static instruction. Instructions are 4 bytes; the PC of
// static instruction i in a program is CodeBase + 4*i.
type Inst struct {
	Op  Op
	Rd  Reg   // destination (NoReg if none)
	Rs1 Reg   // first source (NoReg if none)
	Rs2 Reg   // second source / store data (NoReg if none)
	Imm int64 // immediate / address offset
	// Target is the static-instruction index a branch or jump targets.
	Target int
	// Label optionally names the instruction (branch-target labels and
	// function entry points preserved for symbolization).
	Label string
}

// InstBytes is the size of one encoded instruction in bytes.
const InstBytes = 4

// CodeBase is the virtual address of static instruction 0.
const CodeBase uint64 = 0x0001_0000

// PCOf returns the virtual address of static instruction index.
func PCOf(index int) uint64 { return CodeBase + uint64(index)*InstBytes }

// IndexOf returns the static-instruction index of a code address.
func IndexOf(pc uint64) int { return int((pc - CodeBase) / InstBytes) }

// Dests returns the destination register of the instruction, or NoReg.
func (in *Inst) Dests() Reg {
	if in.Op == OpCall {
		return in.Rd // the link register
	}
	if in.Op == OpStore || in.Op == OpStoreF || in.Op == OpPrefetch ||
		IsBranch(in.Op) || in.Op == OpNop || in.Op == OpHalt || in.Op == OpCsrFlush {
		return NoReg
	}
	return in.Rd
}

// Sources returns the source registers the instruction reads (NoReg
// entries mean "fewer than two sources").
func (in *Inst) Sources() (Reg, Reg) {
	switch in.Op {
	case OpNop, OpHalt, OpCsrFlush, OpMovi, OpJmp, OpCall:
		return NoReg, NoReg
	case OpAddi, OpAndi, OpShli, OpShri, OpLoad, OpLoadF, OpPrefetch,
		OpFSqrt, OpFNeg, OpFMovI, OpIMovF, OpRet:
		return in.Rs1, NoReg
	default:
		return in.Rs1, in.Rs2
	}
}

// String disassembles the instruction.
func (in *Inst) String() string {
	switch in.Op {
	case OpNop, OpHalt, OpCsrFlush:
		return in.Op.String()
	case OpMovi:
		return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
	case OpAddi, OpAndi, OpShli, OpShri:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case OpLoad, OpLoadF:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
	case OpStore, OpStoreF:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case OpPrefetch:
		return fmt.Sprintf("%s %d(%s)", in.Op, in.Imm, in.Rs1)
	case OpBeq, OpBne, OpBlt, OpBge:
		return fmt.Sprintf("%s %s, %s, @%d", in.Op, in.Rs1, in.Rs2, in.Target)
	case OpJmp:
		return fmt.Sprintf("%s @%d", in.Op, in.Target)
	case OpCall:
		return fmt.Sprintf("%s %s, @%d", in.Op, in.Rd, in.Target)
	case OpRet:
		return fmt.Sprintf("%s %s", in.Op, in.Rs1)
	case OpFSqrt, OpFNeg:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Rs1)
	case OpFMovI, OpIMovF:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Rs1)
	default:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
}
