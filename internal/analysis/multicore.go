package analysis

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/pics"
	"repro/internal/program"
	"repro/internal/system"
	"repro/internal/workloads"
	"repro/internal/xiter"
)

// MulticoreStudy validates the paper's Section 3 multi-threading claim:
// one TEA unit per physical core suffices to build accurate per-thread
// PICS, even when co-running programs contend for the shared LLC and
// memory bandwidth.
type MulticoreStudy struct {
	Victim     string
	Antagonist string
	// SoloCycles and PairedCycles measure the victim alone and under
	// contention.
	SoloCycles   uint64
	PairedCycles uint64
	Slowdown     float64
	// SoloMemShare / PairedMemShare are the victim's golden-reference
	// memory-event cycle shares — contention must be visible in PICS.
	SoloMemShare   float64
	PairedMemShare float64
	// TEAErrors are each core's TEA-vs-its-own-golden errors in the
	// paired run (victim first).
	TEAErrors []float64
}

// Multicore runs the victim benchmark alone and next to the antagonist
// on a two-core system with a shared LLC and DRAM.
func Multicore(rc RunConfig, victim, antagonist string) (MulticoreStudy, error) {
	vw, err := workloads.ByName(victim)
	if err != nil {
		return MulticoreStudy{}, err
	}
	aw, err := workloads.ByName(antagonist)
	if err != nil {
		return MulticoreStudy{}, err
	}
	st := MulticoreStudy{Victim: victim, Antagonist: antagonist}

	attach := func(sys *system.System, i int, seed uint64) (*core.TEA, *core.TEA) {
		g := core.NewGolden(sys.Core(i))
		cfg := core.DefaultConfig()
		cfg.IntervalCycles = rc.Interval
		cfg.JitterCycles = rc.Jitter
		cfg.Seed = seed
		tea := core.NewTEA(sys.Core(i), cfg)
		sys.Core(i).Attach(g)
		sys.Core(i).Attach(tea)
		return tea, g
	}

	solo := system.New(rc.Core, []*program.Program{vw.Build(rc.iters(vw))})
	_, gSolo := attach(solo, 0, rc.Seed)
	soloStats := solo.Run()
	st.SoloCycles = soloStats[0].Cycles
	st.SoloMemShare = memShare(gSolo.Profile())

	pair := system.New(rc.Core, []*program.Program{
		vw.Build(rc.iters(vw)), aw.Build(rc.iters(aw)),
	})
	teaV, gV := attach(pair, 0, rc.Seed)
	teaA, gA := attach(pair, 1, rc.Seed+1)
	pairStats := pair.Run()
	st.PairedCycles = pairStats[0].Cycles
	st.Slowdown = float64(st.PairedCycles) / float64(st.SoloCycles)
	st.PairedMemShare = memShare(gV.Profile())
	st.TEAErrors = []float64{
		pics.Error(teaV.Profile(), gV.Profile()),
		pics.Error(teaA.Profile(), gA.Profile()),
	}
	return st, nil
}

func memShare(p *pics.Profile) float64 {
	var mem, total float64
	for _, pc := range xiter.SortedKeys(p.Insts) {
		st := p.Insts[pc]
		for _, sig := range xiter.SortedKeys(st) {
			v := st[sig]
			total += v
			if sig.Has(events.STL1) || sig.Has(events.STLLC) || sig.Has(events.STTLB) {
				mem += v
			}
		}
	}
	if total == 0 {
		return 0
	}
	return mem / total
}

// RenderMulticore prints the multicore study.
func RenderMulticore(w io.Writer, st MulticoreStudy) {
	fmt.Fprintf(w, "Multicore (Section 3: one TEA unit per physical core).\n\n")
	fmt.Fprintf(w, "victim %s alone:          %10d cycles, memory-event share %5.1f%%\n",
		st.Victim, st.SoloCycles, 100*st.SoloMemShare)
	fmt.Fprintf(w, "victim beside %s: %10d cycles (%.2fx slowdown), memory-event share %5.1f%%\n",
		st.Antagonist, st.PairedCycles, st.Slowdown, 100*st.PairedMemShare)
	fmt.Fprintf(w, "\nper-core TEA error vs its own golden reference (paired run):\n")
	fmt.Fprintf(w, "  core 0 (%s): %5.1f%%\n", st.Victim, 100*st.TEAErrors[0])
	fmt.Fprintf(w, "  core 1 (%s): %5.1f%%\n", st.Antagonist, 100*st.TEAErrors[1])
	fmt.Fprintf(w, "\nShared-LLC/DRAM contention slows the victim and grows its memory-event\n")
	fmt.Fprintf(w, "components, and per-core TEA stays accurate — per-thread PICS work.\n")
}
