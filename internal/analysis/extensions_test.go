package analysis

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/profilers"
	"repro/internal/workloads"
)

func TestDispatchTaggedTEATracksIBS(t *testing.T) {
	rc := testConfig()
	rows := DispatchTaggedTEA(rc)
	if len(rows) != len(workloads.All())+1 {
		t.Fatalf("got %d rows", len(rows))
	}
	avg := rows[len(rows)-1]
	if avg.Benchmark != "average" {
		t.Fatalf("missing average row")
	}
	// The paper's observation: dispatch-tagged TEA yields similar
	// accuracy to IBS — much worse than TEA.
	if avg.DTEA < 2*avg.TEA {
		t.Errorf("D-TEA average error %.3f should be far worse than TEA's %.3f", avg.DTEA, avg.TEA)
	}
	ratio := avg.DTEA / avg.IBS
	if ratio < 0.6 || ratio > 1.6 {
		t.Errorf("D-TEA (%.3f) should track IBS (%.3f); ratio %.2f", avg.DTEA, avg.IBS, ratio)
	}
}

func TestEventSetAblation(t *testing.T) {
	rc := testConfig()
	rows, err := EventSetAblationStudy(rc, "bwaves")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(profilers.AblationLadder()) {
		t.Fatalf("got %d rungs", len(rows))
	}
	// Bits ascend and interpretability (components) is non-decreasing.
	for i := 1; i < len(rows); i++ {
		if rows[i].Bits <= rows[i-1].Bits {
			t.Errorf("ladder bits not ascending: %+v", rows)
		}
		if rows[i].Components < rows[i-1].Components {
			t.Errorf("components shrank with a larger event set: %+v", rows)
		}
	}
	// The TIP rung distinguishes only the Base component.
	if rows[0].Components != 1 {
		t.Errorf("TIP rung has %d components, want 1", rows[0].Components)
	}
	// The full-TEA rung must distinguish the combined cache+TLB
	// signatures bwaves exists to produce.
	if rows[len(rows)-1].Components < 3 {
		t.Errorf("TEA rung distinguishes only %d components on bwaves", rows[len(rows)-1].Components)
	}
	// Sampling error stays bounded on every rung (the ladder trades
	// interpretability, not accuracy).
	for _, r := range rows {
		if r.Error > 0.2 {
			t.Errorf("rung %q error %.3f unexpectedly high", r.Rung, r.Error)
		}
	}
}

func TestAblationUnknownBenchmark(t *testing.T) {
	if _, err := EventSetAblationStudy(testConfig(), "nope"); err == nil {
		t.Fatalf("expected error")
	}
}

func TestExtensionRenderers(t *testing.T) {
	rc := testConfig()
	var buf bytes.Buffer
	RenderDTEA(&buf, DispatchTaggedTEA(rc))
	rows, err := EventSetAblationStudy(rc, "bwaves")
	if err != nil {
		t.Fatal(err)
	}
	RenderAblation(&buf, "bwaves", rows)
	out := buf.String()
	for _, want := range []string{"D-TEA", "average", "event set", "components", "TIP"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestMulticoreStudy(t *testing.T) {
	rc := testConfig()
	rc.Scale = 0.4
	st, err := Multicore(rc, "fotonik3d", "lbm")
	if err != nil {
		t.Fatal(err)
	}
	if st.Slowdown <= 1.0 {
		t.Errorf("contention slowdown = %.2f, want > 1", st.Slowdown)
	}
	if st.PairedMemShare <= st.SoloMemShare {
		t.Errorf("memory-event share did not grow under contention: %.3f vs %.3f",
			st.PairedMemShare, st.SoloMemShare)
	}
	for i, e := range st.TEAErrors {
		if e > 0.2 {
			t.Errorf("core %d TEA error %.3f under contention, want small", i, e)
		}
	}
}

func TestMulticoreUnknownBenchmarks(t *testing.T) {
	if _, err := Multicore(testConfig(), "nope", "lbm"); err == nil {
		t.Errorf("unknown victim accepted")
	}
	if _, err := Multicore(testConfig(), "lbm", "nope"); err == nil {
		t.Errorf("unknown antagonist accepted")
	}
}

func TestJitterAblation(t *testing.T) {
	rc := testConfig()
	rc.Scale = 0.1
	rows := JitterAblation(rc)
	if rows[len(rows)-1].Benchmark != "average" {
		t.Fatalf("missing average row")
	}
	avg := rows[len(rows)-1]
	// A fixed-period sampler must not beat the jittered one on these
	// highly regular kernels; aliasing typically makes it worse.
	if avg.WithoutJitter < avg.WithJitter*0.7 {
		t.Errorf("fixed-period sampling (%.3f) substantially beats jittered (%.3f)?",
			avg.WithoutJitter, avg.WithJitter)
	}
	for _, r := range rows {
		if r.WithJitter < 0 || r.WithJitter > 1 || r.WithoutJitter < 0 || r.WithoutJitter > 1 {
			t.Errorf("%s: errors out of range: %+v", r.Benchmark, r)
		}
	}
}
