package analysis

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/simerr"
	"repro/internal/workloads"
)

// TestParallelCaptureByteIdentity is the tentpole gate: for every suite
// workload, interval-parallel capture must return byte-for-byte the
// same trace stream and the same statistics as serial capture —
// whether a workload's segments pass fingerprint verification and are
// stitched, or fail it and fall back to a serial run. The parallel path
// may only ever change wall-clock time.
func TestParallelCaptureByteIdentity(t *testing.T) {
	rc := testRC()
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			p := w.Build(rc.iters(w))
			serial, sstats, err := CaptureTrace(context.Background(), p, captureConfig(rc))
			if err != nil {
				t.Fatalf("serial capture: %v", err)
			}
			interval := sstats.Committed / 4
			par, pstats, err := CaptureTraceCheckpointed(context.Background(), p, captureConfig(rc), interval, 3)
			if err != nil {
				t.Fatalf("parallel capture: %v", err)
			}
			if !bytes.Equal(serial, par) {
				t.Errorf("stitched trace differs from serial: %d vs %d bytes", len(serial), len(par))
			}
			if *sstats != *pstats {
				t.Errorf("stats differ:\nserial   %+v\nparallel %+v", *sstats, *pstats)
			}
		})
	}
}

// TestParallelCaptureConverges pins that the functional-warming pass is
// good enough to actually parallelize — not merely fall back — on
// workloads whose divergence classes it models. A regression here means
// the Warmer or the fingerprint lost fidelity and every capture
// silently pays serial cost twice.
func TestParallelCaptureConverges(t *testing.T) {
	rc := testRC()
	for _, name := range []string{"exchange2", "mcf", "perlbench", "povray"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p := w.Build(rc.iters(w))
		_, sstats, err := CaptureTrace(context.Background(), p, captureConfig(rc))
		if err != nil {
			t.Fatalf("%s: serial capture: %v", name, err)
		}
		fb0, pc0 := ParallelFallbacks(), ParallelCaptures()
		if _, _, err := CaptureTraceCheckpointed(context.Background(), p, captureConfig(rc), sstats.Committed/4, 3); err != nil {
			t.Fatalf("%s: parallel capture: %v", name, err)
		}
		if got := ParallelFallbacks() - fb0; got != 0 {
			t.Errorf("%s: fell back to serial capture %d times; want stitched", name, got)
		}
		if got := ParallelCaptures() - pc0; got != 1 {
			t.Errorf("%s: %d stitched captures; want 1", name, got)
		}
	}
}

// TestParallelCaptureWarmupTolerance makes the warmup window's role
// explicit: the functional warmer approximates timing-dependent state
// (issue-order cache touches, store-drain backlog), the cycle-accurate
// warmup window absorbs the approximation, and the fingerprint chain is
// what decides whether it absorbed enough. With warmup deliberately cut
// to almost nothing the chain must detect the residue on at least one
// workload and the output must STILL be byte-identical via fallback.
func TestParallelCaptureWarmupTolerance(t *testing.T) {
	rc := testRC()
	brokeChain := false
	for _, name := range []string{"x264", "lbm", "bwaves"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p := w.Build(rc.iters(w))
		_, sstats, err := CaptureTrace(context.Background(), p, captureConfig(rc))
		if err != nil {
			t.Fatalf("%s: serial capture: %v", name, err)
		}
		gen, err := checkpoint.Generate(context.Background(), p, rc.Core,
			checkpoint.Plan{Interval: sstats.Committed / 4, Warmup: 2})
		if err != nil {
			t.Fatalf("%s: generate: %v", name, err)
		}
		if len(gen.Checkpoints) == 0 {
			t.Fatalf("%s: no checkpoints at interval %d", name, sstats.Committed/4)
		}
		if gen.Plan.Warmup != 2 {
			t.Fatalf("%s: explicit warmup not honored: %d", name, gen.Plan.Warmup)
		}
		segs, err := captureSegments(context.Background(), p, rc.Core, gen, 2)
		if err != nil {
			t.Fatalf("%s: segments: %v", name, err)
		}
		for s := 1; s < len(segs); s++ {
			if segs[s-1].endFP != segs[s].startFP {
				brokeChain = true
			}
		}
	}
	if !brokeChain {
		t.Errorf("a 2-instruction warmup converged everywhere; the fingerprint " +
			"chain is not discriminating and cannot be trusted to gate stitching")
	}
}

// TestParallelCaptureCancellation covers the mid-interval cancellation
// contract: a context canceled while workers are mid-segment must
// surface as a typed ErrCanceled — not as a fallback serial capture,
// not as a mangled trace — and the cached capture path must leave no
// partial trace-store entry behind.
func TestParallelCaptureCancellation(t *testing.T) {
	rc := testRC()
	rc.CheckpointInterval = 500
	rc.CaptureWorkers = 2
	w, err := workloads.ByName("deepsjeng")
	if err != nil {
		t.Fatal(err)
	}
	p := w.Build(rc.iters(w))

	prev := SetTraceStore(NewTraceStore(DefaultStoreBudget, ""))
	defer SetTraceStore(prev)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the first worker steps: every segment must abort
	_, _, err = capturedTrace(ctx, p, rc)
	if err == nil {
		t.Fatal("capture with canceled context succeeded")
	}
	var se *simerr.Error
	if !errors.As(err, &se) || !errors.Is(err, simerr.ErrCanceled) {
		t.Fatalf("want typed ErrCanceled, got %v", err)
	}
	if _, ok := TraceStore().Get(captureKey(p, captureConfig(rc))); ok {
		t.Error("canceled capture left a partial trace-store entry")
	}

	// The same key must still be capturable afterwards: the aborted
	// attempt reserved nothing.
	if _, _, err := capturedTrace(context.Background(), p, rc); err != nil {
		t.Fatalf("capture after canceled attempt: %v", err)
	}
	if _, ok := TraceStore().Get(captureKey(p, captureConfig(rc))); !ok {
		t.Error("successful capture did not populate the store")
	}
}

// TestParallelCaptureCountsOncePerWorkload pins the accounting
// contract: CaptureCount counts simulations of workloads, not interval
// segments — a parallel capture split into N segments is still one
// capture, and a store hit is still zero.
func TestParallelCaptureCountsOncePerWorkload(t *testing.T) {
	rc := testRC()
	rc.CheckpointInterval = 500
	rc.CaptureWorkers = 3
	w, err := workloads.ByName("deepsjeng")
	if err != nil {
		t.Fatal(err)
	}
	p := w.Build(rc.iters(w))

	prev := SetTraceStore(NewTraceStore(DefaultStoreBudget, ""))
	defer SetTraceStore(prev)

	start := CaptureCount()
	if _, _, err := capturedTrace(context.Background(), p, rc); err != nil {
		t.Fatal(err)
	}
	if got := CaptureCount() - start; got != 1 {
		t.Errorf("parallel capture incremented CaptureCount by %d; want 1 (per workload, not per segment)", got)
	}
	if _, _, err := capturedTrace(context.Background(), p, rc); err != nil {
		t.Fatal(err)
	}
	if got := CaptureCount() - start; got != 1 {
		t.Errorf("store hit incremented CaptureCount (total %d); hits must not count", got)
	}

	// Serial and parallel captures of the same (program, core) must
	// share one cache entry: the checkpoint knobs steer how a capture is
	// produced, never what it contains.
	src := rc
	src.CheckpointInterval, src.CaptureWorkers = 0, 0
	if _, _, err := capturedTrace(context.Background(), p, src); err != nil {
		t.Fatal(err)
	}
	if got := CaptureCount() - start; got != 1 {
		t.Errorf("serial capture of the same program re-simulated (total %d); want shared entry", got)
	}
}
