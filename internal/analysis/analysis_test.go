package analysis

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/events"
	"repro/internal/profilers"
	"repro/internal/workloads"
)

// testConfig is a scaled-down evaluation for unit tests.
func testConfig() RunConfig {
	// Short test runs need dense sampling to keep the sample count per
	// benchmark in the evaluation regime (thousands of samples).
	rc := DefaultRunConfig()
	rc.Scale = 0.15
	rc.Interval = 192
	rc.Jitter = 16
	return rc
}

// suiteOnce caches one scaled suite run across tests in this package.
var suiteCache []*BenchRun

func suite(t *testing.T) []*BenchRun {
	t.Helper()
	if suiteCache == nil {
		suiteCache = RunSuite(testConfig())
	}
	return suiteCache
}

func TestAccuracyStudyShape(t *testing.T) {
	rows := AccuracyStudy(suite(t))
	if len(rows) != len(workloads.All())+1 {
		t.Fatalf("got %d rows, want suite + average", len(rows))
	}
	avg := rows[len(rows)-1]
	if avg.Benchmark != "average" {
		t.Fatalf("last row is %q, want average", avg.Benchmark)
	}
	tea := avg.Errors[profilers.NameTEA]
	nci := avg.Errors[profilers.NameNCITEA]
	ibs := avg.Errors[profilers.NameIBS]
	spe := avg.Errors[profilers.NameSPE]
	ris := avg.Errors[profilers.NameRIS]
	// The paper's headline ordering: TEA (2.1%) < NCI-TEA (11.3%) <<
	// IBS/SPE/RIS (~56%).
	if tea > 0.15 {
		t.Errorf("TEA average error = %.3f, want small", tea)
	}
	if nci < tea {
		t.Errorf("NCI-TEA (%.3f) should be worse than TEA (%.3f)", nci, tea)
	}
	// Fixed iteration order keeps failure messages stable across runs
	// (ranging over a map literal reports in random order).
	for _, c := range []struct {
		name string
		err  float64
	}{{"IBS", ibs}, {"SPE", spe}, {"RIS", ris}} {
		if c.err < 2*nci || c.err < 0.25 {
			t.Errorf("%s average error = %.3f; front-end tagging should be far worse (TEA=%.3f, NCI=%.3f)",
				c.name, c.err, tea, nci)
		}
	}
	// Every error is a valid fraction.
	for _, row := range rows {
		for tech, e := range row.Errors {
			if e < 0 || e > 1 {
				t.Errorf("%s/%s error %v out of [0,1]", row.Benchmark, tech, e)
			}
		}
	}
}

func TestTopInstructionPICS(t *testing.T) {
	for _, br := range suite(t) {
		if br.Workload.Name != "bwaves" {
			continue
		}
		tp := TopInstructionPICS(br, 3)
		if len(tp.PCs) != 3 {
			t.Fatalf("got %d top instructions, want 3", len(tp.PCs))
		}
		// Heights must be descending in the golden profile.
		prev := -1.0
		for i, pc := range tp.PCs {
			h := tp.Golden.Insts[pc].Total()
			if prev >= 0 && h > prev {
				t.Errorf("top instruction %d taller than %d", i, i-1)
			}
			prev = h
		}
		// TEA's height for the #1 instruction must be close to golden;
		// IBS's should not be (non-time-proportionality).
		pc := tp.PCs[0]
		g := tp.Golden.Insts[pc].Total()
		teaH := tp.TEA.Insts[pc].Total()
		if rel := abs(teaH-g) / g; rel > 0.25 {
			t.Errorf("TEA top-1 height off by %.0f%%", 100*rel)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestEventCorrelationShape(t *testing.T) {
	res := EventCorrelation(suite(t))
	if len(res) != events.NumEvents {
		t.Fatalf("got %d events, want %d", len(res), events.NumEvents)
	}
	byEvent := map[events.Event]CorrelationResult{}
	for _, r := range res {
		byEvent[r.Event] = r
		if r.Box.Min < -1-1e-9 || r.Box.Max > 1+1e-9 {
			t.Errorf("%s correlation outside [-1,1]: %+v", r.Event, r.Box)
		}
	}
	// The paper's finding: flush events correlate strongly (they cannot
	// be hidden).
	if mb := byEvent[events.FLMB]; mb.Box.N > 0 && mb.Box.Median < 0.5 {
		t.Errorf("FL-MB median correlation = %.2f, want strong", mb.Box.Median)
	}
}

func TestGranularityStudy(t *testing.T) {
	rows := GranularityStudy(suite(t))
	if len(rows) != 5 {
		t.Fatalf("got %d techniques, want 5", len(rows))
	}
	for _, r := range rows {
		// Coarser granularities cannot have more error than finer ones
		// (merging units can only help).
		if r.Block > r.Instruction+1e-9 {
			t.Errorf("%s: block error %.3f exceeds instruction error %.3f",
				r.Technique, r.Block, r.Instruction)
		}
		if r.Function > r.Block+1e-9 {
			t.Errorf("%s: function error %.3f exceeds block error %.3f",
				r.Technique, r.Function, r.Block)
		}
		if r.Application > r.Function+1e-9 {
			t.Errorf("%s: application error %.3f exceeds function error %.3f",
				r.Technique, r.Application, r.Function)
		}
	}
	// TEA is uniformly the most accurate at both granularities.
	var tea, ibs GranularityRow
	for _, r := range rows {
		switch r.Technique {
		case profilers.NameTEA:
			tea = r
		case profilers.NameIBS:
			ibs = r
		}
	}
	if tea.Instruction >= ibs.Instruction || tea.Function >= ibs.Function {
		t.Errorf("TEA should beat IBS at both granularities: %+v vs %+v", tea, ibs)
	}
	// The paper: error does not collapse at function granularity for
	// front-end taggers because cycles are systematically misattributed
	// to the wrong events.
	if ibs.Function < ibs.Instruction/20 {
		t.Errorf("IBS function error %.4f collapsed relative to instruction error %.4f",
			ibs.Function, ibs.Instruction)
	}
}

func TestPrefetchSweep(t *testing.T) {
	rc := testConfig()
	pts := PrefetchSweep(rc, []int{0, 2, 4})
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].Speedup != 1.0 {
		t.Errorf("distance-0 speedup = %v, want 1.0", pts[0].Speedup)
	}
	if pts[1].Speedup < 1.05 {
		t.Errorf("distance-2 speedup = %.2f, want > 1.05", pts[1].Speedup)
	}
	// The top load's LLC-miss share must shrink with prefetching.
	llcShare := func(p PrefetchPoint) float64 {
		if p.LoadStack == nil {
			return 0
		}
		var llc float64
		for sig, v := range p.LoadStack {
			if sig.Has(events.STLLC) {
				llc += v
			}
		}
		return llc
	}
	if llcShare(pts[1]) > llcShare(pts[0])/2 {
		t.Errorf("prefetching did not reduce the top load's LLC-miss cycles: %v -> %v",
			llcShare(pts[0]), llcShare(pts[1]))
	}
	for _, pt := range pts {
		if pt.LoadStack == nil || pt.StoreStack == nil {
			t.Errorf("distance %d missing load/store stacks", pt.Distance)
		}
	}
}

func TestCaseStudyNAB(t *testing.T) {
	st := CaseStudyNAB(testConfig())
	if st.FastMathSpeedup < 1.4 {
		t.Errorf("nab fast-math speedup = %.2f, paper reports 1.96-2.45x", st.FastMathSpeedup)
	}
	// The FL-EX flush cost must be visible in the golden PICS.
	flex := 0.0
	for _, stk := range st.PICS.Golden.Insts {
		for sig, v := range stk {
			if sig.Has(events.FLEX) {
				flex += v
			}
		}
	}
	if flex == 0 {
		t.Errorf("nab golden PICS shows no FL-EX cycles")
	}
}

func TestUnattributedStalls(t *testing.T) {
	s := UnattributedStalls(suite(t))
	if s.EventFreeCount == 0 {
		t.Fatalf("no event-free stalls recorded")
	}
	// Shape: the vast majority of event-free stalls are short relative
	// to event-carrying stalls (the paper reports p99 = 5.8 cycles vs
	// memory-event stalls of tens-to-hundreds of cycles).
	if s.EventFreeP50 > 30 {
		t.Errorf("median event-free stall = %.1f cycles, want short", s.EventFreeP50)
	}
	if s.EventStallCount > 0 && s.EventFreeP50 > s.EventStallMean {
		t.Errorf("median event-free stall %.1f exceeds mean event stall %.1f",
			s.EventFreeP50, s.EventStallMean)
	}
}

func TestCombinedEvents(t *testing.T) {
	c := CombinedEvents(suite(t))
	if c.Fraction <= 0.02 || c.Fraction >= 0.9 {
		t.Errorf("combined-event fraction = %.3f; paper reports 30%% — combined events must be present but not dominant", c.Fraction)
	}
	if len(c.PerBenchmark) != len(workloads.All()) {
		t.Errorf("per-benchmark rows missing")
	}
}

func TestMeasureOverhead(t *testing.T) {
	// Use the evaluation interval: overhead is cost/interval, and the
	// dense test interval would inflate it artificially.
	rc := testConfig()
	rc.Interval = 4096
	rc.Jitter = 256
	o := MeasureOverhead(rc, "exchange2", 40)
	if o.PerfOverhead <= 0 {
		t.Errorf("sampling overhead = %v, want positive", o.PerfOverhead)
	}
	if o.PerfOverhead > 0.15 {
		t.Errorf("sampling overhead = %.1f%%, implausibly high", 100*o.PerfOverhead)
	}
	if o.Storage.TotalBytes() < 200 {
		t.Errorf("storage model missing: %+v", o.Storage)
	}
}

func TestFrequencySweepMonotoneish(t *testing.T) {
	rc := testConfig()
	rc.Scale = 0.05
	pts := FrequencySweep(rc, []uint64{512, 4096})
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	// Denser sampling cannot be dramatically worse for TEA.
	lo, hi := pts[0].Average[profilers.NameTEA], pts[1].Average[profilers.NameTEA]
	if lo > hi+0.1 {
		t.Errorf("TEA error at interval 512 (%.3f) much worse than at 4096 (%.3f)", lo, hi)
	}
}

func TestRenderers(t *testing.T) {
	runs := suite(t)
	var buf bytes.Buffer
	RenderTable1(&buf)
	RenderTable2(&buf, testConfig().Core)
	RenderFig3(&buf)
	RenderFig5(&buf, AccuracyStudy(runs))
	for _, br := range runs {
		if br.Workload.Name == "bwaves" {
			RenderFig6(&buf, TopInstructionPICS(br, 3))
		}
	}
	RenderFig7(&buf, EventCorrelation(runs))
	RenderFig9(&buf, GranularityStudy(runs))
	RenderStallStudy(&buf, UnattributedStalls(runs))
	RenderCombined(&buf, CombinedEvents(runs))
	RenderOverhead(&buf, MeasureOverhead(testConfig(), "exchange2", 40))
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Figure 3", "Figure 5", "Figure 6", "Figure 7",
		"Figure 9", "ST-LLC", "192-entry ROB", "average", "TEA",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}
