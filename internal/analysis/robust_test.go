package analysis

import (
	"context"
	"errors"
	"testing"

	"repro/internal/cpu"
	"repro/internal/pics"
	"repro/internal/simerr"
	"repro/internal/workloads"
)

func robustWorkload(t *testing.T) workloads.Workload {
	t.Helper()
	w, err := workloads.ByName("bwaves")
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// panicProbe blows up partway through the replay stream.
type panicProbe struct {
	cpu.BaseProbe
	commits int
}

func (p *panicProbe) OnCommit(r cpu.Ref, cycle uint64) {
	p.commits++
	if p.commits > 100 {
		panic("probe exploded mid-replay")
	}
}

// TestPanickingProbeContained is the regression test for the
// goroutine-panic bug: a probe that panics during replay used to kill
// the whole process (panic in a bare goroutine). Now it must only void
// its own technique while the other nine return profiles identical to
// a clean run.
func TestPanickingProbeContained(t *testing.T) {
	w := robustWorkload(t)
	rc := testConfig()
	rc.Scale = 0.05
	p := w.Build(rc.iters(w))

	clean, err := RunProgramContext(context.Background(), w, p, rc)
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}

	testExtraProbe = func() (string, cpu.Probe) { return "chaos-probe", &panicProbe{} }
	defer func() { testExtraProbe = nil }()
	br, err := RunProgramContext(context.Background(), w, p, rc)
	if err != nil {
		t.Fatalf("run with panicking probe must not fail outright: %v", err)
	}
	perr, ok := br.Errors["chaos-probe"]
	if !ok {
		t.Fatalf("panicking probe not recorded in Errors: %v", br.Errors)
	}
	var se *simerr.Error
	if !errors.As(perr, &se) || se.Kind != simerr.ErrInternal {
		t.Fatalf("probe panic should surface as ErrInternal, got %v", perr)
	}
	if se.Snap.Technique != "chaos-probe" {
		t.Fatalf("error snapshot technique = %q, want chaos-probe", se.Snap.Technique)
	}
	if len(br.Errors) != 1 {
		t.Fatalf("only the panicking probe should fail, got %v", br.Errors)
	}
	for i, pair := range [][2]*pics.Profile{
		{br.Golden, clean.Golden}, {br.TEA, clean.TEA}, {br.NCITEA, clean.NCITEA},
		{br.IBS, clean.IBS}, {br.SPE, clean.SPE}, {br.RIS, clean.RIS},
	} {
		if pair[0] == nil {
			t.Fatalf("technique %d profile nil despite being healthy", i)
		}
		if pair[0].Total() != pair[1].Total() {
			t.Fatalf("technique %d total %v differs from clean run %v",
				i, pair[0].Total(), pair[1].Total())
		}
	}
}

// TestCancellationDeterminism pins the no-partial-profile contract:
// cancelling RunProgramContext yields a typed ErrCanceled that unwraps
// to context.Canceled, and a nil BenchRun — regardless of when the
// cancellation lands.
func TestCancellationDeterminism(t *testing.T) {
	w := robustWorkload(t)
	rc := testConfig()
	p := w.Build(rc.iters(w))

	// Cancelled before the run even starts.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	br, err := RunProgramContext(ctx, w, p, rc)
	if br != nil {
		t.Fatalf("cancelled run returned a BenchRun")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	if !errors.Is(err, simerr.ErrCanceled) {
		t.Fatalf("err = %v, want simerr.ErrCanceled kind", err)
	}

	// Cancelled mid-run from another goroutine: still no partial
	// result, same typed error.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go cancel2()
	br, err = RunProgramContext(ctx2, w, p, rc)
	if err == nil {
		// The race can legitimately finish the run before the cancel
		// lands; that must yield a complete, error-free BenchRun.
		if br == nil || len(br.Errors) != 0 || br.TEA == nil {
			t.Fatalf("uncancelled run incomplete: br=%v", br)
		}
		return
	}
	if br != nil {
		t.Fatalf("cancelled run returned a BenchRun alongside %v", err)
	}
	if !errors.Is(err, context.Canceled) || !errors.Is(err, simerr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
}

// TestRunProgramPanicsTyped pins the legacy wrapper's behavior: a
// failing run panics with a *simerr.Error, not a bare string.
func TestRunProgramPanicsTyped(t *testing.T) {
	w := robustWorkload(t)
	rc := testConfig()
	rc.Scale = 0.05
	rc.Core.MaxCycles = 10 // guaranteed runaway
	p := w.Build(rc.iters(w))
	defer func() {
		v := recover()
		se, ok := v.(*simerr.Error)
		if !ok {
			t.Fatalf("recovered %T (%v), want *simerr.Error", v, v)
		}
		if se.Kind != simerr.ErrRunaway {
			t.Fatalf("kind = %v, want ErrRunaway", se.Kind)
		}
	}()
	RunProgram(w, p, rc)
	t.Fatal("RunProgram should have panicked")
}
