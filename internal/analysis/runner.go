// Package analysis is the experiment harness: it runs the benchmark
// suite with every profiling technique attached to one simulation (the
// paper's single-trace, out-of-band evaluation methodology) and
// regenerates the rows and series of every table and figure in the
// paper's evaluation (Section 4-6). DESIGN.md maps each experiment ID
// to the modules involved.
package analysis

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/events"
	"repro/internal/pics"
	"repro/internal/profilers"
	"repro/internal/program"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// RunConfig parameterizes one evaluation run.
type RunConfig struct {
	// Interval is the sampling period in cycles. The paper samples at
	// 4 KHz on 3.2 GHz hardware (one sample per 800,000 cycles over
	// minutes-long runs); simulated runs are scaled down, so the
	// default interval keeps the per-run sample count comparable.
	Interval uint64
	// Jitter decorrelates the sample clock from loop periods.
	Jitter uint64
	// Seed drives the sample-clock jitter.
	Seed uint64
	// Scale multiplies each workload's default iteration count
	// (1.0 = the evaluation size; tests use smaller values).
	Scale float64
	// Core is the core configuration (Table 2 defaults).
	Core cpu.Config
}

// DefaultRunConfig returns the evaluation configuration. The sampling
// interval is scaled with the run lengths: the paper samples once per
// 800,000 cycles over trillion-cycle SPEC runs (~1.5M samples, tens of
// samples per hot static instruction); the simulated kernels run for
// ~10^6 cycles with ~10^2 hot static instructions, so a 256-cycle
// interval keeps the samples-per-instruction density in the same
// regime. The interval is a flag in cmd/teaexp and swept in Figure 8.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Interval: 256,
		Jitter:   16,
		Seed:     1,
		Scale:    1.0,
		Core:     cpu.DefaultConfig(),
	}
}

func (rc RunConfig) iters(w workloads.Workload) int {
	n := int(float64(w.DefaultIters) * rc.Scale)
	if n < 2 {
		n = 2
	}
	return n
}

// BenchRun holds everything one simulation produced: the golden
// reference, every technique's profile, event counters, and the
// auxiliary statistics probes.
type BenchRun struct {
	Workload workloads.Workload
	Program  *program.Program
	Stats    *cpu.Stats

	Golden   *pics.Profile
	TEA      *pics.Profile
	NCITEA   *pics.Profile
	IBS      *pics.Profile
	SPE      *pics.Profile
	RIS      *pics.Profile
	Counters *profilers.Counters
	Events   *profilers.EventStats
	Stalls   *profilers.StallProbe

	// finish materializes the technique profiles once attribution is
	// complete (dense accumulators flush lazily).
	finish func()
}

// Techniques returns the sampled techniques' profiles in evaluation
// order (IBS, SPE, RIS, NCI-TEA, TEA — the Figure 5 order).
func (br *BenchRun) Techniques() []*pics.Profile {
	return []*pics.Profile{br.IBS, br.SPE, br.RIS, br.NCITEA, br.TEA}
}

// RunBenchmark simulates one workload with every technique attached.
func RunBenchmark(w workloads.Workload, rc RunConfig) *BenchRun {
	return RunProgram(w, w.Build(rc.iters(w)), rc)
}

// suiteProbes builds the nine evaluation probes for one run. A non-nil
// core wires the probes for live attachment; with a nil core the TEA
// units accumulate against prog (the replay path).
func suiteProbes(c *cpu.CPU, p *program.Program, rc RunConfig) (probes []cpu.Probe, br *BenchRun) {
	goldenCfg := core.Config{Set: events.TEASet, EveryCycle: true, Prog: p}
	golden := core.NewTEA(c, goldenCfg)
	teaCfg := core.DefaultConfig()
	teaCfg.IntervalCycles = rc.Interval
	teaCfg.JitterCycles = rc.Jitter
	teaCfg.Seed = rc.Seed
	teaCfg.Prog = p
	tea := core.NewTEA(c, teaCfg)
	nci := profilers.NewNCITEA(rc.Interval, rc.Jitter, rc.Seed+1)
	ibs := profilers.NewIBS(rc.Interval, rc.Jitter, rc.Seed+2)
	spe := profilers.NewSPE(rc.Interval, rc.Jitter, rc.Seed+3)
	ris := profilers.NewRIS(rc.Interval, rc.Jitter, rc.Seed+4)
	counters := profilers.NewCounters()
	eventStats := profilers.NewEventStats()
	stalls := profilers.NewStallProbe()

	br = &BenchRun{Program: p, Counters: counters, Events: eventStats, Stalls: stalls}
	probes = []cpu.Probe{golden, tea, nci, ibs, spe, ris, counters, eventStats, stalls}
	br.finish = func() {
		br.Golden = golden.Profile()
		br.TEA = tea.Profile()
		br.NCITEA = nci.Profile()
		br.IBS = ibs.Profile()
		br.SPE = spe.Profile()
		br.RIS = ris.Profile()
	}
	return probes, br
}

// RunProgram is RunBenchmark for an explicitly built program (used by
// the case studies, which vary prefetch distance or fast-math). It
// follows the paper's capture-once, analyze-many methodology (Section
// 4): the core runs exactly once with only a trace-capture probe, and
// the recorded stream is then replayed to the techniques out-of-band,
// partitioned across goroutines. Replay is bit-identical to live
// attachment (see RunProgramLive and the equivalence test), so the
// profiles do not depend on the grouping.
func RunProgram(w workloads.Workload, p *program.Program, rc RunConfig) *BenchRun {
	c := cpu.New(rc.Core, p)
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	c.Attach(tw)
	stats := c.Run()
	if err := tw.Err(); err != nil {
		panic(fmt.Sprintf("analysis: in-memory trace capture failed: %v", err))
	}

	probes, br := suiteProbes(nil, p, rc)
	br.Workload = w
	br.Stats = stats

	// Partition the probes across up to GOMAXPROCS replay goroutines.
	// Each group decodes the stream independently, so a single-threaded
	// environment pays exactly one decode pass while parallel ones
	// overlap the techniques.
	par := runtime.GOMAXPROCS(0)
	if par > len(probes) {
		par = len(probes)
	}
	data := buf.Bytes()
	errs := make([]error, par)
	var wg sync.WaitGroup
	for g := 0; g < par; g++ {
		group := make([]cpu.Probe, 0, (len(probes)+par-1)/par)
		for i := g; i < len(probes); i += par {
			group = append(group, probes[i])
		}
		wg.Add(1)
		go func(g int, ps []cpu.Probe) {
			defer wg.Done()
			_, errs[g] = trace.Replay(bytes.NewReader(data), ps...)
		}(g, group)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			panic(fmt.Sprintf("analysis: replaying captured trace: %v", err))
		}
	}
	br.finish()
	return br
}

// RunProgramLive attaches every technique directly to the core — the
// pre-capture evaluation path. The replay path must produce profiles
// byte-identical to this one; the internal/trace equivalence test pins
// that invariant across the whole suite.
func RunProgramLive(w workloads.Workload, p *program.Program, rc RunConfig) *BenchRun {
	c := cpu.New(rc.Core, p)
	probes, br := suiteProbes(c, p, rc)
	for _, pr := range probes {
		c.Attach(pr)
	}
	br.Workload = w
	br.Stats = c.Run()
	br.finish()
	return br
}

// RunSuite runs the whole benchmark suite. Benchmarks are independent
// simulations, so they run in parallel across the available CPUs; each
// simulation is single-threaded and seeded, so results are identical to
// a serial run.
func RunSuite(rc RunConfig) []*BenchRun {
	all := workloads.All()
	runs := make([]*BenchRun, len(all))
	par := runtime.GOMAXPROCS(0)
	if par > len(all) {
		par = len(all)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for p := 0; p < par; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				runs[i] = RunBenchmark(all[i], rc)
			}
		}()
	}
	for i := range all {
		work <- i
	}
	close(work)
	wg.Wait()
	return runs
}
