// Package analysis is the experiment harness: it runs the benchmark
// suite with every profiling technique attached to one simulation (the
// paper's single-trace, out-of-band evaluation methodology) and
// regenerates the rows and series of every table and figure in the
// paper's evaluation (Section 4-6). DESIGN.md maps each experiment ID
// to the modules involved.
package analysis

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/events"
	"repro/internal/pics"
	"repro/internal/profilers"
	"repro/internal/program"
	"repro/internal/simerr"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// RunConfig parameterizes one evaluation run.
type RunConfig struct {
	// Interval is the sampling period in cycles. The paper samples at
	// 4 KHz on 3.2 GHz hardware (one sample per 800,000 cycles over
	// minutes-long runs); simulated runs are scaled down, so the
	// default interval keeps the per-run sample count comparable.
	Interval uint64
	// Jitter decorrelates the sample clock from loop periods.
	Jitter uint64
	// Seed drives the sample-clock jitter.
	Seed uint64
	// Scale multiplies each workload's default iteration count
	// (1.0 = the evaluation size; tests use smaller values).
	Scale float64
	// Core is the core configuration (Table 2 defaults).
	Core cpu.Config
	// CheckpointInterval enables interval-parallel capture when > 0:
	// the capture path checkpoints the program every this many
	// committed instructions and simulates the intervals concurrently,
	// stitching byte-identical trace segments (see
	// CaptureTraceCheckpointed). 0 captures serially. The knob changes
	// wall-clock time only — never trace bytes, profiles, or cache
	// keys.
	CheckpointInterval uint64
	// CaptureWorkers bounds the interval-parallel capture worker pool
	// (0 = GOMAXPROCS). Ignored when CheckpointInterval is 0.
	CaptureWorkers int
}

// DefaultRunConfig returns the evaluation configuration. The sampling
// interval is scaled with the run lengths: the paper samples once per
// 800,000 cycles over trillion-cycle SPEC runs (~1.5M samples, tens of
// samples per hot static instruction); the simulated kernels run for
// ~10^6 cycles with ~10^2 hot static instructions, so a 256-cycle
// interval keeps the samples-per-instruction density in the same
// regime. The interval is a flag in cmd/teaexp and swept in Figure 8.
func DefaultRunConfig() RunConfig {
	return RunConfig{
		Interval: 256,
		Jitter:   16,
		Seed:     1,
		Scale:    1.0,
		Core:     cpu.DefaultConfig(),
	}
}

func (rc RunConfig) iters(w workloads.Workload) int {
	n := int(float64(w.DefaultIters) * rc.Scale)
	if n < 2 {
		n = 2
	}
	return n
}

// Iters returns the iteration count rc's Scale implies for w — the
// sizing RunBenchmark applies. Exported so out-of-package callers (the
// teaserve job builder) construct programs byte-identical to a local
// harness run with the same configuration.
func (rc RunConfig) Iters(w workloads.Workload) int { return rc.iters(w) }

// BenchRun holds everything one simulation produced: the golden
// reference, every technique's profile, event counters, and the
// auxiliary statistics probes.
type BenchRun struct {
	Workload workloads.Workload
	Program  *program.Program
	Stats    *cpu.Stats

	Golden   *pics.Profile
	TEA      *pics.Profile
	NCITEA   *pics.Profile
	IBS      *pics.Profile
	SPE      *pics.Profile
	RIS      *pics.Profile
	Counters *profilers.Counters
	Events   *profilers.EventStats
	Stalls   *profilers.StallProbe

	// Errors records techniques whose probe failed during replay,
	// keyed by technique name. A failed technique's profile is nil;
	// the remaining techniques are complete and trustworthy. The
	// fault-free path always leaves the map empty.
	Errors map[string]error

	// finish materializes the technique profiles once attribution is
	// complete (dense accumulators flush lazily), skipping any
	// technique recorded in Errors.
	finish func()
}

// techniqueNames labels suiteProbes' probes, in construction order.
// The names key BenchRun.Errors and the chaos harness's reports.
var techniqueNames = []string{
	"golden", "tea", "nci-tea", "ibs", "spe", "ris", "counters", "events", "stalls",
}

// Techniques returns the sampled techniques' profiles in evaluation
// order (IBS, SPE, RIS, NCI-TEA, TEA — the Figure 5 order).
func (br *BenchRun) Techniques() []*pics.Profile {
	return []*pics.Profile{br.IBS, br.SPE, br.RIS, br.NCITEA, br.TEA}
}

// RunBenchmark simulates one workload with every technique attached.
func RunBenchmark(w workloads.Workload, rc RunConfig) *BenchRun {
	return RunProgram(w, w.Build(rc.iters(w)), rc)
}

// suiteProbes builds the nine evaluation probes for one run. A non-nil
// core wires the probes for live attachment; with a nil core the TEA
// units accumulate against prog (the replay path).
func suiteProbes(c *cpu.CPU, p *program.Program, rc RunConfig) (probes []cpu.Probe, br *BenchRun) {
	goldenCfg := core.Config{Set: events.TEASet, EveryCycle: true, Prog: p}
	golden := core.NewTEA(c, goldenCfg)
	teaCfg := core.DefaultConfig()
	teaCfg.IntervalCycles = rc.Interval
	teaCfg.JitterCycles = rc.Jitter
	teaCfg.Seed = rc.Seed
	teaCfg.Prog = p
	tea := core.NewTEA(c, teaCfg)
	nci := profilers.NewNCITEA(rc.Interval, rc.Jitter, rc.Seed+1)
	ibs := profilers.NewIBS(rc.Interval, rc.Jitter, rc.Seed+2)
	spe := profilers.NewSPE(rc.Interval, rc.Jitter, rc.Seed+3)
	ris := profilers.NewRIS(rc.Interval, rc.Jitter, rc.Seed+4)
	counters := profilers.NewCounters()
	eventStats := profilers.NewEventStats()
	stalls := profilers.NewStallProbe()

	br = &BenchRun{
		Program: p, Counters: counters, Events: eventStats, Stalls: stalls,
		Errors: map[string]error{},
	}
	probes = []cpu.Probe{golden, tea, nci, ibs, spe, ris, counters, eventStats, stalls}
	br.finish = func() {
		failed := func(name string) bool { _, bad := br.Errors[name]; return bad }
		if !failed("golden") {
			br.Golden = golden.Profile()
		}
		if !failed("tea") {
			br.TEA = tea.Profile()
		}
		if !failed("nci-tea") {
			br.NCITEA = nci.Profile()
		}
		if !failed("ibs") {
			br.IBS = ibs.Profile()
		}
		if !failed("spe") {
			br.SPE = spe.Profile()
		}
		if !failed("ris") {
			br.RIS = ris.Profile()
		}
		if failed("counters") {
			br.Counters = nil
		}
		if failed("events") {
			br.Events = nil
		}
		if failed("stalls") {
			br.Stalls = nil
		}
	}
	return probes, br
}

// guardedProbe isolates one technique's probe: a panic in any hook
// latches a typed error on the guard and disables the probe's
// remaining hooks, so one broken technique cannot take down the replay
// goroutine it shares with others — let alone the process.
type guardedProbe struct {
	name     string
	workload string
	inner    cpu.Probe
	err      *simerr.Error
}

func (g *guardedProbe) catch() {
	if v := recover(); v != nil {
		g.err = simerr.FromPanic(v, simerr.Snapshot{Workload: g.workload, Technique: g.name})
	}
}

// OnCycle forwards the cycle hook unless the probe already failed.
func (g *guardedProbe) OnCycle(ci *cpu.CycleInfo) {
	if g.err != nil {
		return
	}
	defer g.catch()
	g.inner.OnCycle(ci)
}

// OnFetch forwards the fetch hook unless the probe already failed.
func (g *guardedProbe) OnFetch(r cpu.Ref, cycle uint64) {
	if g.err != nil {
		return
	}
	defer g.catch()
	g.inner.OnFetch(r, cycle)
}

// OnDispatch forwards the dispatch hook unless the probe already failed.
func (g *guardedProbe) OnDispatch(r cpu.Ref, cycle uint64) {
	if g.err != nil {
		return
	}
	defer g.catch()
	g.inner.OnDispatch(r, cycle)
}

// OnCommit forwards the commit hook unless the probe already failed.
func (g *guardedProbe) OnCommit(r cpu.Ref, cycle uint64) {
	if g.err != nil {
		return
	}
	defer g.catch()
	g.inner.OnCommit(r, cycle)
}

// OnSquash forwards the squash hook unless the probe already failed.
func (g *guardedProbe) OnSquash(r cpu.Ref, cycle uint64) {
	if g.err != nil {
		return
	}
	defer g.catch()
	g.inner.OnSquash(r, cycle)
}

// OnDone forwards the end-of-run hook unless the probe already failed.
func (g *guardedProbe) OnDone(totalCycles uint64) {
	if g.err != nil {
		return
	}
	defer g.catch()
	g.inner.OnDone(totalCycles)
}

// testExtraProbe, when non-nil, injects one extra named probe into the
// replay partition. The panic-containment regression test uses it to
// prove a misbehaving probe cannot crash the process or void the other
// techniques' profiles.
var testExtraProbe func() (string, cpu.Probe)

// CaptureTrace runs the core exactly once with only the trace-capture
// probe attached and returns the encoded stream — the "simulate once"
// half of the paper's capture/replay methodology. The chaos harness
// mutates the returned bytes; ReplayCaptured consumes them.
func CaptureTrace(ctx context.Context, p *program.Program, rc RunConfig) ([]byte, *cpu.Stats, error) {
	c := cpu.New(rc.Core, p)
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	c.Attach(tw)
	stats, err := c.RunContext(ctx)
	if err != nil {
		return nil, nil, err
	}
	if err := tw.Err(); err != nil {
		return nil, nil, simerr.Wrap(simerr.ErrInternal,
			simerr.Snapshot{Program: p.Name}, err, "in-memory trace capture failed")
	}
	addCodecCounters(tw.Counters())
	return buf.Bytes(), stats, nil
}

// ReplayCaptured replays an encoded trace to the full technique suite,
// partitioned across up to GOMAXPROCS goroutines; each group decodes
// the stream independently, so a single-threaded environment pays
// exactly one decode pass while parallel ones overlap the techniques.
// Replay is bit-identical to live attachment (see RunProgramLive and
// the equivalence test), so the profiles do not depend on grouping.
//
// Stream-level failures — corruption, truncation, cancellation — abort
// the whole replay with a typed error and no BenchRun. A failure inside
// one technique's probe only voids that technique (BenchRun.Errors);
// the remaining techniques still produce complete profiles.
func ReplayCaptured(ctx context.Context, w workloads.Workload, p *program.Program, rc RunConfig, data []byte) (*BenchRun, error) {
	probes, br := suiteProbes(nil, p, rc)
	br.Workload = w

	names := append([]string(nil), techniqueNames...)
	if testExtraProbe != nil {
		name, pr := testExtraProbe()
		names = append(names, name)
		probes = append(probes, pr)
	}
	guards := make([]*guardedProbe, len(probes))
	for i, pr := range probes {
		guards[i] = &guardedProbe{name: names[i], workload: w.Name, inner: pr}
	}

	par := runtime.GOMAXPROCS(0)
	if par > len(guards) {
		par = len(guards)
	}
	streamErrs := make([]error, par)
	panicErrs := make([]error, par)
	var wg sync.WaitGroup
	for g := 0; g < par; g++ {
		group := make([]cpu.Probe, 0, (len(guards)+par-1)/par)
		for i := g; i < len(guards); i += par {
			group = append(group, guards[i])
		}
		wg.Add(1)
		go func(g int, ps []cpu.Probe) {
			defer wg.Done()
			// Last-resort containment. The guards already catch probe
			// panics, so anything surfacing here is an infrastructure
			// bug — record it instead of letting a bare-goroutine
			// panic kill the whole process.
			defer func() {
				if v := recover(); v != nil {
					panicErrs[g] = simerr.FromPanic(v, simerr.Snapshot{Workload: w.Name})
				}
			}()
			_, streamErrs[g] = trace.ReplayBytes(ctx, data, ps...)
		}(g, group)
	}
	wg.Wait()
	// Every group decodes the same bytes, so a decode failure (or a
	// cancellation) in any group condemns the stream for all of them.
	for _, err := range streamErrs {
		if err != nil {
			return nil, err
		}
	}
	// A recovered worker panic voids only that group's techniques.
	for g, perr := range panicErrs {
		if perr == nil {
			continue
		}
		for i := g; i < len(guards); i += par {
			if guards[i].err == nil {
				br.Errors[names[i]] = perr
			}
		}
	}
	for _, g := range guards {
		if g.err != nil {
			br.Errors[g.name] = g.err
		}
	}
	br.finish()
	return br, nil
}

// RunProgramContext is the panic-free, cancellable entry point: it
// captures the program's trace once — served from the content-addressed
// trace store when any prior run already captured this (program, core)
// pair — and replays it to every technique out-of-band (the paper's
// single-trace methodology, Section 4), honoring ctx in both halves. Every failure mode — runaway programs,
// watchdog-detected deadlock, invalid programs, corrupt streams,
// cancellation — comes back as a typed *simerr.Error; a cancelled or
// failed run returns a nil BenchRun, never a partial profile.
func RunProgramContext(ctx context.Context, w workloads.Workload, p *program.Program, rc RunConfig) (br *BenchRun, err error) {
	defer func() {
		if err != nil {
			br = nil
		}
	}()
	defer simerr.Recover(&err, simerr.Snapshot{Workload: w.Name, Program: p.Name})
	data, stats, err := capturedTrace(ctx, p, rc)
	if err != nil {
		return nil, err
	}
	br, err = ReplayCaptured(ctx, w, p, rc, data)
	if err != nil {
		return nil, err
	}
	br.Stats = stats
	return br, nil
}

// RunProgram is RunBenchmark for an explicitly built program (used by
// the case studies, which vary prefetch distance or fast-math). It is
// the crash-loudly convenience wrapper over RunProgramContext for the
// experiment harness, where any failure is a bug in the repo itself:
// it panics with the typed error, including when a single technique
// failed during replay.
//
//tealint:ctxroot crash-loudly harness entry point with no caller context; cancellable callers use RunProgramContext
func RunProgram(w workloads.Workload, p *program.Program, rc RunConfig) *BenchRun {
	br, err := RunProgramContext(context.Background(), w, p, rc)
	if err != nil {
		panic(asSimErr(err, w.Name))
	}
	for _, name := range techniqueNames {
		if terr := br.Errors[name]; terr != nil {
			panic(asSimErr(terr, w.Name))
		}
	}
	return br
}

// asSimErr surfaces the typed error inside err, wrapping foreign errors
// so boundary recovery always sees a *simerr.Error.
func asSimErr(err error, workload string) *simerr.Error {
	var se *simerr.Error
	if errors.As(err, &se) {
		return se
	}
	return simerr.Wrap(simerr.ErrInternal, simerr.Snapshot{Workload: workload}, err, "run failed")
}

// RunProgramLive attaches every technique directly to the core — the
// pre-capture evaluation path. The replay path must produce profiles
// byte-identical to this one; the internal/trace equivalence test pins
// that invariant across the whole suite.
func RunProgramLive(w workloads.Workload, p *program.Program, rc RunConfig) *BenchRun {
	c := cpu.New(rc.Core, p)
	probes, br := suiteProbes(c, p, rc)
	for _, pr := range probes {
		c.Attach(pr)
	}
	br.Workload = w
	br.Stats = c.Run()
	br.finish()
	return br
}

// RunSuite runs the whole benchmark suite in two scheduled phases:
// every distinct capture first (parallel across workloads, deduplicated
// through the trace store), then every replay from the shared bytes.
// Each simulation is single-threaded and seeded, so results are
// identical to a serial run — and to a run that hit the cache.
//
//tealint:ctxroot suite entry point invoked by the experiment CLIs, which have no context to thread
func RunSuite(rc RunConfig) []*BenchRun {
	jobs := suiteJobs(rc)
	if err := scheduleCaptures(context.Background(), jobs); err != nil {
		panic(asSimErr(err, ""))
	}
	runs := make([]*BenchRun, len(jobs))
	par := runtime.GOMAXPROCS(0)
	if par > len(jobs) {
		par = len(jobs)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for p := 0; p < par; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				runs[i] = RunProgram(jobs[i].w, jobs[i].p, rc)
			}
		}()
	}
	for i := range jobs {
		work <- i
	}
	close(work)
	wg.Wait()
	return runs
}
