package analysis

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"sync"
	"sync/atomic"

	"repro/internal/cpu"
	"repro/internal/program"
	"repro/internal/simerr"
	"repro/internal/trace"
	"repro/internal/tracestore"
)

// DefaultStoreBudget is the default memory-tier budget of the process
// trace store. Suite traces are a few MB each (~7 bytes/cycle), so the
// budget comfortably holds every capture the benchmark harness needs
// while still bounding a pathological run.
const DefaultStoreBudget = 512 << 20

// NewTraceStore builds a trace store wired with this package's entry
// validator, so disk-tier entries are verified end to end (stats
// envelope + trace integrity digest) before being served. dir == ""
// disables the disk tier; memBudget 0 leaves the memory tier
// unbounded.
func NewTraceStore(memBudget int64, dir string) *tracestore.Store {
	return tracestore.New(memBudget, dir, validateEntry)
}

var (
	storeMu    sync.RWMutex
	traceStore = NewTraceStore(DefaultStoreBudget, "")
)

// SetTraceStore swaps the process-wide trace store (e.g. to attach a
// disk tier from the -tracecache flag / TEA_TRACE_CACHE) and returns
// the previous one so tests can restore it.
func SetTraceStore(s *tracestore.Store) *tracestore.Store {
	storeMu.Lock()
	defer storeMu.Unlock()
	prev := traceStore
	traceStore = s
	return prev
}

// TraceStore returns the process-wide trace store.
func TraceStore() *tracestore.Store {
	storeMu.RLock()
	defer storeMu.RUnlock()
	return traceStore
}

// captureCount counts actual simulations performed by the cached
// capture path (cache hits do not increment it). The Figure 8
// benchmark asserts exactly one capture per workload through it, and
// the disk-tier test asserts a second run performs zero.
var captureCount atomic.Uint64

// CaptureCount returns the number of simulations the cached capture
// path has performed in this process.
func CaptureCount() uint64 { return captureCount.Load() }

// Codec totals: every finished capture writer (serial or stitched)
// folds its trace.Counters in here, so operators can see suite-wide
// logical-vs-encoded bytes — the basis for sizing the disk tier — on
// /v1/stats without re-scanning any stream.
var (
	codecCaptures atomic.Uint64
	codecRecords  atomic.Uint64
	codecMatched  atomic.Uint64
	codecLogical  atomic.Uint64
	codecEncoded  atomic.Uint64
)

// CodecTotals is the process-wide aggregate of trace codec work.
type CodecTotals struct {
	Captures       uint64 // capture streams written
	Records        uint64 // records across those streams
	MatchedRecords uint64 // records absorbed by the pattern table
	LogicalBytes   uint64 // v3-equivalent record-at-a-time bytes
	EncodedBytes   uint64 // v4 bytes actually produced
}

// CompressionRatio is suite-wide logical over encoded bytes.
func (t CodecTotals) CompressionRatio() float64 {
	if t.EncodedBytes == 0 {
		return 0
	}
	return float64(t.LogicalBytes) / float64(t.EncodedBytes)
}

func addCodecCounters(c trace.Counters) {
	codecCaptures.Add(1)
	codecRecords.Add(c.Records)
	codecMatched.Add(c.MatchedRecords)
	codecLogical.Add(c.LogicalBytes)
	codecEncoded.Add(c.EncodedBytes)
}

// CodecTotalStats returns the process-wide codec totals.
func CodecTotalStats() CodecTotals {
	return CodecTotals{
		Captures:       codecCaptures.Load(),
		Records:        codecRecords.Load(),
		MatchedRecords: codecMatched.Load(),
		LogicalBytes:   codecLogical.Load(),
		EncodedBytes:   codecEncoded.Load(),
	}
}

// captureKey derives the content address of one capture: a SHA-256
// over the trace format version, the program's complete contents, and
// every RunConfig field. The cachekey analyzer enforces the "every
// field" part — adding a knob to RunConfig (or any struct it reaches)
// without folding it in here is a vet failure.
//
//tealint:cachekey
func captureKey(p *program.Program, rc RunConfig) tracestore.Key {
	h := tracestore.NewHasher()
	h.Uint(trace.FormatVersion)
	h.Program(p)
	h.Uint(rc.Interval)
	h.Uint(rc.Jitter)
	h.Uint(rc.Seed)
	h.Float(rc.Scale)
	h.CPUConfig(rc.Core)
	h.Uint(rc.CheckpointInterval)
	h.Uint(uint64(rc.CaptureWorkers))
	return h.Sum()
}

// captureConfig canonicalizes rc for capture keying. The captured
// stream depends only on the program and the core configuration:
// Interval, Jitter, and Seed drive the samplers, which run at replay
// time, and Scale is already baked into the built program's iteration
// count. Zeroing them here means every sweep point and every figure
// that shares a (program, core) pair shares one capture — while
// captureKey itself stays sensitive to every field, so callers that
// hash a non-canonical config (none today) would still be correct,
// just less shared.
func captureConfig(rc RunConfig) RunConfig {
	rc.Interval, rc.Jitter, rc.Seed = 0, 0, 0
	rc.Scale = 0
	// The checkpoint knobs steer how a capture is produced, never what
	// it contains (the parallel path is byte-identical to serial, by
	// verification), so parallel and serial captures share one entry.
	rc.CheckpointInterval, rc.CaptureWorkers = 0, 0
	return rc
}

// capturedTrace returns the encoded trace and run statistics for
// (p, rc), simulating only if no store tier holds the capture.
// Concurrent callers of the same key share one simulation. The
// returned trace bytes are shared with the cache and other callers —
// they must only be replayed, never mutated (the chaos harness, which
// does mutate, uses CaptureTrace directly). The returned Stats is a
// fresh copy each call.
func capturedTrace(ctx context.Context, p *program.Program, rc RunConfig) ([]byte, *cpu.Stats, error) {
	crc := captureConfig(rc)
	entry, err := TraceStore().GetOrPut(captureKey(p, crc), func() ([]byte, error) {
		// One increment per workload simulated, regardless of how many
		// interval segments the parallel path splits the work into.
		captureCount.Add(1)
		data, stats, err := CaptureTraceCheckpointed(ctx, p, crc, rc.CheckpointInterval, rc.CaptureWorkers)
		if err != nil {
			return nil, err
		}
		return encodeEntry(stats, data)
	})
	if err != nil {
		return nil, nil, err
	}
	stats, data, err := decodeEntry(entry)
	if err != nil {
		// Memory-tier entries come from our own encoder and disk-tier
		// entries pass validateEntry before being served, so this is an
		// internal bug, not cache corruption.
		return nil, nil, simerr.Wrap(simerr.ErrInternal,
			simerr.Snapshot{Program: p.Name}, err, "trace cache entry undecodable")
	}
	return data, stats, nil
}

// Cache entries carry the run's cpu.Stats alongside the trace stream
// (a replayed BenchRun needs both): a varint-length-prefixed stats
// JSON, then the raw trace bytes.

func encodeEntry(stats *cpu.Stats, data []byte) ([]byte, error) {
	sj, err := json.Marshal(stats)
	if err != nil {
		return nil, simerr.Wrap(simerr.ErrInternal, simerr.Snapshot{}, err,
			"encoding capture stats")
	}
	out := make([]byte, 0, binary.MaxVarintLen64+len(sj)+len(data))
	out = binary.AppendUvarint(out, uint64(len(sj)))
	out = append(out, sj...)
	out = append(out, data...)
	return out, nil
}

func decodeEntry(entry []byte) (*cpu.Stats, []byte, error) {
	n, w := binary.Uvarint(entry)
	if w <= 0 || n > uint64(len(entry)-w) {
		return nil, nil, simerr.New(simerr.ErrDecode, simerr.Snapshot{},
			"trace cache entry: bad stats length")
	}
	var stats cpu.Stats
	if err := json.Unmarshal(entry[w:w+int(n)], &stats); err != nil {
		return nil, nil, simerr.Wrap(simerr.ErrDecode, simerr.Snapshot{}, err,
			"trace cache entry: stats")
	}
	return &stats, entry[w+int(n):], nil
}

// DecodeCachedEntry splits a trace-store entry into its run statistics
// and raw trace stream without validating the stream (callers that need
// validation replay or Verify it). `teatrace -stats` uses it to inspect
// cache entries directly.
func DecodeCachedEntry(entry []byte) (*cpu.Stats, []byte, error) {
	return decodeEntry(entry)
}

// validateEntry is the disk-tier validator: an entry is served only if
// its stats envelope parses and the trace stream inside decodes end to
// end with a matching integrity digest. Anything less is treated as a
// miss by the store (recapture), so cache corruption can never surface
// as an ErrDecode — let alone a wrong profile — in an experiment.
func validateEntry(entry []byte) error {
	_, data, err := decodeEntry(entry)
	if err != nil {
		return err
	}
	return trace.Verify(data)
}
