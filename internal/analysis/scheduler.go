// Suite scheduling: the experiments above this layer ask for whole
// grids of (workload, configuration) runs — Figure 5/6/7/9 share one
// suite pass, Figure 8 sweeps the sampling interval across the suite.
// The scheduler enumerates every capture such a grid needs, collapses
// duplicates by cache key, performs each distinct capture exactly once
// (in parallel across workloads), and then fans the cheap replays out
// from the shared bytes. Captures are interval-independent (sampling
// happens at replay), so an N-point frequency sweep costs one capture
// per workload plus N replays instead of N full suite simulations.
package analysis

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/program"
	"repro/internal/tracestore"
	"repro/internal/workloads"
)

// captureJob is one (workload, program, config) cell of an experiment
// grid.
type captureJob struct {
	w  workloads.Workload
	p  *program.Program
	rc RunConfig
}

// suiteJobs builds the one-job-per-workload grid for rc.
func suiteJobs(rc RunConfig) []captureJob {
	all := workloads.All()
	jobs := make([]captureJob, len(all))
	for i, w := range all {
		jobs[i] = captureJob{w: w, p: w.Build(rc.iters(w)), rc: rc}
	}
	return jobs
}

// scheduleCaptures captures each distinct (program, core) pair of the
// grid exactly once, in parallel across the available CPUs. Jobs that
// share a capture key — identical programs, or configs differing only
// in sampling knobs — are collapsed before any simulation starts, so
// parallelism is spent on distinct work (the per-key singleflight in
// the store is only a backstop for concurrent unrelated callers).
// After it returns, every job's capture is in the store and replays
// are pure cache hits.
func scheduleCaptures(ctx context.Context, jobs []captureJob) error {
	seen := make(map[tracestore.Key]bool, len(jobs))
	distinct := make([]captureJob, 0, len(jobs))
	for _, j := range jobs {
		k := captureKey(j.p, captureConfig(j.rc))
		if !seen[k] {
			seen[k] = true
			distinct = append(distinct, j)
		}
	}
	par := runtime.GOMAXPROCS(0)
	if par > len(distinct) {
		par = len(distinct)
	}
	errs := make([]error, len(distinct))
	var wg sync.WaitGroup
	work := make(chan int)
	for p := 0; p < par; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				_, _, errs[i] = capturedTrace(ctx, distinct[i].p, distinct[i].rc)
			}
		}()
	}
	for i := range distinct {
		work <- i
	}
	close(work)
	wg.Wait()
	// Deterministic error selection: the first failing job in grid
	// order, regardless of which goroutine hit it.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// SweepSeed derives the sampler seed for one frequency-sweep point
// from the base seed and the interval (a splitmix64-style mix). Every
// (workload, interval) replay gets its own deterministic stream: sweep
// points share capture bytes, so seeding them identically would
// correlate their samplers and turn shared aliasing artifacts into
// systematic sweep-wide bias.
func SweepSeed(base, interval uint64) uint64 {
	z := base + 0x9e3779b97f4a7c15*(interval+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// SweepConfig is the run configuration of one FrequencySweep point:
// the interval is swept, the jitter scales with it (same 1/16 ratio as
// the defaults), and the seed is re-derived per interval via
// SweepSeed. The recorded Profile.Seed of each sweep run exposes the
// derived seed for verification.
func SweepConfig(rc RunConfig, interval uint64) RunConfig {
	rc.Interval = interval
	rc.Jitter = interval / 16
	rc.Seed = SweepSeed(rc.Seed, interval)
	return rc
}
