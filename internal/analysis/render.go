package analysis

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/events"
	"repro/internal/pics"
)

// RenderTable1 prints the Table 1 event matrix (events per technique).
func RenderTable1(w io.Writer) {
	fmt.Fprintf(w, "Table 1: The performance events of TEA, IBS, SPE, and RIS.\n\n")
	fmt.Fprintf(w, "%-8s %-40s %-4s %-4s %-4s %-4s\n", "Event", "Description", "TEA", "IBS", "SPE", "RIS")
	mark := func(s events.Set, e events.Event) string {
		if s.Has(e) {
			return "y"
		}
		return "-"
	}
	for _, e := range events.AllEvents() {
		fmt.Fprintf(w, "%-8s %-40s %-4s %-4s %-4s %-4s\n",
			e.String(), e.Description(),
			mark(events.TEASet, e), mark(events.IBSSet, e),
			mark(events.SPESet, e), mark(events.RISSet, e))
	}
	fmt.Fprintf(w, "\nPSV bits: TEA=%d IBS=%d SPE=%d RIS=%d\n",
		events.TEASet.Bits(), events.IBSSet.Bits(), events.SPESet.Bits(), events.RISSet.Bits())
}

// RenderTable2 prints the Table 2 architecture configuration.
func RenderTable2(w io.Writer, cfg cpu.Config) {
	fmt.Fprintf(w, "Table 2: Baseline architecture configuration.\n\n%s", cfg.Describe())
}

// RenderFig3 prints the Figure 3 event hierarchy for each commit state.
func RenderFig3(w io.Writer) {
	fmt.Fprintf(w, "Figure 3: Performance event hierarchies by commit state.\n")
	for _, s := range []events.CommitState{events.Stalled, events.Drained, events.Flushed} {
		fmt.Fprintf(w, "\n%s:\n", s)
		var walk func(n *events.HierarchyNode, depth int)
		walk = func(n *events.HierarchyNode, depth int) {
			if !n.IsRoot {
				fmt.Fprintf(w, "%*s%s (%s)\n", depth*2, "", n.Event, n.Event.Description())
			}
			for _, c := range n.Children {
				walk(c, depth+1)
			}
		}
		walk(events.Hierarchy(s), 0)
	}
	fmt.Fprintf(w, "\nDependent event: %s can only occur after %s (root of its chain).\n",
		events.STLLC, events.RootOf(events.STLLC))
}

// RenderFig5 prints the Figure 5 accuracy table.
func RenderFig5(w io.Writer, rows []AccuracyRow) {
	fmt.Fprintf(w, "Figure 5: PICS error per benchmark (instruction granularity, vs golden reference).\n\n")
	fmt.Fprintf(w, "%-12s", "benchmark")
	for _, t := range TechniqueNames {
		fmt.Fprintf(w, " %8s", t)
	}
	fmt.Fprintln(w)
	for _, row := range rows {
		fmt.Fprintf(w, "%-12s", row.Benchmark)
		for _, t := range TechniqueNames {
			fmt.Fprintf(w, " %7.1f%%", 100*row.Errors[t])
		}
		fmt.Fprintln(w)
	}
}

// RenderFig6 prints one benchmark's Figure 6 panel.
func RenderFig6(w io.Writer, tp TopPICS) {
	total := tp.Golden.Total()
	fmt.Fprintf(w, "Figure 6 (%s): top-3 instruction PICS — IBS vs TEA vs golden reference (GR).\n",
		tp.Benchmark)
	for rank, pc := range tp.PCs {
		in := tp.Run.Program.Inst(pc)
		dis := "?"
		if in != nil {
			dis = in.String()
		}
		fmt.Fprintf(w, "\n#%d  %#08x  %s  [%s]\n", rank+1, pc, dis, tp.Run.Program.FuncOfPC(pc))
		fmt.Fprintf(w, "  GR : height %6.2f%%\n%s", 100*stackTotal(tp.Golden.Insts[pc])/total,
			renderStack(tp.Golden.Insts[pc], total))
		fmt.Fprintf(w, "  TEA: height %6.2f%%\n%s", 100*stackTotal(tp.TEA.Insts[pc])/total,
			renderStack(tp.TEA.Insts[pc], total))
		fmt.Fprintf(w, "  IBS: height %6.2f%%\n%s", 100*stackTotal(tp.IBS.Insts[pc])/total,
			renderStack(tp.IBS.Insts[pc], total))
	}
}

func stackTotal(st map[events.PSV]float64) float64 {
	return pics.Stack(st).Total()
}

func renderStack(st map[events.PSV]float64, total float64) string {
	if st == nil {
		return "       (no samples)\n"
	}
	out := ""
	for _, sig := range SortedSignatures(st) {
		v := st[sig]
		if v/total < 0.0005 {
			continue
		}
		out += fmt.Sprintf("       %-24s %6.2f%%\n", sig.String(), 100*v/total)
	}
	return out
}

// RenderFig7 prints the Figure 7 correlation box plots.
func RenderFig7(w io.Writer, res []CorrelationResult) {
	fmt.Fprintf(w, "Figure 7: Pearson correlation between per-instruction event counts and their\n")
	fmt.Fprintf(w, "performance impact (golden reference), across benchmarks.\n\n")
	fmt.Fprintf(w, "%-8s %6s %6s %6s %6s %6s %4s | %7s %5s\n",
		"event", "min", "q1", "med", "q3", "max", "n", "pooled", "pts")
	for _, r := range res {
		fmt.Fprintf(w, "%-8s %6.2f %6.2f %6.2f %6.2f %6.2f %4d | %7.2f %5d\n",
			r.Event.String(), r.Box.Min, r.Box.Q1, r.Box.Median, r.Box.Q3, r.Box.Max, r.Box.N,
			r.Pooled, r.PooledN)
	}
	fmt.Fprintf(w, "\n(pooled = correlation over every event-bearing static instruction of the\n")
	fmt.Fprintf(w, " suite; the synthetic kernels have few such instructions per benchmark)\n")
}

// RenderFig8 prints the Figure 8 frequency sweep.
func RenderFig8(w io.Writer, pts []FrequencyPoint) {
	fmt.Fprintf(w, "Figure 8: suite-average error versus sampling interval (cycles; smaller = higher frequency).\n\n")
	fmt.Fprintf(w, "%-10s", "interval")
	for _, t := range TechniqueNames {
		fmt.Fprintf(w, " %8s", t)
	}
	fmt.Fprintln(w)
	for _, pt := range pts {
		fmt.Fprintf(w, "%-10d", pt.Interval)
		for _, t := range TechniqueNames {
			fmt.Fprintf(w, " %7.1f%%", 100*pt.Average[t])
		}
		fmt.Fprintln(w)
	}
}

// RenderFig9 prints the Figure 9 granularity comparison.
func RenderFig9(w io.Writer, rows []GranularityRow) {
	fmt.Fprintf(w, "Figure 9: suite-average error by analysis granularity.\n\n")
	fmt.Fprintf(w, "%-10s %12s %12s %12s %12s\n", "technique", "instruction", "block", "function", "application")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %11.1f%% %11.1f%% %11.1f%% %11.1f%%\n",
			r.Technique, 100*r.Instruction, 100*r.Block, 100*r.Function, 100*r.Application)
	}
}

// RenderFig11 prints the Figure 11 prefetch sweep.
func RenderFig11(w io.Writer, pts []PrefetchPoint) {
	fmt.Fprintf(w, "Figure 11: lbm PICS and speedup across prefetch distances.\n\n")
	for _, pt := range pts {
		fmt.Fprintf(w, "distance %d: %d cycles, speedup %.2fx\n", pt.Distance, pt.Cycles, pt.Speedup)
		total := pt.Run.Golden.Total()
		if pt.LoadStack != nil {
			in := pt.Run.Program.Inst(pt.LoadPC)
			fmt.Fprintf(w, "  top load  %-22s\n%s", in.String(), renderStack(pt.LoadStack, total))
		}
		if pt.StoreStack != nil {
			in := pt.Run.Program.Inst(pt.StorePC)
			fmt.Fprintf(w, "  top store %-22s\n%s", in.String(), renderStack(pt.StoreStack, total))
		}
	}
}

// RenderFig12 prints the Figure 12 nab study.
func RenderFig12(w io.Writer, st NABStudy) {
	RenderFig6(w, st.PICS)
	fmt.Fprintf(w, "\nnab baseline: %d cycles; fast-math (serializing flag accesses removed): %d cycles\n",
		st.BaselineCycles, st.FastMathCycles)
	fmt.Fprintf(w, "fast-math speedup: %.2fx (paper: 1.96x with -finite-math, 2.45x with -fast-math)\n",
		st.FastMathSpeedup)
}

// RenderStallStudy prints the Section 3 unattributed-stall statistic.
func RenderStallStudy(w io.Writer, s StallStudy) {
	fmt.Fprintf(w, "Unattributed commit stalls (instructions with empty PSV):\n")
	fmt.Fprintf(w, "  p50 = %.1f cycles, p99 = %.1f cycles over %d stalls\n",
		s.EventFreeP50, s.EventFreeP99, s.EventFreeCount)
	fmt.Fprintf(w, "  %.1f%% are shorter than the paper's 5.8-cycle threshold\n", 100*s.FracBelowPaper)
	fmt.Fprintf(w, "  (paper: 99%% of event-free stalls < 5.8 cycles; this suite is\n")
	fmt.Fprintf(w, "   deliberately FP-chain-heavy — see EXPERIMENTS.md)\n")
	fmt.Fprintf(w, "Event-carrying stalls: mean %.1f cycles over %d stalls\n",
		s.EventStallMean, s.EventStallCount)
}

// RenderCombined prints the combined-event statistic.
func RenderCombined(w io.Writer, c CombinedStudy) {
	fmt.Fprintf(w, "Combined events: %.1f%% of event-subjected dynamic executions saw >= 2 events\n", 100*c.Fraction)
	fmt.Fprintf(w, "(paper: 30.0%%)\n\n")
	for _, pb := range c.PerBenchmark {
		fmt.Fprintf(w, "  %-12s %5.1f%%\n", pb.Benchmark, 100*pb.Fraction)
	}
}

// RenderOverhead prints the Section 3 overhead summary.
func RenderOverhead(w io.Writer, o OverheadStudy) {
	fmt.Fprintf(w, "TEA hardware overhead (Section 3):\n\n%s\n", o.Storage.Describe())
	fmt.Fprintf(w, "Sample CSR occupancy: %d of 64 bits; sample size %d B\n",
		core.CSRBits(4), core.SampleBytes)
	fmt.Fprintf(w, "Measured sampling performance overhead: %.2f%% (per-sample cost %d cycles)\n",
		100*o.PerfOverhead, o.SampleCostCycles)
	fmt.Fprintf(w, "(paper: 1.1%% performance overhead)\n")
}
