package analysis

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/trace"
	"repro/internal/tracestore"
	"repro/internal/workloads"
)

func testRC() RunConfig {
	rc := DefaultRunConfig()
	rc.Scale = 0.02
	rc.Interval = 64
	rc.Jitter = 8
	return rc
}

func testProgram(t *testing.T, rc RunConfig) (workloads.Workload, *program.Program) {
	t.Helper()
	w, err := workloads.ByName("bwaves")
	if err != nil {
		t.Fatal(err)
	}
	return w, w.Build(rc.iters(w))
}

// TestCaptureKeyFieldSensitivity walks RunConfig with reflection and
// proves that flipping any leaf field — however deeply nested — flips
// the capture key. This is the runtime complement of the cachekey
// analyzer: the analyzer proves every field is mentioned by the digest
// function, this test proves the mentions actually reach the hash.
func TestCaptureKeyFieldSensitivity(t *testing.T) {
	rc := testRC()
	_, p := testProgram(t, rc)
	base := captureKey(p, rc)

	for _, path := range leafFieldPaths(reflect.TypeOf(rc), nil) {
		mutated := rc
		v := reflect.ValueOf(&mutated).Elem().FieldByIndex(path.index)
		if !bumpValue(v) {
			t.Fatalf("field %s: unsupported kind %s — extend bumpValue", path.name, v.Kind())
		}
		if captureKey(p, mutated) == base {
			t.Errorf("mutating RunConfig.%s did not change the capture key", path.name)
		}
	}
}

type fieldPath struct {
	name  string
	index []int
}

func leafFieldPaths(t reflect.Type, prefix []int) []fieldPath {
	var out []fieldPath
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		idx := append(append([]int(nil), prefix...), i)
		if f.Type.Kind() == reflect.Struct {
			sub := leafFieldPaths(f.Type, idx)
			for j := range sub {
				sub[j].name = f.Name + "." + sub[j].name
			}
			out = append(out, sub...)
			continue
		}
		out = append(out, fieldPath{name: f.Name, index: idx})
	}
	return out
}

// bumpValue mutates v to a different valid value, reporting false for
// kinds it does not know (so new field kinds fail the test loudly
// instead of passing vacuously).
func bumpValue(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float()*2 + 1.5)
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.String:
		v.SetString(v.String() + "x")
	case reflect.Slice:
		if v.Type().Elem().Kind() == reflect.Int {
			v.Set(reflect.Append(v, reflect.ValueOf(99)))
			return true
		}
		return false
	default:
		return false
	}
	return true
}

// TestCaptureKeyFormatVersionSensitivity pins cache invalidation on a
// codec change: the capture key hashes trace.FormatVersion first, so a
// process running the v4 columnar codec can never be served a v3-era
// disk entry — their keys differ. The reflection walk above cannot
// mutate a package constant, so this re-derives the key under the
// retired version number and checks it moved, and pins the current
// version so a future bump is a deliberate act (new committed codec
// baselines, not a silent cache flush).
func TestCaptureKeyFormatVersionSensitivity(t *testing.T) {
	if trace.FormatVersion != 4 {
		t.Fatalf("trace.FormatVersion = %d, want 4 — a version bump must update this pin and the committed BENCH_*_codec.json baselines", trace.FormatVersion)
	}
	rc := testRC()
	_, p := testProgram(t, rc)
	base := captureKey(p, rc)

	h := tracestore.NewHasher()
	h.Uint(trace.FormatVersion - 1) // the retired v3 in an otherwise identical key
	h.Program(p)
	h.Uint(rc.Interval)
	h.Uint(rc.Jitter)
	h.Uint(rc.Seed)
	h.Float(rc.Scale)
	h.CPUConfig(rc.Core)
	h.Uint(rc.CheckpointInterval)
	h.Uint(uint64(rc.CaptureWorkers))
	if h.Sum() == base {
		t.Error("capture key is not sensitive to trace.FormatVersion — a codec change would serve stale cached captures")
	}
}

// TestCaptureKeyProgramSensitivity: the key must also cover the program
// itself — contents, name, data image, and function table.
func TestCaptureKeyProgramSensitivity(t *testing.T) {
	rc := testRC()
	_, p := testProgram(t, rc)
	base := captureKey(p, rc)

	mutations := map[string]func(q *program.Program){
		"name":          func(q *program.Program) { q.Name += "x" },
		"instruction":   func(q *program.Program) { q.Insts[0].Imm++ },
		"inst-appended": func(q *program.Program) { q.Insts = append(q.Insts, isa.Inst{}) },
		"data-value": func(q *program.Program) {
			for a := range q.Data {
				q.Data[a]++
				return
			}
			q.Data[1] = 1
		},
		"function-bounds": func(q *program.Program) { q.Funcs[0].End++ },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			q := *p
			q.Insts = append([]isa.Inst(nil), p.Insts...)
			q.Funcs = append([]program.Function(nil), p.Funcs...)
			q.Data = make(map[uint64]uint64, len(p.Data))
			for a, v := range p.Data {
				q.Data[a] = v
			}
			mutate(&q)
			if captureKey(&q, rc) == base {
				t.Errorf("program mutation %q did not change the capture key", name)
			}
		})
	}
}

// TestCaptureSharedAcrossSamplingKnobs pins the tentpole dedup insight:
// the captured stream is sampling-independent, so configs differing
// only in Interval/Jitter/Seed/Scale share one capture.
func TestCaptureSharedAcrossSamplingKnobs(t *testing.T) {
	rc := testRC()
	w, p := testProgram(t, rc)
	prev := SetTraceStore(NewTraceStore(DefaultStoreBudget, ""))
	defer SetTraceStore(prev)

	start := CaptureCount()
	RunProgram(w, p, rc)
	for _, iv := range []uint64{32, 96, 128} {
		RunProgram(w, p, SweepConfig(rc, iv))
	}
	if got := CaptureCount() - start; got != 1 {
		t.Fatalf("4 runs differing only in sampling knobs performed %d captures; want 1", got)
	}
}

// TestDiskTierSecondRunSimulatesNothing is the acceptance criterion for
// the persistent tier: a second process (modeled as a second store over
// the same directory, memory tier cold) runs the same experiments with
// zero simulations.
func TestDiskTierSecondRunSimulatesNothing(t *testing.T) {
	rc := testRC()
	w, p := testProgram(t, rc)
	dir := t.TempDir()

	prev := SetTraceStore(NewTraceStore(DefaultStoreBudget, dir))
	defer SetTraceStore(prev)
	start := CaptureCount()
	first := RunProgram(w, p, rc)
	if got := CaptureCount() - start; got != 1 {
		t.Fatalf("first run performed %d captures; want 1", got)
	}

	// Fresh store, same directory: the "second teaexp invocation".
	SetTraceStore(NewTraceStore(DefaultStoreBudget, dir))
	start = CaptureCount()
	second := RunProgram(w, p, rc)
	if got := CaptureCount() - start; got != 0 {
		t.Fatalf("second run with a warm disk tier performed %d captures; want 0", got)
	}
	if st := TraceStore().Snapshot(); st.DiskHits != 1 {
		t.Fatalf("store stats %+v; want exactly 1 disk hit", st)
	}

	a, b := new(bytes.Buffer), new(bytes.Buffer)
	if err := first.TEA.WriteJSON(a); err != nil {
		t.Fatal(err)
	}
	if err := second.TEA.WriteJSON(b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("disk-tier replay produced a different TEA profile than the capturing run")
	}
}

// TestCorruptDiskEntryRecaptures: a damaged cache file must be invisible
// to the experiment — the run recaptures and succeeds; no decode error
// reaches the caller.
func TestCorruptDiskEntryRecaptures(t *testing.T) {
	rc := testRC()
	w, p := testProgram(t, rc)
	dir := t.TempDir()

	prev := SetTraceStore(NewTraceStore(DefaultStoreBudget, dir))
	defer SetTraceStore(prev)
	RunProgram(w, p, rc)

	key := captureKey(p, captureConfig(rc))
	path := filepath.Join(dir, key.String()+".tea")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("expected persisted entry at %s: %v", path, err)
	}
	raw[len(raw)/2] ^= 0xFF // corrupt the payload mid-stream
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	SetTraceStore(NewTraceStore(DefaultStoreBudget, dir))
	start := CaptureCount()
	br, err := RunProgramContext(context.Background(), w, p, rc)
	if err != nil {
		t.Fatalf("corrupt cache entry surfaced as an error: %v", err)
	}
	if br == nil || br.TEA == nil {
		t.Fatal("corrupt cache entry produced an incomplete run")
	}
	if got := CaptureCount() - start; got != 1 {
		t.Fatalf("run against a corrupt entry performed %d captures; want 1 (recapture)", got)
	}
	if st := TraceStore().Snapshot(); st.DiskRejects != 1 {
		t.Fatalf("store stats %+v; want exactly 1 disk reject", st)
	}
}

// TestSweepConfigSeedRecorded pins satellite invariant 6: every
// frequency-sweep point runs its samplers under a deterministic seed
// derived from (base seed, interval), distinct across intervals, and
// the derived seed is visible in the emitted Profile JSON.
func TestSweepConfigSeedRecorded(t *testing.T) {
	rc := testRC()
	w, p := testProgram(t, rc)
	prev := SetTraceStore(NewTraceStore(DefaultStoreBudget, ""))
	defer SetTraceStore(prev)

	seen := map[uint64]bool{}
	for _, iv := range []uint64{64, 128, 256} {
		cfg := SweepConfig(rc, iv)
		want := SweepSeed(rc.Seed, iv)
		if cfg.Seed != want {
			t.Fatalf("interval %d: SweepConfig seed %d, SweepSeed %d", iv, cfg.Seed, want)
		}
		if want == rc.Seed {
			t.Errorf("interval %d: derived seed equals the base seed", iv)
		}
		if seen[want] {
			t.Fatalf("interval %d: seed %d collides with another interval", iv, want)
		}
		seen[want] = true

		br := RunProgram(w, p, cfg)
		var buf bytes.Buffer
		if err := br.TEA.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(buf.Bytes(), []byte(fmt.Sprintf(`"seed": %d`, want))) {
			t.Errorf("interval %d: TEA profile JSON does not record derived seed %d", iv, want)
		}
	}
}
