package analysis

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/events"
	"repro/internal/isa"
	"repro/internal/pics"
	"repro/internal/profilers"
	"repro/internal/simerr"
	"repro/internal/stats"
	"repro/internal/workloads"
	"repro/internal/xiter"
)

// TechniqueNames is the Figure 5 technique order.
var TechniqueNames = []string{
	profilers.NameIBS, profilers.NameSPE, profilers.NameRIS,
	profilers.NameNCITEA, profilers.NameTEA,
}

// ---------------------------------------------------------------------------
// Figure 5: PICS error per benchmark and technique.

// AccuracyRow is one benchmark's error per technique.
type AccuracyRow struct {
	Benchmark string
	// Errors maps technique name to the Section 4 error metric at
	// instruction granularity.
	Errors map[string]float64
}

// AccuracyStudy computes Figure 5 from completed runs.
func AccuracyStudy(runs []*BenchRun) []AccuracyRow {
	rows := make([]AccuracyRow, 0, len(runs)+1)
	avg := map[string]float64{}
	for _, br := range runs {
		row := AccuracyRow{Benchmark: br.Workload.Name, Errors: map[string]float64{}}
		for _, prof := range br.Techniques() {
			e := pics.Error(prof, br.Golden)
			row.Errors[prof.Name] = e
			avg[prof.Name] += e
		}
		rows = append(rows, row)
	}
	if len(runs) > 0 {
		mean := AccuracyRow{Benchmark: "average", Errors: map[string]float64{}}
		for _, k := range xiter.SortedKeys(avg) {
			mean.Errors[k] = avg[k] / float64(len(runs))
		}
		rows = append(rows, mean)
	}
	return rows
}

// ---------------------------------------------------------------------------
// Figure 6: top-3 instruction PICS for IBS, TEA, and the golden
// reference.

// TopPICS holds the Figure 6 data for one benchmark: for each of the
// top-3 instructions (by golden height), the stacks reported by IBS,
// TEA, and the golden reference.
type TopPICS struct {
	Benchmark string
	PCs       []uint64
	IBS       *pics.Profile
	TEA       *pics.Profile
	Golden    *pics.Profile
	Run       *BenchRun
}

// TopInstructionPICS computes Figure 6 for one run. Profiles are
// normalized to the golden total so stack heights are comparable.
func TopInstructionPICS(br *BenchRun, n int) TopPICS {
	total := br.Golden.Total()
	br.IBS.Normalize(total)
	br.TEA.Normalize(total)
	return TopPICS{
		Benchmark: br.Workload.Name,
		PCs:       br.Golden.TopInstructions(n),
		IBS:       br.IBS,
		TEA:       br.TEA,
		Golden:    br.Golden,
		Run:       br,
	}
}

// Fig6Benchmarks are the four benchmarks Figure 6 reports.
var Fig6Benchmarks = []string{"bwaves", "omnetpp", "fotonik3d", "exchange2"}

// ---------------------------------------------------------------------------
// Figure 7: correlation between event counts and performance impact.

// CorrelationResult is the Figure 7 data for one event: the box plot of
// per-benchmark Pearson correlation coefficients between the event's
// per-instruction count and its per-instruction cycle impact in the
// golden reference, plus a pooled correlation over every static
// instruction of the whole suite. The paper's SPEC benchmarks have
// thousands of event-bearing static instructions each; the synthetic
// kernels have few, so the pooled value is the more robust statistic
// here (DESIGN.md substitution note).
type CorrelationResult struct {
	Event events.Event
	Box   stats.BoxPlot
	// Pooled is the correlation over (instruction, benchmark) points of
	// the whole suite.
	Pooled float64
	// PooledN is the number of pooled points.
	PooledN int
	// PerBenchmark lists (benchmark, r) pairs for inspection.
	PerBenchmark map[string]float64
}

// EventCorrelation computes Figure 7 across the suite.
func EventCorrelation(runs []*BenchRun) []CorrelationResult {
	out := make([]CorrelationResult, 0, events.NumEvents)
	for _, e := range events.AllEvents() {
		res := CorrelationResult{Event: e, PerBenchmark: map[string]float64{}}
		var rs []float64
		var pooledX, pooledY []float64
		for _, br := range runs {
			xs, ys := correlationPoints(br, e)
			// Normalize impact to a per-benchmark fraction so pooling
			// across benchmarks of different lengths is meaningful.
			total := br.Golden.Total()
			for i := range ys {
				pooledX = append(pooledX, xs[i])
				pooledY = append(pooledY, ys[i]/total)
			}
			if len(xs) >= 3 {
				r := stats.Pearson(xs, ys)
				res.PerBenchmark[br.Workload.Name] = r
				rs = append(rs, r)
			}
		}
		res.Box = stats.NewBoxPlot(rs)
		res.Pooled = stats.Pearson(pooledX, pooledY)
		res.PooledN = len(pooledX)
		out = append(out, res)
	}
	return out
}

// correlationPoints collects, for one benchmark and event, the
// (count, impact) pair of every static instruction subjected to the
// event: the count of dynamic executions that saw the event and the
// golden cycles attributed to signatures containing it.
func correlationPoints(br *BenchRun, e events.Event) (xs, ys []float64) {
	for _, pc := range xiter.SortedKeys(br.Golden.Insts) {
		st := br.Golden.Insts[pc]
		count := float64(br.Counters.EventCount(pc, e))
		impact := 0.0
		for _, sig := range xiter.SortedKeys(st) {
			if sig.Has(e) {
				impact += st[sig]
			}
		}
		if count == 0 && impact == 0 {
			continue
		}
		xs = append(xs, count)
		ys = append(ys, impact)
	}
	return xs, ys
}

// ---------------------------------------------------------------------------
// Figure 8: error versus sampling frequency.

// FrequencyPoint is one sweep point: the suite-average error per
// technique at a sampling interval.
type FrequencyPoint struct {
	Interval uint64
	Average  map[string]float64
}

// FrequencySweep computes Figure 8: the suite is re-evaluated at each
// sampling interval. The paper sweeps the sampling frequency (kHz);
// with scaled simulations the interval in cycles is the equivalent
// knob — smaller intervals mean higher frequency.
//
// Sampling happens at replay time, so every sweep point shares one
// capture per workload: the scheduler captures the suite once, then
// fans (interval, workload) replays out from the shared bytes, each
// under its own SweepConfig (per-interval jitter and derived seed).
//
//tealint:ctxroot figure entry point invoked by the experiment CLIs, which have no context to thread
func FrequencySweep(rc RunConfig, intervals []uint64) []FrequencyPoint {
	jobs := suiteJobs(rc)
	if err := scheduleCaptures(context.Background(), jobs); err != nil {
		panic(asSimErr(err, ""))
	}
	type cell struct{ iv, job int }
	cells := make([]cell, 0, len(intervals)*len(jobs))
	runs := make([][]*BenchRun, len(intervals))
	for i := range intervals {
		runs[i] = make([]*BenchRun, len(jobs))
		for j := range jobs {
			cells = append(cells, cell{iv: i, job: j})
		}
	}
	par := runtime.GOMAXPROCS(0)
	if par > len(cells) {
		par = len(cells)
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for p := 0; p < par; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				c := cells[i]
				cfg := SweepConfig(rc, intervals[c.iv])
				runs[c.iv][c.job] = RunProgram(jobs[c.job].w, jobs[c.job].p, cfg)
			}
		}()
	}
	for i := range cells {
		work <- i
	}
	close(work)
	wg.Wait()
	out := make([]FrequencyPoint, 0, len(intervals))
	for i, iv := range intervals {
		rows := AccuracyStudy(runs[i])
		out = append(out, FrequencyPoint{Interval: iv, Average: rows[len(rows)-1].Errors})
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 9: error at instruction versus function granularity.

// GranularityRow reports a technique's suite-average error at every
// granularity the paper considers (Section 4: instruction, basic
// block, function, and application).
type GranularityRow struct {
	Technique   string
	Instruction float64
	Block       float64
	Function    float64
	Application float64
}

// GranularityStudy computes Figure 9 from completed runs (the paper
// plots instruction and function; it notes basic block and application
// "exhibit the same trends", which this reproduces directly).
func GranularityStudy(runs []*BenchRun) []GranularityRow {
	sumI := map[string]float64{}
	sumB := map[string]float64{}
	sumF := map[string]float64{}
	sumA := map[string]float64{}
	for _, br := range runs {
		for _, prof := range br.Techniques() {
			sumI[prof.Name] += pics.Error(prof, br.Golden)
			sumB[prof.Name] += pics.ErrorByBlock(prof, br.Golden, br.Program)
			sumF[prof.Name] += pics.ErrorByFunction(prof, br.Golden, br.Program)
			sumA[prof.Name] += pics.ErrorApplication(prof, br.Golden)
		}
	}
	out := make([]GranularityRow, 0, len(TechniqueNames))
	n := float64(len(runs))
	for _, name := range TechniqueNames {
		out = append(out, GranularityRow{
			Technique:   name,
			Instruction: sumI[name] / n,
			Block:       sumB[name] / n,
			Function:    sumF[name] / n,
			Application: sumA[name] / n,
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 10/11: the lbm case study.

// PrefetchPoint is one prefetch distance of the Figure 11 sweep.
type PrefetchPoint struct {
	Distance int
	Cycles   uint64
	Speedup  float64
	// LoadStack and StoreStack are the TEA PICS of the most
	// performance-critical load and store instructions.
	LoadPC, StorePC       uint64
	LoadStack, StoreStack pics.Stack
	Run                   *BenchRun
}

// PrefetchSweep computes Figure 11: lbm across prefetch distances.
func PrefetchSweep(rc RunConfig, distances []int) []PrefetchPoint {
	w, _ := workloads.ByName("lbm")
	iters := rc.iters(w)
	var base uint64
	out := make([]PrefetchPoint, 0, len(distances))
	for _, d := range distances {
		br := RunProgram(w, workloads.LBM(iters, d), rc)
		if d == 0 || base == 0 {
			if d == 0 {
				base = br.Stats.Cycles
			}
		}
		pt := PrefetchPoint{Distance: d, Cycles: br.Stats.Cycles, Run: br}
		pt.LoadPC, pt.LoadStack = topOfClass(br.TEA, br, func(op isa.Op) bool { return isa.IsLoad(op) })
		pt.StorePC, pt.StoreStack = topOfClass(br.TEA, br, isa.IsStore)
		out = append(out, pt)
	}
	for i := range out {
		if base > 0 {
			out[i].Speedup = float64(base) / float64(out[i].Cycles)
		}
	}
	return out
}

// topOfClass returns the tallest-stack instruction of a class.
func topOfClass(prof *pics.Profile, br *BenchRun, match func(isa.Op) bool) (uint64, pics.Stack) {
	var bestPC uint64
	var best pics.Stack
	for _, pc := range xiter.SortedKeys(prof.Insts) {
		st := prof.Insts[pc]
		in := br.Program.Inst(pc)
		if in == nil || !match(in.Op) {
			continue
		}
		if best == nil || st.Total() > best.Total() ||
			(st.Total() == best.Total() && pc < bestPC) {
			bestPC, best = pc, st
		}
	}
	return bestPC, best
}

// CaseStudyLBM computes Figure 10: lbm PICS for TEA, IBS, and the
// golden reference.
func CaseStudyLBM(rc RunConfig) TopPICS {
	w, _ := workloads.ByName("lbm")
	br := RunProgram(w, workloads.LBM(rc.iters(w), 0), rc)
	return TopInstructionPICS(br, 3)
}

// ---------------------------------------------------------------------------
// Figure 12: the nab case study.

// NABStudy holds the Figure 12 data: PICS with the serializing flag
// accesses, plus the measured speedups from removing them (the paper's
// -ffinite-math/-ffast-math options yield 1.96x and 2.45x; both map to
// removing the flushes here, so one fast-math variant is reported).
type NABStudy struct {
	PICS            TopPICS
	BaselineCycles  uint64
	FastMathCycles  uint64
	FastMathSpeedup float64
}

// CaseStudyNAB computes Figure 12.
func CaseStudyNAB(rc RunConfig) NABStudy {
	w, _ := workloads.ByName("nab")
	iters := rc.iters(w)
	br := RunProgram(w, workloads.NAB(iters, false), rc)
	fast := cpu.New(rc.Core, workloads.NAB(iters, true))
	fastStats := fast.Run()
	return NABStudy{
		PICS:            TopInstructionPICS(br, 5),
		BaselineCycles:  br.Stats.Cycles,
		FastMathCycles:  fastStats.Cycles,
		FastMathSpeedup: float64(br.Stats.Cycles) / float64(fastStats.Cycles),
	}
}

// ---------------------------------------------------------------------------
// Section 3 statistics.

// StallStudy is the unattributed-stall analysis: the distribution of
// commit-stall durations for instructions TEA assigns no event to,
// pooled over the suite (the paper reports p99 = 5.8 cycles).
type StallStudy struct {
	EventFreeP99   float64
	EventFreeP50   float64
	EventFreeCount int
	// FracBelowPaper is the fraction of event-free stalls shorter than
	// the paper's 5.8-cycle p99 threshold.
	FracBelowPaper  float64
	EventStallMean  float64
	EventStallCount int
}

// PaperStallThreshold is the paper's reported p99 of event-free commit
// stalls (5.8 cycles).
const PaperStallThreshold = 5.8

// UnattributedStalls computes the Section 3 stall statistics.
func UnattributedStalls(runs []*BenchRun) StallStudy {
	var free, withEv []float64
	below := 0
	for _, br := range runs {
		free = append(free, br.Stalls.EventFreeStalls...)
		withEv = append(withEv, br.Stalls.EventStalls...)
	}
	for _, d := range free {
		if d < PaperStallThreshold {
			below++
		}
	}
	st := StallStudy{
		EventFreeP99:    stats.Percentile(free, 99),
		EventFreeP50:    stats.Percentile(free, 50),
		EventFreeCount:  len(free),
		EventStallMean:  stats.Mean(withEv),
		EventStallCount: len(withEv),
	}
	if len(free) > 0 {
		st.FracBelowPaper = float64(below) / float64(len(free))
	}
	return st
}

// CombinedStudy is the combined-event statistic of Section 5.2 (the
// paper reports 30.0% of event-subjected executions see combined
// events).
type CombinedStudy struct {
	Fraction     float64
	PerBenchmark []struct {
		Benchmark string
		Fraction  float64
	}
}

// CombinedEvents computes the combined-event statistics.
func CombinedEvents(runs []*BenchRun) CombinedStudy {
	var withEvent, combined uint64
	var cs CombinedStudy
	for _, br := range runs {
		withEvent += br.Events.WithEvent
		combined += br.Events.Combined
		cs.PerBenchmark = append(cs.PerBenchmark, struct {
			Benchmark string
			Fraction  float64
		}{br.Workload.Name, br.Events.CombinedFraction()})
	}
	if withEvent > 0 {
		cs.Fraction = float64(combined) / float64(withEvent)
	}
	return cs
}

// OverheadStudy is the Section 3 overhead summary: storage/power from
// the analytical model, and the measured sampling performance overhead.
type OverheadStudy struct {
	Storage core.Overhead
	// PerfOverhead is the measured slowdown from charging each sample
	// the interrupt cost (the paper reports 1.1%).
	PerfOverhead float64
	// SampleCostCycles is the modeled cost of one sampling interrupt.
	SampleCostCycles uint64
}

// MeasureOverhead runs a benchmark with and without the per-sample
// interrupt cost charged to the core. The per-sample cost is scaled so
// cost/interval matches the paper's regime (an 88-byte sample costs
// roughly 1% of the sampling period).
func MeasureOverhead(rc RunConfig, benchmark string, sampleCost uint64) OverheadStudy {
	w, err := workloads.ByName(benchmark)
	if err != nil {
		// Reachable from CLI flags; typed for boundary recovery.
		panic(simerr.Wrap(simerr.ErrInvalidProgram, simerr.Snapshot{Workload: benchmark},
			err, "overhead study"))
	}
	iters := rc.iters(w)

	base := cpu.New(rc.Core, w.Build(iters))
	baseStats := base.Run()

	loaded := cpu.New(rc.Core, w.Build(iters))
	loaded.SampleOverheadCycles = sampleCost
	cfg := core.DefaultConfig()
	cfg.IntervalCycles = rc.Interval
	cfg.JitterCycles = rc.Jitter
	cfg.Seed = rc.Seed
	cfg.ChargeOverhead = true
	tea := core.NewTEA(loaded, cfg)
	loaded.Attach(tea)
	loadedStats := loaded.Run()

	return OverheadStudy{
		Storage:          core.NewOverhead(rc.Core),
		PerfOverhead:     float64(loadedStats.Cycles)/float64(baseStats.Cycles) - 1,
		SampleCostCycles: sampleCost,
	}
}

// SortedSignatures returns a stack's signatures sorted by descending
// cycles (deterministic rendering helper).
func SortedSignatures(st pics.Stack) []events.PSV {
	sigs := xiter.SortedKeys(st)
	sort.Slice(sigs, func(i, j int) bool {
		if st[sigs[i]] != st[sigs[j]] {
			return st[sigs[i]] > st[sigs[j]]
		}
		return sigs[i] < sigs[j]
	})
	return sigs
}
