// Interval-parallel capture: the expensive cycle-accurate simulation
// behind CaptureTrace, split across a bounded worker pool.
//
// A cheap functional-warming pass (internal/checkpoint) walks the
// program once and snapshots restorable core state every
// CheckpointInterval committed instructions; each worker then restores
// a core from its checkpoint, runs a cycle-accurate warmup window up to
// its segment boundary, and records its interval into a private trace
// segment. The segments are stitched (internal/trace) into one stream
// whose bytes are identical to a serial capture's.
//
// Byte-identity is proved per capture, not assumed: segment 0 runs from
// reset and is exact by construction; every other segment's state
// fingerprint at its start boundary must equal its predecessor's
// fingerprint at the same boundary (cpu.Fingerprint covers all
// forward-relevant core state, translation-invariantly). Equality
// chains exactness forward across all segments. Any mismatch — or any
// worker failure — falls back to a plain serial capture, so the
// parallel path can change wall-clock time but never bytes.
package analysis

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/checkpoint"
	"repro/internal/cpu"
	"repro/internal/program"
	"repro/internal/simerr"
	"repro/internal/trace"
)

// Parallel-capture counters, exposed via /v1/stats on teaserve.
var (
	parallelCaptures  atomic.Uint64
	parallelSegments  atomic.Uint64
	parallelFallbacks atomic.Uint64
)

// ParallelCaptures returns how many captures the interval-parallel path
// has completed (stitched and verified) in this process.
func ParallelCaptures() uint64 { return parallelCaptures.Load() }

// ParallelSegments returns how many trace segments the
// interval-parallel path has simulated in this process.
func ParallelSegments() uint64 { return parallelSegments.Load() }

// ParallelFallbacks returns how many captures started on the
// interval-parallel path but fell back to serial capture (fingerprint
// mismatch or worker failure).
func ParallelFallbacks() uint64 { return parallelFallbacks.Load() }

// gateProbe is a switchable pass-through probe. Workers attach it
// before stepping and arm it (set inner) only once their core reaches
// the segment's start boundary, so warmup cycles are simulated but
// never recorded.
type gateProbe struct {
	inner cpu.Probe
}

func (g *gateProbe) OnCycle(ci *cpu.CycleInfo) {
	if g.inner != nil {
		g.inner.OnCycle(ci)
	}
}

func (g *gateProbe) OnFetch(r cpu.Ref, cycle uint64) {
	if g.inner != nil {
		g.inner.OnFetch(r, cycle)
	}
}

func (g *gateProbe) OnDispatch(r cpu.Ref, cycle uint64) {
	if g.inner != nil {
		g.inner.OnDispatch(r, cycle)
	}
}

func (g *gateProbe) OnCommit(r cpu.Ref, cycle uint64) {
	if g.inner != nil {
		g.inner.OnCommit(r, cycle)
	}
}

func (g *gateProbe) OnSquash(r cpu.Ref, cycle uint64) {
	if g.inner != nil {
		g.inner.OnSquash(r, cycle)
	}
}

func (g *gateProbe) OnDone(totalCycles uint64) {
	if g.inner != nil {
		g.inner.OnDone(totalCycles)
	}
}

// segment is one worker's output: a complete (self-contained, digest-
// verified) v3 trace of its interval, the fingerprints bracketing it,
// and the statistics observed at arm and stop so the serial run's
// totals can be reconstructed as a sum of deltas.
type segment struct {
	data      []byte
	startFP   uint64 // fingerprint at the start boundary (segments > 0)
	endFP     uint64 // fingerprint at the end boundary (interior segments)
	armCycle  uint64 // local cycle count when recording started
	stopCycle uint64 // local cycle count when recording stopped
	armStats  cpu.Stats
	stopStats cpu.Stats
}

// captureSegment simulates segment s of the generation's schedule.
// Segment 0 runs from reset; segment s>0 restores checkpoint s-1 and
// warms up to its start boundary before arming its writer. Interior
// segments record through the step that crosses their end boundary
// (matching the warmup cut of the next segment, which discards through
// that same step); the final segment records to completion.
func captureSegment(ctx context.Context, p *program.Program, cfg cpu.Config, gen *checkpoint.Generation, s int) (*segment, error) {
	var (
		c    *cpu.CPU
		base uint64
		err  error
	)
	if s == 0 {
		c = cpu.New(cfg, p)
	} else {
		if c, err = gen.RestoreCPU(cfg, p, s-1); err != nil {
			return nil, err
		}
		base = gen.Checkpoints[s-1].Seq
	}
	gate := &gateProbe{}
	c.Attach(gate)

	const ctxCheckInterval = 4096
	var steps uint64
	checkCtx := func() error {
		if steps%ctxCheckInterval == 0 {
			if cause := context.Cause(ctx); cause != nil {
				return simerr.Wrap(simerr.ErrCanceled,
					simerr.Snapshot{Program: p.Name, Seq: base + c.Stats.Committed},
					cause, "parallel capture canceled")
			}
		}
		steps++
		return nil
	}
	// stepTo advances until the absolute committed-instruction count
	// reaches boundary, evaluating between steps — the step that
	// crosses the boundary completes, and its records belong to
	// whatever the gate held during it.
	stepTo := func(boundary uint64) (finished bool, err error) {
		for base+c.Stats.Committed < boundary {
			if err := checkCtx(); err != nil {
				return false, err
			}
			if !c.Step() {
				if e := c.Err(); e != nil {
					return false, e
				}
				return true, nil
			}
		}
		return false, nil
	}

	seg := &segment{}
	if s > 0 {
		finished, err := stepTo(gen.Boundary(s - 1))
		if err != nil {
			return nil, err
		}
		if finished {
			return nil, simerr.New(simerr.ErrInternal,
				simerr.Snapshot{Program: p.Name, Seq: base + c.Stats.Committed},
				"segment %d finished during warmup before boundary %d", s, gen.Boundary(s-1))
		}
		seg.startFP = c.Fingerprint()
	}
	seg.armStats = c.Stats
	seg.armCycle = c.Stats.Cycles

	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	gate.inner = tw

	if s < len(gen.Checkpoints) {
		finished, err := stepTo(gen.Boundary(s))
		if err != nil {
			return nil, err
		}
		if finished {
			return nil, simerr.New(simerr.ErrInternal,
				simerr.Snapshot{Program: p.Name, Seq: base + c.Stats.Committed},
				"segment %d finished before its end boundary %d", s, gen.Boundary(s))
		}
		seg.endFP = c.Fingerprint()
	} else {
		for {
			if err := checkCtx(); err != nil {
				return nil, err
			}
			if !c.Step() {
				break
			}
		}
		if e := c.Err(); e != nil {
			return nil, e
		}
	}
	seg.stopStats = c.Stats
	seg.stopCycle = c.Stats.Cycles
	// Close the segment stream so it carries its own done record and
	// digest; stitching verifies and then strips it.
	tw.OnDone(c.Stats.Cycles)
	if err := tw.Err(); err != nil {
		return nil, simerr.Wrap(simerr.ErrInternal,
			simerr.Snapshot{Program: p.Name}, err, "segment trace capture failed")
	}
	seg.data = buf.Bytes()
	return seg, nil
}

// captureSegments runs all segments on a bounded worker pool. The first
// failure cancels the remaining workers; the returned error prefers a
// root-cause failure over the induced cancellations.
func captureSegments(ctx context.Context, p *program.Program, cfg cpu.Config, gen *checkpoint.Generation, workers int) ([]*segment, error) {
	n := len(gen.Checkpoints) + 1
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	segs := make([]*segment, n)
	errs := make([]error, n)
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg     sync.WaitGroup
		cursor atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(cursor.Add(1)) - 1
				if s >= n {
					return
				}
				seg, err := captureSegment(wctx, p, cfg, gen, s)
				if err != nil {
					errs[s] = err
					cancel()
					return
				}
				segs[s] = seg
			}
		}()
	}
	wg.Wait()

	for _, e := range errs {
		if e != nil && !errors.Is(e, simerr.ErrCanceled) {
			return nil, e
		}
	}
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return segs, nil
}

// CaptureTraceCheckpointed is CaptureTrace accelerated by
// interval-parallel capture when interval > 0: checkpoints are
// generated every interval committed instructions and the intervals are
// simulated concurrently on up to workers goroutines (0 = GOMAXPROCS),
// then stitched. The returned bytes and statistics are identical to a
// serial CaptureTrace — verified per capture by fingerprint chaining,
// with automatic serial fallback — so callers may treat the two paths
// as interchangeable. interval == 0 (or a program too short to split)
// is exactly the serial path.
func CaptureTraceCheckpointed(ctx context.Context, p *program.Program, rc RunConfig, interval uint64, workers int) ([]byte, *cpu.Stats, error) {
	if interval < 2 {
		return CaptureTrace(ctx, p, rc)
	}
	gen, err := checkpoint.Generate(ctx, p, rc.Core, checkpoint.Plan{Interval: interval})
	if err != nil {
		return nil, nil, err
	}
	if len(gen.Checkpoints) == 0 {
		// Too short to split; one segment would just be a serial run.
		return CaptureTrace(ctx, p, rc)
	}

	fallback := func(ctx context.Context, cause error) ([]byte, *cpu.Stats, error) {
		// A cancellation must surface as one, never as a silent retry.
		if c := context.Cause(ctx); c != nil && cause != nil {
			return nil, nil, cause
		}
		parallelFallbacks.Add(1)
		return CaptureTrace(ctx, p, rc)
	}

	segs, err := captureSegments(ctx, p, rc.Core, gen, workers)
	if err != nil {
		return fallback(ctx, err)
	}

	// Verify the fingerprint chain: segment 0 is exact from reset, so
	// end-equals-start equality at every boundary proves every
	// segment's records match the serial run's.
	for s := 1; s < len(segs); s++ {
		if segs[s-1].endFP != segs[s].startFP {
			return fallback(ctx, nil)
		}
	}

	// Stitch: segment s's local cycles are shifted onto the global
	// clock by the cycles all prior segments recorded.
	offsets := make([]uint64, len(segs))
	datas := make([][]byte, len(segs))
	var total cpu.Stats
	var globalArm uint64
	for s, seg := range segs {
		offsets[s] = globalArm - seg.armCycle
		globalArm += seg.stopCycle - seg.armCycle
		datas[s] = seg.data
		total.Add(seg.stopStats.Sub(seg.armStats))
	}
	if total.Committed != gen.Total || total.Cycles != globalArm {
		// The segments disagree with the functional pass about the
		// run's shape; trust neither.
		return fallback(ctx, nil)
	}

	var buf bytes.Buffer
	counters, err := trace.Stitch(ctx, &buf, datas, offsets, total.Cycles)
	if err != nil {
		return fallback(ctx, err)
	}
	addCodecCounters(counters)
	parallelCaptures.Add(1)
	parallelSegments.Add(uint64(len(segs)))
	return buf.Bytes(), &total, nil
}
