package analysis

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/pics"
	"repro/internal/workloads"
)

// JitterRow compares TEA's accuracy with and without sample-clock
// jitter on one benchmark. Statistical profilers randomize the sampling
// period to avoid locking onto loop periods; this ablation validates
// that design choice on the suite's highly regular kernels — the
// failure mode a fixed-period sampler invites.
type JitterRow struct {
	Benchmark     string
	WithJitter    float64
	WithoutJitter float64
}

// JitterAblation runs TEA with the configured jitter and with jitter
// disabled on every benchmark, against per-run golden references.
func JitterAblation(rc RunConfig) []JitterRow {
	var rows []JitterRow
	var sumJ, sumN float64
	for _, w := range workloads.All() {
		run := func(jitter uint64) float64 {
			c := cpu.New(rc.Core, w.Build(rc.iters(w)))
			g := core.NewGolden(c)
			cfg := core.DefaultConfig()
			cfg.IntervalCycles = rc.Interval
			cfg.JitterCycles = jitter
			cfg.Seed = rc.Seed
			tea := core.NewTEA(c, cfg)
			c.Attach(g)
			c.Attach(tea)
			c.Run()
			return pics.Error(tea.Profile(), g.Profile())
		}
		row := JitterRow{
			Benchmark:     w.Name,
			WithJitter:    run(rc.Jitter),
			WithoutJitter: run(0),
		}
		sumJ += row.WithJitter
		sumN += row.WithoutJitter
		rows = append(rows, row)
	}
	n := float64(len(rows))
	rows = append(rows, JitterRow{Benchmark: "average", WithJitter: sumJ / n, WithoutJitter: sumN / n})
	return rows
}

// RenderJitter prints the jitter ablation.
func RenderJitter(w io.Writer, rows []JitterRow) {
	fmt.Fprintf(w, "Sampler-jitter ablation: TEA error with the default jitter versus a\n")
	fmt.Fprintf(w, "fixed-period sample clock (aliasing with loop periods).\n\n")
	fmt.Fprintf(w, "%-12s %12s %12s\n", "benchmark", "jittered", "fixed")
	for _, r := range rows {
		marker := ""
		if r.WithoutJitter > 2*r.WithJitter && r.WithoutJitter > 0.05 {
			marker = "  <- aliasing"
		}
		fmt.Fprintf(w, "%-12s %11.1f%% %11.1f%%%s\n",
			r.Benchmark, 100*r.WithJitter, 100*r.WithoutJitter, marker)
	}
}
