package analysis

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/events"
	"repro/internal/pics"
	"repro/internal/profilers"
	"repro/internal/workloads"
	"repro/internal/xiter"
)

// DTEARow compares dispatch-tagged TEA against TEA and IBS on one
// benchmark — the configuration the paper evaluated but cut for space
// (Section 5): same nine events as TEA, same tagging as IBS. Its error
// tracking IBS's demonstrates that time-proportional selection, not the
// richer event set, is what makes TEA accurate.
type DTEARow struct {
	Benchmark string
	TEA       float64
	DTEA      float64
	IBS       float64
}

// DispatchTaggedTEA runs the D-TEA comparison across the suite.
func DispatchTaggedTEA(rc RunConfig) []DTEARow {
	var rows []DTEARow
	var sum DTEARow
	for _, w := range workloads.All() {
		c := cpu.New(rc.Core, w.Build(rc.iters(w)))
		golden := core.NewGolden(c)
		teaCfg := core.DefaultConfig()
		teaCfg.IntervalCycles = rc.Interval
		teaCfg.JitterCycles = rc.Jitter
		teaCfg.Seed = rc.Seed
		tea := core.NewTEA(c, teaCfg)
		dtea := profilers.NewDTEA(rc.Interval, rc.Jitter, rc.Seed+5)
		ibs := profilers.NewIBS(rc.Interval, rc.Jitter, rc.Seed+2)
		for _, p := range []cpu.Probe{golden, tea, dtea, ibs} {
			c.Attach(p)
		}
		c.Run()
		row := DTEARow{
			Benchmark: w.Name,
			TEA:       pics.Error(tea.Profile(), golden.Profile()),
			DTEA:      pics.Error(dtea.Profile(), golden.Profile()),
			IBS:       pics.Error(ibs.Profile(), golden.Profile()),
		}
		rows = append(rows, row)
		sum.TEA += row.TEA
		sum.DTEA += row.DTEA
		sum.IBS += row.IBS
	}
	n := float64(len(rows))
	rows = append(rows, DTEARow{Benchmark: "average", TEA: sum.TEA / n, DTEA: sum.DTEA / n, IBS: sum.IBS / n})
	return rows
}

// RenderDTEA prints the dispatch-tagged-TEA comparison.
func RenderDTEA(w io.Writer, rows []DTEARow) {
	fmt.Fprintf(w, "Dispatch-tagged TEA (Section 5: evaluated, omitted for space in the paper).\n")
	fmt.Fprintf(w, "D-TEA = TEA's nine events + IBS's dispatch tagging.\n\n")
	fmt.Fprintf(w, "%-12s %8s %8s %8s\n", "benchmark", "TEA", "D-TEA", "IBS")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %7.1f%% %7.1f%% %7.1f%%\n",
			r.Benchmark, 100*r.TEA, 100*r.DTEA, 100*r.IBS)
	}
	fmt.Fprintf(w, "\nD-TEA tracks IBS, not TEA: the event set is not what separates them —\n")
	fmt.Fprintf(w, "time-proportional sample selection is.\n")
}

// AblationRow is one rung of the Figure 3 PSV-width ladder on one
// benchmark.
type AblationRow struct {
	Rung string
	Bits int
	// Error is the sampling error against a golden reference projected
	// onto the same event set.
	Error float64
	// Components is the number of distinct cycle-stack components the
	// configuration can distinguish on this run — the interpretability
	// axis of the tradeoff.
	Components int
}

// EventSetAblationStudy runs the Figure 3 event-set ladder on one
// benchmark.
func EventSetAblationStudy(rc RunConfig, benchmark string) ([]AblationRow, error) {
	w, err := workloads.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	c := cpu.New(rc.Core, w.Build(rc.iters(w)))
	rungs, golden, ladder := profilers.RunAblation(c, rc.Interval, rc.Jitter, rc.Seed)
	rows := make([]AblationRow, len(rungs))
	for i, prof := range rungs {
		comps := map[events.PSV]bool{}
		for _, pc := range xiter.SortedKeys(prof.Insts) {
			for _, sig := range xiter.SortedKeys(prof.Insts[pc]) {
				comps[sig] = true
			}
		}
		rows[i] = AblationRow{
			Rung:       ladder[i].Name,
			Bits:       ladder[i].Set.Bits(),
			Error:      pics.Error(prof, golden),
			Components: len(comps),
		}
	}
	return rows, nil
}

// RenderAblation prints the event-set ladder.
func RenderAblation(w io.Writer, benchmark string, rows []AblationRow) {
	fmt.Fprintf(w, "Figure 3 ablation (%s): PSV width versus interpretability.\n", benchmark)
	fmt.Fprintf(w, "Error is measured against a golden reference projected onto the same\n")
	fmt.Fprintf(w, "event set, so it isolates sampling accuracy; the interpretability cost\n")
	fmt.Fprintf(w, "of a narrow PSV shows in the distinct-component count.\n\n")
	fmt.Fprintf(w, "%-32s %5s %8s %11s\n", "event set", "bits", "error", "components")
	for _, r := range rows {
		fmt.Fprintf(w, "%-32s %5d %7.1f%% %11d\n", r.Rung, r.Bits, 100*r.Error, r.Components)
	}
}
