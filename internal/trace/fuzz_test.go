package trace

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
)

// FuzzReplay feeds arbitrary bytes to the trace reader: it must reject
// or cleanly error on malformed input, never panic.
func FuzzReplay(f *testing.F) {
	// Seed with a valid trace prefix and some mutations.
	p := testProgram()
	c := cpu.New(cpu.DefaultConfig(), p)
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	c.Attach(tw)
	c.Run()
	valid := buf.Bytes()
	f.Add(valid[:min(len(valid), 4096)])
	f.Add([]byte("TEAT\x02"))
	f.Add([]byte("TEAT\x02\x05\x01\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := core.NewGolden(nil)
		// Errors are fine; panics are not.
		_, _ = Replay(bytes.NewReader(data), g)
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
