package trace

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/simerr"
	"repro/internal/workloads"
)

// fuzzCapture records one real workload run — the corpus mutations
// start from a stream with genuine squashes, stalls, and flushes, not
// a synthetic minimum.
func fuzzCapture(f *testing.F) []byte {
	f.Helper()
	w, err := workloads.ByName("bwaves")
	if err != nil {
		f.Fatal(err)
	}
	c := cpu.New(cpu.DefaultConfig(), w.Build(2))
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	c.Attach(tw)
	c.Run()
	return buf.Bytes()
}

// FuzzReplay feeds arbitrary bytes to the trace reader: it must reject
// or cleanly error on malformed input — always a typed decode or
// cancellation error, never a panic.
func FuzzReplay(f *testing.F) {
	valid := fuzzCapture(f)
	f.Add(valid)

	// Truncations at every structural boundary (block starts, token
	// spans, column starts; sampled down to keep the corpus manageable)
	// — the exact cuts a dying writer produces.
	offsets, err := RecordOffsets(valid)
	if err != nil {
		f.Fatal(err)
	}
	const maxCuts = 64
	stride := 1
	if len(offsets) > maxCuts {
		stride = len(offsets) / maxCuts
	}
	for i := 0; i < len(offsets); i += stride {
		f.Add(valid[:offsets[i]])
	}

	// Single-bit flips spread across the stream, header included.
	for i := 0; i < 64; i++ {
		pos := (i*2654435761 + 17) % len(valid)
		mut := append([]byte(nil), valid...)
		mut[pos] ^= 1 << uint(i%8)
		f.Add(mut)
	}

	// Targeted pattern-table and column-boundary seeds: bit-flips and
	// byte tweaks inside each block's token span and each column's
	// length prefix, the regions where v4 framing desynchronizes.
	if lay, err := ParseLayout(valid); err == nil && len(lay.Blocks) > 0 {
		b := lay.Blocks[0]
		targets := []int{b.TokenSpan.LenStart, b.TokenSpan.Start,
			(b.TokenSpan.Start + b.TokenSpan.End) / 2}
		for _, c := range b.Columns {
			targets = append(targets, c.LenStart, c.Start)
		}
		for _, pos := range targets {
			if pos >= len(valid) {
				continue
			}
			mut := append([]byte(nil), valid...)
			mut[pos] ^= 0x55
			f.Add(mut)
			mut2 := append([]byte(nil), valid...)
			mut2[pos] = 0xFF
			f.Add(mut2)
		}
	}

	// Hand-written degenerate streams: the v4 header alone, a block
	// claiming records with no columns, a match token with no prior
	// records, a giant record count, and the old v3 header (must be
	// rejected as unsupported).
	f.Add(valid[:min(len(valid), 4096)])
	f.Add([]byte("TEAT\x04"))
	f.Add([]byte("TEAT\x04\x10\x01\x01\x00"))
	f.Add([]byte("TEAT\x04\x10\x01\x01\x02\x03\x01\x00\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte("TEAT\x04\x10\xff\xff\xff\xff\x0f\x01\x00"))
	f.Add([]byte("TEAT\x04\x06\x00\x00"))
	f.Add([]byte("TEAT\x03"))
	f.Add([]byte("TEAT\x03\x05\x01\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		g := core.NewGolden(nil)
		_, err := Replay(bytes.NewReader(data), g)
		if err != nil && !errors.Is(err, simerr.ErrDecode) {
			t.Fatalf("replay error is not a typed decode error: %v", err)
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
