package trace

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/simerr"
	"repro/internal/workloads"
)

// fuzzCapture records one real workload run — the corpus mutations
// start from a stream with genuine squashes, stalls, and flushes, not
// a synthetic minimum.
func fuzzCapture(f *testing.F) []byte {
	f.Helper()
	w, err := workloads.ByName("bwaves")
	if err != nil {
		f.Fatal(err)
	}
	c := cpu.New(cpu.DefaultConfig(), w.Build(2))
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	c.Attach(tw)
	c.Run()
	return buf.Bytes()
}

// FuzzReplay feeds arbitrary bytes to the trace reader: it must reject
// or cleanly error on malformed input — always a typed decode or
// cancellation error, never a panic.
func FuzzReplay(f *testing.F) {
	valid := fuzzCapture(f)
	f.Add(valid)

	// Truncations at every record boundary (sampled down to keep the
	// corpus manageable) — the exact cuts a dying writer produces.
	offsets, err := RecordOffsets(valid)
	if err != nil {
		f.Fatal(err)
	}
	const maxCuts = 64
	stride := 1
	if len(offsets) > maxCuts {
		stride = len(offsets) / maxCuts
	}
	for i := 0; i < len(offsets); i += stride {
		f.Add(valid[:offsets[i]])
	}

	// Single-bit flips spread across the stream, header included.
	for i := 0; i < 64; i++ {
		pos := (i*2654435761 + 17) % len(valid)
		mut := append([]byte(nil), valid...)
		mut[pos] ^= 1 << uint(i%8)
		f.Add(mut)
	}

	// Hand-written degenerate streams.
	f.Add(valid[:min(len(valid), 4096)])
	f.Add([]byte("TEAT\x03"))
	f.Add([]byte("TEAT\x03\x05\x01\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		g := core.NewGolden(nil)
		_, err := Replay(bytes.NewReader(data), g)
		if err != nil && !errors.Is(err, simerr.ErrDecode) {
			t.Fatalf("replay error is not a typed decode error: %v", err)
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
