package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/events"
	"repro/internal/isa"
	"repro/internal/pics"
	"repro/internal/profilers"
	"repro/internal/program"
)

// testProgram is a kernel with cache misses, mispredicts, and flushes —
// exercising every record kind.
func testProgram() *program.Program {
	b := program.NewBuilder("tracetest")
	arr := b.Alloc(4<<20, 4096)
	b.Func("main")
	b.MoviU(isa.X(1), arr)
	b.Movi(isa.X(2), 0)
	b.Movi(isa.X(3), 600)
	b.Movi(isa.X(4), 88172)
	b.Label("loop")
	b.Load(isa.X(5), isa.X(1), 0)
	b.Add(isa.X(6), isa.X(5), isa.X(2))
	// Unpredictable branch.
	b.Shli(isa.X(7), isa.X(4), 13)
	b.Xor(isa.X(4), isa.X(4), isa.X(7))
	b.Shri(isa.X(7), isa.X(4), 7)
	b.Xor(isa.X(4), isa.X(4), isa.X(7))
	b.Andi(isa.X(7), isa.X(4), 1)
	b.Beq(isa.X(7), isa.X(0), "skip")
	b.Addi(isa.X(6), isa.X(6), 1)
	b.Label("skip")
	b.Addi(isa.X(1), isa.X(1), 4160)
	b.Addi(isa.X(2), isa.X(2), 1)
	b.Blt(isa.X(2), isa.X(3), "loop")
	b.Halt()
	return b.MustBuild()
}

// liveAndReplayed runs the program once with a trace writer plus live
// profilers, then replays the trace into fresh profilers.
func liveAndReplayed(t *testing.T) (live, replayed map[string]*pics.Profile, liveCycles, replayCycles uint64) {
	t.Helper()
	p := testProgram()
	c := cpu.New(cpu.DefaultConfig(), p)

	var buf bytes.Buffer
	tw := NewWriter(&buf)
	liveGolden := core.NewGolden(c)
	liveTEA := core.NewTEA(c, teaCfg())
	liveIBS := profilers.NewIBS(128, 8, 7)
	c.Attach(tw)
	c.Attach(liveGolden)
	c.Attach(liveTEA)
	c.Attach(liveIBS)
	st := c.Run()
	if tw.Err() != nil {
		t.Fatalf("trace writer error: %v", tw.Err())
	}

	reGolden := core.NewGolden(nil)
	reTEA := core.NewTEA(nil, teaCfg())
	reIBS := profilers.NewIBS(128, 8, 7)
	cycles, err := Replay(bytes.NewReader(buf.Bytes()), reGolden, reTEA, reIBS)
	if err != nil {
		t.Fatalf("replay error: %v", err)
	}

	live = map[string]*pics.Profile{
		"golden": liveGolden.Profile(), "TEA": liveTEA.Profile(), "IBS": liveIBS.Profile(),
	}
	replayed = map[string]*pics.Profile{
		"golden": reGolden.Profile(), "TEA": reTEA.Profile(), "IBS": reIBS.Profile(),
	}
	return live, replayed, st.Cycles, cycles
}

func teaCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.IntervalCycles = 128
	cfg.JitterCycles = 8
	return cfg
}

func TestReplayMatchesLiveExactly(t *testing.T) {
	live, replayed, liveCycles, replayCycles := liveAndReplayed(t)
	if liveCycles != replayCycles {
		t.Errorf("cycle counts differ: live %d, replay %d", liveCycles, replayCycles)
	}
	for name := range live {
		a, b := live[name], replayed[name]
		if len(a.Insts) != len(b.Insts) {
			t.Errorf("%s: instruction counts differ: %d vs %d", name, len(a.Insts), len(b.Insts))
		}
		for pc, st := range a.Insts {
			rst := b.Insts[pc]
			if rst == nil {
				t.Errorf("%s: pc %#x missing from replay", name, pc)
				continue
			}
			for sig, v := range st {
				if rv := rst[sig]; rv != v {
					t.Errorf("%s: pc %#x sig %v: live %v, replay %v", name, pc, sig, v, rv)
				}
			}
		}
	}
}

func TestReplayIsRepeatable(t *testing.T) {
	p := testProgram()
	c := cpu.New(cpu.DefaultConfig(), p)
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	c.Attach(tw)
	c.Run()
	data := buf.Bytes()

	g1 := core.NewGolden(nil)
	g2 := core.NewGolden(nil)
	if _, err := Replay(bytes.NewReader(data), g1); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(bytes.NewReader(data), g2); err != nil {
		t.Fatal(err)
	}
	if e := pics.Error(g1.Profile(), g2.Profile()); e > 1e-12 {
		t.Errorf("two replays of one trace differ: error %v", e)
	}
}

func TestReplayRejectsGarbage(t *testing.T) {
	if _, err := Replay(strings.NewReader("not a trace at all")); err == nil {
		t.Errorf("garbage accepted")
	}
	if _, err := Replay(strings.NewReader("TEAT\x63")); err == nil {
		t.Errorf("bad version accepted")
	}
	if _, err := Replay(strings.NewReader("")); err == nil {
		t.Errorf("empty stream accepted")
	}
}

func TestReplayDetectsTruncation(t *testing.T) {
	p := testProgram()
	c := cpu.New(cpu.DefaultConfig(), p)
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	c.Attach(tw)
	c.Run()
	data := buf.Bytes()
	_, err := Replay(bytes.NewReader(data[:len(data)/2]))
	if err == nil {
		t.Errorf("truncated trace accepted")
	}
}

func TestTraceCompactness(t *testing.T) {
	p := testProgram()
	c := cpu.New(cpu.DefaultConfig(), p)
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	c.Attach(tw)
	st := c.Run()
	perCycle := float64(buf.Len()) / float64(st.Cycles)
	// The paper's golden reference needs ~116 GB/s of trace bandwidth;
	// the point of the compact encoding is to stay far below naive
	// per-cycle struct dumps. ~20 bytes/cycle is plenty.
	if perCycle > 20 {
		t.Errorf("trace uses %.1f bytes/cycle, want compact encoding", perCycle)
	}
	if tw.Records == 0 {
		t.Errorf("no records written")
	}
}

func TestSquashedUOpsReplayIdentity(t *testing.T) {
	// A program with ordering violations: squashes appear in the trace,
	// and the refetched µops must be distinct identities, as live.
	b := program.NewBuilder("squash")
	base := b.Alloc(4096, 64)
	b.Func("main")
	b.MoviU(isa.X(1), base)
	b.Movi(isa.X(2), 3)
	b.Movi(isa.X(9), 0)
	b.Movi(isa.X(10), 50)
	b.Label("top")
	b.Movi(isa.X(4), 800)
	b.Movi(isa.X(5), 2)
	b.Div(isa.X(4), isa.X(4), isa.X(5))
	b.Div(isa.X(4), isa.X(4), isa.X(5))
	b.Add(isa.X(3), isa.X(1), isa.X(4))
	b.Addi(isa.X(3), isa.X(3), -200)
	b.Store(isa.X(3), isa.X(2), 0)
	b.Load(isa.X(6), isa.X(1), 0)
	b.Add(isa.X(7), isa.X(6), isa.X(6))
	b.Addi(isa.X(9), isa.X(9), 1)
	b.Blt(isa.X(9), isa.X(10), "top")
	b.Halt()
	p := b.MustBuild()

	c := cpu.New(cpu.DefaultConfig(), p)
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	gLive := core.NewGolden(c)
	c.Attach(tw)
	c.Attach(gLive)
	st := c.Run()
	if st.Violations == 0 {
		t.Fatalf("no violations; squash path untested")
	}
	gRe := core.NewGolden(nil)
	if _, err := Replay(bytes.NewReader(buf.Bytes()), gRe); err != nil {
		t.Fatal(err)
	}
	if e := pics.Error(gRe.Profile(), gLive.Profile()); e > 1e-12 {
		t.Errorf("replay with squashes differs from live: error %v", e)
	}
}

func TestCycleStatesRoundTrip(t *testing.T) {
	// Count per-state cycles live and replayed; they must agree.
	p := testProgram()
	c := cpu.New(cpu.DefaultConfig(), p)
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	liveCount := &stateCounter{}
	c.Attach(tw)
	c.Attach(liveCount)
	c.Run()
	reCount := &stateCounter{}
	if _, err := Replay(bytes.NewReader(buf.Bytes()), reCount); err != nil {
		t.Fatal(err)
	}
	if *liveCount != *reCount {
		t.Errorf("state counts differ: live %+v, replay %+v", *liveCount, *reCount)
	}
}

type stateCounter struct {
	cpu.BaseProbe
	counts [events.NumCommitStates]uint64
}

func (s *stateCounter) OnCycle(ci *cpu.CycleInfo) { s.counts[ci.State]++ }
