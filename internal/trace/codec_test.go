package trace

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/cpu"
	"repro/internal/workloads"
)

// captureStream records one workload run and returns the encoded
// stream plus the writer for its counters.
func captureStream(t *testing.T, bench string, iters int) ([]byte, *Writer) {
	t.Helper()
	w, err := workloads.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(cpu.DefaultConfig(), w.Build(iters))
	var buf bytes.Buffer
	tw := NewWriter(&buf)
	c.Attach(tw)
	c.Run()
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), tw
}

// TestParseLayoutCoversStream checks that the structural walk accounts
// for every byte: header, then blocks back to back, then the done
// section ending exactly at the stream's end, with each block's token
// span and columns nested inside the block in declaration order.
func TestParseLayoutCoversStream(t *testing.T) {
	data, _ := captureStream(t, "bwaves", 6)
	lay, err := ParseLayout(data)
	if err != nil {
		t.Fatal(err)
	}
	if lay.HeaderEnd != 5 {
		t.Errorf("header end %d, want 5", lay.HeaderEnd)
	}
	if len(lay.Blocks) == 0 {
		t.Fatal("no blocks parsed")
	}
	pos := lay.HeaderEnd
	for i, b := range lay.Blocks {
		if b.Start != pos {
			t.Errorf("block %d starts at %d, want %d (blocks must be contiguous)", i, b.Start, pos)
		}
		if b.TokenSpan.Start <= b.Start || b.TokenSpan.End > b.End {
			t.Errorf("block %d token span [%d,%d) outside block [%d,%d)",
				i, b.TokenSpan.Start, b.TokenSpan.End, b.Start, b.End)
		}
		prevEnd := b.TokenSpan.End
		for ci, col := range b.Columns {
			if col.LenStart != prevEnd {
				t.Errorf("block %d column %s starts at %d, want %d (columns must be contiguous)",
					i, ColumnNames[ci], col.LenStart, prevEnd)
			}
			prevEnd = col.End
		}
		if prevEnd != b.End {
			t.Errorf("block %d last column ends at %d, block ends at %d", i, prevEnd, b.End)
		}
		pos = b.End
	}
	if lay.DoneStart != pos {
		t.Errorf("done section starts at %d, want %d", lay.DoneStart, pos)
	}
	if lay.DoneEnd != len(data) {
		t.Errorf("done section ends at %d, stream is %d bytes", lay.DoneEnd, len(data))
	}
}

// TestScanStatsMatchesCounters checks that the offline stats scan
// re-derives exactly what the writer counted at encode time, and that
// the per-column and per-kind breakdowns sum to their totals.
func TestScanStatsMatchesCounters(t *testing.T) {
	data, tw := captureStream(t, "lbm", 8)
	st, err := ScanStats(data)
	if err != nil {
		t.Fatal(err)
	}
	ctr := tw.Counters()
	if st.Records != ctr.Records { // both include the done section
		t.Errorf("records: scan %d, writer %d", st.Records, ctr.Records)
	}
	if st.Blocks != ctr.Blocks {
		t.Errorf("blocks: scan %d, writer %d", st.Blocks, ctr.Blocks)
	}
	if st.LitTokens != ctr.LitTokens || st.MatchTokens != ctr.MatchTokens {
		t.Errorf("tokens: scan %d lit + %d match, writer %d + %d",
			st.LitTokens, st.MatchTokens, ctr.LitTokens, ctr.MatchTokens)
	}
	if st.MatchedRecords != ctr.MatchedRecords {
		t.Errorf("matched records: scan %d, writer %d", st.MatchedRecords, ctr.MatchedRecords)
	}
	if st.EncodedBytes != ctr.EncodedBytes {
		t.Errorf("encoded bytes: scan %d, writer %d", st.EncodedBytes, ctr.EncodedBytes)
	}
	if st.LogicalBytes != ctr.LogicalBytes {
		t.Errorf("logical bytes: scan %d, writer %d", st.LogicalBytes, ctr.LogicalBytes)
	}
	if int(st.EncodedBytes) != len(data) {
		t.Errorf("encoded bytes %d, stream is %d bytes", st.EncodedBytes, len(data))
	}

	var kindRecords, kindBytes uint64
	for _, v := range st.KindRecords {
		kindRecords += v
	}
	for _, v := range st.KindBytes {
		kindBytes += v
	}
	if kindRecords != ctr.Records-1 { // the done section has no kind
		t.Errorf("per-kind records sum to %d, writer counted %d incl. done", kindRecords, ctr.Records)
	}
	if kindBytes > st.LogicalBytes {
		t.Errorf("per-kind bytes sum to %d, exceeding logical total %d", kindBytes, st.LogicalBytes)
	}

	var colBytes uint64
	for i, name := range ColumnNames {
		if st.Columns[name] != st.ColumnBytes[i] {
			t.Errorf("column %s: map %d, array %d", name, st.Columns[name], st.ColumnBytes[i])
		}
		colBytes += st.ColumnBytes[i]
	}
	if colBytes+st.TokenBytes >= st.EncodedBytes {
		t.Errorf("columns (%d) + tokens (%d) should be under encoded total %d (framing overhead)",
			colBytes, st.TokenBytes, st.EncodedBytes)
	}
	if hr := st.PatternHitRate(); hr < 0 || hr > 1 {
		t.Errorf("pattern hit rate %v out of [0,1]", hr)
	}
	if st.CompressionRatio() <= 1 {
		t.Errorf("compression ratio %.2f, want > 1 on a loop workload", st.CompressionRatio())
	}
}

// TestReplayMatchesWriterDigest checks the window-independence of the
// integrity digest directly: the decoder accepts the stream (digest
// verified internally) and reports the writer's cycle count.
func TestReplayMatchesWriterDigest(t *testing.T) {
	data, tw := captureStream(t, "mcf", 6)
	var last uint64
	got, err := ReplayBytes(context.Background(), data, probeFunc(func(cycle uint64) { last = cycle }))
	if err != nil {
		t.Fatal(err)
	}
	if got != last {
		t.Errorf("replay returned %d cycles, OnDone saw %d", got, last)
	}
	if tw.Records == 0 {
		t.Fatal("writer recorded nothing")
	}
}

// probeFunc adapts a done callback into a cpu.Probe.
type probeFunc func(totalCycles uint64)

func (probeFunc) OnFetch(cpu.Ref, uint64)    {}
func (probeFunc) OnDispatch(cpu.Ref, uint64) {}
func (probeFunc) OnCommit(cpu.Ref, uint64)   {}
func (probeFunc) OnSquash(cpu.Ref, uint64)   {}
func (probeFunc) OnCycle(*cpu.CycleInfo)     {}
func (f probeFunc) OnDone(c uint64)          { f(c) }
