package trace_test

// Codec benchmarks: the committed before/after evidence for trace
// format v4 (`make bench-codec` -> BENCH_<date>_codec.json, gated by
// `teadiff -mode bench` against the committed baseline). Encode and
// decode run over a pre-recorded logical event sequence, so the
// numbers measure the codecs alone — no simulation in the timed loop.
// The v3 columns come from the legacy codec copy in v3codec_test.go.
//
// ns/op is the wall-clock story (machine-dependent, reported but never
// gated); the byte totals, record counts, and digest halves are
// deterministic and must be bit-identical run to run.

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/cpu"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// logEvent is one recorded probe call; kind 0x05 carries the cycle
// info, everything else the (ref, cycle) pair.
type logEvent struct {
	kind  byte
	r     cpu.Ref
	cycle uint64
	ci    cpu.CycleInfo
}

// eventLog captures a workload's probe event sequence once, so encode
// benchmarks can replay it into fresh writers without re-simulating.
type eventLog struct {
	cpu.BaseProbe
	evs   []logEvent
	total uint64
}

func (l *eventLog) OnFetch(r cpu.Ref, cycle uint64) {
	l.evs = append(l.evs, logEvent{kind: 0x01, r: r, cycle: cycle})
}
func (l *eventLog) OnDispatch(r cpu.Ref, cycle uint64) {
	l.evs = append(l.evs, logEvent{kind: 0x02, r: r, cycle: cycle})
}
func (l *eventLog) OnCommit(r cpu.Ref, cycle uint64) {
	l.evs = append(l.evs, logEvent{kind: 0x03, r: r, cycle: cycle})
}
func (l *eventLog) OnSquash(r cpu.Ref, cycle uint64) {
	l.evs = append(l.evs, logEvent{kind: 0x04, r: r, cycle: cycle})
}
func (l *eventLog) OnCycle(ci *cpu.CycleInfo) {
	cp := *ci
	cp.Committed = append([]cpu.Ref(nil), ci.Committed...)
	l.evs = append(l.evs, logEvent{kind: 0x05, ci: cp})
}
func (l *eventLog) OnDone(totalCycles uint64) { l.total = totalCycles }

// play delivers the recorded sequence to a probe.
func (l *eventLog) play(p cpu.Probe) {
	for i := range l.evs {
		e := &l.evs[i]
		switch e.kind {
		case 0x01:
			p.OnFetch(e.r, e.cycle)
		case 0x02:
			p.OnDispatch(e.r, e.cycle)
		case 0x03:
			p.OnCommit(e.r, e.cycle)
		case 0x04:
			p.OnSquash(e.r, e.cycle)
		case 0x05:
			ci := e.ci
			p.OnCycle(&ci)
		}
	}
	p.OnDone(l.total)
}

// benchLog simulates the benchmark workload once per process and
// caches the event sequence.
var cachedLog *eventLog

func benchLog(b *testing.B) *eventLog {
	b.Helper()
	if cachedLog != nil {
		return cachedLog
	}
	w, err := workloads.ByName("bwaves")
	if err != nil {
		b.Fatal(err)
	}
	l := &eventLog{}
	c := cpu.New(cpu.DefaultConfig(), w.Build(1500))
	c.Attach(l)
	c.Run()
	cachedLog = l
	return l
}

// BenchmarkCodecEncodeV4 encodes the recorded event sequence with the
// v4 columnar writer.
func BenchmarkCodecEncodeV4(b *testing.B) {
	l := benchLog(b)
	var buf bytes.Buffer
	var tw *trace.Writer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		tw = trace.NewWriter(&buf)
		l.play(tw)
		if err := tw.Err(); err != nil {
			b.Fatal(err)
		}
	}
	ctr := tw.Counters()
	b.ReportMetric(float64(buf.Len()), "encoded_bytes")
	b.ReportMetric(float64(tw.Records), "records")
	b.ReportMetric(float64(ctr.LogicalBytes)/float64(ctr.EncodedBytes), "compression_x")
}

// BenchmarkCodecEncodeV3 encodes the same sequence with the legacy
// record-at-a-time writer.
func BenchmarkCodecEncodeV3(b *testing.B) {
	l := benchLog(b)
	var tw *v3Writer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tw = newV3Writer()
		l.play(tw)
	}
	b.ReportMetric(float64(len(tw.Bytes())), "encoded_bytes")
	b.ReportMetric(float64(tw.records), "records")
}

// BenchmarkCodecDecodeV4 replays a v4 stream of the recorded sequence
// into a no-op probe: the codec's decode throughput, the number the
// replay-heavy analyze-many workflows are bounded by.
func BenchmarkCodecDecodeV4(b *testing.B) {
	l := benchLog(b)
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	l.play(tw)
	if err := tw.Err(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	ctx := context.Background()
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		cycles, err = trace.ReplayBytes(ctx, data, nopProbe{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cycles), "cycles")
	b.ReportMetric(float64(tw.Records)/1e6, "mrecords")
}

// BenchmarkCodecDecodeV3 replays the legacy encoding of the same
// sequence — the decode-throughput floor v4 must not sink below.
func BenchmarkCodecDecodeV3(b *testing.B) {
	l := benchLog(b)
	tw := newV3Writer()
	l.play(tw)
	data := tw.Bytes()
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		cycles, err = v3ReplayBytes(data, nopProbe{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cycles), "cycles")
	b.ReportMetric(float64(tw.records)/1e6, "mrecords")
}

// BenchmarkCodecSuiteCompression captures every suite workload with
// both writers attached to one simulation and reports the suite byte
// totals — the ISSUE 10 acceptance evidence (>=5x). The FNV halves of
// the v4 bytes pin the exact encoding: equal halves on two runs (or
// against the committed baseline) mean byte-identical suite traces.
func BenchmarkCodecSuiteCompression(b *testing.B) {
	var v3Bytes, v4Bytes, cycles, digest uint64
	for i := 0; i < b.N; i++ {
		v3Bytes, v4Bytes, cycles = 0, 0, 0
		digest = 14695981039346656037 // FNV-1a offset basis
		for _, w := range workloads.All() {
			iters := w.DefaultIters / 4
			if iters < 2 {
				iters = 2
			}
			c := cpu.New(cpu.DefaultConfig(), w.Build(iters))
			var buf bytes.Buffer
			v4 := trace.NewWriter(&buf)
			v3 := newV3Writer()
			c.Attach(v4)
			c.Attach(v3)
			st := c.Run()
			if err := v4.Err(); err != nil {
				b.Fatal(err)
			}
			v3Bytes += uint64(len(v3.Bytes()))
			v4Bytes += uint64(buf.Len())
			cycles += st.Cycles
			for _, by := range buf.Bytes() {
				digest = (digest ^ uint64(by)) * 1099511628211
			}
		}
	}
	b.ReportMetric(float64(v3Bytes), "suite_v3_bytes")
	b.ReportMetric(float64(v4Bytes), "suite_v4_bytes")
	b.ReportMetric(float64(v3Bytes)/float64(v4Bytes), "compression_x")
	b.ReportMetric(float64(v4Bytes)/float64(cycles), "trace_bytes/cycle")
	// Two exact-in-float64 halves of the 64-bit digest.
	b.ReportMetric(float64(digest>>32), "trace_fnv_hi")
	b.ReportMetric(float64(digest&0xffffffff), "trace_fnv_lo")
}

// nopProbe absorbs every probe hook.
type nopProbe struct{}

func (nopProbe) OnFetch(cpu.Ref, uint64)    {}
func (nopProbe) OnDispatch(cpu.Ref, uint64) {}
func (nopProbe) OnCommit(cpu.Ref, uint64)   {}
func (nopProbe) OnSquash(cpu.Ref, uint64)   {}
func (nopProbe) OnCycle(*cpu.CycleInfo)     {}
func (nopProbe) OnDone(uint64)              {}
