package trace

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/cpu"
	"repro/internal/events"
	"repro/internal/simerr"
)

// winEnt is one in-flight instruction inside the replay's sliding
// window.
type winEnt struct {
	pc        uint64
	psv       events.PSV
	committed bool
}

// Replay feeds a recorded trace to a set of probes, reconstructing the
// refs the live probes would have seen. The probes cannot tell replay
// from a live run: profiles built offline are identical to online ones
// (the paper's out-of-band host processing).
//
// Sequence numbers are dense and retire roughly in order, so in-flight
// instructions live in a small sliding window indexed by seq instead of
// a map; the replay loop performs no per-record allocation. Committed
// entries are dropped from the window once their cycle record has been
// delivered; only the most recent committed instruction stays
// referenceable (Flushed cycles point at it). Squashed entries stay in
// place — the same sequence number is re-fetched later, which resets
// the entry, mirroring the fresh µop the live core allocates.
//
// Every failure — truncation, implausible operands, a malformed token
// or column, an integrity-digest mismatch — returns a typed
// *simerr.Error of kind simerr.ErrDecode with the failing record's
// position in its snapshot. Replay never panics on malformed input
// (FuzzReplay pins this).
//
//tealint:ctxroot uncancellable convenience entry point: callers with a context use ReplayContext
func Replay(r io.Reader, probes ...cpu.Probe) (totalCycles uint64, err error) {
	return ReplayContext(context.Background(), r, probes...)
}

// ReplayContext is Replay honoring cancellation: the context is polled
// periodically and a cancelled replay returns simerr.ErrCanceled
// wrapping ctx.Err() before the probes' completion hooks fire, so no
// partial profile can be observed downstream. The stream is read fully
// into memory first (captures are in-memory artifacts already), then
// decoded by ReplayBytes.
func ReplayContext(ctx context.Context, r io.Reader, probes ...cpu.Probe) (totalCycles uint64, err error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, simerr.Wrap(simerr.ErrDecode, simerr.Snapshot{}, err, "trace: reading stream")
	}
	return ReplayBytes(ctx, data, probes...)
}

// Verify decodes a complete in-memory stream with no probes attached:
// it returns nil only if the stream is well-formed end to end and its
// integrity digest matches. The trace cache (internal/tracestore via
// internal/analysis) validates disk-tier entries with it before
// serving them, so a corrupt cache file is a miss, never an ErrDecode
// surfaced to an experiment.
//
//tealint:ctxroot integrity check over an in-memory buffer, bounded by the buffer's length; nothing upstream to cancel it
func Verify(data []byte) error {
	_, err := ReplayBytes(context.Background(), data)
	return err
}

// tok is one parsed block token: a literal run (dist == 0) or a match.
type tok struct {
	n    int32
	dist int32
}

// decodeState is the pooled per-replay decode state: the parsed-token
// and literal-column scratch, the materialized per-record arrays that
// double as the pattern table for match copies, the sliding window of
// in-flight instructions, and the CycleInfo delivered to probes. The
// suite scheduler replays each shared capture many times (per figure,
// per sweep interval, per probe group), so recycling this state keeps
// the replay loop allocation-free across replays, not just within one.
type decodeState struct {
	toks []tok

	// Literal columns, decoded tightly up front (Pass B).
	litCyc   []uint64
	litSeq   []uint64
	litPC    []uint64
	litPSV   []uint64
	litCount []uint64

	// Materialized delta-space records for the current block; match
	// tokens copy from these.
	mKind      []byte
	mCyc       []uint64
	mA         []uint64
	mB         []uint64
	mListStart []uint32
	mLists     []uint64

	win []winEnt
	ci  cpu.CycleInfo
}

var replayPool = sync.Pool{New: func() any { return new(decodeState) }}

var (
	errVarintOverflow = errors.New("varint overflows a 64-bit integer")
	errTrailing       = errors.New("trailing bytes after last value")
)

// decodeCol decodes exactly n uvarints from span into dst, requiring
// the span to be consumed exactly — a column cannot hide extra bytes.
func decodeCol(dst []uint64, span []byte, n int) ([]uint64, error) {
	dst = dst[:0]
	p := 0
	for i := 0; i < n; i++ {
		v, sz := binary.Uvarint(span[p:])
		if sz == 0 {
			return dst, io.ErrUnexpectedEOF
		}
		if sz < 0 {
			return dst, errVarintOverflow
		}
		p += sz
		dst = append(dst, v)
	}
	if p != len(span) {
		return dst, errTrailing
	}
	return dst, nil
}

// ReplayBytes is ReplayContext for a complete in-memory stream — the
// replay hot path. Decoding runs on slice cursors with pooled
// block/window state, so one replay performs no per-record reads and no
// per-record allocation beyond the pooled block scratch. The data is
// only read, never written: callers may replay the same shared bytes
// from many goroutines concurrently.
func ReplayBytes(ctx context.Context, data []byte, probes ...cpu.Probe) (totalCycles uint64, err error) {
	// Decode state shared with the error-snapshot helper.
	var (
		lastCycle, lastSeq, lastPC uint64
		records                    uint64
		digest                     = uint64(digestOffset)
		pos                        int
	)
	decodeErr := func(cause error, format string, args ...any) error {
		snap := simerr.Snapshot{Cycle: lastCycle, Seq: lastSeq}
		snap.Detail = fmt.Sprintf("record %d", records)
		if cause != nil {
			return simerr.Wrap(simerr.ErrDecode, snap, cause, format, args...)
		}
		return simerr.New(simerr.ErrDecode, snap, format, args...)
	}

	if len(data) < 5 {
		return 0, decodeErr(io.ErrUnexpectedEOF, "trace: reading header")
	}
	if [4]byte(data[:4]) != magic {
		return 0, decodeErr(nil, "trace: bad magic")
	}
	if data[4] != FormatVersion {
		return 0, decodeErr(nil, "trace: unsupported version %d", data[4])
	}
	pos = 5

	st := replayPool.Get().(*decodeState)
	var (
		win  = st.win[:0]
		head int    // index of the window's first live entry
		base uint64 // seq of win[head]
		last cpu.Ref
	)
	ci := &st.ci
	defer func() {
		st.win = win[:0]
		ci.Committed = ci.Committed[:0]
		ci.Head, ci.LastCommitted = cpu.Ref{}, cpu.Ref{}
		replayPool.Put(st)
	}()

	// ensure grows the window to cover seq and returns its entry. The
	// caller checks the maxWindow guard first.
	ensure := func(seq uint64) *winEnt {
		for uint64(len(win)-head) <= seq-base {
			win = append(win, winEnt{})
		}
		return &win[head+int(seq-base)]
	}
	// ref builds the value-typed view of seq; sequence numbers outside
	// the window (malformed traces) synthesize a zero entry.
	ref := func(seq uint64) cpu.Ref {
		if seq >= base && seq-base < uint64(len(win)-head) {
			e := &win[head+int(seq-base)]
			return cpu.Ref{Seq: seq, PC: e.pc, PSV: e.psv}
		}
		return cpu.Ref{Seq: seq}
	}

	u64 := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n == 0 {
			return 0, io.ErrUnexpectedEOF
		}
		if n < 0 {
			return 0, errVarintOverflow
		}
		pos += n
		return v, nil
	}

	for {
		if cause := context.Cause(ctx); cause != nil {
			return totalCycles, simerr.Wrap(simerr.ErrCanceled,
				simerr.Snapshot{Cycle: lastCycle, Seq: lastSeq}, cause, "replay canceled")
		}
		if pos >= len(data) {
			return totalCycles, decodeErr(nil, "trace: truncated stream (no done section)")
		}
		tag := data[pos]
		pos++
		switch tag {
		case blockTag:
			// --- Block framing ---
			nRec64, err1 := u64()
			nTok64, err2 := u64()
			tokLen64, err3 := u64()
			if err := firstErr(err1, err2, err3); err != nil {
				return totalCycles, decodeErr(err, "trace: block header")
			}
			if nRec64 == 0 || nRec64 > maxBlockRecords {
				return totalCycles, decodeErr(nil, "trace: implausible block record count %d", nRec64)
			}
			if nTok64 == 0 || nTok64 > nRec64 {
				return totalCycles, decodeErr(nil, "trace: implausible block token count %d", nTok64)
			}
			if tokLen64 > uint64(len(data)-pos) {
				return totalCycles, decodeErr(io.ErrUnexpectedEOF, "trace: block token span")
			}
			nRec, nTok := int(nRec64), int(nTok64)
			tokens := data[pos : pos+int(tokLen64)]
			pos += int(tokLen64)
			var colSpan [nCols][]byte
			for c := 0; c < nCols; c++ {
				l, err := u64()
				if err != nil {
					return totalCycles, decodeErr(err, "trace: %s column length", ColumnNames[c])
				}
				if l > uint64(len(data)-pos) {
					return totalCycles, decodeErr(io.ErrUnexpectedEOF, "trace: %s column span", ColumnNames[c])
				}
				colSpan[c] = data[pos : pos+int(l)]
				pos += int(l)
			}

			// --- Pass A: token parse ---
			st.toks = st.toks[:0]
			tp := 0
			total, litN := 0, 0
			for k := 0; k < nTok; k++ {
				v, sz := binary.Uvarint(tokens[tp:])
				if sz <= 0 {
					return totalCycles, decodeErr(io.ErrUnexpectedEOF, "trace: block token %d", k)
				}
				tp += sz
				l := v >> 1
				if l == 0 || l > maxBlockRecords || int(l) > nRec-total {
					return totalCycles, decodeErr(nil, "trace: implausible token run length %d", l)
				}
				if v&1 == 1 {
					d, sz := binary.Uvarint(tokens[tp:])
					if sz <= 0 {
						return totalCycles, decodeErr(io.ErrUnexpectedEOF, "trace: match distance (token %d)", k)
					}
					tp += sz
					if d == 0 || d > uint64(total) {
						return totalCycles, decodeErr(nil,
							"trace: match distance %d exceeds %d materialized records", d, total)
					}
					st.toks = append(st.toks, tok{n: int32(l), dist: int32(d)})
				} else {
					st.toks = append(st.toks, tok{n: int32(l)})
					litN += int(l)
				}
				total += int(l)
			}
			if total != nRec {
				return totalCycles, decodeErr(nil, "trace: tokens cover %d of %d records", total, nRec)
			}
			if tp != len(tokens) {
				return totalCycles, decodeErr(errTrailing, "trace: block token span")
			}

			// --- Pass B: tight per-column literal decode ---
			litKind := colSpan[colKinds]
			if len(litKind) != litN {
				return totalCycles, decodeErr(nil,
					"trace: kinds column holds %d of %d literal records", len(litKind), litN)
			}
			var nFetch, nDispatch, nCommit, nSquash, nCycle int
			for _, k := range litKind {
				switch k {
				case recFetch:
					nFetch++
				case recDispatch:
					nDispatch++
				case recCommit:
					nCommit++
				case recSquash:
					nSquash++
				case recCycle:
					nCycle++
				default:
					return totalCycles, decodeErr(nil, "trace: unknown record kind %#x", k)
				}
			}
			var derr error
			if st.litCyc, derr = decodeCol(st.litCyc, colSpan[colCycles], litN); derr != nil {
				return totalCycles, decodeErr(derr, "trace: cycles column")
			}
			litState := colSpan[colStates]
			if len(litState) != nCycle {
				return totalCycles, decodeErr(nil,
					"trace: states column holds %d of %d cycle records", len(litState), nCycle)
			}
			var nCompute, nStallFlush int
			for _, s := range litState {
				switch events.CommitState(s) {
				case events.Compute:
					nCompute++
				case events.Stalled, events.Flushed:
					nStallFlush++
				case events.Drained:
				default:
					return totalCycles, decodeErr(nil, "trace: unknown commit state %d", s)
				}
			}
			if st.litCount, derr = decodeCol(st.litCount, colSpan[colCounts], nCompute); derr != nil {
				return totalCycles, decodeErr(derr, "trace: counts column")
			}
			listTotal := 0
			for _, n := range st.litCount {
				if n > maxCommitPerCycle {
					return totalCycles, decodeErr(nil,
						"trace: implausible commit count %d in one cycle", n)
				}
				listTotal += int(n)
				if listTotal > maxBlockLists {
					return totalCycles, decodeErr(nil,
						"trace: block commit lists exceed %d entries", maxBlockLists)
				}
			}
			needSeq := nFetch + nDispatch + nCommit + nSquash + nStallFlush + listTotal
			if st.litSeq, derr = decodeCol(st.litSeq, colSpan[colSeqs], needSeq); derr != nil {
				return totalCycles, decodeErr(derr, "trace: seqs column")
			}
			if st.litPC, derr = decodeCol(st.litPC, colSpan[colPCs], nFetch); derr != nil {
				return totalCycles, decodeErr(derr, "trace: pcs column")
			}
			if st.litPSV, derr = decodeCol(st.litPSV, colSpan[colPSVs], nCommit); derr != nil {
				return totalCycles, decodeErr(derr, "trace: psvs column")
			}

			// --- Pass C: materialize records and deliver them ---
			// Matched records copy from the materialized arrays (the
			// decoded pattern table); every record is delivered to the
			// probes the moment it materializes.
			st.mKind = st.mKind[:0]
			st.mCyc = st.mCyc[:0]
			st.mA = st.mA[:0]
			st.mB = st.mB[:0]
			st.mListStart = st.mListStart[:0]
			st.mLists = st.mLists[:0]
			var cK, cC, cS, cP, cV, cSt, cN int // literal-column cursors

			deliver := func(r int) error {
				records++
				if records&0xFFFF == 0 {
					if cause := context.Cause(ctx); cause != nil {
						return simerr.Wrap(simerr.ErrCanceled,
							simerr.Snapshot{Cycle: lastCycle, Seq: lastSeq}, cause, "replay canceled")
					}
				}
				kind := st.mKind[r]
				cycle := lastCycle + st.mCyc[r]
				lastCycle = cycle
				switch kind {
				case recFetch:
					seq := uint64(int64(lastSeq) + unzigzag(st.mA[r]))
					lastSeq = seq
					pc := uint64(int64(lastPC) + unzigzag(st.mB[r]))
					lastPC = pc
					if seq >= base {
						if seq-base >= maxWindow {
							return decodeErr(nil,
								"trace: implausible sequence jump to %d (window base %d)", seq, base)
						}
						// A re-fetch after a squash reuses the entry; the
						// fresh µop starts with an empty signature.
						*ensure(seq) = winEnt{pc: pc}
					}
					digest = mix(mix(mix(mix(digest, recFetch), seq), pc), cycle)
					rf := cpu.Ref{Seq: seq, PC: pc}
					for _, p := range probes {
						p.OnFetch(rf, cycle)
					}
				case recDispatch:
					seq := uint64(int64(lastSeq) + unzigzag(st.mA[r]))
					lastSeq = seq
					digest = mix(mix(mix(digest, recDispatch), seq), cycle)
					rf := ref(seq)
					for _, p := range probes {
						p.OnDispatch(rf, cycle)
					}
				case recCommit:
					seq := uint64(int64(lastSeq) + unzigzag(st.mA[r]))
					lastSeq = seq
					psv := st.mB[r]
					var rf cpu.Ref
					if seq >= base {
						if seq-base >= maxWindow {
							return decodeErr(nil,
								"trace: implausible sequence jump to %d (window base %d)", seq, base)
						}
						e := ensure(seq)
						e.psv = events.PSV(psv)
						e.committed = true
						rf = cpu.Ref{Seq: seq, PC: e.pc, PSV: e.psv}
					} else {
						rf = cpu.Ref{Seq: seq, PSV: events.PSV(psv)}
					}
					digest = mix(mix(mix(mix(digest, recCommit), seq), psv), cycle)
					for _, p := range probes {
						p.OnCommit(rf, cycle)
					}
					last = rf
				case recSquash:
					seq := uint64(int64(lastSeq) + unzigzag(st.mA[r]))
					lastSeq = seq
					digest = mix(mix(mix(digest, recSquash), seq), cycle)
					rf := ref(seq)
					for _, p := range probes {
						p.OnSquash(rf, cycle)
					}
				case recCycle:
					state := events.CommitState(st.mA[r])
					ci.Cycle = cycle
					ci.State = state
					ci.Committed = ci.Committed[:0]
					ci.Head = cpu.Ref{}
					ci.LastCommitted = cpu.Ref{}
					h := mix(mix(mix(digest, recCycle), cycle), uint64(state))
					switch state {
					case events.Compute:
						n := st.mB[r]
						h = mix(h, n)
						ls := int(st.mListStart[r])
						for k := 0; k < int(n); k++ {
							seq := uint64(int64(lastSeq) + unzigzag(st.mLists[ls+k]))
							lastSeq = seq
							h = mix(h, seq)
							ci.Committed = append(ci.Committed, ref(seq))
						}
					case events.Stalled:
						seq := uint64(int64(lastSeq) + unzigzag(st.mB[r]))
						lastSeq = seq
						h = mix(h, seq)
						ci.Head = ref(seq)
					case events.Flushed:
						seq := uint64(int64(lastSeq) + unzigzag(st.mB[r]))
						lastSeq = seq
						h = mix(h, seq)
						if last.Seq == seq {
							ci.LastCommitted = last
						} else {
							ci.LastCommitted = ref(seq)
						}
					case events.Drained:
						// No operand.
					}
					digest = h
					for _, p := range probes {
						p.OnCycle(ci)
					}
					// Slide the window past entries whose commit cycle has
					// now been delivered; nothing references them again
					// (Flushed cycles use last). The slide advances an
					// index instead of re-slicing so the pooled backing
					// array survives; the dead prefix is compacted once it
					// dominates the buffer.
					for head < len(win) && win[head].committed {
						head++
						base++
					}
					if head > 1024 && head*2 > len(win) {
						n := copy(win, win[head:])
						win = win[:n]
						head = 0
					}
				}
				return nil
			}

			r := 0
			for _, tk := range st.toks {
				if tk.dist == 0 {
					// Literal run: consume the columns in record order.
					for i := 0; i < int(tk.n); i++ {
						kind := litKind[cK]
						cK++
						st.mKind = append(st.mKind, kind)
						st.mCyc = append(st.mCyc, st.litCyc[cC])
						cC++
						st.mListStart = append(st.mListStart, uint32(len(st.mLists)))
						switch kind {
						case recFetch:
							st.mA = append(st.mA, st.litSeq[cS])
							cS++
							st.mB = append(st.mB, st.litPC[cP])
							cP++
						case recDispatch, recSquash:
							st.mA = append(st.mA, st.litSeq[cS])
							cS++
							st.mB = append(st.mB, 0)
						case recCommit:
							st.mA = append(st.mA, st.litSeq[cS])
							cS++
							st.mB = append(st.mB, st.litPSV[cV])
							cV++
						case recCycle:
							state := events.CommitState(litState[cSt])
							cSt++
							st.mA = append(st.mA, uint64(state))
							switch state {
							case events.Compute:
								n := st.litCount[cN]
								cN++
								st.mB = append(st.mB, n)
								st.mListStart[len(st.mListStart)-1] = uint32(len(st.mLists))
								st.mLists = append(st.mLists, st.litSeq[cS:cS+int(n)]...)
								cS += int(n)
							case events.Stalled, events.Flushed:
								st.mB = append(st.mB, st.litSeq[cS])
								cS++
							default: // events.Drained
								st.mB = append(st.mB, 0)
							}
						}
						if err := deliver(r); err != nil {
							return totalCycles, err
						}
						r++
					}
					continue
				}
				// Match run: element-wise copy from dist records back —
				// self-overlapping matches replicate a short period, the
				// loop-body case.
				d := int(tk.dist)
				for i := 0; i < int(tk.n); i++ {
					src := r - d
					kind := st.mKind[src]
					st.mKind = append(st.mKind, kind)
					st.mCyc = append(st.mCyc, st.mCyc[src])
					st.mA = append(st.mA, st.mA[src])
					st.mB = append(st.mB, st.mB[src])
					st.mListStart = append(st.mListStart, uint32(len(st.mLists)))
					if kind == recCycle && events.CommitState(st.mA[src]) == events.Compute {
						n := int(st.mB[src])
						if len(st.mLists)+n > maxBlockLists {
							return totalCycles, decodeErr(nil,
								"trace: block commit lists exceed %d entries", maxBlockLists)
						}
						ls := int(st.mListStart[src])
						st.mLists = append(st.mLists, st.mLists[ls:ls+n]...)
					}
					if err := deliver(r); err != nil {
						return totalCycles, err
					}
					r++
				}
			}

		case recDone:
			totalCycles, err = u64()
			if err != nil {
				return totalCycles, decodeErr(err, "trace: done section")
			}
			digest = mix(mix(digest, recDone), totalCycles)
			want, err := u64()
			if err != nil {
				return totalCycles, decodeErr(err, "trace: integrity digest")
			}
			if want != digest {
				return totalCycles, decodeErr(nil,
					"trace: integrity digest mismatch (stream corrupted or records reordered)")
			}
			// Only a verified stream reaches the completion hooks, so a
			// corrupt trace can never materialize as a profile.
			for _, p := range probes {
				p.OnDone(totalCycles)
			}
			return totalCycles, nil

		default:
			return totalCycles, decodeErr(nil, "trace: unknown section tag %#x", tag)
		}
	}
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
