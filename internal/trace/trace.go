// Package trace provides the TraceDoctor-style trace substrate of the
// paper's methodology (Section 4): the core's probe event stream —
// per-cycle commit states, fetch/dispatch/commit/squash events with
// instruction addresses and PSVs — is serialized to a compact binary
// stream, and any set of profiling techniques can later be replayed
// against it offline, out-of-band from the simulation. This is exactly
// how the paper evaluates 15 configurations from one FPGA run: capture
// once, analyze many times.
package trace

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/cpu"
	"repro/internal/events"
	"repro/internal/simerr"
)

// Record kinds.
const (
	recFetch    = 0x01
	recDispatch = 0x02
	recCommit   = 0x03
	recSquash   = 0x04
	recCycle    = 0x05
	recDone     = 0x06
)

// magic identifies a trace stream.
var magic = [4]byte{'T', 'E', 'A', 'T'}

// FormatVersion is the trace format version. Version 3 added the
// integrity digest carried by the done record: an FNV-style hash over
// every record's decoded logical values, letting the reader detect
// bit-flipped, reordered, or otherwise corrupted streams that still
// happen to decode — corruption yields a typed simerr.ErrDecode, never
// a silently wrong profile.
//
// The version is exported because it is part of the trace cache key
// (internal/tracestore): bumping the format invalidates every cached
// capture, in memory and on disk, without any explicit flush.
const FormatVersion = 3

// Digest parameters (FNV-1a's 64-bit constants, mixed per value rather
// than per byte; both sides hash decoded logical values, so the delta
// encoding does not affect the digest).
const (
	digestOffset = 14695981039346656037
	digestPrime  = 1099511628211
)

func mix(h, v uint64) uint64 { return (h ^ v) * digestPrime }

// Decode guards: bounds on operands a well-formed core can emit.
// Values beyond them mean a corrupt stream, rejected as ErrDecode
// before they can drive unbounded allocation.
const (
	// maxCommitPerCycle bounds a Compute cycle's commit list (real
	// commit widths are single digits).
	maxCommitPerCycle = 1024
	// maxWindow bounds the replay's in-flight sliding window (real
	// occupancy is bounded by ROB + fetch buffer, a few hundred).
	maxWindow = 1 << 20
)

// writerBlock is the Writer's block-buffer flush threshold. Records
// append into one slice with binary.AppendUvarint and the buffer is
// handed to the underlying io.Writer only once it crosses the
// threshold, checked at record boundaries — so the encode hot path is
// pure appends (no per-byte bufio accounting) and a record is never
// split across two underlying writes.
const writerBlock = 1 << 16

// Writer is a cpu.Probe that serializes the probe event stream.
type Writer struct {
	cpu.BaseProbe
	w       io.Writer
	err     error
	started bool

	// buf is the block buffer (see writerBlock).
	buf []byte

	// Delta-encoding state: cycles are monotonically non-decreasing;
	// sequence numbers and PCs are locally close, so signed deltas
	// compress well.
	lastCycle uint64
	lastSeq   uint64
	lastPC    uint64

	// digest accumulates the integrity hash over each record's logical
	// values; the done record carries it for the reader to verify.
	digest uint64

	// Records counts serialized records (for statistics).
	Records uint64
}

// NewWriter returns a trace writer targeting w. Attach it to a core
// like any other probe; the stream is complete after OnDone fires.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, buf: make([]byte, 0, writerBlock+64), digest: digestOffset}
}

// Err returns the first write error, if any.
func (t *Writer) Err() error { return t.err }

func (t *Writer) header() {
	if t.started {
		return
	}
	t.started = true
	t.buf = append(t.buf, magic[:]...)
	t.buf = append(t.buf, FormatVersion)
}

func (t *Writer) byteOut(b byte) {
	t.buf = append(t.buf, b)
}

func (t *Writer) varint(v uint64) {
	t.buf = binary.AppendUvarint(t.buf, v)
}

// endRecord closes one record: the block buffer drains to the
// underlying writer only here, so flushes always land on record
// boundaries.
func (t *Writer) endRecord() {
	t.Records++
	if len(t.buf) >= writerBlock {
		t.flush()
	}
}

func (t *Writer) flush() {
	if t.err == nil && len(t.buf) > 0 {
		_, t.err = t.w.Write(t.buf)
	}
	t.buf = t.buf[:0]
}

// cycleDelta emits the non-negative delta from the previous cycle.
func (t *Writer) cycleDelta(cycle uint64) {
	t.varint(cycle - t.lastCycle)
	t.lastCycle = cycle
}

// seqDelta emits the zigzag-encoded signed delta from the previous
// sequence number.
func (t *Writer) seqDelta(seq uint64) {
	t.varint(zigzag(int64(seq) - int64(t.lastSeq)))
	t.lastSeq = seq
}

// pcDelta emits the zigzag-encoded signed delta from the previous PC.
func (t *Writer) pcDelta(pc uint64) {
	t.varint(zigzag(int64(pc) - int64(t.lastPC)))
	t.lastPC = pc
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// OnFetch implements cpu.Probe.
func (t *Writer) OnFetch(r cpu.Ref, cycle uint64) {
	t.header()
	t.byteOut(recFetch)
	t.seqDelta(r.Seq)
	t.pcDelta(r.PC)
	t.cycleDelta(cycle)
	t.digest = mix(mix(mix(mix(t.digest, recFetch), r.Seq), r.PC), cycle)
	t.endRecord()
}

// OnDispatch implements cpu.Probe.
func (t *Writer) OnDispatch(r cpu.Ref, cycle uint64) {
	t.header()
	t.byteOut(recDispatch)
	t.seqDelta(r.Seq)
	t.cycleDelta(cycle)
	t.digest = mix(mix(mix(t.digest, recDispatch), r.Seq), cycle)
	t.endRecord()
}

// OnCommit implements cpu.Probe. The µop's PSV is final here.
func (t *Writer) OnCommit(r cpu.Ref, cycle uint64) {
	t.header()
	t.byteOut(recCommit)
	t.seqDelta(r.Seq)
	t.varint(uint64(r.PSV))
	t.cycleDelta(cycle)
	t.digest = mix(mix(mix(mix(t.digest, recCommit), r.Seq), uint64(r.PSV)), cycle)
	t.endRecord()
}

// OnSquash implements cpu.Probe.
func (t *Writer) OnSquash(r cpu.Ref, cycle uint64) {
	t.header()
	t.byteOut(recSquash)
	t.seqDelta(r.Seq)
	t.cycleDelta(cycle)
	t.digest = mix(mix(mix(t.digest, recSquash), r.Seq), cycle)
	t.endRecord()
}

// OnCycle implements cpu.Probe. Commit records for the cycle precede
// the cycle record in the live probe ordering... the core fires
// OnCommit during the commit stage and OnCycle at its end, so the
// stream preserves that order naturally.
func (t *Writer) OnCycle(ci *cpu.CycleInfo) {
	t.header()
	t.byteOut(recCycle)
	t.cycleDelta(ci.Cycle)
	t.byteOut(byte(ci.State))
	h := mix(mix(mix(t.digest, recCycle), ci.Cycle), uint64(ci.State))
	switch ci.State {
	case events.Compute:
		t.varint(uint64(len(ci.Committed)))
		h = mix(h, uint64(len(ci.Committed)))
		for _, r := range ci.Committed {
			t.seqDelta(r.Seq)
			h = mix(h, r.Seq)
		}
	case events.Stalled:
		t.seqDelta(ci.Head.Seq)
		h = mix(h, ci.Head.Seq)
	case events.Flushed:
		t.seqDelta(ci.LastCommitted.Seq)
		h = mix(h, ci.LastCommitted.Seq)
	case events.Drained:
		// No operand: the next commit resolves the attribution.
	}
	t.digest = h
	t.endRecord()
}

// OnDone implements cpu.Probe and finalizes the stream: the done
// record carries the total cycle count and the integrity digest over
// everything recorded before it.
func (t *Writer) OnDone(totalCycles uint64) {
	t.header()
	t.byteOut(recDone)
	t.varint(totalCycles)
	t.digest = mix(mix(t.digest, recDone), totalCycles)
	t.varint(t.digest)
	t.Records++
	t.flush()
}

// winEnt is one in-flight instruction inside the replay's sliding
// window.
type winEnt struct {
	pc        uint64
	psv       events.PSV
	committed bool
}

// Replay feeds a recorded trace to a set of probes, reconstructing the
// refs the live probes would have seen. The probes cannot tell replay
// from a live run: profiles built offline are identical to online ones
// (the paper's out-of-band host processing).
//
// Sequence numbers are dense and retire roughly in order, so in-flight
// instructions live in a small sliding window indexed by seq instead of
// a map; the replay loop performs no per-record allocation. Committed
// entries are dropped from the window once their cycle record has been
// delivered; only the most recent committed instruction stays
// referenceable (Flushed cycles point at it). Squashed entries stay in
// place — the same sequence number is re-fetched later, which resets
// the entry, mirroring the fresh µop the live core allocates.
//
// Every failure — truncation, implausible operands, an integrity-digest
// mismatch — returns a typed *simerr.Error of kind simerr.ErrDecode
// with the failing record's position in its snapshot. Replay never
// panics on malformed input (FuzzReplay pins this).
//
//tealint:ctxroot uncancellable convenience entry point: callers with a context use ReplayContext
func Replay(r io.Reader, probes ...cpu.Probe) (totalCycles uint64, err error) {
	return ReplayContext(context.Background(), r, probes...)
}

// ReplayContext is Replay honoring cancellation: the context is polled
// periodically and a cancelled replay returns simerr.ErrCanceled
// wrapping ctx.Err() before the probes' completion hooks fire, so no
// partial profile can be observed downstream. The stream is read fully
// into memory first (captures are in-memory artifacts already), then
// decoded by ReplayBytes.
func ReplayContext(ctx context.Context, r io.Reader, probes ...cpu.Probe) (totalCycles uint64, err error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, simerr.Wrap(simerr.ErrDecode, simerr.Snapshot{}, err, "trace: reading stream")
	}
	return ReplayBytes(ctx, data, probes...)
}

// Verify decodes a complete in-memory stream with no probes attached:
// it returns nil only if the stream is well-formed end to end and its
// integrity digest matches. The trace cache (internal/tracestore via
// internal/analysis) validates disk-tier entries with it before
// serving them, so a corrupt cache file is a miss, never an ErrDecode
// surfaced to an experiment.
//
//tealint:ctxroot integrity check over an in-memory buffer, bounded by the buffer's length; nothing upstream to cancel it
func Verify(data []byte) error {
	_, err := ReplayBytes(context.Background(), data)
	return err
}

// replayState is the pooled per-replay decode state: the sliding window
// of in-flight instructions and the CycleInfo delivered to probes. The
// suite scheduler replays each shared capture many times (per figure,
// per sweep interval, per probe group), so recycling this state keeps
// the replay loop allocation-free across replays, not just within one.
type replayState struct {
	win []winEnt
	ci  cpu.CycleInfo
}

var replayPool = sync.Pool{New: func() any { return new(replayState) }}

var errVarintOverflow = errors.New("varint overflows a 64-bit integer")

// ReplayBytes is ReplayContext for a complete in-memory stream — the
// replay hot path. Decoding runs on a slice cursor with pooled
// window/cycle state, so one replay performs no per-record reads and no
// per-record allocation. The data is only read, never written: callers
// may replay the same shared bytes from many goroutines concurrently.
func ReplayBytes(ctx context.Context, data []byte, probes ...cpu.Probe) (totalCycles uint64, err error) {
	// Decode state shared with the error-snapshot helper.
	var (
		lastCycle, lastSeq, lastPC uint64
		records                    uint64
		digest                     = uint64(digestOffset)
		pos                        int
	)
	decodeErr := func(cause error, format string, args ...any) error {
		snap := simerr.Snapshot{Cycle: lastCycle, Seq: lastSeq}
		snap.Detail = fmt.Sprintf("record %d", records)
		if cause != nil {
			return simerr.Wrap(simerr.ErrDecode, snap, cause, format, args...)
		}
		return simerr.New(simerr.ErrDecode, snap, format, args...)
	}

	if len(data) < 5 {
		return 0, decodeErr(io.ErrUnexpectedEOF, "trace: reading header")
	}
	if [4]byte(data[:4]) != magic {
		return 0, decodeErr(nil, "trace: bad magic")
	}
	if data[4] != FormatVersion {
		return 0, decodeErr(nil, "trace: unsupported version %d", data[4])
	}
	pos = 5

	st := replayPool.Get().(*replayState)
	var (
		win  = st.win[:0]
		head int    // index of the window's first live entry
		base uint64 // seq of win[head]
		last cpu.Ref
	)
	ci := &st.ci
	defer func() {
		st.win = win[:0]
		ci.Committed = ci.Committed[:0]
		ci.Head, ci.LastCommitted = cpu.Ref{}, cpu.Ref{}
		replayPool.Put(st)
	}()

	// ensure grows the window to cover seq and returns its entry. The
	// caller checks the maxWindow guard first.
	ensure := func(seq uint64) *winEnt {
		for uint64(len(win)-head) <= seq-base {
			win = append(win, winEnt{})
		}
		return &win[head+int(seq-base)]
	}
	// ref builds the value-typed view of seq; sequence numbers outside
	// the window (malformed traces) synthesize a zero entry, as the old
	// map-based replay did.
	ref := func(seq uint64) cpu.Ref {
		if seq >= base && seq-base < uint64(len(win)-head) {
			e := &win[head+int(seq-base)]
			return cpu.Ref{Seq: seq, PC: e.pc, PSV: e.psv}
		}
		return cpu.Ref{Seq: seq}
	}

	u64 := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n == 0 {
			return 0, io.ErrUnexpectedEOF
		}
		if n < 0 {
			return 0, errVarintOverflow
		}
		pos += n
		return v, nil
	}
	// Delta-decoding mirroring the writer.
	readCycle := func() (uint64, error) {
		d, err := u64()
		if err != nil {
			return 0, err
		}
		lastCycle += d
		return lastCycle, nil
	}
	readSeq := func() (uint64, error) {
		d, err := u64()
		if err != nil {
			return 0, err
		}
		lastSeq = uint64(int64(lastSeq) + unzigzag(d))
		return lastSeq, nil
	}
	readPC := func() (uint64, error) {
		d, err := u64()
		if err != nil {
			return 0, err
		}
		lastPC = uint64(int64(lastPC) + unzigzag(d))
		return lastPC, nil
	}
	for {
		// Poll cancellation every 64 Ki records — far off the hot path,
		// still prompt in wall-clock terms.
		if records&0xFFFF == 0 {
			if cause := context.Cause(ctx); cause != nil {
				return totalCycles, simerr.Wrap(simerr.ErrCanceled,
					simerr.Snapshot{Cycle: lastCycle, Seq: lastSeq}, cause, "replay canceled")
			}
		}
		if pos >= len(data) {
			return totalCycles, decodeErr(nil, "trace: truncated stream (no done record)")
		}
		kind := data[pos]
		pos++
		records++
		switch kind {
		case recFetch:
			seq, err1 := readSeq()
			pc, err2 := readPC()
			cycle, err3 := readCycle()
			if err := firstErr(err1, err2, err3); err != nil {
				return totalCycles, decodeErr(err, "trace: fetch record")
			}
			if seq >= base {
				if seq-base >= maxWindow {
					return totalCycles, decodeErr(nil,
						"trace: implausible sequence jump to %d (window base %d)", seq, base)
				}
				// A re-fetch after a squash reuses the entry; the fresh
				// µop starts with an empty signature.
				*ensure(seq) = winEnt{pc: pc}
			}
			digest = mix(mix(mix(mix(digest, recFetch), seq), pc), cycle)
			r := cpu.Ref{Seq: seq, PC: pc}
			for _, p := range probes {
				p.OnFetch(r, cycle)
			}
		case recDispatch:
			seq, err1 := readSeq()
			cycle, err2 := readCycle()
			if err := firstErr(err1, err2); err != nil {
				return totalCycles, decodeErr(err, "trace: dispatch record")
			}
			digest = mix(mix(mix(digest, recDispatch), seq), cycle)
			r := ref(seq)
			for _, p := range probes {
				p.OnDispatch(r, cycle)
			}
		case recCommit:
			seq, err1 := readSeq()
			psv, err2 := u64()
			cycle, err3 := readCycle()
			if err := firstErr(err1, err2, err3); err != nil {
				return totalCycles, decodeErr(err, "trace: commit record")
			}
			var r cpu.Ref
			if seq >= base {
				if seq-base >= maxWindow {
					return totalCycles, decodeErr(nil,
						"trace: implausible sequence jump to %d (window base %d)", seq, base)
				}
				e := ensure(seq)
				e.psv = events.PSV(psv)
				e.committed = true
				r = cpu.Ref{Seq: seq, PC: e.pc, PSV: e.psv}
			} else {
				r = cpu.Ref{Seq: seq, PSV: events.PSV(psv)}
			}
			digest = mix(mix(mix(mix(digest, recCommit), seq), psv), cycle)
			for _, p := range probes {
				p.OnCommit(r, cycle)
			}
			last = r
		case recSquash:
			seq, err1 := readSeq()
			cycle, err2 := readCycle()
			if err := firstErr(err1, err2); err != nil {
				return totalCycles, decodeErr(err, "trace: squash record")
			}
			digest = mix(mix(mix(digest, recSquash), seq), cycle)
			r := ref(seq)
			for _, p := range probes {
				p.OnSquash(r, cycle)
			}
		case recCycle:
			cycle, err1 := readCycle()
			if err1 == nil && pos >= len(data) {
				err1 = io.ErrUnexpectedEOF
			}
			if err1 != nil {
				return totalCycles, decodeErr(err1, "trace: cycle record")
			}
			stateByte := data[pos]
			pos++
			ci.Cycle = cycle
			ci.State = events.CommitState(stateByte)
			ci.Committed = ci.Committed[:0]
			ci.Head = cpu.Ref{}
			ci.LastCommitted = cpu.Ref{}
			h := mix(mix(mix(digest, recCycle), cycle), uint64(stateByte))
			switch ci.State {
			case events.Compute:
				n, err := u64()
				if err != nil {
					return totalCycles, decodeErr(err, "trace: cycle commit count")
				}
				if n > maxCommitPerCycle {
					return totalCycles, decodeErr(nil,
						"trace: implausible commit count %d in one cycle", n)
				}
				h = mix(h, n)
				for i := uint64(0); i < n; i++ {
					seq, err := readSeq()
					if err != nil {
						return totalCycles, decodeErr(err, "trace: cycle commit seq")
					}
					h = mix(h, seq)
					ci.Committed = append(ci.Committed, ref(seq))
				}
			case events.Stalled:
				seq, err := readSeq()
				if err != nil {
					return totalCycles, decodeErr(err, "trace: stalled head seq")
				}
				h = mix(h, seq)
				ci.Head = ref(seq)
			case events.Flushed:
				seq, err := readSeq()
				if err != nil {
					return totalCycles, decodeErr(err, "trace: flushed seq")
				}
				h = mix(h, seq)
				if last.Seq == seq {
					ci.LastCommitted = last
				} else {
					ci.LastCommitted = ref(seq)
				}
			case events.Drained:
				// No operand.
			default:
				return totalCycles, decodeErr(nil, "trace: unknown commit state %d", stateByte)
			}
			digest = h
			for _, p := range probes {
				p.OnCycle(ci)
			}
			// Slide the window past entries whose commit cycle has now
			// been delivered; nothing references them again (Flushed
			// cycles use last). The slide advances an index instead of
			// re-slicing so the pooled backing array survives; the dead
			// prefix is compacted once it dominates the buffer.
			for head < len(win) && win[head].committed {
				head++
				base++
			}
			if head > 1024 && head*2 > len(win) {
				n := copy(win, win[head:])
				win = win[:n]
				head = 0
			}
		case recDone:
			totalCycles, err = u64()
			if err != nil {
				return totalCycles, decodeErr(err, "trace: done record")
			}
			digest = mix(mix(digest, recDone), totalCycles)
			want, err := u64()
			if err != nil {
				return totalCycles, decodeErr(err, "trace: integrity digest")
			}
			if want != digest {
				return totalCycles, decodeErr(nil,
					"trace: integrity digest mismatch (stream corrupted or records reordered)")
			}
			// Only a verified stream reaches the completion hooks, so a
			// corrupt trace can never materialize as a profile.
			for _, p := range probes {
				p.OnDone(totalCycles)
			}
			return totalCycles, nil
		default:
			return totalCycles, decodeErr(nil, "trace: unknown record kind %#x", kind)
		}
	}
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// RecordOffsets scans a complete in-memory trace and returns the byte
// offset of every record start (the first offset is the header length).
// The fault-injection harness uses it to truncate or splice captures at
// exact record boundaries; the fuzz seed corpus is built the same way.
func RecordOffsets(data []byte) ([]int, error) {
	if len(data) < 5 || [4]byte(data[:4]) != magic || data[4] != FormatVersion {
		return nil, simerr.New(simerr.ErrDecode, simerr.Snapshot{}, "trace: bad header")
	}
	pos := 5
	var offsets []int
	uv := func() (uint64, bool) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	skip := func(n int) bool {
		ok := true
		for i := 0; i < n && ok; i++ {
			_, ok = uv()
		}
		return ok
	}
	for pos < len(data) {
		offsets = append(offsets, pos)
		kind := data[pos]
		pos++
		ok := true
		switch kind {
		case recFetch:
			ok = skip(3)
		case recDispatch, recSquash:
			ok = skip(2)
		case recCommit:
			ok = skip(3)
		case recCycle:
			ok = skip(1)
			if ok && pos < len(data) {
				state := events.CommitState(data[pos])
				pos++
				switch state {
				case events.Compute:
					n, got := uv()
					ok = got && n <= maxCommitPerCycle && skip(int(n))
				case events.Stalled, events.Flushed:
					ok = skip(1)
				}
			} else {
				ok = false
			}
		case recDone:
			if !skip(2) {
				return nil, simerr.New(simerr.ErrDecode, simerr.Snapshot{},
					"trace: truncated done record at offset %d", offsets[len(offsets)-1])
			}
			return offsets, nil
		default:
			ok = false
		}
		if !ok {
			return nil, simerr.New(simerr.ErrDecode, simerr.Snapshot{},
				"trace: malformed record at offset %d", offsets[len(offsets)-1])
		}
	}
	return nil, simerr.New(simerr.ErrDecode, simerr.Snapshot{}, "trace: no done record")
}
