// Package trace provides the TraceDoctor-style trace substrate of the
// paper's methodology (Section 4): the core's probe event stream —
// per-cycle commit states, fetch/dispatch/commit/squash events with
// instruction addresses and PSVs — is serialized to a compact binary
// stream, and any set of profiling techniques can later be replayed
// against it offline, out-of-band from the simulation. This is exactly
// how the paper evaluates 15 configurations from one FPGA run: capture
// once, analyze many times.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/cpu"
	"repro/internal/events"
)

// Record kinds.
const (
	recFetch    = 0x01
	recDispatch = 0x02
	recCommit   = 0x03
	recSquash   = 0x04
	recCycle    = 0x05
	recDone     = 0x06
)

// magic identifies a trace stream.
var magic = [4]byte{'T', 'E', 'A', 'T'}

// version is the trace format version.
const version = 2

// Writer is a cpu.Probe that serializes the probe event stream.
type Writer struct {
	cpu.BaseProbe
	w       *bufio.Writer
	err     error
	started bool
	buf     [binary.MaxVarintLen64]byte

	// Delta-encoding state: cycles are monotonically non-decreasing;
	// sequence numbers and PCs are locally close, so signed deltas
	// compress well.
	lastCycle uint64
	lastSeq   uint64
	lastPC    uint64

	// Records counts serialized records (for statistics).
	Records uint64
}

// NewWriter returns a trace writer targeting w. Attach it to a core
// like any other probe; the stream is complete after OnDone fires.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Err returns the first write error, if any.
func (t *Writer) Err() error { return t.err }

func (t *Writer) header() {
	if t.started || t.err != nil {
		return
	}
	t.started = true
	if _, err := t.w.Write(magic[:]); err != nil {
		t.err = err
		return
	}
	t.err = t.w.WriteByte(version)
}

func (t *Writer) byteOut(b byte) {
	if t.err == nil {
		t.err = t.w.WriteByte(b)
	}
}

func (t *Writer) varint(v uint64) {
	if t.err != nil {
		return
	}
	n := binary.PutUvarint(t.buf[:], v)
	_, t.err = t.w.Write(t.buf[:n])
}

// cycleDelta emits the non-negative delta from the previous cycle.
func (t *Writer) cycleDelta(cycle uint64) {
	t.varint(cycle - t.lastCycle)
	t.lastCycle = cycle
}

// seqDelta emits the zigzag-encoded signed delta from the previous
// sequence number.
func (t *Writer) seqDelta(seq uint64) {
	t.varint(zigzag(int64(seq) - int64(t.lastSeq)))
	t.lastSeq = seq
}

// pcDelta emits the zigzag-encoded signed delta from the previous PC.
func (t *Writer) pcDelta(pc uint64) {
	t.varint(zigzag(int64(pc) - int64(t.lastPC)))
	t.lastPC = pc
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// OnFetch implements cpu.Probe.
func (t *Writer) OnFetch(r cpu.Ref, cycle uint64) {
	t.header()
	t.byteOut(recFetch)
	t.seqDelta(r.Seq)
	t.pcDelta(r.PC)
	t.cycleDelta(cycle)
	t.Records++
}

// OnDispatch implements cpu.Probe.
func (t *Writer) OnDispatch(r cpu.Ref, cycle uint64) {
	t.header()
	t.byteOut(recDispatch)
	t.seqDelta(r.Seq)
	t.cycleDelta(cycle)
	t.Records++
}

// OnCommit implements cpu.Probe. The µop's PSV is final here.
func (t *Writer) OnCommit(r cpu.Ref, cycle uint64) {
	t.header()
	t.byteOut(recCommit)
	t.seqDelta(r.Seq)
	t.varint(uint64(r.PSV))
	t.cycleDelta(cycle)
	t.Records++
}

// OnSquash implements cpu.Probe.
func (t *Writer) OnSquash(r cpu.Ref, cycle uint64) {
	t.header()
	t.byteOut(recSquash)
	t.seqDelta(r.Seq)
	t.cycleDelta(cycle)
	t.Records++
}

// OnCycle implements cpu.Probe. Commit records for the cycle precede
// the cycle record in the live probe ordering... the core fires
// OnCommit during the commit stage and OnCycle at its end, so the
// stream preserves that order naturally.
func (t *Writer) OnCycle(ci *cpu.CycleInfo) {
	t.header()
	t.byteOut(recCycle)
	t.cycleDelta(ci.Cycle)
	t.byteOut(byte(ci.State))
	switch ci.State {
	case events.Compute:
		t.varint(uint64(len(ci.Committed)))
		for _, r := range ci.Committed {
			t.seqDelta(r.Seq)
		}
	case events.Stalled:
		t.seqDelta(ci.Head.Seq)
	case events.Flushed:
		t.seqDelta(ci.LastCommitted.Seq)
	case events.Drained:
		// No operand: the next commit resolves the attribution.
	}
	t.Records++
}

// OnDone implements cpu.Probe and finalizes the stream.
func (t *Writer) OnDone(totalCycles uint64) {
	t.header()
	t.byteOut(recDone)
	t.varint(totalCycles)
	t.Records++
	if t.err == nil {
		t.err = t.w.Flush()
	}
}

// winEnt is one in-flight instruction inside the replay's sliding
// window.
type winEnt struct {
	pc        uint64
	psv       events.PSV
	committed bool
}

// Replay feeds a recorded trace to a set of probes, reconstructing the
// refs the live probes would have seen. The probes cannot tell replay
// from a live run: profiles built offline are identical to online ones
// (the paper's out-of-band host processing).
//
// Sequence numbers are dense and retire roughly in order, so in-flight
// instructions live in a small sliding window indexed by seq instead of
// a map; the replay loop performs no per-record allocation. Committed
// entries are dropped from the window once their cycle record has been
// delivered; only the most recent committed instruction stays
// referenceable (Flushed cycles point at it). Squashed entries stay in
// place — the same sequence number is re-fetched later, which resets
// the entry, mirroring the fresh µop the live core allocates.
func Replay(r io.Reader, probes ...cpu.Probe) (totalCycles uint64, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, fmt.Errorf("trace: reading header: %w", err)
	}
	if [4]byte(hdr[:4]) != magic {
		return 0, errors.New("trace: bad magic")
	}
	if hdr[4] != version {
		return 0, fmt.Errorf("trace: unsupported version %d", hdr[4])
	}

	var (
		win  []winEnt
		base uint64 // seq of win[0]
		last cpu.Ref
	)
	// ensure grows the window to cover seq and returns its entry.
	ensure := func(seq uint64) *winEnt {
		for uint64(len(win)) <= seq-base {
			win = append(win, winEnt{})
		}
		return &win[seq-base]
	}
	// ref builds the value-typed view of seq; sequence numbers outside
	// the window (malformed traces) synthesize a zero entry, as the old
	// map-based replay did.
	ref := func(seq uint64) cpu.Ref {
		if seq >= base && seq-base < uint64(len(win)) {
			e := &win[seq-base]
			return cpu.Ref{Seq: seq, PC: e.pc, PSV: e.psv}
		}
		return cpu.Ref{Seq: seq}
	}
	ci := &cpu.CycleInfo{}

	u64 := func() (uint64, error) { return binary.ReadUvarint(br) }
	// Delta-decoding state mirroring the writer.
	var lastCycle, lastSeq, lastPC uint64
	readCycle := func() (uint64, error) {
		d, err := u64()
		if err != nil {
			return 0, err
		}
		lastCycle += d
		return lastCycle, nil
	}
	readSeq := func() (uint64, error) {
		d, err := u64()
		if err != nil {
			return 0, err
		}
		lastSeq = uint64(int64(lastSeq) + unzigzag(d))
		return lastSeq, nil
	}
	readPC := func() (uint64, error) {
		d, err := u64()
		if err != nil {
			return 0, err
		}
		lastPC = uint64(int64(lastPC) + unzigzag(d))
		return lastPC, nil
	}
	for {
		kind, err := br.ReadByte()
		if err == io.EOF {
			return totalCycles, errors.New("trace: truncated stream (no done record)")
		}
		if err != nil {
			return totalCycles, err
		}
		switch kind {
		case recFetch:
			seq, err1 := readSeq()
			pc, err2 := readPC()
			cycle, err3 := readCycle()
			if err := firstErr(err1, err2, err3); err != nil {
				return totalCycles, err
			}
			if seq >= base {
				// A re-fetch after a squash reuses the entry; the fresh
				// µop starts with an empty signature.
				*ensure(seq) = winEnt{pc: pc}
			}
			r := cpu.Ref{Seq: seq, PC: pc}
			for _, p := range probes {
				p.OnFetch(r, cycle)
			}
		case recDispatch:
			seq, err1 := readSeq()
			cycle, err2 := readCycle()
			if err := firstErr(err1, err2); err != nil {
				return totalCycles, err
			}
			r := ref(seq)
			for _, p := range probes {
				p.OnDispatch(r, cycle)
			}
		case recCommit:
			seq, err1 := readSeq()
			psv, err2 := u64()
			cycle, err3 := readCycle()
			if err := firstErr(err1, err2, err3); err != nil {
				return totalCycles, err
			}
			var r cpu.Ref
			if seq >= base {
				e := ensure(seq)
				e.psv = events.PSV(psv)
				e.committed = true
				r = cpu.Ref{Seq: seq, PC: e.pc, PSV: e.psv}
			} else {
				r = cpu.Ref{Seq: seq, PSV: events.PSV(psv)}
			}
			for _, p := range probes {
				p.OnCommit(r, cycle)
			}
			last = r
		case recSquash:
			seq, err1 := readSeq()
			cycle, err2 := readCycle()
			if err := firstErr(err1, err2); err != nil {
				return totalCycles, err
			}
			r := ref(seq)
			for _, p := range probes {
				p.OnSquash(r, cycle)
			}
		case recCycle:
			cycle, err1 := readCycle()
			stateByte, err2 := br.ReadByte()
			if err := firstErr(err1, err2); err != nil {
				return totalCycles, err
			}
			ci.Cycle = cycle
			ci.State = events.CommitState(stateByte)
			ci.Committed = ci.Committed[:0]
			ci.Head = cpu.Ref{}
			ci.LastCommitted = cpu.Ref{}
			switch ci.State {
			case events.Compute:
				n, err := u64()
				if err != nil {
					return totalCycles, err
				}
				for i := uint64(0); i < n; i++ {
					seq, err := readSeq()
					if err != nil {
						return totalCycles, err
					}
					ci.Committed = append(ci.Committed, ref(seq))
				}
			case events.Stalled:
				seq, err := readSeq()
				if err != nil {
					return totalCycles, err
				}
				ci.Head = ref(seq)
			case events.Flushed:
				seq, err := readSeq()
				if err != nil {
					return totalCycles, err
				}
				if last.Seq == seq {
					ci.LastCommitted = last
				} else {
					ci.LastCommitted = ref(seq)
				}
			}
			for _, p := range probes {
				p.OnCycle(ci)
			}
			// Slide the window past entries whose commit cycle has now
			// been delivered; nothing references them again (Flushed
			// cycles use last).
			for len(win) > 0 && win[0].committed {
				win = win[1:]
				base++
			}
		case recDone:
			totalCycles, err = u64()
			if err != nil {
				return totalCycles, err
			}
			for _, p := range probes {
				p.OnDone(totalCycles)
			}
			return totalCycles, nil
		default:
			return totalCycles, fmt.Errorf("trace: unknown record kind %#x", kind)
		}
	}
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
