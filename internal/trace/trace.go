// Package trace provides the TraceDoctor-style trace substrate of the
// paper's methodology (Section 4): the core's probe event stream —
// per-cycle commit states, fetch/dispatch/commit/squash events with
// instruction addresses and PSVs — is serialized to a compact binary
// stream, and any set of profiling techniques can later be replayed
// against it offline, out-of-band from the simulation. This is exactly
// how the paper evaluates 15 configurations from one FPGA run: capture
// once, analyze many times.
//
// Format v4 (this file and reader.go) applies the redundancy-suppression
// idea from Arafa et al. ("Redundancy Suppression In Time-Aware Dynamic
// Binary Instrumentation") to the stream: traces are dominated by
// repeated loop bodies, whose records are identical *in delta space*
// even though their absolute sequence numbers and cycles differ. The
// writer buffers records in delta space, finds recurring record runs
// with an LZ-style match parse against the records already seen in the
// block (the per-stream pattern table), and serializes each block as a
// token stream (literal-run / match tokens) plus seven columnar literal
// arrays — kinds, cycle deltas, seq deltas, PC deltas, PSVs, commit
// states, commit counts — so the decoder runs tight per-column varint
// loops instead of a per-record kind switch. Matched records are never
// stored at all; the decoder re-materializes them by copying earlier
// records of the same block.
//
// The integrity digest is computed over decoded logical values exactly
// as in v3, so it is invariant under the encoding change: a v4 stream
// replays to byte-identical profiles and carries the same digest a v3
// stream of the same capture would.
package trace

import (
	"io"
	"math/bits"

	"encoding/binary"

	"repro/internal/cpu"
	"repro/internal/events"
)

// Record kinds. Kinds 1..5 appear inside blocks; recDone tags the
// stream's final section.
const (
	recFetch    = 0x01
	recDispatch = 0x02
	recCommit   = 0x03
	recSquash   = 0x04
	recCycle    = 0x05
	recDone     = 0x06
)

// blockTag introduces a columnar record block.
const blockTag = 0x10

// magic identifies a trace stream.
var magic = [4]byte{'T', 'E', 'A', 'T'}

// FormatVersion is the trace format version. Version 3 added the
// integrity digest carried by the done section: an FNV-style hash over
// every record's decoded logical values, letting the reader detect
// bit-flipped, reordered, or otherwise corrupted streams that still
// happen to decode — corruption yields a typed simerr.ErrDecode, never
// a silently wrong profile. Version 4 keeps the digest bit-for-bit (it
// hashes logical values, not encoding) and replaces the record-at-a-time
// layout with pattern-matched columnar blocks.
//
// The version is exported because it is part of the trace cache key
// (internal/tracestore): bumping the format invalidates every cached
// capture, in memory and on disk, without any explicit flush.
const FormatVersion = 4

// Digest parameters (FNV-1a's 64-bit constants, mixed per value rather
// than per byte; both sides hash decoded logical values, so neither the
// delta encoding nor the v4 pattern matching affects the digest).
const (
	digestOffset = 14695981039346656037
	digestPrime  = 1099511628211
)

func mix(h, v uint64) uint64 { return (h ^ v) * digestPrime }

// Decode guards: bounds on operands a well-formed core can emit.
// Values beyond them mean a corrupt stream, rejected as ErrDecode
// before they can drive unbounded allocation.
const (
	// maxCommitPerCycle bounds a Compute cycle's commit list (real
	// commit widths are single digits).
	maxCommitPerCycle = 1024
	// maxWindow bounds the replay's in-flight sliding window (real
	// occupancy is bounded by ROB + fetch buffer, a few hundred).
	maxWindow = 1 << 20
)

// Block geometry. The writer closes a block purely as a function of the
// logical record sequence (record count and buffered commit-list
// length), never of wall clock or buffer bytes, so a stitched capture
// flushes at exactly the same records as a serial one and the streams
// stay byte-identical.
const (
	// blockRecords is the writer's per-block record budget.
	blockRecords = 1 << 15
	// maxBlockRecords bounds a decoded block's record count; the
	// writer stays at blockRecords, the slack tolerates forward
	// format tweaks without a version bump.
	maxBlockRecords = 1 << 16
	// blockListFlush closes a block early when its buffered commit
	// lists grow past this many entries; with the per-record
	// maxCommitPerCycle bound it caps materialized list memory at
	// maxBlockLists per block, on both sides of the codec.
	blockListFlush = 1 << 15
	// maxBlockLists bounds the total commit-list elements a decoder
	// will materialize for one block: a crafted stream cannot use
	// match tokens to amplify one literal 1024-entry list into an
	// unbounded allocation (ErrDecode instead).
	maxBlockLists = blockListFlush + maxCommitPerCycle
	// minMatch is the shortest record run worth a match token: below
	// four records the token + distance overhead beats the literals.
	minMatch = 4
	// hashBits sizes the pattern table (per-block match candidates).
	hashBits = 16
)

// nCols is the number of literal columns in a block, in serialization
// order: kinds, cycle deltas, seq deltas, PC deltas, PSVs, commit
// states, commit counts.
const nCols = 7

// Column indices into a block's literal columns.
const (
	colKinds = iota
	colCycles
	colSeqs
	colPCs
	colPSVs
	colStates
	colCounts
)

// ColumnNames names the literal columns in serialization order, for
// stats output and chaos-mode labels.
var ColumnNames = [nCols]string{"kinds", "cycles", "seqs", "pcs", "psvs", "states", "counts"}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvlen is the encoded size of v as a uvarint — used to account the
// v3-equivalent "logical" stream size without materializing it.
func uvlen(v uint64) uint64 { return uint64(bits.Len64(v|1)+6) / 7 }

// Counters reports what the writer did, for compression stats: the
// logical (v3-equivalent record-at-a-time) size versus the encoded v4
// size, and how much of the stream the pattern table absorbed.
type Counters struct {
	Records        uint64 // records serialized (including the done section)
	Blocks         uint64 // columnar blocks emitted
	LitTokens      uint64 // literal-run tokens
	MatchTokens    uint64 // match tokens
	MatchedRecords uint64 // records covered by match tokens
	LogicalBytes   uint64 // exact v3 encoding size of the same record sequence
	EncodedBytes   uint64 // bytes actually written (v4)
}

// Writer is a cpu.Probe that serializes the probe event stream as
// format v4. Probe hooks delta-encode into per-record column buffers;
// when the block budget fills, the buffered records are match-parsed
// against themselves and serialized as one columnar block.
type Writer struct {
	cpu.BaseProbe
	w       io.Writer
	err     error
	started bool

	// buf accumulates one serialized block (plus header/done section)
	// before it is handed to the underlying writer, so a block is
	// written in a single Write call.
	buf []byte

	// Per-block record buffers, in delta space. opA holds the primary
	// operand (zigzag seq delta; commit state for cycle records), opB
	// the secondary one (zigzag PC delta for fetch, PSV for commit,
	// commit count or zigzag seq delta for cycle records). Compute
	// cycles' commit lists live flat in lists; listStart[i] points at
	// record i's span (length = opB[i]).
	kinds     []byte
	dCyc      []uint64
	opA       []uint64
	opB       []uint64
	listStart []uint32
	lists     []uint64
	// fps holds a per-record fingerprint over all delta-space fields,
	// the fast path for record equality during the match parse.
	fps []uint64

	// htab is the pattern table: hash of a minMatch-record fingerprint
	// window → most recent block position, -1 when empty. Cleared per
	// block.
	htab []int32

	// tokBuf and cols are the per-block serialization scratch.
	tokBuf []byte
	cols   [nCols][]byte

	// Delta-encoding state: cycles are monotonically non-decreasing;
	// sequence numbers and PCs are locally close, so signed deltas
	// compress well. Stream-continuous across blocks.
	lastCycle uint64
	lastSeq   uint64
	lastPC    uint64

	// digest accumulates the integrity hash over each record's logical
	// values; the done section carries it for the reader to verify.
	digest uint64

	// Records counts serialized records (for statistics).
	Records uint64

	c Counters
}

// NewWriter returns a trace writer targeting w. Attach it to a core
// like any other probe; the stream is complete after OnDone fires.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, digest: digestOffset}
}

// Err returns the first write error, if any.
func (t *Writer) Err() error { return t.err }

// Counters returns the writer's codec statistics. Complete only after
// OnDone has fired (LogicalBytes/EncodedBytes include the done section).
func (t *Writer) Counters() Counters {
	c := t.c
	c.Records = t.Records
	return c
}

func (t *Writer) header() {
	if t.started {
		return
	}
	t.started = true
	t.buf = append(t.buf, magic[:]...)
	t.buf = append(t.buf, FormatVersion)
	t.c.LogicalBytes += 5
}

func (t *Writer) flush() {
	if t.err == nil && len(t.buf) > 0 {
		_, t.err = t.w.Write(t.buf)
	}
	t.c.EncodedBytes += uint64(len(t.buf))
	t.buf = t.buf[:0]
}

// endRecord closes one buffered record; the block is serialized once
// the record or commit-list budget fills. Both thresholds are pure
// functions of the logical record sequence (see blockRecords).
func (t *Writer) endRecord() {
	t.Records++
	if len(t.kinds) >= blockRecords || len(t.lists) >= blockListFlush {
		t.flushBlock()
	}
}

// push buffers one record in delta space and fingerprints it.
func (t *Writer) push(kind byte, dc, a, b uint64) {
	t.kinds = append(t.kinds, kind)
	t.dCyc = append(t.dCyc, dc)
	t.opA = append(t.opA, a)
	t.opB = append(t.opB, b)
	t.listStart = append(t.listStart, uint32(len(t.lists)))
	t.fps = append(t.fps, mix(mix(mix(mix(digestOffset, uint64(kind)), dc), a), b))
}

// pushList appends one commit-list element (zigzag seq delta) to the
// current record and folds it into the record's fingerprint.
func (t *Writer) pushList(d uint64) {
	t.lists = append(t.lists, d)
	i := len(t.fps) - 1
	t.fps[i] = mix(t.fps[i], d)
}

// OnFetch implements cpu.Probe.
func (t *Writer) OnFetch(r cpu.Ref, cycle uint64) {
	t.header()
	ds := zigzag(int64(r.Seq) - int64(t.lastSeq))
	dp := zigzag(int64(r.PC) - int64(t.lastPC))
	dc := cycle - t.lastCycle
	t.lastSeq, t.lastPC, t.lastCycle = r.Seq, r.PC, cycle
	t.push(recFetch, dc, ds, dp)
	t.digest = mix(mix(mix(mix(t.digest, recFetch), r.Seq), r.PC), cycle)
	t.c.LogicalBytes += 1 + uvlen(ds) + uvlen(dp) + uvlen(dc)
	t.endRecord()
}

// OnDispatch implements cpu.Probe.
func (t *Writer) OnDispatch(r cpu.Ref, cycle uint64) {
	t.header()
	ds := zigzag(int64(r.Seq) - int64(t.lastSeq))
	dc := cycle - t.lastCycle
	t.lastSeq, t.lastCycle = r.Seq, cycle
	t.push(recDispatch, dc, ds, 0)
	t.digest = mix(mix(mix(t.digest, recDispatch), r.Seq), cycle)
	t.c.LogicalBytes += 1 + uvlen(ds) + uvlen(dc)
	t.endRecord()
}

// OnCommit implements cpu.Probe. The µop's PSV is final here.
func (t *Writer) OnCommit(r cpu.Ref, cycle uint64) {
	t.header()
	ds := zigzag(int64(r.Seq) - int64(t.lastSeq))
	dc := cycle - t.lastCycle
	t.lastSeq, t.lastCycle = r.Seq, cycle
	t.push(recCommit, dc, ds, uint64(r.PSV))
	t.digest = mix(mix(mix(mix(t.digest, recCommit), r.Seq), uint64(r.PSV)), cycle)
	t.c.LogicalBytes += 1 + uvlen(ds) + uvlen(uint64(r.PSV)) + uvlen(dc)
	t.endRecord()
}

// OnSquash implements cpu.Probe.
func (t *Writer) OnSquash(r cpu.Ref, cycle uint64) {
	t.header()
	ds := zigzag(int64(r.Seq) - int64(t.lastSeq))
	dc := cycle - t.lastCycle
	t.lastSeq, t.lastCycle = r.Seq, cycle
	t.push(recSquash, dc, ds, 0)
	t.digest = mix(mix(mix(t.digest, recSquash), r.Seq), cycle)
	t.c.LogicalBytes += 1 + uvlen(ds) + uvlen(dc)
	t.endRecord()
}

// OnCycle implements cpu.Probe. Commit records for the cycle precede
// the cycle record in the live probe ordering... the core fires
// OnCommit during the commit stage and OnCycle at its end, so the
// stream preserves that order naturally.
func (t *Writer) OnCycle(ci *cpu.CycleInfo) {
	t.header()
	dc := ci.Cycle - t.lastCycle
	t.lastCycle = ci.Cycle
	h := mix(mix(mix(t.digest, recCycle), ci.Cycle), uint64(ci.State))
	lb := uint64(2) + uvlen(dc) // kind byte + state byte + cycle delta
	switch ci.State {
	case events.Compute:
		n := uint64(len(ci.Committed))
		t.push(recCycle, dc, uint64(ci.State), n)
		h = mix(h, n)
		lb += uvlen(n)
		for _, r := range ci.Committed {
			ds := zigzag(int64(r.Seq) - int64(t.lastSeq))
			t.lastSeq = r.Seq
			t.pushList(ds)
			h = mix(h, r.Seq)
			lb += uvlen(ds)
		}
	case events.Stalled:
		ds := zigzag(int64(ci.Head.Seq) - int64(t.lastSeq))
		t.lastSeq = ci.Head.Seq
		t.push(recCycle, dc, uint64(ci.State), ds)
		h = mix(h, ci.Head.Seq)
		lb += uvlen(ds)
	case events.Flushed:
		ds := zigzag(int64(ci.LastCommitted.Seq) - int64(t.lastSeq))
		t.lastSeq = ci.LastCommitted.Seq
		t.push(recCycle, dc, uint64(ci.State), ds)
		h = mix(h, ci.LastCommitted.Seq)
		lb += uvlen(ds)
	default: // events.Drained: no operand; the next commit resolves the attribution.
		t.push(recCycle, dc, uint64(ci.State), 0)
	}
	t.digest = h
	t.c.LogicalBytes += lb
	t.endRecord()
}

// OnDone implements cpu.Probe and finalizes the stream: any buffered
// block is serialized, then the done section carries the total cycle
// count and the integrity digest over everything recorded before it.
func (t *Writer) OnDone(totalCycles uint64) {
	t.header()
	t.flushBlock()
	t.buf = append(t.buf, recDone)
	t.buf = binary.AppendUvarint(t.buf, totalCycles)
	t.digest = mix(mix(t.digest, recDone), totalCycles)
	t.buf = binary.AppendUvarint(t.buf, t.digest)
	t.Records++
	t.c.LogicalBytes += 1 + uvlen(totalCycles) + uvlen(t.digest)
	t.flush()
}

// recEq reports whether buffered records i and j are identical in
// delta space. The fingerprint comparison is only a fast path; a
// colliding pair must not produce a false match (it would corrupt the
// stream), so equality is always confirmed field by field.
func (t *Writer) recEq(i, j int) bool {
	if t.fps[i] != t.fps[j] {
		return false
	}
	if t.kinds[i] != t.kinds[j] || t.dCyc[i] != t.dCyc[j] ||
		t.opA[i] != t.opA[j] || t.opB[i] != t.opB[j] {
		return false
	}
	if t.kinds[i] == recCycle && t.opA[i] == uint64(events.Compute) {
		n := int(t.opB[i])
		si, sj := int(t.listStart[i]), int(t.listStart[j])
		for k := 0; k < n; k++ {
			if t.lists[si+k] != t.lists[sj+k] {
				return false
			}
		}
	}
	return true
}

// matchLen extends a candidate match at (i ← j), returning how many
// consecutive records agree. Self-overlap (j+k crossing i) is fine:
// the decoder copies element-wise, so an overlapping match replicates
// a short period — exactly the loop-body case.
func (t *Writer) matchLen(i, j int) int {
	n := len(t.kinds)
	k := 0
	for i+k < n && t.recEq(i+k, j+k) {
		k++
	}
	return k
}

// hashAt hashes the minMatch-record fingerprint window starting at i.
func (t *Writer) hashAt(i int) uint32 {
	h := uint64(digestOffset)
	h = mix(h, t.fps[i])
	h = mix(h, t.fps[i+1])
	h = mix(h, t.fps[i+2])
	h = mix(h, t.fps[i+3])
	return uint32(h>>(64-hashBits)) & (1<<hashBits - 1)
}

// flushBlock match-parses the buffered records and serializes them as
// one columnar block.
func (t *Writer) flushBlock() {
	n := len(t.kinds)
	if n == 0 {
		return
	}

	if t.htab == nil {
		t.htab = make([]int32, 1<<hashBits)
	}
	for i := range t.htab {
		t.htab[i] = -1
	}

	// Greedy parse: at each position try the most recent hash-table
	// candidate and the previous match distance, take the longer run.
	// Tokens: uvarint v — even: literal run of v>>1 records; odd:
	// match of v>>1 records followed by uvarint distance.
	t.tokBuf = t.tokBuf[:0]
	nTokens := 0
	emitLit := func(s, e int) {
		if e > s {
			t.tokBuf = binary.AppendUvarint(t.tokBuf, uint64(e-s)<<1)
			nTokens++
			t.c.LitTokens++
			t.serializeLits(s, e)
		}
	}
	litStart := 0
	prevDist := 0
	for i := 0; i < n; {
		bestLen, bestDist := 0, 0
		if i+minMatch <= n {
			h := t.hashAt(i)
			if cand := int(t.htab[h]); cand >= 0 && cand < i {
				if l := t.matchLen(i, cand); l >= minMatch {
					bestLen, bestDist = l, i-cand
				}
			}
			if prevDist > 0 && i-prevDist >= 0 && prevDist != bestDist {
				if l := t.matchLen(i, i-prevDist); l >= minMatch && l >= bestLen {
					bestLen, bestDist = l, prevDist
				}
			}
			t.htab[h] = int32(i)
		}
		if bestLen == 0 {
			i++
			continue
		}
		emitLit(litStart, i)
		t.tokBuf = binary.AppendUvarint(t.tokBuf, uint64(bestLen)<<1|1)
		t.tokBuf = binary.AppendUvarint(t.tokBuf, uint64(bestDist))
		nTokens++
		t.c.MatchTokens++
		t.c.MatchedRecords += uint64(bestLen)
		prevDist = bestDist
		// Seed the pattern table across the matched span so later
		// positions can reference runs inside it.
		for j := i + 1; j < i+bestLen && j+minMatch <= n; j++ {
			t.htab[t.hashAt(j)] = int32(j)
		}
		i += bestLen
		litStart = i
	}
	emitLit(litStart, n)

	// Block framing: tag, record/token counts, token span, then the
	// seven length-prefixed literal columns.
	t.buf = append(t.buf, blockTag)
	t.buf = binary.AppendUvarint(t.buf, uint64(n))
	t.buf = binary.AppendUvarint(t.buf, uint64(nTokens))
	t.buf = binary.AppendUvarint(t.buf, uint64(len(t.tokBuf)))
	t.buf = append(t.buf, t.tokBuf...)
	for ci := 0; ci < nCols; ci++ {
		t.buf = binary.AppendUvarint(t.buf, uint64(len(t.cols[ci])))
		t.buf = append(t.buf, t.cols[ci]...)
	}
	t.c.Blocks++
	t.flush()

	t.kinds = t.kinds[:0]
	t.dCyc = t.dCyc[:0]
	t.opA = t.opA[:0]
	t.opB = t.opB[:0]
	t.listStart = t.listStart[:0]
	t.lists = t.lists[:0]
	t.fps = t.fps[:0]
	for ci := 0; ci < nCols; ci++ {
		t.cols[ci] = t.cols[ci][:0]
	}
}

// serializeLits appends records [s, e) to the literal columns.
func (t *Writer) serializeLits(s, e int) {
	for r := s; r < e; r++ {
		kind := t.kinds[r]
		t.cols[colKinds] = append(t.cols[colKinds], kind)
		t.cols[colCycles] = binary.AppendUvarint(t.cols[colCycles], t.dCyc[r])
		switch kind {
		case recFetch:
			t.cols[colSeqs] = binary.AppendUvarint(t.cols[colSeqs], t.opA[r])
			t.cols[colPCs] = binary.AppendUvarint(t.cols[colPCs], t.opB[r])
		case recDispatch, recSquash:
			t.cols[colSeqs] = binary.AppendUvarint(t.cols[colSeqs], t.opA[r])
		case recCommit:
			t.cols[colSeqs] = binary.AppendUvarint(t.cols[colSeqs], t.opA[r])
			t.cols[colPSVs] = binary.AppendUvarint(t.cols[colPSVs], t.opB[r])
		case recCycle:
			t.cols[colStates] = append(t.cols[colStates], byte(t.opA[r]))
			switch events.CommitState(t.opA[r]) {
			case events.Compute:
				t.cols[colCounts] = binary.AppendUvarint(t.cols[colCounts], t.opB[r])
				ls := int(t.listStart[r])
				for k := 0; k < int(t.opB[r]); k++ {
					t.cols[colSeqs] = binary.AppendUvarint(t.cols[colSeqs], t.lists[ls+k])
				}
			case events.Stalled, events.Flushed:
				t.cols[colSeqs] = binary.AppendUvarint(t.cols[colSeqs], t.opB[r])
			}
		}
	}
}
