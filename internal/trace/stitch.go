package trace

import (
	"context"
	"io"

	"repro/internal/cpu"
	"repro/internal/simerr"
)

// stitchProbe forwards a replayed segment's events into a destination
// Writer, shifting every cycle stamp by a constant offset and
// suppressing the segment's completion hook (the stitched stream gets
// exactly one done record, written by the caller). Because the Writer
// re-derives its delta encoding and integrity digest from the logical
// values it is fed, the stitched stream is byte-identical to one
// recorded serially whenever the forwarded record sequence is.
type stitchProbe struct {
	cpu.BaseProbe
	w      *Writer
	offset uint64
}

func (s *stitchProbe) OnFetch(r cpu.Ref, cycle uint64)    { s.w.OnFetch(r, cycle+s.offset) }
func (s *stitchProbe) OnDispatch(r cpu.Ref, cycle uint64) { s.w.OnDispatch(r, cycle+s.offset) }
func (s *stitchProbe) OnCommit(r cpu.Ref, cycle uint64)   { s.w.OnCommit(r, cycle+s.offset) }
func (s *stitchProbe) OnSquash(r cpu.Ref, cycle uint64)   { s.w.OnSquash(r, cycle+s.offset) }

func (s *stitchProbe) OnCycle(ci *cpu.CycleInfo) {
	// The replay's CycleInfo is pooled; shift a shallow copy (the
	// Committed slice is shared, which is fine — the Writer does not
	// retain it).
	shifted := *ci
	shifted.Cycle = ci.Cycle + s.offset
	s.w.OnCycle(&shifted)
}

// OnDone suppresses the segment's completion record.
func (s *stitchProbe) OnDone(uint64) {}

// AppendSegment replays one complete segment trace into dst, shifting
// every cycle by offset. The segment's own done record is verified (a
// corrupt segment fails with simerr.ErrDecode) but not forwarded.
func AppendSegment(ctx context.Context, dst *Writer, segment []byte, offset uint64) error {
	_, err := ReplayBytes(ctx, segment, &stitchProbe{w: dst, offset: offset})
	return err
}

// Stitch splices per-interval segment traces into one serial-equivalent
// stream. Segment i's cycle stamps are shifted by offsets[i] (the
// global cycle at which its interval began, i.e. the cycle count
// accumulated by all prior segments), and the stitched stream is closed
// with a single done section carrying totalCycles. When the segments'
// record sequences match what a serial run would have emitted — which
// the capture layer verifies by fingerprint chaining before calling
// Stitch — the output bytes are identical to a serial capture's,
// digest included: the Writer re-derives the delta encoding, the block
// boundaries (pure functions of the record sequence), the pattern-table
// match parse, and the digest from the logical values it is fed. The
// returned Counters describe the stitched stream's codec work, mirroring
// Writer.Counters on the serial path.
func Stitch(ctx context.Context, out io.Writer, segments [][]byte, offsets []uint64, totalCycles uint64) (Counters, error) {
	if len(segments) != len(offsets) {
		return Counters{}, simerr.New(simerr.ErrInvalidConfig, simerr.Snapshot{},
			"trace: %d segments but %d offsets", len(segments), len(offsets))
	}
	w := NewWriter(out)
	for i, seg := range segments {
		if err := AppendSegment(ctx, w, seg, offsets[i]); err != nil {
			return w.Counters(), err
		}
	}
	w.OnDone(totalCycles)
	return w.Counters(), w.Err()
}
