package trace_test

// A faithful copy of the retired format-v3 codec (record-at-a-time
// delta encoding, the layout shipped between PR 3 and PR 10). It exists
// so the test suite can pin two properties of the v4 columnar codec
// against its predecessor on real captures:
//
//   - equivalence: replaying a v3 stream and a v4 stream of the same
//     run delivers an identical probe event sequence (and therefore
//     identical profiles) — the encoding change is invisible at the
//     logical level, digest included;
//   - compression: the v4 stream is at least 5x smaller across the
//     suite (the ISSUE 10 acceptance floor).
//
// It also anchors the codec benchmarks' v3 columns. The copy is
// deliberately self-contained: the live package must stay free of dead
// production code.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/cpu"
	"repro/internal/events"
	"repro/internal/simerr"
)

const (
	v3RecFetch    = 0x01
	v3RecDispatch = 0x02
	v3RecCommit   = 0x03
	v3RecSquash   = 0x04
	v3RecCycle    = 0x05
	v3RecDone     = 0x06

	v3Version = 3

	v3DigestOffset = 14695981039346656037
	v3DigestPrime  = 1099511628211

	v3MaxCommitPerCycle = 1024
	v3MaxWindow         = 1 << 20
)

func v3Mix(h, v uint64) uint64 { return (h ^ v) * v3DigestPrime }

func v3Zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func v3Unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// v3Writer is the retired record-at-a-time trace writer.
type v3Writer struct {
	cpu.BaseProbe
	buf     []byte
	started bool

	lastCycle uint64
	lastSeq   uint64
	lastPC    uint64

	digest  uint64
	records uint64
}

func newV3Writer() *v3Writer { return &v3Writer{digest: v3DigestOffset} }

// Bytes returns the encoded stream (complete after OnDone).
func (t *v3Writer) Bytes() []byte { return t.buf }

func (t *v3Writer) header() {
	if t.started {
		return
	}
	t.started = true
	t.buf = append(t.buf, 'T', 'E', 'A', 'T', v3Version)
}

func (t *v3Writer) varint(v uint64) { t.buf = binary.AppendUvarint(t.buf, v) }

func (t *v3Writer) cycleDelta(cycle uint64) {
	t.varint(cycle - t.lastCycle)
	t.lastCycle = cycle
}

func (t *v3Writer) seqDelta(seq uint64) {
	t.varint(v3Zigzag(int64(seq) - int64(t.lastSeq)))
	t.lastSeq = seq
}

func (t *v3Writer) pcDelta(pc uint64) {
	t.varint(v3Zigzag(int64(pc) - int64(t.lastPC)))
	t.lastPC = pc
}

func (t *v3Writer) OnFetch(r cpu.Ref, cycle uint64) {
	t.header()
	t.buf = append(t.buf, v3RecFetch)
	t.seqDelta(r.Seq)
	t.pcDelta(r.PC)
	t.cycleDelta(cycle)
	t.digest = v3Mix(v3Mix(v3Mix(v3Mix(t.digest, v3RecFetch), r.Seq), r.PC), cycle)
	t.records++
}

func (t *v3Writer) OnDispatch(r cpu.Ref, cycle uint64) {
	t.header()
	t.buf = append(t.buf, v3RecDispatch)
	t.seqDelta(r.Seq)
	t.cycleDelta(cycle)
	t.digest = v3Mix(v3Mix(v3Mix(t.digest, v3RecDispatch), r.Seq), cycle)
	t.records++
}

func (t *v3Writer) OnCommit(r cpu.Ref, cycle uint64) {
	t.header()
	t.buf = append(t.buf, v3RecCommit)
	t.seqDelta(r.Seq)
	t.varint(uint64(r.PSV))
	t.cycleDelta(cycle)
	t.digest = v3Mix(v3Mix(v3Mix(v3Mix(t.digest, v3RecCommit), r.Seq), uint64(r.PSV)), cycle)
	t.records++
}

func (t *v3Writer) OnSquash(r cpu.Ref, cycle uint64) {
	t.header()
	t.buf = append(t.buf, v3RecSquash)
	t.seqDelta(r.Seq)
	t.cycleDelta(cycle)
	t.digest = v3Mix(v3Mix(v3Mix(t.digest, v3RecSquash), r.Seq), cycle)
	t.records++
}

func (t *v3Writer) OnCycle(ci *cpu.CycleInfo) {
	t.header()
	t.buf = append(t.buf, v3RecCycle)
	t.cycleDelta(ci.Cycle)
	t.buf = append(t.buf, byte(ci.State))
	h := v3Mix(v3Mix(v3Mix(t.digest, v3RecCycle), ci.Cycle), uint64(ci.State))
	switch ci.State {
	case events.Compute:
		t.varint(uint64(len(ci.Committed)))
		h = v3Mix(h, uint64(len(ci.Committed)))
		for _, r := range ci.Committed {
			t.seqDelta(r.Seq)
			h = v3Mix(h, r.Seq)
		}
	case events.Stalled:
		t.seqDelta(ci.Head.Seq)
		h = v3Mix(h, ci.Head.Seq)
	case events.Flushed:
		t.seqDelta(ci.LastCommitted.Seq)
		h = v3Mix(h, ci.LastCommitted.Seq)
	case events.Drained:
	}
	t.digest = h
	t.records++
}

func (t *v3Writer) OnDone(totalCycles uint64) {
	t.header()
	t.buf = append(t.buf, v3RecDone)
	t.varint(totalCycles)
	t.digest = v3Mix(v3Mix(t.digest, v3RecDone), totalCycles)
	t.varint(t.digest)
	t.records++
}

type v3WinEnt struct {
	pc        uint64
	psv       events.PSV
	committed bool
}

var errV3Varint = errors.New("varint overflows a 64-bit integer")

// v3ReplayBytes is the retired record-at-a-time decoder, preserved
// verbatim (modulo pooling) so equivalence and benchmark comparisons
// run the real v3 hot path.
func v3ReplayBytes(data []byte, probes ...cpu.Probe) (totalCycles uint64, err error) {
	var (
		lastCycle, lastSeq, lastPC uint64
		records                    uint64
		digest                     = uint64(v3DigestOffset)
		pos                        int
	)
	decodeErr := func(cause error, format string, args ...any) error {
		snap := simerr.Snapshot{Cycle: lastCycle, Seq: lastSeq}
		snap.Detail = fmt.Sprintf("record %d", records)
		if cause != nil {
			return simerr.Wrap(simerr.ErrDecode, snap, cause, format, args...)
		}
		return simerr.New(simerr.ErrDecode, snap, format, args...)
	}

	if len(data) < 5 {
		return 0, decodeErr(io.ErrUnexpectedEOF, "v3: reading header")
	}
	if string(data[:4]) != "TEAT" || data[4] != v3Version {
		return 0, decodeErr(nil, "v3: bad header")
	}
	pos = 5

	var (
		win  []v3WinEnt
		head int
		base uint64
		last cpu.Ref
		ci   cpu.CycleInfo
	)

	ensure := func(seq uint64) *v3WinEnt {
		for uint64(len(win)-head) <= seq-base {
			win = append(win, v3WinEnt{})
		}
		return &win[head+int(seq-base)]
	}
	ref := func(seq uint64) cpu.Ref {
		if seq >= base && seq-base < uint64(len(win)-head) {
			e := &win[head+int(seq-base)]
			return cpu.Ref{Seq: seq, PC: e.pc, PSV: e.psv}
		}
		return cpu.Ref{Seq: seq}
	}

	u64 := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n == 0 {
			return 0, io.ErrUnexpectedEOF
		}
		if n < 0 {
			return 0, errV3Varint
		}
		pos += n
		return v, nil
	}
	readCycle := func() (uint64, error) {
		d, err := u64()
		if err != nil {
			return 0, err
		}
		lastCycle += d
		return lastCycle, nil
	}
	readSeq := func() (uint64, error) {
		d, err := u64()
		if err != nil {
			return 0, err
		}
		lastSeq = uint64(int64(lastSeq) + v3Unzigzag(d))
		return lastSeq, nil
	}
	readPC := func() (uint64, error) {
		d, err := u64()
		if err != nil {
			return 0, err
		}
		lastPC = uint64(int64(lastPC) + v3Unzigzag(d))
		return lastPC, nil
	}
	first := func(errs ...error) error {
		for _, e := range errs {
			if e != nil {
				return e
			}
		}
		return nil
	}
	for {
		if pos >= len(data) {
			return totalCycles, decodeErr(nil, "v3: truncated stream (no done record)")
		}
		kind := data[pos]
		pos++
		records++
		switch kind {
		case v3RecFetch:
			seq, err1 := readSeq()
			pc, err2 := readPC()
			cycle, err3 := readCycle()
			if err := first(err1, err2, err3); err != nil {
				return totalCycles, decodeErr(err, "v3: fetch record")
			}
			if seq >= base {
				if seq-base >= v3MaxWindow {
					return totalCycles, decodeErr(nil, "v3: implausible sequence jump to %d", seq)
				}
				*ensure(seq) = v3WinEnt{pc: pc}
			}
			digest = v3Mix(v3Mix(v3Mix(v3Mix(digest, v3RecFetch), seq), pc), cycle)
			r := cpu.Ref{Seq: seq, PC: pc}
			for _, p := range probes {
				p.OnFetch(r, cycle)
			}
		case v3RecDispatch:
			seq, err1 := readSeq()
			cycle, err2 := readCycle()
			if err := first(err1, err2); err != nil {
				return totalCycles, decodeErr(err, "v3: dispatch record")
			}
			digest = v3Mix(v3Mix(v3Mix(digest, v3RecDispatch), seq), cycle)
			r := ref(seq)
			for _, p := range probes {
				p.OnDispatch(r, cycle)
			}
		case v3RecCommit:
			seq, err1 := readSeq()
			psv, err2 := u64()
			cycle, err3 := readCycle()
			if err := first(err1, err2, err3); err != nil {
				return totalCycles, decodeErr(err, "v3: commit record")
			}
			var r cpu.Ref
			if seq >= base {
				if seq-base >= v3MaxWindow {
					return totalCycles, decodeErr(nil, "v3: implausible sequence jump to %d", seq)
				}
				e := ensure(seq)
				e.psv = events.PSV(psv)
				e.committed = true
				r = cpu.Ref{Seq: seq, PC: e.pc, PSV: e.psv}
			} else {
				r = cpu.Ref{Seq: seq, PSV: events.PSV(psv)}
			}
			digest = v3Mix(v3Mix(v3Mix(v3Mix(digest, v3RecCommit), seq), psv), cycle)
			for _, p := range probes {
				p.OnCommit(r, cycle)
			}
			last = r
		case v3RecSquash:
			seq, err1 := readSeq()
			cycle, err2 := readCycle()
			if err := first(err1, err2); err != nil {
				return totalCycles, decodeErr(err, "v3: squash record")
			}
			digest = v3Mix(v3Mix(v3Mix(digest, v3RecSquash), seq), cycle)
			r := ref(seq)
			for _, p := range probes {
				p.OnSquash(r, cycle)
			}
		case v3RecCycle:
			cycle, err1 := readCycle()
			if err1 == nil && pos >= len(data) {
				err1 = io.ErrUnexpectedEOF
			}
			if err1 != nil {
				return totalCycles, decodeErr(err1, "v3: cycle record")
			}
			stateByte := data[pos]
			pos++
			ci.Cycle = cycle
			ci.State = events.CommitState(stateByte)
			ci.Committed = ci.Committed[:0]
			ci.Head = cpu.Ref{}
			ci.LastCommitted = cpu.Ref{}
			h := v3Mix(v3Mix(v3Mix(digest, v3RecCycle), cycle), uint64(stateByte))
			switch ci.State {
			case events.Compute:
				n, err := u64()
				if err != nil {
					return totalCycles, decodeErr(err, "v3: cycle commit count")
				}
				if n > v3MaxCommitPerCycle {
					return totalCycles, decodeErr(nil, "v3: implausible commit count %d", n)
				}
				h = v3Mix(h, n)
				for i := uint64(0); i < n; i++ {
					seq, err := readSeq()
					if err != nil {
						return totalCycles, decodeErr(err, "v3: cycle commit seq")
					}
					h = v3Mix(h, seq)
					ci.Committed = append(ci.Committed, ref(seq))
				}
			case events.Stalled:
				seq, err := readSeq()
				if err != nil {
					return totalCycles, decodeErr(err, "v3: stalled head seq")
				}
				h = v3Mix(h, seq)
				ci.Head = ref(seq)
			case events.Flushed:
				seq, err := readSeq()
				if err != nil {
					return totalCycles, decodeErr(err, "v3: flushed seq")
				}
				h = v3Mix(h, seq)
				if last.Seq == seq {
					ci.LastCommitted = last
				} else {
					ci.LastCommitted = ref(seq)
				}
			case events.Drained:
			default:
				return totalCycles, decodeErr(nil, "v3: unknown commit state %d", stateByte)
			}
			digest = h
			for _, p := range probes {
				p.OnCycle(&ci)
			}
			for head < len(win) && win[head].committed {
				head++
				base++
			}
			if head > 1024 && head*2 > len(win) {
				n := copy(win, win[head:])
				win = win[:n]
				head = 0
			}
		case v3RecDone:
			totalCycles, err = u64()
			if err != nil {
				return totalCycles, decodeErr(err, "v3: done record")
			}
			digest = v3Mix(v3Mix(digest, v3RecDone), totalCycles)
			want, err := u64()
			if err != nil {
				return totalCycles, decodeErr(err, "v3: integrity digest")
			}
			if want != digest {
				return totalCycles, decodeErr(nil, "v3: integrity digest mismatch")
			}
			for _, p := range probes {
				p.OnDone(totalCycles)
			}
			return totalCycles, nil
		default:
			return totalCycles, decodeErr(nil, "v3: unknown record kind %#x", kind)
		}
	}
}
