package trace_test

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/events"
	"repro/internal/pics"
	"repro/internal/profilers"
	"repro/internal/program"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// TestSuiteReplayEquivalence pins the capture-once/replay-many
// invariant for the whole evaluation pipeline: for every suite
// workload, the profiles produced by replaying the captured trace
// (analysis.RunProgram) are byte-identical — down to the serialized
// JSON, seed fields included — to the profiles produced by attaching
// every technique to the live core (analysis.RunProgramLive). Identical
// bytes mean identical float summation order, not just numerical
// closeness: the parallel replay must be undetectable downstream.
//
// With the content-addressed trace store in the path, "replay" now has
// three flavors, and all must be equally undetectable: a fresh capture
// (store miss), a memory-tier hit, and a disk-tier hit in a later
// process (modeled as a fresh store over the same directory).
func TestSuiteReplayEquivalence(t *testing.T) {
	rc := analysis.DefaultRunConfig()
	rc.Scale = 0.05
	rc.Interval = 64
	rc.Jitter = 8
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			iters := int(float64(w.DefaultIters) * rc.Scale)
			if iters < 2 {
				iters = 2
			}
			p := w.Build(iters)

			dir := t.TempDir()
			prev := analysis.SetTraceStore(analysis.NewTraceStore(analysis.DefaultStoreBudget, dir))
			defer analysis.SetTraceStore(prev)

			live := analysis.RunProgramLive(w, p, rc)
			fresh := analysis.RunProgram(w, p, rc) // store miss: captures + persists
			memHit := analysis.RunProgram(w, p, rc)
			analysis.SetTraceStore(analysis.NewTraceStore(analysis.DefaultStoreBudget, dir))
			diskHit := analysis.RunProgram(w, p, rc)

			// Stitched: interval-parallel capture into a fresh store (a
			// shared store would serve the serial capture — the paths
			// deliberately share one cache key), so the trace actually
			// comes from checkpointed segments or their verified serial
			// fallback.
			analysis.SetTraceStore(analysis.NewTraceStore(analysis.DefaultStoreBudget, ""))
			prc := rc
			prc.CheckpointInterval = 1000
			prc.CaptureWorkers = 2
			stitched := analysis.RunProgram(w, p, prc)

			for _, variant := range []struct {
				kind     string
				replayed *analysis.BenchRun
			}{
				{"fresh-capture", fresh},
				{"memory-cache-hit", memHit},
				{"disk-cache-hit", diskHit},
				{"stitched-parallel-capture", stitched},
			} {
				replayed := variant.replayed
				if live.Stats.Cycles != replayed.Stats.Cycles {
					t.Errorf("%s: cycle counts differ: live %d, replay %d",
						variant.kind, live.Stats.Cycles, replayed.Stats.Cycles)
				}
				pairs := []struct {
					name string
					a, b *pics.Profile
				}{
					{"golden", live.Golden, replayed.Golden},
					{"TEA", live.TEA, replayed.TEA},
					{"NCI-TEA", live.NCITEA, replayed.NCITEA},
					{"IBS", live.IBS, replayed.IBS},
					{"SPE", live.SPE, replayed.SPE},
					{"RIS", live.RIS, replayed.RIS},
				}
				for _, pr := range pairs {
					la, err := marshal(pr.a)
					if err != nil {
						t.Fatalf("%s/%s: live marshal: %v", variant.kind, pr.name, err)
					}
					rb, err := marshal(pr.b)
					if err != nil {
						t.Fatalf("%s/%s: replay marshal: %v", variant.kind, pr.name, err)
					}
					if !bytes.Equal(la, rb) {
						t.Errorf("%s/%s: replayed profile JSON differs from live (%d vs %d bytes)",
							variant.kind, pr.name, len(la), len(rb))
					}
				}
				if live.Events.Total != replayed.Events.Total ||
					live.Events.WithEvent != replayed.Events.WithEvent ||
					live.Events.Combined != replayed.Events.Combined {
					t.Errorf("%s: event stats differ: live %+v, replay %+v",
						variant.kind, *live.Events, *replayed.Events)
				}
			}
		})
	}
}

// TestFrequencySweepSharedCaptureEquivalence pins the suite-scheduler
// half of the dedup tentpole: FrequencySweep captures each workload
// once and replays it per interval, and its results must be exactly —
// float-for-float — what per-interval full re-simulation (live
// attachment, no cache anywhere) produces under the same SweepConfig.
func TestFrequencySweepSharedCaptureEquivalence(t *testing.T) {
	rc := analysis.DefaultRunConfig()
	rc.Scale = 0.05
	intervals := []uint64{64, 192}

	prev := analysis.SetTraceStore(analysis.NewTraceStore(analysis.DefaultStoreBudget, ""))
	defer analysis.SetTraceStore(prev)
	start := analysis.CaptureCount()
	pts := analysis.FrequencySweep(rc, intervals)
	if got, want := analysis.CaptureCount()-start, uint64(len(workloads.All())); got != want {
		t.Fatalf("sweep performed %d captures; want %d (one per workload)", got, want)
	}

	for i, iv := range intervals {
		cfg := analysis.SweepConfig(rc, iv)
		var runs []*analysis.BenchRun
		for _, w := range workloads.All() {
			iters := int(float64(w.DefaultIters) * cfg.Scale)
			if iters < 2 {
				iters = 2
			}
			runs = append(runs, analysis.RunProgramLive(w, w.Build(iters), cfg))
		}
		rows := analysis.AccuracyStudy(runs)
		want := rows[len(rows)-1].Errors
		got := pts[i].Average
		if len(got) != len(want) {
			t.Fatalf("interval %d: %d techniques from sweep, %d from re-simulation", iv, len(got), len(want))
		}
		for tech, wv := range want {
			if gv, ok := got[tech]; !ok || gv != wv {
				t.Errorf("interval %d, %s: shared-capture sweep %v, per-interval re-simulation %v",
					iv, tech, gv, wv)
			}
		}
	}
}

func marshal(p *pics.Profile) ([]byte, error) {
	var buf bytes.Buffer
	err := p.WriteJSON(&buf)
	return buf.Bytes(), err
}

// codecSuite builds the six profile-producing techniques with the same
// configuration analysis.suiteProbes uses, either wired to a live core
// (c non-nil) or free-standing for replay delivery (c nil).
func codecSuite(c *cpu.CPU, p *program.Program, rc analysis.RunConfig) ([]cpu.Probe, func() map[string]*pics.Profile) {
	golden := core.NewTEA(c, core.Config{Set: events.TEASet, EveryCycle: true, Prog: p})
	teaCfg := core.DefaultConfig()
	teaCfg.IntervalCycles = rc.Interval
	teaCfg.JitterCycles = rc.Jitter
	teaCfg.Seed = rc.Seed
	teaCfg.Prog = p
	tea := core.NewTEA(c, teaCfg)
	nci := profilers.NewNCITEA(rc.Interval, rc.Jitter, rc.Seed+1)
	ibs := profilers.NewIBS(rc.Interval, rc.Jitter, rc.Seed+2)
	spe := profilers.NewSPE(rc.Interval, rc.Jitter, rc.Seed+3)
	ris := profilers.NewRIS(rc.Interval, rc.Jitter, rc.Seed+4)
	probes := []cpu.Probe{golden, tea, nci, ibs, spe, ris}
	return probes, func() map[string]*pics.Profile {
		return map[string]*pics.Profile{
			"golden": golden.Profile(), "TEA": tea.Profile(), "NCI-TEA": nci.Profile(),
			"IBS": ibs.Profile(), "SPE": spe.Profile(), "RIS": ris.Profile(),
		}
	}
}

// TestCodecV3V4Equivalence pins the v4 columnar codec against the
// retired v3 record-at-a-time codec (v3codec_test.go) and the live
// core, per suite workload: one simulation captures both encodings
// while a live technique suite profiles it directly, then each stream
// replays into a fresh suite. All three must produce byte-identical
// profile JSON for every technique — the redundancy suppression is
// invisible at the logical level. The suite-wide byte totals must also
// clear the ISSUE 10 acceptance floor: v4 at least 5x smaller than v3.
func TestCodecV3V4Equivalence(t *testing.T) {
	rc := analysis.DefaultRunConfig()
	rc.Scale = 0.05
	rc.Interval = 64
	rc.Jitter = 8

	var totalV3, totalV4 int
	for _, w := range workloads.All() {
		w := w
		iters := int(float64(w.DefaultIters) * rc.Scale)
		if iters < 2 {
			iters = 2
		}
		t.Run(w.Name, func(t *testing.T) {
			// One simulation: live suite plus both writers attached.
			c := cpu.New(rc.Core, w.Build(iters))
			liveProbes, liveProfiles := codecSuite(c, w.Build(iters), rc)
			for _, pr := range liveProbes {
				c.Attach(pr)
			}
			var v4buf bytes.Buffer
			v4w := trace.NewWriter(&v4buf)
			v3w := newV3Writer()
			c.Attach(v4w)
			c.Attach(v3w)
			stats := c.Run()
			if err := v4w.Err(); err != nil {
				t.Fatalf("v4 writer: %v", err)
			}
			totalV3 += len(v3w.Bytes())
			totalV4 += v4buf.Len()

			v4Probes, v4Profiles := codecSuite(nil, w.Build(iters), rc)
			cycles, err := trace.ReplayBytes(context.Background(), v4buf.Bytes(), v4Probes...)
			if err != nil {
				t.Fatalf("v4 replay: %v", err)
			}
			if cycles != stats.Cycles {
				t.Errorf("v4 replay cycles %d, live %d", cycles, stats.Cycles)
			}
			v3Probes, v3Profiles := codecSuite(nil, w.Build(iters), rc)
			cycles, err = v3ReplayBytes(v3w.Bytes(), v3Probes...)
			if err != nil {
				t.Fatalf("v3 replay: %v", err)
			}
			if cycles != stats.Cycles {
				t.Errorf("v3 replay cycles %d, live %d", cycles, stats.Cycles)
			}

			live, v3p, v4p := liveProfiles(), v3Profiles(), v4Profiles()
			for name, lp := range live {
				lb, err := marshal(lp)
				if err != nil {
					t.Fatalf("%s: live marshal: %v", name, err)
				}
				b3, err := marshal(v3p[name])
				if err != nil {
					t.Fatalf("%s: v3 marshal: %v", name, err)
				}
				b4, err := marshal(v4p[name])
				if err != nil {
					t.Fatalf("%s: v4 marshal: %v", name, err)
				}
				if !bytes.Equal(lb, b4) {
					t.Errorf("%s: v4-replay profile differs from live (%d vs %d bytes)",
						name, len(b4), len(lb))
				}
				if !bytes.Equal(lb, b3) {
					t.Errorf("%s: v3-replay profile differs from live (%d vs %d bytes)",
						name, len(b3), len(lb))
				}
			}
		})
	}
	if totalV3 == 0 || totalV4 == 0 {
		t.Fatal("no trace bytes captured")
	}
	ratio := float64(totalV3) / float64(totalV4)
	t.Logf("suite trace bytes: v3 %d, v4 %d (%.1fx)", totalV3, totalV4, ratio)
	if ratio < 5 {
		t.Errorf("suite compression ratio %.2fx below the 5x acceptance floor (v3 %d bytes, v4 %d bytes)",
			ratio, totalV3, totalV4)
	}
}
