package trace_test

import (
	"bytes"
	"testing"

	"repro/internal/analysis"
	"repro/internal/pics"
	"repro/internal/workloads"
)

// TestSuiteReplayEquivalence pins the capture-once/replay-many
// invariant for the whole evaluation pipeline: for every suite
// workload, the profiles produced by replaying the captured trace
// (analysis.RunProgram) are byte-identical — down to the serialized
// JSON, seed fields included — to the profiles produced by attaching
// every technique to the live core (analysis.RunProgramLive). Identical
// bytes mean identical float summation order, not just numerical
// closeness: the parallel replay must be undetectable downstream.
func TestSuiteReplayEquivalence(t *testing.T) {
	rc := analysis.DefaultRunConfig()
	rc.Scale = 0.05
	rc.Interval = 64
	rc.Jitter = 8
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			iters := int(float64(w.DefaultIters) * rc.Scale)
			if iters < 2 {
				iters = 2
			}
			p := w.Build(iters)
			live := analysis.RunProgramLive(w, p, rc)
			replayed := analysis.RunProgram(w, p, rc)

			if live.Stats.Cycles != replayed.Stats.Cycles {
				t.Errorf("cycle counts differ: live %d, replay %d",
					live.Stats.Cycles, replayed.Stats.Cycles)
			}
			pairs := []struct {
				name string
				a, b *pics.Profile
			}{
				{"golden", live.Golden, replayed.Golden},
				{"TEA", live.TEA, replayed.TEA},
				{"NCI-TEA", live.NCITEA, replayed.NCITEA},
				{"IBS", live.IBS, replayed.IBS},
				{"SPE", live.SPE, replayed.SPE},
				{"RIS", live.RIS, replayed.RIS},
			}
			for _, pr := range pairs {
				la, err := marshal(pr.a)
				if err != nil {
					t.Fatalf("%s: live marshal: %v", pr.name, err)
				}
				rb, err := marshal(pr.b)
				if err != nil {
					t.Fatalf("%s: replay marshal: %v", pr.name, err)
				}
				if !bytes.Equal(la, rb) {
					t.Errorf("%s: replayed profile JSON differs from live (%d vs %d bytes)",
						pr.name, len(la), len(rb))
				}
			}
			if live.Events.Total != replayed.Events.Total ||
				live.Events.WithEvent != replayed.Events.WithEvent ||
				live.Events.Combined != replayed.Events.Combined {
				t.Errorf("event stats differ: live %+v, replay %+v",
					*live.Events, *replayed.Events)
			}
		})
	}
}

func marshal(p *pics.Profile) ([]byte, error) {
	var buf bytes.Buffer
	err := p.WriteJSON(&buf)
	return buf.Bytes(), err
}
