package trace_test

import (
	"bytes"
	"testing"

	"repro/internal/analysis"
	"repro/internal/pics"
	"repro/internal/workloads"
)

// TestSuiteReplayEquivalence pins the capture-once/replay-many
// invariant for the whole evaluation pipeline: for every suite
// workload, the profiles produced by replaying the captured trace
// (analysis.RunProgram) are byte-identical — down to the serialized
// JSON, seed fields included — to the profiles produced by attaching
// every technique to the live core (analysis.RunProgramLive). Identical
// bytes mean identical float summation order, not just numerical
// closeness: the parallel replay must be undetectable downstream.
//
// With the content-addressed trace store in the path, "replay" now has
// three flavors, and all must be equally undetectable: a fresh capture
// (store miss), a memory-tier hit, and a disk-tier hit in a later
// process (modeled as a fresh store over the same directory).
func TestSuiteReplayEquivalence(t *testing.T) {
	rc := analysis.DefaultRunConfig()
	rc.Scale = 0.05
	rc.Interval = 64
	rc.Jitter = 8
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			iters := int(float64(w.DefaultIters) * rc.Scale)
			if iters < 2 {
				iters = 2
			}
			p := w.Build(iters)

			dir := t.TempDir()
			prev := analysis.SetTraceStore(analysis.NewTraceStore(analysis.DefaultStoreBudget, dir))
			defer analysis.SetTraceStore(prev)

			live := analysis.RunProgramLive(w, p, rc)
			fresh := analysis.RunProgram(w, p, rc) // store miss: captures + persists
			memHit := analysis.RunProgram(w, p, rc)
			analysis.SetTraceStore(analysis.NewTraceStore(analysis.DefaultStoreBudget, dir))
			diskHit := analysis.RunProgram(w, p, rc)

			// Stitched: interval-parallel capture into a fresh store (a
			// shared store would serve the serial capture — the paths
			// deliberately share one cache key), so the trace actually
			// comes from checkpointed segments or their verified serial
			// fallback.
			analysis.SetTraceStore(analysis.NewTraceStore(analysis.DefaultStoreBudget, ""))
			prc := rc
			prc.CheckpointInterval = 1000
			prc.CaptureWorkers = 2
			stitched := analysis.RunProgram(w, p, prc)

			for _, variant := range []struct {
				kind     string
				replayed *analysis.BenchRun
			}{
				{"fresh-capture", fresh},
				{"memory-cache-hit", memHit},
				{"disk-cache-hit", diskHit},
				{"stitched-parallel-capture", stitched},
			} {
				replayed := variant.replayed
				if live.Stats.Cycles != replayed.Stats.Cycles {
					t.Errorf("%s: cycle counts differ: live %d, replay %d",
						variant.kind, live.Stats.Cycles, replayed.Stats.Cycles)
				}
				pairs := []struct {
					name string
					a, b *pics.Profile
				}{
					{"golden", live.Golden, replayed.Golden},
					{"TEA", live.TEA, replayed.TEA},
					{"NCI-TEA", live.NCITEA, replayed.NCITEA},
					{"IBS", live.IBS, replayed.IBS},
					{"SPE", live.SPE, replayed.SPE},
					{"RIS", live.RIS, replayed.RIS},
				}
				for _, pr := range pairs {
					la, err := marshal(pr.a)
					if err != nil {
						t.Fatalf("%s/%s: live marshal: %v", variant.kind, pr.name, err)
					}
					rb, err := marshal(pr.b)
					if err != nil {
						t.Fatalf("%s/%s: replay marshal: %v", variant.kind, pr.name, err)
					}
					if !bytes.Equal(la, rb) {
						t.Errorf("%s/%s: replayed profile JSON differs from live (%d vs %d bytes)",
							variant.kind, pr.name, len(la), len(rb))
					}
				}
				if live.Events.Total != replayed.Events.Total ||
					live.Events.WithEvent != replayed.Events.WithEvent ||
					live.Events.Combined != replayed.Events.Combined {
					t.Errorf("%s: event stats differ: live %+v, replay %+v",
						variant.kind, *live.Events, *replayed.Events)
				}
			}
		})
	}
}

// TestFrequencySweepSharedCaptureEquivalence pins the suite-scheduler
// half of the dedup tentpole: FrequencySweep captures each workload
// once and replays it per interval, and its results must be exactly —
// float-for-float — what per-interval full re-simulation (live
// attachment, no cache anywhere) produces under the same SweepConfig.
func TestFrequencySweepSharedCaptureEquivalence(t *testing.T) {
	rc := analysis.DefaultRunConfig()
	rc.Scale = 0.05
	intervals := []uint64{64, 192}

	prev := analysis.SetTraceStore(analysis.NewTraceStore(analysis.DefaultStoreBudget, ""))
	defer analysis.SetTraceStore(prev)
	start := analysis.CaptureCount()
	pts := analysis.FrequencySweep(rc, intervals)
	if got, want := analysis.CaptureCount()-start, uint64(len(workloads.All())); got != want {
		t.Fatalf("sweep performed %d captures; want %d (one per workload)", got, want)
	}

	for i, iv := range intervals {
		cfg := analysis.SweepConfig(rc, iv)
		var runs []*analysis.BenchRun
		for _, w := range workloads.All() {
			iters := int(float64(w.DefaultIters) * cfg.Scale)
			if iters < 2 {
				iters = 2
			}
			runs = append(runs, analysis.RunProgramLive(w, w.Build(iters), cfg))
		}
		rows := analysis.AccuracyStudy(runs)
		want := rows[len(rows)-1].Errors
		got := pts[i].Average
		if len(got) != len(want) {
			t.Fatalf("interval %d: %d techniques from sweep, %d from re-simulation", iv, len(got), len(want))
		}
		for tech, wv := range want {
			if gv, ok := got[tech]; !ok || gv != wv {
				t.Errorf("interval %d, %s: shared-capture sweep %v, per-interval re-simulation %v",
					iv, tech, gv, wv)
			}
		}
	}
}

func marshal(p *pics.Profile) ([]byte, error) {
	var buf bytes.Buffer
	err := p.WriteJSON(&buf)
	return buf.Bytes(), err
}
