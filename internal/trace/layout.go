package trace

import (
	"context"
	"encoding/binary"

	"repro/internal/cpu"
	"repro/internal/events"
	"repro/internal/simerr"
)

// Span is one length-prefixed byte region inside a block: LenStart is
// the offset of the uvarint length prefix, [Start, End) the payload.
// The fault-injection harness targets both — corrupting a length
// prefix desynchronizes the block framing, corrupting the payload
// desynchronizes a column — and either must surface as ErrDecode.
type Span struct {
	LenStart int
	Start    int
	End      int
}

// BlockLayout is the structural shape of one columnar block.
type BlockLayout struct {
	Start     int // offset of the block tag byte
	Records   int // record count from the block header
	Tokens    int // token count from the block header
	TokenSpan Span
	Columns   [nCols]Span // indexed like colKinds..colCounts; named by ColumnNames
	End       int
}

// StreamLayout is the structural shape of a complete v4 stream: the
// header, every block, and the done section. It is a framing-level
// parse — token and column *contents* are not validated (ReplayBytes
// owns that), so chaos modes can locate regions to corrupt even in
// streams they have already damaged semantically.
type StreamLayout struct {
	HeaderEnd int
	Blocks    []BlockLayout
	DoneStart int
	DoneEnd   int
}

// ParseLayout walks a complete in-memory v4 stream structurally and
// returns the offsets of every block, token span, column, and the done
// section. Framing damage (bad magic, truncated lengths, spans past
// the buffer) fails with a typed simerr.ErrDecode.
func ParseLayout(data []byte) (*StreamLayout, error) {
	layoutErr := func(format string, args ...any) error {
		return simerr.New(simerr.ErrDecode, simerr.Snapshot{}, format, args...)
	}
	if len(data) < 5 || [4]byte(data[:4]) != magic || data[4] != FormatVersion {
		return nil, layoutErr("trace: bad header")
	}
	lay := &StreamLayout{HeaderEnd: 5}
	pos := 5
	uv := func() (uint64, bool) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	span := func() (Span, bool) {
		s := Span{LenStart: pos}
		l, ok := uv()
		if !ok || l > uint64(len(data)-pos) {
			return s, false
		}
		s.Start = pos
		pos += int(l)
		s.End = pos
		return s, true
	}
	for pos < len(data) {
		tag := data[pos]
		start := pos
		pos++
		switch tag {
		case blockTag:
			b := BlockLayout{Start: start}
			nRec, ok1 := uv()
			nTok, ok2 := uv()
			if !ok1 || !ok2 || nRec == 0 || nRec > maxBlockRecords || nTok > nRec {
				return nil, layoutErr("trace: malformed block header at offset %d", start)
			}
			b.Records, b.Tokens = int(nRec), int(nTok)
			var ok bool
			if b.TokenSpan, ok = span(); !ok {
				return nil, layoutErr("trace: truncated token span at offset %d", start)
			}
			for c := 0; c < nCols; c++ {
				if b.Columns[c], ok = span(); !ok {
					return nil, layoutErr("trace: truncated %s column at offset %d", ColumnNames[c], start)
				}
			}
			b.End = pos
			lay.Blocks = append(lay.Blocks, b)
		case recDone:
			if _, ok := uv(); !ok {
				return nil, layoutErr("trace: truncated done section at offset %d", start)
			}
			if _, ok := uv(); !ok {
				return nil, layoutErr("trace: truncated integrity digest at offset %d", start)
			}
			lay.DoneStart, lay.DoneEnd = start, pos
			return lay, nil
		default:
			return nil, layoutErr("trace: unknown section tag %#x at offset %d", tag, start)
		}
	}
	return nil, layoutErr("trace: no done section")
}

// RecordOffsets scans a complete in-memory trace and returns the byte
// offset of every structural boundary: the header end, then for each
// block its tag, token span, and column starts, and finally the done
// section. The fault-injection harness uses it to truncate or splice
// captures at exact structure boundaries; the fuzz seed corpus is built
// the same way. (Before v4 the stream had per-record boundaries; the
// columnar format's interesting corruption points are these instead.)
func RecordOffsets(data []byte) ([]int, error) {
	lay, err := ParseLayout(data)
	if err != nil {
		return nil, err
	}
	offsets := []int{lay.HeaderEnd}
	for _, b := range lay.Blocks {
		offsets = append(offsets, b.Start, b.TokenSpan.Start)
		for _, c := range b.Columns {
			offsets = append(offsets, c.Start)
		}
	}
	offsets = append(offsets, lay.DoneStart)
	return offsets, nil
}

// CodecStats describes one v4 stream for operators: how large the
// stream is on disk versus the v3-equivalent record-at-a-time
// ("logical") encoding of the same records, where the bytes live
// (token stream vs each column), how much of the stream the pattern
// table absorbed, and the per-record-kind breakdown of the logical
// bytes. Produced by ScanStats and surfaced by `teatrace -stats`.
type CodecStats struct {
	Records     uint64 `json:"records"` // includes the done section, mirroring Writer.Records
	Blocks      uint64 `json:"blocks"`
	TotalCycles uint64 `json:"total_cycles"`

	LitTokens      uint64 `json:"lit_tokens"`
	MatchTokens    uint64 `json:"match_tokens"`
	MatchedRecords uint64 `json:"matched_records"`

	EncodedBytes uint64            `json:"encoded_bytes"`
	LogicalBytes uint64            `json:"logical_bytes"`
	TokenBytes   uint64            `json:"token_bytes"`
	ColumnBytes  [nCols]uint64     `json:"-"`
	Columns      map[string]uint64 `json:"column_bytes"`

	// Per-kind record counts and v3-equivalent encoded bytes, the
	// per-record-kind byte histogram (fetch, dispatch, commit, squash,
	// cycle).
	KindRecords map[string]uint64 `json:"kind_records"`
	KindBytes   map[string]uint64 `json:"kind_logical_bytes"`
}

// PatternHitRate is the fraction of block records covered by match
// tokens rather than literals.
func (s CodecStats) PatternHitRate() float64 {
	rec := s.Records
	if rec > 0 {
		rec-- // the done section is not a block record
	}
	if rec == 0 {
		return 0
	}
	return float64(s.MatchedRecords) / float64(rec)
}

// CompressionRatio is logical (v3-equivalent) bytes over encoded (v4)
// bytes — "how much smaller than format v3 this stream is".
func (s CodecStats) CompressionRatio() float64 {
	if s.EncodedBytes == 0 {
		return 0
	}
	return float64(s.LogicalBytes) / float64(s.EncodedBytes)
}

// kindNames labels record kinds 1..5 for the stats histogram.
var kindNames = [...]string{
	recFetch:    "fetch",
	recDispatch: "dispatch",
	recCommit:   "commit",
	recSquash:   "squash",
	recCycle:    "cycle",
}

// statsProbe re-derives the v3-equivalent encoding cost of each
// replayed record: it tracks the same stream-continuous delta state as
// the writer and sums uvarint sizes per record kind.
type statsProbe struct {
	cpu.BaseProbe
	lastCycle, lastSeq, lastPC uint64
	kindRecords                [recCycle + 1]uint64
	kindBytes                  [recCycle + 1]uint64
	totalCycles                uint64
}

func (s *statsProbe) deltas(seq, cycle uint64) (ds, dc uint64) {
	ds = zigzag(int64(seq) - int64(s.lastSeq))
	dc = cycle - s.lastCycle
	s.lastSeq, s.lastCycle = seq, cycle
	return ds, dc
}

func (s *statsProbe) OnFetch(r cpu.Ref, cycle uint64) {
	ds, dc := s.deltas(r.Seq, cycle)
	dp := zigzag(int64(r.PC) - int64(s.lastPC))
	s.lastPC = r.PC
	s.kindRecords[recFetch]++
	s.kindBytes[recFetch] += 1 + uvlen(ds) + uvlen(dp) + uvlen(dc)
}

func (s *statsProbe) OnDispatch(r cpu.Ref, cycle uint64) {
	ds, dc := s.deltas(r.Seq, cycle)
	s.kindRecords[recDispatch]++
	s.kindBytes[recDispatch] += 1 + uvlen(ds) + uvlen(dc)
}

func (s *statsProbe) OnCommit(r cpu.Ref, cycle uint64) {
	ds, dc := s.deltas(r.Seq, cycle)
	s.kindRecords[recCommit]++
	s.kindBytes[recCommit] += 1 + uvlen(ds) + uvlen(uint64(r.PSV)) + uvlen(dc)
}

func (s *statsProbe) OnSquash(r cpu.Ref, cycle uint64) {
	ds, dc := s.deltas(r.Seq, cycle)
	s.kindRecords[recSquash]++
	s.kindBytes[recSquash] += 1 + uvlen(ds) + uvlen(dc)
}

func (s *statsProbe) OnCycle(ci *cpu.CycleInfo) {
	dc := ci.Cycle - s.lastCycle
	s.lastCycle = ci.Cycle
	b := uint64(2) + uvlen(dc) // kind byte + state byte + cycle delta
	switch ci.State {
	case events.Compute:
		b += uvlen(uint64(len(ci.Committed)))
		for _, r := range ci.Committed {
			ds := zigzag(int64(r.Seq) - int64(s.lastSeq))
			s.lastSeq = r.Seq
			b += uvlen(ds)
		}
	case events.Stalled:
		ds := zigzag(int64(ci.Head.Seq) - int64(s.lastSeq))
		s.lastSeq = ci.Head.Seq
		b += uvlen(ds)
	case events.Flushed:
		ds := zigzag(int64(ci.LastCommitted.Seq) - int64(s.lastSeq))
		s.lastSeq = ci.LastCommitted.Seq
		b += uvlen(ds)
	}
	s.kindRecords[recCycle]++
	s.kindBytes[recCycle] += b
}

func (s *statsProbe) OnDone(totalCycles uint64) { s.totalCycles = totalCycles }

// ScanStats replays a complete in-memory v4 stream (validating it end
// to end, digest included) and returns its codec statistics. A stream
// that fails replay fails ScanStats with the same typed error.
//
//tealint:ctxroot stats pass over an in-memory buffer, bounded by the buffer's length; nothing upstream to cancel it
func ScanStats(data []byte) (*CodecStats, error) {
	sp := &statsProbe{}
	if _, err := ReplayBytes(context.Background(), data, sp); err != nil {
		return nil, err
	}
	lay, err := ParseLayout(data)
	if err != nil {
		return nil, err
	}
	st := &CodecStats{
		Blocks:       uint64(len(lay.Blocks)),
		TotalCycles:  sp.totalCycles,
		EncodedBytes: uint64(len(data)),
		Columns:      make(map[string]uint64, nCols),
		KindRecords:  make(map[string]uint64, recCycle),
		KindBytes:    make(map[string]uint64, recCycle),
	}
	// Logical = header + every record's v3 size + the done record.
	st.LogicalBytes = 5
	for k := recFetch; k <= recCycle; k++ {
		st.Records += sp.kindRecords[k]
		st.LogicalBytes += sp.kindBytes[k]
		st.KindRecords[kindNames[k]] = sp.kindRecords[k]
		st.KindBytes[kindNames[k]] = sp.kindBytes[k]
	}
	for _, b := range lay.Blocks {
		st.TokenBytes += uint64(b.TokenSpan.End - b.TokenSpan.Start)
		for c := 0; c < nCols; c++ {
			st.ColumnBytes[c] += uint64(b.Columns[c].End - b.Columns[c].Start)
		}
		lit, match, matched, err := countTokens(data[b.TokenSpan.Start:b.TokenSpan.End], b.Tokens)
		if err != nil {
			return nil, err
		}
		st.LitTokens += lit
		st.MatchTokens += match
		st.MatchedRecords += matched
	}
	for c := 0; c < nCols; c++ {
		st.Columns[ColumnNames[c]] = st.ColumnBytes[c]
	}
	doneLen := uint64(lay.DoneEnd - lay.DoneStart)
	st.Records++ // the done section, mirroring Writer.Records
	st.LogicalBytes += doneLen
	return st, nil
}

// countTokens tallies a block's token stream. The stream already
// passed full replay validation; the guards here only keep the tally
// loop bounded.
func countTokens(tokens []byte, nTok int) (lit, match, matched uint64, err error) {
	tp := 0
	for k := 0; k < nTok; k++ {
		v, sz := binary.Uvarint(tokens[tp:])
		if sz <= 0 {
			return 0, 0, 0, simerr.New(simerr.ErrDecode, simerr.Snapshot{}, "trace: truncated token")
		}
		tp += sz
		if v&1 == 1 {
			match++
			matched += v >> 1
			if _, sz := binary.Uvarint(tokens[tp:]); sz > 0 {
				tp += sz
			} else {
				return 0, 0, 0, simerr.New(simerr.ErrDecode, simerr.Snapshot{}, "trace: truncated match distance")
			}
		} else {
			lit++
		}
	}
	return lit, match, matched, nil
}
