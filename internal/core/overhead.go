package core

import (
	"fmt"
	"strings"

	"repro/internal/cpu"
	"repro/internal/events"
)

// Overhead models the hardware cost of TEA on a given core
// configuration, following the bit-level accounting of Section 3.
// Substitution note (DESIGN.md): the paper synthesizes the ROB and
// fetch buffer in a 28 nm process with Cadence Genus/Joules; here the
// storage is computed bit-exactly from the configuration and power is
// estimated from a per-bit figure calibrated to reproduce the paper's
// ≈3.2 mW result for the Table 2 configuration.
type Overhead struct {
	// FetchBufferBits is the 2-bit DR-L1/DR-TLB field per fetch-buffer
	// entry.
	FetchBufferBits int
	// ROBBits is the PSV field per ROB entry.
	ROBBits int
	// FetchTrackBits is the three 2-bit fetch-packet trackers plus the
	// 2-bit decode and dispatch pipeline registers.
	FetchTrackBits int
	// DispatchBits is the DR-SQ tracking register.
	DispatchBits int
	// LSUBits is the one ST-TLB bit per LSU entry.
	LSUBits int
	// LastCommittedBits is the PSV register for the Flushed state.
	LastCommittedBits int
	// TIPBytes is the baseline TIP storage TEA builds on.
	TIPBytes int
}

// psvBits is TEA's PSV width (one bit per tracked event).
const psvBits = events.NumEvents

// frontEndPSVBits is the DR-L1/DR-TLB portion tracked in the front-end.
const frontEndPSVBits = 2

// NewOverhead computes the storage breakdown for a core configuration.
func NewOverhead(cfg cpu.Config) Overhead {
	// Three 2-bit fetch-packet trackers plus a 2-bit field per decode
	// and per dispatch slot (Section 3). The paper reports 249 B for
	// the Table 2 core with per-structure byte alignment; the raw bit
	// count here lands within a few bytes of that.
	trackers := 3*frontEndPSVBits + 2*cfg.DecodeWidth*frontEndPSVBits
	return Overhead{
		FetchBufferBits:   cfg.FetchBufEntries * frontEndPSVBits,
		ROBBits:           cfg.ROBEntries * psvBits,
		FetchTrackBits:    trackers,
		DispatchBits:      1,
		LSUBits:           cfg.LQEntries + cfg.SQEntries,
		LastCommittedBits: 16, // one 2-byte PSV register
		TIPBytes:          57,
	}
}

// TotalBits returns TEA's added storage in bits (excluding TIP).
func (o Overhead) TotalBits() int {
	return o.FetchBufferBits + o.ROBBits + o.FetchTrackBits +
		o.DispatchBits + o.LSUBits + o.LastCommittedBits
}

// TotalBytes returns TEA's added storage in bytes, rounded up.
func (o Overhead) TotalBytes() int { return (o.TotalBits() + 7) / 8 }

// WithTIPBytes returns the combined TEA+TIP storage in bytes.
func (o Overhead) WithTIPBytes() int { return o.TotalBytes() + o.TIPBytes }

// PowerMilliwatts estimates the added power from the storage bits using
// a per-bit figure calibrated so the Table 2 configuration reproduces
// the paper's ≈3.2 mW (Cadence Joules, 28 nm, 3.2 GHz).
func (o Overhead) PowerMilliwatts() float64 {
	const mwPerBit = 3.2 / 1992.0 // paper: 3.2 mW for TEA's ~249 B
	return float64(o.TotalBits()) * mwPerBit
}

// PowerFractionOfCore returns the power overhead relative to a 4.7 W
// core (the paper's i7-1260P RAPL measurement).
func (o Overhead) PowerFractionOfCore() float64 {
	return o.PowerMilliwatts() / 4700.0
}

// CSRBits returns the sample-metadata CSR occupancy: TIP uses 10 bits
// of metadata; TEA packs four PSVs alongside (Section 3). The total
// must fit the 64-bit CSR so TEA retains TIP's 88-byte sample size and
// 1.1% performance overhead.
func CSRBits(commitWidth int) int { return 10 + commitWidth*psvBits }

// SampleBytes is the size of one TEA sample record as delivered to
// software (inherited from TIP).
const SampleBytes = 88

// Describe renders the storage breakdown like Section 3's accounting.
func (o Overhead) Describe() string {
	var b strings.Builder
	row := func(name string, bits int) {
		fmt.Fprintf(&b, "  %-34s %5d bits (%d B)\n", name, bits, (bits+7)/8)
	}
	row("Fetch buffer PSV fields (2b/entry)", o.FetchBufferBits)
	row("ROB PSV fields (9b/entry)", o.ROBBits)
	row("Fetch/decode/dispatch trackers", o.FetchTrackBits)
	row("DR-SQ dispatch register", o.DispatchBits)
	row("LSU ST-TLB bits (1b/entry)", o.LSUBits)
	row("Last-committed PSV register", o.LastCommittedBits)
	fmt.Fprintf(&b, "  %-34s %5d B\n", "TEA total", o.TotalBytes())
	fmt.Fprintf(&b, "  %-34s %5d B\n", "TEA + TIP baseline", o.WithTIPBytes())
	fmt.Fprintf(&b, "  %-34s %5.1f mW (%.2f%% of a 4.7 W core)\n",
		"Estimated power", o.PowerMilliwatts(), 100*o.PowerFractionOfCore())
	return b.String()
}
