package core

import (
	"bytes"
	"testing"
)

// FuzzReadSamples feeds arbitrary bytes to the sample-file reader: no
// input may panic it.
func FuzzReadSamples(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteSamples(&buf, []Sample{sampleFixture()}, 1)
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 88))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _ = ReadSamples(bytes.NewReader(data), 1)
	})
}
