// Package core implements Time-Proportional Event Analysis (TEA), the
// paper's contribution: a hardware sampling unit that, at each sample
// point, classifies the commit stage into one of four states, selects
// the instruction(s) whose latency the core is exposing, and captures
// their Performance Signature Vectors. Post-processing the samples
// yields time-proportional Per-Instruction Cycle Stacks (PICS).
//
// The package also provides the storage/power/performance overhead
// models of Section 3.
package core

import (
	"math/rand/v2"

	"repro/internal/cpu"
	"repro/internal/events"
	"repro/internal/pics"
	"repro/internal/program"
	"repro/internal/simerr"
)

// SampledInst is one (instruction pointer, PSV) pair within a sample.
type SampledInst struct {
	PC  uint64
	PSV events.PSV
}

// Sample is what the TEA PMU delivers to the sampling software: a
// timestamp, the commit state, and the selected instruction(s) with
// their signature vectors (up to commit width in the Compute state).
type Sample struct {
	Cycle  uint64
	State  events.CommitState
	Insts  []SampledInst
	Weight float64 // cycles this sample represents
}

// Sampler generates sample points from a cycle counter. A small
// deterministic jitter decorrelates the sample clock from loop periods,
// as statistical profilers do to avoid aliasing.
type Sampler struct {
	interval uint64
	jitter   uint64
	next     uint64
	rng      *rand.Rand
}

// SamplerSource returns the canonical jitter source for a seed. Every
// sampler in the tree derives its randomness from an explicit, seeded
// *rand.Rand (never the package-global math/rand/v2 state, which the
// tealint randsource analyzer forbids), so identical traces plus an
// identical seed produce identical PICS.
func SamplerSource(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0x7EA))
}

// NewSampler returns a sampler firing roughly every interval cycles.
// jitter is the half-width of the uniform perturbation (0 disables
// it); rng is the injected jitter source — it must not be shared with
// another consumer if replay reproducibility matters. A nil rng is
// allowed only when jitter is 0.
func NewSampler(interval, jitter uint64, rng *rand.Rand) *Sampler {
	if interval == 0 {
		// User-reachable through configuration; typed for boundary
		// recovery (simerr.ErrInvalidConfig).
		panic(simerr.New(simerr.ErrInvalidConfig, simerr.Snapshot{},
			"core: sampling interval must be positive"))
	}
	if rng == nil && jitter > 0 {
		panic(simerr.New(simerr.ErrInvalidConfig, simerr.Snapshot{},
			"core: jittered sampler needs an explicit rand source"))
	}
	s := &Sampler{
		interval: interval,
		jitter:   jitter,
		rng:      rng,
	}
	s.next = s.interval
	return s
}

// NewSeededSampler is NewSampler with the jitter source derived from
// an integer seed, for callers that record the seed rather than the
// source.
func NewSeededSampler(interval, jitter, seed uint64) *Sampler {
	return NewSampler(interval, jitter, SamplerSource(seed))
}

// Fires reports whether a sample point is due at cycle and advances the
// sample clock when it is.
func (s *Sampler) Fires(cycle uint64) bool {
	if cycle < s.next {
		return false
	}
	next := s.next + s.interval
	if s.jitter > 0 {
		next = next - s.jitter + uint64(s.rng.Uint64N(2*s.jitter+1))
	}
	if next <= cycle {
		// The clock fell behind (overdue consultation): re-anchor one
		// full interval ahead rather than firing again immediately.
		next = cycle + s.interval
	}
	s.next = next
	return true
}

// Interval returns the nominal sampling interval in cycles.
func (s *Sampler) Interval() uint64 { return s.interval }

// Config configures a TEA unit.
type Config struct {
	// IntervalCycles is the nominal sampling period. The paper samples
	// at 4 KHz on a 3.2 GHz core (once every 800,000 cycles); simulated
	// runs are shorter, so the default interval is scaled down to keep
	// the per-run sample count in the same regime.
	IntervalCycles uint64
	// JitterCycles decorrelates the sample clock from loop periods.
	JitterCycles uint64
	// Seed makes the sample clock reproducible. It is recorded in the
	// generated profile so a run can be replayed bit-identically.
	Seed uint64
	// Rand, when non-nil, overrides the Seed-derived jitter source with
	// an explicitly injected one. Seed is still recorded in the profile
	// as the replay key, so callers injecting a source should derive it
	// from Seed (e.g. via SamplerSource).
	Rand *rand.Rand
	// Set is the tracked event set (TEA tracks all nine; TIP is TEA
	// with an empty set).
	Set events.Set
	// EveryCycle turns the unit into the golden reference: attribution
	// runs every cycle with weight 1 and no samples are materialized.
	EveryCycle bool
	// Prog, when non-nil, identifies the program under profile so the
	// unit can accumulate into a dense per-static-instruction slice
	// instead of maps (replay against a recorded trace has no core to
	// derive the program from). With neither a core nor a program the
	// unit falls back to map accumulation.
	Prog *program.Program
	// ChargeOverhead makes each delivered sample charge the modeled
	// interrupt cost to the core (performance-overhead experiments).
	ChargeOverhead bool
}

// DefaultConfig returns the standard TEA configuration: all nine
// events, an 8192-cycle sampling interval with 512 cycles of jitter.
func DefaultConfig() Config {
	return Config{
		IntervalCycles: 8192,
		JitterCycles:   512,
		Seed:           1,
		Set:            events.TEASet,
	}
}

// pendingKind distinguishes why a sample is waiting for the next commit.
type pendingKind uint8

const (
	pendStalled pendingKind = iota
	pendDrained
)

type pending struct {
	kind   pendingKind
	cycle  uint64
	weight float64
}

// TEA is the sampling unit. It implements cpu.Probe: attach it to a
// core and read the Profile (PICS) after the run. The same engine with
// EveryCycle set is the golden reference of Section 4.
type TEA struct {
	cpu.BaseProbe
	cfg     Config
	sampler *Sampler
	core    *cpu.CPU

	samples   []Sample
	pendings  []pending
	profile   *pics.Profile
	acc       *pics.Accum // dense accumulator when the program is known
	keep      bool        // materialize Sample records (not just the profile)
	SampleCnt uint64
}

// NewTEA builds a TEA unit for the given core.
func NewTEA(core *cpu.CPU, cfg Config) *TEA {
	name := "TEA"
	if cfg.EveryCycle {
		name = "golden"
	}
	if cfg.Set.Size() == 0 {
		name = "TIP"
	}
	prog := cfg.Prog
	if prog == nil && core != nil {
		prog = core.Program()
	}
	t := &TEA{
		cfg:  cfg,
		core: core,
		keep: !cfg.EveryCycle,
	}
	if prog != nil {
		t.acc = pics.NewAccum(name, cfg.Set, len(prog.Insts))
	} else {
		t.profile = pics.NewProfile(name, cfg.Set)
	}
	if !cfg.EveryCycle {
		rng := cfg.Rand
		if rng == nil {
			rng = SamplerSource(cfg.Seed)
		}
		t.sampler = NewSampler(cfg.IntervalCycles, cfg.JitterCycles, rng)
		if t.acc != nil {
			t.acc.SetSeed(cfg.Seed)
		} else {
			t.profile.Seed = cfg.Seed
		}
	}
	return t
}

// add attributes w cycles to (pc, signature) through whichever
// accumulator the unit runs with.
func (t *TEA) add(pc uint64, sig events.PSV, w float64) {
	if t.acc != nil {
		t.acc.AddPC(pc, sig, w)
	} else {
		t.profile.Add(pc, sig, w)
	}
}

// NewGolden builds the golden reference: per-cycle attribution of every
// instruction with the full event set — the impractical-in-hardware
// baseline the paper compares every technique against.
func NewGolden(core *cpu.CPU) *TEA {
	return NewTEA(core, Config{Set: events.TEASet, EveryCycle: true})
}

// Profile returns the PICS generated from the captured samples. A
// dense accumulator is materialized on first call; attribution must be
// complete by then.
func (t *TEA) Profile() *pics.Profile {
	if t.acc != nil {
		t.profile = t.acc.Profile()
		t.acc = nil
	}
	return t.profile
}

// Samples returns the materialized sample records (empty for the golden
// reference, which models an impossible 116 GB/s sample stream).
func (t *TEA) Samples() []Sample { return t.samples }

// OnCycle implements the sample-selection unit: classify the commit
// state and select the instruction(s) the core is exposing the latency
// of (Section 3). Samples taken in the Stalled and Drained states are
// delayed until the next µop commits so its PSV is fully updated.
func (t *TEA) OnCycle(ci *cpu.CycleInfo) {
	var weight float64
	if t.cfg.EveryCycle {
		weight = 1
	} else {
		if !t.sampler.Fires(ci.Cycle) {
			return
		}
		weight = float64(t.sampler.Interval())
	}

	switch ci.State {
	case events.Compute:
		n := len(ci.Committed)
		if n == 0 {
			return
		}
		share := weight / float64(n)
		// The golden reference (keep=false) attributes every cycle;
		// materializing per-cycle sample records there would dominate
		// the run, so the slice is only built for sampling units.
		var insts []SampledInst
		if t.keep {
			insts = make([]SampledInst, 0, n)
		}
		for _, r := range ci.Committed {
			t.add(r.PC, r.PSV, share)
			if t.keep {
				insts = append(insts, SampledInst{PC: r.PC, PSV: r.PSV.Mask(t.cfg.Set)})
			}
		}
		t.deliver(ci.Cycle, ci.State, insts, weight)
	case events.Stalled:
		// The head µop commits next; its PSV may still gain events, so
		// the sample is resolved at its commit.
		t.pendings = append(t.pendings, pending{kind: pendStalled, cycle: ci.Cycle, weight: weight})
	case events.Drained:
		t.pendings = append(t.pendings, pending{kind: pendDrained, cycle: ci.Cycle, weight: weight})
	case events.Flushed:
		r := ci.LastCommitted
		t.add(r.PC, r.PSV, weight)
		var insts []SampledInst
		if t.keep {
			insts = []SampledInst{{PC: r.PC, PSV: r.PSV.Mask(t.cfg.Set)}}
		}
		t.deliver(ci.Cycle, ci.State, insts, weight)
	}
}

// OnCommit resolves delayed Stalled/Drained samples against the first
// committing µop (the next-committing instruction at sample time).
func (t *TEA) OnCommit(r cpu.Ref, cycle uint64) {
	if len(t.pendings) == 0 {
		return
	}
	for _, p := range t.pendings {
		t.add(r.PC, r.PSV, p.weight)
		state := events.Stalled
		if p.kind == pendDrained {
			state = events.Drained
		}
		var insts []SampledInst
		if t.keep {
			insts = []SampledInst{{PC: r.PC, PSV: r.PSV.Mask(t.cfg.Set)}}
		}
		t.deliver(p.cycle, state, insts, p.weight)
	}
	t.pendings = t.pendings[:0]
}

func (t *TEA) deliver(cycle uint64, state events.CommitState, insts []SampledInst, weight float64) {
	t.SampleCnt++
	if t.keep {
		t.samples = append(t.samples, Sample{Cycle: cycle, State: state, Insts: insts, Weight: weight})
	}
	if t.cfg.ChargeOverhead && t.core != nil {
		t.core.RequestSampleOverhead()
	}
}

// BuildProfile regenerates a PICS profile from materialized samples —
// the offline tool of Section 3 ("sample collection and PICS
// generation"). It must agree with the online profile.
func BuildProfile(name string, set events.Set, samples []Sample) *pics.Profile {
	p := pics.NewProfile(name, set)
	for _, s := range samples {
		share := s.Weight / float64(len(s.Insts))
		for _, si := range s.Insts {
			p.Add(si.PC, si.PSV, share)
		}
	}
	return p
}
