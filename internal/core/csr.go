package core

import (
	"encoding/binary"
	"io"

	"repro/internal/events"
	"repro/internal/simerr"
)

// CSRImage is the 88-byte sample a TEA-enabled core exposes through its
// Control and Status Registers (Section 3): the interrupt handler reads
// eleven 64-bit CSRs and appends them to a memory buffer. TEA inherits
// TIP's layout — a timestamp, four instruction-address registers, and a
// metadata register whose 46 used bits hold TIP's 10 metadata bits
// (commit state + validity) plus four 9-bit PSVs.
type CSRImage [11]uint64

// Metadata register bit layout (bits counted from 0):
//
//	[1:0]   commit state
//	[5:2]   address-valid bits (up to commit width = 4)
//	[9:6]   reserved TIP metadata
//	[18:10] PSV 0
//	[27:19] PSV 1
//	[36:28] PSV 2
//	[45:37] PSV 3
const (
	metaStateShift = 0
	metaValidShift = 2
	metaPSVShift   = 10
	psvFieldBits   = events.NumEvents
)

// csrTimestamp, csrMeta, and csrAddr0 name the CSR slots.
const (
	csrTimestamp = 0
	csrMeta      = 1
	csrAddr0     = 2
	// Slots 6..10 carry process/thread identifiers and padding in the
	// Linux-perf-style record; the simulator stores the core ID in 6.
	csrCoreID = 6
)

// maxSampleInsts is the number of instruction slots in a sample (the
// commit width of the Table 2 core).
const maxSampleInsts = 4

// PackSample encodes a sample into the CSR image. Samples with more
// than four instructions cannot occur on a 4-wide core; PackSample
// returns an error rather than truncating silently.
func PackSample(s Sample, coreID uint64) (CSRImage, error) {
	var img CSRImage
	if len(s.Insts) > maxSampleInsts {
		return img, simerr.New(simerr.ErrInternal, simerr.Snapshot{Cycle: s.Cycle},
			"core: sample with %d instructions exceeds the %d-slot CSR image",
			len(s.Insts), maxSampleInsts)
	}
	img[csrTimestamp] = s.Cycle
	meta := uint64(s.State) << metaStateShift
	for i, si := range s.Insts {
		meta |= 1 << (metaValidShift + i)
		meta |= uint64(si.PSV) << (metaPSVShift + i*psvFieldBits)
		img[csrAddr0+i] = si.PC
	}
	img[csrMeta] = meta
	img[csrCoreID] = coreID
	return img, nil
}

// UnpackSample decodes a CSR image back into a sample. Weight is not
// part of the hardware image (software knows the sampling period), so
// the caller supplies it.
func UnpackSample(img CSRImage, weight float64) (Sample, uint64) {
	s := Sample{
		Cycle:  img[csrTimestamp],
		State:  events.CommitState(img[csrMeta] >> metaStateShift & 0x3),
		Weight: weight,
	}
	meta := img[csrMeta]
	for i := 0; i < maxSampleInsts; i++ {
		if meta&(1<<(metaValidShift+i)) == 0 {
			continue
		}
		psv := events.PSV(meta >> (metaPSVShift + i*psvFieldBits) & ((1 << psvFieldBits) - 1))
		s.Insts = append(s.Insts, SampledInst{PC: img[csrAddr0+i], PSV: psv})
	}
	return s, img[csrCoreID]
}

// MetaBitsUsed reports how many metadata-CSR bits the layout occupies;
// Section 3 packs TEA into 46 of the 64 available bits.
func MetaBitsUsed() int { return metaPSVShift + maxSampleInsts*psvFieldBits }

// WriteSamples serializes samples as consecutive CSR images — the
// memory-buffer/file format the sampling software produces.
func WriteSamples(w io.Writer, samples []Sample, coreID uint64) error {
	var buf [8 * len(CSRImage{})]byte
	for _, s := range samples {
		img, err := PackSample(s, coreID)
		if err != nil {
			return err
		}
		for i, word := range img {
			binary.LittleEndian.PutUint64(buf[i*8:], word)
		}
		if _, err := w.Write(buf[:]); err != nil {
			return simerr.Wrap(simerr.ErrInternal, simerr.Snapshot{Cycle: s.Cycle}, err,
				"core: writing sample file")
		}
	}
	return nil
}

// ReadSamples parses a sample file written by WriteSamples. weight is
// the sampling period the samples were taken at.
func ReadSamples(r io.Reader, weight float64) (samples []Sample, coreID uint64, err error) {
	var buf [8 * len(CSRImage{})]byte
	for {
		_, err := io.ReadFull(r, buf[:])
		if err == io.EOF {
			return samples, coreID, nil
		}
		if err == io.ErrUnexpectedEOF {
			return samples, coreID, simerr.New(simerr.ErrDecode, simerr.Snapshot{},
				"core: truncated sample file")
		}
		if err != nil {
			return samples, coreID, simerr.Wrap(simerr.ErrDecode, simerr.Snapshot{}, err,
				"core: reading sample file")
		}
		var img CSRImage
		for i := range img {
			img[i] = binary.LittleEndian.Uint64(buf[i*8:])
		}
		s, cid := UnpackSample(img, weight)
		samples = append(samples, s)
		coreID = cid
	}
}
