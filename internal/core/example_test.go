package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/pics"
	"repro/internal/program"
)

// ExampleTEA is the minimal end-to-end flow: build a program, attach a
// TEA unit and the golden reference to one core, run, and compare.
func ExampleTEA() {
	b := program.NewBuilder("demo")
	buf := b.Alloc(8<<20, 4096)
	b.Func("main")
	b.MoviU(isa.X(1), buf)
	b.Movi(isa.X(2), 0)
	b.Movi(isa.X(3), 5000)
	b.Label("loop")
	b.Load(isa.X(4), isa.X(1), 0) // misses deep into the hierarchy
	b.Addi(isa.X(1), isa.X(1), 4096)
	b.Addi(isa.X(2), isa.X(2), 1)
	b.Blt(isa.X(2), isa.X(3), "loop")
	b.Halt()

	c := cpu.New(cpu.DefaultConfig(), b.MustBuild())
	cfg := core.DefaultConfig()
	cfg.IntervalCycles = 256
	cfg.JitterCycles = 16
	tea := core.NewTEA(c, cfg)
	golden := core.NewGolden(c)
	c.Attach(tea)
	c.Attach(golden)
	c.Run()

	err := pics.Error(tea.Profile(), golden.Profile())
	top := tea.Profile().TopInstructions(1)[0]
	fmt.Printf("top instruction is the load: %v\n", top == isa.PCOf(3))
	fmt.Printf("TEA error under 5%%: %v\n", err < 0.05)
	// Output:
	// top instruction is the load: true
	// TEA error under 5%: true
}
