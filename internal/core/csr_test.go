package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/events"
	"repro/internal/pics"
)

func sampleFixture() Sample {
	return Sample{
		Cycle: 123456,
		State: events.Compute,
		Insts: []SampledInst{
			{PC: 0x10000, PSV: 0},
			{PC: 0x10004, PSV: events.PSV(0).Set(events.STL1).Set(events.STLLC)},
			{PC: 0x10008, PSV: events.PSV(0).Set(events.FLMB)},
		},
		Weight: 256,
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	s := sampleFixture()
	img, err := PackSample(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, coreID := UnpackSample(img, s.Weight)
	if coreID != 3 {
		t.Errorf("core ID = %d, want 3", coreID)
	}
	if got.Cycle != s.Cycle || got.State != s.State || got.Weight != s.Weight {
		t.Errorf("header mismatch: %+v vs %+v", got, s)
	}
	if len(got.Insts) != len(s.Insts) {
		t.Fatalf("got %d insts, want %d", len(got.Insts), len(s.Insts))
	}
	for i := range s.Insts {
		if got.Insts[i] != s.Insts[i] {
			t.Errorf("inst %d: %+v vs %+v", i, got.Insts[i], s.Insts[i])
		}
	}
}

func TestPackRejectsOverfullSample(t *testing.T) {
	s := Sample{State: events.Compute}
	for i := 0; i < 5; i++ {
		s.Insts = append(s.Insts, SampledInst{PC: uint64(i)})
	}
	if _, err := PackSample(s, 0); err == nil {
		t.Fatalf("5-instruction sample accepted into a 4-slot image")
	}
}

func TestPackUnpackProperty(t *testing.T) {
	f := func(cycle uint64, stateRaw uint8, n uint8, pcSeed uint64, psvRaw uint16) bool {
		s := Sample{
			Cycle:  cycle,
			State:  events.CommitState(stateRaw % events.NumCommitStates),
			Weight: 128,
		}
		for i := 0; i < int(n%5); i++ {
			s.Insts = append(s.Insts, SampledInst{
				PC:  pcSeed + uint64(i)*4,
				PSV: events.PSV(psvRaw>>i) & events.PSV(events.TEASet),
			})
		}
		img, err := PackSample(s, 7)
		if err != nil {
			return false
		}
		got, coreID := UnpackSample(img, 128)
		if coreID != 7 || got.Cycle != s.Cycle || got.State != s.State {
			return false
		}
		if len(got.Insts) != len(s.Insts) {
			return false
		}
		for i := range s.Insts {
			if got.Insts[i] != s.Insts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMetaBitsMatchPaper(t *testing.T) {
	if got := MetaBitsUsed(); got != 46 {
		t.Errorf("metadata CSR uses %d bits, paper reports 46", got)
	}
	if MetaBitsUsed() > 64 {
		t.Errorf("metadata exceeds the 64-bit CSR")
	}
	var img CSRImage
	if size := len(img) * 8; size != SampleBytes {
		t.Errorf("CSR image is %d bytes, sample size is %d", size, SampleBytes)
	}
}

func TestSampleFileRoundTrip(t *testing.T) {
	// Real samples from a real run: write to a file, read back, rebuild
	// the PICS, and compare against the online profile.
	p := memLoop(1200)
	c := cpu.New(cpu.DefaultConfig(), p)
	cfg := DefaultConfig()
	cfg.IntervalCycles = 300
	tea := NewTEA(c, cfg)
	c.Attach(tea)
	c.Run()

	var buf bytes.Buffer
	if err := WriteSamples(&buf, tea.Samples(), 5); err != nil {
		t.Fatal(err)
	}
	wantLen := len(tea.Samples()) * SampleBytes
	if buf.Len() != wantLen {
		t.Errorf("file is %d bytes, want %d (%d samples x %d B)",
			buf.Len(), wantLen, len(tea.Samples()), SampleBytes)
	}

	samples, coreID, err := ReadSamples(&buf, float64(cfg.IntervalCycles))
	if err != nil {
		t.Fatal(err)
	}
	if coreID != 5 {
		t.Errorf("core ID = %d, want 5", coreID)
	}
	rebuilt := BuildProfile("TEA", events.TEASet, samples)
	if e := pics.Error(rebuilt, tea.Profile()); e > 1e-9 {
		t.Errorf("file round trip changed the profile: error %v", e)
	}
	if math.Abs(rebuilt.Total()-tea.Profile().Total()) > 1e-6 {
		t.Errorf("totals differ: %v vs %v", rebuilt.Total(), tea.Profile().Total())
	}
}

func TestReadSamplesTruncated(t *testing.T) {
	s := sampleFixture()
	var buf bytes.Buffer
	if err := WriteSamples(&buf, []Sample{s}, 0); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-8]
	_, _, err := ReadSamples(bytes.NewReader(trunc), 1)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("truncated file accepted: %v", err)
	}
}

func TestReadSamplesEmpty(t *testing.T) {
	samples, _, err := ReadSamples(bytes.NewReader(nil), 1)
	if err != nil || len(samples) != 0 {
		t.Errorf("empty file should parse to zero samples: %v %v", samples, err)
	}
}
