package core

import (
	"math"
	"testing"

	"repro/internal/cpu"
	"repro/internal/events"
	"repro/internal/isa"
	"repro/internal/pics"
	"repro/internal/program"
)

func TestSamplerFiresAtInterval(t *testing.T) {
	s := NewSeededSampler(100, 0, 1)
	fired := []uint64{}
	for c := uint64(1); c <= 1000; c++ {
		if s.Fires(c) {
			fired = append(fired, c)
		}
	}
	if len(fired) != 10 {
		t.Fatalf("fired %d times in 1000 cycles at interval 100, want 10", len(fired))
	}
	for i, c := range fired {
		if c != uint64((i+1)*100) {
			t.Errorf("fire %d at cycle %d, want %d", i, c, (i+1)*100)
		}
	}
}

func TestSamplerJitterStaysNearInterval(t *testing.T) {
	s := NewSeededSampler(1000, 100, 7)
	prev := uint64(0)
	count := 0
	for c := uint64(1); c <= 200_000; c++ {
		if s.Fires(c) {
			if prev != 0 {
				gap := c - prev
				if gap < 800 || gap > 1250 {
					t.Fatalf("jittered gap %d outside [800,1250]", gap)
				}
			}
			prev = c
			count++
		}
	}
	if count < 180 || count > 220 {
		t.Errorf("fired %d times in 200k cycles at interval 1000, want ~200", count)
	}
}

func TestSamplerSkippedCyclesCatchUp(t *testing.T) {
	// If Fires is consulted sparsely (cycle jumps), the next fire must
	// not be in the past.
	s := NewSeededSampler(10, 0, 1)
	if !s.Fires(100) {
		t.Fatalf("overdue sampler should fire")
	}
	if s.Fires(100) {
		t.Fatalf("sampler fired twice in the same cycle")
	}
	if s.Fires(101) {
		t.Fatalf("sampler should not fire before the next interval")
	}
	if !s.Fires(110) {
		t.Fatalf("sampler should fire one interval after the catch-up")
	}
}

func TestSamplerZeroIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewSeededSampler(0, 0, 1)
}

// runWith builds a core for p, attaches golden + a TEA configured with
// interval, runs, and returns both profiles.
func runWith(t *testing.T, p *program.Program, interval uint64) (tea, golden *pics.Profile, teaUnit *TEA) {
	t.Helper()
	c := cpu.New(cpu.DefaultConfig(), p)
	g := NewGolden(c)
	cfg := DefaultConfig()
	cfg.IntervalCycles = interval
	cfg.JitterCycles = interval / 16
	teaU := NewTEA(c, cfg)
	c.Attach(g)
	c.Attach(teaU)
	c.Run()
	return teaU.Profile(), g.Profile(), teaU
}

func memLoop(n int64) *program.Program {
	b := program.NewBuilder("memloop")
	base := b.Alloc(8<<20, 64)
	b.Func("main")
	b.MoviU(isa.X(1), base)
	b.Movi(isa.X(2), 0)
	b.Movi(isa.X(3), n)
	b.Label("top")
	b.Load(isa.X(4), isa.X(1), 0)
	b.Add(isa.X(5), isa.X(4), isa.X(2))
	b.Addi(isa.X(1), isa.X(1), 4096) // new page and line every iteration
	b.Addi(isa.X(2), isa.X(2), 1)
	b.Blt(isa.X(2), isa.X(3), "top")
	b.Halt()
	return b.MustBuild()
}

func TestGoldenTotalMatchesCycles(t *testing.T) {
	p := memLoop(300)
	c := cpu.New(cpu.DefaultConfig(), p)
	g := NewGolden(c)
	c.Attach(g)
	stats := c.Run()
	got := g.Profile().Total()
	// Every cycle is attributed except trailing Drained/Flushed cycles
	// with no subsequent commit (end of program) — a tiny fraction.
	if got > float64(stats.Cycles) || got < 0.95*float64(stats.Cycles) {
		t.Errorf("golden attributed %v of %d cycles", got, stats.Cycles)
	}
}

func TestGoldenSeesLoadStallEvents(t *testing.T) {
	p := memLoop(300)
	c := cpu.New(cpu.DefaultConfig(), p)
	g := NewGolden(c)
	c.Attach(g)
	c.Run()
	app := g.Profile().Application()
	var stallCycles float64
	for sig, v := range app {
		if sig.Has(events.STL1) || sig.Has(events.STLLC) || sig.Has(events.STTLB) {
			stallCycles += v
		}
	}
	if stallCycles < 0.3*g.Profile().Total() {
		t.Errorf("memory-bound loop shows only %v of %v cycles on memory events",
			stallCycles, g.Profile().Total())
	}
}

func TestTEACloseToGolden(t *testing.T) {
	p := memLoop(4000)
	tea, golden, _ := runWith(t, p, 512)
	e := pics.Error(tea, golden)
	if e > 0.15 {
		t.Errorf("TEA error vs golden = %v, want small (paper: 2.1%% average)", e)
	}
}

func TestTEASampleCountMatchesInterval(t *testing.T) {
	p := memLoop(2000)
	c := cpu.New(cpu.DefaultConfig(), p)
	cfg := DefaultConfig()
	cfg.IntervalCycles = 1000
	cfg.JitterCycles = 50
	tea := NewTEA(c, cfg)
	c.Attach(tea)
	stats := c.Run()
	want := float64(stats.Cycles) / 1000
	got := float64(tea.SampleCnt)
	if math.Abs(got-want) > 0.15*want+2 {
		t.Errorf("TEA took %v samples over %d cycles at interval 1000, want ~%v",
			got, stats.Cycles, want)
	}
}

func TestBuildProfileMatchesOnline(t *testing.T) {
	p := memLoop(1500)
	tea, _, unit := runWith(t, p, 700)
	rebuilt := BuildProfile("TEA", events.TEASet, unit.Samples())
	if e := pics.Error(rebuilt, tea); e > 1e-9 {
		t.Errorf("offline PICS generation differs from online: error=%v", e)
	}
	if math.Abs(rebuilt.Total()-tea.Total()) > 1e-6 {
		t.Errorf("totals differ: %v vs %v", rebuilt.Total(), tea.Total())
	}
}

func TestTIPHasOnlyBaseComponent(t *testing.T) {
	p := memLoop(500)
	c := cpu.New(cpu.DefaultConfig(), p)
	cfg := DefaultConfig()
	cfg.IntervalCycles = 300
	cfg.Set = 0 // TIP: time-proportional addresses, no events
	tip := NewTEA(c, cfg)
	c.Attach(tip)
	c.Run()
	if tip.Profile().Name != "TIP" {
		t.Errorf("empty-set TEA should be named TIP, got %q", tip.Profile().Name)
	}
	for pc, st := range tip.Profile().Insts {
		for sig := range st {
			if sig != 0 {
				t.Fatalf("TIP profile has non-Base signature %v at %#x", sig, pc)
			}
		}
	}
}

func TestFlushedSamplesGoToLastCommitted(t *testing.T) {
	// Serializing flushes: Flushed-state cycles must be attributed to
	// the csrflush (FL-EX), not to the next instruction.
	b := program.NewBuilder("flush")
	b.Func("main")
	b.Movi(isa.X(1), 9)
	b.FMovI(isa.F(1), isa.X(1))
	b.Movi(isa.X(9), 0)
	b.Movi(isa.X(10), 200)
	b.Label("top")
	b.CsrFlush()
	b.FSqrt(isa.F(2), isa.F(1))
	b.Addi(isa.X(9), isa.X(9), 1)
	b.Blt(isa.X(9), isa.X(10), "top")
	b.Halt()
	p := b.MustBuild()
	c := cpu.New(cpu.DefaultConfig(), p)
	g := NewGolden(c)
	c.Attach(g)
	c.Run()
	app := g.Profile().Application()
	flexCycles := 0.0
	for sig, v := range app {
		if sig.Has(events.FLEX) {
			flexCycles += v
		}
	}
	if flexCycles == 0 {
		t.Fatalf("no cycles attributed to FL-EX signatures")
	}
}

func TestOverheadStorageBreakdown(t *testing.T) {
	o := NewOverhead(cpu.DefaultConfig())
	// Section 3: fetch buffer 12 B, ROB 216 B; total ~249 B.
	if o.FetchBufferBits != 96 {
		t.Errorf("fetch buffer bits = %d, want 96 (12 B)", o.FetchBufferBits)
	}
	if o.ROBBits != 1728 {
		t.Errorf("ROB bits = %d, want 1728 (216 B)", o.ROBBits)
	}
	if b := o.TotalBytes(); b < 235 || b > 255 {
		t.Errorf("TEA storage = %d B, paper reports 249 B", b)
	}
	if b := o.WithTIPBytes(); b < 290 || b > 310 {
		t.Errorf("TEA+TIP storage = %d B, paper reports 306 B", b)
	}
}

func TestOverheadPowerTiny(t *testing.T) {
	o := NewOverhead(cpu.DefaultConfig())
	mw := o.PowerMilliwatts()
	if mw < 2.5 || mw > 3.5 {
		t.Errorf("power = %v mW, paper reports ~3.2 mW", mw)
	}
	if f := o.PowerFractionOfCore(); f > 0.002 {
		t.Errorf("power fraction = %v, paper reports ~0.1%%", f)
	}
}

func TestCSRPackingFits(t *testing.T) {
	cfg := cpu.DefaultConfig()
	bits := CSRBits(cfg.CommitWidth)
	if bits != 46 {
		t.Errorf("CSR occupancy = %d bits, paper reports 46", bits)
	}
	if bits > 64 {
		t.Errorf("sample metadata exceeds the 64-bit CSR")
	}
	if SampleBytes != 88 {
		t.Errorf("sample size = %d, paper retains TIP's 88 B", SampleBytes)
	}
}

func TestOverheadDescribe(t *testing.T) {
	o := NewOverhead(cpu.DefaultConfig())
	text := o.Describe()
	for _, want := range []string{"ROB PSV", "TEA total", "mW"} {
		found := false
		for i := 0; i+len(want) <= len(text); i++ {
			if text[i:i+len(want)] == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Describe missing %q", want)
		}
	}
}
