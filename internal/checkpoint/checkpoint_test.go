package checkpoint

import (
	"context"
	"errors"
	"testing"

	"repro/internal/cpu"
	"repro/internal/simerr"
	"repro/internal/workloads"
)

func testProgram(t *testing.T, name string, iters int) (*cpu.Config, *Generation, uint64) {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p := w.Build(iters)
	cfg := cpu.DefaultConfig()
	gen, err := Generate(context.Background(), p, cfg, Plan{Interval: 100})
	if err != nil {
		t.Fatal(err)
	}
	return &cfg, gen, gen.Total
}

// TestPlanNormalized pins the warmup-tolerance rules: a zero warmup
// defaults to DefaultWarmup, and any warmup is clamped to half the
// interval so checkpoint k always lands strictly after boundary k-1 —
// segments own disjoint instruction ranges by construction.
func TestPlanNormalized(t *testing.T) {
	cases := []struct {
		in   Plan
		want Plan
	}{
		{Plan{Interval: 100000}, Plan{Interval: 100000, Warmup: DefaultWarmup}},
		{Plan{Interval: 100000, Warmup: 64}, Plan{Interval: 100000, Warmup: 64}},
		{Plan{Interval: 1000}, Plan{Interval: 1000, Warmup: 500}},
		{Plan{Interval: 1000, Warmup: 900}, Plan{Interval: 1000, Warmup: 500}},
		{Plan{Interval: 3}, Plan{Interval: 3, Warmup: 1}},
	}
	for _, c := range cases {
		if got := c.in.Normalized(); got != c.want {
			t.Errorf("Normalized(%+v) = %+v; want %+v", c.in, got, c.want)
		}
	}
}

// TestGenerateSchedule pins the checkpoint schedule: checkpoint k sits
// Warmup instructions before boundary (k+1)*Interval, and checkpoints
// whose warmup window would reach past the end of the program are
// dropped (their segment would have nothing left to record).
func TestGenerateSchedule(t *testing.T) {
	_, gen, total := testProgram(t, "mcf", 200)
	if len(gen.Checkpoints) == 0 {
		t.Fatalf("no checkpoints for a %d-instruction program at interval %d", total, gen.Plan.Interval)
	}
	for k, cp := range gen.Checkpoints {
		boundary := uint64(k+1) * gen.Plan.Interval
		if got := gen.Boundary(k); got != boundary {
			t.Errorf("Boundary(%d) = %d; want %d", k, got, boundary)
		}
		if cp.Seq != boundary-gen.Plan.Warmup {
			t.Errorf("checkpoint %d at seq %d; want boundary %d - warmup %d = %d",
				k, cp.Seq, boundary, gen.Plan.Warmup, boundary-gen.Plan.Warmup)
		}
		if cp.Seq+gen.Plan.Warmup >= total {
			t.Errorf("checkpoint %d warms past the end of the program (%d+%d >= %d)",
				k, cp.Seq, gen.Plan.Warmup, total)
		}
		if cp.Snap == nil {
			t.Fatalf("checkpoint %d has no snapshot", k)
		}
		if cp.Snap.Arch.Seq != cp.Seq {
			t.Errorf("checkpoint %d: architectural seq %d != checkpoint seq %d",
				k, cp.Snap.Arch.Seq, cp.Seq)
		}
	}
}

// TestGenerateInvalidInterval pins the typed rejection of unusable
// plans.
func TestGenerateInvalidInterval(t *testing.T) {
	w, err := workloads.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	p := w.Build(5)
	for _, interval := range []uint64{0, 1} {
		_, err := Generate(context.Background(), p, cpu.DefaultConfig(), Plan{Interval: interval})
		if !errors.Is(err, simerr.ErrInvalidConfig) {
			t.Errorf("interval %d: got %v; want ErrInvalidConfig", interval, err)
		}
	}
}

// TestGenerateCanceled pins that cancellation mid-pass surfaces as a
// typed ErrCanceled, never a partial Generation.
func TestGenerateCanceled(t *testing.T) {
	w, err := workloads.ByName("deepsjeng")
	if err != nil {
		t.Fatal(err)
	}
	p := w.Build(500)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	gen, err := Generate(ctx, p, cpu.DefaultConfig(), Plan{Interval: 400})
	if !errors.Is(err, simerr.ErrCanceled) {
		t.Fatalf("got %v; want ErrCanceled", err)
	}
	if gen != nil {
		t.Error("canceled Generate returned a partial Generation")
	}
}

// TestRestoreCPURunsToCompletion is the minimal restore contract: a
// core restored from any checkpoint finishes the program with exactly
// the committed instructions that remained at its boundary.
func TestRestoreCPURunsToCompletion(t *testing.T) {
	w, err := workloads.ByName("exchange2")
	if err != nil {
		t.Fatal(err)
	}
	p := w.Build(60)
	cfg := cpu.DefaultConfig()
	gen, err := Generate(context.Background(), p, cfg, Plan{Interval: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Checkpoints) == 0 {
		t.Fatal("program too short for the plan")
	}
	for k, cp := range gen.Checkpoints {
		c, err := gen.RestoreCPU(cfg, p, k)
		if err != nil {
			t.Fatalf("restore %d: %v", k, err)
		}
		if _, err := c.RunContext(context.Background()); err != nil {
			t.Fatalf("restored core %d: %v", k, err)
		}
		if got, want := c.Stats.Committed, gen.Total-cp.Seq; got != want {
			t.Errorf("restored core %d committed %d instructions; want %d", k, got, want)
		}
	}
}
