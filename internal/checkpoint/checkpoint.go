// Package checkpoint generates, serializes, and restores mid-run core
// state, enabling interval-parallel capture: a cheap functional pass
// walks the program once, emitting a Snapshot every Interval committed
// instructions; workers then reconstruct a core from each checkpoint
// (cpu.Restore), run a cycle-accurate warmup window up to their
// segment boundary, and simulate their interval concurrently.
//
// Boundaries are counted in *committed instructions*, not cycles: the
// generation pass is functional and has no cycle clock, and committed
// instructions are the one coordinate the functional and cycle-level
// views share exactly (every committed-path instruction commits
// exactly once, in sequence order). A checkpoint for boundary B is
// taken Warmup instructions early, at B-Warmup, so the restored core
// reaches B with a cycle-accurately re-established pipeline, MSHRs,
// and timing state; the capture layer verifies convergence by
// fingerprint before trusting any stitched bytes (see
// internal/analysis).
package checkpoint

import (
	"context"
	"errors"

	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/program"
	"repro/internal/simerr"
)

// DefaultWarmup is the default cycle-accurate warmup window, in
// committed instructions, run from each checkpoint before its segment
// boundary. It comfortably exceeds the core's instruction window (a
// 192-entry ROB) and the longest structure-refill transient (a DRAM
// round trip is ~100 cycles ≈ a few hundred instructions at suite
// IPCs), which is what the warmup must heal: the functional warming
// pass mismodels only window-local effects (out-of-order data-cache
// access order, post-commit store drains, squash refetches).
const DefaultWarmup = 2048

// Plan sizes the checkpoint schedule.
type Plan struct {
	// Interval is the segment length in committed instructions.
	Interval uint64
	// Warmup is the warmup window in committed instructions (0 =
	// DefaultWarmup). It is clamped to Interval/2 so checkpoint k
	// stays strictly inside segment k-1.
	Warmup uint64
}

// Normalized returns the plan with defaults applied.
func (p Plan) Normalized() Plan {
	if p.Warmup == 0 {
		p.Warmup = DefaultWarmup
	}
	if p.Warmup > p.Interval/2 {
		p.Warmup = p.Interval / 2
	}
	return p
}

// Checkpoint is one restorable mid-run state.
type Checkpoint struct {
	// Seq is the commit boundary the snapshot sits at: Seq
	// instructions have committed (Snap.Arch.Seq == Seq). The segment
	// boundary it serves is Seq + the plan's warmup.
	Seq uint64
	// Snap is the quiescent core state.
	Snap *cpu.Snapshot
	// MemDelta holds the memory words changed since the previous
	// checkpoint (since reset for the first), sorted by address.
	// Applying deltas 0..k to a fresh image of the program's data
	// reconstructs memory at checkpoint k.
	MemDelta []emu.MemDelta
}

// Generation is the result of one functional pass.
type Generation struct {
	// Checkpoints holds one entry per interior boundary, in order.
	Checkpoints []*Checkpoint
	// Total is the program's total committed-instruction count.
	Total uint64
	// Plan is the normalized plan the pass ran under.
	Plan Plan
}

// Generate runs the functional-warming pass over the whole program and
// returns checkpoints at Seq = k*Interval - Warmup for k = 1, 2, ...
// Checkpoints whose segment would start at or beyond the program's end
// are dropped. Typed failures (runaway program, invalid opcode) are
// returned as errors.
func Generate(ctx context.Context, p *program.Program, cfg cpu.Config, plan Plan) (gen *Generation, err error) {
	defer func() {
		if v := recover(); v != nil {
			var se *simerr.Error
			if e, ok := v.(error); ok && errors.As(e, &se) {
				gen, err = nil, se
				return
			}
			//tealint:ignore nakedpanic re-raise of a foreign panic the simerr filter above did not claim
			panic(v)
		}
	}()
	plan = plan.Normalized()
	if plan.Interval < 2 {
		return nil, simerr.New(simerr.ErrInvalidConfig, simerr.Snapshot{Program: p.Name},
			"checkpoint: interval %d is too small", plan.Interval)
	}

	s := emu.NewStream(p)
	s.Memory().TrackDirty()
	w := cpu.NewWarmer(cfg)
	g := &Generation{Plan: plan}

	const ctxCheckInterval = 1 << 16
	next := plan.Interval - plan.Warmup
	var n uint64
	for {
		if n%ctxCheckInterval == 0 {
			if cause := context.Cause(ctx); cause != nil {
				return nil, simerr.Wrap(simerr.ErrCanceled, simerr.Snapshot{Program: p.Name, Seq: n},
					cause, "checkpoint generation canceled")
			}
		}
		d := s.Next()
		if d == nil {
			break
		}
		w.Observe(d)
		s.Release(d.Seq + 1)
		n++
		if n == next {
			g.Checkpoints = append(g.Checkpoints, &Checkpoint{
				Seq:      n,
				Snap:     w.Snapshot(s.ArchState()),
				MemDelta: s.Memory().TakeDirty(),
			})
			next += plan.Interval
		}
	}
	g.Total = n

	// Drop checkpoints whose segment boundary is at or past the end:
	// their segment would record nothing.
	for len(g.Checkpoints) > 0 {
		last := g.Checkpoints[len(g.Checkpoints)-1]
		if last.Seq+plan.Warmup < g.Total {
			break
		}
		g.Checkpoints = g.Checkpoints[:len(g.Checkpoints)-1]
	}
	return g, nil
}

// Boundary returns the segment boundary checkpoint k serves.
func (g *Generation) Boundary(k int) uint64 {
	return g.Checkpoints[k].Seq + g.Plan.Warmup
}

// RestoreCPU reconstructs a core at checkpoint k: a fresh memory image
// of the program's initial data with delta batches 0..k applied, and
// the snapshot's state installed over it.
func (g *Generation) RestoreCPU(cfg cpu.Config, p *program.Program, k int) (*cpu.CPU, error) {
	img := emu.NewMemory(p.Data)
	for i := 0; i <= k; i++ {
		img.Apply(g.Checkpoints[i].MemDelta)
	}
	return cpu.Restore(cfg, p, img, g.Checkpoints[k].Snap)
}
