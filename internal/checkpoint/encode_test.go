package checkpoint

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/branch"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/mem"
	"repro/internal/simerr"
	"repro/internal/workloads"
)

// realCheckpoint generates a checkpoint from an actual functional pass,
// so roundtrip and corruption tests run against representative data.
func realCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	w, err := workloads.ByName("deepsjeng")
	if err != nil {
		t.Fatal(err)
	}
	p := w.Build(100)
	gen, err := Generate(context.Background(), p, cpu.DefaultConfig(), Plan{Interval: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Checkpoints) == 0 {
		t.Fatal("program too short for the plan")
	}
	return gen.Checkpoints[len(gen.Checkpoints)-1]
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	cp := realCheckpoint(t)
	data := cp.Encode()
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(cp, got) {
		t.Error("decoded checkpoint differs from the original")
	}
	// Encoding must be deterministic: the same checkpoint always
	// serializes to the same bytes (content-addressed storage depends
	// on it).
	if string(cp.Encode()) != string(data) {
		t.Error("Encode is not deterministic")
	}
}

// TestDecodeCorruption pins the corruption contract: any truncation or
// bit flip of a serialized checkpoint must fail Decode with a typed
// *simerr.Error of kind ErrDecode — never a panic, never a silently
// wrong checkpoint (which would eventually surface as a wrong profile).
func TestDecodeCorruption(t *testing.T) {
	data := realCheckpoint(t).Encode()
	rng := rand.New(rand.NewSource(1))

	decodeMutant := func(name string, mut []byte) {
		t.Helper()
		defer func() {
			if v := recover(); v != nil {
				t.Errorf("%s: Decode panicked: %v", name, v)
			}
		}()
		cp, err := Decode(mut)
		if err == nil {
			t.Errorf("%s: corrupt checkpoint decoded successfully", name)
			return
		}
		if cp != nil {
			t.Errorf("%s: Decode returned both a checkpoint and an error", name)
		}
		var se *simerr.Error
		if !errors.As(err, &se) || !errors.Is(err, simerr.ErrDecode) {
			t.Errorf("%s: want typed ErrDecode, got %v", name, err)
		}
	}

	// Truncations: every prefix of the header region, then a sample of
	// longer prefixes.
	for n := 0; n < len(Magic)+1+8 && n < len(data); n++ {
		decodeMutant(fmt.Sprintf("truncate@%d", n), append([]byte(nil), data[:n]...))
	}
	for i := 0; i < 128; i++ {
		n := rng.Intn(len(data))
		decodeMutant(fmt.Sprintf("truncate@%d", n), append([]byte(nil), data[:n]...))
	}

	// Single-bit flips: header, digest trailer, and a body sample. The
	// integrity digest makes every one of them detectable.
	positions := []int{0, 1, 2, 3, 4, len(data) - 8, len(data) - 1}
	for i := 0; i < 256; i++ {
		positions = append(positions, rng.Intn(len(data)))
	}
	for _, pos := range positions {
		mut := append([]byte(nil), data...)
		mut[pos] ^= byte(1) << uint(rng.Intn(8))
		decodeMutant(fmt.Sprintf("bitflip@%d", pos), mut)
	}
}

// populatedCheckpoint builds a synthetic checkpoint in which every
// slice and table has at least one element, so the sensitivity walk
// below can reach every leaf field.
func populatedCheckpoint() *Checkpoint {
	cp := &Checkpoint{
		Seq: 7,
		Snap: &cpu.Snapshot{
			BTB:      []uint64{0x40},
			RAS:      []int{3},
			LastLine: 0x11,
		},
		MemDelta: []emu.MemDelta{{Addr: 0x1000, Val: 42}},
	}
	cp.Snap.Arch = emu.ArchState{PCIndex: 2, Seq: 7}
	cp.Snap.Arch.Regs[1] = 9
	cacheState := func(name string) mem.CacheState {
		return mem.CacheState{
			Name:  name,
			Stamp: 5,
			Lines: [][]mem.CacheLineState{{{Tag: 0x2, Valid: true, Dirty: true, LRU: 4}}},
		}
	}
	tlbState := func(name string) mem.TLBState {
		return mem.TLBState{
			Name:    name,
			Stamp:   3,
			Entries: [][]mem.TLBEntryState{{{Page: 0x6, Valid: true, LRU: 2}}},
		}
	}
	cp.Snap.Hier = mem.HierarchyState{
		L1I: cacheState("L1I"), L1D: cacheState("L1D"), LLC: cacheState("LLC"),
		ITLB: tlbState("ITLB"), DTLB: tlbState("DTLB"), L2TLB: tlbState("L2TLB"),
	}
	cp.Snap.Pred = branch.PredictorState{
		Bimodal: []int8{1},
		Tables:  [][]branch.TaggedEntryState{{{Tag: 0x9, Ctr: 1, Useful: 1}}},
		History: 0x5,
	}
	return cp
}

// TestEncodeSensitivity is the checkpoint analog of the capture-key
// reflection test: every leaf field reachable from a Checkpoint —
// through structs, pointers, slices, and arrays — must influence the
// encoded bytes. A field added to the architectural, memory-hierarchy,
// or predictor state structs without extending Encode/Decode shows up
// here as a new leaf whose mutation leaves the encoding unchanged, and
// fails the test by name.
func TestEncodeSensitivity(t *testing.T) {
	cp := populatedCheckpoint()
	base := string(cp.Encode())

	var walk func(path string, v reflect.Value)
	walk = func(path string, v reflect.Value) {
		switch v.Kind() {
		case reflect.Pointer:
			if v.IsNil() {
				t.Fatalf("%s: fixture leaves this nil; populate it", path)
			}
			walk(path, v.Elem())
		case reflect.Struct:
			for i := 0; i < v.NumField(); i++ {
				walk(path+"."+v.Type().Field(i).Name, v.Field(i))
			}
		case reflect.Slice, reflect.Array:
			if v.Len() == 0 {
				t.Fatalf("%s: fixture leaves this empty; populate it so element fields are checked", path)
			}
			walk(path+"[0]", v.Index(0))
		default:
			if !mutateLeaf(v) {
				t.Fatalf("%s: unsupported kind %s — extend mutateLeaf", path, v.Kind())
			}
			if got := string(cp.Encode()); got == base {
				t.Errorf("mutating %s did not change the encoding — field not serialized", path)
			}
			if !mutateBack(v) {
				t.Fatalf("%s: cannot restore", path)
			}
			if got := string(cp.Encode()); got != base {
				t.Fatalf("%s: mutation did not restore cleanly", path)
			}
		}
	}
	walk("Checkpoint", reflect.ValueOf(cp).Elem())
}

func mutateLeaf(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.String:
		v.SetString(v.String() + "x")
	default:
		return false
	}
	return true
}

func mutateBack(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() - 1)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() - 1)
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.String:
		s := v.String()
		v.SetString(s[:len(s)-1])
	default:
		return false
	}
	return true
}
