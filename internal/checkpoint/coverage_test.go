package checkpoint

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/branch"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/mem"
)

// TestStateCoverageManifest is the checkpoint layer's tripwire against
// silent staleness: every field of every simulator state struct —
// including unexported fields of other packages, which reflection can
// enumerate — must be classified below. Adding a field to the core,
// the memory hierarchy, the predictor, or the functional emulator
// without deciding its checkpoint story fails this test by name.
//
// The classes, and what each obligates:
//
//   - "snapshot":  durable state that survives a pipeline drain. It must
//     be captured by cpu.Snapshot (and serialized by Encode — the
//     encode-sensitivity test enforces that half) and restored by
//     cpu.Restore.
//   - "warmup":    transient pipeline/timing state that is empty or zero
//     at a quiescent commit boundary and is re-established by
//     the cycle-accurate warmup window. It must be covered by
//     cpu.Fingerprint's canonical state vector so the segment
//     chain can verify it reconverged.
//   - "config":    static configuration or program identity; equal on
//     both sides by construction (same RunConfig, same
//     program).
//   - "stats":     monotone counters with no forward influence on
//     simulation. cpu.Stats must remain reconstructible as
//     per-segment deltas (Stats.Sub/Add cover every field —
//     enforced here by classifying each field).
//   - "excluded:<reason>": everything else, with the reason inline.
//
// When this test fails for a new field: decide its class, wire it into
// Snapshot/Restore (snapshot), canonState (warmup), or Stats.Sub/Add
// (stats) as the class demands, then add it here.
var stateManifest = map[string]string{
	// ---- cpu.CPU ------------------------------------------------------
	"cpu.CPU.cfg":    "config",
	"cpu.CPU.prog":   "config",
	"cpu.CPU.stream": "nested",
	"cpu.CPU.hier":   "nested",
	"cpu.CPU.bp":     "nested",
	"cpu.CPU.probes": "excluded: observer list; the capture layer attaches its own probes to a restored core",
	"cpu.CPU.cycle":  "excluded: the local clock; every canonical stamp is cycle-relative, and stitching shifts segment clocks onto the global one",
	"cpu.CPU.rob":    "warmup",
	"cpu.CPU.lastWriter": "excluded: rename shortcut; commit nils it, squash rebuilds it from the ROB, " +
		"and a stale pointer reads as architecturally ready via the generation guard — see fingerprint.go",
	"cpu.CPU.iqInt":                "warmup",
	"cpu.CPU.iqMem":                "warmup",
	"cpu.CPU.iqFP":                 "warmup",
	"cpu.CPU.lq":                   "warmup",
	"cpu.CPU.sq":                   "warmup",
	"cpu.CPU.drainQ":               "warmup",
	"cpu.CPU.pendingLoads":         "warmup",
	"cpu.CPU.fetchBuf":             "warmup",
	"cpu.CPU.fetchNext":            "warmup",
	"cpu.CPU.fetchResume":          "warmup",
	"cpu.CPU.awaitBranch":          "warmup",
	"cpu.CPU.pendDRL1":             "warmup",
	"cpu.CPU.pendDRTLB":            "warmup",
	"cpu.CPU.lastLine":             "snapshot",
	"cpu.CPU.streamDry":            "warmup",
	"cpu.CPU.lastRef":              "warmup",
	"cpu.CPU.haveLast":             "warmup",
	"cpu.CPU.flushActive":          "warmup",
	"cpu.CPU.blockDispatch":        "warmup",
	"cpu.CPU.freeUOps":             "excluded: recycling pool; storage is fully reset on allocation",
	"cpu.CPU.squashScratch":        "excluded: per-call scratch buffer",
	"cpu.CPU.ras":                  "snapshot",
	"cpu.CPU.btb":                  "snapshot",
	"cpu.CPU.divBusyUntil":         "warmup",
	"cpu.CPU.fdivBusyUntil":        "warmup",
	"cpu.CPU.info":                 "excluded: per-cycle scratch reused across OnCycle calls",
	"cpu.CPU.Stats":                "stats",
	"cpu.CPU.MaxCycles":            "excluded: run guard; applies per core instance",
	"cpu.CPU.WatchdogCommitCycles": "excluded: run guard; applies per core instance",
	"cpu.CPU.lastCommitCycle":      "excluded: watchdog anchor, guard-only",
	"cpu.CPU.err":                  "excluded: terminal failure latch; a failed segment is discarded, never stitched",
	"cpu.CPU.SampleOverheadCycles": "config",
	"cpu.CPU.pendingOverhead":      "warmup",

	// ---- cpu.UOp (in-flight window; fully canonicalized per µop) ------
	"cpu.UOp.Dyn":           "warmup",
	"cpu.UOp.PSV":           "warmup",
	"cpu.UOp.FetchCycle":    "warmup",
	"cpu.UOp.DispatchCycle": "warmup",
	"cpu.UOp.IssueCycle":    "warmup",
	"cpu.UOp.CompleteCycle": "warmup",
	"cpu.UOp.CommitCycle":   "warmup",
	"cpu.UOp.dispatched":    "warmup",
	"cpu.UOp.issued":        "warmup",
	"cpu.UOp.completed":     "warmup",
	"cpu.UOp.committed":     "warmup",
	"cpu.UOp.squashed":      "warmup",
	"cpu.UOp.Mispredicted":  "warmup",
	"cpu.UOp.gen":           "excluded: pool-generation guard; canonState reads dependencies through it",
	"cpu.UOp.src1":          "warmup",
	"cpu.UOp.src2":          "warmup",
	"cpu.UOp.src1Gen":       "excluded: pool-generation guard; canonState reads dependencies through it",
	"cpu.UOp.src2Gen":       "excluded: pool-generation guard; canonState reads dependencies through it",
	"cpu.UOp.aguDone":       "warmup",
	"cpu.UOp.translated":    "warmup",
	"cpu.UOp.tlbDone":       "warmup",
	"cpu.UOp.valueFromSeq":  "warmup",
	"cpu.UOp.hasValue":      "warmup",
	"cpu.UOp.drainStarted":  "warmup",
	"cpu.UOp.drainDone":     "warmup",

	// ---- cpu.Stats (every field must stay a segment-summable counter) -
	"cpu.Stats.Cycles":      "stats",
	"cpu.Stats.Committed":   "stats",
	"cpu.Stats.StateCycles": "stats",
	"cpu.Stats.Mispredicts": "stats",
	"cpu.Stats.BTBMisses":   "stats",
	"cpu.Stats.Violations":  "stats",
	"cpu.Stats.Squashed":    "stats",
	"cpu.Stats.Flushes":     "stats",

	// ---- mem ----------------------------------------------------------
	"mem.Hierarchy.cfg":  "config",
	"mem.Hierarchy.l1i":  "nested",
	"mem.Hierarchy.l1d":  "nested",
	"mem.Hierarchy.llc":  "nested",
	"mem.Hierarchy.itlb": "nested",
	"mem.Hierarchy.dtlb": "nested",
	"mem.Hierarchy.walk": "nested",
	"mem.Hierarchy.dram": "nested",

	"mem.Cache.cfg":            "config",
	"mem.Cache.sets":           "snapshot",
	"mem.Cache.mshrs":          "warmup",
	"mem.Cache.stamp":          "snapshot",
	"mem.Cache.shift":          "config",
	"mem.Cache.setMsk":         "config",
	"mem.Cache.Accesses":       "stats",
	"mem.Cache.Misses":         "stats",
	"mem.Cache.MSHRFull":       "stats",
	"mem.Cache.FillLatencySum": "stats",
	"mem.Cache.PrimaryMisses":  "stats",

	"mem.line.tag":   "snapshot",
	"mem.line.valid": "snapshot",
	"mem.line.dirty": "snapshot",
	"mem.line.lru":   "snapshot",

	"mem.mshr.block": "warmup",
	"mem.mshr.ready": "warmup",

	"mem.TLB.cfg":      "config",
	"mem.TLB.sets":     "snapshot",
	"mem.TLB.ways":     "config",
	"mem.TLB.stamp":    "snapshot",
	"mem.TLB.Accesses": "stats",
	"mem.TLB.Misses":   "stats",

	"mem.tlbEntry.page":  "snapshot",
	"mem.tlbEntry.valid": "snapshot",
	"mem.tlbEntry.lru":   "snapshot",

	"mem.Walker.l2":    "nested",
	"mem.Walker.cfg":   "config",
	"mem.Walker.Walks": "stats",

	"mem.DRAM.cfg":      "config",
	"mem.DRAM.nextSlot": "warmup",
	"mem.DRAM.Reads":    "stats",
	"mem.DRAM.Writes":   "stats",

	// ---- branch -------------------------------------------------------
	"branch.Predictor.cfg":         "config",
	"branch.Predictor.bimodal":     "snapshot",
	"branch.Predictor.tables":      "snapshot",
	"branch.Predictor.history":     "snapshot",
	"branch.Predictor.Lookups":     "stats",
	"branch.Predictor.Mispredicts": "stats",

	"branch.taggedEntry.tag":    "snapshot",
	"branch.taggedEntry.ctr":    "snapshot",
	"branch.taggedEntry.useful": "snapshot",

	// ---- emu ----------------------------------------------------------
	"emu.Stream.prog":     "config",
	"emu.Stream.mem":      "nested",
	"emu.Stream.regs":     "snapshot",
	"emu.Stream.pcIndex":  "snapshot",
	"emu.Stream.seq":      "snapshot",
	"emu.Stream.done":     "snapshot",
	"emu.Stream.buf":      "warmup",
	"emu.Stream.bufBase":  "warmup",
	"emu.Stream.cursor":   "warmup",
	"emu.Stream.free":     "excluded: recycling pool; records are fully rewritten on delivery",
	"emu.Stream.MaxInsts": "excluded: run guard; applies per stream instance",

	"emu.Memory.words": "snapshot",
	"emu.Memory.dirty": "excluded: delta-tracking bookkeeping for checkpoint generation itself",

	// ---- emu.Inst (a pure function of program + sequence number) ------
	"emu.Inst.Static":    "excluded: re-derived by the functional stream from (program, seq)",
	"emu.Inst.Index":     "excluded: re-derived by the functional stream from (program, seq)",
	"emu.Inst.PC":        "excluded: re-derived by the functional stream from (program, seq)",
	"emu.Inst.Seq":       "excluded: re-derived by the functional stream from (program, seq)",
	"emu.Inst.MemAddr":   "excluded: re-derived by the functional stream from (program, seq)",
	"emu.Inst.Taken":     "excluded: re-derived by the functional stream from (program, seq)",
	"emu.Inst.NextIndex": "excluded: re-derived by the functional stream from (program, seq)",

	// ---- cpu.rob (ring buffer over canonicalized µops) ----------------
	"cpu.rob.buf":   "warmup",
	"cpu.rob.head":  "warmup",
	"cpu.rob.count": "warmup",
}

// stopTypes are reached during the walk but classified as a unit by the
// field that holds them (configuration, program identity, or API
// surface pinned by other tests), so their internals are not walked.
var stopTypes = map[string]bool{
	"cpu.Config":       true,
	"cpu.CycleInfo":    true, // per-cycle scratch; probe API pinned by trace-format tests
	"cpu.Ref":          true, // probe API surface pinned by trace-format tests
	"cpu.Stats":        true, // classified field-by-field above via the root walk
	"mem.Config":       true,
	"mem.CacheConfig":  true,
	"mem.TLBConfig":    true,
	"mem.DRAMConfig":   true,
	"mem.WalkerConfig": true,
	"branch.Config":    true,
	"program.Program":  true,
	"isa.Inst":         true,
	"simerr.Error":     true,
}

func TestStateCoverageManifest(t *testing.T) {
	roots := []reflect.Type{
		reflect.TypeOf(cpu.CPU{}),
		reflect.TypeOf(cpu.UOp{}),
		reflect.TypeOf(cpu.Stats{}),
		reflect.TypeOf(mem.Hierarchy{}),
		reflect.TypeOf(branch.Predictor{}),
		reflect.TypeOf(emu.Stream{}),
		reflect.TypeOf(emu.Memory{}),
	}

	seen := map[string]bool{}
	visited := map[reflect.Type]bool{}

	// elem unwraps pointers, slices, arrays, and map values down to the
	// underlying named type, if any.
	var elem func(t reflect.Type) reflect.Type
	elem = func(t reflect.Type) reflect.Type {
		switch t.Kind() {
		case reflect.Pointer, reflect.Slice, reflect.Array:
			return elem(t.Elem())
		case reflect.Map:
			return elem(t.Elem())
		}
		return t
	}

	var walk func(t reflect.Type)
	walk = func(rt reflect.Type) {
		if visited[rt] {
			return
		}
		visited[rt] = true
		name := rt.String()
		for i := 0; i < rt.NumField(); i++ {
			f := rt.Field(i)
			key := name + "." + f.Name
			seen[key] = true
			class, ok := stateManifest[key]
			if !ok {
				t.Errorf("unclassified simulator state field %s (type %s) — decide its checkpoint class "+
					"(snapshot / warmup / config / stats / excluded), wire it into Snapshot, canonState, or "+
					"Stats.Sub/Add as required, and add it to stateManifest", key, f.Type)
				continue
			}
			ft := elem(f.Type)
			if ft.Kind() != reflect.Struct || !strings.HasPrefix(ft.PkgPath(), "repro/internal/") {
				continue
			}
			if stopTypes[ft.String()] {
				continue
			}
			if class == "nested" || !visited[ft] {
				walk(ft)
			}
		}
	}
	for _, r := range roots {
		walk(r)
	}

	for key := range stateManifest {
		if !seen[key] {
			t.Errorf("stateManifest entry %s matches no field — the field was renamed or removed; update the manifest", key)
		}
	}
}
