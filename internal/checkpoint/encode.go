// Binary serialization of checkpoints. The format is a versioned,
// varint-packed stream with an FNV-1a integrity digest over everything
// that precedes it, so a truncated or bit-flipped snapshot fails
// decoding with a typed *simerr.Error (simerr.ErrDecode) instead of
// restoring a subtly wrong core — the same contract the v3 trace
// format honors, and the one the chaos harness enforces.
package checkpoint

import (
	"encoding/binary"

	"repro/internal/branch"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/mem"
	"repro/internal/simerr"
)

// Format constants.
const (
	// Magic identifies a serialized checkpoint ("TEAC"heckpoint).
	Magic = "TEAC"
	// FormatVersion is bumped on any encoding change.
	FormatVersion = 1
)

const (
	digestOffset uint64 = 14695981039346656037
	digestPrime  uint64 = 1099511628211
)

func digest(b []byte) uint64 {
	h := digestOffset
	for _, c := range b {
		h = (h ^ uint64(c)) * digestPrime
	}
	return h
}

type encoder struct{ b []byte }

func (e *encoder) u(v uint64)   { e.b = binary.AppendUvarint(e.b, v) }
func (e *encoder) i(v int64)    { e.b = binary.AppendVarint(e.b, v) }
func (e *encoder) str(s string) { e.u(uint64(len(s))); e.b = append(e.b, s...) }
func (e *encoder) flag(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}

func (e *encoder) cache(st mem.CacheState) {
	e.str(st.Name)
	e.u(st.Stamp)
	e.u(uint64(len(st.Lines)))
	for _, set := range st.Lines {
		e.u(uint64(len(set)))
		for _, l := range set {
			e.u(l.Tag)
			e.flag(l.Valid)
			e.flag(l.Dirty)
			e.u(l.LRU)
		}
	}
}

func (e *encoder) tlb(st mem.TLBState) {
	e.str(st.Name)
	e.u(st.Stamp)
	e.u(uint64(len(st.Entries)))
	for _, set := range st.Entries {
		e.u(uint64(len(set)))
		for _, en := range set {
			e.u(en.Page)
			e.flag(en.Valid)
			e.u(en.LRU)
		}
	}
}

// Encode serializes the checkpoint.
func (c *Checkpoint) Encode() []byte {
	e := &encoder{b: make([]byte, 0, 1<<16)}
	e.b = append(e.b, Magic...)
	e.b = append(e.b, FormatVersion)
	e.u(c.Seq)

	// Architectural state.
	for _, r := range c.Snap.Arch.Regs {
		e.u(r)
	}
	e.i(int64(c.Snap.Arch.PCIndex))
	e.u(c.Snap.Arch.Seq)

	// Front-end durable state.
	e.u(c.Snap.LastLine)
	e.u(uint64(len(c.Snap.RAS)))
	for _, idx := range c.Snap.RAS {
		e.i(int64(idx))
	}
	e.u(uint64(len(c.Snap.BTB)))
	for _, pc := range c.Snap.BTB {
		e.u(pc)
	}

	// Memory hierarchy.
	e.cache(c.Snap.Hier.L1I)
	e.cache(c.Snap.Hier.L1D)
	e.cache(c.Snap.Hier.LLC)
	e.tlb(c.Snap.Hier.ITLB)
	e.tlb(c.Snap.Hier.DTLB)
	e.tlb(c.Snap.Hier.L2TLB)

	// Predictor.
	e.u(c.Snap.Pred.History)
	e.u(uint64(len(c.Snap.Pred.Bimodal)))
	for _, ctr := range c.Snap.Pred.Bimodal {
		e.b = append(e.b, byte(ctr))
	}
	e.u(uint64(len(c.Snap.Pred.Tables)))
	for _, t := range c.Snap.Pred.Tables {
		e.u(uint64(len(t)))
		for _, en := range t {
			e.u(uint64(en.Tag))
			e.b = append(e.b, byte(en.Ctr), en.Useful)
		}
	}

	// Memory deltas.
	e.u(uint64(len(c.MemDelta)))
	for _, d := range c.MemDelta {
		e.u(d.Addr)
		e.u(d.Val)
	}

	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], digest(e.b))
	return append(e.b, sum[:]...)
}

type decoder struct {
	b   []byte
	pos int
	err *simerr.Error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = simerr.New(simerr.ErrDecode, simerr.Snapshot{}, "checkpoint: "+format, args...)
	}
}

func (d *decoder) u() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		d.fail("truncated varint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) i() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.pos:])
	if n <= 0 {
		d.fail("truncated varint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.b) {
		d.fail("truncated at offset %d", d.pos)
		return 0
	}
	c := d.b[d.pos]
	d.pos++
	return c
}

func (d *decoder) flag() bool { return d.byte() != 0 }

func (d *decoder) str() string {
	n := d.u()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.pos) {
		d.fail("string length %d exceeds remaining %d bytes", n, len(d.b)-d.pos)
		return ""
	}
	s := string(d.b[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

// count validates a collection length against the bytes that remain,
// assuming at least min bytes per element, so a corrupt length cannot
// drive allocation or a long loop.
func (d *decoder) count(min int) int {
	n := d.u()
	if d.err != nil {
		return 0
	}
	if min < 1 {
		min = 1
	}
	if n > uint64((len(d.b)-d.pos)/min+1) {
		d.fail("count %d exceeds remaining %d bytes", n, len(d.b)-d.pos)
		return 0
	}
	return int(n)
}

func (d *decoder) cache() mem.CacheState {
	st := mem.CacheState{Name: d.str(), Stamp: d.u()}
	nsets := d.count(4)
	st.Lines = make([][]mem.CacheLineState, 0, nsets)
	for i := 0; i < nsets && d.err == nil; i++ {
		ways := d.count(4)
		set := make([]mem.CacheLineState, 0, ways)
		for j := 0; j < ways && d.err == nil; j++ {
			set = append(set, mem.CacheLineState{
				Tag: d.u(), Valid: d.flag(), Dirty: d.flag(), LRU: d.u(),
			})
		}
		st.Lines = append(st.Lines, set)
	}
	return st
}

func (d *decoder) tlb() mem.TLBState {
	st := mem.TLBState{Name: d.str(), Stamp: d.u()}
	nsets := d.count(3)
	st.Entries = make([][]mem.TLBEntryState, 0, nsets)
	for i := 0; i < nsets && d.err == nil; i++ {
		ways := d.count(3)
		set := make([]mem.TLBEntryState, 0, ways)
		for j := 0; j < ways && d.err == nil; j++ {
			set = append(set, mem.TLBEntryState{Page: d.u(), Valid: d.flag(), LRU: d.u()})
		}
		st.Entries = append(st.Entries, set)
	}
	return st
}

// Decode parses a serialized checkpoint, verifying the magic, version,
// and integrity digest. Every failure is a typed *simerr.Error of kind
// simerr.ErrDecode.
func Decode(data []byte) (*Checkpoint, error) {
	if len(data) < len(Magic)+1+8 {
		return nil, simerr.New(simerr.ErrDecode, simerr.Snapshot{},
			"checkpoint: %d bytes is too short for a checkpoint", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, simerr.New(simerr.ErrDecode, simerr.Snapshot{}, "checkpoint: bad magic")
	}
	if data[len(Magic)] != FormatVersion {
		return nil, simerr.New(simerr.ErrDecode, simerr.Snapshot{},
			"checkpoint: unsupported version %d (want %d)", data[len(Magic)], FormatVersion)
	}
	payload, sum := data[:len(data)-8], data[len(data)-8:]
	if binary.LittleEndian.Uint64(sum) != digest(payload) {
		return nil, simerr.New(simerr.ErrDecode, simerr.Snapshot{}, "checkpoint: integrity digest mismatch")
	}

	d := &decoder{b: payload, pos: len(Magic) + 1}
	c := &Checkpoint{Snap: &cpu.Snapshot{}}
	c.Seq = d.u()

	for i := range c.Snap.Arch.Regs {
		c.Snap.Arch.Regs[i] = d.u()
	}
	c.Snap.Arch.PCIndex = int(d.i())
	c.Snap.Arch.Seq = d.u()

	c.Snap.LastLine = d.u()
	nras := d.count(1)
	for i := 0; i < nras && d.err == nil; i++ {
		c.Snap.RAS = append(c.Snap.RAS, int(d.i()))
	}
	nbtb := d.count(1)
	if nbtb > 0 {
		c.Snap.BTB = make([]uint64, 0, nbtb)
		for i := 0; i < nbtb && d.err == nil; i++ {
			c.Snap.BTB = append(c.Snap.BTB, d.u())
		}
	}

	c.Snap.Hier.L1I = d.cache()
	c.Snap.Hier.L1D = d.cache()
	c.Snap.Hier.LLC = d.cache()
	c.Snap.Hier.ITLB = d.tlb()
	c.Snap.Hier.DTLB = d.tlb()
	c.Snap.Hier.L2TLB = d.tlb()

	c.Snap.Pred.History = d.u()
	nbim := d.count(1)
	c.Snap.Pred.Bimodal = make([]int8, 0, nbim)
	for i := 0; i < nbim && d.err == nil; i++ {
		c.Snap.Pred.Bimodal = append(c.Snap.Pred.Bimodal, int8(d.byte()))
	}
	ntab := d.count(1)
	c.Snap.Pred.Tables = make([][]branch.TaggedEntryState, 0, ntab)
	for i := 0; i < ntab && d.err == nil; i++ {
		nent := d.count(3)
		t := make([]branch.TaggedEntryState, 0, nent)
		for j := 0; j < nent && d.err == nil; j++ {
			tag := d.u()
			if tag > 1<<32-1 {
				d.fail("predictor tag %d overflows 32 bits", tag)
				break
			}
			t = append(t, branch.TaggedEntryState{Tag: uint32(tag), Ctr: int8(d.byte()), Useful: d.byte()})
		}
		c.Snap.Pred.Tables = append(c.Snap.Pred.Tables, t)
	}

	ndelta := d.count(2)
	if ndelta > 0 {
		c.MemDelta = make([]emu.MemDelta, 0, ndelta)
	}
	for i := 0; i < ndelta && d.err == nil; i++ {
		c.MemDelta = append(c.MemDelta, emu.MemDelta{Addr: d.u(), Val: d.u()})
	}

	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(payload) {
		return nil, simerr.New(simerr.ErrDecode, simerr.Snapshot{},
			"checkpoint: %d trailing bytes after payload", len(payload)-d.pos)
	}
	if c.Snap.Arch.Seq != c.Seq {
		return nil, simerr.New(simerr.ErrDecode, simerr.Snapshot{},
			"checkpoint: boundary seq %d disagrees with architectural seq %d", c.Seq, c.Snap.Arch.Seq)
	}
	if c.Snap.Arch.PCIndex < -1 {
		return nil, simerr.New(simerr.ErrDecode, simerr.Snapshot{},
			"checkpoint: negative PC index %d", c.Snap.Arch.PCIndex)
	}
	return c, nil
}
