// Package journal is the durability layer under the profiling service:
// an fsync'd, append-only, checksummed write-ahead log of job state
// transitions plus a directory of content-verified result files. The
// service (internal/serve) appends one record per lifecycle transition
// — submitted, running, cancel-requested, done/failed/canceled — and
// on startup replays the log to restore terminal jobs (result bytes
// verified against their journaled SHA-256, so recovered profiles are
// byte-identical to what the pre-crash server served) and to re-enqueue
// jobs a crash interrupted.
//
// The WAL borrows the framing discipline of the checkpoint and trace
// codecs: a magic+version header, then length-prefixed records each
// sealed by an FNV-1a digest. Recovery distinguishes the two ways a
// log can be damaged:
//
//   - A torn tail — the file ends inside a record, the signature of a
//     crash mid-append. The tail is truncated (and reported), because
//     an append that never completed is an event that never happened;
//     the job it described is still covered by its earlier records.
//   - Mid-stream corruption — a record's bytes are all present but its
//     digest does not match (bit rot, a corrupted sector). That is not
//     a crash artifact; replay fails with a typed *simerr.Error
//     (simerr.ErrDecode) so the operator decides, rather than the
//     service silently dropping history.
//
// All I/O goes through the FS interface (fs.go) so the chaos harness
// can inject torn writes, bit flips, ENOSPC, and EIO underneath the
// real code paths.
package journal

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/simerr"
)

// WAL framing constants.
const (
	// Magic opens the WAL file ("TEA J"ournal).
	Magic = "TEAJ"
	// FormatVersion is bumped on any framing or record-schema change;
	// a mismatched version fails replay typed rather than guessing.
	FormatVersion = 1
	// walName is the WAL file inside the journal directory.
	walName = "wal.teaj"
	// resultsDir holds the per-(job, technique) result files.
	resultsDir = "results"
)

// FNV-1a, the same digest the checkpoint codec uses.
const (
	digestOffset uint64 = 14695981039346656037
	digestPrime  uint64 = 1099511628211
)

func digest(b []byte) uint64 {
	h := digestOffset
	for _, c := range b {
		h = (h ^ uint64(c)) * digestPrime
	}
	return h
}

// Record is one journaled event. The journal is deliberately ignorant
// of job semantics: Type and Data are the service layer's contract
// (internal/serve defines the types it writes and how replay folds
// them); the journal guarantees only ordering, durability, and
// integrity.
type Record struct {
	// Type discriminates the event ("submitted", "running", ...).
	Type string `json:"type"`
	// JobID is the job the event belongs to.
	JobID string `json:"job"`
	// TimeUnixMs timestamps the event (informational; replay does not
	// depend on it).
	TimeUnixMs int64 `json:"t_ms,omitempty"`
	// Data is the type-specific payload, owned by the writer.
	Data json.RawMessage `json:"data,omitempty"`
}

// ResultRef points a journal record at a result file: the file's base
// name under results/, its size, and the SHA-256 of its contents. A
// recovered result is served only if all three match — a missing or
// silently rewritten file surfaces as a typed failure, never as wrong
// bytes.
type ResultRef struct {
	File   string `json:"file"`
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

// Recovery reports what replay found.
type Recovery struct {
	// Records are the intact records in append order.
	Records []Record
	// TornBytes is the size of the truncated torn tail (0 when the log
	// ended cleanly).
	TornBytes int64
	// TornOffset is the file offset the log was truncated to when
	// TornBytes > 0.
	TornOffset int64
}

// Journal is an open write-ahead log. Append is safe for concurrent
// use; one Journal owns its directory.
type Journal struct {
	dir string
	fs  FS

	mu   sync.Mutex
	file File
}

// Open prepares dir (created if absent), replays the existing WAL, and
// returns the journal ready for appends plus the recovery report. A
// torn tail is truncated and reported in the Recovery; mid-stream
// corruption, an alien file, or an unsupported version fail with a
// typed *simerr.Error and no Journal.
func Open(dir string, fs FS) (*Journal, *Recovery, error) {
	if fs == nil {
		fs = OSFS{}
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, err
	}
	if err := fs.MkdirAll(filepath.Join(dir, resultsDir)); err != nil {
		return nil, nil, err
	}
	walPath := filepath.Join(dir, walName)

	rec := &Recovery{}
	intact := int64(0) // bytes of WAL proven good; < header size means the header must be (re)written
	exists, err := fs.Stat(walPath)
	if err != nil {
		return nil, nil, err
	}
	if exists {
		data, err := fs.ReadFile(walPath)
		if err != nil {
			return nil, nil, err
		}
		keep, err := replay(data, rec)
		if err != nil {
			return nil, nil, err
		}
		intact = keep
		if keep < int64(len(data)) {
			rec.TornBytes = int64(len(data)) - keep
			rec.TornOffset = keep
			if err := fs.Truncate(walPath, keep); err != nil {
				return nil, nil, err
			}
		}
	}

	f, err := fs.OpenAppend(walPath)
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{dir: dir, fs: fs, file: f}
	if intact < int64(len(Magic)+1) {
		hdr := append([]byte(Magic), FormatVersion)
		if _, err := j.file.Write(hdr); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := j.file.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return j, rec, nil
}

// replay scans the WAL bytes, appending intact records to rec and
// returning the byte offset up to which the log is intact. A file that
// ends mid-header or mid-record returns the torn offset; corruption
// with all bytes present returns a typed error.
func replay(data []byte, rec *Recovery) (keep int64, err error) {
	hdr := len(Magic) + 1
	if len(data) < hdr {
		// A crash during journal creation: the header itself is torn.
		// Only a strict prefix of the header is a torn artifact; any
		// other bytes mean this is not our file.
		if len(data) == 0 || strings.HasPrefix(Magic, string(data[:min(len(data), len(Magic))])) {
			return 0, nil
		}
		return 0, simerr.New(simerr.ErrDecode, simerr.Snapshot{},
			"journal: %d-byte file is not a TEA journal", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return 0, simerr.New(simerr.ErrDecode, simerr.Snapshot{}, "journal: bad magic")
	}
	if data[len(Magic)] != FormatVersion {
		return 0, simerr.New(simerr.ErrDecode, simerr.Snapshot{},
			"journal: unsupported version %d (want %d)", data[len(Magic)], FormatVersion)
	}

	pos := hdr
	for pos < len(data) {
		n, w := binary.Uvarint(data[pos:])
		if w == 0 {
			return int64(pos), nil // varint ran off the end: torn tail
		}
		if w < 0 {
			return 0, simerr.New(simerr.ErrDecode, simerr.Snapshot{},
				"journal: overlong record length at offset %d", pos)
		}
		body := pos + w
		if n > uint64(len(data)-body) || uint64(len(data)-body)-n < 8 {
			return int64(pos), nil // payload or digest missing: torn tail
		}
		payload := data[body : body+int(n)]
		sum := binary.LittleEndian.Uint64(data[body+int(n):])
		if sum != digest(payload) {
			return 0, simerr.New(simerr.ErrDecode, simerr.Snapshot{},
				"journal: record digest mismatch at offset %d — mid-stream corruption, not a torn tail", pos)
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			return 0, simerr.Wrap(simerr.ErrDecode, simerr.Snapshot{}, err,
				"journal: record at offset %d fails to parse", pos)
		}
		rec.Records = append(rec.Records, r)
		pos = body + int(n) + 8
	}
	return int64(pos), nil
}

// Append journals one record durably: frame, single write, fsync. On
// error the caller must assume the record did not commit (a torn tail
// from a failed append is repaired by the next Open); the journal
// remains open — whether to keep trying or degrade is the caller's
// policy.
func (j *Journal) Append(r Record) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return simerr.Wrap(simerr.ErrInternal, simerr.Snapshot{}, err,
			"journal: encoding %s record for job %s", r.Type, r.JobID)
	}
	frame := make([]byte, 0, binary.MaxVarintLen64+len(payload)+8)
	frame = binary.AppendUvarint(frame, uint64(len(payload)))
	frame = append(frame, payload...)
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], digest(payload))
	frame = append(frame, sum[:]...)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.file == nil {
		return simerr.New(simerr.ErrIO, simerr.Snapshot{}, "journal: closed")
	}
	if _, err := j.file.Write(frame); err != nil {
		return err
	}
	return j.file.Sync()
}

// WriteResult persists one result payload (e.g. a technique's profile
// bytes) atomically: temp file, fsync, rename. The returned ResultRef
// is what the caller journals; ReadResult later verifies against it.
func (j *Journal) WriteResult(jobID, name string, data []byte) (ResultRef, error) {
	base := sanitize(jobID) + "-" + sanitize(name) + ".bin"
	final := filepath.Join(j.dir, resultsDir, base)
	tmp := final + ".tmp"
	if err := j.fs.WriteFile(tmp, data); err != nil {
		return ResultRef{}, err
	}
	if err := j.fs.Rename(tmp, final); err != nil {
		// Best-effort cleanup; the rename failure is the real error.
		j.fs.Remove(tmp)
		return ResultRef{}, err
	}
	sum := sha256.Sum256(data)
	return ResultRef{File: base, Bytes: int64(len(data)), SHA256: hex.EncodeToString(sum[:])}, nil
}

// ReadResult loads and verifies a journaled result. A read failure is
// ErrIO; a size or digest mismatch — including a ref whose File tries
// to escape the results directory — is ErrDecode. Either way the
// caller gets a typed error, never unverified bytes.
func (j *Journal) ReadResult(ref ResultRef) ([]byte, error) {
	if ref.File == "" || ref.File != filepath.Base(ref.File) {
		return nil, simerr.New(simerr.ErrDecode, simerr.Snapshot{},
			"journal: result ref %q is not a plain file name", ref.File)
	}
	data, err := j.fs.ReadFile(filepath.Join(j.dir, resultsDir, ref.File))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != ref.Bytes {
		return nil, simerr.New(simerr.ErrDecode, simerr.Snapshot{Detail: ref.File},
			"journal: result %s is %d bytes, journal says %d", ref.File, len(data), ref.Bytes)
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != ref.SHA256 {
		return nil, simerr.New(simerr.ErrDecode, simerr.Snapshot{Detail: ref.File},
			"journal: result %s fails its SHA-256 check", ref.File)
	}
	return data, nil
}

// Dir returns the journal's root directory.
func (j *Journal) Dir() string { return j.dir }

// Close releases the WAL append handle. Further Appends fail typed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.file == nil {
		return nil
	}
	err := j.file.Close()
	j.file = nil
	return err
}

// WALPath returns the WAL file location under dir — shared with the
// crash-recovery smoke and the -recover=false rotation in cmd/teaserve.
func WALPath(dir string) string { return filepath.Join(dir, walName) }

// sanitize keeps journal-derived file names to a safe alphabet; job
// IDs and technique names are server-generated, so this is a backstop,
// not an escape hatch.
func sanitize(s string) string {
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			b.WriteRune(c)
		default:
			b.WriteRune('_')
		}
	}
	return b.String()
}
