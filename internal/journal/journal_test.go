package journal

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/simerr"
)

func mustOpen(t *testing.T, dir string) (*Journal, *Recovery) {
	t.Helper()
	j, rec, err := Open(dir, OSFS{})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return j, rec
}

func appendRec(t *testing.T, j *Journal, typ, job string, data any) {
	t.Helper()
	var raw json.RawMessage
	if data != nil {
		b, err := json.Marshal(data)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		raw = b
	}
	if err := j.Append(Record{Type: typ, JobID: job, TimeUnixMs: 42, Data: raw}); err != nil {
		t.Fatalf("Append(%s/%s): %v", typ, job, err)
	}
}

// A brand-new journal opens empty, and a reopened empty journal stays
// empty — the empty-journal recovery edge case.
func TestOpenEmpty(t *testing.T) {
	dir := t.TempDir()
	j, rec := mustOpen(t, dir)
	if len(rec.Records) != 0 || rec.TornBytes != 0 {
		t.Fatalf("fresh journal recovered %d records, %d torn bytes", len(rec.Records), rec.TornBytes)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, rec2 := mustOpen(t, dir)
	defer j2.Close()
	if len(rec2.Records) != 0 || rec2.TornBytes != 0 {
		t.Fatalf("reopened empty journal recovered %d records, %d torn bytes", len(rec2.Records), rec2.TornBytes)
	}
}

// An existing zero-byte WAL (crash between create and header write)
// must be repaired into a working journal, not left headerless.
func TestOpenZeroByteWAL(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(WALPath(dir), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	j, rec := mustOpen(t, dir)
	if len(rec.Records) != 0 {
		t.Fatalf("zero-byte WAL recovered %d records", len(rec.Records))
	}
	appendRec(t, j, "submitted", "j-000001", nil)
	j.Close()

	_, rec2 := mustOpen(t, dir)
	if len(rec2.Records) != 1 {
		t.Fatalf("after repair want 1 record, got %d", len(rec2.Records))
	}
}

// Records written before a clean close replay in order with payloads
// intact.
func TestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	appendRec(t, j, "submitted", "j-000001", map[string]string{"tenant": "acme"})
	appendRec(t, j, "running", "j-000001", nil)
	appendRec(t, j, "done", "j-000001", map[string]int{"profiles": 2})
	j.Close()

	_, rec := mustOpen(t, dir)
	if len(rec.Records) != 3 {
		t.Fatalf("want 3 records, got %d", len(rec.Records))
	}
	wantTypes := []string{"submitted", "running", "done"}
	for i, r := range rec.Records {
		if r.Type != wantTypes[i] || r.JobID != "j-000001" {
			t.Fatalf("record %d = %s/%s, want %s/j-000001", i, r.Type, r.JobID, wantTypes[i])
		}
	}
	var payload map[string]string
	if err := json.Unmarshal(rec.Records[0].Data, &payload); err != nil || payload["tenant"] != "acme" {
		t.Fatalf("payload roundtrip: %v / %v", payload, err)
	}
}

// A torn final record — the crash-mid-append signature — is truncated
// and reported; the intact prefix survives and the journal keeps
// working.
func TestTornFinalRecordTruncated(t *testing.T) {
	for _, cut := range []int{1, 5, 9} { // inside varint/payload/digest territory
		dir := t.TempDir()
		j, _ := mustOpen(t, dir)
		appendRec(t, j, "submitted", "j-000001", nil)
		appendRec(t, j, "done", "j-000001", nil)
		j.Close()

		wal := WALPath(dir)
		data, err := os.ReadFile(wal)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(wal, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}

		j2, rec := mustOpen(t, dir)
		if len(rec.Records) != 1 || rec.Records[0].Type != "submitted" {
			t.Fatalf("cut=%d: want the 1 intact record, got %+v", cut, rec.Records)
		}
		if rec.TornBytes == 0 {
			t.Fatalf("cut=%d: torn tail not reported", cut)
		}
		// The repair is durable: appends after truncation land cleanly.
		appendRec(t, j2, "done", "j-000001", nil)
		j2.Close()
		_, rec3 := mustOpen(t, dir)
		if len(rec3.Records) != 2 || rec3.TornBytes != 0 {
			t.Fatalf("cut=%d: post-repair replay got %d records, %d torn bytes",
				cut, len(rec3.Records), rec3.TornBytes)
		}
	}
}

// A bit flip in a fully-present record is mid-stream corruption, not a
// torn tail: Open must fail with a typed decode error, not truncate
// history or return garbage.
func TestMidStreamCorruptionFailsTyped(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	appendRec(t, j, "submitted", "j-000001", nil)
	appendRec(t, j, "done", "j-000001", nil)
	j.Close()

	wal := WALPath(dir)
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside the first record's payload (well past the
	// 5-byte header and length varint).
	data[10] ^= 0x40
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(dir, OSFS{})
	if err == nil {
		t.Fatal("Open accepted a bit-flipped record")
	}
	if !errors.Is(err, simerr.ErrDecode) {
		t.Fatalf("corruption error = %v, want simerr.ErrDecode", err)
	}
	var se *simerr.Error
	if !errors.As(err, &se) {
		t.Fatalf("corruption error is not a *simerr.Error: %v", err)
	}
}

// A file that is not a TEA journal (bad magic / bad version) fails
// typed instead of being silently clobbered.
func TestAlienFileRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(WALPath(dir), []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(dir, OSFS{})
	if !errors.Is(err, simerr.ErrDecode) {
		t.Fatalf("alien file error = %v, want simerr.ErrDecode", err)
	}

	dir2 := t.TempDir()
	hdr := append([]byte(Magic), 99) // future version
	if err := os.WriteFile(WALPath(dir2), hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(dir2, OSFS{})
	if !errors.Is(err, simerr.ErrDecode) {
		t.Fatalf("future-version error = %v, want simerr.ErrDecode", err)
	}
}

// Result files roundtrip byte-identically and verify against their
// journaled ref.
func TestResultRoundtrip(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	defer j.Close()

	payload := []byte(`{"profile":"bytes"}`)
	ref, err := j.WriteResult("j-000001", "tea", payload)
	if err != nil {
		t.Fatalf("WriteResult: %v", err)
	}
	got, err := j.ReadResult(ref)
	if err != nil {
		t.Fatalf("ReadResult: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("result bytes changed: %q vs %q", got, payload)
	}
}

// A missing result file is a typed I/O failure; a corrupted one is a
// typed decode failure; a ref that tries to escape results/ is
// rejected. None of them yield unverified bytes.
func TestResultVerification(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	defer j.Close()

	ref, err := j.WriteResult("j-000002", "fbi", []byte("original bytes"))
	if err != nil {
		t.Fatalf("WriteResult: %v", err)
	}

	// Corrupt the file on disk.
	path := filepath.Join(dir, "results", ref.File)
	if err := os.WriteFile(path, []byte("original bytez"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := j.ReadResult(ref); !errors.Is(err, simerr.ErrDecode) {
		t.Fatalf("corrupt result error = %v, want simerr.ErrDecode", err)
	}

	// Remove it entirely.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := j.ReadResult(ref); !errors.Is(err, simerr.ErrIO) {
		t.Fatalf("missing result error = %v, want simerr.ErrIO", err)
	}

	// Path traversal in a (hypothetically corrupted) ref.
	bad := ref
	bad.File = "../wal.teaj"
	if _, err := j.ReadResult(bad); !errors.Is(err, simerr.ErrDecode) {
		t.Fatalf("traversal ref error = %v, want simerr.ErrDecode", err)
	}
}

// Append on a closed journal fails typed rather than panicking.
func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	j.Close()
	err := j.Append(Record{Type: "submitted", JobID: "j-000003"})
	if !errors.Is(err, simerr.ErrIO) {
		t.Fatalf("append-after-close error = %v, want simerr.ErrIO", err)
	}
}
