// Filesystem abstraction under the journal. Every byte the journal
// moves — WAL appends, result files, recovery reads — goes through the
// FS interface, so the fault-injection harness (internal/faultinject)
// can stand in a filesystem that tears writes, flips bits, runs out of
// space, or returns EIO, and the recovery and degraded-mode contracts
// can be proven rather than assumed. The production implementation is
// OSFS, a thin wrapper over package os that adds two things: fsync
// discipline (WriteFile syncs before close; File exposes Sync for the
// WAL's append-then-sync protocol) and typed errors (every failure is
// a *simerr.Error of kind simerr.ErrIO, the signal the service layer
// maps to memory-only degradation).
package journal

import (
	"io"
	"os"

	"repro/internal/simerr"
)

// FS is the filesystem surface the journal requires. Implementations
// must be safe for concurrent use by independent operations; the
// journal itself serializes writes to any single file.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// WriteFile writes data to name, replacing it, and syncs the file
	// before returning. It need not be atomic — callers that require
	// atomicity write a temp name and Rename.
	WriteFile(name string, data []byte) error
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name to size bytes (the torn-tail repair).
	Truncate(name string, size int64) error
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Stat reports whether name exists.
	Stat(name string) (exists bool, err error)
}

// File is an append handle: writes land at the end, Sync makes them
// durable.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OSFS is the production FS over package os. The zero value is ready.
type OSFS struct{}

// wrapIO types a filesystem failure; nil stays nil so call sites can
// wrap unconditionally.
func wrapIO(op, name string, err error) error {
	if err == nil {
		return nil
	}
	return simerr.Wrap(simerr.ErrIO, simerr.Snapshot{Detail: name}, err, "%s %s", op, name)
}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error {
	return wrapIO("mkdir", dir, os.MkdirAll(dir, 0o755))
}

// ReadFile implements FS. A missing file is reported as ErrIO wrapping
// the os error, so callers can still errors.Is(err, os.ErrNotExist).
func (OSFS) ReadFile(name string) ([]byte, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, wrapIO("read", name, err)
	}
	return data, nil
}

// WriteFile implements FS: create/replace, write, fsync, close.
func (OSFS) WriteFile(name string, data []byte) error {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return wrapIO("create", name, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return wrapIO("write", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return wrapIO("sync", name, err)
	}
	return wrapIO("close", name, f.Close())
}

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error {
	return wrapIO("rename", oldname, os.Rename(oldname, newname))
}

// Remove implements FS.
func (OSFS) Remove(name string) error {
	return wrapIO("remove", name, os.Remove(name))
}

// Truncate implements FS.
func (OSFS) Truncate(name string, size int64) error {
	return wrapIO("truncate", name, os.Truncate(name, size))
}

// Stat implements FS.
func (OSFS) Stat(name string) (bool, error) {
	_, err := os.Stat(name)
	if err == nil {
		return true, nil
	}
	if os.IsNotExist(err) {
		return false, nil
	}
	return false, wrapIO("stat", name, err)
}

// osFile adapts *os.File to File with typed errors.
type osFile struct {
	f    *os.File
	name string
}

func (o *osFile) Write(p []byte) (int, error) {
	n, err := o.f.Write(p)
	return n, wrapIO("append", o.name, err)
}

func (o *osFile) Sync() error  { return wrapIO("sync", o.name, o.f.Sync()) }
func (o *osFile) Close() error { return wrapIO("close", o.name, o.f.Close()) }

// OpenAppend implements FS.
func (OSFS) OpenAppend(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, wrapIO("open", name, err)
	}
	return &osFile{f: f, name: name}, nil
}
