package workloads

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/emu"
	"repro/internal/events"
	"repro/internal/program"
)

// profile runs the program under the golden reference and returns the
// application-level cycle stack plus core stats.
func profile(t *testing.T, p *program.Program) (map[events.PSV]float64, *cpu.Stats) {
	t.Helper()
	c := cpu.New(cpu.DefaultConfig(), p)
	g := core.NewGolden(c)
	c.Attach(g)
	st := c.Run()
	return g.Profile().Application(), st
}

// share returns the fraction of attributed cycles whose signature
// contains the event.
func share(app map[events.PSV]float64, e events.Event) float64 {
	var hit, total float64
	for sig, v := range app {
		total += v
		if sig.Has(e) {
			hit += v
		}
	}
	if total == 0 {
		return 0
	}
	return hit / total
}

func TestSuiteIsCompleteAndBuildable(t *testing.T) {
	all := All()
	if len(all) < 10 {
		t.Fatalf("suite has %d benchmarks, want a broad set", len(all))
	}
	seen := map[string]bool{}
	for _, w := range all {
		if seen[w.Name] {
			t.Errorf("duplicate benchmark %q", w.Name)
		}
		seen[w.Name] = true
		if w.Behavior == "" || w.DefaultIters <= 0 {
			t.Errorf("benchmark %q metadata incomplete", w.Name)
		}
		p := w.Build(50)
		if n := emu.Run(p); n == 0 {
			t.Errorf("benchmark %q executes zero instructions", w.Name)
		}
	}
	for _, name := range []string{"lbm", "nab", "bwaves", "omnetpp", "fotonik3d", "exchange2"} {
		if !seen[name] {
			t.Errorf("paper-discussed benchmark %q missing from suite", name)
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("lbm")
	if err != nil || w.Name != "lbm" {
		t.Fatalf("ByName(lbm) = %v, %v", w, err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Fatalf("expected error for unknown benchmark")
	}
	if len(Names()) != len(All()) {
		t.Errorf("Names/All length mismatch")
	}
}

func TestBwavesCombinedCacheTLB(t *testing.T) {
	app, _ := profile(t, Bwaves(1200))
	combined := 0.0
	total := 0.0
	for sig, v := range app {
		total += v
		if sig.Has(events.STTLB) && (sig.Has(events.STL1) || sig.Has(events.STLLC)) {
			combined += v
		}
	}
	if combined/total < 0.2 {
		t.Errorf("bwaves combined cache+TLB share = %.2f, want substantial", combined/total)
	}
}

func TestFotonikCacheMissesWithoutTLB(t *testing.T) {
	app, _ := profile(t, Fotonik3d(3000))
	cache := share(app, events.STL1)
	tlb := share(app, events.STTLB)
	if cache < 0.15 {
		t.Errorf("fotonik3d cache-event share = %.2f, want substantial", cache)
	}
	if tlb > cache/2 {
		t.Errorf("fotonik3d TLB share %.2f should be well below cache share %.2f", tlb, cache)
	}
}

func TestOmnetppCombinedAndMemoryBound(t *testing.T) {
	app, st := profile(t, Omnetpp(2500))
	if share(app, events.STLLC) < 0.3 {
		t.Errorf("omnetpp LLC-miss share = %.2f, want memory-bound", share(app, events.STLLC))
	}
	if st.IPC() > 0.3 {
		t.Errorf("omnetpp IPC = %.2f, pointer chase should be slow", st.IPC())
	}
}

func TestExchange2FewEvents(t *testing.T) {
	app, st := profile(t, Exchange2(4000))
	base := app[0]
	total := 0.0
	for _, v := range app {
		total += v
	}
	if base/total < 0.8 {
		t.Errorf("exchange2 Base share = %.2f, want compute-dominated", base/total)
	}
	if st.IPC() < 0.8 {
		t.Errorf("exchange2 IPC = %.2f, want compute-bound but reasonable", st.IPC())
	}
}

func TestDeepsjengMispredicts(t *testing.T) {
	app, st := profile(t, Deepsjeng(4000))
	if st.Mispredicts < 1000 {
		t.Errorf("deepsjeng mispredicts = %d, want frequent", st.Mispredicts)
	}
	if share(app, events.FLMB) < 0.1 {
		t.Errorf("deepsjeng FL-MB share = %.2f, want visible flush cost", share(app, events.FLMB))
	}
}

func TestROMSStoreBound(t *testing.T) {
	app, _ := profile(t, ROMS(3000))
	if share(app, events.DRSQ) < 0.1 {
		t.Errorf("roms DR-SQ share = %.2f, want store-drain bound", share(app, events.DRSQ))
	}
}

func TestXZOrderingViolations(t *testing.T) {
	p := XZ(3000)
	c := cpu.New(cpu.DefaultConfig(), p)
	st := c.Run()
	if st.Violations == 0 {
		t.Errorf("xz produced no ordering violations")
	}
	// Aliasing hits every 512 iterations by construction, plus nearby
	// cross-iteration aliases within the ROB window: occasional, not
	// every iteration.
	if st.Violations > uint64(3000/20) {
		t.Errorf("xz violations = %d, should be occasional", st.Violations)
	}
}

func TestNabFlushesAndFastMathSpeedup(t *testing.T) {
	slow := cpu.New(cpu.DefaultConfig(), NAB(2000, false))
	slowStats := slow.Run()
	fast := cpu.New(cpu.DefaultConfig(), NAB(2000, true))
	fastStats := fast.Run()
	if slowStats.Flushes < 2000 {
		t.Errorf("nab flushes = %d, want >= one per iteration", slowStats.Flushes)
	}
	speedup := float64(slowStats.Cycles) / float64(fastStats.Cycles)
	if speedup < 1.5 {
		t.Errorf("fast-math speedup = %.2fx, paper reports 1.96-2.45x", speedup)
	}
	if speedup > 4.0 {
		t.Errorf("fast-math speedup = %.2fx, implausibly high", speedup)
	}
}

func TestLbmPrefetchSpeedup(t *testing.T) {
	baseline := cpu.New(cpu.DefaultConfig(), LBM(600, 0))
	baseStats := baseline.Run()
	speedups := map[int]float64{}
	for _, d := range []int{1, 3, 6} {
		c := cpu.New(cpu.DefaultConfig(), LBM(600, d))
		s := c.Run()
		speedups[d] = float64(baseStats.Cycles) / float64(s.Cycles)
	}
	if speedups[3] < 1.1 {
		t.Errorf("lbm prefetch-distance-3 speedup = %.2fx, paper reports 1.28x at the optimum", speedups[3])
	}
	for d, s := range speedups {
		if s > 2.5 {
			t.Errorf("lbm distance-%d speedup = %.2fx, implausibly high", d, s)
		}
	}
}

func TestLbmLoadIsTopInstructionWithLLCMisses(t *testing.T) {
	p := LBM(500, 0)
	c := cpu.New(cpu.DefaultConfig(), p)
	g := core.NewGolden(c)
	c.Attach(g)
	c.Run()
	top := g.Profile().TopInstructions(3)
	if len(top) == 0 {
		t.Fatalf("no instructions profiled")
	}
	// The tallest stack must be a load with ST-LLC components.
	st := g.Profile().Insts[top[0]]
	llc := 0.0
	for sig, v := range st {
		if sig.Has(events.STLLC) {
			llc += v
		}
	}
	if llc < 0.5*st.Total() {
		t.Errorf("lbm top instruction has only %.0f/%.0f cycles on LLC-miss signatures", llc, st.Total())
	}
}

func TestCactuStallsWithoutEvents(t *testing.T) {
	app, _ := profile(t, Cactu(3000))
	base := app[0]
	total := 0.0
	for _, v := range app {
		total += v
	}
	if base/total < 0.7 {
		t.Errorf("cactuBSSN Base share = %.2f, dependent FP chains carry no events", base/total)
	}
}

func TestWorkloadsAreDeterministic(t *testing.T) {
	for _, name := range []string{"omnetpp", "xz", "nab"} {
		w, _ := ByName(name)
		a := cpu.New(cpu.DefaultConfig(), w.Build(400)).Run()
		b := cpu.New(cpu.DefaultConfig(), w.Build(400)).Run()
		if a.Cycles != b.Cycles || a.Committed != b.Committed {
			t.Errorf("%s non-deterministic: %d/%d vs %d/%d cycles/insts",
				name, a.Cycles, a.Committed, b.Cycles, b.Committed)
		}
	}
}
