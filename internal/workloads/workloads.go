// Package workloads provides the benchmark suite of the evaluation:
// synthetic kernels, each engineered to exhibit the dominant
// microarchitectural behaviour of a SPEC CPU2017 benchmark the paper
// discusses (DESIGN.md documents this substitution — the paper runs the
// real SPEC reference inputs on FireSim, which is unavailable here).
// The kernels collectively exercise every TEA event, combined events,
// latency hiding, and the two case-study patterns (lbm's non-hidden
// streaming loads and nab's serializing flushes).
package workloads

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/simerr"
)

// Workload describes one benchmark of the suite.
type Workload struct {
	// Name is the SPEC benchmark whose dominant behaviour the kernel
	// mimics.
	Name string
	// Behavior summarizes the microarchitectural profile.
	Behavior string
	// DefaultIters is the iteration count used by the experiment
	// harness; tests scale it down.
	DefaultIters int
	// Build assembles the kernel with the given iteration count.
	Build func(iters int) *program.Program
}

// All returns the benchmark suite in evaluation order (alphabetical,
// first and second halves merged).
func All() []Workload {
	all := append(suite1(), suite2()...)
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

func suite1() []Workload {
	return []Workload{
		{"bwaves", "strided FP loads; combined cache+TLB misses", 8000, Bwaves},
		{"cactuBSSN", "long dependent FP chains; divide-latency stalls", 12000, Cactu},
		{"deepsjeng", "data-dependent branches; frequent mispredicts", 20000, Deepsjeng},
		{"exchange2", "register-resident integer compute; few events", 15000, Exchange2},
		{"fotonik3d", "streaming loads; cache misses without TLB misses", 10000, Fotonik3d},
		{"gcc", "hot loop plus large cold code footprint; I-cache/I-TLB misses, rare flushes", 40, GCC},
		{"lbm", "streaming loads and 19-line store bursts; LLC-resident working set exceeded", 2500, func(n int) *program.Program { return LBM(n, 0) }},
		{"mcf", "pointer chasing with dependent branches", 6000, MCF},
		{"nab", "FP sqrt preceded by serializing flag accesses (flushes)", 8000, func(n int) *program.Program { return NAB(n, false) }},
		{"omnetpp", "pointer chasing over a large heap; combined cache+TLB misses", 6000, Omnetpp},
		{"roms", "store-bandwidth-bound streaming writes (DR-SQ)", 6000, ROMS},
		{"wrf", "FP compute over strided grids; mixed stalls", 8000, WRF},
		{"xz", "integer mix with store-load aliasing (ordering violations)", 6000, XZ},
	}
}

// ByName returns the named workload.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, simerr.New(simerr.ErrInvalidConfig, simerr.Snapshot{Workload: name},
		"workloads: unknown benchmark %q", name)
}

// Names lists the suite's benchmark names in order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	return names
}

// ---------------------------------------------------------------------------
// lbm — the Figure 10/11 case study.

// LBM builds the lbm-like kernel: each inner-loop iteration loads 11
// words spanning three cache lines of the source stream, runs enough FP
// compute to fill the ROB, and issues 19 stores across five output
// line-streams. The working set exceeds the LLC, so the leading load of
// each line misses DRAM-deep. prefetchDist > 0 inserts software
// prefetches for the three source lines prefetchDist iterations ahead
// (the paper's custom ROCC prefetch instruction).
func LBM(iters, prefetchDist int) *program.Program {
	b := program.NewBuilder(fmt.Sprintf("lbm(pd=%d)", prefetchDist))
	const srcStride = 192 // three 64-byte lines per iteration
	const outStreams = 5
	src := b.Alloc(uint64(iters)*srcStride+4096, 4096)
	var outs [outStreams]uint64
	for i := range outs {
		outs[i] = b.Alloc(uint64(iters)*64+4096, 4096)
	}

	b.Func("lbm_kernel")
	b.MoviU(isa.X(1), src) // src cursor
	for i := range outs {
		b.MoviU(isa.X(10+i), outs[i]) // out cursors x10..x14
	}
	b.Movi(isa.X(2), 0) // i
	b.Movi(isa.X(3), int64(iters))
	b.Movi(isa.X(4), 3)
	b.FMovI(isa.F(9), isa.X(4)) // f9 = 3.0

	b.Label("loop")
	if prefetchDist > 0 {
		for l := int64(0); l < 3; l++ {
			b.Prefetch(isa.X(1), int64(prefetchDist)*srcStride+l*64)
		}
	}
	// 11 loads spanning three source lines (offsets 0..176).
	for l := 0; l < 11; l++ {
		b.LoadF(isa.F(10+l), isa.X(1), int64(l)*16)
	}
	// FP compute: long enough to keep the ROB full across iterations,
	// mirroring lbm's collision-operator arithmetic.
	for r := 0; r < 12; r++ {
		for l := 0; l < 11; l++ {
			b.FAdd(isa.F(10+l), isa.F(10+l), isa.F(9))
			b.FMul(isa.F(10+l), isa.F(10+l), isa.F(9))
		}
	}
	// 19 stores across five output line-streams.
	for s := 0; s < 19; s++ {
		stream := s % outStreams
		off := int64(s/outStreams) * 16
		b.StoreF(isa.Reg(10+stream), isa.F(10+s%11), off)
	}
	for i := range outs {
		b.Addi(isa.Reg(10+i), isa.Reg(10+i), 64)
	}
	b.Addi(isa.X(1), isa.X(1), srcStride)
	b.Addi(isa.X(2), isa.X(2), 1)
	b.Blt(isa.X(2), isa.X(3), "loop")
	b.Halt()
	return b.MustBuild()
}

// ---------------------------------------------------------------------------
// nab — the Figure 12 case study.

// NAB builds the nab-like kernel: a distance computation whose FP
// comparison is guarded by serializing CSR flag accesses (fsflags/
// frflags, modeled by csrflush) for IEEE 754 compliance, followed by an
// fsqrt whose latency cannot be hidden because the flush emptied the
// pipeline. fastMath omits the serializing accesses — the paper's
// -ffinite-math/-ffast-math optimization.
func NAB(iters int, fastMath bool) *program.Program {
	name := "nab"
	if fastMath {
		name = "nab(fast-math)"
	}
	b := program.NewBuilder(name)
	data := b.Alloc(uint64(iters)*8+4096, 4096)
	rng := rand.New(rand.NewPCG(0xAB, 1))
	for i := 0; i < iters; i++ {
		b.SetWord(data+uint64(i)*8, uint64(rng.Uint64N(1000)+1))
	}

	b.Func("nab_dist")
	b.MoviU(isa.X(1), data)
	b.Movi(isa.X(2), 0)
	b.Movi(isa.X(3), int64(iters))
	b.Movi(isa.X(4), 2)
	b.FMovI(isa.F(1), isa.X(4)) // f1 = 2.0
	b.Movi(isa.X(5), 0)
	b.FMovI(isa.F(8), isa.X(5)) // f8 = 0.0 accumulator

	b.Label("loop")
	b.Load(isa.X(6), isa.X(1), 0)
	b.FMovI(isa.F(2), isa.X(6))          // r2 = dist^2 (positive)
	b.FMul(isa.F(3), isa.F(2), isa.F(1)) // scale
	if !fastMath {
		// flt.d must not trap on NaN: the compiler brackets the
		// comparison with fsflags/frflags, which always flush the
		// pipeline on this core.
		b.CsrFlush()
	}
	b.FCmpLT(isa.X(7), isa.F(2), isa.F(3)) // flt.d
	if !fastMath {
		b.CsrFlush()
	}
	b.FSqrt(isa.F(4), isa.F(3)) // performance-critical fsqrt.d
	b.FAdd(isa.F(8), isa.F(8), isa.F(4))
	b.Addi(isa.X(1), isa.X(1), 8)
	b.Addi(isa.X(2), isa.X(2), 1)
	b.Blt(isa.X(2), isa.X(3), "loop")
	b.Halt()
	return b.MustBuild()
}

// ---------------------------------------------------------------------------
// Suite kernels.

// Bwaves mimics bwaves: several strided FP load streams whose strides
// differ — one crosses a page every access (combined cache+TLB misses,
// the Figure 6a example), one crosses lines within pages, and one is
// dense — so different static loads see different event mixes.
func Bwaves(iters int) *program.Program {
	b := program.NewBuilder("bwaves")
	const strideA = 8256 // page- and line-crossing
	const strideB = 320  // line-crossing, page every ~13
	const strideC = 24   // dense
	arrA := b.Alloc(uint64(iters)*strideA+8192, 4096)
	arrB := b.Alloc(uint64(iters)*strideB+8192, 4096)
	arrC := b.Alloc(uint64(iters)*strideC+8192, 4096)
	b.Func("bwaves_solve")
	b.MoviU(isa.X(1), arrA)
	b.MoviU(isa.X(8), arrB)
	b.MoviU(isa.X(9), arrC)
	b.Movi(isa.X(2), 0)
	b.Movi(isa.X(3), int64(iters))
	b.Movi(isa.X(4), 3)
	b.FMovI(isa.F(1), isa.X(4))
	b.Label("loop")
	b.LoadF(isa.F(2), isa.X(1), 0) // combined cache+TLB misses
	b.LoadF(isa.F(6), isa.X(8), 0) // mostly cache-only misses
	b.LoadF(isa.F(7), isa.X(9), 0) // mostly hits
	b.FMul(isa.F(3), isa.F(2), isa.F(1))
	b.FAdd(isa.F(4), isa.F(3), isa.F(6))
	b.FAdd(isa.F(5), isa.F(4), isa.F(7))
	b.StoreF(isa.X(1), isa.F(5), 8)
	b.Addi(isa.X(1), isa.X(1), strideA)
	b.Addi(isa.X(8), isa.X(8), strideB)
	b.Addi(isa.X(9), isa.X(9), strideC)
	b.Addi(isa.X(2), isa.X(2), 1)
	b.Blt(isa.X(2), isa.X(3), "loop")
	b.Halt()
	return b.MustBuild()
}

// Cactu mimics cactuBSSN: long dependent floating-point chains with
// divides — exposed execution latency without memory events.
func Cactu(iters int) *program.Program {
	b := program.NewBuilder("cactuBSSN")
	b.Func("cactu_rhs")
	b.Movi(isa.X(2), 0)
	b.Movi(isa.X(3), int64(iters))
	b.Movi(isa.X(4), 7)
	b.FMovI(isa.F(1), isa.X(4))
	b.Movi(isa.X(5), 3)
	b.FMovI(isa.F(2), isa.X(5))
	b.Label("loop")
	b.FDiv(isa.F(3), isa.F(1), isa.F(2))
	b.FAdd(isa.F(3), isa.F(3), isa.F(2))
	b.FMul(isa.F(3), isa.F(3), isa.F(2))
	b.FDiv(isa.F(4), isa.F(3), isa.F(2)) // dependent divide chain
	b.FAdd(isa.F(1), isa.F(4), isa.F(2))
	b.Addi(isa.X(2), isa.X(2), 1)
	b.Blt(isa.X(2), isa.X(3), "loop")
	b.Halt()
	return b.MustBuild()
}

// Deepsjeng mimics deepsjeng: xorshift-driven branches the predictor
// cannot learn, flushing the pipeline frequently (FL-MB). The branches
// have different biases (p = 1/2, 1/4, 1/16), so different static
// branches contribute different mispredict counts and flush costs.
func Deepsjeng(iters int) *program.Program {
	b := program.NewBuilder("deepsjeng")
	b.Func("sjeng_search")
	b.Movi(isa.X(1), 0)
	b.Movi(isa.X(2), int64(iters))
	b.Movi(isa.X(4), 88172645463325252)
	b.Movi(isa.X(7), 0)
	b.Label("loop")
	b.Shli(isa.X(5), isa.X(4), 13)
	b.Xor(isa.X(4), isa.X(4), isa.X(5))
	b.Shri(isa.X(5), isa.X(4), 7)
	b.Xor(isa.X(4), isa.X(4), isa.X(5))
	b.Shli(isa.X(5), isa.X(4), 17)
	b.Xor(isa.X(4), isa.X(4), isa.X(5))
	// p=1/2 branch on bit 0.
	b.Andi(isa.X(5), isa.X(4), 1)
	b.Beq(isa.X(5), isa.X(0), "even")
	b.Addi(isa.X(7), isa.X(7), 3)
	b.Jmp("join")
	b.Label("even")
	b.Addi(isa.X(7), isa.X(7), 1)
	b.Label("join")
	// p=1/4 branch on bits 3..4 == 0.
	b.Shri(isa.X(6), isa.X(4), 3)
	b.Andi(isa.X(6), isa.X(6), 3)
	b.Bne(isa.X(6), isa.X(0), "skip4")
	b.Addi(isa.X(7), isa.X(7), 5)
	b.Label("skip4")
	// p=1/16 branch on bits 8..11 == 0.
	b.Shri(isa.X(6), isa.X(4), 8)
	b.Andi(isa.X(6), isa.X(6), 15)
	b.Bne(isa.X(6), isa.X(0), "skip16")
	b.Addi(isa.X(7), isa.X(7), 7)
	b.Label("skip16")
	b.Addi(isa.X(1), isa.X(1), 1)
	b.Blt(isa.X(1), isa.X(2), "loop")
	b.Halt()
	return b.MustBuild()
}

// Exchange2 mimics exchange2: register-resident integer compute with
// well-predicted control flow — the benchmark with the fewest events.
func Exchange2(iters int) *program.Program {
	b := program.NewBuilder("exchange2")
	b.Func("digits_place")
	b.Movi(isa.X(1), 0)
	b.Movi(isa.X(2), int64(iters))
	b.Movi(isa.X(4), 12345)
	b.Movi(isa.X(5), 10)
	b.Label("loop")
	b.Mul(isa.X(6), isa.X(4), isa.X(5))
	b.Shri(isa.X(7), isa.X(6), 3)
	b.Add(isa.X(8), isa.X(6), isa.X(7))
	b.Xor(isa.X(4), isa.X(8), isa.X(1))
	// Independent work alongside the recurrence.
	b.Addi(isa.X(11), isa.X(1), 5)
	b.Add(isa.X(13), isa.X(11), isa.X(1))
	b.Xor(isa.X(14), isa.X(13), isa.X(11))
	b.Andi(isa.X(9), isa.X(4), 7)
	b.Beq(isa.X(9), isa.X(5), "never") // never taken: well predicted
	b.Label("back")
	b.Addi(isa.X(1), isa.X(1), 1)
	b.Blt(isa.X(1), isa.X(2), "loop")
	b.Halt()
	b.Label("never")
	b.Jmp("back")
	return b.MustBuild()
}

// Fotonik3d mimics fotonik3d: dense sequential streaming whose TLB
// reach suffices — cache misses arrive without TLB misses (the
// cache-only contrast to bwaves in Figure 6).
func Fotonik3d(iters int) *program.Program {
	b := program.NewBuilder("fotonik3d")
	arr := b.Alloc(uint64(iters)*64+8192, 4096)
	b.Func("fotonik_sweep")
	b.MoviU(isa.X(1), arr)
	b.Movi(isa.X(2), 0)
	b.Movi(isa.X(3), int64(iters))
	b.Movi(isa.X(4), 5)
	b.FMovI(isa.F(1), isa.X(4))
	b.Label("loop")
	b.LoadF(isa.F(2), isa.X(1), 0)
	b.LoadF(isa.F(3), isa.X(1), 16)
	b.LoadF(isa.F(4), isa.X(1), 32)
	b.FMul(isa.F(5), isa.F(2), isa.F(1))
	b.FAdd(isa.F(5), isa.F(5), isa.F(3))
	b.FAdd(isa.F(5), isa.F(5), isa.F(4))
	b.StoreF(isa.X(1), isa.F(5), 48)
	b.Addi(isa.X(1), isa.X(1), 64) // one line per iteration, sequential
	b.Addi(isa.X(2), isa.X(2), 1)
	b.Blt(isa.X(2), isa.X(3), "loop")
	b.Halt()
	return b.MustBuild()
}

// GCC mimics gcc: a code footprint several times the 32 KB L1
// instruction cache (and beyond the 128 KB I-TLB reach), walked pass
// after pass, so instruction fetch misses dominate (DR-L1, DR-TLB).
// One serializing flag access per block and one store/load aliasing
// pair per pass add rare FL-EX and FL-MO events, as compiler workloads
// exhibit through syscalls and optimistic scheduling.
func GCC(iters int) *program.Program {
	b := program.NewBuilder("gcc")
	buf := b.Alloc(1<<16, 4096)
	const hotIters = 2000   // hot-loop trips per pass
	const blocks = 10       // cold straight-line blocks
	const blockInsts = 4000 // 10 x 4000 x 4 B = 160 KB of cold code
	const coldEvery = 4     // the cold walk runs every 4th pass

	b.Func("gcc_hot")
	b.MoviU(isa.X(1), buf)
	b.Movi(isa.X(2), 0)
	b.Movi(isa.X(3), int64(iters))
	b.Movi(isa.X(12), 2)
	b.Label("pass")
	// Hot loop: a compact, cache-resident kernel that dominates the
	// profile (real gcc spends most time in a few hot routines).
	b.Movi(isa.X(20), 0)
	b.Movi(isa.X(21), hotIters)
	b.Label("hot")
	for i := 0; i < 40; i++ {
		r := isa.X(4 + (i % 4))
		if i%3 == 0 {
			b.Add(r, r, isa.X(20))
		} else {
			b.Xor(r, r, isa.X(2))
		}
	}
	b.Addi(isa.X(20), isa.X(20), 1)
	b.Blt(isa.X(20), isa.X(21), "hot")

	// Cold tail: 160 KB of straight-line code (beyond both the 32 KB
	// L1I and the 128 KB I-TLB reach), walked every coldEvery'th pass —
	// capacity misses in the instruction cache (DR-L1) and I-TLB
	// (DR-TLB) like a compiler touching many cold routines.
	b.Andi(isa.X(22), isa.X(2), coldEvery-1)
	b.Bne(isa.X(22), isa.X(0), "skipcold")
	for blk := 0; blk < blocks; blk++ {
		b.Func(fmt.Sprintf("gcc_cold_%d", blk))
		for i := 0; i < blockInsts; i++ {
			r := isa.X(4 + (i % 6))
			switch i % 5 {
			case 0:
				b.Addi(r, isa.X(2), int64(i&0xFF))
			case 1:
				b.Xor(r, r, isa.X(2))
			case 2:
				b.Shli(r, r, 1)
			case 3:
				b.Add(r, r, isa.X(4))
			default:
				b.Andi(r, r, 0xFFF)
			}
		}
		if blk == 0 {
			// Rare serializing access (FL-EX), once per pass.
			b.CsrFlush()
		}
		if blk == 1 {
			// Store with a divide-delayed address aliasing the next
			// load (occasional FL-MO).
			b.Movi(isa.X(10), 256)
			b.Div(isa.X(10), isa.X(10), isa.X(12))
			b.Div(isa.X(10), isa.X(10), isa.X(12)) // 64
			b.Add(isa.X(11), isa.X(1), isa.X(10))
			b.Addi(isa.X(11), isa.X(11), -64) // = buf, late
			b.Store(isa.X(11), isa.X(2), 0)
			b.Load(isa.X(9), isa.X(1), 0) // younger, aliases buf
			b.Add(isa.X(9), isa.X(9), isa.X(9))
		}
	}
	b.Func("gcc_tail")
	b.Label("skipcold")
	b.Addi(isa.X(2), isa.X(2), 1)
	b.Blt(isa.X(2), isa.X(3), "pass")
	b.Halt()
	return b.MustBuild()
}

// chaseList initializes a pseudo-random cyclic permutation of nodes
// spaced nodeStride bytes apart (must be 8-byte aligned) and returns
// the base address.
func chaseList(b *program.Builder, nodes int, nodeStride uint64, seed uint64) uint64 {
	if nodeStride%8 != 0 {
		//tealint:ignore nakedpanic static workload construction invariant; strides are compile-time constants
		panic("workloads: chase-list stride must be 8-byte aligned")
	}
	base := b.Alloc(uint64(nodes)*nodeStride+4096, 4096)
	perm := make([]int, nodes)
	for i := range perm {
		perm[i] = i
	}
	rng := rand.New(rand.NewPCG(seed, 99))
	// Sattolo's algorithm yields a single cycle through all nodes;
	// node k's pointer field holds the address of its successor.
	for i := nodes - 1; i > 0; i-- {
		j := rng.IntN(i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for k := 0; k < nodes; k++ {
		b.SetWord(base+uint64(k)*nodeStride, base+uint64(perm[k])*nodeStride)
	}
	return base
}

// Omnetpp mimics omnetpp: pointer chasing across a heap far larger than
// the LLC and TLB reach, yielding combined (ST-L1,ST-LLC,ST-TLB)
// signatures on the chase load.
func Omnetpp(iters int) *program.Program {
	b := program.NewBuilder("omnetpp")
	base := chaseList(b, 65536, 408, 0x42) // ~26 MB footprint, page-crossing nodes
	b.Func("omnetpp_sim")
	b.MoviU(isa.X(1), base)
	b.Movi(isa.X(2), 0)
	b.Movi(isa.X(3), int64(iters))
	b.Movi(isa.X(7), 0)
	b.Label("loop")
	b.Load(isa.X(1), isa.X(1), 0) // serialized pointer chase
	b.Add(isa.X(7), isa.X(7), isa.X(1))
	b.Addi(isa.X(2), isa.X(2), 1)
	b.Blt(isa.X(2), isa.X(3), "loop")
	b.Halt()
	return b.MustBuild()
}

// MCF mimics mcf: pointer chasing with a data-dependent branch on the
// loaded value — LLC misses plus mispredicts.
func MCF(iters int) *program.Program {
	b := program.NewBuilder("mcf")
	base := chaseList(b, 32768, 232, 0x77) // ~7.6 MB, line-crossing nodes
	b.Func("mcf_simplex")
	b.MoviU(isa.X(1), base)
	b.Movi(isa.X(2), 0)
	b.Movi(isa.X(3), int64(iters))
	b.Movi(isa.X(7), 0)
	b.Label("loop")
	b.Load(isa.X(1), isa.X(1), 0)
	b.Andi(isa.X(5), isa.X(1), 8) // pseudo-random bit of the address
	b.Beq(isa.X(5), isa.X(0), "skip")
	b.Addi(isa.X(7), isa.X(7), 1)
	b.Label("skip")
	b.Addi(isa.X(2), isa.X(2), 1)
	b.Blt(isa.X(2), isa.X(3), "loop")
	b.Halt()
	return b.MustBuild()
}

// ROMS mimics roms: store-bandwidth-bound streaming writes whose drain
// backlog fills the store queue (DR-SQ drain stalls).
func ROMS(iters int) *program.Program {
	b := program.NewBuilder("roms")
	arr := b.Alloc(uint64(iters)*256+8192, 4096)
	b.Func("roms_step")
	b.MoviU(isa.X(1), arr)
	b.Movi(isa.X(2), 0)
	b.Movi(isa.X(3), int64(iters))
	b.Movi(isa.X(4), 11)
	b.Label("loop")
	for l := int64(0); l < 4; l++ {
		b.Store(isa.X(1), isa.X(4), l*64) // four fresh lines per iteration
	}
	b.Addi(isa.X(1), isa.X(1), 256)
	b.Addi(isa.X(2), isa.X(2), 1)
	b.Blt(isa.X(2), isa.X(3), "loop")
	b.Halt()
	return b.MustBuild()
}

// WRF mimics wrf: floating-point compute over strided grid accesses —
// a mix of moderate cache misses and FP latency.
func WRF(iters int) *program.Program {
	b := program.NewBuilder("wrf")
	arr := b.Alloc(uint64(iters)*136+8192, 4096)
	b.Func("wrf_physics")
	b.MoviU(isa.X(1), arr)
	b.Movi(isa.X(2), 0)
	b.Movi(isa.X(3), int64(iters))
	b.Movi(isa.X(4), 2)
	b.FMovI(isa.F(1), isa.X(4))
	b.Label("loop")
	b.LoadF(isa.F(2), isa.X(1), 0)
	b.FMul(isa.F(3), isa.F(2), isa.F(1))
	b.FDiv(isa.F(4), isa.F(3), isa.F(1))
	b.FAdd(isa.F(5), isa.F(4), isa.F(2))
	b.StoreF(isa.X(1), isa.F(5), 64)
	b.Addi(isa.X(1), isa.X(1), 136)
	b.Addi(isa.X(2), isa.X(2), 1)
	b.Blt(isa.X(2), isa.X(3), "loop")
	b.Halt()
	return b.MustBuild()
}

// XZ mimics xz: an integer mix whose store addresses resolve late while
// younger loads to the same buffer issue early — triggering memory-
// ordering violations (FL-MO) alongside moderate cache misses.
func XZ(iters int) *program.Program {
	b := program.NewBuilder("xz")
	buf := b.Alloc(1<<20, 4096)
	b.Func("xz_encode")
	b.MoviU(isa.X(1), buf)
	b.Movi(isa.X(2), 0)
	b.Movi(isa.X(3), int64(iters))
	b.Movi(isa.X(11), 64)
	b.Movi(isa.X(12), 3)
	b.Label("loop")
	// Late-resolving store address: a divide chain delays the index, so
	// the younger load issues first. The store writes slot (3i)%1024
	// while the load reads slot i%1024 — they alias every 512
	// iterations, producing occasional ordering violations.
	b.Mul(isa.X(4), isa.X(2), isa.X(12))
	b.Andi(isa.X(4), isa.X(4), 1023)
	b.Shli(isa.X(4), isa.X(4), 6)
	b.Movi(isa.X(5), 128)
	b.Movi(isa.X(6), 2)
	b.Div(isa.X(5), isa.X(5), isa.X(6))
	b.Div(isa.X(5), isa.X(5), isa.X(6)) // 32
	b.Add(isa.X(7), isa.X(1), isa.X(4))
	b.Add(isa.X(7), isa.X(7), isa.X(5))
	b.Addi(isa.X(7), isa.X(7), -32)  // x7 = buf + ((3i)%1024)*64, late
	b.Store(isa.X(7), isa.X(2), 0)   // store with late address
	b.Andi(isa.X(8), isa.X(2), 1023) // load slot index, early
	b.Shli(isa.X(8), isa.X(8), 6)
	b.Add(isa.X(8), isa.X(1), isa.X(8))
	b.Load(isa.X(9), isa.X(8), 0) // younger load: issues before the store
	b.Add(isa.X(10), isa.X(9), isa.X(9))
	b.Addi(isa.X(2), isa.X(2), 1)
	b.Blt(isa.X(2), isa.X(3), "loop")
	b.Halt()
	return b.MustBuild()
}
