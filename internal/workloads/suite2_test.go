package workloads

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/events"
	"repro/internal/program"
)

// appStack runs a program under the golden reference and returns its
// application-level cycle stack.
func appStack(t *testing.T, p *program.Program) (map[events.PSV]float64, *cpu.Stats) {
	t.Helper()
	c := cpu.New(cpu.DefaultConfig(), p)
	g := core.NewGolden(c)
	c.Attach(g)
	st := c.Run()
	return g.Profile().Application(), st
}

func eventShare(app map[events.PSV]float64, e events.Event) float64 {
	var hit, total float64
	for sig, v := range app {
		total += v
		if sig.Has(e) {
			hit += v
		}
	}
	if total == 0 {
		return 0
	}
	return hit / total
}

func TestSuiteHasTwentyBenchmarks(t *testing.T) {
	if got := len(All()); got != 20 {
		t.Fatalf("suite has %d benchmarks, want 20", got)
	}
	// Alphabetical and unique.
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Errorf("suite not sorted/unique at %q <= %q", names[i], names[i-1])
		}
	}
}

func TestXalancbmkL1MissLLCHit(t *testing.T) {
	// Cycle shares overweight the expensive cold first lap, so check
	// steady-state cache behaviour through the miss-rate counters: the
	// arena thrashes the L1 but is LLC-resident.
	p := Xalancbmk(16000) // ~8 laps
	c := cpu.New(cpu.DefaultConfig(), p)
	g := core.NewGolden(c)
	c.Attach(g)
	c.Run()
	l1Rate := c.Hierarchy().L1D().MissRate()
	llcRate := c.Hierarchy().LLC().MissRate()
	if l1Rate < 0.5 {
		t.Errorf("xalancbmk L1D miss rate = %.2f, want L1-thrashing chase", l1Rate)
	}
	if llcRate > 0.35 {
		t.Errorf("xalancbmk LLC miss rate = %.2f, want LLC-resident arena", llcRate)
	}
	// And the event view: ST-L1 dominates ST-LLC once warm.
	app := g.Profile().Application()
	if eventShare(app, events.STL1) < eventShare(app, events.STLLC) {
		t.Errorf("ST-L1 share should exceed ST-LLC share for an LLC-resident chase")
	}
}

func TestPovrayExecutionLatencyBound(t *testing.T) {
	app, _ := appStack(t, Povray(2500))
	base := app[0]
	var total float64
	for _, v := range app {
		total += v
	}
	if base/total < 0.8 {
		t.Errorf("povray Base share = %.2f; FP-latency-bound code carries no events", base/total)
	}
}

func TestX264HighIPC(t *testing.T) {
	_, st := appStack(t, X264(3000))
	if st.IPC() < 1.5 {
		t.Errorf("x264 IPC = %.2f, want the high-IPC end of the suite", st.IPC())
	}
}

func TestPerlbenchBranchBound(t *testing.T) {
	app, st := appStack(t, Perlbench(3000))
	if st.Mispredicts < 500 {
		t.Errorf("perlbench mispredicts = %d, want frequent", st.Mispredicts)
	}
	if eventShare(app, events.FLMB) < 0.1 {
		t.Errorf("perlbench FL-MB share = %.2f, want visible", eventShare(app, events.FLMB))
	}
}

func TestLeelaMixesChaseAndBranches(t *testing.T) {
	app, st := appStack(t, Leela(3000))
	if st.Mispredicts < 300 {
		t.Errorf("leela mispredicts = %d", st.Mispredicts)
	}
	if eventShare(app, events.STL1) < 0.15 {
		t.Errorf("leela ST-L1 share = %.2f, want chase misses", eventShare(app, events.STL1))
	}
}

func TestImagickAndCam4Mix(t *testing.T) {
	appI, _ := appStack(t, Imagick(2500))
	if eventShare(appI, events.STL1) < 0.05 {
		t.Errorf("imagick should show streaming cache misses")
	}
	appC, _ := appStack(t, Cam4(2500))
	base := appC[0]
	var total float64
	for _, v := range appC {
		total += v
	}
	if base == 0 || base/total > 0.95 {
		t.Errorf("cam4 should mix FP latency with memory events: base share %.2f", base/total)
	}
}
