package workloads

import (
	"math/rand/v2"

	"repro/internal/isa"
	"repro/internal/program"
)

// suite2 returns the second half of the benchmark suite, bringing the
// evaluation to the paper's "broad set of SPEC CPU2017 benchmarks".
func suite2() []Workload {
	return []Workload{
		{"cam4", "mixed FP compute with store streams", 7000, Cam4},
		{"imagick", "FP multiply/add chains over streaming pixels", 9000, Imagick},
		{"leela", "branchy tree search over an LLC-resident arena", 8000, Leela},
		{"perlbench", "hash-table probes with data-dependent branches", 10000, Perlbench},
		{"povray", "FP divide/sqrt-heavy ray math; execution-latency bound", 9000, Povray},
		{"x264", "integer SAD kernels over streaming frames; high IPC", 8000, X264},
		{"xalancbmk", "pointer chasing over an LLC-resident tree: L1 misses that hit the LLC", 9000, Xalancbmk},
	}
}

// Perlbench mimics perlbench: hash-table probes whose buckets live in
// the L1/LLC and whose comparison branches are data-dependent — FL-MB
// with light memory events.
func Perlbench(iters int) *program.Program {
	b := program.NewBuilder("perlbench")
	const buckets = 4096
	table := b.Alloc(buckets*8+4096, 4096)
	rng := rand.New(rand.NewPCG(0x9E81, 2))
	for i := 0; i < buckets; i++ {
		b.SetWord(table+uint64(i)*8, rng.Uint64N(2))
	}
	b.Func("perl_hash")
	b.MoviU(isa.X(1), table)
	b.Movi(isa.X(2), 0)
	b.Movi(isa.X(3), int64(iters))
	b.Movi(isa.X(4), 88172)
	b.Movi(isa.X(7), 0)
	b.Label("loop")
	// xorshift key -> bucket index.
	b.Shli(isa.X(5), isa.X(4), 13)
	b.Xor(isa.X(4), isa.X(4), isa.X(5))
	b.Shri(isa.X(5), isa.X(4), 7)
	b.Xor(isa.X(4), isa.X(4), isa.X(5))
	b.Andi(isa.X(5), isa.X(4), buckets-1)
	b.Shli(isa.X(5), isa.X(5), 3)
	b.Add(isa.X(6), isa.X(1), isa.X(5))
	b.Load(isa.X(8), isa.X(6), 0)     // bucket flag: pseudo-random 0/1
	b.Beq(isa.X(8), isa.X(0), "miss") // data-dependent: unpredictable
	b.Addi(isa.X(7), isa.X(7), 2)
	b.Label("miss")
	b.Addi(isa.X(2), isa.X(2), 1)
	b.Blt(isa.X(2), isa.X(3), "loop")
	b.Halt()
	return b.MustBuild()
}

// X264 mimics x264: a SAD-like integer reduction over two streaming
// frames — sequential loads that mostly hit (next lines already
// resident from the linear walk), dense ALU work, perfectly predicted
// loops: the high-IPC end of the suite.
func X264(iters int) *program.Program {
	b := program.NewBuilder("x264")
	// 16 KB reference windows: L1-resident after the first pass, so the
	// kernel is compute-bound like a motion-search inner loop.
	frameA := b.Alloc(16<<10+8192, 4096)
	frameB := b.Alloc(16<<10+8192, 4096)
	b.Func("x264_sad")
	b.MoviU(isa.X(1), frameA)
	b.MoviU(isa.X(2), frameB)
	b.Movi(isa.X(3), 0)
	b.Movi(isa.X(4), int64(iters))
	b.Movi(isa.X(10), 0) // SAD accumulator
	b.Label("loop")
	// Window offset wraps every 512 iterations (16 KB / 32 B).
	b.Andi(isa.X(11), isa.X(3), 511)
	b.Shli(isa.X(11), isa.X(11), 5)
	b.Add(isa.X(12), isa.X(1), isa.X(11))
	b.Add(isa.X(13), isa.X(2), isa.X(11))
	for w := int64(0); w < 4; w++ {
		b.Load(isa.X(5), isa.X(12), w*8)
		b.Load(isa.X(6), isa.X(13), w*8)
		b.Sub(isa.X(7), isa.X(5), isa.X(6))
		// |x| via mask trick: m = x >> 63; |x| = (x ^ m) - m.
		b.Shri(isa.X(8), isa.X(7), 63)
		b.Xor(isa.X(9), isa.X(7), isa.X(8))
		b.Sub(isa.X(9), isa.X(9), isa.X(8))
		b.Add(isa.X(10), isa.X(10), isa.X(9))
	}
	b.Addi(isa.X(3), isa.X(3), 1)
	b.Blt(isa.X(3), isa.X(4), "loop")
	b.Halt()
	return b.MustBuild()
}

// Imagick mimics imagick: floating-point multiply/add chains over a
// streaming pixel buffer — FP latency partially hidden under cache
// misses.
func Imagick(iters int) *program.Program {
	b := program.NewBuilder("imagick")
	pixels := b.Alloc(uint64(iters)*48+8192, 4096)
	b.Func("imagick_convolve")
	b.MoviU(isa.X(1), pixels)
	b.Movi(isa.X(2), 0)
	b.Movi(isa.X(3), int64(iters))
	b.Movi(isa.X(4), 3)
	b.FMovI(isa.F(1), isa.X(4))
	b.Label("loop")
	b.LoadF(isa.F(2), isa.X(1), 0)
	b.LoadF(isa.F(3), isa.X(1), 16)
	b.LoadF(isa.F(4), isa.X(1), 32)
	b.FMul(isa.F(5), isa.F(2), isa.F(1))
	b.FAdd(isa.F(5), isa.F(5), isa.F(3))
	b.FMul(isa.F(5), isa.F(5), isa.F(1))
	b.FAdd(isa.F(5), isa.F(5), isa.F(4))
	b.FMul(isa.F(6), isa.F(5), isa.F(1))
	b.StoreF(isa.X(1), isa.F(6), 40)
	b.Addi(isa.X(1), isa.X(1), 48)
	b.Addi(isa.X(2), isa.X(2), 1)
	b.Blt(isa.X(2), isa.X(3), "loop")
	b.Halt()
	return b.MustBuild()
}

// Povray mimics povray: ray-geometry math dominated by dependent FP
// divides and square roots — exposed execution latency without memory
// events (like nab's fsqrt, but without the serializing flushes).
func Povray(iters int) *program.Program {
	b := program.NewBuilder("povray")
	b.Func("povray_intersect")
	b.Movi(isa.X(2), 0)
	b.Movi(isa.X(3), int64(iters))
	b.Movi(isa.X(4), 17)
	b.FMovI(isa.F(1), isa.X(4))
	b.Movi(isa.X(5), 3)
	b.FMovI(isa.F(2), isa.X(5))
	b.Label("loop")
	b.FMul(isa.F(3), isa.F(1), isa.F(1)) // b^2
	b.FMul(isa.F(4), isa.F(2), isa.F(2))
	b.FSub(isa.F(5), isa.F(3), isa.F(4)) // discriminant
	b.FMax(isa.F(5), isa.F(5), isa.F(2)) // keep it positive
	b.FSqrt(isa.F(6), isa.F(5))
	b.FDiv(isa.F(1), isa.F(6), isa.F(2)) // dependent: feeds next iter
	b.FAdd(isa.F(1), isa.F(1), isa.F(2))
	b.Addi(isa.X(2), isa.X(2), 1)
	b.Blt(isa.X(2), isa.X(3), "loop")
	b.Halt()
	return b.MustBuild()
}

// Xalancbmk mimics xalancbmk: pointer chasing over a DOM-like arena
// sized to fit the LLC but not the L1 — the chase load misses the L1
// and hits the LLC, giving solitary ST-L1 components (distinct from
// omnetpp's DRAM-deep combined misses).
func Xalancbmk(iters int) *program.Program {
	b := program.NewBuilder("xalancbmk")
	// 2048 nodes x 96 B = 192 KB: far beyond the 32 KB L1, well within
	// the 2 MiB LLC, and small enough that the cyclic walk warms it.
	base := chaseList(b, 2048, 96, 0xD0)
	b.Func("xalanc_walk")
	b.MoviU(isa.X(1), base)
	b.Movi(isa.X(2), 0)
	b.Movi(isa.X(3), int64(iters))
	b.Movi(isa.X(7), 0)
	b.Label("loop")
	b.Load(isa.X(1), isa.X(1), 0)
	b.Add(isa.X(7), isa.X(7), isa.X(1))
	b.Addi(isa.X(2), isa.X(2), 1)
	b.Blt(isa.X(2), isa.X(3), "loop")
	b.Halt()
	return b.MustBuild()
}

// Leela mimics leela: tree search mixing an LLC-resident pointer chase
// with data-dependent branches on node contents.
func Leela(iters int) *program.Program {
	b := program.NewBuilder("leela")
	base := chaseList(b, 4096, 64, 0x1EE1A) // 256 KB arena: LLC-resident
	b.Func("leela_search")
	b.MoviU(isa.X(1), base)
	b.Movi(isa.X(2), 0)
	b.Movi(isa.X(3), int64(iters))
	b.Movi(isa.X(7), 0)
	b.Label("loop")
	b.Load(isa.X(1), isa.X(1), 0)
	b.Andi(isa.X(5), isa.X(1), 64) // pseudo-random address bit
	b.Beq(isa.X(5), isa.X(0), "prune")
	b.Addi(isa.X(7), isa.X(7), 1)
	b.Label("prune")
	b.Addi(isa.X(2), isa.X(2), 1)
	b.Blt(isa.X(2), isa.X(3), "loop")
	b.Halt()
	return b.MustBuild()
}

// Cam4 mimics cam4: columns of FP physics with a store stream — a mix
// of FP latency, moderate cache misses, and store bandwidth.
func Cam4(iters int) *program.Program {
	b := program.NewBuilder("cam4")
	in := b.Alloc(uint64(iters)*80+8192, 4096)
	out := b.Alloc(uint64(iters)*80+8192, 4096)
	b.Func("cam4_physics")
	b.MoviU(isa.X(1), in)
	b.MoviU(isa.X(2), out)
	b.Movi(isa.X(3), 0)
	b.Movi(isa.X(4), int64(iters))
	b.Movi(isa.X(5), 2)
	b.FMovI(isa.F(1), isa.X(5))
	b.Label("loop")
	b.LoadF(isa.F(2), isa.X(1), 0)
	b.LoadF(isa.F(3), isa.X(1), 40)
	b.FMul(isa.F(4), isa.F(2), isa.F(1))
	b.FDiv(isa.F(5), isa.F(3), isa.F(1))
	b.FAdd(isa.F(6), isa.F(4), isa.F(5))
	b.StoreF(isa.X(2), isa.F(6), 0)
	b.StoreF(isa.X(2), isa.F(4), 40)
	b.Addi(isa.X(1), isa.X(1), 80)
	b.Addi(isa.X(2), isa.X(2), 80)
	b.Addi(isa.X(3), isa.X(3), 1)
	b.Blt(isa.X(3), isa.X(4), "loop")
	b.Halt()
	return b.MustBuild()
}
