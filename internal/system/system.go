// Package system composes multiple out-of-order cores into a
// chip-multiprocessor: every core has private L1 caches and TLBs and
// its own TEA unit (the paper requires one per physical core, Section
// 3), while the last-level cache and DRAM are shared, so co-running
// programs contend for capacity and bandwidth. Cores advance in
// lockstep, one cycle per Step round, which keeps multi-core runs
// deterministic. Samples are attributable per core/process, which is
// what lets the paper's sampling software create PICS for each thread.
package system

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/simerr"
)

// System is a multi-core chip with a shared LLC and DRAM.
type System struct {
	cores []*cpu.CPU
	llc   *mem.Cache
	dram  *mem.DRAM
	cycle uint64
}

// New builds a system with one core per program. All cores use the same
// core configuration; the LLC and DRAM described by cfg.Mem are built
// once and shared.
func New(cfg cpu.Config, progs []*program.Program) *System {
	if len(progs) == 0 {
		// User-reachable input validation; typed for boundary recovery.
		panic(simerr.New(simerr.ErrInvalidConfig, simerr.Snapshot{},
			"system: need at least one program"))
	}
	llc := mem.NewCache(cfg.Mem.LLC)
	dram := mem.NewDRAM(cfg.Mem.DRAM)
	s := &System{llc: llc, dram: dram}
	for _, p := range progs {
		h := mem.NewHierarchyShared(cfg.Mem, llc, dram)
		s.cores = append(s.cores, cpu.NewWithHierarchy(cfg, p, h))
	}
	return s
}

// Core returns the i'th core (to attach probes before Run).
func (s *System) Core(i int) *cpu.CPU { return s.cores[i] }

// NumCores returns the core count.
func (s *System) NumCores() int { return len(s.cores) }

// LLC returns the shared last-level cache (statistics).
func (s *System) LLC() *mem.Cache { return s.llc }

// DRAM returns the shared memory device (statistics).
func (s *System) DRAM() *mem.DRAM { return s.dram }

// Cycles returns the number of lockstep cycles executed.
func (s *System) Cycles() uint64 { return s.cycle }

// Run advances all cores in lockstep until every program has finished,
// then fires each core's probe-completion hooks. It returns the
// per-core statistics.
func (s *System) Run() []*cpu.Stats {
	running := len(s.cores)
	alive := make([]bool, len(s.cores))
	for i := range alive {
		alive[i] = true
	}
	for running > 0 {
		s.cycle++
		for i, c := range s.cores {
			if !alive[i] {
				continue
			}
			if !c.Step() {
				if f := c.Failure(); f != nil {
					// A guard trip (runaway, deadlock) on any core fails
					// the whole lockstep run loudly; the panic value is
					// typed and recovered at API boundaries.
					panic(f)
				}
				alive[i] = false
				running--
			}
		}
	}
	stats := make([]*cpu.Stats, len(s.cores))
	for i, c := range s.cores {
		c.Finish()
		stats[i] = &c.Stats
	}
	return stats
}

// Describe summarizes the system configuration.
func (s *System) Describe() string {
	return fmt.Sprintf("%d cores, private L1s/TLBs, shared %d KiB LLC and DRAM",
		len(s.cores), s.llc.Config().SizeBytes>>10)
}
