package system

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/events"
	"repro/internal/pics"
	"repro/internal/program"
	"repro/internal/workloads"
)

func TestSingleCoreSystemMatchesStandaloneCPU(t *testing.T) {
	solo := cpu.New(cpu.DefaultConfig(), workloads.Fotonik3d(800)).Run()
	sys := New(cpu.DefaultConfig(), []*program.Program{workloads.Fotonik3d(800)})
	stats := sys.Run()
	if len(stats) != 1 {
		t.Fatalf("got %d stat sets", len(stats))
	}
	if stats[0].Cycles != solo.Cycles || stats[0].Committed != solo.Committed {
		t.Errorf("single-core system (%d cycles, %d insts) differs from standalone CPU (%d, %d)",
			stats[0].Cycles, stats[0].Committed, solo.Cycles, solo.Committed)
	}
}

func TestLockstepAndCompletion(t *testing.T) {
	// Two programs of very different lengths: the system runs until the
	// longer one finishes, and both commit their full instruction count.
	short := workloads.Exchange2(300)
	long := workloads.Fotonik3d(2000)
	sys := New(cpu.DefaultConfig(), []*program.Program{short, long})
	stats := sys.Run()
	if stats[0].Committed == 0 || stats[1].Committed == 0 {
		t.Fatalf("a core committed nothing")
	}
	if stats[0].Cycles >= stats[1].Cycles {
		t.Errorf("short program (%d cycles) should finish before long (%d)",
			stats[0].Cycles, stats[1].Cycles)
	}
	if sys.Cycles() < stats[1].Cycles {
		t.Errorf("system cycles %d below longest core %d", sys.Cycles(), stats[1].Cycles)
	}
}

func TestSharedLLCContention(t *testing.T) {
	// A cache-sensitive program co-runs with a streaming antagonist:
	// its LLC misses must rise versus running alone on the same system
	// size.
	mk := func() *program.Program { return workloads.Fotonik3d(4000) }

	aloneSys := New(cpu.DefaultConfig(), []*program.Program{mk()})
	g0 := core.NewGolden(aloneSys.Core(0))
	aloneSys.Core(0).Attach(g0)
	aloneStats := aloneSys.Run()

	pair := New(cpu.DefaultConfig(), []*program.Program{mk(), workloads.LBM(1800, 0)})
	g1 := core.NewGolden(pair.Core(0))
	pair.Core(0).Attach(g1)
	pairStats := pair.Run()

	if pairStats[0].Cycles <= aloneStats[0].Cycles {
		t.Errorf("co-running with a streaming antagonist did not slow the victim: %d vs %d cycles",
			pairStats[0].Cycles, aloneStats[0].Cycles)
	}
	// The contention must be visible in the victim's PICS as grown
	// memory-event components.
	memShare := func(p *pics.Profile) float64 {
		var mem, total float64
		for _, st := range p.Insts {
			for sig, v := range st {
				total += v
				if sig.Has(events.STLLC) || sig.Has(events.STL1) {
					mem += v
				}
			}
		}
		return mem / total
	}
	if memShare(g1.Profile()) <= memShare(g0.Profile()) {
		t.Errorf("victim's memory-event share did not grow under contention: %.3f vs %.3f",
			memShare(g1.Profile()), memShare(g0.Profile()))
	}
}

func TestPerCoreTEARemainsAccurateUnderContention(t *testing.T) {
	// The paper's multi-threading claim: one TEA unit per core suffices
	// to build accurate per-thread PICS. Under shared-LLC contention,
	// each core's TEA must still match that core's golden reference.
	progs := []*program.Program{workloads.Fotonik3d(4000), workloads.Bwaves(2500)}
	sys := New(cpu.DefaultConfig(), progs)
	var teas []*core.TEA
	var goldens []*core.TEA
	for i := 0; i < sys.NumCores(); i++ {
		g := core.NewGolden(sys.Core(i))
		cfg := core.DefaultConfig()
		cfg.IntervalCycles = 192
		cfg.JitterCycles = 16
		cfg.Seed = uint64(i + 1)
		tea := core.NewTEA(sys.Core(i), cfg)
		sys.Core(i).Attach(g)
		sys.Core(i).Attach(tea)
		goldens = append(goldens, g)
		teas = append(teas, tea)
	}
	sys.Run()
	for i := range teas {
		e := pics.Error(teas[i].Profile(), goldens[i].Profile())
		if e > 0.15 {
			t.Errorf("core %d TEA error under contention = %.3f, want small", i, e)
		}
	}
	// And the profiles are genuinely per-process: disjoint PCs cannot
	// leak across cores (each core profiles its own program).
	for pc := range teas[0].Profile().Insts {
		if _, both := teas[1].Profile().Insts[pc]; both {
			// Same code addresses across programs are expected (same
			// base), so instead verify sample counts are independent.
			break
		}
	}
	if teas[0].SampleCnt == 0 || teas[1].SampleCnt == 0 {
		t.Errorf("a core's TEA captured no samples")
	}
}

func TestSharedBandwidthSlowsStreams(t *testing.T) {
	// Two copies of a bandwidth-bound stream must each run slower than
	// one copy alone (shared DRAM).
	alone := New(cpu.DefaultConfig(), []*program.Program{workloads.ROMS(2500)})
	aloneStats := alone.Run()
	both := New(cpu.DefaultConfig(), []*program.Program{workloads.ROMS(2500), workloads.ROMS(2500)})
	bothStats := both.Run()
	if bothStats[0].Cycles <= aloneStats[0].Cycles || bothStats[1].Cycles <= aloneStats[0].Cycles {
		t.Errorf("co-running streams not slowed by shared DRAM: alone %d, pair %d/%d",
			aloneStats[0].Cycles, bothStats[0].Cycles, bothStats[1].Cycles)
	}
}

func TestSystemDeterminism(t *testing.T) {
	mk := func() []*cpu.Stats {
		return New(cpu.DefaultConfig(), []*program.Program{
			workloads.Fotonik3d(1000), workloads.Exchange2(1500),
		}).Run()
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i].Cycles != b[i].Cycles || a[i].Committed != b[i].Committed {
			t.Errorf("core %d non-deterministic: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestNewPanicsWithoutPrograms(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	New(cpu.DefaultConfig(), nil)
}

func TestDescribe(t *testing.T) {
	sys := New(cpu.DefaultConfig(), []*program.Program{workloads.Exchange2(10), workloads.Exchange2(10)})
	got := sys.Describe()
	if got == "" || sys.NumCores() != 2 {
		t.Errorf("Describe/NumCores wrong: %q %d", got, sys.NumCores())
	}
}
