// Disk-fault injection under the durability layer. Where
// faultinject.go corrupts trace and checkpoint bytes, this file stands
// a failing filesystem underneath the job journal (journal.FS is the
// seam) and asserts the service-level robustness contract:
//
//	under any disk fault — torn final record, mid-stream bit flip,
//	ENOSPC, EIO, slow I/O — the server never panics and never serves
//	wrong bytes: torn tails are truncated on recovery, corruption
//	fails typed, and runtime write failures degrade the server to
//	memory-only mode while jobs keep completing correctly.
package faultinject

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/journal"
	"repro/internal/serve"
	"repro/internal/simerr"
	"repro/internal/workloads"
)

// FaultFS wraps a journal.FS with injectable failures. The zero knobs
// pass everything through; each knob arms one fault. All injected
// errors are typed simerr.ErrIO, like the production OSFS would
// produce for the real fault.
type FaultFS struct {
	inner journal.FS

	mu         sync.Mutex
	writes     int           // write operations seen (WriteFile + File.Write)
	failAfter  int           // fail writes once writes >= failAfter (0 = never)
	failCause  error         // the simulated errno (ENOSPC, EIO)
	tearAt     int           // the tearAt-th write lands half its bytes, then errors (0 = never)
	slow       time.Duration // sleep before every operation
	flipFile   string        // ReadFile of a name containing this flips a bit
	flipOffset int
}

// NewFaultFS wraps inner (nil = the real filesystem).
func NewFaultFS(inner journal.FS) *FaultFS {
	if inner == nil {
		inner = journal.OSFS{}
	}
	return &FaultFS{inner: inner}
}

// FailWritesAfter arms a persistent write failure: the n-th and every
// later write operation fails with cause (e.g. syscall.ENOSPC). Reads
// keep working — a full disk still serves existing results.
func (f *FaultFS) FailWritesAfter(n int, cause error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAfter = n
	f.failCause = cause
}

// TearWriteAt arms a torn write: the n-th write operation persists
// only the first half of its bytes and then fails — the on-disk
// signature of a crash mid-append.
func (f *FaultFS) TearWriteAt(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tearAt = n
}

// SlowIO makes every filesystem operation sleep for d first.
func (f *FaultFS) SlowIO(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.slow = d
}

// FlipBitOnRead arms a read-side bit flip: ReadFile of any name
// containing substr flips one bit at offset (clamped to the file).
func (f *FaultFS) FlipBitOnRead(substr string, offset int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.flipFile = substr
	f.flipOffset = offset
}

// Writes reports the write operations observed so far.
func (f *FaultFS) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

func (f *FaultFS) pause() {
	f.mu.Lock()
	d := f.slow
	f.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
}

// checkWrite charges one write operation and returns the armed fault
// disposition: inject != nil fails the write outright; tear reports
// that this write should land half its bytes first.
func (f *FaultFS) checkWrite(name string) (inject error, tear bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	if f.failAfter > 0 && f.writes >= f.failAfter {
		return simerr.Wrap(simerr.ErrIO, simerr.Snapshot{Detail: name}, f.failCause,
			"injected write fault on %s", name), false
	}
	if f.tearAt > 0 && f.writes == f.tearAt {
		return nil, true
	}
	return nil, false
}

// MkdirAll implements journal.FS.
func (f *FaultFS) MkdirAll(dir string) error { f.pause(); return f.inner.MkdirAll(dir) }

// ReadFile implements journal.FS, applying the armed read-side flip.
func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	f.pause()
	data, err := f.inner.ReadFile(name)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	substr, off := f.flipFile, f.flipOffset
	f.mu.Unlock()
	if substr != "" && strings.Contains(name, substr) && len(data) > 0 {
		if off >= len(data) {
			off = len(data) - 1
		}
		data = append([]byte(nil), data...)
		data[off] ^= 0x20
	}
	return data, nil
}

// WriteFile implements journal.FS.
func (f *FaultFS) WriteFile(name string, data []byte) error {
	f.pause()
	inject, tear := f.checkWrite(name)
	if inject != nil {
		return inject
	}
	if tear {
		f.inner.WriteFile(name, data[:len(data)/2])
		return simerr.New(simerr.ErrIO, simerr.Snapshot{Detail: name},
			"injected torn write on %s", name)
	}
	return f.inner.WriteFile(name, data)
}

// Rename implements journal.FS.
func (f *FaultFS) Rename(oldname, newname string) error {
	f.pause()
	return f.inner.Rename(oldname, newname)
}

// Remove implements journal.FS.
func (f *FaultFS) Remove(name string) error { f.pause(); return f.inner.Remove(name) }

// Truncate implements journal.FS.
func (f *FaultFS) Truncate(name string, size int64) error {
	f.pause()
	return f.inner.Truncate(name, size)
}

// Stat implements journal.FS.
func (f *FaultFS) Stat(name string) (bool, error) { f.pause(); return f.inner.Stat(name) }

// OpenAppend implements journal.FS; the handle's writes share the
// FaultFS write counter and faults.
func (f *FaultFS) OpenAppend(name string) (journal.File, error) {
	f.pause()
	inner, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: inner}, nil
}

type faultFile struct {
	fs    *FaultFS
	name  string
	inner journal.File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.pause()
	inject, tear := ff.fs.checkWrite(ff.name)
	if inject != nil {
		return 0, inject
	}
	if tear {
		n, _ := ff.inner.Write(p[:len(p)/2])
		ff.inner.Sync()
		return n, simerr.New(simerr.ErrIO, simerr.Snapshot{Detail: ff.name},
			"injected torn append on %s", ff.name)
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error  { ff.fs.pause(); return ff.inner.Sync() }
func (ff *faultFile) Close() error { return ff.inner.Close() }

// diskJob is the job every disk scenario submits: small enough to run
// in milliseconds, real enough to produce a full TEA profile.
const diskJob = `{"workload":"mcf","config":{"scale":0.05},"techniques":["tea"]}`

// diskBaseline computes the profile bytes an uninterrupted local run
// produces for diskJob — the byte-identity reference.
//
//tealint:ctxroot chaos-harness baseline run; no outer context exists to thread
func diskBaseline() ([]byte, error) {
	w, err := workloads.ByName("mcf")
	if err != nil {
		return nil, err
	}
	rc := analysis.DefaultRunConfig()
	rc.Scale = 0.05
	p := w.Build(rc.Iters(w))
	br, err := analysis.RunProgramContext(context.Background(), w, p, rc)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := br.TEA.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// serveHarness drives an in-process journaled server through its HTTP
// handler — the same surface the smoke tests and real clients use.
type serveHarness struct {
	srv     *serve.Server
	handler http.Handler
	cancel  context.CancelFunc
	done    chan struct{}
}

// startHarness builds and runs a server; any construction error is
// returned for the scenario to classify.
//
//tealint:ctxroot chaos-harness worker pool root; the harness owns the pool lifetime
func startHarness(dir string, fs journal.FS) (*serveHarness, error) {
	s, err := serve.New(serve.Config{
		Workers:    2,
		JournalDir: dir,
		JournalFS:  fs,
	})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	h := &serveHarness{srv: s, handler: s.Handler(), cancel: cancel, done: make(chan struct{})}
	go func() { s.Run(ctx); close(h.done) }()
	select {
	case <-h.done:
		// The pool exited before the harness was even handed out — the
		// scenario would hang on a dead server, so fail fast instead.
		return nil, fmt.Errorf("worker pool exited at startup")
	default:
	}
	return h, nil
}

// stop tears the worker pool down; abandon (no journal close) mimics a
// crash, close mimics a clean shutdown.
func (h *serveHarness) stop(closeJournal bool) {
	h.cancel()
	<-h.done
	if closeJournal {
		h.srv.Close()
	}
}

func (h *serveHarness) do(method, path, body string) (int, []byte) {
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
	} else {
		req = httptest.NewRequest(method, path, nil)
	}
	rec := httptest.NewRecorder()
	h.handler.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// submitAndAwait submits diskJob and polls until the job is terminal,
// returning (jobID, status). An empty status means submission failed
// or the job never finished inside timeout.
func (h *serveHarness) submitAndAwait(timeout time.Duration) (id, status string, err error) {
	code, body := h.do(http.MethodPost, "/v1/jobs", diskJob)
	if code != http.StatusAccepted {
		return "", "", fmt.Errorf("submit answered %d: %s", code, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
		return "", "", fmt.Errorf("undecodable submit response %q", body)
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		code, body := h.do(http.MethodGet, "/v1/jobs/"+sub.ID, "")
		if code != http.StatusOK {
			return sub.ID, "", fmt.Errorf("poll answered %d: %s", code, body)
		}
		var v struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(body, &v); err != nil {
			return sub.ID, "", fmt.Errorf("undecodable job view %q", body)
		}
		switch v.Status {
		case "done", "failed", "canceled":
			return sub.ID, v.Status, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return sub.ID, "", fmt.Errorf("job %s not terminal after %v (hang)", sub.ID, timeout)
}

// profileBytes fetches the raw TEA profile document for id.
func (h *serveHarness) profileBytes(id string) ([]byte, error) {
	code, body := h.do(http.MethodGet, "/v1/jobs/"+id+"/profiles/tea", "")
	if code != http.StatusOK {
		return nil, fmt.Errorf("profile answered %d: %s", code, body)
	}
	return body, nil
}

// runDiskScenario executes one scenario with panic containment.
func runDiskScenario(name string, fn func() (bool, string), rep *Report) {
	ok, detail := func() (ok bool, detail string) {
		defer func() {
			if v := recover(); v != nil {
				ok, detail = false, fmt.Sprintf("VIOLATION: panic escaped the durability layer: %v", v)
			}
		}()
		return fn()
	}()
	rep.add("disk:"+name, ok, detail)
}

// DiskSweep runs the disk-fault chaos suite: a fault-free
// crash-recovery control, torn-tail repair, mid-stream corruption,
// ENOSPC and EIO at runtime (degraded-mode contract), and slow I/O.
// Scenario directories live under tmpRoot (one subdirectory each).
func DiskSweep(tmpRoot string) (*Report, error) {
	rep := &Report{Workload: "mcf", Seed: 0}
	baseline, err := diskBaseline()
	if err != nil {
		return nil, fmt.Errorf("faultinject: disk baseline run: %w", err)
	}
	dir := func(name string) string { return tmpRoot + "/" + name }

	// Control: run a job to completion on a journaled server, crash
	// (no clean close), restart on the same journal, and require the
	// restored profile bytes to be identical — the PR's headline
	// property, in-process.
	runDiskScenario("crash-recovery-control", func() (bool, string) {
		h, err := startHarness(dir("control"), nil)
		if err != nil {
			return false, fmt.Sprintf("VIOLATION: journaled server failed to start: %v", err)
		}
		id, status, err := h.submitAndAwait(60 * time.Second)
		if err != nil || status != "done" {
			h.stop(true)
			return false, fmt.Sprintf("VIOLATION: pre-crash job: status %q, err %v", status, err)
		}
		pre, err := h.profileBytes(id)
		if err != nil {
			h.stop(true)
			return false, "VIOLATION: " + err.Error()
		}
		if !bytes.Equal(pre, baseline) {
			h.stop(true)
			return false, "VIOLATION: served profile differs from local run before any fault"
		}
		h.stop(false) // crash: journal never closed

		h2, err := startHarness(dir("control"), nil)
		if err != nil {
			return false, fmt.Sprintf("VIOLATION: restart after crash failed: %v", err)
		}
		defer h2.stop(true)
		post, err := h2.profileBytes(id)
		if err != nil {
			return false, "VIOLATION: recovered job unreadable: " + err.Error()
		}
		if !bytes.Equal(pre, post) {
			return false, "VIOLATION: recovered profile bytes differ from pre-crash bytes"
		}
		return true, "recovered byte-identical"
	}, rep)

	// Torn tail: append half a record to a valid WAL (crash mid-append)
	// and require recovery to truncate and carry on.
	runDiskScenario("torn-tail", func() (bool, string) {
		d := dir("torn")
		j, _, err := journal.Open(d, nil)
		if err != nil {
			return false, fmt.Sprintf("VIOLATION: open: %v", err)
		}
		if err := j.Append(journal.Record{Type: "submitted", JobID: "j-000001"}); err != nil {
			return false, fmt.Sprintf("VIOLATION: append: %v", err)
		}
		j.Close()
		wal := journal.WALPath(d)
		data, err := os.ReadFile(wal)
		if err != nil {
			return false, fmt.Sprintf("VIOLATION: read wal: %v", err)
		}
		// A torn copy of the last record: half of it re-appended.
		torn := append(data, data[len(data)/2:len(data)/2+4]...)
		if err := os.WriteFile(wal, torn, 0o644); err != nil {
			return false, fmt.Sprintf("VIOLATION: write torn wal: %v", err)
		}
		j2, rec, err := journal.Open(d, nil)
		if err != nil {
			return false, fmt.Sprintf("VIOLATION: torn tail failed recovery instead of truncating: %v", err)
		}
		defer j2.Close()
		if rec.TornBytes == 0 || len(rec.Records) != 1 {
			return false, fmt.Sprintf("VIOLATION: torn tail not repaired: %d records, %d torn bytes", len(rec.Records), rec.TornBytes)
		}
		return true, fmt.Sprintf("truncated %d torn bytes, kept %d records", rec.TornBytes, len(rec.Records))
	}, rep)

	// Mid-stream bit flip: all bytes present, digest wrong. Recovery
	// must fail typed — never truncate history, never return garbage.
	runDiskScenario("mid-stream-bit-flip", func() (bool, string) {
		d := dir("bitflip")
		j, _, err := journal.Open(d, nil)
		if err != nil {
			return false, fmt.Sprintf("VIOLATION: open: %v", err)
		}
		j.Append(journal.Record{Type: "submitted", JobID: "j-000001"})
		j.Append(journal.Record{Type: "done", JobID: "j-000001"})
		j.Close()

		ffs := NewFaultFS(nil)
		ffs.FlipBitOnRead("wal.teaj", 12)
		_, _, err = journal.Open(d, ffs)
		if err == nil {
			return false, "VIOLATION: bit-flipped WAL replayed cleanly"
		}
		if !errors.Is(err, simerr.ErrDecode) {
			return false, fmt.Sprintf("VIOLATION: untyped corruption error: %v", err)
		}
		return true, "typed error: " + simerr.ErrDecode.Error()
	}, rep)

	// ENOSPC / EIO at runtime: the first write after startup fails and
	// keeps failing. The server must degrade to memory-only — jobs keep
	// completing with correct bytes, never a crash.
	for _, tc := range []struct {
		name  string
		errno error
	}{
		{"enospc-runtime", syscall.ENOSPC},
		{"eio-runtime", syscall.EIO},
	} {
		runDiskScenario(tc.name, func() (bool, string) {
			ffs := NewFaultFS(nil)
			h, err := startHarness(dir(tc.name), ffs)
			if err != nil {
				return false, fmt.Sprintf("VIOLATION: start: %v", err)
			}
			defer h.stop(true)
			// Arm after startup so Open succeeds and the first job's
			// journal append is what hits the fault.
			ffs.FailWritesAfter(ffs.Writes()+1, tc.errno)
			id, status, err := h.submitAndAwait(60 * time.Second)
			if err != nil || status != "done" {
				return false, fmt.Sprintf("VIOLATION: job under %s: status %q, err %v", tc.name, status, err)
			}
			got, err := h.profileBytes(id)
			if err != nil {
				return false, "VIOLATION: " + err.Error()
			}
			if !bytes.Equal(got, baseline) {
				return false, "VIOLATION: served bytes differ from local run under disk fault"
			}
			if mode := h.srv.Mode(); mode != serve.ModeDegraded {
				return false, fmt.Sprintf("VIOLATION: mode %q after persistent write failure; want %q", mode, serve.ModeDegraded)
			}
			code, body := h.do(http.MethodGet, "/v1/readyz", "")
			if code != http.StatusServiceUnavailable {
				return false, fmt.Sprintf("VIOLATION: degraded server still ready: %d %s", code, body)
			}
			code, _ = h.do(http.MethodGet, "/v1/healthz", "")
			if code != http.StatusOK {
				return false, fmt.Sprintf("VIOLATION: liveness failed on degraded server: %d", code)
			}
			return true, "degraded to memory-only; bytes correct"
		}, rep)
	}

	// Torn append mid-run, then restart: the journal self-repairs and
	// the server comes back.
	runDiskScenario("torn-append-restart", func() (bool, string) {
		ffs := NewFaultFS(nil)
		h, err := startHarness(dir("tornappend"), ffs)
		if err != nil {
			return false, fmt.Sprintf("VIOLATION: start: %v", err)
		}
		ffs.TearWriteAt(ffs.Writes() + 2) // tear the second job record (the "running" append)
		id, status, err := h.submitAndAwait(60 * time.Second)
		if err != nil || status != "done" {
			h.stop(true)
			return false, fmt.Sprintf("VIOLATION: job under torn append: status %q, err %v", status, err)
		}
		if mode := h.srv.Mode(); mode != serve.ModeDegraded {
			h.stop(true)
			return false, fmt.Sprintf("VIOLATION: mode %q after torn append; want %q", mode, serve.ModeDegraded)
		}
		h.stop(false) // crash with the torn record on disk

		h2, err := startHarness(dir("tornappend"), nil)
		if err != nil {
			return false, fmt.Sprintf("VIOLATION: restart on torn WAL failed: %v", err)
		}
		defer h2.stop(true)
		// The job's submitted record survived; the torn tail was cut.
		// The job replays as interrupted and re-runs to done.
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			code, body := h2.do(http.MethodGet, "/v1/jobs/"+id, "")
			if code != http.StatusOK {
				return false, fmt.Sprintf("VIOLATION: recovered job lookup: %d %s", code, body)
			}
			var v struct {
				Status string `json:"status"`
			}
			json.Unmarshal(body, &v)
			if v.Status == "done" {
				got, err := h2.profileBytes(id)
				if err != nil {
					return false, "VIOLATION: " + err.Error()
				}
				if !bytes.Equal(got, baseline) {
					return false, "VIOLATION: re-run after torn append differs from local run"
				}
				return true, "torn tail repaired; interrupted job completed byte-identical"
			}
			if v.Status == "failed" || v.Status == "canceled" {
				return false, fmt.Sprintf("VIOLATION: recovered job ended %q", v.Status)
			}
			time.Sleep(10 * time.Millisecond)
		}
		return false, "VIOLATION: recovered job never completed (hang)"
	}, rep)

	// Slow I/O: everything still completes, nothing degrades.
	runDiskScenario("slow-io", func() (bool, string) {
		ffs := NewFaultFS(nil)
		ffs.SlowIO(2 * time.Millisecond)
		h, err := startHarness(dir("slow"), ffs)
		if err != nil {
			return false, fmt.Sprintf("VIOLATION: start: %v", err)
		}
		defer h.stop(true)
		id, status, err := h.submitAndAwait(120 * time.Second)
		if err != nil || status != "done" {
			return false, fmt.Sprintf("VIOLATION: job under slow I/O: status %q, err %v", status, err)
		}
		got, err := h.profileBytes(id)
		if err != nil {
			return false, "VIOLATION: " + err.Error()
		}
		if !bytes.Equal(got, baseline) {
			return false, "VIOLATION: served bytes differ under slow I/O"
		}
		if mode := h.srv.Mode(); mode != serve.ModeDurable {
			return false, fmt.Sprintf("VIOLATION: slow I/O degraded the server (mode %q)", mode)
		}
		return true, "completed durable under slow I/O"
	}, rep)

	return rep, nil
}
