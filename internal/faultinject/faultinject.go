// Package faultinject is the chaos harness for the capture/replay
// pipeline. It deterministically mutates recorded traces (truncation,
// bit flips, record reordering, and v4-codec-targeted damage to
// pattern tables and column boundaries), corrupts serialized
// checkpoints, and builds pathological programs (self-loops,
// never-hitting loads, maximal dependency chains), then asserts the
// pipeline's robustness contract on every mutant:
//
//	every fault yields either a byte-identical profile or a typed
//	*simerr.Error — never a panic, never a hang, never a silently
//	wrong result.
//
// All fault generation is seed-controlled, so a failing chaos run is
// reproducible from its (seed, workload) pair alone.
package faultinject

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"time"

	"repro/internal/analysis"
	"repro/internal/checkpoint"
	"repro/internal/isa"
	"repro/internal/pics"
	"repro/internal/program"
	"repro/internal/simerr"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Fault is one mutated trace stream.
type Fault struct {
	// Name identifies the mutation (kind plus position), stable for a
	// given seed.
	Name string
	// Data is the mutated stream; the original capture is not aliased.
	Data []byte
}

// Config sizes one chaos sweep.
type Config struct {
	// Seed drives every random choice in the sweep.
	Seed uint64
	// Truncations caps record-boundary truncations (0 = every boundary).
	Truncations int
	// MidTruncations is the number of mid-record truncations.
	MidTruncations int
	// BitFlips is the number of single-bit-flip mutants.
	BitFlips int
	// Swaps is the number of adjacent-record-swap mutants.
	Swaps int
	// TokenFaults is the number of pattern-table mutants: seeded byte
	// corruptions inside block token spans, where a damaged match token
	// (length or distance) desynchronizes the v4 columnar framing.
	TokenFaults int
	// ColumnFaults is the number of column-boundary mutants: corrupted
	// column length prefixes and cross-column byte swaps, the faults
	// that make one column's bytes parse as another's.
	ColumnFaults int
	// CheckpointTruncations is the number of truncated serialized-
	// checkpoint mutants.
	CheckpointTruncations int
	// CheckpointBitFlips is the number of bit-flipped serialized-
	// checkpoint mutants.
	CheckpointBitFlips int
	// Timeout bounds each mutant replay; a mutant exceeding it counts
	// as a hang, which is a contract violation.
	Timeout time.Duration
}

// DefaultConfig returns the sweep size used by the chaos smoke test.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:                  seed,
		Truncations:           64,
		MidTruncations:        16,
		BitFlips:              64,
		Swaps:                 16,
		TokenFaults:           32,
		ColumnFaults:          32,
		CheckpointTruncations: 32,
		CheckpointBitFlips:    32,
		Timeout:               60 * time.Second,
	}
}

// TraceFaults derives the deterministic mutant set for one capture:
// truncations at (a sample of) record boundaries, truncations inside
// records, single-bit flips at seeded byte positions, and swaps of
// adjacent records. Mutants that happen to equal the original stream
// are skipped.
func TraceFaults(data []byte, cfg Config) ([]Fault, error) {
	offsets, err := trace.RecordOffsets(data)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(int64(cfg.Seed)))
	var faults []Fault

	// Record-boundary truncations. Cutting at offset 0 of the record
	// list also exercises the bare-header stream.
	cuts := offsets
	if cfg.Truncations > 0 && len(cuts) > cfg.Truncations {
		cuts = make([]int, 0, cfg.Truncations)
		stride := float64(len(offsets)) / float64(cfg.Truncations)
		for i := 0; i < cfg.Truncations; i++ {
			cuts = append(cuts, offsets[int(float64(i)*stride)])
		}
	}
	for _, off := range cuts {
		faults = append(faults, Fault{
			Name: fmt.Sprintf("truncate@%d", off),
			Data: append([]byte(nil), data[:off]...),
		})
	}

	// Mid-record truncations: cut strictly inside a record's bytes.
	for i := 0; i < cfg.MidTruncations; i++ {
		r := rng.Intn(len(offsets))
		end := len(data)
		if r+1 < len(offsets) {
			end = offsets[r+1]
		}
		if end-offsets[r] < 2 {
			continue
		}
		cut := offsets[r] + 1 + rng.Intn(end-offsets[r]-1)
		faults = append(faults, Fault{
			Name: fmt.Sprintf("midtruncate@%d", cut),
			Data: append([]byte(nil), data[:cut]...),
		})
	}

	// Single-bit flips anywhere in the stream, header included.
	for i := 0; i < cfg.BitFlips; i++ {
		pos := rng.Intn(len(data))
		bit := byte(1) << uint(rng.Intn(8))
		mut := append([]byte(nil), data...)
		mut[pos] ^= bit
		faults = append(faults, Fault{
			Name: fmt.Sprintf("bitflip@%d.%d", pos, bit),
			Data: mut,
		})
	}

	// Adjacent-record swaps: well-formed varints, wrong order. The
	// integrity digest is what catches the ones that still decode.
	for i := 0; i < cfg.Swaps && len(offsets) > 2; i++ {
		r := rng.Intn(len(offsets) - 2)
		a, b, c := offsets[r], offsets[r+1], offsets[r+2]
		mut := append([]byte(nil), data[:a]...)
		mut = append(mut, data[b:c]...)
		mut = append(mut, data[a:b]...)
		mut = append(mut, data[c:]...)
		if bytes.Equal(mut, data) {
			continue
		}
		faults = append(faults, Fault{
			Name: fmt.Sprintf("swap@%d", a),
			Data: mut,
		})
	}
	faults = append(faults, codecFaults(data, cfg, rng)...)
	return faults, nil
}

// codecFaults derives the v4-codec-targeted mutants from the stream's
// structural layout: pattern-table corruptions inside block token
// spans, column length-prefix damage, and cross-column byte swaps.
// These are the faults record-level truncation cannot produce — a
// damaged match token or length prefix leaves every byte in place but
// shifts how the decoder slices them, so the contract (typed decode
// error or byte-identical profile, never a silently wrong one) leans
// entirely on the decoder's framing guards and the integrity digest.
func codecFaults(data []byte, cfg Config, rng *rand.Rand) []Fault {
	lay, err := trace.ParseLayout(data)
	if err != nil || len(lay.Blocks) == 0 {
		return nil
	}
	var faults []Fault

	// Pattern-table faults: corrupt a byte inside a seeded block's
	// token span. Half are bit flips (mangled run lengths / match
	// distances), half overwrite with 0xFF (forces a huge varint,
	// usually an out-of-range match distance).
	for i := 0; i < cfg.TokenFaults; i++ {
		b := lay.Blocks[rng.Intn(len(lay.Blocks))]
		if b.TokenSpan.End <= b.TokenSpan.LenStart {
			continue
		}
		pos := b.TokenSpan.LenStart + rng.Intn(b.TokenSpan.End-b.TokenSpan.LenStart)
		mut := append([]byte(nil), data...)
		if i%2 == 0 {
			mut[pos] ^= byte(1) << uint(rng.Intn(8))
		} else {
			mut[pos] = 0xFF
		}
		if bytes.Equal(mut, data) {
			continue
		}
		faults = append(faults, Fault{
			Name: fmt.Sprintf("token@%d", pos),
			Data: mut,
		})
	}

	// Column-boundary faults: alternate between damaging a column's
	// length prefix (the framing itself) and swapping one byte across
	// two columns of the same block (well-formed framing, misplaced
	// content — only per-column validation or the digest can catch it).
	for i := 0; i < cfg.ColumnFaults; i++ {
		b := lay.Blocks[rng.Intn(len(lay.Blocks))]
		ci := rng.Intn(len(b.Columns))
		col := b.Columns[ci]
		mut := append([]byte(nil), data...)
		var name string
		if i%2 == 0 {
			pos := col.LenStart + rng.Intn(max(col.Start-col.LenStart, 1))
			if i%4 == 0 {
				mut[pos] ^= byte(1) << uint(rng.Intn(8))
			} else {
				mut[pos] = 0xFF
			}
			name = fmt.Sprintf("collen@%d", pos)
		} else {
			cj := rng.Intn(len(b.Columns))
			cb := b.Columns[cj]
			if col.End <= col.Start || cb.End <= cb.Start {
				continue
			}
			pa := col.Start + rng.Intn(col.End-col.Start)
			pb := cb.Start + rng.Intn(cb.End-cb.Start)
			mut[pa], mut[pb] = mut[pb], mut[pa]
			name = fmt.Sprintf("colswap@%d.%d", pa, pb)
		}
		if bytes.Equal(mut, data) {
			continue
		}
		faults = append(faults, Fault{Name: name, Data: mut})
	}
	return faults
}

// CheckpointFaults derives the deterministic corrupt-checkpoint set
// for one serialized checkpoint: truncations at seeded positions and
// single-bit flips anywhere in the stream, digest trailer included.
func CheckpointFaults(data []byte, cfg Config) []Fault {
	rng := rand.New(rand.NewSource(int64(cfg.Seed) + 1))
	var faults []Fault
	for i := 0; i < cfg.CheckpointTruncations; i++ {
		cut := rng.Intn(len(data))
		faults = append(faults, Fault{
			Name: fmt.Sprintf("cp-truncate@%d", cut),
			Data: append([]byte(nil), data[:cut]...),
		})
	}
	for i := 0; i < cfg.CheckpointBitFlips; i++ {
		pos := rng.Intn(len(data))
		bit := byte(1) << uint(rng.Intn(8))
		mut := append([]byte(nil), data...)
		mut[pos] ^= bit
		faults = append(faults, Fault{
			Name: fmt.Sprintf("cp-bitflip@%d.%d", pos, bit),
			Data: mut,
		})
	}
	return faults
}

// decodeCheckpointMutant applies the corrupt-checkpoint contract to
// one mutant: Decode must return a typed *simerr.Error — a corrupt
// snapshot must never restore a core (which could silently record a
// wrong trace and therefore a wrong profile), and must never panic.
func decodeCheckpointMutant(mut []byte) (ok bool, detail string) {
	defer func() {
		if v := recover(); v != nil {
			ok, detail = false, fmt.Sprintf("VIOLATION: panic escaped checkpoint decoding: %v", v)
		}
	}()
	cp, err := checkpoint.Decode(mut)
	if err == nil {
		return false, "VIOLATION: corrupt checkpoint decoded cleanly — a restored core would diverge silently"
	}
	if cp != nil {
		return false, "VIOLATION: Decode returned a checkpoint alongside its error"
	}
	var se *simerr.Error
	if !errors.As(err, &se) {
		return false, fmt.Sprintf("VIOLATION: untyped error: %v", err)
	}
	return true, fmt.Sprintf("typed error: %v", se.Kind)
}

// ProgramFault is one pathological-program scenario: a program built
// to stress a guard, the guard configuration it runs under, and the
// failure kind it must produce (nil = the run must succeed).
type ProgramFault struct {
	Name     string
	Build    func() *program.Program
	Tune     func(rc *analysis.RunConfig)
	WantKind error
}

// PathologicalPrograms returns the guard-stressing scenarios: an
// infinite self-loop (runaway guard), a never-hitting load walk under
// both default guards (must complete — no watchdog false positive) and
// a watchdog tightened below a DRAM stall (must fail loudly as
// deadlock), and a maximal serial dependency chain (must complete).
func PathologicalPrograms() []ProgramFault {
	return []ProgramFault{
		{
			Name: "self-loop",
			Build: func() *program.Program {
				b := program.NewBuilder("chaos-self-loop")
				b.Func("main")
				b.Label("spin")
				b.Jmp("spin")
				b.Halt()
				return b.MustBuild()
			},
			Tune: func(rc *analysis.RunConfig) {
				// Keep the trip fast; the point is the kind, not the bound.
				rc.Core.MaxCycles = 50_000
			},
			WantKind: simerr.ErrRunaway,
		},
		{
			Name:     "never-hit-loads",
			Build:    neverHitLoads,
			Tune:     func(rc *analysis.RunConfig) {},
			WantKind: nil,
		},
		{
			Name:  "never-hit-loads-tight-watchdog",
			Build: neverHitLoads,
			Tune: func(rc *analysis.RunConfig) {
				// Tightened below a DRAM round-trip: the first miss
				// stall must trip the forward-progress watchdog.
				rc.Core.WatchdogCommitCycles = 25
			},
			WantKind: simerr.ErrDeadlock,
		},
		{
			Name: "max-dep-chain",
			Build: func() *program.Program {
				b := program.NewBuilder("chaos-dep-chain")
				b.Func("main")
				b.Movi(isa.X(1), 1)
				b.Movi(isa.X(2), 0)
				b.Movi(isa.X(3), 64)
				b.Label("loop")
				for i := 0; i < 32; i++ {
					b.Mul(isa.X(1), isa.X(1), isa.X(1))
				}
				b.Addi(isa.X(2), isa.X(2), 1)
				b.Blt(isa.X(2), isa.X(3), "loop")
				b.Halt()
				return b.MustBuild()
			},
			Tune:     func(rc *analysis.RunConfig) {},
			WantKind: nil,
		},
	}
}

// neverHitLoads walks a 4 MiB arena with a page-sized stride, so every
// load misses the whole hierarchy — the longest legitimate commit gaps
// the core can produce.
func neverHitLoads() *program.Program {
	b := program.NewBuilder("chaos-never-hit")
	b.Func("main")
	base := b.Alloc(1<<22, 64)
	b.MoviU(isa.X(1), base)
	b.Movi(isa.X(2), 0)
	b.Movi(isa.X(3), 256)
	b.Label("loop")
	b.Load(isa.X(4), isa.X(1), 0)
	b.Addi(isa.X(1), isa.X(1), 4096)
	b.Addi(isa.X(2), isa.X(2), 1)
	b.Blt(isa.X(2), isa.X(3), "loop")
	b.Halt()
	return b.MustBuild()
}

// Outcome is one mutant's disposition.
type Outcome struct {
	// Fault names the mutant or scenario.
	Fault string
	// OK reports whether the robustness contract held.
	OK bool
	// Detail says what happened: "identical", "typed error: ...", or
	// the violation description.
	Detail string
}

// Report summarizes one sweep.
type Report struct {
	Workload   string
	Seed       uint64
	Outcomes   []Outcome
	Violations int
}

func (r *Report) add(fault string, ok bool, detail string) {
	r.Outcomes = append(r.Outcomes, Outcome{Fault: fault, OK: ok, Detail: detail})
	if !ok {
		r.Violations++
	}
}

// fingerprint serializes every technique profile of a run; two runs
// with equal fingerprints produced byte-identical profiles.
func fingerprint(br *analysis.BenchRun) ([]byte, error) {
	var buf bytes.Buffer
	for _, p := range []*pics.Profile{br.Golden, br.TEA, br.NCITEA, br.IBS, br.SPE, br.RIS} {
		if err := p.WriteJSON(&buf); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// replayMutant replays one mutated stream with panic containment and a
// hang bound, classifying the result.
//
//tealint:ctxroot the harness owns the hang-bound timeout; a mutant replay must not inherit outer deadlines that would misclassify hangs
func replayMutant(w workloads.Workload, p *program.Program, rc analysis.RunConfig, data []byte, timeout time.Duration, baseline []byte) (ok bool, detail string) {
	defer func() {
		if v := recover(); v != nil {
			ok, detail = false, fmt.Sprintf("VIOLATION: panic escaped the replay boundary: %v", v)
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	br, err := analysis.ReplayCaptured(ctx, w, p, rc, data)
	if err != nil {
		if errors.Is(err, simerr.ErrCanceled) {
			return false, fmt.Sprintf("VIOLATION: replay exceeded %v (hang)", timeout)
		}
		var se *simerr.Error
		if !errors.As(err, &se) {
			return false, fmt.Sprintf("VIOLATION: untyped error: %v", err)
		}
		return true, fmt.Sprintf("typed error: %v", se.Kind)
	}
	if len(br.Errors) != 0 {
		return false, fmt.Sprintf("VIOLATION: data fault surfaced as probe errors: %v", br.Errors)
	}
	fp, ferr := fingerprint(br)
	if ferr != nil {
		return false, fmt.Sprintf("VIOLATION: fingerprinting mutant run: %v", ferr)
	}
	if !bytes.Equal(fp, baseline) {
		return false, "VIOLATION: silent corruption — profiles differ from baseline with no error"
	}
	return true, "identical"
}

// Sweep runs the full chaos suite for one workload: a fault-free
// baseline, every trace mutant, and every pathological program. It
// returns an error only when the harness itself cannot run (e.g. the
// baseline capture fails); contract violations are reported in the
// Report, not as an error.
//
//tealint:ctxroot chaos-harness entry point invoked by its CLI, which has no context to thread
func Sweep(w workloads.Workload, rc analysis.RunConfig, cfg Config) (*Report, error) {
	rep := &Report{Workload: w.Name, Seed: cfg.Seed}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}

	p := w.Build(int(float64(w.DefaultIters) * rc.Scale))
	ctx := context.Background()
	data, stats, err := analysis.CaptureTrace(ctx, p, rc)
	if err != nil {
		return nil, fmt.Errorf("faultinject: baseline capture: %w", err)
	}
	base, err := analysis.ReplayCaptured(ctx, w, p, rc, data)
	if err != nil {
		return nil, fmt.Errorf("faultinject: baseline replay: %w", err)
	}
	baseline, err := fingerprint(base)
	if err != nil {
		return nil, fmt.Errorf("faultinject: baseline fingerprint: %w", err)
	}

	// The unmutated stream must reproduce the baseline exactly — the
	// sweep's own control.
	ok, detail := replayMutant(w, p, rc, data, cfg.Timeout, baseline)
	rep.add("control-unmutated", ok && detail == "identical", detail)

	faults, err := TraceFaults(data, cfg)
	if err != nil {
		return nil, fmt.Errorf("faultinject: deriving faults: %w", err)
	}
	for _, f := range faults {
		ok, detail := replayMutant(w, p, rc, f.Data, cfg.Timeout, baseline)
		rep.add(f.Name, ok, detail)
	}

	// Checkpoint corruption: serialize a real snapshot of this program
	// and corrupt it. The unmutated control must roundtrip exactly;
	// every mutant must fail decoding with a typed error.
	interval := stats.Committed / 4
	if interval < 2 {
		interval = 2
	}
	gen, err := checkpoint.Generate(ctx, p, rc.Core, checkpoint.Plan{Interval: interval})
	if err != nil {
		return nil, fmt.Errorf("faultinject: checkpoint generation: %w", err)
	}
	if len(gen.Checkpoints) > 0 {
		enc := gen.Checkpoints[0].Encode()
		cp0, derr := checkpoint.Decode(enc)
		switch {
		case derr != nil:
			rep.add("cp-control-unmutated", false, fmt.Sprintf("VIOLATION: pristine checkpoint failed to decode: %v", derr))
		case !reflect.DeepEqual(cp0, gen.Checkpoints[0]):
			rep.add("cp-control-unmutated", false, "VIOLATION: pristine checkpoint roundtrip diverged")
		default:
			rep.add("cp-control-unmutated", true, "identical")
		}
		for _, f := range CheckpointFaults(enc, cfg) {
			ok, detail := decodeCheckpointMutant(f.Data)
			rep.add(f.Name, ok, detail)
		}
	}

	for _, pf := range PathologicalPrograms() {
		prc := rc
		pf.Tune(&prc)
		ok, detail := runPathological(w, pf, prc, cfg.Timeout)
		rep.add("program:"+pf.Name, ok, detail)
	}
	return rep, nil
}

// runPathological executes one guard-stressing program end to end and
// checks its failure kind against the scenario's expectation.
//
//tealint:ctxroot the harness owns the guard timeout; a pathological run must not inherit outer deadlines that would misclassify hangs
func runPathological(w workloads.Workload, pf ProgramFault, rc analysis.RunConfig, timeout time.Duration) (ok bool, detail string) {
	defer func() {
		if v := recover(); v != nil {
			ok, detail = false, fmt.Sprintf("VIOLATION: panic escaped the run boundary: %v", v)
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	br, err := analysis.RunProgramContext(ctx, w, pf.Build(), rc)
	switch {
	case pf.WantKind == nil && err == nil:
		if br == nil || br.TEA == nil {
			return false, "VIOLATION: clean run returned an incomplete BenchRun"
		}
		return true, "completed"
	case pf.WantKind == nil:
		return false, fmt.Sprintf("VIOLATION: expected success, got %v", err)
	case err == nil:
		return false, fmt.Sprintf("VIOLATION: expected %v, run succeeded", pf.WantKind)
	case errors.Is(err, simerr.ErrCanceled):
		return false, fmt.Sprintf("VIOLATION: run exceeded %v (hang)", timeout)
	case errors.Is(err, pf.WantKind):
		return true, fmt.Sprintf("typed error: %v", pf.WantKind)
	default:
		return false, fmt.Sprintf("VIOLATION: expected %v, got %v", pf.WantKind, err)
	}
}
