package faultinject

import (
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/workloads"
)

func chaosConfig() (workloads.Workload, analysis.RunConfig, Config) {
	w, err := workloads.ByName("bwaves")
	if err != nil {
		panic(err)
	}
	rc := analysis.DefaultRunConfig()
	rc.Scale = 0.05
	cfg := Config{
		Seed:           1,
		Truncations:    16,
		MidTruncations: 8,
		BitFlips:       24,
		Swaps:          8,
		Timeout:        60 * time.Second,
	}
	return w, rc, cfg
}

// TestChaosSweep is the differential chaos suite: every mutated trace
// and every pathological program must uphold the robustness contract —
// byte-identical profiles or a typed error, never a crash, hang, or
// silent corruption.
func TestChaosSweep(t *testing.T) {
	w, rc, cfg := chaosConfig()
	rep, err := Sweep(w, rc, cfg)
	if err != nil {
		t.Fatalf("sweep harness failed: %v", err)
	}
	for _, o := range rep.Outcomes {
		if !o.OK {
			t.Errorf("%s: %s", o.Fault, o.Detail)
		}
	}
	if rep.Violations != 0 {
		t.Fatalf("%d contract violations across %d scenarios", rep.Violations, len(rep.Outcomes))
	}

	// The sweep must actually exercise both sides of the contract.
	var identical, typed int
	for _, o := range rep.Outcomes {
		switch {
		case o.Detail == "identical" || o.Detail == "completed":
			identical++
		case strings.HasPrefix(o.Detail, "typed error"):
			typed++
		}
	}
	if identical == 0 || typed == 0 {
		t.Fatalf("degenerate sweep: %d identical, %d typed errors", identical, typed)
	}

	// Reordered-but-well-formed streams are exactly what the integrity
	// digest exists for: no swap may pass as identical.
	for _, o := range rep.Outcomes {
		if strings.HasPrefix(o.Fault, "swap@") && o.Detail == "identical" {
			t.Errorf("%s decoded to identical profiles; digest failed to catch reordering", o.Fault)
		}
	}
}

// TestTraceFaultsDeterministic pins seed-controlled generation: the
// same seed reproduces the exact mutant set, a different seed varies it.
func TestTraceFaultsDeterministic(t *testing.T) {
	w, rc, cfg := chaosConfig()
	p := w.Build(int(float64(w.DefaultIters) * rc.Scale))
	data, _, err := analysis.CaptureTrace(t.Context(), p, rc)
	if err != nil {
		t.Fatal(err)
	}
	a, err := TraceFaults(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TraceFaults(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different fault counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("same seed, different fault %d: %q vs %q", i, a[i].Name, b[i].Name)
		}
	}
	cfg2 := cfg
	cfg2.Seed = 2
	c, err := TraceFaults(data, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].Name != c[i].Name {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical mutant sets")
	}
}
