// Package tracestore is a content-addressed cache for captured trace
// streams — the suite-level half of the paper's "capture once, analyze
// many times" methodology (Section 4). A capture is keyed by a digest
// of everything that determines its bytes: the program's full contents,
// the run configuration, and the trace format version. Two tiers back
// the store: a bounded in-memory LRU for hits within one process, and
// an optional on-disk tier so repeated teaexp/teabench invocations skip
// simulation entirely.
//
// The store is deliberately ignorant of what an entry means: it caches
// opaque byte payloads under 32-byte keys. internal/analysis derives
// the keys (see its cachekey-checked digest function) and wraps trace
// streams in a stats envelope; the Validate hook lets it verify a
// disk-loaded payload end to end (envelope parse + trace integrity
// digest) before the entry is served. A payload that fails validation
// is deleted and reported as a miss — the caller recaptures; no decode
// error ever escapes the cache.
package tracestore

import (
	"container/list"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/simerr"
)

// Key is a content-address: a SHA-256 digest over the capture's
// identity (see Hasher).
type Key [32]byte

// String renders the key as lowercase hex (also the disk filename
// stem).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Disk-tier framing: each entry file is magic, a format byte, the key
// it claims to hold, then the payload. The key inside the file guards
// against renamed or cross-copied files serving the wrong capture.
var diskMagic = [4]byte{'T', 'E', 'A', 'C'}

const diskVersion = 1

// Stats counts store traffic since construction (monotonic, retrieved
// via Snapshot).
type Stats struct {
	// Hits counts Get/GetOrPut calls served from the memory tier.
	Hits uint64
	// DiskHits counts calls served from the disk tier (the entry is
	// promoted to memory).
	DiskHits uint64
	// Misses counts calls no tier could serve.
	Misses uint64
	// Puts counts entries inserted.
	Puts uint64
	// Evictions counts memory-tier entries dropped by the LRU budget.
	Evictions uint64
	// DiskRejects counts disk entries discarded as corrupt, truncated,
	// or mislabeled (each also counts as a miss). It is always the sum
	// of the framing/payload splits below.
	DiskRejects uint64
	// DiskRejectsFraming counts rejects from the framing check: short
	// file, bad magic or version, key mismatch.
	DiskRejectsFraming uint64
	// DiskRejectsPayload counts rejects from the caller's payload
	// validator — the entry framed correctly but its contents were not
	// a decodable trace.
	DiskRejectsPayload uint64
	// PutBytes counts cumulative payload bytes inserted via Put (the
	// encoded, post-codec size — what the disk tier actually stores).
	// With the codec's logical-byte totals (internal/analysis) it gives
	// operators the suite-wide compression ratio for tier sizing.
	PutBytes uint64
	// MemBytes is the memory tier's current payload footprint (a gauge,
	// filled at Snapshot time).
	MemBytes uint64
	// Entries is the memory tier's current entry count (a gauge, filled
	// at Snapshot time).
	Entries uint64
}

// Store is the two-tier content-addressed cache. All methods are safe
// for concurrent use; the suite scheduler captures workloads in
// parallel against one shared store.
type Store struct {
	mu       sync.Mutex
	budget   int64
	used     int64
	entries  map[Key]*list.Element
	lru      *list.List // front = most recently used
	dir      string
	validate func([]byte) error
	stats    Stats
	flights  map[Key]*flight
}

type lruEntry struct {
	key  Key
	data []byte
}

// flight is one in-progress fill (GetOrPut singleflight).
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// New builds a store. memBudget bounds the memory tier in payload
// bytes (0 = unbounded). dir, if non-empty, enables the disk tier
// rooted there (created if absent; creation failure disables the tier
// rather than failing the run — the cache is an accelerator, not a
// dependency). validate, if non-nil, is applied to every disk-loaded
// payload before it is served; entries that fail are deleted and
// treated as misses.
func New(memBudget int64, dir string, validate func([]byte) error) *Store {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			dir = ""
		}
	}
	return &Store{
		budget:   memBudget,
		entries:  make(map[Key]*list.Element),
		lru:      list.New(),
		dir:      dir,
		validate: validate,
		flights:  make(map[Key]*flight),
	}
}

// Dir returns the disk-tier root ("" if the tier is disabled).
func (s *Store) Dir() string { return s.dir }

// Snapshot returns the traffic counters plus the memory tier's current
// footprint gauges.
func (s *Store) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.MemBytes = uint64(s.used)
	st.Entries = uint64(len(s.entries))
	return st
}

// Get returns the payload cached under key and whether any tier held
// it. Callers must treat the returned bytes as immutable: the slice is
// shared with the cache and with every other caller of the same key.
func (s *Store) Get(key Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getLocked(key)
}

func (s *Store) getLocked(key Key) ([]byte, bool) {
	if el, ok := s.entries[key]; ok {
		s.lru.MoveToFront(el)
		s.stats.Hits++
		return el.Value.(*lruEntry).data, true
	}
	if data, ok := s.loadDisk(key); ok {
		s.insertLocked(key, data)
		s.stats.DiskHits++
		return data, true
	}
	s.stats.Misses++
	return nil, false
}

// Put caches the payload under key in both tiers. The store aliases
// data (no copy); the caller must not mutate it afterwards.
func (s *Store) Put(key Key, data []byte) {
	s.mu.Lock()
	s.insertLocked(key, data)
	s.stats.Puts++
	s.stats.PutBytes += uint64(len(data))
	s.mu.Unlock()
	s.writeDisk(key, data)
}

// GetOrPut returns the payload under key, calling fill to produce it
// on a miss. Concurrent callers of the same key share one fill
// (singleflight): exactly one runs, the rest block and receive its
// result. A fill error is returned to every waiter and nothing is
// cached, so transient failures (cancellation, runaway guards) never
// poison the key.
func (s *Store) GetOrPut(key Key, fill func() ([]byte, error)) ([]byte, error) {
	s.mu.Lock()
	if data, ok := s.getLocked(key); ok {
		s.mu.Unlock()
		return data, nil
	}
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		<-f.done
		return f.data, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	f.data, f.err = fill()
	if f.err == nil {
		s.Put(key, f.data)
	}
	s.mu.Lock()
	delete(s.flights, key)
	s.mu.Unlock()
	close(f.done)
	return f.data, f.err
}

// insertLocked admits data into the memory tier, evicting from the LRU
// tail to respect the budget. A payload larger than the whole budget
// is not admitted (it would only evict everything else for one entry
// that cannot fit anyway).
func (s *Store) insertLocked(key Key, data []byte) {
	if el, ok := s.entries[key]; ok {
		ent := el.Value.(*lruEntry)
		s.used += int64(len(data)) - int64(len(ent.data))
		ent.data = data
		s.lru.MoveToFront(el)
		s.evictLocked()
		return
	}
	if s.budget > 0 && int64(len(data)) > s.budget {
		return
	}
	s.entries[key] = s.lru.PushFront(&lruEntry{key: key, data: data})
	s.used += int64(len(data))
	s.evictLocked()
}

func (s *Store) evictLocked() {
	for s.budget > 0 && s.used > s.budget && s.lru.Len() > 0 {
		el := s.lru.Back()
		ent := el.Value.(*lruEntry)
		s.lru.Remove(el)
		delete(s.entries, ent.key)
		s.used -= int64(len(ent.data))
		s.stats.Evictions++
	}
}

func (s *Store) path(key Key) string {
	return filepath.Join(s.dir, key.String()+".tea")
}

// loadDisk reads and validates the disk entry for key. Any defect —
// unreadable file, bad framing, key mismatch, failed payload
// validation — deletes the file and reports a miss.
func (s *Store) loadDisk(key Key) ([]byte, bool) {
	if s.dir == "" {
		return nil, false
	}
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false // absent (or unreadable): plain miss
	}
	if err := checkDiskEntry(key, raw); err != nil {
		os.Remove(s.path(key))
		s.stats.DiskRejects++
		s.stats.DiskRejectsFraming++
		return nil, false
	}
	payload := raw[len(diskMagic)+1+len(key):]
	if s.validate != nil {
		if err := s.validate(payload); err != nil {
			os.Remove(s.path(key))
			s.stats.DiskRejects++
			s.stats.DiskRejectsPayload++
			return nil, false
		}
	}
	return payload, true
}

// PayloadFromDiskEntry strips the disk-tier framing from a raw entry
// file, returning the key the file claims to hold and its payload.
// `teatrace -stats` uses it to inspect cache entries offline; unlike
// the store's own load path it does not require knowing the key up
// front, so a mislabeled file is still inspectable. Framing damage
// fails with a typed simerr.ErrDecode.
func PayloadFromDiskEntry(raw []byte) (Key, []byte, error) {
	var key Key
	hdr := len(diskMagic) + 1 + len(key)
	if len(raw) < hdr {
		return key, nil, simerr.New(simerr.ErrDecode, simerr.Snapshot{},
			"tracestore: entry shorter than header")
	}
	if [4]byte(raw[:4]) != diskMagic {
		return key, nil, simerr.New(simerr.ErrDecode, simerr.Snapshot{},
			"tracestore: bad magic")
	}
	if raw[4] != diskVersion {
		return key, nil, simerr.New(simerr.ErrDecode, simerr.Snapshot{},
			"tracestore: unsupported disk format %d", raw[4])
	}
	key = Key(raw[5:hdr])
	return key, raw[hdr:], nil
}

func checkDiskEntry(key Key, raw []byte) error {
	hdr := len(diskMagic) + 1 + len(key)
	if len(raw) < hdr {
		return fmt.Errorf("tracestore: entry shorter than header")
	}
	if [4]byte(raw[:4]) != diskMagic {
		return fmt.Errorf("tracestore: bad magic")
	}
	if raw[4] != diskVersion {
		return fmt.Errorf("tracestore: unsupported disk format %d", raw[4])
	}
	if Key(raw[5:hdr]) != key {
		return fmt.Errorf("tracestore: entry key does not match filename")
	}
	return nil
}

// writeDisk persists an entry atomically (temp file + rename), so a
// crash mid-write leaves either the old entry or none — never a
// torn file that a later run could half-read. Write failures are
// ignored: the disk tier is best-effort.
func (s *Store) writeDisk(key Key, data []byte) {
	if s.dir == "" {
		return
	}
	buf := make([]byte, 0, len(diskMagic)+1+len(key)+len(data))
	buf = append(buf, diskMagic[:]...)
	buf = append(buf, diskVersion)
	buf = append(buf, key[:]...)
	buf = append(buf, data...)
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, s.path(key)); err != nil {
		os.Remove(name)
	}
}
