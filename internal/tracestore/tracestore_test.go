package tracestore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func testKey(b byte) Key {
	var k Key
	k[0] = b
	return k
}

func payload(b byte, n int) []byte {
	return bytes.Repeat([]byte{b}, n)
}

func TestGetMissThenHit(t *testing.T) {
	s := New(0, "", nil)
	if _, ok := s.Get(testKey(1)); ok {
		t.Fatal("empty store reported a hit")
	}
	s.Put(testKey(1), payload(1, 10))
	got, ok := s.Get(testKey(1))
	if !ok || !bytes.Equal(got, payload(1, 10)) {
		t.Fatalf("Get = %v, %v; want payload, true", got, ok)
	}
	st := s.Snapshot()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 put", st)
	}
}

func TestLRUEviction(t *testing.T) {
	s := New(100, "", nil)
	s.Put(testKey(1), payload(1, 40))
	s.Put(testKey(2), payload(2, 40))
	// Touch 1 so 2 is the LRU victim.
	if _, ok := s.Get(testKey(1)); !ok {
		t.Fatal("key 1 missing before eviction")
	}
	s.Put(testKey(3), payload(3, 40))
	if _, ok := s.Get(testKey(2)); ok {
		t.Fatal("LRU entry 2 survived over the budget")
	}
	if _, ok := s.Get(testKey(1)); !ok {
		t.Fatal("recently-used entry 1 was evicted")
	}
	if _, ok := s.Get(testKey(3)); !ok {
		t.Fatal("newest entry 3 was evicted")
	}
	if ev := s.Snapshot().Evictions; ev != 1 {
		t.Fatalf("Evictions = %d; want 1", ev)
	}
}

func TestOversizedPayloadNotAdmitted(t *testing.T) {
	s := New(100, "", nil)
	s.Put(testKey(1), payload(1, 40))
	s.Put(testKey(2), payload(2, 1000)) // larger than the whole budget
	if _, ok := s.Get(testKey(2)); ok {
		t.Fatal("over-budget payload was admitted")
	}
	if _, ok := s.Get(testKey(1)); !ok {
		t.Fatal("admitting an over-budget payload evicted a resident entry")
	}
}

func TestUpdateInPlace(t *testing.T) {
	s := New(100, "", nil)
	s.Put(testKey(1), payload(1, 40))
	s.Put(testKey(1), payload(9, 60))
	got, ok := s.Get(testKey(1))
	if !ok || !bytes.Equal(got, payload(9, 60)) {
		t.Fatal("re-Put did not replace the payload")
	}
	if ev := s.Snapshot().Evictions; ev != 0 {
		t.Fatalf("re-Put of a resident key evicted %d entries", ev)
	}
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	validated := 0
	validate := func(p []byte) error { validated++; return nil }

	s1 := New(0, dir, validate)
	s1.Put(testKey(7), payload(7, 128))

	// A fresh store on the same directory: memory tier cold, disk hot.
	s2 := New(0, dir, validate)
	got, ok := s2.Get(testKey(7))
	if !ok || !bytes.Equal(got, payload(7, 128)) {
		t.Fatal("disk tier did not serve the persisted entry")
	}
	if validated != 1 {
		t.Fatalf("validator ran %d times; want 1", validated)
	}
	if st := s2.Snapshot(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v; want 1 disk hit", st)
	}
	// The hit promoted the entry: a second Get is a memory hit with no
	// further validation.
	if _, ok := s2.Get(testKey(7)); !ok {
		t.Fatal("promoted entry missing from memory tier")
	}
	if validated != 1 {
		t.Fatalf("validator re-ran on a memory hit (%d times)", validated)
	}
}

// TestDiskCorruptionIsAMiss: every flavor of on-disk defect must read
// as a miss (with the bad file deleted), never as an error — the
// caller's contract is recapture, not ErrDecode.
func TestDiskCorruptionIsAMiss(t *testing.T) {
	key := testKey(5)
	good := func(dir string) string {
		s := New(0, dir, nil)
		s.Put(key, payload(5, 64))
		return filepath.Join(dir, key.String()+".tea")
	}
	cases := []struct {
		name    string
		payload bool // reject attributed to the payload validator, not framing
		corrupt func(path string) error
	}{
		{"truncated header", false, func(p string) error { return os.WriteFile(p, []byte{'T', 'E'}, 0o644) }},
		{"bad magic", false, func(p string) error {
			raw, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			raw[0] = 'X'
			return os.WriteFile(p, raw, 0o644)
		}},
		{"bad version", false, func(p string) error {
			raw, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			raw[4] = 0xFF
			return os.WriteFile(p, raw, 0o644)
		}},
		{"key mismatch", false, func(p string) error {
			raw, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			raw[5] ^= 0xFF
			return os.WriteFile(p, raw, 0o644)
		}},
		{"truncated payload", true, func(p string) error {
			raw, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, raw[:len(raw)-16], 0o644)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := good(dir)
			if err := tc.corrupt(path); err != nil {
				t.Fatal(err)
			}
			// "truncated payload" cuts into the payload, not the header,
			// so it only fails if the validator inspects the payload.
			validate := func(p []byte) error {
				if len(p) != 64 {
					return errors.New("payload length changed")
				}
				return nil
			}
			s := New(0, dir, validate)
			if _, ok := s.Get(key); ok {
				t.Fatal("corrupt disk entry served as a hit")
			}
			st := s.Snapshot()
			if st.DiskRejects != 1 || st.Misses != 1 {
				t.Fatalf("stats = %+v; want 1 disk reject and 1 miss", st)
			}
			// The reject is attributed to exactly one split, and the
			// splits always sum to the total.
			wantFraming, wantPayload := uint64(1), uint64(0)
			if tc.payload {
				wantFraming, wantPayload = 0, 1
			}
			if st.DiskRejectsFraming != wantFraming || st.DiskRejectsPayload != wantPayload {
				t.Fatalf("stats = %+v; want framing=%d payload=%d", st, wantFraming, wantPayload)
			}
			if st.DiskRejectsFraming+st.DiskRejectsPayload != st.DiskRejects {
				t.Fatalf("stats = %+v; splits do not sum to DiskRejects", st)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupt entry file was not deleted")
			}
		})
	}
}

func TestGetOrPutSingleflight(t *testing.T) {
	s := New(0, "", nil)
	var fills atomic.Int32
	release := make(chan struct{})
	const callers = 16
	var wg sync.WaitGroup
	results := make([][]byte, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = s.GetOrPut(testKey(3), func() ([]byte, error) {
				fills.Add(1)
				<-release
				return payload(3, 32), nil
			})
		}(i)
	}
	close(release)
	wg.Wait()
	if n := fills.Load(); n != 1 {
		t.Fatalf("fill ran %d times; want 1 (singleflight)", n)
	}
	for i, r := range results {
		if !bytes.Equal(r, payload(3, 32)) {
			t.Fatalf("caller %d got %v", i, r)
		}
	}
}

func TestGetOrPutErrorNotCached(t *testing.T) {
	s := New(0, "", nil)
	boom := errors.New("boom")
	if _, err := s.GetOrPut(testKey(4), func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("fill error not propagated: %v", err)
	}
	// The failure must not be cached: the next call fills again.
	got, err := s.GetOrPut(testKey(4), func() ([]byte, error) { return payload(4, 8), nil })
	if err != nil || !bytes.Equal(got, payload(4, 8)) {
		t.Fatalf("retry after failed fill: %v, %v", got, err)
	}
}

// TestConcurrentMixedTraffic hammers every entry point from many
// goroutines; run under -race it pins down the locking discipline.
func TestConcurrentMixedTraffic(t *testing.T) {
	s := New(1<<12, t.TempDir(), func([]byte) error { return nil })
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := testKey(byte(i % 13))
				switch i % 3 {
				case 0:
					data, err := s.GetOrPut(k, func() ([]byte, error) {
						return payload(k[0], 64), nil
					})
					if err != nil || len(data) != 64 {
						panic(fmt.Sprintf("GetOrPut: %v %d", err, len(data)))
					}
				case 1:
					if data, ok := s.Get(k); ok && len(data) != 64 {
						panic("short payload from Get")
					}
				case 2:
					s.Put(k, payload(k[0], 64))
				}
			}
		}(w)
	}
	wg.Wait()
}
