// Cache-key derivation. A capture's identity is everything that can
// change its bytes: the program's full contents (instructions, data
// image, function table, name), every knob of the run and core
// configuration, and the trace format version. The Hasher folds each
// of those into one SHA-256 — content addressing, so renaming a cache
// directory or swapping binaries can never serve a stale capture.
//
// Functions marked //tealint:cachekey are checked by the cachekey
// analyzer: every field of their struct parameters (recursively, for
// all-exported structs) must be consumed, so adding a configuration
// field without hashing it fails `go vet` rather than silently keying
// two different captures identically.
package tracestore

import (
	"crypto/sha256"
	"hash"
	"math"

	"repro/internal/branch"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/xiter"
)

// Hasher accumulates a cache key. The zero value is not ready; use
// NewHasher.
type Hasher struct {
	h   hash.Hash
	buf [8]byte
}

// NewHasher returns an empty key accumulator.
func NewHasher() *Hasher {
	return &Hasher{h: sha256.New()}
}

// Sum finalizes the key.
func (h *Hasher) Sum() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}

// Uint folds one 64-bit value (fixed-width little-endian, so values
// never alias across field boundaries).
func (h *Hasher) Uint(v uint64) {
	for i := range h.buf {
		h.buf[i] = byte(v >> (8 * i))
	}
	h.h.Write(h.buf[:])
}

// Int folds a signed value.
func (h *Hasher) Int(v int64) { h.Uint(uint64(v)) }

// Bool folds a flag.
func (h *Hasher) Bool(v bool) {
	if v {
		h.Uint(1)
	} else {
		h.Uint(0)
	}
}

// Float folds a float64 by bit pattern (bit-identical configs, not
// epsilon-equal ones, share captures).
func (h *Hasher) Float(v float64) { h.Uint(math.Float64bits(v)) }

// String folds a length-prefixed string (the prefix keeps "ab","c"
// distinct from "a","bc").
func (h *Hasher) String(s string) {
	h.Uint(uint64(len(s)))
	h.h.Write([]byte(s))
}

// Ints folds a length-prefixed int slice.
func (h *Hasher) Ints(vs []int) {
	h.Uint(uint64(len(vs)))
	for _, v := range vs {
		h.Int(int64(v))
	}
}

// Program folds the program's complete contents: name, every static
// instruction, the function table, and the initial data image (sorted
// by address for determinism).
//
//tealint:cachekey
func (h *Hasher) Program(p *program.Program) {
	h.String(p.Name)
	h.Uint(uint64(len(p.Insts)))
	for _, in := range p.Insts {
		h.Inst(in)
	}
	h.Uint(uint64(len(p.Funcs)))
	for _, f := range p.Funcs {
		h.Function(f)
	}
	addrs := xiter.SortedKeys(p.Data)
	h.Uint(uint64(len(addrs)))
	for _, a := range addrs {
		h.Uint(a)
		h.Uint(p.Data[a])
	}
}

// Inst folds one static instruction.
//
//tealint:cachekey
func (h *Hasher) Inst(in isa.Inst) {
	h.Uint(uint64(in.Op))
	h.Uint(uint64(in.Rd))
	h.Uint(uint64(in.Rs1))
	h.Uint(uint64(in.Rs2))
	h.Int(in.Imm)
	h.Int(int64(in.Target))
	h.String(in.Label)
}

// Function folds one function-table entry.
//
//tealint:cachekey
func (h *Hasher) Function(f program.Function) {
	h.String(f.Name)
	h.Int(int64(f.Start))
	h.Int(int64(f.End))
}

// CPUConfig folds the complete core configuration (Table 2 plus the
// robustness guards and substrates).
//
//tealint:cachekey
func (h *Hasher) CPUConfig(c cpu.Config) {
	h.Int(int64(c.FetchWidth))
	h.Int(int64(c.FetchBufEntries))
	h.Int(int64(c.DecodeWidth))
	h.Uint(c.FrontEndDepth)
	h.Uint(c.RedirectPenalty)
	h.Int(int64(c.BTBEntries))
	h.Uint(c.BTBMissPenalty)
	h.Int(int64(c.ROBEntries))
	h.Int(int64(c.CommitWidth))
	h.Int(int64(c.IntIQEntries))
	h.Int(int64(c.IntIssueWidth))
	h.Int(int64(c.MemIQEntries))
	h.Int(int64(c.MemIssueWidth))
	h.Int(int64(c.FPIQEntries))
	h.Int(int64(c.FPIssueWidth))
	h.Int(int64(c.LQEntries))
	h.Int(int64(c.SQEntries))
	h.Uint(c.MaxCycles)
	h.Uint(c.WatchdogCommitCycles)
	h.Uint(c.ALULatency)
	h.Uint(c.MulLatency)
	h.Uint(c.DivLatency)
	h.Uint(c.FPLatency)
	h.Uint(c.FDivLatency)
	h.Uint(c.FSqrtLatency)
	h.Uint(c.BranchLatency)
	h.Uint(c.ForwardLatency)
	h.MemConfig(c.Mem)
	h.BranchConfig(c.BP)
}

// MemConfig folds the memory-hierarchy configuration.
//
//tealint:cachekey
func (h *Hasher) MemConfig(c mem.Config) {
	h.CacheConfig(c.L1I)
	h.CacheConfig(c.L1D)
	h.CacheConfig(c.LLC)
	h.TLBConfig(c.ITLB)
	h.TLBConfig(c.DTLB)
	h.TLBConfig(c.Walker.L2)
	h.Uint(c.Walker.WalkLatency)
	h.Uint(c.DRAM.Latency)
	h.Uint(c.DRAM.CyclesPerLine)
	h.Bool(c.NextLinePrefetch)
}

// CacheConfig folds one cache level.
//
//tealint:cachekey
func (h *Hasher) CacheConfig(c mem.CacheConfig) {
	h.String(c.Name)
	h.Int(int64(c.SizeBytes))
	h.Int(int64(c.Ways))
	h.Int(int64(c.LineBytes))
	h.Int(int64(c.MSHRs))
	h.Uint(c.HitLatency)
}

// TLBConfig folds one TLB level.
//
//tealint:cachekey
func (h *Hasher) TLBConfig(c mem.TLBConfig) {
	h.String(c.Name)
	h.Int(int64(c.Entries))
	h.Int(int64(c.Ways))
	h.Uint(c.HitLatency)
}

// BranchConfig folds the branch-predictor configuration.
//
//tealint:cachekey
func (h *Hasher) BranchConfig(c branch.Config) {
	h.Int(int64(c.BimodalBits))
	h.Int(int64(c.TableBits))
	h.Int(int64(c.TagBits))
	h.Ints(c.HistoryLengths)
}
