package tracestore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// TestGetOrPutManyKeysOneFillEach stresses the singleflight across a
// key space: many goroutines race GetOrPut over a handful of keys, and
// every key's fill must run exactly once — the serve-layer dedup
// guarantee that N tenants submitting the same job cost one capture,
// even when the submissions land on different keys concurrently.
func TestGetOrPutManyKeysOneFillEach(t *testing.T) {
	s := New(0, "", nil)
	const keys = 5
	const callersPerKey = 12
	var fills [keys]atomic.Int32
	release := make(chan struct{})

	var wg sync.WaitGroup
	errs := make(chan error, keys*callersPerKey)
	for k := 0; k < keys; k++ {
		for c := 0; c < callersPerKey; c++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				data, err := s.GetOrPut(testKey(byte(k)), func() ([]byte, error) {
					fills[k].Add(1)
					<-release // hold every first-caller fill open so waiters pile up
					return payload(byte(k), 64), nil
				})
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(data, payload(byte(k), 64)) {
					errs <- errors.New("waiter observed wrong payload")
				}
			}(k)
		}
	}
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for k := 0; k < keys; k++ {
		if n := fills[k].Load(); n != 1 {
			t.Errorf("key %d filled %d times; want exactly 1", k, n)
		}
	}
	if st := s.Snapshot(); st.Puts != keys {
		t.Errorf("stats = %+v; want exactly %d puts", st, keys)
	}
}

// TestGetOrPutDiskCorruptionRecoveryRace pins the corruption-recovery
// path under contention: a disk-tier entry is corrupted out-of-band,
// then many goroutines race GetOrPut on its key. The store must detect
// the damage (validator), delete the bad file, run exactly one
// recapture for the whole pack, hand every caller the fresh bytes, and
// leave a valid disk entry behind.
func TestGetOrPutDiskCorruptionRecoveryRace(t *testing.T) {
	key := testKey(9)
	dir := t.TempDir()
	validate := func(p []byte) error {
		if len(p) != 64 {
			return errors.New("payload length changed")
		}
		return nil
	}

	// Seed a valid disk entry, then corrupt its payload.
	seed := New(0, dir, validate)
	seed.Put(key, payload(9, 64))
	path := filepath.Join(dir, key.String()+".tea")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-16], 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh store (cold memory tier) must fall through disk to the
	// fill — once, no matter how many goroutines arrive at once.
	s := New(0, dir, validate)
	var fills atomic.Int32
	release := make(chan struct{})
	const callers = 16
	var wg sync.WaitGroup
	results := make([][]byte, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = s.GetOrPut(key, func() ([]byte, error) {
				fills.Add(1)
				<-release
				return payload(9, 64), nil
			})
		}(i)
	}
	close(release)
	wg.Wait()

	if n := fills.Load(); n != 1 {
		t.Fatalf("recapture ran %d times; want exactly 1", n)
	}
	for i, r := range results {
		if !bytes.Equal(r, payload(9, 64)) {
			t.Fatalf("caller %d got %d bytes, want the recaptured payload", i, len(r))
		}
	}
	if st := s.Snapshot(); st.DiskRejects != 1 {
		t.Fatalf("stats = %+v; want exactly 1 disk reject", st)
	}

	// The recapture re-persisted the entry: a third store serves it
	// from disk, validated.
	s3 := New(0, dir, validate)
	got, ok := s3.Get(key)
	if !ok || !bytes.Equal(got, payload(9, 64)) {
		t.Fatal("recovered entry not served from disk by a fresh store")
	}
	if st := s3.Snapshot(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v; want 1 disk hit", st)
	}
}
