package pics

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/events"
	"repro/internal/simerr"
)

// readTestProfile builds a small but representative profile: base and
// combined signatures, several instructions, a seed.
func readTestProfile() *Profile {
	p := NewProfile("tea", events.TEASet)
	p.Seed = 7
	p.Add(0x40, 0, 10.5)
	p.Add(0x40, sig(events.STL1), 3.25)
	p.Add(0x44, sig(events.STL1, events.STLLC), 1)
	p.Add(0x48, sig(events.DRSQ), 0.125)
	return p
}

// TestJSONRoundTrip pins WriteJSON/ReadJSON as exact inverses: decode
// then re-encode reproduces the original document byte for byte.
func TestJSONRoundTrip(t *testing.T) {
	p := readTestProfile()
	var first bytes.Buffer
	if err := p.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	q, err := ReadJSON(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if q.Name != p.Name || q.Seed != p.Seed || q.Set != p.Set {
		t.Fatalf("metadata changed in round trip: %+v vs %+v", q, p)
	}
	var second bytes.Buffer
	if err := q.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("round trip not byte-identical:\n%s\nvs\n%s", first.String(), second.String())
	}
}

// TestReadJSONRejects spells out malformed documents ReadJSON must
// refuse with a typed decode error.
func TestReadJSONRejects(t *testing.T) {
	var buf bytes.Buffer
	if err := readTestProfile().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.String()
	for name, doc := range map[string]string{
		"empty":         "",
		"not-json":      "TEAT\x03",
		"unknown-event": strings.Replace(valid, events.STL1.String(), "NoSuchEvent", 1),
		"bad-signature": strings.Replace(valid, `"signature": "Base"`, `"signature": "Bogus"`, 1),
		"neg-cycles":    strings.Replace(valid, `"cycles": 10.5`, `"cycles": -10.5`, 1),
	} {
		_, err := ReadJSON(strings.NewReader(doc))
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !errors.Is(err, simerr.ErrDecode) {
			t.Errorf("%s: error not ErrDecode: %v", name, err)
		}
	}
}

// FuzzProfileJSON feeds arbitrary bytes to the profile reader: it must
// reject or cleanly error on malformed documents, never panic, and any
// document it accepts must re-encode without failing.
func FuzzProfileJSON(f *testing.F) {
	var buf bytes.Buffer
	if err := readTestProfile().WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	for _, cut := range []int{0, 1, len(valid) / 2, len(valid) - 2} {
		f.Add(valid[:cut])
	}
	for _, pos := range []int{2, len(valid) / 3, len(valid) / 2} {
		mut := append([]byte(nil), valid...)
		mut[pos] ^= 0x20
		f.Add(mut)
	}
	f.Add([]byte("{}"))
	f.Add([]byte(`{"instructions":[{"pc":1,"components":[{"cycles":1e308}]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, simerr.ErrDecode) {
				t.Fatalf("non-decode error from ReadJSON: %v", err)
			}
			return
		}
		if err := p.WriteJSON(io.Discard); err != nil {
			t.Fatalf("accepted profile failed to re-encode: %v", err)
		}
	})
}
