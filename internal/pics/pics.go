// Package pics implements Per-Instruction Cycle Stacks — the paper's
// central data structure — and the error metric of Section 4. A PICS
// breaks the execution time attributed to each static instruction down
// across the (combinations of) performance events the instruction was
// subjected to; the stack height is the instruction's contribution to
// total execution time and each component's size is the impact of that
// event combination.
package pics

import (
	"cmp"
	"fmt"
	"sort"
	"strings"

	"repro/internal/events"
	"repro/internal/program"
	"repro/internal/xiter"
)

// Stack is one cycle stack: cycles per signature (events.PSV). The zero
// signature is the paper's "Base" component (no events).
type Stack map[events.PSV]float64

// Total returns the stack height. Components are summed in signature
// order so the float64 result is identical run to run.
func (s Stack) Total() float64 {
	t := 0.0
	for _, sig := range xiter.SortedKeys(s) {
		t += s[sig]
	}
	return t
}

// Add accumulates w cycles into the signature's component.
func (s Stack) Add(sig events.PSV, w float64) { s[sig] += w }

// Clone returns a deep copy.
func (s Stack) Clone() Stack {
	c := make(Stack, len(s))
	for _, k := range xiter.SortedKeys(s) {
		c[k] = s[k]
	}
	return c
}

// Scale multiplies every component by f.
func (s Stack) Scale(f float64) {
	for _, k := range xiter.SortedKeys(s) {
		s[k] *= f
	}
}

// Project folds the stack's signatures onto an event set: bits outside
// the set are dropped and components with identical projected
// signatures merge. The paper projects the golden reference onto each
// technique's event set for fair comparison (Section 4).
func (s Stack) Project(set events.Set) Stack {
	out := make(Stack, len(s))
	for _, sig := range xiter.SortedKeys(s) {
		out[sig.Mask(set)] += s[sig]
	}
	return out
}

// Profile is a full PICS profile: one cycle stack per static
// instruction, plus the technique's event set.
type Profile struct {
	// Name identifies the technique or configuration that produced the
	// profile.
	Name string
	// Set is the event set signatures are drawn from.
	Set events.Set
	// Seed is the sample-clock seed the producing technique ran with
	// (zero for unseeded producers such as the golden reference). It is
	// recorded in serialized output so a profile can be replayed:
	// identical traces plus an identical seed produce identical PICS.
	Seed uint64
	// Insts maps a static instruction's PC to its cycle stack.
	Insts map[uint64]Stack
}

// NewProfile returns an empty profile.
func NewProfile(name string, set events.Set) *Profile {
	return &Profile{Name: name, Set: set, Insts: make(map[uint64]Stack)}
}

// Add attributes w cycles to (pc, signature); the signature is masked
// to the profile's event set.
func (p *Profile) Add(pc uint64, sig events.PSV, w float64) {
	st := p.Insts[pc]
	if st == nil {
		st = make(Stack)
		p.Insts[pc] = st
	}
	st.Add(sig.Mask(p.Set), w)
}

// Total returns the cycles attributed across all instructions, summed
// in PC order for run-to-run bit identity.
func (p *Profile) Total() float64 {
	t := 0.0
	for _, pc := range xiter.SortedKeys(p.Insts) {
		t += p.Insts[pc].Total()
	}
	return t
}

// Normalize scales the profile so its total equals total. Sampled
// profiles attribute (#samples × period) cycles; normalizing to the
// golden total removes boundary effects before error comparison.
func (p *Profile) Normalize(total float64) {
	cur := p.Total()
	if cur == 0 || total == 0 {
		return
	}
	f := total / cur
	for _, pc := range xiter.SortedKeys(p.Insts) {
		p.Insts[pc].Scale(f)
	}
}

// Project returns the profile folded onto a (smaller) event set.
func (p *Profile) Project(set events.Set) *Profile {
	out := NewProfile(p.Name, set)
	out.Seed = p.Seed
	for _, pc := range xiter.SortedKeys(p.Insts) {
		out.Insts[pc] = p.Insts[pc].Project(set)
	}
	return out
}

// ByFunction aggregates the profile at function granularity using the
// program's symbol table.
func (p *Profile) ByFunction(prog *program.Program) map[string]Stack {
	out := make(map[string]Stack)
	for _, pc := range xiter.SortedKeys(p.Insts) {
		fn := prog.FuncOfPC(pc)
		dst := out[fn]
		if dst == nil {
			dst = make(Stack)
			out[fn] = dst
		}
		st := p.Insts[pc]
		for _, sig := range xiter.SortedKeys(st) {
			dst[sig] += st[sig]
		}
	}
	return out
}

// Application aggregates the whole profile into a single stack.
func (p *Profile) Application() Stack {
	out := make(Stack)
	for _, pc := range xiter.SortedKeys(p.Insts) {
		st := p.Insts[pc]
		for _, sig := range xiter.SortedKeys(st) {
			out[sig] += st[sig]
		}
	}
	return out
}

// TopInstructions returns the n instructions with the tallest stacks,
// most expensive first. Stack heights are computed once per
// instruction rather than inside the sort comparator.
func (p *Profile) TopInstructions(n int) []uint64 {
	pcs := xiter.SortedKeys(p.Insts)
	totals := make(map[uint64]float64, len(pcs))
	for _, pc := range pcs {
		totals[pc] = p.Insts[pc].Total()
	}
	sort.Slice(pcs, func(i, j int) bool {
		ti, tj := totals[pcs[i]], totals[pcs[j]]
		if ti != tj {
			return ti > tj
		}
		return pcs[i] < pcs[j] // deterministic tie-break
	})
	if len(pcs) > n {
		pcs = pcs[:n]
	}
	return pcs
}

// Error computes the paper's error metric between a technique's profile
// and the golden reference at instruction granularity:
//
//	E = (C_total − Σ_u Σ_i min(c_i,u, ĉ_i,u)) / C_total
//
// where C_total is the golden total. The golden profile is projected
// onto the technique's event set first, and the technique's profile is
// normalized to the golden total.
func Error(test, golden *Profile) float64 {
	g := golden.Project(test.Set)
	t := test.Project(test.Set) // cheap copy; keeps inputs untouched
	total := g.Total()
	if total == 0 {
		return 0
	}
	t.Normalize(total)
	return errorBetween(t.Insts, g.Insts, total)
}

// ErrorByFunction computes the same metric at function granularity.
func ErrorByFunction(test, golden *Profile, prog *program.Program) float64 {
	g := golden.Project(test.Set)
	t := test.Project(test.Set)
	total := g.Total()
	if total == 0 {
		return 0
	}
	t.Normalize(total)
	return errorBetween(t.ByFunction(prog), g.ByFunction(prog), total)
}

// ErrorApplication computes the metric with the whole application as a
// single unit (only component mix matters).
func ErrorApplication(test, golden *Profile) float64 {
	g := golden.Project(test.Set)
	t := test.Project(test.Set)
	total := g.Total()
	if total == 0 {
		return 0
	}
	t.Normalize(total)
	return errorBetween(
		map[string]Stack{"app": t.Application()},
		map[string]Stack{"app": g.Application()},
		total)
}

func errorBetween[K cmp.Ordered](test, golden map[K]Stack, total float64) float64 {
	correct := 0.0
	for _, key := range xiter.SortedKeys(golden) {
		gst := golden[key]
		tst := test[key]
		if tst == nil {
			continue
		}
		for _, sig := range xiter.SortedKeys(gst) {
			gv := gst[sig]
			tv := tst[sig]
			if tv < gv {
				correct += tv
			} else {
				correct += gv
			}
		}
	}
	e := (total - correct) / total
	// Clamp floating-point residue: the metric is in [0, 1] by
	// construction, but summation can leave ~1e-16 of noise on either
	// side.
	if e < 0 {
		return 0
	}
	if e > 1 {
		return 1
	}
	return e
}

// Render returns a human-readable listing of the stack's components,
// largest first, as fractions of the reference total.
func (s Stack) Render(total float64) string {
	type comp struct {
		sig events.PSV
		v   float64
	}
	comps := make([]comp, 0, len(s))
	for _, sig := range xiter.SortedKeys(s) {
		comps = append(comps, comp{sig, s[sig]})
	}
	sort.Slice(comps, func(i, j int) bool {
		if comps[i].v != comps[j].v {
			return comps[i].v > comps[j].v
		}
		return comps[i].sig < comps[j].sig
	})
	var b strings.Builder
	for _, c := range comps {
		pct := 0.0
		if total > 0 {
			pct = 100 * c.v / total
		}
		fmt.Fprintf(&b, "    %-24s %12.0f cycles  %5.2f%%\n", c.sig.String(), c.v, pct)
	}
	return b.String()
}

// RenderInstruction formats one instruction's stack with its
// disassembly and owning function.
func (p *Profile) RenderInstruction(pc uint64, prog *program.Program, total float64) string {
	st := p.Insts[pc]
	if st == nil {
		return fmt.Sprintf("  %#08x: no samples\n", pc)
	}
	in := prog.Inst(pc)
	dis := "?"
	if in != nil {
		dis = in.String()
	}
	head := fmt.Sprintf("  %#08x  %-28s [%s]  height %.0f cycles (%.2f%% of total)\n",
		pc, dis, prog.FuncOfPC(pc), st.Total(), 100*st.Total()/total)
	return head + st.Render(total)
}
