package pics

import (
	"repro/internal/events"
	"repro/internal/isa"
)

// numSigs is the number of distinct signature values a PSV can take.
const numSigs = 1 << events.NumEvents

// Accum is a dense PICS accumulator for the per-cycle hot path. Where
// Profile hashes every attribution into a two-level map, Accum indexes
// a flat slice by (static-instruction index, masked signature) — the
// program's static instruction count is known up front, and a masked
// PSV is at most numSigs-1. Accumulation order per slot is identical to
// the map path (the same sequence of float64 additions), so a
// materialized Accum is bit-identical to a Profile built directly.
type Accum struct {
	name  string
	set   events.Set
	seed  uint64
	dense []float64 // [instIdx*numSigs + maskedSig]
}

// NewAccum returns an accumulator for a program with nInsts static
// instructions.
func NewAccum(name string, set events.Set, nInsts int) *Accum {
	return &Accum{
		name:  name,
		set:   set,
		dense: make([]float64, nInsts*numSigs),
	}
}

// SetSeed records the producing technique's sample-clock seed for the
// materialized profile.
func (a *Accum) SetSeed(seed uint64) { a.seed = seed }

// Add attributes w cycles to (static instruction index, signature); the
// signature is masked to the accumulator's event set.
func (a *Accum) Add(instIdx int, sig events.PSV, w float64) {
	a.dense[instIdx*numSigs+int(sig.Mask(a.set))] += w
}

// AddPC is Add keyed by the instruction's code address.
func (a *Accum) AddPC(pc uint64, sig events.PSV, w float64) {
	a.Add(isa.IndexOf(pc), sig, w)
}

// Profile materializes the accumulated stacks into a map-based Profile.
// Only instructions that received attribution appear, exactly as if
// every Add had gone through Profile.Add directly.
func (a *Accum) Profile() *Profile {
	p := NewProfile(a.name, a.set)
	p.Seed = a.seed
	for base := 0; base < len(a.dense); base += numSigs {
		var st Stack
		for s, v := range a.dense[base : base+numSigs] {
			if v == 0 {
				continue
			}
			if st == nil {
				st = make(Stack)
				p.Insts[isa.PCOf(base/numSigs)] = st
			}
			st[events.PSV(s)] = v
		}
	}
	return p
}
