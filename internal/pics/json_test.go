package pics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/events"
)

func TestWriteJSONShape(t *testing.T) {
	p := NewProfile("TEA", events.TEASet)
	p.Add(0x100, sig(events.STL1, events.STLLC), 70)
	p.Add(0x104, 0, 30)
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Name   string   `json:"name"`
		Events []string `json:"events"`
		Total  float64  `json:"total_cycles"`
		Insts  []struct {
			PC         uint64  `json:"pc"`
			Height     float64 `json:"height_cycles"`
			Components []struct {
				Signature string   `json:"signature"`
				Events    []string `json:"events"`
				Cycles    float64  `json:"cycles"`
			} `json:"components"`
		} `json:"instructions"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if decoded.Name != "TEA" || decoded.Total != 100 {
		t.Errorf("header wrong: %+v", decoded)
	}
	if len(decoded.Events) != 9 {
		t.Errorf("event list has %d entries", len(decoded.Events))
	}
	if len(decoded.Insts) != 2 || decoded.Insts[0].PC != 0x100 {
		t.Errorf("instructions not sorted by height: %+v", decoded.Insts)
	}
	c0 := decoded.Insts[0].Components[0]
	if c0.Signature != "(ST-L1,ST-LLC)" || c0.Cycles != 70 || len(c0.Events) != 2 {
		t.Errorf("component wrong: %+v", c0)
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	p := NewProfile("x", events.TEASet)
	for i := uint64(0); i < 20; i++ {
		p.Add(i*4, events.PSV(i)&events.PSV(events.TEASet), float64(i+1))
	}
	var a, b bytes.Buffer
	if err := p.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("JSON output is not deterministic")
	}
}

func TestDiffProfiles(t *testing.T) {
	before := NewProfile("before", events.TEASet)
	before.Add(0x100, sig(events.STLLC), 100) // optimized away
	before.Add(0x104, 0, 20)                  // unchanged
	after := NewProfile("after", events.TEASet)
	after.Add(0x100, sig(events.STL1), 10) // now an LLC hit
	after.Add(0x104, 0, 20)
	after.Add(0x108, sig(events.DRSQ), 40) // new bottleneck

	diffs := DiffProfiles(before, after)
	if len(diffs) != 3 {
		t.Fatalf("got %d diffs", len(diffs))
	}
	// Sorted by |delta|: 0x100 (-90), 0x108 (+40), 0x104 (0).
	if diffs[0].PC != 0x100 || diffs[0].Delta != -90 {
		t.Errorf("top diff wrong: %+v", diffs[0])
	}
	if diffs[1].PC != 0x108 || diffs[1].Delta != 40 {
		t.Errorf("second diff wrong: %+v", diffs[1])
	}
	if diffs[2].PC != 0x104 || diffs[2].Delta != 0 {
		t.Errorf("unchanged diff wrong: %+v", diffs[2])
	}
	// Signature-level deltas on the optimized load.
	sd := diffs[0].SignatureDeltas
	if sd[sig(events.STLLC)] != -100 || sd[sig(events.STL1)] != 10 {
		t.Errorf("signature deltas wrong: %v", sd)
	}
}

func TestDiffEmptyProfiles(t *testing.T) {
	a := NewProfile("a", events.TEASet)
	b := NewProfile("b", events.TEASet)
	if diffs := DiffProfiles(a, b); len(diffs) != 0 {
		t.Errorf("empty diff should be empty, got %v", diffs)
	}
}

func TestJSONContainsBaseLabel(t *testing.T) {
	p := NewProfile("x", events.TEASet)
	p.Add(0, 0, 5)
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"Base"`) {
		t.Errorf("Base component missing from JSON:\n%s", buf.String())
	}
}
