package pics

import (
	"fmt"
	"strings"

	"repro/internal/events"
	"repro/internal/isa"
	"repro/internal/program"
)

// ByBlock aggregates the profile at basic-block granularity using the
// program's control-flow graph.
func (p *Profile) ByBlock(prog *program.Program) map[string]Stack {
	blocks := prog.BasicBlocks()
	out := make(map[string]Stack)
	for pc, st := range p.Insts {
		idx := program.BlockOf(blocks, isa.IndexOf(pc))
		name := "<unknown>"
		if idx >= 0 {
			name = blocks[idx].Name()
		}
		dst := out[name]
		if dst == nil {
			dst = make(Stack)
			out[name] = dst
		}
		for sig, v := range st {
			dst[sig] += v
		}
	}
	return out
}

// ErrorByBlock computes the Section 4 error metric at basic-block
// granularity.
func ErrorByBlock(test, golden *Profile, prog *program.Program) float64 {
	g := golden.Project(test.Set)
	t := test.Project(test.Set)
	total := g.Total()
	if total == 0 {
		return 0
	}
	t.Normalize(total)
	return errorBetween(t.ByBlock(prog), g.ByBlock(prog), total)
}

// RenderBars renders a cycle stack as an ASCII bar, one row per
// component, scaled so that width columns represent the reference
// total — the paper's PICS visualization at a glance.
func (s Stack) RenderBars(total float64, width int) string {
	if width <= 0 {
		width = 60
	}
	var b strings.Builder
	for _, sig := range sortedSigs(s) {
		v := s[sig]
		frac := 0.0
		if total > 0 {
			frac = v / total
		}
		n := int(frac*float64(width) + 0.5)
		if n == 0 && v > 0 {
			n = 1
		}
		fmt.Fprintf(&b, "    %-24s |%-*s| %5.2f%%\n",
			sig.String(), width, strings.Repeat("#", minInt(n, width)), 100*frac)
	}
	return b.String()
}

func sortedSigs(s Stack) []events.PSV {
	sigs := make([]events.PSV, 0, len(s))
	for sig := range s {
		sigs = append(sigs, sig)
	}
	for i := 1; i < len(sigs); i++ {
		for j := i; j > 0 && (s[sigs[j]] > s[sigs[j-1]] ||
			(s[sigs[j]] == s[sigs[j-1]] && sigs[j] < sigs[j-1])); j-- {
			sigs[j], sigs[j-1] = sigs[j-1], sigs[j]
		}
	}
	return sigs
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
