package pics

import (
	"fmt"
	"slices"
	"strings"

	"repro/internal/events"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/xiter"
)

// ByBlock aggregates the profile at basic-block granularity using the
// program's control-flow graph.
func (p *Profile) ByBlock(prog *program.Program) map[string]Stack {
	blocks := prog.BasicBlocks()
	out := make(map[string]Stack)
	for _, pc := range xiter.SortedKeys(p.Insts) {
		idx := program.BlockOf(blocks, isa.IndexOf(pc))
		name := "<unknown>"
		if idx >= 0 {
			name = blocks[idx].Name()
		}
		dst := out[name]
		if dst == nil {
			dst = make(Stack)
			out[name] = dst
		}
		st := p.Insts[pc]
		for _, sig := range xiter.SortedKeys(st) {
			dst[sig] += st[sig]
		}
	}
	return out
}

// ErrorByBlock computes the Section 4 error metric at basic-block
// granularity.
func ErrorByBlock(test, golden *Profile, prog *program.Program) float64 {
	g := golden.Project(test.Set)
	t := test.Project(test.Set)
	total := g.Total()
	if total == 0 {
		return 0
	}
	t.Normalize(total)
	return errorBetween(t.ByBlock(prog), g.ByBlock(prog), total)
}

// RenderBars renders a cycle stack as an ASCII bar, one row per
// component, scaled so that width columns represent the reference
// total — the paper's PICS visualization at a glance.
func (s Stack) RenderBars(total float64, width int) string {
	if width <= 0 {
		width = 60
	}
	var b strings.Builder
	for _, sig := range sortedSigs(s) {
		v := s[sig]
		frac := 0.0
		if total > 0 {
			frac = v / total
		}
		n := int(frac*float64(width) + 0.5)
		if n == 0 && v > 0 {
			n = 1
		}
		fmt.Fprintf(&b, "    %-24s |%-*s| %5.2f%%\n",
			sig.String(), width, strings.Repeat("#", minInt(n, width)), 100*frac)
	}
	return b.String()
}

// sortedSigs orders a stack's signatures by descending cycles, with
// the signature value itself as the tie-break.
func sortedSigs(s Stack) []events.PSV {
	sigs := xiter.SortedKeys(s)
	slices.SortStableFunc(sigs, func(a, b events.PSV) int {
		switch {
		case s[a] > s[b]:
			return -1
		case s[a] < s[b]:
			return 1
		}
		return 0
	})
	return sigs
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
