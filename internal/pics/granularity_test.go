package pics

import (
	"strings"
	"testing"

	"repro/internal/events"
	"repro/internal/isa"
	"repro/internal/program"
)

func loopProgram() *program.Program {
	b := program.NewBuilder("loop")
	b.Func("main")
	b.Movi(isa.X(1), 0)
	b.Movi(isa.X(2), 10)
	b.Label("top")
	b.Addi(isa.X(1), isa.X(1), 1)
	b.Addi(isa.X(3), isa.X(1), 2)
	b.Blt(isa.X(1), isa.X(2), "top")
	b.Halt()
	return b.MustBuild()
}

func TestByBlockAggregation(t *testing.T) {
	prog := loopProgram()
	p := NewProfile("x", events.TEASet)
	// Indices 2,3,4 form the loop block; put cycles on 2 and 4.
	p.Add(isa.PCOf(2), 0, 30)
	p.Add(isa.PCOf(4), sig(events.FLMB), 20)
	p.Add(isa.PCOf(0), 0, 5)
	blocks := p.ByBlock(prog)
	var loopStack Stack
	for name, st := range blocks {
		if strings.Contains(name, "bb") && st.Total() == 50 {
			loopStack = st
		}
	}
	if loopStack == nil {
		t.Fatalf("loop block aggregation missing: %v", blocks)
	}
	if !almost(loopStack[sig(events.FLMB)], 20) {
		t.Errorf("block stack lost signature structure")
	}
}

func TestErrorByBlockForgivesIntraBlockMisattribution(t *testing.T) {
	prog := loopProgram()
	a := NewProfile("a", events.TEASet)
	g := NewProfile("g", events.TEASet)
	// Same block (loop body indices 2..4), different instruction.
	a.Add(isa.PCOf(2), 0, 100)
	g.Add(isa.PCOf(3), 0, 100)
	if e := Error(a, g); !almost(e, 1) {
		t.Errorf("instruction error = %v, want 1", e)
	}
	if e := ErrorByBlock(a, g, prog); !almost(e, 0) {
		t.Errorf("block error = %v, want 0 for intra-block misattribution", e)
	}
	// Across blocks the error survives.
	a2 := NewProfile("a2", events.TEASet)
	a2.Add(isa.PCOf(0), 0, 100) // preamble block
	if e := ErrorByBlock(a2, g, prog); !almost(e, 1) {
		t.Errorf("cross-block error = %v, want 1", e)
	}
}

func TestGranularityOrdering(t *testing.T) {
	// Block error <= instruction error; function error <= block error
	// (each aggregation merges units).
	prog := loopProgram()
	a := NewProfile("a", events.TEASet)
	g := NewProfile("g", events.TEASet)
	a.Add(isa.PCOf(2), 0, 60)
	a.Add(isa.PCOf(0), 0, 40)
	g.Add(isa.PCOf(3), 0, 50)
	g.Add(isa.PCOf(1), 0, 50)
	instErr := Error(a, g)
	blockErr := ErrorByBlock(a, g, prog)
	fnErr := ErrorByFunction(a, g, prog)
	if blockErr > instErr+1e-9 {
		t.Errorf("block error %v exceeds instruction error %v", blockErr, instErr)
	}
	if fnErr > blockErr+1e-9 {
		t.Errorf("function error %v exceeds block error %v", fnErr, blockErr)
	}
}

func TestRenderBars(t *testing.T) {
	st := make(Stack)
	st.Add(sig(events.STL1), 50)
	st.Add(0, 25)
	out := st.RenderBars(100, 40)
	if !strings.Contains(out, "ST-L1") || !strings.Contains(out, "Base") {
		t.Errorf("bars missing components:\n%s", out)
	}
	// The ST-L1 bar (50%) must be about twice the Base bar (25%).
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d bar lines", len(lines))
	}
	c1 := strings.Count(lines[0], "#")
	c2 := strings.Count(lines[1], "#")
	if c1 != 20 || c2 != 10 {
		t.Errorf("bar widths %d/%d, want 20/10", c1, c2)
	}
	// Largest component renders first.
	if !strings.Contains(lines[0], "ST-L1") {
		t.Errorf("components not sorted by size")
	}
}

func TestRenderBarsTinyComponentVisible(t *testing.T) {
	st := make(Stack)
	st.Add(0, 0.1)
	out := st.RenderBars(1000, 50)
	if strings.Count(out, "#") != 1 {
		t.Errorf("tiny nonzero component should render one mark:\n%s", out)
	}
}

func TestRenderBarsDefaultWidth(t *testing.T) {
	st := make(Stack)
	st.Add(0, 100)
	out := st.RenderBars(100, 0)
	if strings.Count(out, "#") != 60 {
		t.Errorf("default width should be 60, got %d", strings.Count(out, "#"))
	}
}
