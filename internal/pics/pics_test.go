package pics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/events"
	"repro/internal/isa"
	"repro/internal/program"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func sig(evs ...events.Event) events.PSV {
	var p events.PSV
	for _, e := range evs {
		p = p.Set(e)
	}
	return p
}

func TestStackAddAndTotal(t *testing.T) {
	s := make(Stack)
	s.Add(0, 10)
	s.Add(sig(events.STL1), 5)
	s.Add(sig(events.STL1), 5)
	if !almost(s.Total(), 20) {
		t.Errorf("total = %v, want 20", s.Total())
	}
	if !almost(s[sig(events.STL1)], 10) {
		t.Errorf("ST-L1 component = %v, want 10", s[sig(events.STL1)])
	}
}

func TestStackProjectMergesComponents(t *testing.T) {
	s := make(Stack)
	s.Add(sig(events.STL1, events.STLLC), 7) // combined
	s.Add(sig(events.STL1), 3)
	s.Add(sig(events.FLMO), 2) // dropped by IBS set -> Base
	p := s.Project(events.IBSSet)
	// ST-LLC is not in IBS's set: both ST-L1 components merge.
	if !almost(p[sig(events.STL1)], 10) {
		t.Errorf("projected ST-L1 = %v, want 10", p[sig(events.STL1)])
	}
	if !almost(p[0], 2) {
		t.Errorf("projected Base = %v, want 2 (FL-MO dropped)", p[0])
	}
	if !almost(p.Total(), s.Total()) {
		t.Errorf("projection changed total: %v vs %v", p.Total(), s.Total())
	}
}

func TestProfileAddMasksToSet(t *testing.T) {
	p := NewProfile("x", events.SPESet)
	p.Add(0x100, sig(events.FLEX, events.STL1), 4)
	st := p.Insts[0x100]
	// FL-EX is outside SPE's set: the component key keeps only ST-L1.
	if !almost(st[sig(events.STL1)], 4) {
		t.Errorf("masked add wrong: %v", st)
	}
}

func TestNormalize(t *testing.T) {
	p := NewProfile("x", events.TEASet)
	p.Add(1, 0, 30)
	p.Add(2, 0, 70)
	p.Normalize(1000)
	if !almost(p.Total(), 1000) {
		t.Errorf("normalized total = %v", p.Total())
	}
	if !almost(p.Insts[1].Total(), 300) {
		t.Errorf("component scaled wrong: %v", p.Insts[1].Total())
	}
}

func TestErrorIdenticalProfilesIsZero(t *testing.T) {
	p := NewProfile("a", events.TEASet)
	p.Add(1, sig(events.STL1), 100)
	p.Add(2, 0, 50)
	if e := Error(p, p); !almost(e, 0) {
		t.Errorf("self error = %v, want 0", e)
	}
}

func TestErrorDisjointProfilesIsOne(t *testing.T) {
	a := NewProfile("a", events.TEASet)
	a.Add(1, 0, 100)
	g := NewProfile("g", events.TEASet)
	g.Add(2, 0, 100)
	if e := Error(a, g); !almost(e, 1) {
		t.Errorf("disjoint error = %v, want 1", e)
	}
}

func TestErrorComponentMisattribution(t *testing.T) {
	// Same instruction, same height, wrong signature: half the cycles
	// are on the wrong component -> error counts them.
	a := NewProfile("a", events.TEASet)
	a.Add(1, sig(events.STL1), 100)
	g := NewProfile("g", events.TEASet)
	g.Add(1, sig(events.STL1), 50)
	g.Add(1, sig(events.STTLB), 50)
	if e := Error(a, g); !almost(e, 0.5) {
		t.Errorf("misattribution error = %v, want 0.5", e)
	}
}

func TestErrorProjectsGoldenOntoTechniqueSet(t *testing.T) {
	// Golden distinguishes ST-L1 vs (ST-L1,ST-LLC); a technique without
	// ST-LLC support cannot and must not be penalized for that.
	tech := NewProfile("t", events.NewSet(events.STL1))
	tech.Add(1, sig(events.STL1), 100)
	g := NewProfile("g", events.TEASet)
	g.Add(1, sig(events.STL1), 40)
	g.Add(1, sig(events.STL1, events.STLLC), 60)
	if e := Error(tech, g); !almost(e, 0) {
		t.Errorf("error = %v, want 0 after projection", e)
	}
}

func TestErrorNormalizesSampledTotals(t *testing.T) {
	// A sampled profile with the right *shape* but half the raw total
	// must be error-free after normalization.
	a := NewProfile("a", events.TEASet)
	a.Add(1, 0, 30)
	a.Add(2, 0, 20)
	g := NewProfile("g", events.TEASet)
	g.Add(1, 0, 60)
	g.Add(2, 0, 40)
	if e := Error(a, g); !almost(e, 0) {
		t.Errorf("scaled error = %v, want 0", e)
	}
}

func TestErrorBounds(t *testing.T) {
	f := func(seedA, seedB uint16) bool {
		a := NewProfile("a", events.TEASet)
		g := NewProfile("g", events.TEASet)
		// Simple deterministic pseudo-profiles.
		for i := 0; i < 8; i++ {
			a.Add(uint64(i%5), events.PSV(seedA>>(i%4))&events.PSV(events.TEASet), float64(1+i*int(seedA%7)))
			g.Add(uint64(i%5), events.PSV(seedB>>(i%4))&events.PSV(events.TEASet), float64(1+i*int(seedB%5)))
		}
		e := Error(a, g)
		return e >= -1e-9 && e <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func buildTwoFuncProgram() *program.Program {
	b := program.NewBuilder("two")
	b.Func("f")
	b.Nop()
	b.Nop()
	b.Func("g")
	b.Nop()
	b.Halt()
	return b.MustBuild()
}

func TestByFunctionAggregation(t *testing.T) {
	prog := buildTwoFuncProgram()
	p := NewProfile("x", events.TEASet)
	p.Add(isa.PCOf(0), 0, 10)
	p.Add(isa.PCOf(1), sig(events.STL1), 5)
	p.Add(isa.PCOf(2), 0, 7)
	fn := p.ByFunction(prog)
	if !almost(fn["f"].Total(), 15) || !almost(fn["g"].Total(), 7) {
		t.Errorf("function aggregation wrong: f=%v g=%v", fn["f"].Total(), fn["g"].Total())
	}
	if !almost(fn["f"][sig(events.STL1)], 5) {
		t.Errorf("function stack lost signature structure")
	}
}

func TestErrorByFunctionForgivesIntraFunctionMisattribution(t *testing.T) {
	prog := buildTwoFuncProgram()
	// All cycles attributed to the wrong instruction *within* f.
	a := NewProfile("a", events.TEASet)
	a.Add(isa.PCOf(0), 0, 100)
	g := NewProfile("g", events.TEASet)
	g.Add(isa.PCOf(1), 0, 100)
	if e := Error(a, g); !almost(e, 1) {
		t.Errorf("instruction error = %v, want 1", e)
	}
	if e := ErrorByFunction(a, g, prog); !almost(e, 0) {
		t.Errorf("function error = %v, want 0", e)
	}
}

func TestErrorApplication(t *testing.T) {
	a := NewProfile("a", events.TEASet)
	a.Add(1, sig(events.STL1), 60)
	a.Add(2, 0, 40)
	g := NewProfile("g", events.TEASet)
	g.Add(9, sig(events.STL1), 60) // different instruction, same mix
	g.Add(8, 0, 40)
	if e := ErrorApplication(a, g); !almost(e, 0) {
		t.Errorf("application error = %v, want 0 for identical mixes", e)
	}
}

func TestTopInstructions(t *testing.T) {
	p := NewProfile("x", events.TEASet)
	p.Add(10, 0, 5)
	p.Add(20, 0, 50)
	p.Add(30, 0, 25)
	p.Add(40, 0, 1)
	top := p.TopInstructions(2)
	if len(top) != 2 || top[0] != 20 || top[1] != 30 {
		t.Errorf("top instructions = %v, want [20 30]", top)
	}
	all := p.TopInstructions(100)
	if len(all) != 4 {
		t.Errorf("TopInstructions should cap at population size")
	}
}

func TestApplicationStack(t *testing.T) {
	p := NewProfile("x", events.TEASet)
	p.Add(1, sig(events.FLMB), 10)
	p.Add(2, sig(events.FLMB), 15)
	app := p.Application()
	if !almost(app[sig(events.FLMB)], 25) {
		t.Errorf("application stack = %v", app)
	}
}

func TestRenderContainsComponents(t *testing.T) {
	prog := buildTwoFuncProgram()
	p := NewProfile("x", events.TEASet)
	p.Add(isa.PCOf(0), sig(events.STL1, events.STTLB), 42)
	out := p.RenderInstruction(isa.PCOf(0), prog, 100)
	for _, want := range []string{"(ST-L1,ST-TLB)", "42", "nop", "[f]"} {
		if !containsStr(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if out := p.RenderInstruction(isa.PCOf(3), prog, 100); !containsStr(out, "no samples") {
		t.Errorf("missing-instruction render wrong: %s", out)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
