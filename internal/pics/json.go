package pics

import (
	"encoding/json"
	"io"
	"math"
	"sort"

	"repro/internal/events"
	"repro/internal/simerr"
	"repro/internal/xiter"
)

// jsonProfile is the stable JSON shape of a profile.
type jsonProfile struct {
	Name   string     `json:"name"`
	Events []string   `json:"events"`
	Seed   uint64     `json:"seed"`
	Total  float64    `json:"total_cycles"`
	Insts  []jsonInst `json:"instructions"`
}

type jsonInst struct {
	PC         uint64          `json:"pc"`
	Height     float64         `json:"height_cycles"`
	Components []jsonComponent `json:"components"`
}

type jsonComponent struct {
	Signature string   `json:"signature"`
	Events    []string `json:"events,omitempty"`
	Cycles    float64  `json:"cycles"`
}

// WriteJSON serializes the profile for external tooling: instructions
// sorted by descending height, components by descending cycles —
// deterministic output for diffing and dashboards.
func (p *Profile) WriteJSON(w io.Writer) error {
	jp := jsonProfile{Name: p.Name, Seed: p.Seed, Total: p.Total()}
	for _, e := range p.Set.Events() {
		jp.Events = append(jp.Events, e.String())
	}
	for _, pc := range p.TopInstructions(len(p.Insts)) {
		st := p.Insts[pc]
		ji := jsonInst{PC: pc, Height: st.Total()}
		for _, sig := range sortedSigs(st) {
			jc := jsonComponent{Signature: sig.String(), Cycles: st[sig]}
			for _, e := range sig.Events() {
				jc.Events = append(jc.Events, e.String())
			}
			ji.Components = append(ji.Components, jc)
		}
		jp.Insts = append(jp.Insts, ji)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(jp); err != nil {
		return simerr.Wrap(simerr.ErrInternal, simerr.Snapshot{}, err, "pics: writing profile JSON")
	}
	return nil
}

// ReadJSON parses a profile previously serialized with WriteJSON —
// the ingest half of the external-tooling contract (dashboards, diff
// pipelines). Every malformed document yields a typed
// simerr.ErrDecode error, never a panic and never a silently skewed
// profile: unknown event names, signatures inconsistent with their
// event lists, negative or non-finite cycle values, and duplicate
// instructions are all rejected (FuzzProfileJSON pins this).
func ReadJSON(r io.Reader) (*Profile, error) {
	fail := func(format string, args ...any) (*Profile, error) {
		return nil, simerr.New(simerr.ErrDecode, simerr.Snapshot{}, format, args...)
	}
	var jp jsonProfile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jp); err != nil {
		return nil, simerr.Wrap(simerr.ErrDecode, simerr.Snapshot{}, err, "pics: parsing profile JSON")
	}

	byName := map[string]events.Event{}
	for _, e := range events.AllEvents() {
		byName[e.String()] = e
	}
	set := events.Set(0)
	for _, name := range jp.Events {
		e, ok := byName[name]
		if !ok {
			return fail("pics: unknown event %q in profile event set", name)
		}
		set |= events.NewSet(e)
	}

	p := NewProfile(jp.Name, set)
	p.Seed = jp.Seed
	for _, ji := range jp.Insts {
		if _, dup := p.Insts[ji.PC]; dup {
			return fail("pics: duplicate instruction pc %#x", ji.PC)
		}
		// Materialize the stack even for instructions whose components
		// all turn out empty, so round-tripping preserves presence.
		if p.Insts[ji.PC] == nil {
			p.Insts[ji.PC] = make(Stack)
		}
		for _, jc := range ji.Components {
			var sig events.PSV
			for _, name := range jc.Events {
				e, ok := byName[name]
				if !ok {
					return fail("pics: unknown event %q at pc %#x", name, ji.PC)
				}
				sig = sig.Set(e)
			}
			if sig.String() != jc.Signature {
				return fail("pics: signature %q does not match its event list %v at pc %#x",
					jc.Signature, jc.Events, ji.PC)
			}
			if sig.Mask(set) != sig {
				return fail("pics: signature %q outside the profile's event set at pc %#x",
					jc.Signature, ji.PC)
			}
			if math.IsNaN(jc.Cycles) || math.IsInf(jc.Cycles, 0) || jc.Cycles < 0 {
				return fail("pics: invalid cycle count %v at pc %#x", jc.Cycles, ji.PC)
			}
			st := p.Insts[ji.PC]
			if _, dup := st[sig]; dup {
				return fail("pics: duplicate component %q at pc %#x", jc.Signature, ji.PC)
			}
			st[sig] = jc.Cycles
		}
	}
	return p, nil
}

// Diff compares two profiles of the same program (e.g. before and after
// an optimization) and reports, per static instruction, the change in
// attributed cycles — the lbm/nab case-study workflow: optimize, rerun,
// see which instructions' stacks shrank or grew.
type Diff struct {
	PC     uint64
	Before float64
	After  float64
	Delta  float64
	// SignatureDeltas breaks the change down per component.
	SignatureDeltas map[events.PSV]float64
}

// DiffProfiles returns per-instruction deltas sorted by |delta|
// descending. Instructions present in only one profile appear with the
// other side at zero.
func DiffProfiles(before, after *Profile) []Diff {
	pcs := map[uint64]bool{}
	for _, pc := range xiter.SortedKeys(before.Insts) {
		pcs[pc] = true
	}
	for _, pc := range xiter.SortedKeys(after.Insts) {
		pcs[pc] = true
	}
	var out []Diff
	for _, pc := range xiter.SortedKeys(pcs) {
		d := Diff{PC: pc, SignatureDeltas: map[events.PSV]float64{}}
		if st := before.Insts[pc]; st != nil {
			d.Before = st.Total()
			for _, sig := range xiter.SortedKeys(st) {
				d.SignatureDeltas[sig] -= st[sig]
			}
		}
		if st := after.Insts[pc]; st != nil {
			d.After = st.Total()
			for _, sig := range xiter.SortedKeys(st) {
				d.SignatureDeltas[sig] += st[sig]
			}
		}
		d.Delta = d.After - d.Before
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := abs(out[i].Delta), abs(out[j].Delta)
		if ai != aj {
			return ai > aj
		}
		return out[i].PC < out[j].PC
	})
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
