package pics_test

import (
	"fmt"

	"repro/internal/events"
	"repro/internal/pics"
)

// ExampleProfile shows how PICS are built and read: cycles attributed
// to (instruction, signature) pairs, with the stack height measuring an
// instruction's share of execution time.
func ExampleProfile() {
	p := pics.NewProfile("TEA", events.TEASet)
	llcMiss := events.PSV(0).Set(events.STL1).Set(events.STLLC)
	p.Add(0x10028, llcMiss, 700) // the performance-critical load
	p.Add(0x10028, 0, 50)
	p.Add(0x1002c, 0, 250) // dependent compute: Base only

	top := p.TopInstructions(1)[0]
	st := p.Insts[top]
	fmt.Printf("top instruction %#x: %.0f of %.0f cycles\n", top, st.Total(), p.Total())
	fmt.Printf("LLC-miss component: %.0f cycles (%s)\n", st[llcMiss], llcMiss)
	// Output:
	// top instruction 0x10028: 750 of 1000 cycles
	// LLC-miss component: 700 cycles ((ST-L1,ST-LLC))
}

// ExampleError demonstrates the Section 4 error metric: a profile that
// puts the right cycles on the wrong component is penalized.
func ExampleError() {
	golden := pics.NewProfile("golden", events.TEASet)
	golden.Add(1, events.PSV(0).Set(events.STL1), 50)
	golden.Add(1, events.PSV(0).Set(events.STTLB), 50)

	wrongMix := pics.NewProfile("test", events.TEASet)
	wrongMix.Add(1, events.PSV(0).Set(events.STL1), 100)

	fmt.Printf("error: %.0f%%\n", 100*pics.Error(wrongMix, golden))
	// Output:
	// error: 50%
}

// ExampleDiffProfiles shows the optimization workflow: compare PICS
// before and after a change to see where the cycles went.
func ExampleDiffProfiles() {
	before := pics.NewProfile("before", events.TEASet)
	before.Add(0x100, events.PSV(0).Set(events.STLLC), 900)
	after := pics.NewProfile("after", events.TEASet)
	after.Add(0x100, events.PSV(0).Set(events.STL1), 100)

	d := pics.DiffProfiles(before, after)[0]
	fmt.Printf("pc %#x: %.0f -> %.0f (%+.0f cycles)\n", d.PC, d.Before, d.After, d.Delta)
	// Output:
	// pc 0x100: 900 -> 100 (-800 cycles)
}
