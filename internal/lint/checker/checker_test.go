package checker_test

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/checker"
	"repro/internal/lint/facts"
)

// declAnalyzer reports one diagnostic per function declaration — enough
// to pin positions, ordering, and suppression.
var declAnalyzer = &analysis.Analyzer{
	Name: "decl",
	Doc:  "report every function declaration",
	Run: func(pass *analysis.Pass) (any, error) {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Name.Pos(), "func %s", fd.Name.Name)
				}
			}
		}
		return nil, nil
	},
}

// testFact is the fact carried by factAnalyzer.
type testFact struct{ Tag string }

func (*testFact) AFact() {}

// factAnalyzer marks functions whose name starts with Source and
// reports every call to a marked function — including cross-package
// calls, which only work if facts flow between packages.
var factAnalyzer = &analysis.Analyzer{
	Name:      "testfact",
	Doc:       "report calls to Source* functions via facts",
	FactTypes: []analysis.Fact{new(testFact)},
	Run: func(pass *analysis.Pass) (any, error) {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok || !strings.HasPrefix(fn.Name(), "Source") {
					continue
				}
				pass.ExportFact(fn, &testFact{Tag: fn.Name()})
			}
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var id *ast.Ident
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					id = fun
				case *ast.SelectorExpr:
					id = fun.Sel
				}
				if id == nil {
					return true
				}
				fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
				if !ok {
					return true
				}
				var fact testFact
				if pass.ImportFact(fn, &fact) {
					pass.Reportf(call.Pos(), "call to marked %s", fact.Tag)
				}
				return true
			})
		}
		return nil, nil
	},
}

// typecheck parses and type-checks source strings as one package with
// no non-stdlib imports.
func typecheck(t *testing.T, srcs map[string]string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	var files []*ast.File
	for name, src := range srcs {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	pkg, err := (&types.Config{}).Check("p", fset, files, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, files, pkg, info
}

func TestRunPackagePositionsAndOrder(t *testing.T) {
	// Two files: diagnostics must come back sorted by filename then
	// line, whatever order analyzers emit them in.
	fset, files, pkg, info := typecheck(t, map[string]string{
		"b.go": "package p\n\nfunc B1() {}\n\nfunc B2() {}\n",
		"a.go": "package p\n\nfunc A() {}\n",
	})
	r := &checker.Runner{Analyzers: []*analysis.Analyzer{declAnalyzer}}
	diags, err := r.RunPackage(fset, files, pkg, info)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		got = append(got, posn.Filename+":"+d.Message)
		if d.Category != "decl" {
			t.Errorf("category = %q, want decl", d.Category)
		}
		if posn.Line == 0 || posn.Column == 0 {
			t.Errorf("diagnostic %q lacks a position", d.Message)
		}
	}
	want := []string{"a.go:func A", "b.go:func B1", "b.go:func B2"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("diagnostics = %v, want %v", got, want)
	}
}

func TestRunPackageSuppression(t *testing.T) {
	fset, files, pkg, info := typecheck(t, map[string]string{
		"a.go": "package p\n\n//tealint:ignore decl covered by review\nfunc A() {}\n\nfunc B() {}\n",
	})
	r := &checker.Runner{Analyzers: []*analysis.Analyzer{declAnalyzer}}
	diags, err := r.RunPackage(fset, files, pkg, info)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Message != "func B" {
		t.Errorf("diagnostics = %+v, want only func B", diags)
	}
}

func TestUnknownDirective(t *testing.T) {
	fset, files, pkg, info := typecheck(t, map[string]string{
		"a.go": "package p\n\n//tealint:detsfe typo in the name\nfunc A() {}\n\n//tealint:ignore nosuchanalyzer reason\nfunc B() {}\n\n//tealint:ignore decl fine\nfunc C() {}\n",
	})
	r := &checker.Runner{
		Analyzers:      []*analysis.Analyzer{declAnalyzer},
		KnownAnalyzers: []string{"decl", "other"},
		DirectiveCheck: true,
	}
	diags, err := r.RunPackage(fset, files, pkg, info)
	if err != nil {
		t.Fatal(err)
	}
	var unknown []string
	for _, d := range diags {
		if d.Category == checker.DirectiveCheckName {
			unknown = append(unknown, d.Message)
		}
	}
	if len(unknown) != 2 {
		t.Fatalf("unknowndirective diagnostics = %v, want 2", unknown)
	}
	if !strings.Contains(unknown[0], `"tealint:detsfe"`) {
		t.Errorf("first = %q, want unknown directive name", unknown[0])
	}
	if !strings.Contains(unknown[1], `"nosuchanalyzer"`) {
		t.Errorf("second = %q, want unknown analyzer name", unknown[1])
	}
}

func TestJSONRoundTrip(t *testing.T) {
	fset, files, pkg, info := typecheck(t, map[string]string{
		"a.go": "package p\n\nfunc A() {}\n",
	})
	r := &checker.Runner{Analyzers: []*analysis.Analyzer{declAnalyzer}}
	diags, err := r.RunPackage(fset, files, pkg, info)
	if err != nil {
		t.Fatal(err)
	}
	wire := checker.ToJSON(fset, diags)
	data, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	var back []checker.JSONDiagnostic
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(back) != 1 {
		t.Fatalf("round trip lost diagnostics: %v", back)
	}
	want := checker.JSONDiagnostic{File: "a.go", Line: 3, Col: 6, Message: "func A", Analyzer: "decl"}
	if back[0] != want {
		t.Errorf("diagnostic = %+v, want %+v", back[0], want)
	}
}

// writeModule lays out a temp module for Standalone tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestStandaloneCrossPackageFacts(t *testing.T) {
	// b declares the marked function; a calls it. Facts must flow from
	// b's analysis to a's even though the roots list is lexically
	// a-before-b — dependency order, not listing order.
	dir := writeModule(t, map[string]string{
		"go.mod": "module m\n\ngo 1.22\n",
		"a/a.go": "package a\n\nimport \"m/b\"\n\nfunc Use() int { return b.SourceVal() }\n",
		"b/b.go": "package b\n\nfunc SourceVal() int { return 1 }\n",
		"c/c.go": "package c\n\nfunc Quiet() {}\n",
	})
	r := &checker.Runner{Analyzers: []*analysis.Analyzer{factAnalyzer}}
	var out bytes.Buffer
	n, err := r.Standalone(&out, dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("diagnostics = %d, want 1; output:\n%s", n, out.String())
	}
	line := strings.TrimSpace(out.String())
	if !strings.Contains(line, "call to marked SourceVal") || !strings.Contains(line, "(testfact)") {
		t.Errorf("output = %q, want marked-call diagnostic from a/a.go", line)
	}
	if !strings.Contains(line, filepath.Join("a", "a.go")) {
		t.Errorf("output = %q, want position in a/a.go", line)
	}
}

func TestStandaloneJSON(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module m\n\ngo 1.22\n",
		"a/a.go": "package a\n\nfunc SourceA() int { return sourceUse() }\n\nfunc sourceUse() int { return SourceA() }\n",
	})
	r := &checker.Runner{Analyzers: []*analysis.Analyzer{factAnalyzer}, JSON: true}
	var out bytes.Buffer
	n, err := r.Standalone(&out, dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var diags []checker.JSONDiagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if len(diags) != n || n != 1 {
		t.Fatalf("JSON diagnostics = %d (count %d), want 1:\n%s", len(diags), n, out.String())
	}
	if diags[0].Analyzer != "testfact" || diags[0].Line == 0 {
		t.Errorf("diagnostic = %+v", diags[0])
	}

	// A clean module must yield a parseable empty array, not "null".
	clean := writeModule(t, map[string]string{
		"go.mod": "module m\n\ngo 1.22\n",
		"a/a.go": "package a\n\nfunc Quiet() {}\n",
	})
	out.Reset()
	r2 := &checker.Runner{Analyzers: []*analysis.Analyzer{factAnalyzer}, JSON: true}
	if _, err := r2.Standalone(&out, clean, []string{"./..."}); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("clean output = %q, want []", out.String())
	}
}

func TestDependencyOrder(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module m\n\ngo 1.22\n",
		"a/a.go": "package a\n\nimport (\n\t_ \"m/b\"\n\t_ \"m/c\"\n)\n",
		"b/b.go": "package b\n\nimport _ \"m/c\"\n",
		"c/c.go": "package c\n",
	})
	r := &checker.Runner{Analyzers: []*analysis.Analyzer{declAnalyzer}}
	var out bytes.Buffer
	if _, err := r.Standalone(&out, dir, []string{"./..."}); err != nil {
		t.Fatal(err)
	}
	// Re-load to inspect the order directly.
	_ = out
	// The exported helper must place dependencies before dependents.
	got := checker.DependencyOrder([]string{"m/a", "m/b", "m/c"}, nil)
	// With no package information, order degrades to lexical — the
	// function must still terminate and cover every root.
	if len(got) != 3 {
		t.Fatalf("order = %v", got)
	}
}

func TestVetProtocol(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "x.go")
	if err := os.WriteFile(src, []byte("package x\n\nfunc SourceX() int { return 0 }\n\nfunc Use() int { return SourceX() }\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "x.vetx")
	cfg := map[string]any{
		"ID":         "m/x",
		"Compiler":   "gc",
		"Dir":        dir,
		"ImportPath": "m/x",
		"GoFiles":    []string{src},
		"VetxOnly":   true,
		"VetxOutput": vetx,
	}
	cfgData, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgFile := filepath.Join(dir, "x.cfg")
	if err := os.WriteFile(cfgFile, cfgData, 0o666); err != nil {
		t.Fatal(err)
	}

	// VetxOnly: no diagnostics printed, exit 0, facts written.
	r := &checker.Runner{Analyzers: []*analysis.Analyzer{factAnalyzer}}
	var out bytes.Buffer
	code, err := r.Vet(&out, cfgFile)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 || out.Len() != 0 {
		t.Fatalf("VetxOnly: code=%d output=%q, want silent success", code, out.String())
	}
	data, err := os.ReadFile(vetx)
	if err != nil {
		t.Fatalf("vetx not written: %v", err)
	}
	st := facts.NewStore([]*analysis.Analyzer{factAnalyzer})
	if err := st.Decode(data); err != nil {
		t.Fatalf("vetx does not decode: %v", err)
	}
	if st.Len() != 1 {
		t.Errorf("vetx facts = %d, want 1 (SourceX)", st.Len())
	}

	// Normal run over the same package: the marked call is reported in
	// the unitchecker's file:line:col form with exit code 2, and the
	// dependency vetx decodes without error.
	cfg["VetxOnly"] = false
	cfg["VetxOutput"] = filepath.Join(dir, "x2.vetx")
	cfg["PackageVetx"] = map[string]string{"m/x": vetx}
	cfgData, _ = json.Marshal(cfg)
	if err := os.WriteFile(cfgFile, cfgData, 0o666); err != nil {
		t.Fatal(err)
	}
	r2 := &checker.Runner{Analyzers: []*analysis.Analyzer{factAnalyzer}}
	out.Reset()
	code, err = r2.Vet(&out, cfgFile)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("code = %d, want 2 (diagnostics)", code)
	}
	line := strings.TrimSpace(out.String())
	if !strings.HasPrefix(line, src+":5:") || !strings.Contains(line, "call to marked SourceX (testfact)") {
		t.Errorf("vet output = %q", line)
	}
}
