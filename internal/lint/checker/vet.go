package checker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/lint/analysis"
)

// vetConfig is the JSON configuration cmd/go writes for a vet tool
// (the unitchecker protocol): one file per package, naming the Go
// sources to analyze, the export-data files of every dependency, and
// the vetx (facts) files those dependencies' earlier runs produced.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Vet runs the analyzers in `go vet -vettool` mode: cfgFile is the
// *.cfg path cmd/go passed as the final argument. Dependency facts are
// imported from the PackageVetx files and this package's full fact
// store (its own facts plus re-exported dependency facts, so facts
// flow transitively) is written to VetxOutput. Diagnostics go to w in
// the standard "file:line:col: message" form. The returned exit code
// follows the unitchecker convention: 0 for success, 2 when
// diagnostics were reported, 1 on operational error (with the error
// returned for the caller to print).
func (r *Runner) Vet(w io.Writer, cfgFile string) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 1, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 1, fmt.Errorf("parsing vet config %s: %w", cfgFile, err)
	}

	st := r.store()
	for path, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil || len(data) == 0 {
			continue // facts are an accelerant, a missing file is not fatal
		}
		if err := st.Decode(data); err != nil {
			return 1, fmt.Errorf("decoding facts of %s (%s): %w", path, vetx, err)
		}
	}

	// Standard-library dependency runs are facts-only and the
	// whole-program analyzers do not trace taint through the standard
	// library (its nondeterminism sources are recognized by name, in
	// both standalone and vet modes), so std packages skip analysis
	// entirely — `go vet` stays fast and the two modes agree.
	exitCode := 0
	if !cfg.VetxOnly || !cfg.Standard[strip(cfg.ImportPath)] {
		code, err := r.vetAnalyze(w, &cfg)
		if err != nil {
			return code, err
		}
		exitCode = code
	}

	if cfg.VetxOutput != "" {
		data, err := st.Encode()
		if err != nil {
			return 1, err
		}
		if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
			return 1, fmt.Errorf("writing vetx output: %w", err)
		}
	}
	return exitCode, nil
}

// strip removes a vet test-variant suffix ("pkg [pkg.test]") from an
// import path.
func strip(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// vetAnalyze parses and type-checks the package of cfg and runs the
// analyzers: all of them (plus the directive check) for lint targets,
// only the fact-exporting subset for VetxOnly dependency runs, whose
// diagnostics cmd/go would discard anyway.
func (r *Runner) vetAnalyze(w io.Writer, cfg *vetConfig) (int, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 1, err
		}
		files = append(files, f)
	}

	// Dependencies are imported from the compiler export data cmd/go
	// listed in PackageFile, via the standard gc importer.
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	gcImporter := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if resolved, ok := cfg.ImportMap[path]; ok {
				path = resolved
			}
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			return gcImporter.Import(path)
		}),
		Sizes: types.SizesFor(compiler, goarch()),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 1, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	analyzers := r.Analyzers
	directives := r.DirectiveCheck
	if cfg.VetxOnly {
		analyzers = factAnalyzers(analyzers)
		directives = false
	}
	diags, err := r.runPackage(fset, files, tpkg, info, analyzers, directives)
	if err != nil {
		return 1, err
	}
	if cfg.VetxOnly {
		return 0, nil
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Category)
	}
	if len(diags) > 0 {
		return 2, nil
	}
	return 0, nil
}

// factAnalyzers filters to the analyzers that export facts.
func factAnalyzers(all []*analysis.Analyzer) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, a := range all {
		if len(a.FactTypes) > 0 {
			out = append(out, a)
		}
	}
	return out
}

func goarch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return runtime.GOARCH
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
