package checker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"

	"repro/internal/lint/analysis"
)

// vetConfig is the JSON configuration cmd/go writes for a vet tool
// (the unitchecker protocol): one file per package, naming the Go
// sources to analyze and the export-data files of every dependency.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Vet runs the analyzers in `go vet -vettool` mode: cfgFile is the
// *.cfg path cmd/go passed as the final argument. Diagnostics go to w
// in the standard "file:line:col: message" form. The returned exit
// code follows the unitchecker convention: 0 for success, 2 when
// diagnostics were reported, 1 on operational error (with the error
// returned for the caller to print).
func Vet(w io.Writer, cfgFile string, analyzers []*analysis.Analyzer) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 1, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 1, fmt.Errorf("parsing vet config %s: %w", cfgFile, err)
	}

	// cmd/go caches the vetx (facts) output of every run and requires
	// the file to exist afterwards. tealint's analyzers are fact-free,
	// so an empty placeholder satisfies the protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("tealint: no facts\n"), 0o666); err != nil {
			return 1, fmt.Errorf("writing vetx output: %w", err)
		}
	}
	if cfg.VetxOnly {
		// Dependency-only run: cmd/go wants facts, and we have none.
		return 0, nil
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 1, err
		}
		files = append(files, f)
	}

	// Dependencies are imported from the compiler export data cmd/go
	// listed in PackageFile, via the standard gc importer.
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	gcImporter := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if resolved, ok := cfg.ImportMap[path]; ok {
				path = resolved
			}
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			return gcImporter.Import(path)
		}),
		Sizes: types.SizesFor(compiler, goarch()),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 1, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	diags, err := RunPackage(fset, files, tpkg, info, analyzers)
	if err != nil {
		return 1, err
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Category)
	}
	if len(diags) > 0 {
		return 2, nil
	}
	return 0, nil
}

func goarch() string {
	if a := os.Getenv("GOARCH"); a != "" {
		return a
	}
	return runtime.GOARCH
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
