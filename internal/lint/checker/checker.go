// Package checker drives tealint analyzers over packages, in two
// modes: standalone (`tealint ./...`, loading from source via
// internal/lint/load) and vet-tool (`go vet -vettool=tealint`, speaking
// cmd/go's unitchecker config protocol — see vet.go).
//
// In both modes the checker threads a cross-package fact store
// (internal/lint/facts) through the analyzers: standalone runs analyze
// the matched packages in dependency order sharing one in-memory
// store; vet runs round-trip the store through the vetx files cmd/go
// passes between per-package invocations. It also applies one built-in
// check of its own, unknowndirective: every //tealint:<name> comment
// must use a registered directive name, and //tealint:ignore must name
// known analyzers — a misspelled suppression fails the build instead
// of silently disabling a lint.
package checker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/facts"
	"repro/internal/lint/load"
)

// DirectiveCheckName is the diagnostic category (and suppression name)
// of the built-in unknown-directive check.
const DirectiveCheckName = "unknowndirective"

// KnownDirectives are the registered //tealint:<name> directive names.
var KnownDirectives = []string{"cachekey", "ctxroot", "detsafe", "ignore"}

// A Runner applies a set of analyzers plus the built-in directive
// check to packages, accumulating cross-package facts as it goes. The
// zero value is not usable; populate Analyzers first.
type Runner struct {
	// Analyzers are the enabled analyzers, run in order.
	Analyzers []*analysis.Analyzer
	// KnownAnalyzers is the full analyzer registry (independent of
	// which are enabled), used to validate //tealint:ignore names.
	// Empty means "the enabled set".
	KnownAnalyzers []string
	// DirectiveCheck enables the built-in unknowndirective check.
	DirectiveCheck bool
	// JSON switches Standalone's output from "file:line:col: message
	// (analyzer)" lines to a JSON array of JSONDiagnostic.
	JSON bool
	// Facts is the cross-package fact store; a nil store is created on
	// first use (registered with the enabled analyzers' fact types).
	Facts *facts.Store
}

func (r *Runner) store() *facts.Store {
	if r.Facts == nil {
		r.Facts = facts.NewStore(r.Analyzers)
	}
	return r.Facts
}

// RunPackage applies the enabled analyzers (and, if configured, the
// directive check) to one type-checked package and returns the
// surviving (non-suppressed) diagnostics, sorted by position.
func (r *Runner) RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]analysis.Diagnostic, error) {
	return r.runPackage(fset, files, pkg, info, r.Analyzers, r.DirectiveCheck)
}

func (r *Runner) runPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*analysis.Analyzer, directives bool) ([]analysis.Diagnostic, error) {
	st := r.store()
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		a := a
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				d.Category = a.Name
				diags = append(diags, d)
			},
		}
		st.Bind(pass)
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	if directives {
		diags = append(diags, r.checkDirectives(files)...)
	}
	diags = analysis.FilterIgnored(fset, files, diags)
	sortDiagnostics(fset, diags)
	return diags, nil
}

// checkDirectives validates every //tealint: comment: the directive
// name must be registered, and ignore directives must name known
// analyzers (or "all"). Category: unknowndirective.
func (r *Runner) checkDirectives(files []*ast.File) []analysis.Diagnostic {
	known := map[string]bool{}
	for _, name := range KnownDirectives {
		known[name] = true
	}
	names := r.KnownAnalyzers
	if len(names) == 0 {
		for _, a := range r.Analyzers {
			names = append(names, a.Name)
		}
	}
	knownAnalyzers := map[string]bool{"all": true, DirectiveCheckName: true}
	for _, n := range names {
		knownAnalyzers[n] = true
	}

	var diags []analysis.Diagnostic
	for _, d := range analysis.Directives(files) {
		if !known[d.Name] {
			diags = append(diags, analysis.Diagnostic{
				Pos:      d.Pos,
				Category: DirectiveCheckName,
				Message: fmt.Sprintf("unknown tealint directive %q (known: %s)",
					"tealint:"+d.Name, strings.Join(KnownDirectives, ", ")),
			})
			continue
		}
		if d.Name != "ignore" {
			continue
		}
		list, _, _ := strings.Cut(d.Args, " ")
		for _, name := range strings.Split(list, ",") {
			if name != "" && !knownAnalyzers[name] {
				diags = append(diags, analysis.Diagnostic{
					Pos:      d.Pos,
					Category: DirectiveCheckName,
					Message:  fmt.Sprintf("tealint:ignore names unknown analyzer %q — the suppression would silently do nothing", name),
				})
			}
		}
	}
	return diags
}

func sortDiagnostics(fset *token.FileSet, diags []analysis.Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Category < diags[j].Category
	})
}

// JSONDiagnostic is the machine-readable diagnostic form emitted by
// `tealint -json` (and parsed back by the lint gate's smoke check).
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Analyzer string `json:"analyzer"`
}

// ToJSON converts diagnostics to their wire form.
func ToJSON(fset *token.FileSet, diags []analysis.Diagnostic) []JSONDiagnostic {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		out = append(out, JSONDiagnostic{
			File:     posn.Filename,
			Line:     posn.Line,
			Col:      posn.Column,
			Message:  d.Message,
			Analyzer: d.Category,
		})
	}
	return out
}

// Standalone loads the packages matching patterns (relative to dir)
// from source, runs the analyzers over each in dependency order (so
// cross-package facts flow from dependencies to dependents), and
// prints diagnostics to w — "file:line:col: message (analyzer)" lines,
// or one JSON array with r.JSON set. It returns the number of
// diagnostics printed.
func (r *Runner) Standalone(w io.Writer, dir string, patterns []string) (int, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	resolver := load.NewGoListResolver(dir)
	roots, err := resolver.Roots(patterns...)
	if err != nil {
		return 0, err
	}
	loader := load.NewLoader(resolver.Resolve)
	pkgs := make(map[string]*load.Package, len(roots))
	for _, root := range roots {
		pkg, err := loader.Load(root)
		if err != nil {
			return 0, err
		}
		pkgs[root] = pkg
	}

	perPkg := make(map[string][]analysis.Diagnostic, len(roots))
	for _, root := range DependencyOrder(roots, pkgs) {
		pkg := pkgs[root]
		diags, err := r.RunPackage(loader.Fset, pkg.Files, pkg.Types, pkg.Info)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", root, err)
		}
		perPkg[root] = diags
	}

	count := 0
	if r.JSON {
		var all []JSONDiagnostic
		for _, root := range roots {
			all = append(all, ToJSON(loader.Fset, perPkg[root])...)
		}
		count = len(all)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "\t")
		if all == nil {
			all = []JSONDiagnostic{}
		}
		if err := enc.Encode(all); err != nil {
			return count, err
		}
		return count, nil
	}
	for _, root := range roots {
		for _, d := range perPkg[root] {
			fmt.Fprintf(w, "%s: %s (%s)\n", loader.Fset.Position(d.Pos), d.Message, d.Category)
			count++
		}
	}
	return count, nil
}

// DependencyOrder returns the roots sorted dependencies-first: a
// package appears after every root it imports (directly or
// transitively). Ties keep the lexical order of roots, so the result
// is deterministic. Exported for the loader/checker tests.
func DependencyOrder(roots []string, pkgs map[string]*load.Package) []string {
	inRoots := make(map[string]bool, len(roots))
	for _, r := range roots {
		inRoots[r] = true
	}
	sorted := append([]string(nil), roots...)
	sort.Strings(sorted)
	order := make([]string, 0, len(roots))
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(string)
	visit = func(path string) {
		if state[path] != 0 {
			return
		}
		state[path] = 1
		pkg := pkgs[path]
		if pkg != nil && pkg.Types != nil {
			imports := pkg.Types.Imports()
			deps := make([]string, 0, len(imports))
			for _, imp := range imports {
				if inRoots[imp.Path()] {
					deps = append(deps, imp.Path())
				}
			}
			sort.Strings(deps)
			for _, dep := range deps {
				visit(dep)
			}
		}
		state[path] = 2
		order = append(order, path)
	}
	for _, root := range sorted {
		visit(root)
	}
	return order
}
