// Package checker drives tealint analyzers over packages, in two
// modes: standalone (`tealint ./...`, loading from source via
// internal/lint/load) and vet-tool (`go vet -vettool=tealint`, speaking
// cmd/go's unitchecker config protocol — see vet.go).
package checker

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// RunPackage applies the analyzers to one type-checked package and
// returns the surviving (non-suppressed) diagnostics, sorted by
// position.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				d.Category = a.Name
				diags = append(diags, d)
			},
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	diags = analysis.FilterIgnored(fset, files, diags)
	sortDiagnostics(fset, diags)
	return diags, nil
}

func sortDiagnostics(fset *token.FileSet, diags []analysis.Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Category < diags[j].Category
	})
}

// Standalone loads the packages matching patterns (relative to dir)
// from source, runs the analyzers over each, and prints diagnostics to
// w as "file:line:col: message (analyzer)". It returns the number of
// diagnostics printed.
func Standalone(w io.Writer, dir string, patterns []string, analyzers []*analysis.Analyzer) (int, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	resolver := load.NewGoListResolver(dir)
	roots, err := resolver.Roots(patterns...)
	if err != nil {
		return 0, err
	}
	loader := load.NewLoader(resolver.Resolve)
	count := 0
	for _, root := range roots {
		pkg, err := loader.Load(root)
		if err != nil {
			return count, err
		}
		diags, err := RunPackage(loader.Fset, pkg.Files, pkg.Types, pkg.Info, analyzers)
		if err != nil {
			return count, fmt.Errorf("%s: %w", root, err)
		}
		for _, d := range diags {
			fmt.Fprintf(w, "%s: %s (%s)\n", loader.Fset.Position(d.Pos), d.Message, d.Category)
			count++
		}
	}
	return count, nil
}
