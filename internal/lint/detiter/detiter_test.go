package detiter_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/detiter"
)

func TestDetIter(t *testing.T) {
	analysistest.Run(t, ".", detiter.Analyzer, "internal/pics", "other")
}

func TestScope(t *testing.T) {
	for path, want := range map[string]bool{
		"internal/pics":                                  true,
		"repro/internal/pics":                            true,
		"repro/internal/analysis":                        true,
		"repro/internal/stats":                           true,
		"repro/internal/pics [repro/internal/pics.test]": true,
		"repro/internal/lint/analysis":                   false,
		"repro/internal/picsother":                       false,
		"repro/internal/core":                            false,
	} {
		if got := detiter.InScope(path); got != want {
			t.Errorf("InScope(%q) = %v, want %v", path, got, want)
		}
	}
}
