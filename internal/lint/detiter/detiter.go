// Package detiter defines a tealint analyzer that forbids ranging
// over maps in the report/emission packages.
//
// PICS generation and report rendering must be deterministic: golden
// comparisons against the paper's Figure 6/7 numbers diff serialized
// profiles, and float64 accumulation is order-sensitive in its last
// ulp, so even a "harmless" summation over a map perturbs results
// between runs. Inside internal/pics, internal/analysis, and
// internal/stats, any `range` over a map must be replaced by sorted
// key iteration (see internal/xiter.SortedKeys). Test files are
// exempt, as is code annotated with a `//tealint:ignore detiter`
// directive carrying a justification.
package detiter

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// scopedPackages are the package-path suffixes the invariant covers:
// everything on the path from samples to rendered/serialized reports.
var scopedPackages = []string{
	"internal/pics",
	"internal/analysis",
	"internal/stats",
}

// Analyzer flags range-over-map in report/emission packages.
var Analyzer = &analysis.Analyzer{
	Name: "detiter",
	Doc: "forbid ranging over maps in report/emission packages (internal/pics, internal/analysis, internal/stats)\n\n" +
		"Map iteration order is randomized; these paths feed golden comparisons and must be deterministic.",
	Run: run,
}

// InScope reports whether the package path is covered. Vet-mode test
// variants carry an " [pkg.test]" suffix that must be stripped first.
func InScope(pkgPath string) bool {
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	for _, scoped := range scopedPackages {
		if pkgPath == scoped || strings.HasSuffix(pkgPath, "/"+scoped) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	if !InScope(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := types.Unalias(tv.Type).Underlying().(*types.Map); !isMap {
				return true
			}
			pass.Reportf(rs.For,
				"range over map (%s) in a report/emission path is nondeterministic; iterate sorted keys instead (e.g. xiter.SortedKeys)",
				types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
			return true
		})
	}
	return nil, nil
}
