// Package other is outside the detiter scope (not a report/emission
// package), so its map ranges are left alone.
package other

func Sum(m map[int]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}
