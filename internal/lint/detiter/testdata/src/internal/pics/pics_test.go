package pics

// Test files are exempt: assertions may range maps freely.
func sumForTest(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m {
		t += v
	}
	return t
}
