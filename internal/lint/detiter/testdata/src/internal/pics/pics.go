// Package pics is the detiter golden suite: its import path ends in
// internal/pics, putting it in the analyzer's scope.
package pics

import "sort"

type Stack map[uint16]float64

// ranging over a map in a report path: flagged.
func total(s Stack) float64 {
	t := 0.0
	for _, v := range s { // want "range over map .* is nondeterministic"
		t += v
	}
	return t
}

// both map kinds of range clause are flagged.
func keysOf(m map[string]int) []string {
	var out []string
	for k := range m { // want "range over map .* is nondeterministic"
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// named map types are still maps underneath: flagged.
func fromStack(s Stack) int {
	n := 0
	for range s { // want "range over map .* is nondeterministic"
		n++
	}
	return n
}

// slices, arrays, strings, channels, ints: none of these are maps.
func fine(xs []float64, s string, n int) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	for range s {
		t++
	}
	for i := range n {
		t += float64(i)
	}
	return t
}

// sorted-key iteration is the sanctioned pattern: not flagged.
func sortedTotal(s Stack, keys []uint16) float64 {
	t := 0.0
	for _, k := range keys {
		t += s[k]
	}
	return t
}

// a suppressed violation: the directive must silence the report.
func suppressedClone(s Stack) Stack {
	c := make(Stack, len(s))
	//tealint:ignore detiter pure map copy, order provably irrelevant
	for k, v := range s {
		c[k] = v
	}
	return c
}
