package load_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint/load"
)

func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestLoadMultiPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module m\n\ngo 1.22\n",
		"a/a.go": "package a\n\nimport \"m/b\"\n\nfunc A() int { return b.B() + 1 }\n",
		"b/b.go": "package b\n\nfunc B() int { return 41 }\n",
	})
	resolver := load.NewGoListResolver(dir)
	roots, err := resolver.Roots("./...")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(roots, ",") != "m/a,m/b" {
		t.Fatalf("roots = %v, want [m/a m/b] (sorted)", roots)
	}

	loader := load.NewLoader(resolver.Resolve)
	// Loading the dependent first must transitively load the
	// dependency with full type information for the importer.
	a, err := loader.Load("m/a")
	if err != nil {
		t.Fatal(err)
	}
	if a.Types.Name() != "a" || len(a.Files) != 1 {
		t.Fatalf("package a = %v (%d files)", a.Types, len(a.Files))
	}
	if len(a.Info.Defs) == 0 || len(a.Info.Uses) == 0 {
		t.Error("package a was loaded without type-checked bodies")
	}
	// b.B must resolve through a's uses: full cross-package types.
	fnB := a.Types.Imports()[0].Scope().Lookup("B")
	if fnB == nil {
		t.Fatal("m/b's scope lacks B")
	}

	// Memoization: a second Load returns the identical package.
	b1, err := loader.Load("m/b")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := loader.Load("m/b")
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Error("Load is not memoized: two calls returned distinct packages")
	}
	// The memoized m/b is the same *types.Package a imported, so facts
	// keyed by objects stay coherent across the whole load.
	if b1.Types != a.Types.Imports()[0] {
		t.Error("a's import of m/b is not the loaded m/b package")
	}
}

func TestLoadParseError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module m\n\ngo 1.22\n",
		"a/a.go": "package a\n\nfunc Broken( {}\n",
	})
	resolver := load.NewGoListResolver(dir)
	loader := load.NewLoader(resolver.Resolve)
	if _, err := loader.Load("m/a"); err == nil {
		t.Fatal("loading a syntactically broken package succeeded")
	}
}

func TestLoadTypeError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module m\n\ngo 1.22\n",
		"a/a.go": "package a\n\nfunc A() int { return \"not an int\" }\n",
	})
	resolver := load.NewGoListResolver(dir)
	// Roots marks m/a as a lint target: full bodies, so the type error
	// inside A's body is surfaced (a bare Resolve would load it as a
	// body-less dependency).
	if _, err := resolver.Roots("./..."); err != nil {
		t.Fatal(err)
	}
	loader := load.NewLoader(resolver.Resolve)
	_, err := loader.Load("m/a")
	if err == nil {
		t.Fatal("loading an ill-typed package succeeded")
	}
	if !strings.Contains(err.Error(), "m/a") {
		t.Errorf("error %q does not name the failing package", err)
	}
}
