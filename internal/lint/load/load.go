// Package load type-checks Go packages from source using only the
// standard library.
//
// The hermetic build environment has no module proxy access, so the
// usual golang.org/x/tools/go/packages loader is unavailable. This
// loader recovers the same capability for tealint's needs: package
// metadata comes from `go list -e -json -deps`, and type information
// is produced by go/parser + go/types, type-checking dependencies
// (including the standard library) from source in dependency order.
// Dependency packages are checked with IgnoreFuncBodies for speed;
// target packages get full bodies and a complete types.Info.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// Meta is the `go list` metadata the loader needs for one package.
type Meta struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	// ImportMap maps source-level import strings to resolved package
	// paths (identity entries omitted), e.g. for vendored imports.
	ImportMap map[string]string
	// DepOnly marks packages loaded only as dependencies; their
	// function bodies are not type-checked.
	DepOnly bool
}

// Package is a type-checked package.
type Package struct {
	Meta  *Meta
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader type-checks packages from source, memoizing results. Resolve
// supplies metadata for an import path; the zero Loader is not usable.
type Loader struct {
	Fset    *token.FileSet
	Resolve func(path string) (*Meta, error)

	pkgs map[string]*result
}

type result struct {
	pkg *Package
	err error
}

// NewLoader returns a Loader over a fresh FileSet.
func NewLoader(resolve func(path string) (*Meta, error)) *Loader {
	return &Loader{
		Fset:    token.NewFileSet(),
		Resolve: resolve,
		pkgs:    map[string]*result{},
	}
}

// Load type-checks the package at the given (resolved) import path
// and, transitively, its dependencies.
func (l *Loader) Load(path string) (*Package, error) {
	if r, ok := l.pkgs[path]; ok {
		return r.pkg, r.err
	}
	// Mark in-progress to fail fast on cycles instead of recursing.
	l.pkgs[path] = &result{err: fmt.Errorf("load: import cycle through %q", path)}
	pkg, err := l.load(path)
	l.pkgs[path] = &result{pkg: pkg, err: err}
	return pkg, err
}

func (l *Loader) load(path string) (*Package, error) {
	if path == "unsafe" {
		return &Package{Meta: &Meta{ImportPath: "unsafe"}, Types: types.Unsafe}, nil
	}
	meta, err := l.Resolve(path)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	files := make([]*ast.File, 0, len(meta.GoFiles))
	for _, name := range meta.GoFiles {
		filename := name
		if !filepath.IsAbs(filename) {
			filename = filepath.Join(meta.Dir, name)
		}
		f, err := parser.ParseFile(l.Fset, filename, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var firstErr error
	conf := types.Config{
		Importer: importerFunc(func(ipath string) (*types.Package, error) {
			if resolved, ok := meta.ImportMap[ipath]; ok {
				ipath = resolved
			}
			dep, err := l.Load(ipath)
			if err != nil {
				return nil, err
			}
			return dep.Types, nil
		}),
		IgnoreFuncBodies: meta.DepOnly,
		FakeImportC:      true,
		Sizes:            types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return nil, fmt.Errorf("load %s: %w", path, firstErr)
	}
	return &Package{Meta: meta, Files: files, Types: tpkg, Info: info}, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ---------------------------------------------------------------------------
// go list metadata.

// listPkg mirrors the subset of `go list -json` output we consume.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	ImportMap  map[string]string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// GoListResolver resolves package metadata via the go command, caching
// everything each invocation returns.
type GoListResolver struct {
	// Dir is the working directory for go list (the module root for
	// relative patterns).
	Dir  string
	meta map[string]*Meta
}

// NewGoListResolver returns a resolver rooted at dir.
func NewGoListResolver(dir string) *GoListResolver {
	return &GoListResolver{Dir: dir, meta: map[string]*Meta{}}
}

// Roots expands the given package patterns (e.g. "./...") and caches
// metadata for them and their transitive dependencies. It returns the
// resolved import paths of the matched packages, sorted.
func (r *GoListResolver) Roots(patterns ...string) ([]string, error) {
	pkgs, err := r.list(patterns, false)
	if err != nil {
		return nil, err
	}
	var roots []string
	for _, p := range pkgs {
		if !p.DepOnly {
			roots = append(roots, p.ImportPath)
		}
	}
	sort.Strings(roots)
	return roots, nil
}

// Resolve returns metadata for one import path, consulting the go
// command on a cache miss (this covers standard-library packages that
// were not in any earlier listing).
func (r *GoListResolver) Resolve(path string) (*Meta, error) {
	if m, ok := r.meta[path]; ok {
		return m, nil
	}
	// Anything fetched lazily is a dependency of some target package,
	// never a lint target itself, so its bodies can be skipped.
	if _, err := r.list([]string{path}, true); err != nil {
		return nil, err
	}
	m, ok := r.meta[path]
	if !ok {
		return nil, fmt.Errorf("go list did not report %q", path)
	}
	return m, nil
}

func (r *GoListResolver) list(patterns []string, depOnly bool) ([]*listPkg, error) {
	args := append([]string{"list", "-e", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = r.Dir
	// Hermetic, cgo-free metadata: file lists must not depend on the
	// network or on a C toolchain.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0", "GOPROXY=off", "GOWORK=off")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v: %s", patterns, err, stderr.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, &p)
		if _, ok := r.meta[p.ImportPath]; !ok {
			r.meta[p.ImportPath] = &Meta{
				ImportPath: p.ImportPath,
				Dir:        p.Dir,
				GoFiles:    p.GoFiles,
				ImportMap:  p.ImportMap,
				DepOnly:    p.DepOnly || depOnly,
			}
		}
	}
	return pkgs, nil
}
