// Package analysistest runs a tealint analyzer over golden test
// packages under a testdata directory, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract.
//
// Test packages live in testdata/src/<importpath>/. Imports between
// test packages resolve within testdata/src; anything else (the
// standard library) is loaded from source via the go command. When a
// requested package imports other testdata packages, the dependencies
// are analyzed first with a shared fact store, so cross-package facts
// flow exactly as they do under the real checker — and `want`
// expectations in dependency files are checked too. Expected
// diagnostics are declared with trailing comments:
//
//	bad() // want "regexp matching the diagnostic"
//
// Each `want` comment holds one or more double-quoted Go string
// literals, each a regular expression; every diagnostic on that line
// must match one expectation and vice versa.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/checker"
	"repro/internal/lint/load"
)

// Run applies the analyzer to each named test package under
// dir/testdata/src — after analyzing any testdata packages they import,
// dependencies first, against one shared fact store — and checks the
// reported diagnostics against the `want` comments in the sources of
// every analyzed testdata package.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	srcRoot := filepath.Join(dir, "testdata", "src")
	golist := load.NewGoListResolver(dir)
	local := map[string]bool{} // import paths resolved inside testdata/src
	loader := load.NewLoader(func(path string) (*load.Meta, error) {
		pkgDir := filepath.Join(srcRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(pkgDir); err == nil && fi.IsDir() {
			names, err := goFilesIn(pkgDir)
			if err != nil {
				return nil, err
			}
			local[path] = true
			return &load.Meta{ImportPath: path, Dir: pkgDir, GoFiles: names}, nil
		}
		return golist.Resolve(path)
	})

	pkgs := map[string]*load.Package{}
	var loadPkg func(path string) *load.Package
	loadPkg = func(path string) *load.Package {
		if pkg, ok := pkgs[path]; ok {
			return pkg
		}
		pkg, err := loader.Load(path)
		if err != nil {
			t.Errorf("loading testdata package %s: %v", path, err)
			return nil
		}
		pkgs[path] = pkg
		return pkg
	}

	// Analysis order: depth-first over testdata-local imports, so a
	// package's facts exist before any dependent consumes them.
	runner := &checker.Runner{Analyzers: []*analysis.Analyzer{a}}
	var diags []analysis.Diagnostic
	var analyzedPkgs []*load.Package
	analyzed := map[string]bool{}
	var analyze func(path string)
	analyze = func(path string) {
		if analyzed[path] {
			return
		}
		analyzed[path] = true
		pkg := loadPkg(path)
		if pkg == nil {
			return
		}
		for _, imp := range pkg.Types.Imports() {
			if local[imp.Path()] {
				analyze(imp.Path())
			}
		}
		ds, err := runner.RunPackage(loader.Fset, pkg.Files, pkg.Types, pkg.Info)
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			return
		}
		diags = append(diags, ds...)
		analyzedPkgs = append(analyzedPkgs, pkg)
	}
	for _, pkgPath := range pkgPaths {
		analyze(pkgPath)
	}
	checkExpectations(t, loader.Fset, analyzedPkgs, diags)
}

func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return names, nil
}

// expectation is one `want` pattern at a file:line.
type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func checkExpectations(t *testing.T, fset *token.FileSet, pkgs []*load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[string][]*expectation{} // "file:line" -> expectations
	for _, pkg := range pkgs {
		for _, name := range pkg.Meta.GoFiles {
			filename := filepath.Join(pkg.Meta.Dir, name)
			data, err := os.ReadFile(filename)
			if err != nil {
				t.Errorf("%s: %v", filename, err)
				return
			}
			for i, line := range strings.Split(string(data), "\n") {
				m := wantRE.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				key := fmt.Sprintf("%s:%d", filename, i+1)
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					pattern, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", key, q, err)
						continue
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", key, pattern, err)
						continue
					}
					wants[key] = append(wants[key], &expectation{re: re, raw: pattern})
				}
			}
		}
	}

	for _, d := range diags {
		posn := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", posn.Filename, posn.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.raw)
			}
		}
	}
}
