// Package analysistest runs a tealint analyzer over golden test
// packages under a testdata directory, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract.
//
// Test packages live in testdata/src/<importpath>/. Imports between
// test packages resolve within testdata/src; anything else (the
// standard library) is loaded from source via the go command. Expected
// diagnostics are declared with trailing comments:
//
//	bad() // want "regexp matching the diagnostic"
//
// Each `want` comment holds one or more double-quoted Go string
// literals, each a regular expression; every diagnostic on that line
// must match one expectation and vice versa.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/checker"
	"repro/internal/lint/load"
)

// Run applies the analyzer to each named test package under
// dir/testdata/src and checks reported diagnostics against the `want`
// comments in its sources.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	srcRoot := filepath.Join(dir, "testdata", "src")
	golist := load.NewGoListResolver(dir)
	loader := load.NewLoader(func(path string) (*load.Meta, error) {
		pkgDir := filepath.Join(srcRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(pkgDir); err == nil && fi.IsDir() {
			names, err := goFilesIn(pkgDir)
			if err != nil {
				return nil, err
			}
			return &load.Meta{ImportPath: path, Dir: pkgDir, GoFiles: names}, nil
		}
		return golist.Resolve(path)
	})

	for _, pkgPath := range pkgPaths {
		pkg, err := loader.Load(pkgPath)
		if err != nil {
			t.Errorf("loading testdata package %s: %v", pkgPath, err)
			continue
		}
		diags, err := checker.RunPackage(loader.Fset, pkg.Files, pkg.Types, pkg.Info, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, pkgPath, err)
			continue
		}
		checkExpectations(t, loader.Fset, pkgPath, pkg.Meta.GoFiles, pkg.Meta.Dir, diags)
	}
}

func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return names, nil
}

// expectation is one `want` pattern at a file:line.
type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

func checkExpectations(t *testing.T, fset *token.FileSet, pkgPath string, goFiles []string, dir string, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[string][]*expectation{} // "file:line" -> expectations
	for _, name := range goFiles {
		filename := filepath.Join(dir, name)
		data, err := os.ReadFile(filename)
		if err != nil {
			t.Errorf("%s: %v", filename, err)
			return
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", filename, i+1)
			for _, q := range quotedRE.FindAllString(m[1], -1) {
				pattern, err := strconv.Unquote(q)
				if err != nil {
					t.Errorf("%s: bad want pattern %s: %v", key, q, err)
					continue
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Errorf("%s: bad want regexp %q: %v", key, pattern, err)
					continue
				}
				wants[key] = append(wants[key], &expectation{re: re, raw: pattern})
			}
		}
	}

	for _, d := range diags {
		posn := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", posn.Filename, posn.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.raw)
			}
		}
	}
	_ = pkgPath
}
