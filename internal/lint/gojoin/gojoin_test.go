package gojoin_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/gojoin"
)

func TestGoJoin(t *testing.T) {
	analysistest.Run(t, ".", gojoin.Analyzer, "svc")
}
