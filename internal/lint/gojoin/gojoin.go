// Package gojoin defines a tealint analyzer requiring every goroutine
// to be joined and cancellable — the concurrency half of service
// readiness.
//
// The parallel replay scheduler joins its workers with a WaitGroup and
// drains them through channels; a goroutine without either is a leak
// that the chaos harness cannot see and a server cannot shed. For each
// `go` statement in non-test code the analyzer demands two pieces of
// static evidence:
//
//  1. Completion signal: the spawned body (a function literal's body,
//     or the callee's — via the cross-package Completes fact when the
//     callee lives in another package) calls (*sync.WaitGroup).Done,
//     sends on a channel, or closes one.
//
//  2. Join point: the spawning function waits — (*sync.WaitGroup).Wait,
//     a channel receive, a range over a channel, or a select with a
//     receive case.
//
// Additionally, a goroutine body containing an unbounded loop
// (`for {}` / `for cond {}`) must observe cancellation: reference a
// context.Context, use select, or receive from a channel. Otherwise it
// spins forever after its work is obsolete — the classic goroutine
// leak under server load.
//
// Functions whose bodies signal completion export the Completes fact,
// so `go worker.Run(&wg)` across a package boundary still counts as
// evidence. Dynamic spawns through stored function values are out of
// scope (the call graph's documented boundary).
package gojoin

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Completes is the cross-package fact: the function signals completion
// (WaitGroup.Done, channel send, or close) and is therefore joinable
// when spawned as a goroutine.
type Completes struct{}

// AFact marks Completes as a fact type.
func (*Completes) AFact() {}

// Analyzer reports unjoined and uncancellable goroutines.
var Analyzer = &analysis.Analyzer{
	Name: "gojoin",
	Doc: "require every goroutine to signal completion (WaitGroup.Done, channel send/close), be waited on by its spawner, and observe cancellation in unbounded loops\n\n" +
		"An unjoined goroutine is a leak the chaos harness cannot see; one that ignores cancellation spins after its work is obsolete.",
	FactTypes: []analysis.Fact{new(Completes)},
	Run:       run,
}

func run(pass *analysis.Pass) (any, error) {
	// First pass: which locally declared functions signal completion.
	completes := map[*types.Func]bool{}
	decls := map[*types.Func]*ast.FuncDecl{}
	var order []*types.Func
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			order = append(order, fn)
			if signalsCompletion(pass, fd.Body) {
				completes[fn] = true
				if !analysis.IsTestFile(pass.Fset, fd.Pos()) {
					pass.ExportFact(fn, &Completes{})
				}
			}
		}
	}

	for _, fn := range order {
		fd := decls[fn]
		if analysis.IsTestFile(pass.Fset, fd.Pos()) {
			continue
		}
		waits := spawnerWaits(pass, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGo(pass, gs, waits, completes, decls)
			return true
		})
	}
	return nil, nil
}

// checkGo validates one go statement against the join and cancellation
// requirements.
func checkGo(pass *analysis.Pass, gs *ast.GoStmt, spawnerWaits bool, completes map[*types.Func]bool, decls map[*types.Func]*ast.FuncDecl) {
	var body *ast.BlockStmt // spawned body, when visible
	signaled := false
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
		signaled = signalsCompletion(pass, body)
	default:
		if callee := calleeFunc(pass, gs.Call); callee != nil {
			if completes[callee] {
				signaled = true
			} else {
				var fact Completes
				signaled = pass.ImportFact(callee, &fact)
			}
			if fd := decls[callee]; fd != nil {
				body = fd.Body
			}
		}
	}

	switch {
	case !signaled:
		pass.Reportf(gs.Pos(), "goroutine signals no completion: its body must call WaitGroup.Done, send on a channel, or close one, so the spawner can join it")
	case !spawnerWaits:
		pass.Reportf(gs.Pos(), "goroutine is never joined: the spawning function must wait for it (WaitGroup.Wait, channel receive, range, or select)")
	}

	// Cancellation: only checkable when the body is visible, and only
	// demanded when it loops unboundedly.
	if body != nil && hasUnboundedLoop(body) && !observesCancellation(pass, body) {
		pass.Reportf(gs.Pos(), "goroutine loops without observing cancellation: an unbounded loop must watch a context, select, or channel-close signal, or it leaks under load")
	}
}

// signalsCompletion reports whether the body contains a completion
// signal: a (*sync.WaitGroup).Done call, a channel send, or a close.
func signalsCompletion(pass *analysis.Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if fn := calleeFunc(pass, n); fn != nil && fn.FullName() == "(*sync.WaitGroup).Done" {
				found = true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// spawnerWaits reports whether the function body contains a join
// point: WaitGroup.Wait, a channel receive, a range over a channel, or
// a select with a receive case.
func spawnerWaits(pass *analysis.Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pass, n); fn != nil && fn.FullName() == "(*sync.WaitGroup).Wait" {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := types.Unalias(tv.Type).Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.SelectStmt:
			found = true
		}
		return !found
	})
	return found
}

// hasUnboundedLoop reports whether the body contains a for loop with no
// bounded iteration structure: `for {}` or `for cond {}` (range loops
// are bounded by their operand or its close).
func hasUnboundedLoop(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if fs, ok := n.(*ast.ForStmt); ok && fs.Init == nil && fs.Post == nil {
			found = true
		}
		return !found
	})
	return found
}

// observesCancellation reports whether the body references a
// context.Context, uses select, or receives from a channel — any of
// which can carry a stop signal.
func observesCancellation(pass *analysis.Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := types.Unalias(tv.Type).Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// calleeFunc resolves a call's static callee, or nil.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
