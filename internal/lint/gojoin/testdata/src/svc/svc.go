// Package svc exercises the goroutine join and cancellation rules,
// including spawns of cross-package bodies proven joinable by facts.
package svc

import (
	"context"
	"sync"

	"worker"
)

func compute() int { return 42 }

// FanOut spawns a cross-package worker: the Completes fact proves the
// body signals, and wg.Wait is the join.
func FanOut() []int {
	var wg sync.WaitGroup
	out := make(chan int, 2)
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go worker.Run(&wg, out)
	}
	wg.Wait()
	close(out)
	var res []int
	for v := range out {
		res = append(res, v)
	}
	return res
}

// Leak spawns a goroutine that signals nothing.
func Leak() {
	go func() { // want "goroutine signals no completion"
		compute()
	}()
}

// LeakCross spawns a cross-package body with no Completes fact.
func LeakCross() {
	go worker.Forget(3) // want "goroutine signals no completion"
}

// NoJoin's goroutine signals, but the spawner never waits.
func NoJoin() {
	ch := make(chan int, 1)
	go func() { // want "goroutine is never joined"
		ch <- compute()
	}()
}

// Spin's goroutine is joined but loops without observing cancellation.
func Spin() {
	done := make(chan struct{})
	go func() { // want "goroutine loops without observing cancellation"
		defer close(done)
		for {
			compute()
		}
	}()
	<-done
}

// SpinOK's loop watches the context through a select: clean.
func SpinOK(ctx context.Context) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-ctx.Done():
				return
			default:
				compute()
			}
		}
	}()
	<-done
}
