// Package worker is a cross-package goroutine body: Run signals
// completion, which only the exported Completes fact can prove to a
// spawner in another package.
package worker

import "sync"

// Run does one unit of work and signals the spawner's WaitGroup.
func Run(wg *sync.WaitGroup, out chan<- int) {
	defer wg.Done()
	out <- 1
}

// Forget does work but never signals anyone.
func Forget(n int) {
	_ = n * n
}
