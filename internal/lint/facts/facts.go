// Package facts is the cross-package fact store behind tealint's
// whole-program analyzers (detreach, ctxflow, gojoin, errbound).
//
// An analyzer running on package P exports typed facts about P's
// functions and objects; when the checker later runs the same analyzer
// on a package that imports P, those facts are importable by object.
// In standalone mode one in-memory Store spans the whole module (the
// checker analyzes packages in dependency order). In vet mode each
// package runs in its own process, so the Store round-trips through
// the vetx files cmd/go threads between runs: Encode serializes every
// fact (the package's own and its dependencies', so facts flow
// transitively), Decode merges a dependency's file back in.
//
// Objects are keyed by their canonical path-qualified name
// ((*types.Func).FullName for functions, package path + name
// otherwise), which is stable between source-loaded and export-data
// type information — the same object yields the same key in both
// modes. Fact values are gob-encoded; each fact type must therefore be
// a pointer to an exported-field struct and be listed in its
// analyzer's FactTypes.
package facts

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Store holds facts keyed by (object, fact type). It is not safe for
// concurrent use; the checker analyzes packages sequentially.
type Store struct {
	facts map[storeKey]analysis.Fact
	types map[string]reflect.Type // registered fact types by wire name
}

type storeKey struct {
	obj string // canonical object key (see ObjectKey)
	typ string // wire name of the fact type
}

// NewStore returns a Store with the fact types of the given analyzers
// registered for serialization.
func NewStore(analyzers []*analysis.Analyzer) *Store {
	s := &Store{
		facts: map[storeKey]analysis.Fact{},
		types: map[string]reflect.Type{},
	}
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			s.types[typeName(f)] = reflect.TypeOf(f)
		}
	}
	return s
}

// typeName is the wire name of a fact type: the pointed-to struct's
// package-qualified type string ("detreach.Taints").
func typeName(f analysis.Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	name := t.String()
	// Strip any full-path package qualification down to pkg.Type so
	// the wire name is stable across module layouts.
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// ObjectKey returns the canonical cross-package key for obj:
// "pkg/path.Name" for package functions, "(pkg/path.Recv).Name" for
// methods, "pkg/path.Name" for other package-level objects.
func ObjectKey(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		return fn.FullName()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

// Export records fact for obj, replacing any prior fact of the same
// type.
func (s *Store) Export(obj types.Object, fact analysis.Fact) {
	s.facts[storeKey{ObjectKey(obj), typeName(fact)}] = fact
}

// Import copies the stored fact of fact's type for obj into fact,
// reporting whether one existed. fact must be a non-nil pointer of the
// same concrete type as the stored fact.
func (s *Store) Import(obj types.Object, fact analysis.Fact) bool {
	stored, ok := s.facts[storeKey{ObjectKey(obj), typeName(fact)}]
	if !ok {
		return false
	}
	dv := reflect.ValueOf(fact)
	sv := reflect.ValueOf(stored)
	if dv.Type() != sv.Type() || dv.Kind() != reflect.Pointer || dv.IsNil() {
		return false
	}
	dv.Elem().Set(sv.Elem())
	return true
}

// Bind wires a Pass's fact hooks to this store. AllObjectFacts is
// restricted to objects of the pass's package.
func (s *Store) Bind(pass *analysis.Pass) {
	pass.ExportObjectFact = s.Export
	pass.ImportObjectFact = s.Import
	pass.AllObjectFacts = func() []analysis.ObjectFact {
		// Object pointers are not recoverable from keys; expose the
		// package's facts by re-walking its scope.
		var out []analysis.ObjectFact
		scope := pass.Pkg.Scope()
		for _, name := range scope.Names() {
			obj := scope.Lookup(name)
			for k, f := range s.facts {
				if k.obj == ObjectKey(obj) {
					out = append(out, analysis.ObjectFact{Object: obj, Fact: f})
				}
			}
		}
		return out
	}
}

// wireFact is the serialized form of one fact.
type wireFact struct {
	Obj  string
	Type string
	Data []byte
}

// Encode serializes every fact in the store (the current package's and
// its dependencies'), deterministically ordered, for a vetx file.
// Facts of unregistered types are skipped.
func (s *Store) Encode() ([]byte, error) {
	wire := make([]wireFact, 0, len(s.facts))
	for k, f := range s.facts {
		if _, ok := s.types[k.typ]; !ok {
			continue
		}
		var val bytes.Buffer
		rv := reflect.ValueOf(f)
		for rv.Kind() == reflect.Pointer {
			rv = rv.Elem()
		}
		if err := gob.NewEncoder(&val).EncodeValue(rv); err != nil {
			return nil, fmt.Errorf("facts: encoding %s fact for %s: %w", k.typ, k.obj, err)
		}
		wire = append(wire, wireFact{Obj: k.obj, Type: k.typ, Data: val.Bytes()})
	}
	sort.Slice(wire, func(i, j int) bool {
		if wire[i].Obj != wire[j].Obj {
			return wire[i].Obj < wire[j].Obj
		}
		return wire[i].Type < wire[j].Type
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, fmt.Errorf("facts: encoding store: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode merges a vetx file produced by Encode into the store. Facts
// of types no registered analyzer declares are skipped (a disabled
// analyzer's facts simply vanish).
func (s *Store) Decode(data []byte) error {
	var wire []wireFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wire); err != nil {
		return fmt.Errorf("facts: decoding store: %w", err)
	}
	for _, w := range wire {
		pt, ok := s.types[w.Type]
		if !ok {
			continue
		}
		for pt.Kind() == reflect.Pointer {
			pt = pt.Elem()
		}
		pv := reflect.New(pt)
		if err := gob.NewDecoder(bytes.NewReader(w.Data)).DecodeValue(pv.Elem()); err != nil {
			return fmt.Errorf("facts: decoding %s fact for %s: %w", w.Type, w.Obj, err)
		}
		s.facts[storeKey{w.Obj, w.Type}] = pv.Interface().(analysis.Fact)
	}
	return nil
}

// Len reports the number of stored facts (tests and diagnostics).
func (s *Store) Len() int { return len(s.facts) }
