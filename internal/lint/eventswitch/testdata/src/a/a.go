// Package a is the eventswitch golden suite.
package a

import "events"

// missing two events, no default: flagged.
func incomplete(e events.Event) string {
	switch e { // want "switch on events.Event is not exhaustive: missing FLMO, STLLC"
	case events.DRL1, events.DRTLB, events.DRSQ:
		return "drained"
	case events.FLMB, events.FLEX:
		return "flushed"
	case events.STL1, events.STTLB:
		return "stalled"
	}
	return ""
}

// all nine events covered: not flagged.
func exhaustive(e events.Event) string {
	switch e {
	case events.DRL1, events.DRTLB, events.DRSQ:
		return "drained"
	case events.FLMB, events.FLEX, events.FLMO:
		return "flushed"
	case events.STL1, events.STTLB, events.STLLC:
		return "stalled"
	}
	return ""
}

// partial coverage with an explicit default: not flagged.
func defaulted(e events.Event) string {
	switch e {
	case events.FLMB:
		return "mispredict"
	default:
		return "other"
	}
}

// a switch on a different type is none of our business: not flagged.
func otherType(n int) string {
	switch n {
	case 0:
		return "zero"
	}
	return "nonzero"
}

// tag-free switches are plain if/else chains: not flagged.
func tagless(e events.Event) string {
	switch {
	case e == events.DRL1:
		return "icache"
	}
	return ""
}

// a suppressed violation: the directive must silence the report.
func suppressed(e events.Event) bool {
	//tealint:ignore eventswitch only DR-SQ matters to this helper
	switch e {
	case events.DRSQ:
		return true
	}
	return false
}
