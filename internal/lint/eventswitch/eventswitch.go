// Package eventswitch defines a tealint analyzer that requires every
// switch over the events.Event type to be exhaustive.
//
// Table 1 of the TEA paper fixes nine performance events; the
// simulator encodes them as consecutive events.Event constants with
// NumEvents as the count. A switch that handles only some events
// silently misclassifies the rest (the compiler cannot help — Event is
// just a uint8), so any switch on an Event value must either cover all
// NumEvents values or carry an explicit default case.
package eventswitch

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer flags non-exhaustive switches on events.Event.
var Analyzer = &analysis.Analyzer{
	Name: "eventswitch",
	Doc: "require switches on events.Event to cover all NumEvents values or have a default\n\n" +
		"The nine Table-1 events are a closed set; a partial switch silently drops events.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil, nil
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok {
		return
	}
	named := eventType(tv.Type)
	if named == nil {
		return
	}
	scope := named.Obj().Pkg().Scope()
	numEvents, ok := lookupNumEvents(scope)
	if !ok {
		return // events package without NumEvents: nothing to enforce
	}

	covered := make(map[int64]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: the switch handles everything
		}
		for _, expr := range cc.List {
			etv, ok := pass.TypesInfo.Types[expr]
			if !ok || etv.Value == nil {
				continue // dynamic case expression: proves nothing
			}
			if v, exact := constant.Int64Val(constant.ToInt(etv.Value)); exact {
				covered[v] = true
			}
		}
	}

	var missing []string
	for v := int64(0); v < numEvents; v++ {
		if !covered[v] {
			missing = append(missing, eventName(scope, named, v))
		}
	}
	if len(missing) == 0 {
		return
	}
	pass.Reportf(sw.Switch,
		"switch on %s.Event is not exhaustive: missing %s (cover all NumEvents events or add a default case)",
		named.Obj().Pkg().Name(), strings.Join(missing, ", "))
}

// eventType returns t as the events.Event named type, or nil.
func eventType(t types.Type) *types.Named {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Name() != "Event" || obj.Pkg() == nil || obj.Pkg().Name() != "events" {
		return nil
	}
	return named
}

func lookupNumEvents(scope *types.Scope) (int64, bool) {
	c, ok := scope.Lookup("NumEvents").(*types.Const)
	if !ok {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(c.Val()))
	if !exact || v <= 0 {
		return 0, false
	}
	return v, true
}

// eventName names the Event constant with value v, falling back to the
// numeric value.
func eventName(scope *types.Scope, named *types.Named, v int64) string {
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || types.Unalias(c.Type()) != named {
			continue
		}
		if cv, exact := constant.Int64Val(constant.ToInt(c.Val())); exact && cv == v {
			return c.Name()
		}
	}
	return fmt.Sprintf("Event(%d)", v)
}
