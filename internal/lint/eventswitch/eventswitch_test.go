package eventswitch_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/eventswitch"
)

func TestEventSwitch(t *testing.T) {
	analysistest.Run(t, ".", eventswitch.Analyzer, "a")
}
