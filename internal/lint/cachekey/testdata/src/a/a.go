package a

type Hasher struct{}

func (h *Hasher) Uint(v uint64)   {}
func (h *Hasher) String(s string) {}

type Inner struct {
	A uint64
	B uint64
}

type Cfg struct {
	X  uint64
	Y  string
	In Inner
}

// Good consumes every field: scalars directly, the nested struct via a
// digest helper.
//
//tealint:cachekey
func Good(h *Hasher, c Cfg) {
	h.Uint(c.X)
	h.String(c.Y)
	HashInner(h, c.In)
}

// HashInner is a complete nested-struct digest helper.
//
//tealint:cachekey
func HashInner(h *Hasher, in Inner) {
	h.Uint(in.A)
	h.Uint(in.B)
}

// MissingLeaf forgets a scalar field.
//
//tealint:cachekey
func MissingLeaf(h *Hasher, c Cfg) { // want "does not consume c\\.Y"
	h.Uint(c.X)
	HashInner(h, c.In)
}

// MissingNested reaches into the nested struct but forgets one of its
// fields: the diagnostic names the exact leaf.
//
//tealint:cachekey
func MissingNested(h *Hasher, c Cfg) { // want "does not consume c\\.In\\.B"
	h.Uint(c.X)
	h.String(c.Y)
	h.Uint(c.In.A)
}

// MissingStruct never touches the nested struct: one diagnostic at the
// shallowest missing node, not one per leaf.
//
//tealint:cachekey
func MissingStruct(h *Hasher, c Cfg) { // want "does not consume c\\.In \\("
	h.Uint(c.X)
	h.String(c.Y)
}

// MissingTwo reports each missing field.
//
//tealint:cachekey
func MissingTwo(h *Hasher, c Cfg) { // want "does not consume c\\.X" "does not consume c\\.Y"
	HashInner(h, c.In)
}

// Delegated passes the whole parameter on: full delegation, nothing to
// report here (the callee is only checked if it is itself marked).
//
//tealint:cachekey
func Delegated(h *Hasher, c Cfg) {
	hashCfgPartially(h, c)
}

// hashCfgPartially is unmarked, so its incompleteness is not this
// analyzer's business.
func hashCfgPartially(h *Hasher, c Cfg) {
	h.Uint(c.X)
}

// PointerParam is checked through the pointer.
//
//tealint:cachekey
func PointerParam(h *Hasher, c *Cfg) { // want "does not consume c\\.X"
	h.String(c.Y)
	HashInner(h, c.In)
}
