package cachekey_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/cachekey"
)

func TestCacheKey(t *testing.T) {
	analysistest.Run(t, ".", cachekey.Analyzer, "a")
}
