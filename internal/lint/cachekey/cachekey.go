// Package cachekey defines a tealint analyzer that keeps trace-cache
// key derivation complete.
//
// The trace store content-addresses captures: a digest function folds
// every field of the program and run configuration into a SHA-256 key.
// The failure mode is silent and nasty — add a configuration knob,
// forget to hash it, and two different captures now share a key, so an
// experiment can replay a trace recorded under a different machine
// configuration and report wrong numbers with full confidence.
//
// Functions marked with a `//tealint:cachekey` doc-comment directive
// are digest functions. For each such function, every field of each
// struct-typed parameter must be consumed by the function body:
// mentioned through a selector chain rooted at the parameter, or
// delegated wholesale (the parameter, or one of its struct fields,
// passed as a value somewhere — typically to another digest helper).
// Struct fields that are neither mentioned nor delegated are reported
// field by field, recursing into nested all-exported structs so the
// diagnostic names the exact missing leaf.
package cachekey

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer flags //tealint:cachekey digest functions that fail to
// consume every field of their struct parameters.
var Analyzer = &analysis.Analyzer{
	Name: "cachekey",
	Doc: "require //tealint:cachekey digest functions to consume every struct parameter field\n\n" +
		"A config field missing from the trace-cache key silently aliases distinct captures.",
	Run: run,
}

var directiveRE = regexp.MustCompile(`^//\s*tealint:cachekey\s*$`)

// maxDepth bounds recursion through nested struct fields (cyclic or
// pathologically deep config types degrade to whole-subtree checks).
const maxDepth = 8

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isDigestFunc(fd) {
				continue
			}
			checkDigestFunc(pass, fd)
		}
	}
	return nil, nil
}

func isDigestFunc(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if directiveRE.MatchString(c.Text) {
			return true
		}
	}
	return false
}

func checkDigestFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			st := structUnder(obj.Type())
			if st == nil {
				continue // non-struct parameter: nothing to enforce
			}
			consumed := consumedPaths(pass, fd.Body, obj)
			var missing []string
			collectMissing(pass, st, "", consumed, maxDepth, &missing)
			for _, path := range missing {
				pass.Reportf(fd.Name.Pos(),
					"cachekey digest %s does not consume %s.%s (every field must be folded into the key or the omission carries a tealint:ignore)",
					fd.Name.Name, name.Name, path)
			}
		}
	}
}

// structUnder unwraps pointers and aliases down to a struct type, or
// nil if the type is not (a pointer to) a struct.
func structUnder(t types.Type) *types.Struct {
	u := t.Underlying()
	if p, ok := u.(*types.Pointer); ok {
		u = p.Elem().Underlying()
	}
	st, _ := u.(*types.Struct)
	return st
}

// consumedPaths collects every selector path rooted at param that the
// body consumes, as dotted strings ("Core.Mem"). A bare use of the
// parameter itself — passed to a helper, taken by address — records ""
// (the whole value is delegated). A recorded path covers its entire
// subtree: passing rc.Core to a digest helper consumes every field
// under Core (the helper is itself checked if marked).
func consumedPaths(pass *analysis.Pass, body *ast.BlockStmt, param *types.Var) map[string]bool {
	consumed := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if path, ok := flatten(pass, e, param); ok {
				consumed[path] = true
				// The chain's prefixes are traversed, not consumed:
				// rc.Core.FetchWidth alone must not mark Core covered.
				return false
			}
		case *ast.Ident:
			if pass.TypesInfo.Uses[e] == param {
				consumed[""] = true
			}
		}
		return true
	})
	return consumed
}

// flatten resolves a pure ident.Sel.Sel... chain rooted at param into
// its dotted field path.
func flatten(pass *analysis.Pass, e *ast.SelectorExpr, param *types.Var) (string, bool) {
	var parts []string
	cur := ast.Expr(e)
	for {
		sel, ok := cur.(*ast.SelectorExpr)
		if !ok {
			break
		}
		parts = append(parts, sel.Sel.Name)
		cur = sel.X
	}
	id, ok := cur.(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[id] != param {
		return "", false
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, "."), true
}

// collectMissing appends the dotted path of every field under st (at
// prefix) that no consumed path covers. A field is covered when its
// path or any prefix of it is consumed. An uncovered struct field is
// recursed into only if the body already reaches under it — otherwise
// the whole field is reported once, at the shallowest missing node.
func collectMissing(pass *analysis.Pass, st *types.Struct, prefix string, consumed map[string]bool, depth int, missing *[]string) {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() && f.Pkg() != pass.Pkg {
			continue // inaccessible from the digest function anyway
		}
		path := f.Name()
		if prefix != "" {
			path = prefix + "." + f.Name()
		}
		if covered(path, consumed) {
			continue
		}
		if sub := structUnder(f.Type()); sub != nil && depth > 0 && reachesUnder(path, consumed) {
			collectMissing(pass, sub, path, consumed, depth-1, missing)
			continue
		}
		*missing = append(*missing, path)
	}
}

// covered reports whether path or any dotted prefix of it is consumed.
func covered(path string, consumed map[string]bool) bool {
	if consumed[""] {
		return true
	}
	for {
		if consumed[path] {
			return true
		}
		i := strings.LastIndexByte(path, '.')
		if i < 0 {
			return false
		}
		path = path[:i]
	}
}

// reachesUnder reports whether some consumed path lies strictly below
// path (the body touches part of the subtree, so missing siblings are
// reported individually).
func reachesUnder(path string, consumed map[string]bool) bool {
	p := path + "."
	for c := range consumed {
		if strings.HasPrefix(c, p) {
			return true
		}
	}
	return false
}
