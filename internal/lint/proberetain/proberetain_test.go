package proberetain_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/proberetain"
)

func TestProbeRetain(t *testing.T) {
	analysistest.Run(t, ".", proberetain.Analyzer, "a", "cpu")
}
