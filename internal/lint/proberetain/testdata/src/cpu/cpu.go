// Package cpu is a miniature stand-in for repro/internal/cpu: the
// proberetain analyzer matches the UOp type by name and package, so
// the golden suite exercises it without importing the real simulator.
// The cpu package itself owns µop lifetime, so nothing here is
// flagged.
package cpu

// UOp is one in-flight micro-operation; the core recycles these.
type UOp struct {
	Seq uint64
	PC  uint64
}

// Ref is the value-typed snapshot probes may keep.
type Ref struct {
	Seq uint64
	PC  uint64
	PSV uint16
}

// The core's own free list legitimately stores µop pointers.
var pool []*UOp

// rob holds in-flight µops inside the owning package: allowed.
type rob struct {
	entries []*UOp
	head    *UOp
}
