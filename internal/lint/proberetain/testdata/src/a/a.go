// Package a is the proberetain golden suite.
package a

import "cpu"

// A probe that stores the pointer directly: flagged.
type badProbe struct {
	last *cpu.UOp // want "struct field last retains \\*cpu.UOp"
}

// Containers of µop pointers retain just the same: flagged.
type badSlices struct {
	committed []*cpu.UOp          // want "struct field committed retains \\*cpu.UOp"
	byCycle   map[uint64]*cpu.UOp // want "struct field byCycle retains \\*cpu.UOp"
	keyed     map[*cpu.UOp]uint64 // want "struct field keyed retains \\*cpu.UOp"
	window    [8]*cpu.UOp         // want "struct field window retains \\*cpu.UOp"
	feed      chan *cpu.UOp       // want "struct field feed retains \\*cpu.UOp"
}

// An anonymous struct nested in a field still retains: its inner
// field is flagged where it is declared.
type badNested struct {
	inner struct {
		u *cpu.UOp // want "struct field u retains \\*cpu.UOp"
	}
}

// Package-level variables retain across every callback: flagged.
var lastSeen *cpu.UOp // want "package variable lastSeen retains \\*cpu.UOp"

var ring []*cpu.UOp // want "package variable ring retains \\*cpu.UOp"

// The value-typed snapshot is the sanctioned pattern: not flagged.
type goodProbe struct {
	last      cpu.Ref
	committed []cpu.Ref
	commitAt  map[uint64]uint64
}

var lastRef cpu.Ref

// Transient locals within one callback are fine — the µop is stable
// for the duration of the call.
func goodLocal(u *cpu.UOp) uint64 {
	cur := u
	return cur.Seq
}

// A suppressed violation: the directive must silence the report.
type suppressed struct {
	u *cpu.UOp //tealint:ignore proberetain test fixture keeps the pointer deliberately
}
