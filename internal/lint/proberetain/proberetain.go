// Package proberetain defines a tealint analyzer that forbids storing
// *cpu.UOp in struct fields or package-level variables outside the cpu
// package itself.
//
// The core recycles µops through a free list the moment they leave the
// ROB: a *cpu.UOp held across a probe callback is repointed at a
// different dynamic instruction on the next allocation, silently
// corrupting whatever analysis retained it. Probes receive value-typed
// cpu.Ref snapshots (sequence number, PC, PSV) precisely so there is
// nothing to retain; any struct field or global that keeps the pointer
// defeats that contract. Transient locals inside a single callback are
// fine — the µop is stable for the duration of the call.
package proberetain

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer flags struct fields and package-level variables typed to
// hold *cpu.UOp outside the cpu package.
var Analyzer = &analysis.Analyzer{
	Name: "proberetain",
	Doc: "forbid storing *cpu.UOp in struct fields or package variables outside internal/cpu\n\n" +
		"µops are recycled once they leave the ROB; probes must copy the value-typed cpu.Ref.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if isCPUPackage(pass.Pkg) {
		return nil, nil // the core itself owns µop lifetime
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok == token.VAR {
					checkVarDecl(pass, d)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				tv, ok := pass.TypesInfo.Types[field.Type]
				if !ok || !holdsUOpPtr(tv.Type) {
					continue
				}
				name := "embedded field"
				if len(field.Names) > 0 {
					parts := make([]string, len(field.Names))
					for i, id := range field.Names {
						parts[i] = id.Name
					}
					name = "field " + strings.Join(parts, ", ")
				}
				pass.Reportf(field.Pos(),
					"struct %s retains *cpu.UOp; µops are recycled after commit — store the value-typed cpu.Ref instead",
					name)
			}
			return true
		})
	}
	return nil, nil
}

// checkVarDecl flags package-level variables that can hold a *cpu.UOp.
func checkVarDecl(pass *analysis.Pass, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok || !holdsUOpPtr(obj.Type()) {
				continue
			}
			pass.Reportf(name.Pos(),
				"package variable %s retains *cpu.UOp; µops are recycled after commit — store the value-typed cpu.Ref instead",
				name.Name)
		}
	}
}

// isCPUPackage reports whether pkg is the µop-owning core package. It
// matches both the real simulator package (path suffix internal/cpu)
// and the golden-suite stand-in (import path "cpu").
func isCPUPackage(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	return pkg.Path() == "cpu" || strings.HasSuffix(pkg.Path(), "internal/cpu")
}

// holdsUOpPtr reports whether t can transitively store a *cpu.UOp:
// the pointer itself, or a slice/array/map/channel containing one.
// Neither named composite types nor anonymous structs are unwrapped —
// a type that retains µops is flagged where its fields are defined.
func holdsUOpPtr(t types.Type) bool {
	switch t := types.Unalias(t).(type) {
	case *types.Pointer:
		if isUOp(t.Elem()) {
			return true
		}
		return holdsUOpPtr(t.Elem())
	case *types.Slice:
		return holdsUOpPtr(t.Elem())
	case *types.Array:
		return holdsUOpPtr(t.Elem())
	case *types.Map:
		return holdsUOpPtr(t.Key()) || holdsUOpPtr(t.Elem())
	case *types.Chan:
		return holdsUOpPtr(t.Elem())
	}
	return false
}

// isUOp reports whether t is the named type cpu.UOp.
func isUOp(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "UOp" && isCPUPackage(obj.Pkg())
}
