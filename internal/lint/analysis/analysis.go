// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis API surface that tealint needs.
//
// The repository builds hermetically (no module downloads), so the
// real x/tools module is not available; this package mirrors its
// Analyzer/Pass/Diagnostic contract closely enough that the tealint
// analyzers could be ported to the upstream framework by changing one
// import path. Only the subset tealint uses is implemented: no facts,
// no sub-analyzer requirements, no suggested fixes.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags, and
	// tealint:ignore directives. It must be a valid Go identifier.
	Name string
	// Doc is the analyzer's documentation; the first line is its
	// one-sentence summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer run with a type-checked package and a
// sink for diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding. Category is filled in by the driver
// with the analyzer name.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Category string
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. Analyzers that police only production code (detiter,
// randsource) use this to exempt tests.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// ignoreRE matches suppression directives:
//
//	//tealint:ignore <name>[,<name>...] [reason]
//
// A directive on the flagged line, or alone on the line above it,
// suppresses the named analyzers ("all" suppresses every analyzer).
var ignoreRE = regexp.MustCompile(`^//\s*tealint:ignore\s+([A-Za-z0-9_,]+)`)

// IgnoredLines returns, per filename, the set of line numbers whose
// diagnostics from the named analyzer are suppressed by a
// tealint:ignore directive in the given files.
func IgnoredLines(fset *token.FileSet, files []*ast.File, analyzer string) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	add := func(filename string, line int) {
		m := out[filename]
		if m == nil {
			m = map[int]bool{}
			out[filename] = m
		}
		m[line] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				covered := false
				for _, name := range strings.Split(m[1], ",") {
					if name == analyzer || name == "all" {
						covered = true
					}
				}
				if !covered {
					continue
				}
				posn := fset.Position(c.Pos())
				// The directive covers its own line and, so that it can
				// stand alone above a long statement, the line below.
				add(posn.Filename, posn.Line)
				add(posn.Filename, posn.Line+1)
			}
		}
	}
	return out
}

// FilterIgnored drops diagnostics suppressed by tealint:ignore
// directives in the package's files.
func FilterIgnored(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	byAnalyzer := map[string]map[string]map[int]bool{}
	kept := diags[:0]
	for _, d := range diags {
		ignored, ok := byAnalyzer[d.Category]
		if !ok {
			ignored = IgnoredLines(fset, files, d.Category)
			byAnalyzer[d.Category] = ignored
		}
		posn := fset.Position(d.Pos)
		if ignored[posn.Filename][posn.Line] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
