// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis API surface that tealint needs.
//
// The repository builds hermetically (no module downloads), so the
// real x/tools module is not available; this package mirrors its
// Analyzer/Pass/Diagnostic contract closely enough that the tealint
// analyzers could be ported to the upstream framework by changing one
// import path. The implemented subset covers analyzers, diagnostics,
// suppression directives, and object facts (the cross-package
// mechanism behind detreach/ctxflow/gojoin/errbound); there are no
// sub-analyzer requirements and no suggested fixes.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, flags, and
	// tealint:ignore directives. It must be a valid Go identifier.
	Name string
	// Doc is the analyzer's documentation; the first line is its
	// one-sentence summary.
	Doc string
	// FactTypes lists one zero value per fact type the analyzer
	// exports (each must be a pointer to a struct implementing Fact).
	// The checker uses the list to serialize facts across packages in
	// vet mode; an analyzer that exports an unregistered fact type
	// still works standalone but its facts do not survive the vetx
	// round-trip.
	FactTypes []Fact
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Fact is a typed, analyzer-private statement about a program object
// (function, variable, type) that the checker carries across package
// boundaries: a fact exported while analyzing package P is importable
// by the same analyzer while it analyzes any package that depends on
// P. Facts must be pointers to gob-serializable structs.
type Fact interface {
	// AFact is a marker method (mirrors go/analysis).
	AFact()
}

// An ObjectFact is one (object, fact) pair, as returned by
// Pass.AllObjectFacts.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// A Pass provides one analyzer run with a type-checked package, a sink
// for diagnostics, and access to the cross-package fact store.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// ExportObjectFact associates fact with obj for dependent
	// packages. Nil when the driver provides no fact store.
	ExportObjectFact func(obj types.Object, fact Fact)
	// ImportObjectFact copies the fact of the given type previously
	// exported for obj (by this package or any dependency) into fact,
	// reporting whether one existed. Nil when the driver provides no
	// fact store.
	ImportObjectFact func(obj types.Object, fact Fact) bool
	// AllObjectFacts returns this analyzer's facts for objects of the
	// current package. Nil when the driver provides no fact store.
	AllObjectFacts func() []ObjectFact
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportFact is ExportObjectFact, safe to call under drivers with no
// fact store (it is then a no-op).
func (p *Pass) ExportFact(obj types.Object, fact Fact) {
	if p.ExportObjectFact != nil {
		p.ExportObjectFact(obj, fact)
	}
}

// ImportFact is ImportObjectFact, safe to call under drivers with no
// fact store (it then reports no facts).
func (p *Pass) ImportFact(obj types.Object, fact Fact) bool {
	return p.ImportObjectFact != nil && p.ImportObjectFact(obj, fact)
}

// PkgPath returns the package's import path with any vet-mode test
// variant suffix (" [pkg.test]") stripped, so path-scoped analyzers
// behave identically in standalone and vet modes.
func PkgPath(pkg *types.Package) string {
	path := pkg.Path()
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return path
}

// A Diagnostic is one finding. Category is filled in by the driver
// with the analyzer name.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Category string
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. Analyzers that police only production code (detiter,
// randsource) use this to exempt tests.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// ignoreRE matches suppression directives:
//
//	//tealint:ignore <name>[,<name>...] [reason]
//
// A directive on the flagged line, or alone on the line above it,
// suppresses the named analyzers ("all" suppresses every analyzer).
// Like Go's own //go: directives, no space may follow the // — prose
// mentioning a directive ("a tealint:ignore comment") stays prose.
var ignoreRE = regexp.MustCompile(`^//tealint:ignore\s+([A-Za-z0-9_,]+)`)

// IgnoredLines returns, per filename, the set of line numbers whose
// diagnostics from the named analyzer are suppressed by a
// tealint:ignore directive in the given files.
func IgnoredLines(fset *token.FileSet, files []*ast.File, analyzer string) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	add := func(filename string, line int) {
		m := out[filename]
		if m == nil {
			m = map[int]bool{}
			out[filename] = m
		}
		m[line] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				covered := false
				for _, name := range strings.Split(m[1], ",") {
					if name == analyzer || name == "all" {
						covered = true
					}
				}
				if !covered {
					continue
				}
				posn := fset.Position(c.Pos())
				// The directive covers its own line and, so that it can
				// stand alone above a long statement, the line below.
				add(posn.Filename, posn.Line)
				add(posn.Filename, posn.Line+1)
			}
		}
	}
	return out
}

// A Directive is one //tealint:<name> comment: the directive name,
// the raw text following it (the analyzer list for ignore, the
// justification for detsafe/ctxroot), and its position.
type Directive struct {
	Name string
	Args string
	Pos  token.Pos
}

// directiveRE matches any tealint directive comment (//go: style, no
// space after the //). The name stops at the first space; everything
// after it is the directive's argument text.
var directiveRE = regexp.MustCompile(`^//tealint:([A-Za-z0-9_,-]+)(?:[ \t]+(.*))?$`)

// Directives returns every //tealint:<name> comment in the files, in
// file order. The checker validates them against the known-directive
// registry (unknowndirective); analyzers look up their own.
func Directives(files []*ast.File) []Directive {
	var out []Directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				out = append(out, Directive{Name: m[1], Args: strings.TrimSpace(m[2]), Pos: c.Pos()})
			}
		}
	}
	return out
}

// FuncDirective returns the named directive from a function's doc
// comment (e.g. //tealint:detsafe <justification> above the
// declaration), reporting whether one was present.
func FuncDirective(decl *ast.FuncDecl, name string) (Directive, bool) {
	if decl.Doc == nil {
		return Directive{}, false
	}
	for _, c := range decl.Doc.List {
		m := directiveRE.FindStringSubmatch(c.Text)
		if m != nil && m[1] == name {
			return Directive{Name: m[1], Args: strings.TrimSpace(m[2]), Pos: c.Pos()}, true
		}
	}
	return Directive{}, false
}

// FilterIgnored drops diagnostics suppressed by tealint:ignore
// directives in the package's files.
func FilterIgnored(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	byAnalyzer := map[string]map[string]map[int]bool{}
	kept := diags[:0]
	for _, d := range diags {
		ignored, ok := byAnalyzer[d.Category]
		if !ok {
			ignored = IgnoredLines(fset, files, d.Category)
			byAnalyzer[d.Category] = ignored
		}
		posn := fset.Position(d.Pos)
		if ignored[posn.Filename][posn.Line] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
