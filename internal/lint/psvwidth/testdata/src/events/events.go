// Package events is a miniature stand-in for repro/internal/events:
// the analyzers match the type/package names and the NumEvents
// constant, so the golden suites exercise them without importing the
// real simulator.
package events

// Event identifies one of the nine performance events.
type Event uint8

const (
	DRL1 Event = iota
	DRTLB
	DRSQ
	FLMB
	FLEX
	FLMO
	STL1
	STTLB
	STLLC

	NumEvents = 9
)

// PSV is a 9-bit performance signature vector.
type PSV uint16

// Set is a 9-bit event set mask.
type Set uint16
