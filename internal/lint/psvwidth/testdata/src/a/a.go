// Package a is the psvwidth golden suite.
package a

import "events"

var names [8]string // too short for an Event index
var full [9]string  // exactly NumEvents: fine
var wide [16]string // more than NumEvents: fine

// shifts past the top signature bit: flagged.
func badShift(p events.PSV) events.PSV {
	return p << 12 // want "shift by 12 on events.PSV exceeds the 9-bit signature width"
}

func badShiftAssign(p events.PSV) events.PSV {
	p <<= 9 // want "shift by 9 on events.PSV exceeds the 9-bit signature width"
	return p
}

// masks with bits above bit 8: flagged.
func badMask(p events.PSV) events.PSV {
	return p & 0x3FF // want "mask 0x3ff on events.PSV has bits above bit 8"
}

func badMaskAssign(s events.Set) events.Set {
	s |= 0x200 // want "mask 0x200 on events.Set has bits above bit 8"
	return s
}

func badMaskReversed(p events.PSV) events.PSV {
	return 0x1000 ^ p // want "mask 0x1000 on events.PSV has bits above bit 8"
}

// short array indexed by an Event: flagged.
func badIndex(e events.Event) string {
	return names[e] // want "array of length 8 indexed by events.Event"
}

func badIndexPtr(e events.Event, arr *[4]uint64) uint64 {
	return arr[e] // want "array of length 4 indexed by events.Event"
}

// in-width operations: not flagged.
func good(p events.PSV, e events.Event, s events.Set) (events.PSV, bool) {
	p = p | 1<<e      // dynamic bit-select, the idiomatic form
	p = p &^ (1 << e) // clear
	p = p & 0x1FF     // full in-width mask
	p = p | 1<<8      // top valid bit
	has := p&(1<<e) != 0
	p = p & events.PSV(s)
	return p, has
}

func goodIndex(e events.Event) (string, string) {
	return full[e], wide[e]
}

// slices carry no static bound; the analyzer stays quiet.
func goodSlice(e events.Event, xs []float64) float64 {
	return xs[e]
}

// ints are not Events; out-of-width masks on them are fine here.
func goodOtherType(x uint16) uint16 {
	return x & 0xFFF
}

// a suppressed violation: the directive must silence the report.
func suppressed(p events.PSV) events.PSV {
	return p & 0xFFF //tealint:ignore psvwidth deliberate overwide scratch mask
}
