package psvwidth_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/psvwidth"
)

func TestPSVWidth(t *testing.T) {
	analysistest.Run(t, ".", psvwidth.Analyzer, "a")
}
