// Package psvwidth defines a tealint analyzer that keeps PSV bit
// manipulation inside the 9-bit signature width.
//
// The Performance Signature Vector carries one bit per Table-1 event
// (NumEvents = 9) inside a uint16. A shift or mask constant that
// touches bits at or above NumEvents either aliases a nonexistent
// event or silently reads zero — both corrupt cycle-stack components
// without any runtime failure. The same applies to arrays indexed by
// events.Event that are shorter than NumEvents.
package psvwidth

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer flags PSV/Set bit operations that can escape the signature
// width, and Event-indexed arrays shorter than NumEvents.
var Analyzer = &analysis.Analyzer{
	Name: "psvwidth",
	Doc: "flag PSV shifts/masks beyond the 9-bit signature width and short Event-indexed arrays\n\n" +
		"PSV bits at or above NumEvents do not correspond to any Table-1 event.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkBinary(pass, n.Op, n.X, n.Y, n)
			case *ast.AssignStmt:
				checkAssignOp(pass, n)
			case *ast.IndexExpr:
				checkIndex(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// psvLikeType returns the named events.PSV or events.Set type behind
// t, or nil.
func psvLikeType(t types.Type) *types.Named {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "events" {
		return nil
	}
	if obj.Name() != "PSV" && obj.Name() != "Set" {
		return nil
	}
	return named
}

// eventTypeOf returns the named events.Event type behind t, or nil.
func eventTypeOf(t types.Type) *types.Named {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Name() != "Event" || obj.Pkg() == nil || obj.Pkg().Name() != "events" {
		return nil
	}
	return named
}

// numEvents returns the events package's NumEvents constant (the
// signature width), defaulting to 0 (disabled) when absent.
func numEvents(pkg *types.Package) int64 {
	c, ok := pkg.Scope().Lookup("NumEvents").(*types.Const)
	if !ok {
		return 0
	}
	v, exact := constant.Int64Val(constant.ToInt(c.Val()))
	if !exact {
		return 0
	}
	return v
}

func constIntValue(pass *analysis.Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(tv.Value))
}

func checkBinary(pass *analysis.Pass, op token.Token, x, y ast.Expr, at ast.Node) {
	switch op {
	case token.SHL:
		checkShift(pass, x, y, at)
	case token.AND, token.OR, token.XOR, token.AND_NOT:
		checkMask(pass, x, y, at)
	}
}

// checkAssignOp handles the op= forms (p |= 0x200, p <<= 10, ...).
func checkAssignOp(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	switch as.Tok {
	case token.SHL_ASSIGN:
		checkShift(pass, as.Lhs[0], as.Rhs[0], as)
	case token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
		checkMask(pass, as.Lhs[0], as.Rhs[0], as)
	}
}

// checkShift flags `v << k` when v is PSV/Set-typed and the constant
// shift k reaches past the top signature bit. (`1 << e` with a
// non-constant Event e is the idiomatic bit-select and is not
// checkable statically; the events package guards it by construction.)
func checkShift(pass *analysis.Pass, x, y ast.Expr, at ast.Node) {
	tv, ok := pass.TypesInfo.Types[x]
	if !ok {
		return
	}
	named := psvLikeType(tv.Type)
	if named == nil {
		return
	}
	width := numEvents(named.Obj().Pkg())
	if width == 0 {
		return
	}
	if k, ok := constIntValue(pass, y); ok && k >= width {
		pass.Reportf(at.Pos(),
			"shift by %d on events.%s exceeds the %d-bit signature width (bits 0..%d)",
			k, named.Obj().Name(), width, width-1)
	}
}

// checkMask flags bitwise ops between a PSV/Set-typed operand and a
// constant with bits at or above NumEvents.
func checkMask(pass *analysis.Pass, x, y ast.Expr, at ast.Node) {
	for _, pair := range [2][2]ast.Expr{{x, y}, {y, x}} {
		typed, lit := pair[0], pair[1]
		tv, ok := pass.TypesInfo.Types[typed]
		if !ok {
			continue
		}
		named := psvLikeType(tv.Type)
		if named == nil {
			continue
		}
		width := numEvents(named.Obj().Pkg())
		if width == 0 {
			continue
		}
		v, ok := constIntValue(pass, lit)
		if !ok {
			continue
		}
		if excess := v &^ ((1 << width) - 1); excess != 0 {
			pass.Reportf(at.Pos(),
				"mask %#x on events.%s has bits above bit %d (%#x); the signature width is %d bits",
				v, named.Obj().Name(), width-1, excess, width)
			return
		}
	}
}

// checkIndex flags arr[e] where e is an events.Event and arr is an
// array (or pointer to array) shorter than NumEvents.
func checkIndex(pass *analysis.Pass, ix *ast.IndexExpr) {
	itv, ok := pass.TypesInfo.Types[ix.Index]
	if !ok {
		return
	}
	named := eventTypeOf(itv.Type)
	if named == nil {
		return
	}
	width := numEvents(named.Obj().Pkg())
	if width == 0 {
		return
	}
	xtv, ok := pass.TypesInfo.Types[ix.X]
	if !ok {
		return
	}
	t := types.Unalias(xtv.Type).Underlying()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = types.Unalias(ptr.Elem()).Underlying()
	}
	arr, ok := t.(*types.Array)
	if !ok {
		return // slices and maps have no static bound to check
	}
	if arr.Len() < width {
		pass.Reportf(ix.Pos(),
			"array of length %d indexed by events.Event; it must hold NumEvents (%d) entries",
			arr.Len(), width)
	}
}
