package detreach_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/detreach"
)

// TestDetReach is the seeded regression for the whole-program taint
// mechanism: testdata/src/internal/trace.Replay reaches time.Now two
// call levels below the hot path, through a separate package — only
// the cross-package Taints facts can prove the chain.
func TestDetReach(t *testing.T) {
	analysistest.Run(t, ".", detreach.Analyzer, "internal/trace")
}
