// Package detreach defines a tealint analyzer proving, by whole-program
// taint reachability, that the capture/replay hot path cannot reach a
// nondeterminism source.
//
// TEA's headline claim is that profiles are time-proportional and
// *exact*: the equivalence suite diffs serialized profiles byte by
// byte, so a single call to time.Now, the process-global math/rand, an
// environment read, or an unordered map range anywhere under the hot
// path silently breaks the contract — and the per-function analyzers
// (detiter, randsource) only see the source itself, not the two-calls-
// away path that makes it reachable. detreach closes that gap: it
// builds a call graph per package (internal/lint/callgraph), marks
// functions that can reach a nondeterminism source, propagates the
// taint through cross-package Taints facts, and reports any *hot-path
// root* — an exported function or method of internal/core,
// internal/cpu, internal/trace, or internal/pics — whose taint chain
// is non-empty, with the full call path in the diagnostic.
//
// A function that must touch a nondeterminism source and provably does
// not let it perturb profiles can be marked as an audited barrier:
//
//	//tealint:detsafe <justification>
//
// on its declaration. The justification is mandatory; a bare detsafe
// is itself a diagnostic. Taint does not propagate through a barrier.
//
// Limits: dispatch through stored function values and reflection is
// invisible to the call graph, and taint is not traced through the
// standard library's own bodies — sources are recognized by name at
// the call site (the same set in standalone and vet modes).
package detreach

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/callgraph"
)

// Taints is the cross-package fact: the function can reach a
// nondeterminism source.
type Taints struct {
	// Source names the nondeterminism source ("time.Now", "map
	// iteration order", ...).
	Source string
	// Path is the call chain from the function (exclusive) down to
	// the source, shortest-first, capped for diagnostics.
	Path []string
}

// AFact marks Taints as a fact type.
func (*Taints) AFact() {}

const maxPath = 8

// Analyzer reports hot-path roots that can reach nondeterminism
// sources.
var Analyzer = &analysis.Analyzer{
	Name: "detreach",
	Doc: "forbid the capture/replay hot path from reaching nondeterminism sources (time.Now, global math/rand, os.Getenv, unordered map ranges)\n\n" +
		"Whole-program taint reachability over cross-package facts: a source two calls below core.Run*/trace.Replay* still flips golden profiles.",
	FactTypes: []analysis.Fact{new(Taints)},
	Run:       run,
}

// hotPackages are the package-path suffixes whose exported functions
// and methods form the hot-path roots: the cycle core, trace capture
// and replay, the TEA sampling unit, and PICS accumulation.
var hotPackages = []string{
	"internal/core",
	"internal/cpu",
	"internal/trace",
	"internal/pics",
}

// nondetFuncs maps fully-qualified stdlib functions to the source name
// reported for them.
var nondetFuncs = map[string]string{
	"time.Now":       "time.Now",
	"time.Since":     "time.Since",
	"time.Until":     "time.Until",
	"time.After":     "time.After",
	"time.Tick":      "time.Tick",
	"time.NewTicker": "time.NewTicker",
	"time.NewTimer":  "time.NewTimer",
	"os.Getenv":      "os.Getenv",
	"os.LookupEnv":   "os.LookupEnv",
	"os.Environ":     "os.Environ",
	"os.Hostname":    "os.Hostname",
	"os.Getpid":      "os.Getpid",
}

// randConstructors build explicit seeded sources and are deterministic
// given their arguments (mirrors the randsource analyzer's allowlist).
var randConstructors = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewSource":  true,
	"NewZipf":    true,
}

// sourceName classifies fn as a nondeterminism source, returning its
// reported name and true if it is one.
func sourceName(fn *types.Func) (string, bool) {
	if fn.Pkg() == nil {
		return "", false
	}
	path := fn.Pkg().Path()
	if name, ok := nondetFuncs[fn.FullName()]; ok {
		return name, true
	}
	if path == "crypto/rand" {
		return "crypto/rand." + fn.Name(), true
	}
	if path == "math/rand" || path == "math/rand/v2" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !randConstructors[fn.Name()] {
			return path + "." + fn.Name() + " (process-global source)", true
		}
	}
	return "", false
}

func hasSuffix(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}

func run(pass *analysis.Pass) (any, error) {
	pkgPath := analysis.PkgPath(pass.Pkg)
	// internal/xiter is the sanctioned sorted-iteration layer: its own
	// map ranges are what make everyone else's deterministic.
	inXiter := hasSuffix(pkgPath, "internal/xiter")

	graph := callgraph.Build(pass)

	// Audited barriers, and the mandatory-justification check.
	barrier := map[*types.Func]bool{}
	for _, fn := range graph.Funcs {
		node := graph.Nodes[fn]
		if d, ok := analysis.FuncDirective(node.Decl, "detsafe"); ok {
			if d.Args == "" {
				pass.Reportf(node.Decl.Name.Pos(), "detsafe directive on %s requires a justification: //tealint:detsafe <why this cannot perturb profiles>", fn.Name())
				continue
			}
			barrier[fn] = true
		}
	}

	// Local taint seeding: direct source calls/references and
	// unordered map ranges.
	tainted := map[*types.Func]*Taints{}
	for _, fn := range graph.Funcs {
		node := graph.Nodes[fn]
		if barrier[fn] || analysis.IsTestFile(pass.Fset, node.Decl.Pos()) {
			continue
		}
		for _, e := range node.Edges {
			if src, ok := sourceName(e.Callee); ok {
				tainted[fn] = &Taints{Source: src}
				break
			}
		}
		if tainted[fn] != nil || inXiter {
			continue
		}
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := types.Unalias(tv.Type).Underlying().(*types.Map); isMap {
				tainted[fn] = &Taints{Source: "map iteration order"}
				return false
			}
			return true
		})
	}

	// Propagate within the package to a fixed point, consuming
	// dependency facts at the frontier.
	for changed := true; changed; {
		changed = false
		for _, fn := range graph.Funcs {
			if tainted[fn] != nil || barrier[fn] {
				continue
			}
			node := graph.Nodes[fn]
			if analysis.IsTestFile(pass.Fset, node.Decl.Pos()) {
				continue
			}
			for _, e := range node.Edges {
				var via *Taints
				if t := tainted[e.Callee]; t != nil {
					via = t
				} else {
					var imported Taints
					if pass.ImportFact(e.Callee, &imported) {
						via = &imported
					}
				}
				if via == nil {
					continue
				}
				path := append([]string{e.Callee.FullName()}, via.Path...)
				if len(path) > maxPath {
					path = path[:maxPath]
				}
				tainted[fn] = &Taints{Source: via.Source, Path: path}
				changed = true
				break
			}
		}
	}

	for fn, t := range tainted {
		pass.ExportFact(fn, t)
	}

	// Hot-path roots: exported functions/methods of the hot packages.
	var hot bool
	for _, suffix := range hotPackages {
		if hasSuffix(pkgPath, suffix) {
			hot = true
			break
		}
	}
	if !hot {
		return nil, nil
	}
	for _, fn := range graph.Funcs {
		t := tainted[fn]
		if t == nil || !fn.Exported() {
			continue
		}
		node := graph.Nodes[fn]
		if analysis.IsTestFile(pass.Fset, node.Decl.Pos()) {
			continue
		}
		via := ""
		if len(t.Path) > 0 {
			via = " via " + strings.Join(t.Path, " -> ")
		}
		pass.Reportf(node.Decl.Name.Pos(),
			"hot-path function %s can reach nondeterminism source %s%s; profiles must be byte-identical across runs — remove the source or add an audited //tealint:detsafe <why> barrier",
			fn.Name(), t.Source, via)
	}
	return nil, nil
}
