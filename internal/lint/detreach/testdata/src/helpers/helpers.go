// Package helpers is a non-hot dependency: its taint is only
// observable through the cross-package Taints facts the analyzer
// exports while analyzing it.
package helpers

import (
	"math/rand/v2"
	"time"
)

// Step1 is one call level below the hot path; step2 is two. The
// nondeterminism source lives at the bottom.
func Step1() int64 { return step2() }

func step2() int64 { return time.Now().UnixNano() }

// Roll touches the process-global math/rand source.
func Roll() int { return rand.IntN(6) }

// Seeded builds an explicit seeded source — deterministic, not a
// taint.
func Seeded(seed uint64) int {
	r := rand.New(rand.NewPCG(seed, seed))
	return r.IntN(6)
}

// Stamp must read the clock (it feeds log lines, not profiles) and is
// an audited barrier.
//
//tealint:detsafe wall-clock feeds human-facing log lines only, never profile bytes
func Stamp() int64 { return time.Now().Unix() }
