// Package trace models a hot-path package (path suffix
// internal/trace): its exported functions are taint-reachability
// roots.
package trace

import (
	"os"

	"helpers"
)

// Replay reaches time.Now two call levels down, through a dependency
// package — only the imported Taints fact can prove it.
func Replay() int64 { // want "hot-path function Replay can reach nondeterminism source time.Now via helpers.Step1 -> helpers.step2"
	return helpers.Step1()
}

// Shuffle reaches the process-global rand source one package away.
func Shuffle() int { // want "hot-path function Shuffle can reach nondeterminism source math/rand/v2.IntN"
	return helpers.Roll()
}

// Capture reads the environment directly.
func Capture() string { // want "hot-path function Capture can reach nondeterminism source os.Getenv"
	return os.Getenv("TRACE_DIR")
}

// Verify ranges over a map without a deterministic iterator.
func Verify(seen map[uint64]bool) int { // want "hot-path function Verify can reach nondeterminism source map iteration order"
	n := 0
	for range seen {
		n++
	}
	return n
}

// ReplaySeeded uses only an explicitly seeded source: clean.
func ReplaySeeded(seed uint64) int {
	return helpers.Seeded(seed)
}

// Log calls through an audited detsafe barrier: clean.
func Log() int64 {
	return helpers.Stamp()
}

// helperReach is tainted but unexported — not a root, so the taint is
// recorded as a fact without a diagnostic here.
func helperReach() int64 { return helpers.Step1() }

// Indirect is a root reaching the source through the local unexported
// helper above.
func Indirect() int64 { // want "hot-path function Indirect can reach nondeterminism source time.Now via"
	return helperReach()
}

// BadBarrier has a detsafe directive with no justification.
//
//tealint:detsafe
func BadBarrier(m map[int]int) int { // want "detsafe directive on BadBarrier requires a justification" "BadBarrier can reach nondeterminism source map iteration order"
	for k := range m {
		return k
	}
	return 0
}
