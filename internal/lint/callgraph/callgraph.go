// Package callgraph builds a lightweight per-package call graph on top
// of the tealint loader's type information, for the whole-program
// analyzers (detreach's taint reachability, gojoin's join evidence).
//
// The graph is intentionally conservative and purely static:
//
//   - Direct calls (f(), pkg.F(), recv.M()) resolve to their callee's
//     *types.Func, including interface methods (resolved to the
//     abstract method object, not its implementations).
//   - A bare reference to a function that is not the operand of a call
//     (passing time.Now as a value, storing it in a struct) produces an
//     edge with IsRef set — the function may be called later, so taint
//     analyses must follow it.
//   - Calls inside function literals are attributed to the enclosing
//     declared function: a goroutine body's callees are edges of the
//     function that spawned it.
//
// Dynamic dispatch through stored function values and reflection is
// out of scope; the analyzers that consume the graph document this
// boundary.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Edge is one caller→callee relation.
type Edge struct {
	Callee *types.Func
	Pos    token.Pos
	// IsRef marks a non-call reference to the callee (function value
	// escaping); Go marks the callee as spawned with a go statement.
	IsRef bool
	Go    bool
}

// Node is one function declared in the analyzed package.
type Node struct {
	Fn    *types.Func
	Decl  *ast.FuncDecl
	Edges []Edge
}

// Graph holds the package's functions and their outgoing edges.
type Graph struct {
	// Nodes maps each declared function (and method) to its node, in
	// no particular order; Funcs gives deterministic iteration.
	Nodes map[*types.Func]*Node
	// Funcs lists the declared functions in file/position order.
	Funcs []*types.Func
}

// Build constructs the call graph for the pass's package.
func Build(pass *analysis.Pass) *Graph {
	g := &Graph{Nodes: map[*types.Func]*Node{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &Node{Fn: fn, Decl: fd}
			collectEdges(pass.TypesInfo, fd.Body, node)
			g.Nodes[fn] = node
			g.Funcs = append(g.Funcs, fn)
		}
	}
	return g
}

// collectEdges walks a function body recording call, go, and reference
// edges. Function literals are walked in place, so their calls belong
// to the enclosing declaration.
func collectEdges(info *types.Info, body ast.Node, node *Node) {
	// callIdents tracks identifiers consumed as direct call operands,
	// so the reference walk below does not double-count them; goCalls
	// marks call expressions spawned by a go statement (visited before
	// their CallExpr child).
	callIdents := map[*ast.Ident]bool{}
	goCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			goCalls[n.Call] = true
		case *ast.CallExpr:
			id := calleeIdent(n)
			if id == nil {
				return true
			}
			fn, ok := info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			callIdents[id] = true
			node.Edges = append(node.Edges, Edge{Callee: fn, Pos: n.Pos(), Go: goCalls[n]})
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || callIdents[id] {
			return true
		}
		if fn, ok := info.Uses[id].(*types.Func); ok {
			node.Edges = append(node.Edges, Edge{Callee: fn, Pos: id.Pos(), IsRef: true})
		}
		return true
	})
}

// calleeIdent returns the identifier naming a call's static callee
// (the selector's Sel for method/qualified calls), or nil for dynamic
// calls through computed function values.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	}
	return nil
}
