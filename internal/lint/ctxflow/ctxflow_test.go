package ctxflow_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, ".", ctxflow.Analyzer, "svc")
}
