// Package ctxflow defines a tealint analyzer enforcing context
// discipline, the service-readiness half of cancellation correctness.
//
// The experiment runners and the trace store take a context.Context so
// that a deadline or cancellation propagates into the replay loop
// (ErrCanceled is part of the simerr taxonomy). That chain is only as
// strong as its weakest link, so ctxflow enforces two invariants on
// every function that takes a context.Context parameter:
//
//  1. Thread it. Every call to a context-aware callee (one whose
//     signature takes a context.Context, or that a cross-package
//     CtxAware fact marks as such) must pass a context *derived from
//     the caller's own parameter* — the parameter itself, or a value
//     built from it via context.With*, a method on a derived value,
//     or an intermediate variable. Passing a fresh
//     context.Background() while holding a live ctx silently detaches
//     the callee from cancellation.
//
//  2. No fresh roots. context.Background() and context.TODO() are
//     confined to package main, test files, and functions marked
//
//     //tealint:ctxroot <justification>
//
//     which declares an audited root of a context tree (an entry point
//     with no caller context). The justification is mandatory.
//
// Each function with a context parameter exports the CtxAware fact, so
// dependent packages recognize context-aware callees even when only
// facts (not full type information) travel, and the analyzer behaves
// identically in standalone and vet modes.
package ctxflow

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// CtxAware is the cross-package fact: the function accepts a
// context.Context parameter and therefore participates in cancellation.
type CtxAware struct{}

// AFact marks CtxAware as a fact type.
func (*CtxAware) AFact() {}

// Analyzer enforces context threading and root confinement.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "require functions holding a context.Context to thread it to every context-aware callee; confine context.Background/TODO to main, tests, and //tealint:ctxroot roots\n\n" +
		"A fresh Background() inside the call chain detaches replay work from cancellation and deadlines.",
	FactTypes: []analysis.Fact{new(CtxAware)},
	Run:       run,
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ctxBackgroundOrTODO reports whether fn is context.Background or
// context.TODO.
func ctxBackgroundOrTODO(fn *types.Func) bool {
	return fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO")
}

// sigTakesContext reports whether any parameter of fn's signature is a
// context.Context.
func sigTakesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	isMain := pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if analysis.IsTestFile(pass.Fset, fd.Pos()) {
				// Tests are legitimate context roots and routinely build
				// throwaway contexts; both invariants are off here.
				continue
			}
			if sigTakesContext(fn) {
				pass.ExportFact(fn, &CtxAware{})
			}

			root := isMain
			if d, ok := analysis.FuncDirective(fd, "ctxroot"); ok {
				if d.Args == "" {
					pass.Reportf(fd.Name.Pos(), "ctxroot directive on %s requires a justification: //tealint:ctxroot <why this starts a fresh context tree>", fn.Name())
				} else {
					root = true
				}
			}
			checkFunc(pass, fd, root)
		}
	}
	return nil, nil
}

// checkFunc applies both invariants to one declared function: root
// confinement of Background/TODO, and — when the function holds
// context parameters — threading to context-aware callees.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, root bool) {
	// derived is the set of context-typed objects provably derived from
	// a context parameter: the parameters themselves (including those
	// of nested function literals, whose contexts arrive from *their*
	// callers), grown through assignments to a fixed point.
	derived := map[types.Object]bool{}
	addParams := func(ft *ast.FuncType) {
		if ft.Params == nil {
			return
		}
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj != nil && isContextType(obj.Type()) {
					derived[obj] = true
				}
			}
		}
	}
	addParams(fd.Type)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			addParams(lit.Type)
		}
		return true
	})
	hasCtxParam := len(derived) > 0

	var derivedExpr func(e ast.Expr) bool
	derivedExpr = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			return derived[pass.TypesInfo.Uses[e]]
		case *ast.CallExpr:
			if fn := calleeFunc(pass, e); fn != nil && ctxBackgroundOrTODO(fn) {
				return false
			}
			for _, arg := range e.Args {
				if derivedExpr(arg) {
					return true
				}
			}
			// A method on a derived value yields a derived context
			// (req.Context(), tree.Ctx()).
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
				return derivedExpr(sel.X)
			}
			return false
		}
		return false
	}

	// Grow the derived set through assignments until stable.
	for changed := true; changed; {
		changed = false
		mark := func(lhs ast.Expr, rhsDerived bool) {
			id, ok := lhs.(*ast.Ident)
			if !ok || !rhsDerived {
				return
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj != nil && isContextType(obj.Type()) && !derived[obj] {
				derived[obj] = true
				changed = true
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 {
					d := derivedExpr(n.Rhs[0])
					for _, lhs := range n.Lhs {
						mark(lhs, d)
					}
				} else {
					for i, lhs := range n.Lhs {
						if i < len(n.Rhs) {
							mark(lhs, derivedExpr(n.Rhs[i]))
						}
					}
				}
			case *ast.ValueSpec:
				if len(n.Values) == 1 {
					d := derivedExpr(n.Values[0])
					for _, name := range n.Names {
						mark(name, d)
					}
				} else {
					for i, name := range n.Names {
						if i < len(n.Values) {
							mark(name, derivedExpr(n.Values[i]))
						}
					}
				}
			}
			return true
		})
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass, call)
		if callee == nil {
			return true
		}
		if ctxBackgroundOrTODO(callee) {
			if !root {
				pass.Reportf(call.Pos(), "context.%s outside main, tests, or a //tealint:ctxroot root; thread the caller's context instead of starting a fresh tree", callee.Name())
			}
			return true
		}
		if !hasCtxParam {
			return true
		}
		// context.With* and friends are how derived contexts are built;
		// their own arguments are covered by derivedExpr and the
		// Background/TODO rule.
		if callee.Pkg() != nil && callee.Pkg().Path() == "context" {
			return true
		}
		aware := sigTakesContext(callee)
		if !aware {
			var fact CtxAware
			aware = pass.ImportFact(callee, &fact)
		}
		if !aware {
			return true
		}
		for _, arg := range call.Args {
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || !isContextType(tv.Type) {
				continue
			}
			if !derivedExpr(arg) {
				pass.Reportf(arg.Pos(), "call to %s does not thread %s's context: argument is not derived from the context parameter", callee.Name(), fd.Name.Name)
			}
		}
		return true
	})
}

// calleeFunc resolves a call's static callee, or nil.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
