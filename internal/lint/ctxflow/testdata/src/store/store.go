// Package store is a context-aware dependency: its Fetch exports the
// CtxAware fact consumed across the package boundary.
package store

import "context"

// Fetch blocks until the context is done or the key resolves.
func Fetch(ctx context.Context, key string) error {
	<-ctx.Done()
	_ = key
	return ctx.Err()
}
