// Package svc exercises the context-threading and root-confinement
// rules against a context-aware dependency.
package svc

import (
	"context"
	"time"

	"store"
)

// Handle threads its context straight through: clean.
func Handle(ctx context.Context, key string) error {
	return store.Fetch(ctx, key)
}

// WithDeadline derives a new context from its parameter: clean.
func WithDeadline(ctx context.Context, key string) error {
	c, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return store.Fetch(c, key)
}

// Detach holds a live context but hands the callee a fresh root.
func Detach(ctx context.Context, key string) error {
	return store.Fetch(context.Background(), key) // want "context.Background outside main, tests" "call to Fetch does not thread Detach's context"
}

// Fresh builds a root with no live context in scope.
func Fresh(key string) error {
	return store.Fetch(context.TODO(), key) // want "context.TODO outside main, tests"
}

// Root is an audited context root: Background is allowed here.
//
//tealint:ctxroot scheduler entry point; no caller context exists in its API
func Root(key string) error {
	return store.Fetch(context.Background(), key)
}

// BadRoot carries a ctxroot directive with no justification.
//
//tealint:ctxroot
func BadRoot(key string) error { // want "ctxroot directive on BadRoot requires a justification"
	return store.Fetch(context.Background(), key) // want "context.Background outside main, tests"
}

// Callback's nested literal receives its own context from whoever
// invokes it: clean.
func Callback(ctx context.Context, key string) func(context.Context) error {
	_ = store.Fetch(ctx, key)
	return func(inner context.Context) error {
		return store.Fetch(inner, key)
	}
}
