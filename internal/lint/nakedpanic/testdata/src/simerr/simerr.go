// Package simerr is the golden-suite stand-in for the real typed-error
// package: just enough surface for the nakedpanic analyzer to resolve
// *simerr.Error and its constructors.
package simerr

import "errors"

var ErrInternal = errors.New("internal invariant violated")

type Snapshot struct {
	Workload string
	Cycle    uint64
}

type Error struct {
	Kind error
	Snap Snapshot
	Msg  string
}

func (e *Error) Error() string { return e.Msg }

func New(kind error, snap Snapshot, msg string) *Error {
	return &Error{Kind: kind, Snap: snap, Msg: msg}
}
