// Package a is the nakedpanic golden suite.
package a

import (
	"fmt"

	"simerr"
)

// A bare string panic: flagged.
func bareString() {
	panic("something went wrong") // want "naked panic"
}

// A formatted string is still untyped: flagged.
func formatted(n int) {
	panic(fmt.Sprintf("bad value %d", n)) // want "naked panic"
}

// Re-panicking a plain error value is unclassified: flagged.
func plainError(err error) {
	if err != nil {
		panic(err) // want "naked panic"
	}
}

// panic() with no argument never happens in valid Go, but a weird
// arity must not crash the analyzer; zero or many args are flagged.
func values() {
	panic(42) // want "naked panic"
}

// The typed error, constructed inline: allowed.
func typedInline() {
	panic(simerr.New(simerr.ErrInternal, simerr.Snapshot{}, "rob overflow"))
}

// The typed error through a variable keeps its static type: allowed.
func typedVar(snap simerr.Snapshot) {
	e := simerr.New(simerr.ErrInternal, snap, "deadlock")
	panic(e)
}

// A function returning the typed pointer: allowed.
func failure() *simerr.Error { return nil }

func typedCall() {
	if f := failure(); f != nil {
		panic(f)
	}
}

// An audited invariant keeps its naked panic via the directive.
func audited(ok bool) {
	if !ok {
		//tealint:ignore nakedpanic golden-suite invariant; recovered at the boundary
		panic("invariant violated")
	}
}

// recover-based helpers do not confuse the analyzer.
func boundary() (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("recovered: %v", v)
		}
	}()
	return nil
}
