package nakedpanic_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/nakedpanic"
)

func TestNakedPanic(t *testing.T) {
	analysistest.Run(t, ".", nakedpanic.Analyzer, "a")
}
