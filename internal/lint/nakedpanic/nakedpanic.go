// Package nakedpanic defines a tealint analyzer that forbids calling
// panic with anything but a typed *simerr.Error in production code.
//
// The simulator's robustness contract is "fail loudly, never crash":
// every user-reachable failure surfaces as a typed error that the API
// boundary (simerr.Recover) can convert, carrying a diagnostic
// snapshot of where the simulation stood. A panic with a bare string
// or fmt.Sprintf value defeats that — it crosses RunProgramContext
// unclassified and reaches the user as a stack trace instead of an
// error. Genuine invariant violations (ROB overflow, assembler-DSL
// misuse) may keep panicking, but each site must say why with a
// tealint:ignore directive, which doubles as the audited allowlist.
// Test files are exempt.
package nakedpanic

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer flags panic calls whose argument is not a *simerr.Error.
var Analyzer = &analysis.Analyzer{
	Name: "nakedpanic",
	Doc: "forbid panic with non-typed values in production code\n\n" +
		"panic a *simerr.Error (simerr.New/Wrap) so API boundaries recover a classified,\n" +
		"snapshot-carrying error; suppress true invariant violations with tealint:ignore.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			// The builtin only — a shadowing function named panic is
			// someone else's problem.
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			if len(call.Args) == 1 && isSimErr(pass.TypesInfo.Types[call.Args[0]].Type) {
				return true
			}
			pass.Reportf(call.Pos(),
				"naked panic: crosses API boundaries unclassified — panic a *simerr.Error (simerr.New/Wrap) or add a tealint:ignore nakedpanic directive stating the invariant")
			return true
		})
	}
	return nil, nil
}

// isSimErr reports whether t is the typed error pointer *simerr.Error.
// It matches both the real package (path suffix internal/simerr) and
// the golden-suite stand-in (import path "simerr").
func isSimErr(t types.Type) bool {
	ptr, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(ptr.Elem()).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Error" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "simerr" || strings.HasSuffix(path, "internal/simerr")
}
