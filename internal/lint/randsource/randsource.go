// Package randsource defines a tealint analyzer that forbids the
// global math/rand (v1 or v2) functions in non-test code.
//
// The package-global random source is seeded per process, so two runs
// of the same trace diverge: sample-clock jitter drawn from it makes
// PICS unreproducible and golden comparisons meaningless. Production
// code must thread an explicitly seeded *rand.Rand (the sampler in
// internal/core records its seed in the profile for replay); only the
// constructors (rand.New, rand.NewPCG, ...) that build such sources
// are allowed at package level.
package randsource

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer flags calls to top-level math/rand[/v2] functions outside
// tests.
var Analyzer = &analysis.Analyzer{
	Name: "randsource",
	Doc: "forbid global math/rand[/v2] functions in non-test code; inject a seeded *rand.Rand\n\n" +
		"Samplers must be replay-reproducible: the jitter source is part of the experiment seed.",
	Run: run,
}

// allowedConstructors build explicit sources and are therefore fine to
// call from anywhere.
var allowedConstructors = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewSource":  true,
	"NewZipf":    true,
}

func randPackage(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var callee *ast.Ident
			switch fn := ast.Unparen(call.Fun).(type) {
			case *ast.SelectorExpr:
				callee = fn.Sel
			case *ast.Ident:
				callee = fn // dot-imported or aliased reference
			default:
				return true
			}
			obj, ok := pass.TypesInfo.Uses[callee].(*types.Func)
			if !ok || obj.Pkg() == nil || !randPackage(obj.Pkg().Path()) {
				return true
			}
			sig, ok := obj.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true // methods on an injected source are the goal
			}
			if allowedConstructors[obj.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"call to %s.%s uses the process-global random source; inject a seeded *rand.Rand (record the seed in the output) for replay-reproducible runs",
				obj.Pkg().Path(), obj.Name())
			return true
		})
	}
	return nil, nil
}
