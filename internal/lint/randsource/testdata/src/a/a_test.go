package a

import "math/rand/v2"

// Test files are exempt: fuzzing inputs may use the global source.
func randomInputForTest() int {
	return rand.IntN(1 << 16)
}
