// Package a is the randsource golden suite.
package a

import "math/rand/v2"

// top-level functions draw from the process-global source: flagged.
func badIntN() int {
	return rand.IntN(10) // want "call to math/rand/v2.IntN uses the process-global random source"
}

func badFloat() float64 {
	return rand.Float64() // want "call to math/rand/v2.Float64 uses the process-global random source"
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "call to math/rand/v2.Shuffle uses the process-global random source"
}

// an injected, explicitly seeded source is the sanctioned pattern:
// the constructors and the methods on the source are not flagged.
func good(seed uint64) int {
	rng := rand.New(rand.NewPCG(seed, 0x7EA))
	return rng.IntN(10)
}

func goodSource(seed uint64) uint64 {
	src := rand.NewChaCha8([32]byte{byte(seed)})
	return src.Uint64()
}

// a suppressed violation: the directive must silence the report.
func suppressed() int {
	return rand.IntN(3) //tealint:ignore randsource demo code, reproducibility not required
}
