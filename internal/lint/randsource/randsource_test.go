package randsource_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/randsource"
)

func TestRandSource(t *testing.T) {
	analysistest.Run(t, ".", randsource.Analyzer, "a")
}
