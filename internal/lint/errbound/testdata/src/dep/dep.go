// Package dep is a non-boundary dependency: it gets no diagnostics of
// its own, but its functions' typedness is exported as TypedErr facts
// for the boundary package to consume.
package dep

import (
	"errors"

	"simerr"
)

// Typed returns only typed errors and earns the TypedErr fact.
func Typed(fail bool) error {
	if fail {
		return simerr.New("dep failed")
	}
	return nil
}

// Foreign returns an untyped error; no fact is exported for it.
func Foreign() error {
	return errors.New("raw")
}
