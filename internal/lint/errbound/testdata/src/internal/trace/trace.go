// Package trace models a boundary package (path suffix
// internal/trace): every error its exported functions return must be
// typed.
package trace

import (
	"errors"
	"fmt"

	"dep"
	"simerr"
)

// Good returns a typed error directly: clean.
func Good(fail bool) error {
	if fail {
		return simerr.New("boom")
	}
	return nil
}

// FromDep returns a dependency's error proven typed by its
// cross-package TypedErr fact: clean.
func FromDep() error {
	return dep.Typed(true)
}

// Wrapped wraps a typed error with %w: clean.
func Wrapped() error {
	return fmt.Errorf("while replaying: %w", simerr.New("boom"))
}

// Joined joins typed errors: clean (errors.Is still reaches them).
func Joined() error {
	return errors.Join(simerr.New("a"), simerr.New("b"))
}

// PassThrough returns a caller-supplied error: the caller's origin was
// checked at its own boundary, so this is clean.
func PassThrough(err error) error {
	return err
}

// FromCallback returns an error produced by a caller-supplied
// function value: opaque origin, clean.
func FromCallback(fill func() error) error {
	return fill()
}

// Bad introduces a raw untyped error at the boundary.
func Bad() error {
	return errors.New("boom") // want "Bad introduces an untyped error"
}

// BadDep returns a dependency error with no typedness proof.
func BadDep() error {
	return dep.Foreign() // want "BadDep introduces an untyped error"
}

// NoVerb formats a typed error with %v, severing the chain.
func NoVerb() error {
	return fmt.Errorf("while replaying: %v", simerr.New("boom")) // want "NoVerb introduces an untyped error"
}

// Flow launders an untyped error through a local variable.
func Flow(fail bool) error {
	err := errors.New("boom")
	if !fail {
		err = nil
	}
	return err // want "Flow introduces an untyped error"
}

// helper is unexported: foreign, but not itself a boundary.
func helper() error {
	return errors.New("inner")
}

// UsesHelper surfaces the unexported helper's untyped error.
func UsesHelper() error {
	return helper() // want "UsesHelper introduces an untyped error"
}

// WrapForeign wraps a foreign error in a typed one: clean.
func WrapForeign() error {
	return simerr.Wrap(helper(), "decode")
}
