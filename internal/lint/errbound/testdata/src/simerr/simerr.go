// Package simerr models the repository's typed-error package (errbound
// recognizes it by path suffix).
package simerr

// Error is the typed error crossing internal boundaries.
type Error struct {
	Msg   string
	Cause error
}

func (e *Error) Error() string { return e.Msg }

// Unwrap exposes the cause chain.
func (e *Error) Unwrap() error { return e.Cause }

// New builds a typed error.
func New(msg string) *Error { return &Error{Msg: msg} }

// Wrap builds a typed error around a cause.
func Wrap(cause error, msg string) *Error { return &Error{Msg: msg, Cause: cause} }
