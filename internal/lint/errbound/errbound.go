// Package errbound defines a tealint analyzer enforcing the typed-error
// boundary: every error returned across an internal/* package boundary
// is a *simerr.Error or wraps one with %w.
//
// The simerr taxonomy (ErrRunaway, ErrDeadlock, ErrDecode, ...) is what
// lets callers switch on failure kind and what a service layer will map
// to response codes; an errors.New or a raw os error escaping an
// exported function of internal/{core,cpu,trace,analysis,tracestore,
// pics} punches a hole in that contract. For each exported function
// with an error result in those packages, the analyzer classifies every
// value the function can return:
//
//   - typed: nil, a *simerr.Error (statically or by construction via a
//     simerr call), fmt.Errorf whose format wraps a typed error with
//     %w, errors.Join of typed errors, or a call to a function proven —
//     locally or by a cross-package TypedErr fact — to return only
//     typed errors.
//   - foreign: errors.New, fmt.Errorf without %w (or wrapping a foreign
//     error), or a call to a function with no typedness proof (raw
//     standard-library errors land here).
//   - opaque: errors of unknowable origin — function-typed parameters
//     and stored callbacks, struct fields, type assertions. These are
//     accepted: the boundary rule is about errors the function itself
//     introduces, and the caller-supplied error was typed (or flagged)
//     at its own origin.
//
// Only foreign origins are diagnostics. Functions that provably
// introduce no foreign errors export the TypedErr fact, so the proof
// composes across packages exactly like detreach's taint.
package errbound

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// TypedErr is the cross-package fact: every error the function returns
// is typed (a *simerr.Error or a %w-wrap of one) or caller-supplied.
type TypedErr struct{}

// AFact marks TypedErr as a fact type.
func (*TypedErr) AFact() {}

// Analyzer reports untyped errors escaping internal package boundaries.
var Analyzer = &analysis.Analyzer{
	Name: "errbound",
	Doc: "require every error crossing an internal/* package boundary to be a typed *simerr.Error or wrap one with %w\n\n" +
		"The simerr taxonomy is the failure-kind contract; a raw errors.New escaping an exported function breaks callers that switch on kind.",
	FactTypes: []analysis.Fact{new(TypedErr)},
	Run:       run,
}

// boundaryPackages are the package-path suffixes whose exported
// functions form the typed-error boundary.
var boundaryPackages = []string{
	"internal/core",
	"internal/cpu",
	"internal/trace",
	"internal/analysis",
	"internal/tracestore",
	"internal/pics",
	"internal/serve",
	"internal/journal",
}

// verdict classifies one error origin.
type verdict int

const (
	typed   verdict = iota // proven *simerr.Error (or wraps one)
	opaque                 // caller-supplied or unknowable — accepted
	foreign                // provably introduces an untyped error
)

func run(pass *analysis.Pass) (any, error) {
	c := &classifier{
		pass:     pass,
		fnMemo:   map[*types.Func]verdict{},
		visiting: map[types.Object]bool{},
	}

	// Collect declared functions (skipping tests) and their decls.
	var fns []*types.Func
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || analysis.IsTestFile(pass.Fset, fd.Pos()) {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				fns = append(fns, fn)
				decls[fn] = fd
			}
		}
	}
	c.decls = decls

	// Export TypedErr for every function proven to introduce no
	// foreign errors, whatever the package — the proof is consumed at
	// boundary packages but produced everywhere.
	for _, fn := range fns {
		if !returnsError(fn) {
			continue
		}
		if c.funcVerdict(fn) != foreign {
			pass.ExportFact(fn, &TypedErr{})
		}
	}

	pkgPath := analysis.PkgPath(pass.Pkg)
	boundary := false
	for _, suffix := range boundaryPackages {
		if pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix) {
			boundary = true
			break
		}
	}
	if !boundary {
		return nil, nil
	}

	for _, fn := range fns {
		if !fn.Exported() || !returnsError(fn) {
			continue
		}
		for _, origin := range c.returnOrigins(decls[fn]) {
			if c.classifyExpr(origin, 0) != foreign {
				continue
			}
			pass.Reportf(origin.Pos(),
				"error returned across the %s boundary is not a typed *simerr.Error: %s introduces an untyped error here; wrap it with simerr.New/Wrap (or fmt.Errorf %%w around a typed error) so callers can switch on failure kind",
				pkgPath, fn.Name())
		}
	}
	return nil, nil
}

// returnsError reports whether fn's signature has an error (or
// *simerr.Error) result.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		t := results.At(i).Type()
		if isErrorType(t) || isSimerrPtr(t) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isSimerrPtr reports whether t is *simerr.Error (the simerr package is
// recognized by path suffix so testdata fixtures can model it).
func isSimerrPtr(t types.Type) bool {
	ptr, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(ptr.Elem()).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Error" && obj.Pkg() != nil && isSimerrPkg(obj.Pkg().Path())
}

func isSimerrPkg(path string) bool {
	return path == "simerr" || strings.HasSuffix(path, "/simerr")
}

// classifier resolves error origins to verdicts, memoizing function
// typedness with a cycle guard.
type classifier struct {
	pass     *analysis.Pass
	decls    map[*types.Func]*ast.FuncDecl
	fnMemo   map[*types.Func]verdict
	visiting map[types.Object]bool
}

const maxDepth = 12

// returnOrigins collects the error-typed expressions returned by the
// function itself (returns inside nested function literals belong to
// the literal, not the boundary function).
func (c *classifier) returnOrigins(fd *ast.FuncDecl) []ast.Expr {
	var origins []ast.Expr
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				tv, ok := c.pass.TypesInfo.Types[res]
				if ok && (isErrorType(tv.Type) || isSimerrPtr(tv.Type)) {
					origins = append(origins, res)
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
	// A bare `return` with named results returns the named error
	// variables; classify them as identifier origins.
	if fd.Type.Results != nil {
		var namedErrs []*ast.Ident
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				obj := c.pass.TypesInfo.Defs[name]
				if obj != nil && (isErrorType(obj.Type()) || isSimerrPtr(obj.Type())) {
					namedErrs = append(namedErrs, name)
				}
			}
		}
		if len(namedErrs) > 0 {
			bare := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if ret, ok := n.(*ast.ReturnStmt); ok && len(ret.Results) == 0 {
					bare = true
				}
				return !bare
			})
			if bare {
				for _, name := range namedErrs {
					origins = append(origins, name)
				}
			}
		}
	}
	return origins
}

// funcVerdict reports whether a locally declared function introduces
// foreign errors, memoized; cycles resolve optimistically to typed.
func (c *classifier) funcVerdict(fn *types.Func) verdict {
	if v, ok := c.fnMemo[fn]; ok {
		return v
	}
	fd := c.decls[fn]
	if fd == nil {
		return opaque
	}
	if c.visiting[fn] {
		return typed
	}
	c.visiting[fn] = true
	v := typed
	for _, origin := range c.returnOrigins(fd) {
		if c.classifyExpr(origin, 0) == foreign {
			v = foreign
			break
		}
	}
	delete(c.visiting, fn)
	c.fnMemo[fn] = v
	return v
}

// classifyExpr resolves one error-valued expression to a verdict.
func (c *classifier) classifyExpr(e ast.Expr, depth int) verdict {
	if depth > maxDepth {
		return opaque
	}
	e = ast.Unparen(e)
	tv, ok := c.pass.TypesInfo.Types[e]
	if ok {
		if tv.IsNil() || isSimerrPtr(tv.Type) {
			return typed
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = c.pass.TypesInfo.Defs[e]
		}
		if obj == nil {
			return opaque
		}
		return c.classifyObject(obj, depth)
	case *ast.CallExpr:
		return c.classifyCall(e, depth)
	case *ast.UnaryExpr, *ast.CompositeLit:
		// Anything not already matched by the static *simerr.Error type
		// check above is some other concrete error construction.
		return foreign
	}
	// Fields, type assertions, index expressions: unknowable origin.
	return opaque
}

// classifyObject resolves an error variable by the union of every
// expression assigned to it anywhere in its declaring function.
func (c *classifier) classifyObject(obj types.Object, depth int) verdict {
	v, ok := obj.(*types.Var)
	if !ok {
		return opaque
	}
	if c.visiting[obj] {
		return typed
	}
	// Parameters and results are caller-/callee-supplied.
	if fd := c.enclosingDecl(obj); fd != nil {
		if c.isParam(fd, obj) {
			return opaque
		}
		c.visiting[obj] = true
		defer delete(c.visiting, obj)
		worst := typed
		sawAssign := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			for _, rhs := range assignedExprs(c.pass, n, v) {
				sawAssign = true
				worst = verdictMax(worst, c.classifyExpr(rhs, depth+1))
			}
			return worst != foreign
		})
		if !sawAssign {
			return opaque
		}
		return worst
	}
	// Package-level error variables (sentinels) are opaque here; their
	// construction is flagged where they escape a boundary directly.
	return opaque
}

func verdictMax(a, b verdict) verdict {
	if a == foreign || b == foreign {
		return foreign
	}
	if a == opaque || b == opaque {
		return opaque
	}
	return typed
}

// assignedExprs returns the expressions assigned to v by node n.
func assignedExprs(pass *analysis.Pass, n ast.Node, v *types.Var) []ast.Expr {
	var out []ast.Expr
	collect := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == v {
			out = append(out, rhs)
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				collect(n.Lhs[i], n.Rhs[i])
			}
		} else if len(n.Rhs) == 1 {
			for _, lhs := range n.Lhs {
				collect(lhs, n.Rhs[0])
			}
		}
	case *ast.ValueSpec:
		if len(n.Names) == len(n.Values) {
			for i := range n.Names {
				collect(n.Names[i], n.Values[i])
			}
		} else if len(n.Values) == 1 {
			for _, name := range n.Names {
				collect(name, n.Values[0])
			}
		}
	}
	return out
}

// enclosingDecl finds the FuncDecl whose extent contains obj.
func (c *classifier) enclosingDecl(obj types.Object) *ast.FuncDecl {
	for _, fd := range c.decls {
		if fd.Pos() <= obj.Pos() && obj.Pos() <= fd.End() {
			return fd
		}
	}
	return nil
}

// isParam reports whether obj is a parameter, receiver, or named
// result of fd.
func (c *classifier) isParam(fd *ast.FuncDecl, obj types.Object) bool {
	fields := []*ast.FieldList{fd.Type.Params, fd.Type.Results, fd.Recv}
	for _, fl := range fields {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if c.pass.TypesInfo.Defs[name] == obj {
					// Named results are assignable locally; only treat
					// them as opaque when never assigned in the body.
					if fl == fd.Type.Results {
						return false
					}
					return true
				}
			}
		}
	}
	// Parameters of nested function literals are caller-supplied too.
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok || lit.Type.Params == nil {
			return true
		}
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				if c.pass.TypesInfo.Defs[name] == obj {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// classifyCall resolves a call-expression error origin.
func (c *classifier) classifyCall(call *ast.CallExpr, depth int) verdict {
	fn := calleeFunc(c.pass, call)
	if fn == nil {
		// Dynamic call through a function value (callback parameters,
		// stored closures): caller-supplied, accepted.
		return opaque
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return opaque
	}
	full := fn.FullName()
	switch {
	case isSimerrPkg(pkg.Path()):
		return typed
	case full == "fmt.Errorf":
		return c.classifyErrorf(call, depth)
	case full == "errors.Join":
		worst := typed
		for _, arg := range call.Args {
			worst = verdictMax(worst, c.classifyExpr(arg, depth+1))
		}
		if worst == foreign {
			return foreign
		}
		return worst
	case full == "errors.New":
		return foreign
	case full == "context.Cause":
		return opaque
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, isIface := types.Unalias(sig.Recv().Type()).Underlying().(*types.Interface); isIface {
			// Abstract method (err.Error(), iterator interfaces):
			// unknowable implementation.
			return opaque
		}
	}
	if v, ok := c.fnMemo[fn]; ok {
		return v
	}
	if c.decls[fn] != nil {
		return c.funcVerdict(fn)
	}
	var fact TypedErr
	if c.pass.ImportFact(fn, &fact) {
		return typed
	}
	// A callee with no typedness proof: the error it returns is
	// introduced here, untyped.
	return foreign
}

// classifyErrorf handles fmt.Errorf: with %w it is as typed as the
// errors it wraps; without %w it constructs a fresh untyped error.
func (c *classifier) classifyErrorf(call *ast.CallExpr, depth int) verdict {
	if len(call.Args) == 0 {
		return foreign
	}
	format := ""
	if tv, ok := c.pass.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil {
		format = constStringValue(tv)
	}
	if !strings.Contains(format, "%w") {
		return foreign
	}
	worst := typed
	for _, arg := range call.Args[1:] {
		tv, ok := c.pass.TypesInfo.Types[arg]
		if !ok || !isErrorType(tv.Type) && !isSimerrPtr(tv.Type) {
			continue
		}
		worst = verdictMax(worst, c.classifyExpr(arg, depth+1))
	}
	return worst
}

func constStringValue(tv types.TypeAndValue) string {
	if tv.Value == nil {
		return ""
	}
	s := tv.Value.ExactString()
	if len(s) >= 2 && s[0] == '"' {
		return s[1 : len(s)-1]
	}
	return s
}

// calleeFunc resolves a call's static callee, or nil.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
