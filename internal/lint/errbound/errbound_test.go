package errbound_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/errbound"
)

func TestErrBound(t *testing.T) {
	analysistest.Run(t, ".", errbound.Analyzer, "internal/trace")
}
