package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestPearsonPerfectPositive(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if r := Pearson(x, y); !almost(r, 1) {
		t.Errorf("r = %v, want 1", r)
	}
}

func TestPearsonPerfectNegative(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{8, 6, 4, 2}
	if r := Pearson(x, y); !almost(r, -1) {
		t.Errorf("r = %v, want -1", r)
	}
}

func TestPearsonNoVariance(t *testing.T) {
	if r := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); r != 0 {
		t.Errorf("constant x should give r=0, got %v", r)
	}
}

func TestPearsonDegenerateInputs(t *testing.T) {
	if Pearson(nil, nil) != 0 || Pearson([]float64{1}, []float64{2}) != 0 {
		t.Errorf("degenerate inputs should give 0")
	}
	if Pearson([]float64{1, 2}, []float64{1, 2, 3}) != 0 {
		t.Errorf("mismatched lengths should give 0")
	}
}

func TestPearsonBounded(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.IntN(100)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r := Pearson(x, y)
		if r < -1-1e-12 || r > 1+1e-12 {
			t.Fatalf("r = %v out of [-1,1]", r)
		}
	}
}

func TestPearsonScaleInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		n := 5 + rng.IntN(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64() * 100
			y[i] = x[i]*3 + rng.NormFloat64()
		}
		r1 := Pearson(x, y)
		xs := make([]float64, n)
		for i := range x {
			xs[i] = x[i]*10 + 5 // affine transform preserves r
		}
		r2 := Pearson(xs, y)
		return math.Abs(r1-r2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {75, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(xs, 62.5); !almost(got, 37.5) {
		t.Errorf("interpolated P62.5 = %v, want 37.5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestPercentileEmpty(t *testing.T) {
	if Percentile(nil, 50) != 0 {
		t.Errorf("empty percentile should be 0")
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		n := 1 + rng.IntN(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 1000
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{4, -2, 10, 0}
	if !almost(Mean(xs), 3) {
		t.Errorf("mean = %v", Mean(xs))
	}
	if Min(xs) != -2 || Max(xs) != 10 {
		t.Errorf("min/max = %v/%v", Min(xs), Max(xs))
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Errorf("empty aggregates should be 0")
	}
}

func TestBoxPlot(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	b := NewBoxPlot(xs)
	if b.Min != 1 || b.Max != 9 || !almost(b.Median, 5) || b.N != 9 {
		t.Errorf("box plot wrong: %+v", b)
	}
	if !almost(b.Q1, 3) || !almost(b.Q3, 7) {
		t.Errorf("quartiles wrong: %+v", b)
	}
	if !almost(b.IQR(), 4) {
		t.Errorf("IQR = %v, want 4", b.IQR())
	}
}

func TestBoxPlotOrdering(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		n := 1 + rng.IntN(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 50
		}
		b := NewBoxPlot(xs)
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
