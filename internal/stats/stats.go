// Package stats provides the statistical primitives the evaluation
// needs: Pearson correlation (Figure 7), percentiles (the Section 3
// unattributed-stall analysis), and box-plot summaries.
package stats

import (
	"math"
	"sort"
)

// Pearson returns the Pearson correlation coefficient r between x and y.
// It returns 0 if the slices differ in length, have fewer than two
// points, or either has zero variance (no correlation measurable).
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Percentile returns the p'th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// BoxPlot summarizes a sample for a box-and-whisker plot: minimum, first
// quartile, median, third quartile, and maximum.
type BoxPlot struct {
	Min, Q1, Median, Q3, Max float64
	N                        int
}

// NewBoxPlot computes the five-number summary of xs.
func NewBoxPlot(xs []float64) BoxPlot {
	return BoxPlot{
		Min:    Min(xs),
		Q1:     Percentile(xs, 25),
		Median: Percentile(xs, 50),
		Q3:     Percentile(xs, 75),
		Max:    Max(xs),
		N:      len(xs),
	}
}

// IQR returns the interquartile range of the summary.
func (b BoxPlot) IQR() float64 { return b.Q3 - b.Q1 }
