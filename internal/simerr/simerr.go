// Package simerr defines the simulator's typed error vocabulary.
//
// TEA's value is trustworthy attribution: a profiler that crashes or
// silently hangs on an adversarial input is worse than one that reports
// a diagnostic error. Every failure that can be provoked from user
// input — a runaway program, a corrupt trace, a stalled pipeline, an
// invalid configuration — surfaces as an *Error carrying one of the
// Err* kinds plus a Snapshot of where the simulation stood when it
// failed. Internal invariant violations may still panic (annotated
// with tealint:ignore nakedpanic directives and policed by the
// nakedpanic analyzer), but every public run API recovers them at the
// boundary and converts them to ErrInternal, so a library caller never
// sees a crash.
//
// Callers match kinds with errors.Is and extract diagnostics with
// errors.As:
//
//	var se *simerr.Error
//	if errors.As(err, &se) {
//		fmt.Println(se.Snap.Cycle, se.Snap.Detail)
//	}
//	if errors.Is(err, simerr.ErrRunaway) { ... }
//
// Errors built with Wrap also satisfy errors.Is against their cause,
// so a cancelled run matches both ErrCanceled and context.Canceled.
package simerr

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
)

// Error kinds. Each is a sentinel matched via errors.Is.
var (
	// ErrRunaway marks a simulation that exceeded its cycle or
	// instruction budget (e.g. a program that never halts).
	ErrRunaway = errors.New("runaway execution")
	// ErrDeadlock marks a pipeline that stopped making forward progress:
	// the commit-stage watchdog saw no instruction commit for a full
	// watchdog interval while the program had not finished.
	ErrDeadlock = errors.New("pipeline deadlock")
	// ErrDecode marks a trace stream that could not be decoded: bad
	// magic, truncation, implausible operands, or an integrity-digest
	// mismatch (corrupted or reordered records).
	ErrDecode = errors.New("trace decode failure")
	// ErrInvalidProgram marks a program the simulator cannot execute
	// (unimplemented opcode, unresolved label, unknown benchmark).
	ErrInvalidProgram = errors.New("invalid program")
	// ErrInvalidConfig marks an unusable configuration (non-power-of-two
	// cache sets, zero sampling interval, empty system).
	ErrInvalidConfig = errors.New("invalid configuration")
	// ErrCanceled marks a run stopped by context cancellation or
	// deadline; the wrapped cause is the context's error, so errors.Is
	// against context.Canceled / context.DeadlineExceeded also matches.
	ErrCanceled = errors.New("run canceled")
	// ErrIO marks a filesystem failure underneath a durability layer
	// (journal append, result-file write, recovery read): ENOSPC, EIO,
	// a vanished directory. Unlike ErrDecode — which means bytes were
	// read but are wrong — ErrIO means the bytes could not be moved at
	// all; the service reacts by degrading to memory-only operation,
	// never by serving wrong data.
	ErrIO = errors.New("disk I/O failure")
	// ErrInternal marks a recovered internal invariant violation — a
	// bug in the simulator, not in the input.
	ErrInternal = errors.New("internal invariant violation")
)

// Snapshot captures where the simulation stood when it failed. Fields
// that do not apply to a failure are zero.
type Snapshot struct {
	// Workload is the benchmark name, when the failure occurred inside
	// the experiment harness.
	Workload string
	// Program is the name of the program under execution.
	Program string
	// Cycle is the simulated cycle (or, for trace decoding, the last
	// decoded cycle).
	Cycle uint64
	// PC is the code address of the last committed instruction (or the
	// instruction implicated in the failure).
	PC uint64
	// Seq is the dynamic sequence number matching PC.
	Seq uint64
	// Technique names the profiling technique, for failures confined to
	// one replay consumer.
	Technique string
	// Detail is a free-form diagnostic dump: pipeline state for
	// watchdog trips, record offsets for decode failures, the stack for
	// recovered panics.
	Detail string
}

func (s Snapshot) String() string {
	var parts []string
	if s.Workload != "" {
		parts = append(parts, "workload "+s.Workload)
	}
	if s.Program != "" && s.Program != s.Workload {
		parts = append(parts, "program "+s.Program)
	}
	if s.Technique != "" {
		parts = append(parts, "technique "+s.Technique)
	}
	if s.Cycle != 0 {
		parts = append(parts, fmt.Sprintf("cycle %d", s.Cycle))
	}
	if s.PC != 0 {
		parts = append(parts, fmt.Sprintf("pc %#x", s.PC))
	}
	if s.Seq != 0 {
		parts = append(parts, fmt.Sprintf("seq %d", s.Seq))
	}
	return strings.Join(parts, ", ")
}

// Error is a typed simulator failure: a kind, a human-readable message,
// a diagnostic snapshot, and an optional wrapped cause.
type Error struct {
	// Kind is one of the Err* sentinels.
	Kind error
	// Snap locates the failure.
	Snap Snapshot
	// Msg is the specific failure description.
	Msg string
	// Cause is the underlying error, if any (returned by Unwrap).
	Cause error
}

// New builds a typed error.
func New(kind error, snap Snapshot, format string, args ...any) *Error {
	return &Error{Kind: kind, Snap: snap, Msg: fmt.Sprintf(format, args...)}
}

// Wrap builds a typed error around a cause; errors.Is matches both the
// kind and the cause chain.
func Wrap(kind error, snap Snapshot, cause error, format string, args ...any) *Error {
	return &Error{Kind: kind, Snap: snap, Msg: fmt.Sprintf(format, args...), Cause: cause}
}

// Error implements error.
func (e *Error) Error() string {
	var b strings.Builder
	b.WriteString(e.Kind.Error())
	if e.Msg != "" {
		b.WriteString(": ")
		b.WriteString(e.Msg)
	}
	if loc := e.Snap.String(); loc != "" {
		b.WriteString(" [")
		b.WriteString(loc)
		b.WriteString("]")
	}
	if e.Cause != nil {
		b.WriteString(": ")
		b.WriteString(e.Cause.Error())
	}
	return b.String()
}

// Is reports kind identity, so errors.Is(err, simerr.ErrRunaway) works
// without the kind being in the Unwrap chain.
func (e *Error) Is(target error) bool { return target == e.Kind }

// Unwrap exposes the cause chain to errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.Cause }

// FromPanic converts a recovered panic value into a typed error. A
// panicking *Error passes through (its snapshot is the more precise
// one); anything else becomes ErrInternal with the stack attached.
func FromPanic(v any, snap Snapshot) *Error {
	if se, ok := v.(*Error); ok {
		if se.Snap.Workload == "" {
			se.Snap.Workload = snap.Workload
		}
		if se.Snap.Technique == "" {
			se.Snap.Technique = snap.Technique
		}
		return se
	}
	if snap.Detail == "" {
		snap.Detail = string(debug.Stack())
	}
	if err, ok := v.(error); ok {
		return Wrap(ErrInternal, snap, err, "recovered panic")
	}
	return New(ErrInternal, snap, "recovered panic: %v", v)
}

// Recover converts an in-flight panic into a typed error stored in
// *errp. Use it deferred at public API boundaries:
//
//	func Run(...) (err error) {
//		defer simerr.Recover(&err, simerr.Snapshot{Workload: w.Name})
//		...
//	}
//
// A nil *errp slot is overwritten only when a panic actually occurred.
func Recover(errp *error, snap Snapshot) {
	if r := recover(); r != nil {
		*errp = FromPanic(r, snap)
	}
}
