package simerr

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestKindMatching(t *testing.T) {
	err := New(ErrRunaway, Snapshot{Program: "loop", Cycle: 42}, "exceeded %d cycles", 10)
	if !errors.Is(err, ErrRunaway) {
		t.Errorf("errors.Is(err, ErrRunaway) = false")
	}
	if errors.Is(err, ErrDeadlock) {
		t.Errorf("errors.Is(err, ErrDeadlock) = true for a runaway error")
	}
	var se *Error
	if !errors.As(err, &se) {
		t.Fatalf("errors.As(*Error) = false")
	}
	if se.Snap.Cycle != 42 || se.Snap.Program != "loop" {
		t.Errorf("snapshot = %+v", se.Snap)
	}
}

func TestWrapMatchesCause(t *testing.T) {
	cause := context.Canceled
	err := Wrap(ErrCanceled, Snapshot{}, cause, "run canceled")
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("kind not matched")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cause not matched through Unwrap")
	}
}

func TestWrappedThroughFmt(t *testing.T) {
	inner := New(ErrDecode, Snapshot{Cycle: 7}, "bad record")
	outer := fmt.Errorf("replaying group 2: %w", inner)
	if !errors.Is(outer, ErrDecode) {
		t.Errorf("kind lost through fmt.Errorf wrapping")
	}
	var se *Error
	if !errors.As(outer, &se) || se.Snap.Cycle != 7 {
		t.Errorf("snapshot lost through fmt.Errorf wrapping")
	}
}

func TestFromPanicPassthrough(t *testing.T) {
	orig := New(ErrDeadlock, Snapshot{Cycle: 9}, "stuck")
	got := FromPanic(orig, Snapshot{Workload: "mcf", Technique: "tea"})
	if got != orig {
		t.Errorf("typed panic did not pass through")
	}
	if got.Snap.Workload != "mcf" || got.Snap.Technique != "tea" {
		t.Errorf("snapshot context not filled in: %+v", got.Snap)
	}
}

func TestFromPanicInternal(t *testing.T) {
	got := FromPanic("rob overflow", Snapshot{Program: "x"})
	if !errors.Is(got, ErrInternal) {
		t.Errorf("untyped panic should map to ErrInternal, got %v", got)
	}
	if got.Snap.Detail == "" {
		t.Errorf("expected a stack trace in the snapshot detail")
	}
	if !strings.Contains(got.Error(), "rob overflow") {
		t.Errorf("panic value missing from message: %s", got.Error())
	}
}

func TestRecover(t *testing.T) {
	f := func() (err error) {
		defer Recover(&err, Snapshot{Workload: "w"})
		//tealint:ignore nakedpanic test exercises the boundary recovery itself
		panic(New(ErrRunaway, Snapshot{}, "boom"))
	}
	err := f()
	if !errors.Is(err, ErrRunaway) {
		t.Errorf("Recover lost the typed panic: %v", err)
	}
	ok := func() (err error) {
		defer Recover(&err, Snapshot{})
		return nil
	}
	if err := ok(); err != nil {
		t.Errorf("Recover fabricated an error: %v", err)
	}
}

func TestErrorString(t *testing.T) {
	err := New(ErrRunaway, Snapshot{Program: "loop", Cycle: 10, PC: 0x40}, "exceeded budget")
	s := err.Error()
	for _, want := range []string{"runaway", "exceeded budget", "program loop", "cycle 10", "0x40"} {
		if !strings.Contains(s, want) {
			t.Errorf("Error() = %q, missing %q", s, want)
		}
	}
}
