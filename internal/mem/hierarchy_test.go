package mem

import "testing"

func TestDRAMBandwidthSpacing(t *testing.T) {
	d := NewDRAM(DRAMConfig{Latency: 90, CyclesPerLine: 13})
	r1 := d.Read(100)
	r2 := d.Read(100)
	r3 := d.Read(100)
	if r1 != 190 {
		t.Errorf("first read done = %d, want 190", r1)
	}
	if r2 != 190+13 || r3 != 190+26 {
		t.Errorf("back-to-back reads not spaced by bandwidth: %d %d", r2, r3)
	}
	// A late request sees no queueing.
	if r := d.Read(10_000); r != 10_090 {
		t.Errorf("idle read done = %d, want 10090", r)
	}
}

func TestDRAMWritesConsumeBandwidth(t *testing.T) {
	d := NewDRAM(DRAMConfig{Latency: 90, CyclesPerLine: 13})
	d.Write(100)
	if got := d.Read(100); got != 113+90 {
		t.Errorf("read after write done = %d, want 203", got)
	}
	if d.Writes != 1 || d.Reads != 1 {
		t.Errorf("counters: writes=%d reads=%d", d.Writes, d.Reads)
	}
}

func TestDRAMQueueDelay(t *testing.T) {
	d := NewDRAM(DRAMConfig{Latency: 90, CyclesPerLine: 13})
	if d.QueueDelay(50) != 0 {
		t.Errorf("idle DRAM should have zero queue delay")
	}
	d.Read(100)
	if got := d.QueueDelay(100); got != 13 {
		t.Errorf("queue delay = %d, want 13", got)
	}
}

func TestHierarchyDataLatencyChain(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(cfg)
	addr := uint64(0x100000)

	// Cold access: L1 miss + LLC miss -> DRAM.
	miss, tdone := h.TranslateData(addr, 0)
	if !miss {
		t.Fatalf("cold D-TLB lookup should miss")
	}
	r := h.Data(addr, tdone, false)
	if !r.L1Miss || !r.LLCMiss {
		t.Fatalf("cold data access should miss L1 and LLC: %+v", r)
	}
	wantMin := tdone + cfg.L1D.HitLatency + cfg.LLC.HitLatency + cfg.DRAM.Latency
	if r.Done < wantMin {
		t.Errorf("cold access Done = %d, want >= %d", r.Done, wantMin)
	}

	// Warm access: L1 hit.
	miss, tdone = h.TranslateData(addr, 10_000)
	if miss {
		t.Fatalf("warm D-TLB lookup should hit")
	}
	r = h.Data(addr, tdone, false)
	if r.L1Miss || r.LLCMiss {
		t.Fatalf("warm access should hit L1: %+v", r)
	}
	if r.Done != tdone+cfg.L1D.HitLatency {
		t.Errorf("L1 hit Done = %d, want %d", r.Done, tdone+cfg.L1D.HitLatency)
	}
}

func TestHierarchyLLCHitAfterL1Evict(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(cfg)
	addr := uint64(0x200000)
	h.TranslateData(addr, 0)
	h.Data(addr, 0, false)

	// Evict addr from L1 by filling its set (8 ways + the line itself:
	// touch 8 conflicting lines), but keep it in the 16-way LLC.
	l1sets := uint64(cfg.L1D.Sets())
	for i := uint64(1); i <= 8; i++ {
		conflict := addr + i*l1sets*uint64(cfg.L1D.LineBytes)
		h.TranslateData(conflict, 100_000+i*1000)
		h.Data(conflict, 100_000+i*1000, false)
	}
	if h.Contains(addr) {
		t.Fatalf("line still in L1 after conflict sweep")
	}
	r := h.Data(addr, 500_000, false)
	if !r.L1Miss {
		t.Fatalf("expected L1 miss after eviction")
	}
	if r.LLCMiss {
		t.Fatalf("expected LLC hit for recently used line")
	}
	want := uint64(500_000) + cfg.L1D.HitLatency + cfg.LLC.HitLatency
	if r.Done != want {
		t.Errorf("LLC hit Done = %d, want %d", r.Done, want)
	}
}

func TestHierarchyFetchMissSetsFlags(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	r := h.Fetch(0x10000, 0)
	if !r.L1Miss || !r.LLCMiss || !r.TLBMiss {
		t.Fatalf("cold fetch should miss everywhere: %+v", r)
	}
	r = h.Fetch(0x10000, 100_000)
	if r.L1Miss || r.TLBMiss {
		t.Fatalf("warm fetch should hit: %+v", r)
	}
}

func TestHierarchyNextLinePrefetch(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(cfg)
	h.Fetch(0x10000, 0)
	// The next line should have been prefetched into the L1I.
	if !h.L1I().Lookup(0x10040) {
		t.Errorf("next line not prefetched")
	}
	// With the prefetcher disabled it should not be.
	cfg.NextLinePrefetch = false
	h2 := NewHierarchy(cfg)
	h2.Fetch(0x10000, 0)
	if h2.L1I().Lookup(0x10040) {
		t.Errorf("prefetch happened with prefetcher disabled")
	}
}

func TestHierarchyRejectedOnMSHRPressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1D.MSHRs = 2
	h := NewHierarchy(cfg)
	got := 0
	for i := 0; i < 4; i++ {
		addr := uint64(0x400000) + uint64(i)*0x10000
		h.TranslateData(addr, 5)
		r := h.Data(addr, 5, false)
		if r.Rejected {
			got++
		}
	}
	if got != 2 {
		t.Errorf("rejected %d of 4 concurrent misses with 2 MSHRs, want 2", got)
	}
}

func TestHierarchyStreamingIsBandwidthBound(t *testing.T) {
	cfg := DefaultConfig()
	h := NewHierarchy(cfg)
	// Stream 256 distinct lines, retrying MSHR rejections like a real
	// load/store unit; completion must be dominated by DRAM bandwidth
	// (CyclesPerLine apart), not a single access latency.
	var last, cycle uint64
	for i := 0; i < 256; i++ {
		addr := 0x1000000 + uint64(i)*64
		_, tdone := h.TranslateData(addr, cycle)
		r := h.Data(addr, tdone, false)
		for r.Rejected {
			tdone += cfg.DRAM.CyclesPerLine
			r = h.Data(addr, tdone, false)
		}
		if r.Done > last {
			last = r.Done
		}
		cycle++ // issue one access per cycle
	}
	minSpan := uint64(250) * cfg.DRAM.CyclesPerLine
	if last < minSpan {
		t.Errorf("stream finished at %d, want >= %d (bandwidth limit)", last, minSpan)
	}
}

func TestDefaultConfigMatchesTable2(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.L1I.SizeBytes != 32<<10 || cfg.L1I.Ways != 8 {
		t.Errorf("L1I config deviates from Table 2")
	}
	if cfg.L1D.SizeBytes != 32<<10 || cfg.L1D.Ways != 8 || cfg.L1D.MSHRs != 16 {
		t.Errorf("L1D config deviates from Table 2")
	}
	if cfg.LLC.SizeBytes != 2<<20 || cfg.LLC.Ways != 16 || cfg.LLC.MSHRs != 12 {
		t.Errorf("LLC config deviates from Table 2")
	}
	if cfg.ITLB.Entries != 32 || cfg.DTLB.Entries != 32 || cfg.Walker.L2.Entries != 1024 {
		t.Errorf("TLB config deviates from Table 2")
	}
	if !cfg.NextLinePrefetch {
		t.Errorf("Table 2 lists a next-line prefetcher")
	}
}
