package mem

import "testing"

func TestPrefetchLLCFillsLLCOnly(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	addr := uint64(0x300000)
	if !h.PrefetchLLC(addr, 0) {
		t.Fatalf("prefetch rejected with idle MSHRs")
	}
	if !h.LLC().Lookup(addr) {
		t.Errorf("prefetched line missing from LLC")
	}
	if h.L1D().Lookup(addr) {
		t.Errorf("prefetch polluted the L1D")
	}
	// A second prefetch of a resident line is a cheap no-op hit.
	accesses := h.LLC().Accesses
	if !h.PrefetchLLC(addr, 100) {
		t.Fatalf("prefetch of resident line rejected")
	}
	if h.LLC().Accesses != accesses {
		t.Errorf("resident prefetch consumed an LLC access")
	}
}

func TestPrefetchLLCRejectsWhenMSHRsFull(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LLC.MSHRs = 2
	h := NewHierarchy(cfg)
	if !h.PrefetchLLC(0x400000, 5) || !h.PrefetchLLC(0x410000, 5) {
		t.Fatalf("prefetches rejected with free MSHRs")
	}
	if h.PrefetchLLC(0x420000, 5) {
		t.Errorf("third concurrent prefetch accepted with 2 MSHRs")
	}
	// After fills complete, prefetches flow again.
	if !h.PrefetchLLC(0x420000, 100_000) {
		t.Errorf("prefetch rejected after fills completed")
	}
}

func TestHierarchyAccessors(t *testing.T) {
	h := NewHierarchy(DefaultConfig())
	if h.L1I() == nil || h.L1D() == nil || h.LLC() == nil ||
		h.ITLB() == nil || h.DTLB() == nil || h.Walker() == nil || h.DRAM() == nil {
		t.Fatalf("nil component accessor")
	}
	if h.Walker().L2() == nil {
		t.Fatalf("nil L2 TLB")
	}
	if h.ITLB().Config().Name != "ITLB" {
		t.Errorf("ITLB config name = %q", h.ITLB().Config().Name)
	}
}

func TestMissRateZeroOnIdleStructures(t *testing.T) {
	c := NewCache(DefaultConfig().L1D)
	if c.MissRate() != 0 {
		t.Errorf("idle cache miss rate = %v", c.MissRate())
	}
	tlb := NewTLB(DefaultConfig().DTLB)
	if tlb.MissRate() != 0 {
		t.Errorf("idle TLB miss rate = %v", tlb.MissRate())
	}
}

func TestFetchRetriesOnIMSHRPressure(t *testing.T) {
	// Exhaust the I-side MSHRs with parallel line fetches; the next
	// fetch must still produce a sane completion time via the retry
	// path rather than failing.
	cfg := DefaultConfig()
	cfg.L1I.MSHRs = 2
	cfg.NextLinePrefetch = false
	h := NewHierarchy(cfg)
	h.Fetch(0x10000, 5)
	h.Fetch(0x20000, 5)
	r := h.Fetch(0x30000, 5) // MSHRs full: retry path
	if r.Done <= 5 {
		t.Errorf("retried fetch completed instantly: %+v", r)
	}
	if !r.L1Miss {
		t.Errorf("retried fetch should report a miss")
	}
}
