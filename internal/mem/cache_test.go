package mem

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func smallCache() *Cache {
	return NewCache(CacheConfig{
		Name: "T", SizeBytes: 1024, Ways: 2, LineBytes: 64, MSHRs: 4, HitLatency: 3,
	})
}

// immediateFill returns a fill function with a fixed miss penalty.
func immediateFill(penalty uint64) func(block, cycle uint64) uint64 {
	return func(_, c uint64) uint64 { return c + penalty }
}

func TestCacheColdMissThenHit(t *testing.T) {
	c := smallCache()
	r, ok := c.Access(0x1000, 100, false, immediateFill(50))
	if !ok || !r.Miss {
		t.Fatalf("cold access should be a miss: %+v ok=%v", r, ok)
	}
	if r.Done != 100+3+50 {
		t.Errorf("miss Done = %d, want 153", r.Done)
	}
	// Re-access after the fill: hit at hit latency.
	r, ok = c.Access(0x1000, 200, false, immediateFill(50))
	if !ok || r.Miss {
		t.Fatalf("second access should hit: %+v", r)
	}
	if r.Done != 203 {
		t.Errorf("hit Done = %d, want 203", r.Done)
	}
}

func TestCacheSecondaryMissWaitsForFill(t *testing.T) {
	c := smallCache()
	r1, _ := c.Access(0x1000, 100, false, immediateFill(50))
	// Access the same line before the fill completes: must wait for it,
	// count as a miss, and not consume another MSHR.
	r2, ok := c.Access(0x1008, 110, false, immediateFill(50))
	if !ok || !r2.Miss {
		t.Fatalf("secondary access should be a merged miss: %+v", r2)
	}
	if r2.Done != r1.Done {
		t.Errorf("secondary miss Done = %d, want fill completion %d", r2.Done, r1.Done)
	}
	if got := c.activeMSHRs(110); got != 1 {
		t.Errorf("secondary miss allocated an MSHR: active=%d, want 1", got)
	}
}

func TestCacheSameLineDifferentOffsetsHit(t *testing.T) {
	c := smallCache()
	c.Access(0x2000, 0, false, immediateFill(10))
	r, ok := c.Access(0x203F, 100, false, immediateFill(10))
	if !ok || r.Miss {
		t.Errorf("same-line access should hit: %+v", r)
	}
}

func TestCacheMSHRExhaustion(t *testing.T) {
	c := smallCache() // 4 MSHRs
	for i := 0; i < 4; i++ {
		_, ok := c.Access(uint64(i)*0x10000, 10, false, immediateFill(500))
		if !ok {
			t.Fatalf("miss %d rejected with free MSHRs", i)
		}
	}
	if _, ok := c.Access(0x90000, 11, false, immediateFill(500)); ok {
		t.Fatalf("fifth concurrent miss should be rejected")
	}
	if c.MSHRFull != 1 {
		t.Errorf("MSHRFull = %d, want 1", c.MSHRFull)
	}
	// After fills complete, MSHRs recycle.
	if _, ok := c.Access(0x90000, 1000, false, immediateFill(500)); !ok {
		t.Fatalf("miss after fills completed should be accepted")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way cache: three blocks mapping to the same set evict the LRU.
	c := smallCache()
	sets := uint64(c.Config().Sets())
	line := uint64(c.Config().LineBytes)
	a0 := uint64(0)
	a1 := sets * line     // same set, different tag
	a2 := 2 * sets * line // same set, third tag
	c.Access(a0, 0, false, immediateFill(0))
	c.Access(a1, 1, false, immediateFill(0))
	c.Access(a0, 2, false, immediateFill(0)) // touch a0: a1 becomes LRU
	c.Access(a2, 3, false, immediateFill(0)) // evicts a1
	if !c.Lookup(a0) || !c.Lookup(a2) {
		t.Errorf("recently used lines were evicted")
	}
	if c.Lookup(a1) {
		t.Errorf("LRU line survived eviction")
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	c := smallCache()
	sets := uint64(c.Config().Sets())
	line := uint64(c.Config().LineBytes)
	c.Access(0, 0, true, immediateFill(0)) // dirty
	c.Access(sets*line, 1, false, immediateFill(0))
	r, _ := c.Access(2*sets*line, 2, false, immediateFill(0)) // evicts dirty block 0
	if !r.WritebackVictim {
		t.Errorf("eviction of dirty line should report a write-back")
	}
	r, _ = c.Access(3*sets*line, 1000, false, immediateFill(0)) // evicts clean line
	if r.WritebackVictim {
		t.Errorf("eviction of clean line should not report a write-back")
	}
}

func TestCacheMissRateSmallWorkingSet(t *testing.T) {
	c := smallCache()
	for pass := 0; pass < 10; pass++ {
		for a := uint64(0); a < 512; a += 64 {
			c.Access(a, uint64(pass*100), false, immediateFill(0))
		}
	}
	// 8 lines in a 1 KiB cache: only the first pass misses.
	if got := c.MissRate(); got > 0.11 {
		t.Errorf("miss rate = %v, want <= 0.1 for resident working set", got)
	}
}

func TestCacheHitNeverSlowerThanMiss(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		c := smallCache()
		cycle := uint64(0)
		for i := 0; i < 200; i++ {
			addr := uint64(rng.IntN(64)) * 64
			cycle += uint64(rng.IntN(80))
			r, ok := c.Access(addr, cycle, rng.IntN(2) == 0, immediateFill(uint64(rng.IntN(100))))
			if !ok {
				continue
			}
			if r.Done < cycle+c.Config().HitLatency {
				return false // data can never arrive before the hit latency
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCachePanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for non-power-of-two sets")
		}
	}()
	NewCache(CacheConfig{Name: "bad", SizeBytes: 96, Ways: 1, LineBytes: 32, MSHRs: 1, HitLatency: 1})
}

func TestBlockOf(t *testing.T) {
	c := smallCache()
	if c.BlockOf(0) != 0 || c.BlockOf(63) != 0 || c.BlockOf(64) != 1 || c.BlockOf(129) != 2 {
		t.Errorf("BlockOf wrong: %d %d %d %d",
			c.BlockOf(0), c.BlockOf(63), c.BlockOf(64), c.BlockOf(129))
	}
}
