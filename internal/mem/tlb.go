package mem

import "repro/internal/simerr"

// PageBits is log2 of the page size (4 KiB pages).
const PageBits = 12

// PageOf returns the virtual page number of an address.
func PageOf(addr uint64) uint64 { return addr >> PageBits }

// TLBConfig describes one TLB level.
type TLBConfig struct {
	Name    string
	Entries int
	// Ways is the associativity; 0 means fully associative.
	Ways int
	// HitLatency is the lookup cost in cycles (0 for L1 TLBs, whose
	// lookup overlaps the cache access).
	HitLatency uint64
}

type tlbEntry struct {
	page  uint64
	valid bool
	lru   uint64
}

// TLB is a translation lookaside buffer. Translation is identity-mapped
// (the simulator has no OS remapping), so a TLB only models the latency
// and reach of translation caching.
type TLB struct {
	cfg   TLBConfig
	sets  [][]tlbEntry
	ways  int
	stamp uint64

	Accesses uint64
	Misses   uint64
}

// NewTLB builds a TLB from its configuration.
func NewTLB(cfg TLBConfig) *TLB {
	ways := cfg.Ways
	if ways == 0 {
		ways = cfg.Entries // fully associative: one set
	}
	nsets := cfg.Entries / ways
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		// User-reachable through configuration; typed so run APIs
		// convert it to simerr.ErrInvalidConfig at the boundary.
		panic(simerr.New(simerr.ErrInvalidConfig, simerr.Snapshot{},
			"mem: TLB %q set count must be a positive power of two (entries %d, ways %d)",
			cfg.Name, cfg.Entries, ways))
	}
	t := &TLB{cfg: cfg, ways: ways, sets: make([][]tlbEntry, nsets)}
	for i := range t.sets {
		t.sets[i] = make([]tlbEntry, ways)
	}
	return t
}

// Config returns the TLB's configuration.
func (t *TLB) Config() TLBConfig { return t.cfg }

func (t *TLB) setOf(page uint64) []tlbEntry {
	return t.sets[page&uint64(len(t.sets)-1)]
}

// Lookup probes the TLB for the page containing addr, installing it on
// a miss, and reports whether the probe hit.
func (t *TLB) Lookup(addr uint64) bool {
	page := PageOf(addr)
	set := t.setOf(page)
	t.stamp++
	t.Accesses++
	for i := range set {
		if set[i].valid && set[i].page == page {
			set[i].lru = t.stamp
			return true
		}
	}
	t.Misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = tlbEntry{page: page, valid: true, lru: t.stamp}
	return false
}

// Contains reports whether the page of addr is cached, without
// disturbing LRU state or statistics.
func (t *TLB) Contains(addr uint64) bool {
	page := PageOf(addr)
	for _, e := range t.setOf(page) {
		if e.valid && e.page == page {
			return true
		}
	}
	return false
}

// MissRate returns the fraction of lookups that missed.
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}

// WalkerConfig describes the shared second-level TLB and page-table
// walker that service L1 TLB misses.
type WalkerConfig struct {
	L2 TLBConfig
	// WalkLatency is the cost of a full page-table walk on an L2 miss.
	WalkLatency uint64
}

// Walker models the shared L2 TLB + page-table walker. An L1 TLB miss
// costs the L2 hit latency if the L2 TLB holds the page, and a full
// walk otherwise.
type Walker struct {
	l2  *TLB
	cfg WalkerConfig

	Walks uint64
}

// NewWalker builds the walker.
func NewWalker(cfg WalkerConfig) *Walker {
	return &Walker{l2: NewTLB(cfg.L2), cfg: cfg}
}

// L2 exposes the second-level TLB (for statistics).
func (w *Walker) L2() *TLB { return w.l2 }

// Resolve services an L1 TLB miss for addr and returns its latency in
// cycles.
func (w *Walker) Resolve(addr uint64) uint64 {
	if w.l2.Lookup(addr) {
		return w.cfg.L2.HitLatency
	}
	w.Walks++
	return w.cfg.L2.HitLatency + w.cfg.WalkLatency
}
