package mem

import (
	"testing"
	"testing/quick"
)

func TestTLBMissThenHit(t *testing.T) {
	tlb := NewTLB(TLBConfig{Name: "T", Entries: 4, Ways: 0})
	if tlb.Lookup(0x1000) {
		t.Fatalf("cold lookup should miss")
	}
	if !tlb.Lookup(0x1FFF) {
		t.Fatalf("same-page lookup should hit")
	}
	if tlb.Lookup(0x2000) {
		t.Fatalf("next page should miss")
	}
	if tlb.Accesses != 3 || tlb.Misses != 2 {
		t.Errorf("accesses/misses = %d/%d, want 3/2", tlb.Accesses, tlb.Misses)
	}
}

func TestTLBFullyAssociativeLRU(t *testing.T) {
	tlb := NewTLB(TLBConfig{Name: "T", Entries: 2, Ways: 0})
	tlb.Lookup(0 << PageBits)
	tlb.Lookup(1 << PageBits)
	tlb.Lookup(0 << PageBits) // page 0 most recent
	tlb.Lookup(2 << PageBits) // evicts page 1
	if !tlb.Contains(0 << PageBits) {
		t.Errorf("page 0 evicted despite recent use")
	}
	if tlb.Contains(1 << PageBits) {
		t.Errorf("LRU page 1 survived")
	}
	if !tlb.Contains(2 << PageBits) {
		t.Errorf("page 2 missing")
	}
}

func TestTLBDirectMapped(t *testing.T) {
	tlb := NewTLB(TLBConfig{Name: "T", Entries: 4, Ways: 1})
	// Pages 0 and 4 conflict in a 4-set direct-mapped TLB.
	tlb.Lookup(0 << PageBits)
	tlb.Lookup(4 << PageBits)
	if tlb.Contains(0 << PageBits) {
		t.Errorf("conflicting page survived in direct-mapped TLB")
	}
	// Page 1 does not conflict.
	tlb.Lookup(1 << PageBits)
	if !tlb.Contains(4<<PageBits) || !tlb.Contains(1<<PageBits) {
		t.Errorf("non-conflicting pages evicted")
	}
}

func TestTLBContainsDoesNotDisturb(t *testing.T) {
	tlb := NewTLB(TLBConfig{Name: "T", Entries: 2, Ways: 0})
	tlb.Lookup(0 << PageBits)
	accesses := tlb.Accesses
	tlb.Contains(0 << PageBits)
	tlb.Contains(9 << PageBits)
	if tlb.Accesses != accesses {
		t.Errorf("Contains changed statistics")
	}
}

func TestTLBReach(t *testing.T) {
	f := func(raw uint16) bool {
		tlb := NewTLB(TLBConfig{Name: "T", Entries: 8, Ways: 0})
		// Touch 8 pages; all must be resident afterwards.
		base := uint64(raw) << PageBits
		for i := uint64(0); i < 8; i++ {
			tlb.Lookup(base + i<<PageBits)
		}
		for i := uint64(0); i < 8; i++ {
			if !tlb.Contains(base + i<<PageBits) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWalkerLatencies(t *testing.T) {
	w := NewWalker(WalkerConfig{
		L2:          TLBConfig{Name: "L2", Entries: 4, Ways: 1, HitLatency: 8},
		WalkLatency: 60,
	})
	// First resolve: L2 miss -> full walk.
	if got := w.Resolve(0x5000); got != 68 {
		t.Errorf("first resolve latency = %d, want 68", got)
	}
	if w.Walks != 1 {
		t.Errorf("walks = %d, want 1", w.Walks)
	}
	// Second resolve of the same page: L2 hit.
	if got := w.Resolve(0x5000); got != 8 {
		t.Errorf("second resolve latency = %d, want 8", got)
	}
	if w.Walks != 1 {
		t.Errorf("walks = %d after L2 hit, want 1", w.Walks)
	}
}

func TestPageOf(t *testing.T) {
	if PageOf(0) != 0 || PageOf(4095) != 0 || PageOf(4096) != 1 || PageOf(8192) != 2 {
		t.Errorf("PageOf wrong")
	}
}

func TestTLBMissRate(t *testing.T) {
	tlb := NewTLB(TLBConfig{Name: "T", Entries: 64, Ways: 0})
	for pass := 0; pass < 4; pass++ {
		for p := uint64(0); p < 16; p++ {
			tlb.Lookup(p << PageBits)
		}
	}
	// 16 pages fit in 64 entries: only the first pass misses.
	if got := tlb.MissRate(); got != 0.25 {
		t.Errorf("miss rate = %v, want 0.25", got)
	}
}
