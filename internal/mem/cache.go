// Package mem models the memory hierarchy of the simulated core:
// set-associative write-back caches with MSHRs, L1 instruction and data
// TLBs backed by a shared L2 TLB and a page-table-walker latency model,
// and a bandwidth-limited DRAM with FR-FCFS-style queueing delay. The
// configuration follows Table 2 of the paper.
package mem

import "repro/internal/simerr"

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name       string
	SizeBytes  int
	Ways       int
	LineBytes  int
	MSHRs      int    // maximum outstanding misses
	HitLatency uint64 // cycles from access to data on a hit
}

// Sets returns the number of sets implied by the configuration.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // last-use stamp; higher = more recent
}

type mshr struct {
	block uint64
	ready uint64 // cycle the fill completes
}

// Cache is one set-associative write-back, write-allocate cache with a
// finite number of MSHRs. Timing is resolved at access time: an access
// returns the cycle its data becomes available, and misses occupy an
// MSHR until their fill completes.
type Cache struct {
	cfg    CacheConfig
	sets   [][]line
	mshrs  []mshr
	stamp  uint64
	shift  uint // log2(LineBytes)
	setMsk uint64

	// Stats counters.
	Accesses uint64
	Misses   uint64
	MSHRFull uint64
	// FillLatencySum accumulates (Done - access cycle) over primary
	// misses, for average-fill-latency statistics.
	FillLatencySum uint64
	PrimaryMisses  uint64
}

// NewCache builds a cache from its configuration.
func NewCache(cfg CacheConfig) *Cache {
	sets := cfg.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		// User-reachable through configuration; typed so run APIs
		// convert it to simerr.ErrInvalidConfig at the boundary.
		panic(simerr.New(simerr.ErrInvalidConfig, simerr.Snapshot{},
			"mem: cache %q set count must be a positive power of two (size %d, ways %d, line %d)",
			cfg.Name, cfg.SizeBytes, cfg.Ways, cfg.LineBytes))
	}
	c := &Cache{cfg: cfg, sets: make([][]line, sets), setMsk: uint64(sets - 1)}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	for b := cfg.LineBytes; b > 1; b >>= 1 {
		c.shift++
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// BlockOf returns the block (line) address of a byte address.
func (c *Cache) BlockOf(addr uint64) uint64 { return addr >> c.shift }

func (c *Cache) setOf(block uint64) []line { return c.sets[block&c.setMsk] }
func (c *Cache) tagOf(block uint64) uint64 { return block >> uint(popShift(c.setMsk)) }

func popShift(mask uint64) int {
	n := 0
	for mask != 0 {
		n++
		mask >>= 1
	}
	return n
}

// Lookup reports whether the block is present without touching LRU
// state or statistics (used by tests and the software-prefetch probe).
func (c *Cache) Lookup(addr uint64) bool {
	block := c.BlockOf(addr)
	set := c.setOf(block)
	tag := c.tagOf(block)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// activeMSHRs counts fills still outstanding at the given cycle and
// recycles completed entries.
func (c *Cache) activeMSHRs(cycle uint64) int {
	n := 0
	for i := 0; i < len(c.mshrs); {
		if c.mshrs[i].ready > cycle {
			n++
			i++
		} else {
			c.mshrs[i] = c.mshrs[len(c.mshrs)-1]
			c.mshrs = c.mshrs[:len(c.mshrs)-1]
		}
	}
	return n
}

// pendingFill returns the ready cycle of an outstanding fill of block,
// if any (a secondary miss merges with it).
func (c *Cache) pendingFill(block uint64) (uint64, bool) {
	for _, m := range c.mshrs {
		if m.block == block {
			return m.ready, true
		}
	}
	return 0, false
}

// AccessResult describes the outcome of a cache access.
type AccessResult struct {
	// Done is the cycle the data is available to the requester.
	Done uint64
	// Miss reports whether the access missed in this cache.
	Miss bool
	// WritebackVictim reports whether a dirty line was evicted.
	WritebackVictim bool
}

// Access performs a read or write-allocate access to the block holding
// addr at the given cycle. fill is invoked on a (primary) miss and must
// return the cycle the next level delivers the line. Access returns
// ok=false without side effects if the miss cannot allocate an MSHR;
// the caller must retry later.
func (c *Cache) Access(addr, cycle uint64, write bool, fill func(block, cycle uint64) uint64) (AccessResult, bool) {
	block := c.BlockOf(addr)
	set := c.setOf(block)
	tag := c.tagOf(block)
	c.stamp++

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.Accesses++
			set[i].lru = c.stamp
			if write {
				set[i].dirty = true
			}
			// The line is installed when its fill is initiated, so a
			// tag hit may be a secondary miss on an in-flight fill: the
			// data is not available before the fill completes.
			if ready, pending := c.pendingFill(block); pending && ready > cycle+c.cfg.HitLatency {
				c.Misses++
				return AccessResult{Done: ready, Miss: true}, true
			}
			return AccessResult{Done: cycle + c.cfg.HitLatency}, true
		}
	}

	// Tag miss. If the block was evicted while its fill is still in
	// flight, merge with the outstanding fill instead of allocating a
	// fresh MSHR.
	if ready, merged := c.pendingFill(block); merged {
		c.Accesses++
		c.Misses++
		c.install(block, write)
		return AccessResult{Done: maxU64(ready, cycle+c.cfg.HitLatency), Miss: true}, true
	}

	if c.activeMSHRs(cycle) >= c.cfg.MSHRs {
		c.MSHRFull++
		return AccessResult{}, false
	}

	c.Accesses++
	c.Misses++
	ready := fill(block, cycle+c.cfg.HitLatency)
	c.PrimaryMisses++
	c.FillLatencySum += ready - cycle
	c.mshrs = append(c.mshrs, mshr{block: block, ready: ready})
	victimDirty := c.install(block, write)
	return AccessResult{Done: ready, Miss: true, WritebackVictim: victimDirty}, true
}

// install places the block in its set, evicting the LRU way, and
// reports whether the victim was dirty (needs write-back).
func (c *Cache) install(block uint64, write bool) bool {
	set := c.setOf(block)
	tag := c.tagOf(block)
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	dirty := set[victim].valid && set[victim].dirty
	set[victim] = line{tag: tag, valid: true, dirty: write, lru: c.stamp}
	return dirty
}

// MissRate returns the fraction of accesses that missed.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
