package mem

import (
	"math/rand/v2"
	"testing"
)

// refCache is an oracle: a straightforward fully-explicit model of a
// set-associative LRU cache with no timing, used to cross-check the
// production Cache's hit/miss decisions under random access streams.
type refCache struct {
	sets      int
	ways      int
	lineBytes uint64
	lines     [][]uint64 // per set, tags in LRU order (front = MRU)
}

func newRefCache(cfg CacheConfig) *refCache {
	return &refCache{
		sets:      cfg.Sets(),
		ways:      cfg.Ways,
		lineBytes: uint64(cfg.LineBytes),
		lines:     make([][]uint64, cfg.Sets()),
	}
}

func (r *refCache) access(addr uint64) bool {
	block := addr / r.lineBytes
	set := int(block % uint64(r.sets))
	tag := block / uint64(r.sets)
	ln := r.lines[set]
	for i, t := range ln {
		if t == tag {
			// Move to front (MRU).
			copy(ln[1:i+1], ln[:i])
			ln[0] = tag
			return true
		}
	}
	// Miss: insert at front, evict LRU if full.
	if len(ln) == r.ways {
		ln = ln[:r.ways-1]
	}
	r.lines[set] = append([]uint64{tag}, ln...)
	return false
}

// TestCacheMatchesLRUOracle drives the production cache and the oracle
// with identical random streams; the hit/miss decision must agree on
// every access (timing-independent accesses: each access at a cycle
// far after the previous, so in-flight-fill effects don't apply).
func TestCacheMatchesLRUOracle(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		cfg := CacheConfig{
			Name: "O", SizeBytes: 4096, Ways: 1 << (trial % 3), LineBytes: 64,
			MSHRs: 64, HitLatency: 1,
		}
		c := NewCache(cfg)
		ref := newRefCache(cfg)
		rng := rand.New(rand.NewPCG(uint64(trial), 101))
		cycle := uint64(0)
		for i := 0; i < 3000; i++ {
			addr := uint64(rng.IntN(256)) * 32 // 128 lines: 2x capacity
			cycle += 1000                      // far apart: fills always complete
			res, ok := c.Access(addr, cycle, false, func(_, cy uint64) uint64 { return cy + 10 })
			if !ok {
				t.Fatalf("trial %d: unexpected MSHR rejection", trial)
			}
			wantHit := ref.access(addr)
			if res.Miss == wantHit {
				t.Fatalf("trial %d access %d (addr %#x): cache miss=%v, oracle hit=%v",
					trial, i, addr, res.Miss, wantHit)
			}
		}
	}
}

// TestTLBMatchesLRUOracle does the same for the fully-associative TLB.
func TestTLBMatchesLRUOracle(t *testing.T) {
	cfg := TLBConfig{Name: "O", Entries: 8, Ways: 0}
	tlb := NewTLB(cfg)
	ref := newRefCache(CacheConfig{SizeBytes: 8 << PageBits, Ways: 8, LineBytes: 1 << PageBits})
	rng := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 5000; i++ {
		addr := uint64(rng.IntN(24)) << PageBits
		got := tlb.Lookup(addr)
		want := ref.access(addr)
		if got != want {
			t.Fatalf("access %d (page %d): TLB hit=%v, oracle hit=%v", i, addr>>PageBits, got, want)
		}
	}
}
