package mem

// DRAMConfig models main memory: a fixed access latency plus a
// bandwidth limit expressed as the minimum cycle spacing between line
// transfers (FR-FCFS queueing collapses to a service-rate model).
type DRAMConfig struct {
	// Latency is the cycles from request to first data.
	Latency uint64
	// CyclesPerLine is the minimum spacing between line transfers,
	// modeling peak bandwidth (e.g. 64-byte lines at 16 GB/s on a
	// 3.2 GHz core is one line every ~12.8 cycles).
	CyclesPerLine uint64
}

// DRAM is the bandwidth-limited memory device.
type DRAM struct {
	cfg      DRAMConfig
	nextSlot uint64

	Reads  uint64
	Writes uint64
}

// NewDRAM builds the DRAM model.
func NewDRAM(cfg DRAMConfig) *DRAM {
	return &DRAM{cfg: cfg}
}

// Read returns the cycle a line read requested at cycle completes.
func (d *DRAM) Read(cycle uint64) uint64 {
	d.Reads++
	start := maxU64(cycle, d.nextSlot)
	d.nextSlot = start + d.cfg.CyclesPerLine
	return start + d.cfg.Latency
}

// Write consumes a bandwidth slot for a line write-back (completion is
// fire-and-forget for the core).
func (d *DRAM) Write(cycle uint64) {
	d.Writes++
	start := maxU64(cycle, d.nextSlot)
	d.nextSlot = start + d.cfg.CyclesPerLine
}

// QueueDelay reports how far the DRAM is booked past the given cycle —
// the queueing delay a new request would see before its latency.
func (d *DRAM) QueueDelay(cycle uint64) uint64 {
	if d.nextSlot <= cycle {
		return 0
	}
	return d.nextSlot - cycle
}

// Config holds the full memory-hierarchy configuration.
type Config struct {
	L1I, L1D, LLC CacheConfig
	ITLB, DTLB    TLBConfig
	Walker        WalkerConfig
	DRAM          DRAMConfig
	// NextLinePrefetch enables the L1I next-line prefetcher of Table 2.
	NextLinePrefetch bool
}

// DefaultConfig returns the Table 2 memory system: 32 KB 8-way L1I/L1D
// with 16 MSHRs, a 2 MiB 16-way LLC with 12 MSHRs, 32-entry fully
// associative L1 TLBs, a 1024-entry direct-mapped L2 TLB, and 16 GB/s
// DDR3-style memory.
func DefaultConfig() Config {
	return Config{
		L1I:  CacheConfig{Name: "L1I", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, MSHRs: 8, HitLatency: 1},
		L1D:  CacheConfig{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, MSHRs: 16, HitLatency: 3},
		LLC:  CacheConfig{Name: "LLC", SizeBytes: 2 << 20, Ways: 16, LineBytes: 64, MSHRs: 12, HitLatency: 21},
		ITLB: TLBConfig{Name: "ITLB", Entries: 32, Ways: 0, HitLatency: 0},
		DTLB: TLBConfig{Name: "DTLB", Entries: 32, Ways: 0, HitLatency: 0},
		Walker: WalkerConfig{
			L2:          TLBConfig{Name: "L2TLB", Entries: 1024, Ways: 1, HitLatency: 8},
			WalkLatency: 60,
		},
		DRAM:             DRAMConfig{Latency: 90, CyclesPerLine: 13},
		NextLinePrefetch: true,
	}
}

// Hierarchy wires the caches, TLBs, and DRAM together and resolves the
// timing of instruction fetches, data accesses, and store drains.
type Hierarchy struct {
	cfg  Config
	l1i  *Cache
	l1d  *Cache
	llc  *Cache
	itlb *TLB
	dtlb *TLB
	walk *Walker
	dram *DRAM
}

// NewHierarchy builds the memory system.
func NewHierarchy(cfg Config) *Hierarchy {
	return NewHierarchyShared(cfg, NewCache(cfg.LLC), NewDRAM(cfg.DRAM))
}

// NewHierarchyShared builds one core's memory system — private L1
// caches and TLBs — on top of a shared last-level cache and DRAM.
// Multi-core systems give every core its own Hierarchy built over the
// same llc and dram, so cores contend for LLC capacity, LLC MSHRs, and
// memory bandwidth (the paper requires one TEA unit per physical core;
// the memory system below the L1s is shared).
func NewHierarchyShared(cfg Config, llc *Cache, dram *DRAM) *Hierarchy {
	return &Hierarchy{
		cfg:  cfg,
		l1i:  NewCache(cfg.L1I),
		l1d:  NewCache(cfg.L1D),
		llc:  llc,
		itlb: NewTLB(cfg.ITLB),
		dtlb: NewTLB(cfg.DTLB),
		walk: NewWalker(cfg.Walker),
		dram: dram,
	}
}

// Accessors for statistics and tests.
func (h *Hierarchy) L1I() *Cache     { return h.l1i }
func (h *Hierarchy) L1D() *Cache     { return h.l1d }
func (h *Hierarchy) LLC() *Cache     { return h.llc }
func (h *Hierarchy) ITLB() *TLB      { return h.itlb }
func (h *Hierarchy) DTLB() *TLB      { return h.dtlb }
func (h *Hierarchy) Walker() *Walker { return h.walk }
func (h *Hierarchy) DRAM() *DRAM     { return h.dram }

// llcFill services an L1 miss: access the LLC, going to DRAM on an LLC
// miss. It returns the cycle the line reaches the L1 and whether the
// LLC missed.
func (h *Hierarchy) llcFill(addrOfBlock func(uint64) uint64, block, cycle uint64) (uint64, bool) {
	// Reconstruct a byte address within the block for LLC indexing.
	addr := addrOfBlock(block)
	res, ok := h.llc.Access(addr, cycle, false, func(_, c uint64) uint64 {
		return h.dram.Read(c)
	})
	if !ok {
		// LLC MSHRs exhausted: the request waits for a free MSHR. Model
		// the backpressure as the DRAM queue delay plus a retry window.
		retry := cycle + h.cfg.DRAM.CyclesPerLine + h.dram.QueueDelay(cycle)
		res, ok = h.llc.Access(addr, retry, false, func(_, c uint64) uint64 {
			return h.dram.Read(c)
		})
		if !ok {
			// Still full: serialize behind the newest outstanding fill.
			return h.dram.Read(retry), true
		}
		if res.WritebackVictim {
			h.dram.Write(cycle)
		}
		return res.Done, res.Miss
	}
	if res.WritebackVictim {
		h.dram.Write(cycle)
	}
	return res.Done, res.Miss
}

// FetchResult describes an instruction-fetch access.
type FetchResult struct {
	Done    uint64
	L1Miss  bool
	LLCMiss bool
	TLBMiss bool
}

// Fetch performs an instruction fetch of the line holding pc at cycle.
func (h *Hierarchy) Fetch(pc, cycle uint64) FetchResult {
	var r FetchResult
	start := cycle
	if !h.itlb.Lookup(pc) {
		r.TLBMiss = true
		start += h.walk.Resolve(pc)
	}
	res, ok := h.l1i.Access(pc, start, false, func(block, c uint64) uint64 {
		done, llcMiss := h.llcFill(h.blockAddrI, block, c)
		if llcMiss {
			r.LLCMiss = true
		}
		return done
	})
	if !ok {
		// I-side MSHRs exhausted; retry after a line interval.
		res, ok = h.l1i.Access(pc, start+h.cfg.DRAM.CyclesPerLine, false, func(block, c uint64) uint64 {
			done, llcMiss := h.llcFill(h.blockAddrI, block, c)
			if llcMiss {
				r.LLCMiss = true
			}
			return done
		})
		if !ok {
			res = AccessResult{Done: start + h.cfg.DRAM.Latency, Miss: true}
		}
	}
	r.Done = res.Done
	r.L1Miss = res.Miss
	if res.Miss && h.cfg.NextLinePrefetch {
		// Next-line prefetch into the L1I, initiated when the demand
		// miss is detected so sequential fetch streams at DRAM
		// bandwidth instead of serializing at full miss latency. MSHR
		// pressure drops the request, as hardware prefetchers do.
		next := pc + uint64(h.cfg.L1I.LineBytes)
		if !h.l1i.Lookup(next) {
			h.l1i.Access(next, start, false, func(block, c uint64) uint64 {
				done, _ := h.llcFill(h.blockAddrI, block, c)
				return done
			})
		}
	}
	return r
}

func (h *Hierarchy) blockAddrI(block uint64) uint64 {
	return block << uint(h.l1iShift())
}
func (h *Hierarchy) blockAddrD(block uint64) uint64 {
	return block << uint(h.l1dShift())
}
func (h *Hierarchy) l1iShift() int { return log2(h.cfg.L1I.LineBytes) }
func (h *Hierarchy) l1dShift() int { return log2(h.cfg.L1D.LineBytes) }

func log2(n int) int {
	s := 0
	for n > 1 {
		n >>= 1
		s++
	}
	return s
}

// DataResult describes a data-side access.
type DataResult struct {
	Done    uint64
	L1Miss  bool
	LLCMiss bool
	TLBMiss bool
	// TLBDone is the cycle address translation finished.
	TLBDone uint64
	// Rejected reports that the access could not allocate an L1 MSHR
	// and must be retried by the load/store unit.
	Rejected bool
}

// TranslateData performs the D-TLB lookup for addr at cycle, returning
// whether it missed and when translation completes.
func (h *Hierarchy) TranslateData(addr, cycle uint64) (miss bool, done uint64) {
	if h.dtlb.Lookup(addr) {
		return false, cycle + h.cfg.DTLB.HitLatency
	}
	return true, cycle + h.walk.Resolve(addr)
}

// Data performs a data access (load, store-allocate, or prefetch) of
// the line holding addr. Translation must already have completed; cycle
// is the post-translation access cycle.
func (h *Hierarchy) Data(addr, cycle uint64, write bool) DataResult {
	var r DataResult
	res, ok := h.l1d.Access(addr, cycle, write, func(block, c uint64) uint64 {
		done, llcMiss := h.llcFill(h.blockAddrD, block, c)
		if llcMiss {
			r.LLCMiss = true
		}
		return done
	})
	if !ok {
		return DataResult{Rejected: true}
	}
	r.Done = res.Done
	r.L1Miss = res.Miss
	if res.WritebackVictim {
		h.dram.Write(cycle)
	}
	return r
}

// Contains reports whether the data-side hierarchy holds the line of
// addr in L1D (used by tests and prefetch-effect checks).
func (h *Hierarchy) Contains(addr uint64) bool { return h.l1d.Lookup(addr) }

// PrefetchLLC services a software prefetch: the line of addr is brought
// into the LLC (not the L1D, matching prefetch-to-L2 semantics), and
// the request contends for LLC MSHRs and DRAM bandwidth. It reports
// false when no MSHR is available; the load/store unit retries, as a
// software prefetch instruction occupies its LSU entry until issued.
func (h *Hierarchy) PrefetchLLC(addr, cycle uint64) bool {
	if h.llc.Lookup(addr) {
		return true
	}
	_, ok := h.llc.Access(addr, cycle, false, func(_, c uint64) uint64 {
		return h.dram.Read(c)
	})
	return ok
}
