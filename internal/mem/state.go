// Checkpoint support: exportable state, functional warming, and
// canonical fingerprints for every stateful component of the memory
// hierarchy.
//
// The state types deliberately capture only *architecturally durable*
// microarchitectural state — tag arrays, LRU stamps, dirty bits, TLB
// contents. Transient timing state (outstanding MSHR fills, the DRAM
// bandwidth slot) is excluded: checkpoints are taken at a quiescent
// commit boundary by a functional pass that has no cycle clock, so a
// restored hierarchy starts with no fills in flight. The per-interval
// warmup window re-establishes transient state before any trace bytes
// are recorded, and the canonical fingerprint (which *does* cover live
// MSHRs and the DRAM slot, translation-invariantly) verifies that it
// converged.
package mem

import "repro/internal/simerr"

// CacheLineState is one exported cache line.
type CacheLineState struct {
	Tag   uint64
	Valid bool
	Dirty bool
	// LRU is the raw last-use stamp; only its order matters, and stamps
	// are unique within a cache, so restoring raw values preserves
	// replacement behavior exactly.
	LRU uint64
}

// CacheState is the exported durable state of one cache: the full tag
// array plus the stamp counter. MSHRs and statistics are not part of
// it (see the package comment above).
type CacheState struct {
	Name  string
	Lines [][]CacheLineState
	Stamp uint64
}

// State exports the cache's durable state.
func (c *Cache) State() CacheState {
	st := CacheState{Name: c.cfg.Name, Stamp: c.stamp, Lines: make([][]CacheLineState, len(c.sets))}
	for i, set := range c.sets {
		ls := make([]CacheLineState, len(set))
		for j, l := range set {
			ls[j] = CacheLineState{Tag: l.tag, Valid: l.valid, Dirty: l.dirty, LRU: l.lru}
		}
		st.Lines[i] = ls
	}
	return st
}

// SetState restores durable state exported by State on a cache with
// the same geometry. MSHRs are cleared: a restored cache has no fills
// in flight.
func (c *Cache) SetState(st CacheState) error {
	if st.Name != c.cfg.Name || len(st.Lines) != len(c.sets) {
		return simerr.New(simerr.ErrInvalidConfig, simerr.Snapshot{},
			"mem: cache state %q (%d sets) does not fit cache %q (%d sets)",
			st.Name, len(st.Lines), c.cfg.Name, len(c.sets))
	}
	for i, ls := range st.Lines {
		if len(ls) != len(c.sets[i]) {
			return simerr.New(simerr.ErrInvalidConfig, simerr.Snapshot{},
				"mem: cache state %q set %d has %d ways, cache has %d",
				st.Name, i, len(ls), len(c.sets[i]))
		}
		for j, l := range ls {
			c.sets[i][j] = line{tag: l.Tag, valid: l.Valid, dirty: l.Dirty, lru: l.LRU}
		}
	}
	c.stamp = st.Stamp
	c.mshrs = c.mshrs[:0]
	return nil
}

// Warm models one program-order access for functional warming: it
// updates the tag array, LRU order, and dirty bits exactly as a
// demand access would, but performs no MSHR accounting, no fill
// timing, and no statistics. It reports whether the access missed, so
// callers can propagate the warm to the next level.
func (c *Cache) Warm(addr uint64, write bool) (miss bool) {
	block := c.BlockOf(addr)
	set := c.setOf(block)
	tag := c.tagOf(block)
	c.stamp++
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lru = c.stamp
			if write {
				set[i].dirty = true
			}
			return false
		}
	}
	c.install(block, write)
	return true
}

// TLBEntryState is one exported TLB entry.
type TLBEntryState struct {
	Page  uint64
	Valid bool
	LRU   uint64
}

// TLBState is the exported state of one TLB.
type TLBState struct {
	Name    string
	Entries [][]TLBEntryState
	Stamp   uint64
}

// State exports the TLB's contents.
func (t *TLB) State() TLBState {
	st := TLBState{Name: t.cfg.Name, Stamp: t.stamp, Entries: make([][]TLBEntryState, len(t.sets))}
	for i, set := range t.sets {
		es := make([]TLBEntryState, len(set))
		for j, e := range set {
			es[j] = TLBEntryState{Page: e.page, Valid: e.valid, LRU: e.lru}
		}
		st.Entries[i] = es
	}
	return st
}

// SetState restores contents exported by State on a TLB with the same
// geometry.
func (t *TLB) SetState(st TLBState) error {
	if st.Name != t.cfg.Name || len(st.Entries) != len(t.sets) {
		return simerr.New(simerr.ErrInvalidConfig, simerr.Snapshot{},
			"mem: TLB state %q (%d sets) does not fit TLB %q (%d sets)",
			st.Name, len(st.Entries), t.cfg.Name, len(t.sets))
	}
	for i, es := range st.Entries {
		if len(es) != len(t.sets[i]) {
			return simerr.New(simerr.ErrInvalidConfig, simerr.Snapshot{},
				"mem: TLB state %q set %d has %d ways, TLB has %d",
				st.Name, i, len(es), len(t.sets[i]))
		}
		for j, e := range es {
			t.sets[i][j] = tlbEntry{page: e.Page, valid: e.Valid, lru: e.LRU}
		}
	}
	t.stamp = st.Stamp
	return nil
}

// HierarchyState is the exported durable state of a core's full memory
// system: all three caches, both L1 TLBs, and the shared L2 TLB. The
// DRAM bandwidth slot is transient timing state and is deliberately
// absent (see the package comment).
type HierarchyState struct {
	L1I, L1D, LLC     CacheState
	ITLB, DTLB, L2TLB TLBState
}

// State exports the hierarchy's durable state.
func (h *Hierarchy) State() HierarchyState {
	return HierarchyState{
		L1I: h.l1i.State(), L1D: h.l1d.State(), LLC: h.llc.State(),
		ITLB: h.itlb.State(), DTLB: h.dtlb.State(), L2TLB: h.walk.l2.State(),
	}
}

// SetState restores state exported by State on a hierarchy built from
// the same configuration.
func (h *Hierarchy) SetState(st HierarchyState) error {
	for _, step := range []error{
		h.l1i.SetState(st.L1I), h.l1d.SetState(st.L1D), h.llc.SetState(st.LLC),
		h.itlb.SetState(st.ITLB), h.dtlb.SetState(st.DTLB), h.walk.l2.SetState(st.L2TLB),
	} {
		if step != nil {
			return step
		}
	}
	return nil
}

// WarmFetch models the durable-state side effects of an instruction
// fetch of the line holding pc, mirroring Fetch: I-TLB (walking into
// the L2 TLB on a miss), L1I, LLC on an L1I miss, and the next-line
// prefetch the demand miss would have triggered.
func (h *Hierarchy) WarmFetch(pc uint64) {
	if !h.itlb.Lookup(pc) {
		h.walk.Resolve(pc)
	}
	if h.l1i.Warm(pc, false) {
		h.llc.Warm(pc, false)
		if h.cfg.NextLinePrefetch {
			next := pc + uint64(h.cfg.L1I.LineBytes)
			if !h.l1i.Lookup(next) {
				if h.l1i.Warm(next, false) {
					h.llc.Warm(next, false)
				}
			}
		}
	}
}

// WarmData models the durable-state side effects of a data access of
// the line holding addr, mirroring TranslateData + Data: D-TLB (and L2
// TLB on a miss), L1D, LLC on an L1D miss.
func (h *Hierarchy) WarmData(addr uint64, write bool) {
	if !h.dtlb.Lookup(addr) {
		h.walk.Resolve(addr)
	}
	if h.l1d.Warm(addr, write) {
		h.llc.Warm(addr, false)
	}
}

// WarmPrefetch models a software prefetch, mirroring PrefetchLLC: the
// line is brought into the LLC only, and an LLC hit leaves LRU state
// untouched (PrefetchLLC's hit path is a Lookup, not an Access).
func (h *Hierarchy) WarmPrefetch(addr uint64) {
	if !h.llc.Lookup(addr) {
		h.llc.Warm(addr, false)
	}
}

// CanonState appends a translation-invariant canonical encoding of the
// cache's state at the given cycle: per set, per way in index order,
// (valid, tag, dirty, LRU rank within the set's valid lines), then the
// live MSHRs (ready > cycle) sorted by block with cycle-relative ready
// times. Raw stamps are reduced to in-set ranks and absolute fill
// cycles to deltas so that two caches reached via different absolute
// clocks — a serial run versus a restored segment — canonicalize
// equally exactly when their future behavior is identical.
func (c *Cache) CanonState(dst []uint64, cycle uint64) []uint64 {
	for _, set := range c.sets {
		for i := range set {
			l := set[i]
			var valid, dirty, rank uint64
			if l.valid {
				valid = 1
				for j := range set {
					if set[j].valid && set[j].lru < l.lru {
						rank++
					}
				}
			}
			if l.dirty {
				dirty = 1
			}
			var tag uint64
			if l.valid {
				tag = l.tag
			}
			dst = append(dst, valid, tag, dirty, rank)
		}
	}
	live := make([]mshr, 0, len(c.mshrs))
	for _, m := range c.mshrs {
		if m.ready > cycle {
			live = append(live, m)
		}
	}
	for i := 1; i < len(live); i++ {
		for j := i; j > 0 && live[j-1].block > live[j].block; j-- {
			live[j-1], live[j] = live[j], live[j-1]
		}
	}
	dst = append(dst, uint64(len(live)))
	for _, m := range live {
		dst = append(dst, m.block, m.ready-cycle)
	}
	return dst
}

// CanonState appends the TLB's canonical encoding: per set, per way in
// index order, (valid, page, LRU rank within the set's valid entries).
func (t *TLB) CanonState(dst []uint64) []uint64 {
	for _, set := range t.sets {
		for i := range set {
			e := set[i]
			var valid, page, rank uint64
			if e.valid {
				valid = 1
				page = e.page
				for j := range set {
					if set[j].valid && set[j].lru < e.lru {
						rank++
					}
				}
			}
			dst = append(dst, valid, page, rank)
		}
	}
	return dst
}

// CanonState appends the DRAM's canonical encoding: how far the
// bandwidth slot is booked past the given cycle (0 when idle).
func (d *DRAM) CanonState(dst []uint64, cycle uint64) []uint64 {
	return append(dst, d.QueueDelay(cycle))
}

// CanonState appends the whole hierarchy's canonical encoding.
func (h *Hierarchy) CanonState(dst []uint64, cycle uint64) []uint64 {
	dst = h.l1i.CanonState(dst, cycle)
	dst = h.l1d.CanonState(dst, cycle)
	dst = h.llc.CanonState(dst, cycle)
	dst = h.itlb.CanonState(dst)
	dst = h.dtlb.CanonState(dst)
	dst = h.walk.l2.CanonState(dst)
	return h.dram.CanonState(dst, cycle)
}
