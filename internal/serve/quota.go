package serve

import (
	"math"
	"sync"
	"time"
)

// quotaTable holds one token bucket per tenant. Buckets refill lazily
// on access (tokens += elapsed × rate, capped at burst), so an idle
// tenant costs nothing and the table needs no background goroutine.
type quotaTable struct {
	mu      sync.Mutex
	rate    float64 // tokens per second; <= 0 disables quotas
	burst   float64
	now     func() time.Time
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotaTable(rate, burst float64, now func() time.Time) *quotaTable {
	return &quotaTable{rate: rate, burst: burst, now: now, buckets: make(map[string]*bucket)}
}

// admit charges one token from the tenant's bucket. On an empty bucket
// it reports false plus the wait until the next token exists — the
// Retry-After the HTTP layer sends back, making the rate limit
// self-describing instead of a guessing game.
func (q *quotaTable) admit(tenant string) (ok bool, retryAfter time.Duration) {
	if q.rate <= 0 {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	b := q.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	}
	elapsed := now.Sub(b.last).Seconds()
	if elapsed > 0 {
		b.tokens = math.Min(q.burst, b.tokens+elapsed*q.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := (1 - b.tokens) / q.rate
	return false, time.Duration(math.Ceil(wait * float64(time.Second)))
}
