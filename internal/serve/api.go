package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/analysis"
	"repro/internal/simerr"
	"repro/internal/xiter"
)

// Error kinds on the wire. The simulator-derived kinds mirror the
// simerr taxonomy one to one; the service kinds cover failures that
// never reach the simulator. docs/API.md carries the full mapping
// table.
const (
	kindInvalidProgram = "invalid_program" // 400 simerr.ErrInvalidProgram
	kindInvalidConfig  = "invalid_config"  // 400 simerr.ErrInvalidConfig
	kindRunaway        = "runaway"         // 422 simerr.ErrRunaway
	kindDeadlock       = "deadlock"        // 422 simerr.ErrDeadlock
	kindDecode         = "decode"          // 500 simerr.ErrDecode (internal cache path; users cannot submit traces)
	kindIO             = "io"              // 500 simerr.ErrIO (journal / result-file disk failure)
	kindCanceled       = "canceled"        // 503 simerr.ErrCanceled (job bodies only)
	kindInternal       = "internal"        // 500 simerr.ErrInternal or any unclassified error
	kindBadRequest     = "bad_request"     // 400 malformed request body
	kindBodyTooLarge   = "body_too_large"  // 413 request body over Config.MaxBodyBytes
	kindQuotaExceeded  = "quota_exceeded"  // 429 tenant token bucket empty
	kindQueueFull      = "queue_full"      // 429 admission queue full
	kindNotFound       = "not_found"       // 404 unknown job ID or path
	kindConflict       = "conflict"        // 409 cancel of a terminal job
)

// ErrorBody is the JSON error envelope's payload: a stable kind, the
// HTTP status that kind maps to, and a human-readable message. Async
// failures (inside a job resource) reuse the same shape with the
// status field advisory.
type ErrorBody struct {
	// Kind is the machine-matchable failure class.
	Kind string `json:"kind"`
	// Status is the HTTP status Kind maps to when returned
	// synchronously.
	Status int `json:"status"`
	// Message is the diagnostic, including the simulator's failure
	// snapshot (workload, cycle, PC) when one exists.
	Message string `json:"message"`
}

// statusForKind is the kind → HTTP status mapping (documented in
// docs/API.md; changing it is an API break).
func statusForKind(kind string) int {
	switch kind {
	case kindInvalidProgram, kindInvalidConfig, kindBadRequest:
		return http.StatusBadRequest
	case kindRunaway, kindDeadlock:
		return http.StatusUnprocessableEntity
	case kindQuotaExceeded, kindQueueFull:
		return http.StatusTooManyRequests
	case kindBodyTooLarge:
		return http.StatusRequestEntityTooLarge
	case kindNotFound:
		return http.StatusNotFound
	case kindConflict:
		return http.StatusConflict
	case kindCanceled:
		return http.StatusServiceUnavailable
	default: // kindDecode, kindIO, kindInternal
		return http.StatusInternalServerError
	}
}

// errorBody classifies err into the wire envelope. Every *simerr.Error
// keeps its kind and snapshot; anything else is an internal error.
func errorBody(err error) *ErrorBody {
	kind := kindInternal
	switch {
	case errors.Is(err, simerr.ErrInvalidProgram):
		kind = kindInvalidProgram
	case errors.Is(err, simerr.ErrInvalidConfig):
		kind = kindInvalidConfig
	case errors.Is(err, simerr.ErrRunaway):
		kind = kindRunaway
	case errors.Is(err, simerr.ErrDeadlock):
		kind = kindDeadlock
	case errors.Is(err, simerr.ErrDecode):
		kind = kindDecode
	case errors.Is(err, simerr.ErrIO):
		kind = kindIO
	case errors.Is(err, simerr.ErrCanceled):
		kind = kindCanceled
	}
	return &ErrorBody{Kind: kind, Status: statusForKind(kind), Message: err.Error()}
}

// errEnvelope is the top-level error response: {"error": {...}}.
type errEnvelope struct {
	Error *ErrorBody `json:"error"`
}

// SubmitResponse is the 202 body of POST /v1/jobs.
type SubmitResponse struct {
	// ID is the job identifier to poll or stream.
	ID string `json:"id"`
	// Status is the job's admission state (always "queued").
	Status Status `json:"status"`
	// QueueDepth is the queue occupancy after admission — a load
	// signal clients can use to self-pace before the server starts
	// rejecting.
	QueueDepth int `json:"queue_depth"`
}

// StoreStatsView is the trace-store section of /v1/stats.
type StoreStatsView struct {
	// Hits counts memory-tier cache hits.
	Hits uint64 `json:"hits"`
	// DiskHits counts disk-tier hits (promoted to memory).
	DiskHits uint64 `json:"disk_hits"`
	// Misses counts lookups no tier could serve.
	Misses uint64 `json:"misses"`
	// Puts counts entries inserted.
	Puts uint64 `json:"puts"`
	// Evictions counts memory-tier LRU evictions.
	Evictions uint64 `json:"evictions"`
	// DiskRejects counts corrupt disk entries discarded (the sum of the
	// two splits below).
	DiskRejects uint64 `json:"disk_rejects"`
	// DiskRejectsFraming counts disk entries rejected by the framing
	// check (bad magic, truncation, digest mismatch).
	DiskRejectsFraming uint64 `json:"disk_rejects_framing"`
	// DiskRejectsPayload counts disk entries that framed correctly but
	// failed the store's payload validator.
	DiskRejectsPayload uint64 `json:"disk_rejects_payload"`
	// PutBytes counts cumulative encoded payload bytes inserted — what
	// the disk tier stores on disk. Compare with the codec section's
	// logical_bytes to size the tier.
	PutBytes uint64 `json:"put_bytes"`
	// MemBytes is the memory tier's current payload footprint.
	MemBytes uint64 `json:"mem_bytes"`
	// Entries is the memory tier's current entry count.
	Entries uint64 `json:"entries"`
	// HitRate is (hits+disk_hits)/(hits+disk_hits+misses), 0 when idle.
	// Note that singleflight waiters joining an in-progress capture
	// count as misses here; Captures vs completed jobs is the truer
	// dedup measure.
	HitRate float64 `json:"hit_rate"`
}

// CodecStatsView is the trace-codec section of /v1/stats: suite-wide
// logical (v3-equivalent) versus encoded (v4) trace bytes across every
// capture this process has written, and how much of the stream the
// pattern table absorbed. logical_bytes / encoded_bytes is the
// compression ratio operators use to size the disk tier and estimate
// transfer cost.
type CodecStatsView struct {
	// Captures counts trace streams written (serial or stitched).
	Captures uint64 `json:"captures"`
	// Records counts records across those streams.
	Records uint64 `json:"records"`
	// MatchedRecords counts records encoded as pattern-table matches
	// rather than literals.
	MatchedRecords uint64 `json:"matched_records"`
	// LogicalBytes is the v3-equivalent record-at-a-time size of the
	// same streams.
	LogicalBytes uint64 `json:"logical_bytes"`
	// EncodedBytes is the v4 bytes actually produced.
	EncodedBytes uint64 `json:"encoded_bytes"`
	// CompressionRatio is logical_bytes/encoded_bytes (0 when idle).
	CompressionRatio float64 `json:"compression_ratio"`
	// PatternHitRate is matched_records/records (0 when idle).
	PatternHitRate float64 `json:"pattern_hit_rate"`
}

// StatsView is the GET /v1/stats body.
type StatsView struct {
	// Workers is the worker-pool size.
	Workers int `json:"workers"`
	// QueueDepth is the current queue occupancy.
	QueueDepth int `json:"queue_depth"`
	// QueueCap is the admission-control bound.
	QueueCap int `json:"queue_cap"`
	// Jobs counts jobs per lifecycle status since startup (terminal
	// states are cumulative).
	Jobs map[string]uint64 `json:"jobs"`
	// Submitted counts admitted jobs.
	Submitted uint64 `json:"submitted"`
	// RejectedQuota counts 429s from tenant quotas.
	RejectedQuota uint64 `json:"rejected_quota"`
	// RejectedQueue counts 429s from queue admission.
	RejectedQueue uint64 `json:"rejected_queue"`
	// Captures counts actual simulations performed process-wide; the
	// gap between completed jobs and captures is the cross-tenant dedup
	// win. A capture counts once per workload regardless of how many
	// checkpointed segments recorded it.
	Captures uint64 `json:"captures"`
	// ParallelCaptures counts captures that completed via stitched
	// checkpoint segments; ParallelSegments is the total segments those
	// captures recorded; ParallelFallbacks counts checkpointed captures
	// that reverted to serial after a fingerprint mismatch (the result
	// is still exact — the fallback is the accuracy backstop).
	ParallelCaptures  uint64 `json:"parallel_captures"`
	ParallelSegments  uint64 `json:"parallel_segments"`
	ParallelFallbacks uint64 `json:"parallel_fallbacks"`
	// TraceStore is the shared cache tier's traffic.
	TraceStore StoreStatsView `json:"tracestore"`
	// Codec is the trace-codec compression section.
	Codec CodecStatsView `json:"codec"`
	// Durability is the journaling and recovery section.
	Durability DurabilityView `json:"durability"`
	// Tenants breaks traffic down per tenant.
	Tenants map[string]TenantStats `json:"tenants"`
}

// DurabilityView is the /v1/stats durability section.
type DurabilityView struct {
	// Mode is the current durability mode (see HealthView.Mode).
	Mode string `json:"mode"`
	// DegradedReason explains a degraded mode (empty otherwise).
	DegradedReason string `json:"degraded_reason,omitempty"`
	// JournalAppends / JournalAppendErrors count WAL record appends and
	// their failures (the first failure degrades the server).
	JournalAppends      uint64 `json:"journal_appends"`
	JournalAppendErrors uint64 `json:"journal_append_errors"`
	// ResultWrites / ResultWriteErrors count result-file persists.
	ResultWrites      uint64 `json:"result_writes"`
	ResultWriteErrors uint64 `json:"result_write_errors"`
	// Recovery reports what the startup replay found.
	Recovery RecoveryStats `json:"recovery"`
}

// streamRecord is one NDJSON line of GET /v1/jobs/{id}/stream.
type streamRecord struct {
	// Type discriminates the record: "status", "profile", or "end".
	Type string `json:"type"`
	// Status accompanies "status" records.
	Status Status `json:"status,omitempty"`
	// Technique and Profile accompany "profile" records.
	Technique string          `json:"technique,omitempty"`
	Profile   json.RawMessage `json:"profile,omitempty"`
	// Job accompanies the final "end" record (profiles omitted — they
	// were streamed individually).
	Job *JobView `json:"job,omitempty"`
}

// Handler returns the service's HTTP surface (the /v1 API documented
// in docs/API.md).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/jobs/{id}/profiles/{technique}", s.handleProfile)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	mux.HandleFunc("/", s.handleNotFound)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErrorKind(w, kindBodyTooLarge, "request body exceeds %d bytes", s.cfg.MaxBodyBytes)
			return
		}
		writeErrorKind(w, kindBadRequest, "invalid job request: %v", err)
		return
	}
	if dec.More() {
		writeErrorKind(w, kindBadRequest, "invalid job request: trailing data after JSON document")
		return
	}

	j, err := s.buildJob(&req)
	if err != nil {
		writeError(w, errorBody(err))
		return
	}

	if ok, retry := s.quotas.admit(j.tenant); !ok {
		s.mu.Lock()
		s.stats.rejectedQuota++
		s.tenantStatsLocked(j.tenant).RejectedQuota++
		s.mu.Unlock()
		setRetryAfter(w, retry)
		writeErrorKind(w, kindQuotaExceeded, "tenant %q over its job rate; retry after %v", j.tenant, retry)
		return
	}

	ok, depth := s.register(j)
	if !ok {
		retry := s.retryAfter()
		setRetryAfter(w, retry)
		writeErrorKind(w, kindQueueFull, "admission queue full (%d jobs); retry after %v", depth, retry)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: j.id, Status: StatusQueued, QueueDepth: depth})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErrorKind(w, kindNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.view(true))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErrorKind(w, kindNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if !j.requestCancel() {
		writeErrorKind(w, kindConflict, "job %s is already %s", j.id, j.view(false).Status)
		return
	}
	s.journalAppend(j, recCancel, nil)
	writeJSON(w, http.StatusAccepted, j.view(false))
}

// handleProfile serves one technique's PICS document verbatim — the
// exact bytes pics.WriteJSON produced, untouched by any envelope
// encoder. This is the endpoint to diff against a local
// analysis.RunProgram artifact; the profiles embedded in the job view
// are JSON-equivalent but re-indented.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErrorKind(w, kindNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	name := r.PathValue("technique")
	v := j.view(false)
	if !v.Status.Terminal() {
		writeErrorKind(w, kindConflict, "job %s is %s; profiles exist once it is done", j.id, v.Status)
		return
	}
	doc, techErr, has := j.profileBytes(name)
	switch {
	case techErr != nil:
		writeError(w, techErr)
	case !has:
		writeErrorKind(w, kindNotFound, "job %s has no %q profile (techniques: %v)", j.id, name, v.Techniques)
	default:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(doc)
	}
}

// handleStream serves the job as NDJSON: a "status" record on connect
// and on every transition, one "profile" record per technique once the
// job completes, and a final "end" record. The stream honors client
// disconnect through the request context.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErrorKind(w, kindNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)

	var last Status
	for {
		ch := j.watch()
		v := j.view(true)
		if v.Status != last {
			last = v.Status
			if err := enc.Encode(streamRecord{Type: "status", Status: v.Status}); err != nil {
				return
			}
		}
		if v.Status.Terminal() {
			for _, name := range v.Techniques {
				doc, has := v.Profiles[name]
				if !has {
					continue
				}
				if err := enc.Encode(streamRecord{Type: "profile", Technique: name, Profile: doc}); err != nil {
					return
				}
			}
			v.Profiles = nil
			enc.Encode(streamRecord{Type: "end", Job: &v})
			return
		}
		if canFlush {
			flusher.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-ch:
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := StoreSnapshot()
	view := StatsView{
		Workers:           s.cfg.Workers,
		QueueCap:          s.cfg.QueueDepth,
		Captures:          analysis.CaptureCount(),
		ParallelCaptures:  analysis.ParallelCaptures(),
		ParallelSegments:  analysis.ParallelSegments(),
		ParallelFallbacks: analysis.ParallelFallbacks(),
		TraceStore: StoreStatsView{
			Hits: snap.Hits, DiskHits: snap.DiskHits, Misses: snap.Misses,
			Puts: snap.Puts, Evictions: snap.Evictions, DiskRejects: snap.DiskRejects,
			DiskRejectsFraming: snap.DiskRejectsFraming, DiskRejectsPayload: snap.DiskRejectsPayload,
		},
	}
	if looked := snap.Hits + snap.DiskHits + snap.Misses; looked > 0 {
		view.TraceStore.HitRate = float64(snap.Hits+snap.DiskHits) / float64(looked)
	}
	view.TraceStore.PutBytes = snap.PutBytes
	view.TraceStore.MemBytes = snap.MemBytes
	view.TraceStore.Entries = snap.Entries
	codec := analysis.CodecTotalStats()
	view.Codec = CodecStatsView{
		Captures:         codec.Captures,
		Records:          codec.Records,
		MatchedRecords:   codec.MatchedRecords,
		LogicalBytes:     codec.LogicalBytes,
		EncodedBytes:     codec.EncodedBytes,
		CompressionRatio: codec.CompressionRatio(),
	}
	if codec.Records > 0 {
		view.Codec.PatternHitRate = float64(codec.MatchedRecords) / float64(codec.Records)
	}
	view.Durability.Mode = s.Mode()
	s.mu.Lock()
	view.Durability.DegradedReason = s.dur.degradedReason
	view.Durability.JournalAppends = s.dur.appends
	view.Durability.JournalAppendErrors = s.dur.appendErrors
	view.Durability.ResultWrites = s.dur.resultWrites
	view.Durability.ResultWriteErrors = s.dur.resultErrors
	view.Durability.Recovery = s.dur.recovery
	view.QueueDepth = len(s.queue)
	view.Submitted = s.stats.submitted
	view.RejectedQuota = s.stats.rejectedQuota
	view.RejectedQueue = s.stats.rejectedQueue
	view.Jobs = make(map[string]uint64, len(s.stats.byStatus))
	for _, st := range xiter.SortedKeys(s.stats.byStatus) {
		view.Jobs[string(st)] = s.stats.byStatus[st]
	}
	view.Tenants = make(map[string]TenantStats, len(s.stats.tenants))
	for _, tenant := range xiter.SortedKeys(s.stats.tenants) {
		view.Tenants[tenant] = *s.stats.tenants[tenant]
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}

// HealthView is the GET /v1/healthz body — liveness: the process is up
// and answering; always 200. Mode tells an operator whether durability
// is active ("durable"), never configured ("memory-only"), or switched
// off by a runtime disk fault ("degraded"). Degraded is a liveness OK:
// the server still serves correct bytes from memory.
type HealthView struct {
	Status string `json:"status"`
	Mode   string `json:"mode"`
}

// ReadyView is the GET /v1/readyz body — readiness: whether this
// instance should receive new traffic. Not-ready (503) when the
// admission queue is saturated or durability has degraded; existing
// jobs and reads keep working either way.
type ReadyView struct {
	Ready      bool   `json:"ready"`
	Mode       string `json:"mode"`
	Reason     string `json:"reason,omitempty"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthView{Status: "ok", Mode: s.Mode()})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	v := ReadyView{Ready: true, Mode: s.Mode(), QueueDepth: len(s.queue), QueueCap: s.cfg.QueueDepth}
	switch {
	case v.Mode == ModeDegraded:
		v.Ready = false
		v.Reason = "durability degraded to memory-only after a disk fault"
	case v.QueueDepth >= v.QueueCap:
		v.Ready = false
		v.Reason = "admission queue saturated"
	}
	status := http.StatusOK
	if !v.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, v)
}

// handleNotFound keeps unknown paths inside the JSON error contract
// (the mux's default would answer text/plain).
func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeErrorKind(w, kindNotFound, "unknown path %s", r.URL.Path)
}

// writeJSON writes one JSON response. An encode failure after the
// header is unrecoverable mid-stream; the client sees a truncated body
// and its decoder reports it.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError renders a prebuilt error body at its mapped status.
func writeError(w http.ResponseWriter, body *ErrorBody) {
	writeJSON(w, body.Status, errEnvelope{Error: body})
}

// writeErrorKind renders a service-kind error.
func writeErrorKind(w http.ResponseWriter, kind, format string, args ...any) {
	body := &ErrorBody{Kind: kind, Status: statusForKind(kind), Message: fmt.Sprintf(format, args...)}
	writeError(w, body)
}

// setRetryAfter sets the Retry-After header in whole seconds, rounded
// up so a client honoring it never retries early.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}
