package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/serve"
	"repro/internal/workloads"
)

// testServer bundles a serve.Server, its running worker pool, and an
// httptest frontend.
type testServer struct {
	srv  *serve.Server
	http *httptest.Server
}

func (ts *testServer) url(path string) string { return ts.http.URL + path }

// startServer spins up a full server (handler + worker pool) and tears
// it down with the test.
func startServer(t *testing.T, cfg serve.Config) *testServer {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		s.Run(ctx)
		close(done)
	}()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		cancel()
		<-done
	})
	return &testServer{srv: s, http: hs}
}

// startQueueOnly builds a server whose worker pool is NOT running, so
// admitted jobs stay queued — deterministic ground for queue-full and
// cancel-while-queued tests.
func startQueueOnly(t *testing.T, cfg serve.Config) *testServer {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return &testServer{srv: s, http: hs}
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, data
}

// submit posts a job request and returns the assigned ID.
func submit(t *testing.T, ts *testServer, body string) string {
	t.Helper()
	resp, data := postJSON(t, ts.url("/v1/jobs"), body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: got %d, want 202; body: %s", resp.StatusCode, data)
	}
	var sub serve.SubmitResponse
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatalf("submit response: %v", err)
	}
	if sub.ID == "" || sub.Status != serve.StatusQueued {
		t.Fatalf("submit response %+v: want non-empty id, status queued", sub)
	}
	return sub.ID
}

// await polls the job until it reaches a terminal status.
func await(t *testing.T, ts *testServer, id string) serve.JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, data := getJSON(t, ts.url("/v1/jobs/"+id))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: got %d; body: %s", id, resp.StatusCode, data)
		}
		var view serve.JobView
		if err := json.Unmarshal(data, &view); err != nil {
			t.Fatalf("poll %s: %v", id, err)
		}
		if view.Status.Terminal() {
			return view
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal status", id)
	return serve.JobView{}
}

// errorKind decodes the error envelope's kind.
func errorKind(t *testing.T, data []byte) string {
	t.Helper()
	var env struct {
		Error *serve.ErrorBody `json:"error"`
	}
	if err := json.Unmarshal(data, &env); err != nil || env.Error == nil {
		t.Fatalf("not an error envelope: %s", data)
	}
	return env.Error.Kind
}

// localProfiles runs the same job through the in-process harness and
// renders each technique with the same writer the server uses.
func localProfiles(t *testing.T, w workloads.Workload, rc analysis.RunConfig, techniques []string) map[string][]byte {
	t.Helper()
	br := analysis.RunProgram(w, w.Build(rc.Iters(w)), rc)
	out := make(map[string][]byte, len(techniques))
	for _, name := range techniques {
		p := map[string]interface{ WriteJSON(io.Writer) error }{
			"golden": br.Golden, "tea": br.TEA, "nci-tea": br.NCITEA,
			"ibs": br.IBS, "spe": br.SPE, "ris": br.RIS,
		}[name]
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			t.Fatalf("local %s profile: %v", name, err)
		}
		out[name] = buf.Bytes()
	}
	return out
}

// TestSubmitByteIdenticalProfiles is the service's core contract: the
// profiles a job returns are byte-for-byte the pics documents a local
// analysis.RunProgram of the same (program, config) produces — across
// all six techniques.
func TestSubmitByteIdenticalProfiles(t *testing.T) {
	ts := startServer(t, serve.Config{Workers: 2})
	id := submit(t, ts, `{"tenant":"t1","workload":"deepsjeng","techniques":["golden","tea","nci-tea","ibs","spe","ris"],"config":{"scale":0.05}}`)
	view := await(t, ts, id)
	if view.Status != serve.StatusDone {
		t.Fatalf("job finished %s (error: %+v), want done", view.Status, view.Error)
	}
	if len(view.TechniqueErrors) != 0 {
		t.Fatalf("unexpected technique errors: %+v", view.TechniqueErrors)
	}

	w, err := workloads.ByName("deepsjeng")
	if err != nil {
		t.Fatal(err)
	}
	rc := analysis.DefaultRunConfig()
	rc.Scale = 0.05
	want := localProfiles(t, w, rc, serve.AllTechniques)
	for _, name := range serve.AllTechniques {
		if _, ok := view.Profiles[name]; !ok {
			t.Fatalf("job view returned no %q profile", name)
		}
		resp, got := getJSON(t, ts.url("/v1/jobs/"+id+"/profiles/"+name))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("raw %s profile: got %d; body: %s", name, resp.StatusCode, got)
		}
		if !bytes.Equal(got, want[name]) {
			t.Errorf("%s profile differs from local run (%d vs %d bytes)", name, len(got), len(want[name]))
		}
	}

	// The raw endpoint answers 404 for a technique the job never ran.
	resp, data := getJSON(t, ts.url("/v1/jobs/"+id+"/profiles/doom"))
	if resp.StatusCode != http.StatusNotFound || errorKind(t, data) != "not_found" {
		t.Errorf("unknown technique profile: %d %s", resp.StatusCode, data)
	}
}

// TestInlineProgram checks the program spec path, including the lbm
// prefetch knob, against the equivalent local construction.
func TestInlineProgram(t *testing.T) {
	ts := startServer(t, serve.Config{Workers: 2})
	id := submit(t, ts, `{"program":{"kind":"lbm","iters":48,"prefetch_dist":3},"techniques":["tea"]}`)
	view := await(t, ts, id)
	if view.Status != serve.StatusDone {
		t.Fatalf("job finished %s (error: %+v), want done", view.Status, view.Error)
	}

	w, err := workloads.ByName("lbm")
	if err != nil {
		t.Fatal(err)
	}
	br := analysis.RunProgram(w, workloads.LBM(48, 3), analysis.DefaultRunConfig())
	var buf bytes.Buffer
	if err := br.TEA.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	resp, got := getJSON(t, ts.url("/v1/jobs/"+id+"/profiles/tea"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw profile: got %d", resp.StatusCode)
	}
	if !bytes.Equal(got, buf.Bytes()) {
		t.Errorf("inline lbm tea profile differs from local workloads.LBM run")
	}
	if !strings.Contains(view.Program, "lbm") {
		t.Errorf("program name %q does not mention lbm", view.Program)
	}
}

// TestSubmitValidation drives the rejection matrix: every malformed
// request is a 4xx with a stable kind, and none of them crash anything.
func TestSubmitValidation(t *testing.T) {
	ts := startQueueOnly(t, serve.Config{MaxBodyBytes: 4096, MaxIters: 1 << 16})
	cases := []struct {
		name   string
		body   string
		status int
		kind   string
	}{
		{"empty body", ``, 400, "bad_request"},
		{"not json", `{{{{`, 400, "bad_request"},
		{"wrong type", `{"workload":42}`, 400, "bad_request"},
		{"unknown field", `{"workload":"mcf","frobnicate":1}`, 400, "bad_request"},
		{"trailing data", `{"workload":"mcf"} garbage`, 400, "bad_request"},
		{"neither workload nor program", `{"tenant":"t"}`, 400, "invalid_config"},
		{"both workload and program", `{"workload":"mcf","program":{"kind":"mcf","iters":8}}`, 400, "invalid_config"},
		{"unknown workload", `{"workload":"doom"}`, 400, "invalid_config"},
		{"unknown technique", `{"workload":"mcf","techniques":["perf"]}`, 400, "invalid_config"},
		{"zero interval", `{"workload":"mcf","config":{"interval":0}}`, 400, "invalid_config"},
		{"negative scale", `{"workload":"mcf","config":{"scale":-1}}`, 400, "invalid_config"},
		{"huge scale", `{"workload":"mcf","config":{"scale":1e9}}`, 400, "invalid_config"},
		{"checkpoint interval of 1", `{"workload":"mcf","config":{"checkpoint_interval":1}}`, 400, "invalid_config"},
		{"negative capture workers", `{"workload":"mcf","config":{"capture_workers":-1}}`, 400, "invalid_config"},
		{"iters too small", `{"program":{"kind":"mcf","iters":1}}`, 400, "invalid_program"},
		{"iters too large", `{"program":{"kind":"mcf","iters":1000000}}`, 400, "invalid_program"},
		{"prefetch on non-lbm", `{"program":{"kind":"mcf","iters":8,"prefetch_dist":2}}`, 400, "invalid_program"},
		{"prefetch out of range", `{"program":{"kind":"lbm","iters":8,"prefetch_dist":100}}`, 400, "invalid_program"},
		{"fast_math on non-nab", `{"program":{"kind":"mcf","iters":8,"fast_math":true}}`, 400, "invalid_program"},
		{"oversized body", `{"workload":"mcf","tenant":"` + strings.Repeat("x", 5000) + `"}`, 413, "body_too_large"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJSON(t, ts.url("/v1/jobs"), tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("got %d, want %d; body: %s", resp.StatusCode, tc.status, data)
			}
			if kind := errorKind(t, data); kind != tc.kind {
				t.Errorf("got kind %q, want %q", kind, tc.kind)
			}
		})
	}
}

// TestQuota verifies the token bucket: burst admits, the next request
// is shed with 429 + Retry-After, and a clock advance refills.
func TestQuota(t *testing.T) {
	clock := time.Unix(1700000000, 0)
	var mu sync.Mutex
	now := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock
	}
	ts := startQueueOnly(t, serve.Config{
		QueueDepth:  64,
		TenantRate:  1, // one job/second
		TenantBurst: 2,
		Now:         now,
	})

	submit(t, ts, `{"tenant":"heavy","workload":"mcf"}`)
	submit(t, ts, `{"tenant":"heavy","workload":"mcf"}`)
	resp, data := postJSON(t, ts.url("/v1/jobs"), `{"tenant":"heavy","workload":"mcf"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: got %d, want 429; body: %s", resp.StatusCode, data)
	}
	if kind := errorKind(t, data); kind != "quota_exceeded" {
		t.Errorf("got kind %q, want quota_exceeded", kind)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}

	// A different tenant has its own bucket.
	submit(t, ts, `{"tenant":"light","workload":"mcf"}`)

	// Advancing the clock refills the heavy tenant.
	mu.Lock()
	clock = clock.Add(2 * time.Second)
	mu.Unlock()
	submit(t, ts, `{"tenant":"heavy","workload":"mcf"}`)
}

// TestQueueFull verifies admission control: with no workers draining, a
// full queue sheds with 429 queue_full + Retry-After and the job is not
// registered.
func TestQueueFull(t *testing.T) {
	ts := startQueueOnly(t, serve.Config{QueueDepth: 2})
	submit(t, ts, `{"workload":"mcf"}`)
	submit(t, ts, `{"workload":"mcf"}`)
	resp, data := postJSON(t, ts.url("/v1/jobs"), `{"workload":"mcf"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("got %d, want 429; body: %s", resp.StatusCode, data)
	}
	if kind := errorKind(t, data); kind != "queue_full" {
		t.Errorf("got kind %q, want queue_full", kind)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
}

// TestCancelQueued covers asynchronous cancellation of a queued job:
// DELETE is accepted immediately, and the worker pool finalizes the job
// as canceled (without running it) once it starts draining.
func TestCancelQueued(t *testing.T) {
	s, err := serve.New(serve.Config{Workers: 1})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	ts := &testServer{srv: s, http: hs}

	id := submit(t, ts, `{"workload":"mcf","config":{"scale":0.05}}`)
	req, _ := http.NewRequest(http.MethodDelete, ts.url("/v1/jobs/"+id), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: got %d, want 202", resp.StatusCode)
	}

	// Now start the pool; it must drain the job as canceled.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		s.Run(ctx)
		close(done)
	}()
	defer func() {
		cancel()
		<-done
	}()
	view := await(t, ts, id)
	if view.Status != serve.StatusCanceled {
		t.Fatalf("got status %s, want canceled", view.Status)
	}
	if view.Error == nil || view.Error.Kind != "canceled" {
		t.Fatalf("got error %+v, want kind canceled", view.Error)
	}
	if len(view.Profiles) != 0 {
		t.Error("canceled job has profiles")
	}
}

// TestCancelTerminalConflicts: canceling a finished job is a 409.
func TestCancelTerminalConflicts(t *testing.T) {
	ts := startServer(t, serve.Config{Workers: 1})
	id := submit(t, ts, `{"workload":"mcf","config":{"scale":0.05}}`)
	await(t, ts, id)

	req, _ := http.NewRequest(http.MethodDelete, ts.url("/v1/jobs/"+id), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("got %d, want 409; body: %s", resp.StatusCode, data)
	}
	if kind := errorKind(t, data); kind != "conflict" {
		t.Errorf("got kind %q, want conflict", kind)
	}
}

// TestJobTimeout: a tiny per-job deadline cancels the run mid-flight
// and the job lands canceled with the typed kind.
func TestJobTimeout(t *testing.T) {
	ts := startServer(t, serve.Config{Workers: 1, JobTimeout: time.Millisecond})
	id := submit(t, ts, `{"workload":"bwaves","config":{"scale":1.0}}`)
	view := await(t, ts, id)
	if view.Status != serve.StatusCanceled {
		t.Fatalf("got status %s (error %+v), want canceled", view.Status, view.Error)
	}
	if view.Error == nil || view.Error.Kind != "canceled" {
		t.Fatalf("got error %+v, want kind canceled", view.Error)
	}
}

// TestStream reads the NDJSON stream to completion and checks the
// record protocol: status transitions, one profile record per
// technique, and a final end record without inline profiles.
func TestStream(t *testing.T) {
	ts := startServer(t, serve.Config{Workers: 1})
	id := submit(t, ts, `{"workload":"mcf","techniques":["tea","ibs"],"config":{"scale":0.05}}`)

	resp, err := http.Get(ts.url("/v1/jobs/" + id + "/stream"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: got %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content-type %q", ct)
	}

	type record struct {
		Type      string          `json:"type"`
		Status    serve.Status    `json:"status"`
		Technique string          `json:"technique"`
		Profile   json.RawMessage `json:"profile"`
		Job       *serve.JobView  `json:"job"`
	}
	var records []record
	dec := json.NewDecoder(resp.Body)
	for {
		var rec record
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("stream decode: %v", err)
		}
		records = append(records, rec)
	}
	if len(records) < 2 {
		t.Fatalf("stream produced %d records, want >= 2", len(records))
	}
	last := records[len(records)-1]
	if last.Type != "end" || last.Job == nil || last.Job.Status != serve.StatusDone {
		t.Fatalf("last record %+v, want end with done job", last)
	}
	if last.Job.Profiles != nil {
		t.Error("end record carries inline profiles; they belong in profile records")
	}
	profiles := map[string]bool{}
	for _, rec := range records {
		if rec.Type == "profile" {
			if len(rec.Profile) == 0 {
				t.Errorf("empty profile record for %q", rec.Technique)
			}
			profiles[rec.Technique] = true
		}
	}
	if !profiles["tea"] || !profiles["ibs"] {
		t.Errorf("stream profile records %v, want tea and ibs", profiles)
	}
}

// TestDedupAcrossTenants: N concurrent identical jobs from distinct
// tenants cost exactly one capture — the singleflight trace store is
// shared across the pool.
func TestDedupAcrossTenants(t *testing.T) {
	ts := startServer(t, serve.Config{Workers: 4, QueueDepth: 64})
	before := analysis.CaptureCount()

	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Unique iteration count so no earlier test already cached
			// this program; identical across the n jobs.
			body := fmt.Sprintf(`{"tenant":"tenant-%d","program":{"kind":"exchange2","iters":97},"techniques":["tea"]}`, i%4)
			resp, err := http.Post(ts.url("/v1/jobs"), "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			var sub serve.SubmitResponse
			if resp.StatusCode != http.StatusAccepted || json.Unmarshal(data, &sub) != nil {
				t.Errorf("submit %d: status %d body %s", i, resp.StatusCode, data)
				return
			}
			ids[i] = sub.ID
		}(i)
	}
	wg.Wait()

	var first []byte
	for _, id := range ids {
		if id == "" {
			t.Fatal("a submission failed")
		}
		view := await(t, ts, id)
		if view.Status != serve.StatusDone {
			t.Fatalf("job %s finished %s (error %+v)", id, view.Status, view.Error)
		}
		if first == nil {
			first = []byte(view.Profiles["tea"])
		} else if !bytes.Equal(first, []byte(view.Profiles["tea"])) {
			t.Errorf("job %s profile differs across identical submissions", id)
		}
	}

	if got := analysis.CaptureCount() - before; got != 1 {
		t.Errorf("%d identical jobs performed %d captures, want exactly 1", n, got)
	}
}

// TestSubmitCheckpointedCapture pins the per-job capture-parallelism
// knobs end to end: a job submitted with checkpoint_interval captures
// its trace as stitched checkpoint segments (or their verified serial
// fallback) and still returns profiles byte-identical to a local
// serial run from a separate store, and /v1/stats carries the
// parallel-capture counters.
func TestSubmitCheckpointedCapture(t *testing.T) {
	w, err := workloads.ByName("exchange2")
	if err != nil {
		t.Fatal(err)
	}
	rc := analysis.DefaultRunConfig()
	rc.Scale = 0.05

	// Serial reference from its own private store, so the two paths
	// cannot simply share captured bytes through the cache.
	prev := analysis.SetTraceStore(analysis.NewTraceStore(analysis.DefaultStoreBudget, ""))
	defer analysis.SetTraceStore(prev)
	want := localProfiles(t, w, rc, []string{"tea"})

	analysis.SetTraceStore(analysis.NewTraceStore(analysis.DefaultStoreBudget, ""))
	attempts := analysis.ParallelCaptures() + analysis.ParallelFallbacks()
	ts := startServer(t, serve.Config{Workers: 2})
	id := submit(t, ts, `{"workload":"exchange2","techniques":["tea"],"config":{"scale":0.05,"checkpoint_interval":500,"capture_workers":2}}`)
	view := await(t, ts, id)
	if view.Status != serve.StatusDone {
		t.Fatalf("job finished %s (error: %+v), want done", view.Status, view.Error)
	}
	resp, got := getJSON(t, ts.url("/v1/jobs/"+id+"/profiles/tea"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw tea profile: got %d; body: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want["tea"]) {
		t.Errorf("checkpointed-capture profile differs from serial local run (%d vs %d bytes)",
			len(got), len(want["tea"]))
	}

	if got := analysis.ParallelCaptures() + analysis.ParallelFallbacks(); got <= attempts {
		t.Errorf("no interval-parallel capture attempt recorded (counters %d -> %d)", attempts, got)
	}
	resp, data := getJSON(t, ts.url("/v1/stats"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: got %d", resp.StatusCode)
	}
	var stats serve.StatsView
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatalf("stats decode: %v (%s)", err, data)
	}
	if stats.ParallelCaptures+stats.ParallelFallbacks != analysis.ParallelCaptures()+analysis.ParallelFallbacks() {
		t.Errorf("stats parallel counters %d+%d don't match the process counters",
			stats.ParallelCaptures, stats.ParallelFallbacks)
	}
}

// TestStatsAndHealth: the stats document reflects traffic, and healthz
// answers.
func TestStatsAndHealth(t *testing.T) {
	ts := startServer(t, serve.Config{Workers: 1})
	id := submit(t, ts, `{"tenant":"acme","workload":"mcf","config":{"scale":0.05}}`)
	await(t, ts, id)

	resp, data := getJSON(t, ts.url("/v1/stats"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: got %d", resp.StatusCode)
	}
	var stats serve.StatsView
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatalf("stats decode: %v (%s)", err, data)
	}
	if stats.Submitted < 1 || stats.Jobs["done"] < 1 {
		t.Errorf("stats %+v: want >=1 submitted and done", stats)
	}
	if stats.Tenants["acme"].Submitted < 1 {
		t.Errorf("tenant stats missing acme: %+v", stats.Tenants)
	}
	if stats.Workers != 1 {
		t.Errorf("stats workers %d, want 1", stats.Workers)
	}
	// The codec section aggregates every capture this process has
	// written; at least the job above contributed, so the counters must
	// be live and the v4 encoding strictly smaller than its logical
	// (v3-equivalent) size.
	if stats.Codec.Captures < 1 || stats.Codec.Records == 0 {
		t.Errorf("codec stats idle after a capture: %+v", stats.Codec)
	}
	if stats.Codec.EncodedBytes == 0 || stats.Codec.EncodedBytes >= stats.Codec.LogicalBytes {
		t.Errorf("codec bytes not compressed: encoded %d, logical %d",
			stats.Codec.EncodedBytes, stats.Codec.LogicalBytes)
	}
	if stats.Codec.CompressionRatio <= 1 || stats.Codec.PatternHitRate <= 0 {
		t.Errorf("codec ratios idle: %+v", stats.Codec)
	}

	resp, data = getJSON(t, ts.url("/v1/healthz"))
	if resp.StatusCode != http.StatusOK || !bytes.Contains(data, []byte("ok")) {
		t.Errorf("healthz: %d %s", resp.StatusCode, data)
	}
}

// TestNotFound: unknown jobs and unknown paths both answer the JSON
// error envelope, never the mux's text default.
func TestNotFound(t *testing.T) {
	ts := startQueueOnly(t, serve.Config{})
	resp, data := getJSON(t, ts.url("/v1/jobs/j-999999"))
	if resp.StatusCode != http.StatusNotFound || errorKind(t, data) != "not_found" {
		t.Errorf("unknown job: %d %s", resp.StatusCode, data)
	}
	resp, data = getJSON(t, ts.url("/nope"))
	if resp.StatusCode != http.StatusNotFound || errorKind(t, data) != "not_found" {
		t.Errorf("unknown path: %d %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("404 content-type %q, want application/json", ct)
	}
}

// TestFinishedRetention: beyond KeepFinished, the oldest terminal jobs
// are evicted and become 404.
func TestFinishedRetention(t *testing.T) {
	ts := startServer(t, serve.Config{Workers: 1, KeepFinished: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		id := submit(t, ts, `{"workload":"mcf","config":{"scale":0.05}}`)
		await(t, ts, id)
		ids = append(ids, id)
	}
	resp, _ := getJSON(t, ts.url("/v1/jobs/"+ids[0]))
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted job still answers %d", resp.StatusCode)
	}
	resp, _ = getJSON(t, ts.url("/v1/jobs/"+ids[3]))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("retained job answers %d", resp.StatusCode)
	}
}
