// Package serve is the multi-tenant profiling service behind cmd/teaserve:
// it accepts (workload | inline program, RunConfig, techniques) jobs over
// HTTP/JSON, runs them through a bounded worker pool, and serves PICS
// profiles back — the long-running counterpart to the one-shot teaexp and
// teaprof CLIs (docs/API.md is the wire reference, docs/OPERATIONS.md the
// operator guide).
//
// The service layers three admission mechanisms in front of the worker
// pool, in order:
//
//  1. Request validation. A job request is parsed strictly (unknown
//     fields rejected), bounded (Config.MaxBodyBytes, MaxIters,
//     MaxScale), and converted to a typed *simerr.Error on any defect —
//     no request body can panic the server (FuzzSubmit pins this at the
//     HTTP boundary, the same way the chaos harness pins the
//     capture/replay pipeline).
//  2. Per-tenant token-bucket quotas (Config.TenantRate/TenantBurst).
//     A tenant over its rate receives 429 with a Retry-After telling it
//     exactly when the next token arrives — cooperative backpressure.
//  3. Queue-depth admission control. The job queue is a bounded channel
//     (Config.QueueDepth); when it is full the server sheds load with
//     429 + Retry-After instead of buffering unboundedly.
//
// Admitted jobs run through analysis.RunProgramContext, so every capture
// is deduplicated across tenants by the content-addressed trace store:
// N tenants submitting the same (program, core configuration) cost one
// simulation, and the rest replay shared bytes. Failures surface as the
// simerr taxonomy rendered into a JSON error envelope with a stable
// kind → HTTP status mapping (see ErrorBody and docs/API.md). Job
// cancellation — client DELETE, per-job timeout, or server shutdown —
// threads one context.Context end to end into the simulator loop.
package serve

import (
	"context"
	"strconv"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/journal"
	"repro/internal/tracestore"
)

// Config sizes the service. The zero value is not ready; start from
// DefaultConfig. docs/OPERATIONS.md discusses how to tune each knob.
type Config struct {
	// Workers is the worker-pool size: the number of jobs simulated
	// concurrently (default: 4). Captures are single-threaded, but each
	// job's replay additionally fans out across GOMAXPROCS, so the
	// useful range is ~NumCPU/2 .. NumCPU.
	Workers int
	// QueueDepth bounds the admission queue; a submit that finds the
	// queue full is rejected with 429 + Retry-After (default: 64).
	QueueDepth int
	// TenantRate is the per-tenant token-bucket refill rate in
	// jobs/second; 0 or negative disables quotas (default: 50).
	TenantRate float64
	// TenantBurst is the token-bucket capacity: how many jobs a tenant
	// may submit back to back before the rate limit bites (default: 100).
	TenantBurst float64
	// JobTimeout bounds one job's wall-clock run time; the job fails
	// with kind "canceled" when it trips. 0 disables the per-job
	// deadline — the simulator's own runaway and watchdog guards still
	// apply (default: 2m).
	JobTimeout time.Duration
	// MaxBodyBytes caps a request body; larger submissions receive 413
	// (default: 1 MiB).
	MaxBodyBytes int64
	// MaxIters caps an inline program's iteration count (default: 1<<20).
	MaxIters int
	// MaxScale caps a job's Scale knob (default: 4.0).
	MaxScale float64
	// KeepFinished bounds the finished-job registry: beyond it, the
	// oldest terminal jobs are evicted and their results become 404
	// (default: 16384).
	KeepFinished int
	// JournalDir enables the durability layer: job transitions are
	// journaled to a WAL under this directory and replayed by New on
	// startup (empty: memory-only, nothing survives a restart). See
	// docs/OPERATIONS.md "Durability & recovery".
	JournalDir string
	// JournalFS overrides the journal's filesystem — the fault-injection
	// seam (default: the real filesystem).
	JournalFS journal.FS
	// Logf receives operational log lines (recovery summary, degraded-
	// mode transitions); nil discards them.
	Logf func(format string, args ...any)
	// Now is the clock, injectable for tests (default: time.Now).
	Now func() time.Time
}

// DefaultConfig returns the documented defaults.
func DefaultConfig() Config {
	return Config{
		Workers:      4,
		QueueDepth:   64,
		TenantRate:   50,
		TenantBurst:  100,
		JobTimeout:   2 * time.Minute,
		MaxBodyBytes: 1 << 20,
		MaxIters:     1 << 20,
		MaxScale:     4.0,
		KeepFinished: 16384,
	}
}

// withDefaults fills unset fields so a partially specified Config (a
// test overriding one knob) behaves like DefaultConfig elsewhere.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Workers <= 0 {
		c.Workers = d.Workers
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = d.QueueDepth
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = d.TenantBurst
	}
	if c.JobTimeout < 0 {
		c.JobTimeout = 0
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = d.MaxBodyBytes
	}
	if c.MaxIters <= 0 {
		c.MaxIters = d.MaxIters
	}
	if c.MaxScale <= 0 {
		c.MaxScale = d.MaxScale
	}
	if c.KeepFinished <= 0 {
		c.KeepFinished = d.KeepFinished
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Server is the profiling service: an HTTP handler (Handler) in front
// of a job registry and a worker pool (Run). All methods are safe for
// concurrent use.
type Server struct {
	cfg     Config
	queue   chan *job
	quotas  *quotaTable
	journal *journal.Journal // nil in memory-only mode

	mu       sync.Mutex
	jobs     map[string]*job
	finished []string // terminal job IDs, oldest first (retention ring)
	seq      uint64
	stats    counters
	dur      durability
}

// counters aggregates service traffic for /v1/stats (guarded by
// Server.mu).
type counters struct {
	submitted     uint64
	rejectedQuota uint64
	rejectedQueue uint64
	byStatus      map[Status]uint64 // terminal + live counts, kept incrementally
	tenants       map[string]*TenantStats
}

// TenantStats is one tenant's traffic, reported by /v1/stats.
type TenantStats struct {
	// Submitted counts jobs admitted to the queue.
	Submitted uint64 `json:"submitted"`
	// RejectedQuota counts submissions refused by the token bucket.
	RejectedQuota uint64 `json:"rejected_quota"`
	// RejectedQueue counts submissions refused by queue admission.
	RejectedQueue uint64 `json:"rejected_queue"`
}

// New builds a Server from cfg (unset fields take DefaultConfig
// values). The server shares the process-wide trace store installed via
// analysis.SetTraceStore, so its capture dedup spans every tenant — and
// any disk tier the operator attached.
//
// With Config.JournalDir set, New opens (or creates) the job journal
// and replays it before accepting traffic: terminal jobs come back
// with byte-identical results, interrupted jobs are re-enqueued. A
// journal that cannot be opened — mid-stream corruption, an alien
// file, an unreadable directory — fails New with a typed error rather
// than silently discarding history; torn tails are repaired, not
// fatal.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		quotas: newQuotaTable(cfg.TenantRate, cfg.TenantBurst, cfg.Now),
		jobs:   make(map[string]*job),
		stats: counters{
			byStatus: make(map[Status]uint64),
			tenants:  make(map[string]*TenantStats),
		},
	}
	var requeue []*job
	if cfg.JournalDir != "" {
		jnl, rec, err := journal.Open(cfg.JournalDir, cfg.JournalFS)
		if err != nil {
			return nil, err
		}
		s.journal = jnl
		requeue = s.restore(rec)
		r := s.dur.recovery
		cfg.Logf("teaserve: journal %s replayed: %d records (%d torn bytes truncated), %d done / %d failed / %d canceled restored, %d requeued",
			cfg.JournalDir, r.Replayed, r.TornBytes, r.RestoredDone, r.RestoredFailed, r.RestoredCanceled, r.Requeued)
	}
	// Recovered jobs must not consume new submissions' admission
	// budget: the queue is sized for both.
	s.queue = make(chan *job, cfg.QueueDepth+len(requeue))
	for _, j := range requeue {
		s.queue <- j
	}
	return s, nil
}

// Run operates the worker pool until ctx is canceled, then joins every
// worker and returns. In-flight jobs observe the cancellation through
// their derived contexts and finish as canceled; queued jobs are
// drained on the next pickup and canceled without running.
func (s *Server) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for i := 0; i < s.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case j := <-s.queue:
					s.runJob(ctx, j)
				}
			}
		}()
	}
	wg.Wait()
}

// Idle reports whether no job is queued or running — the signal the
// drain phase of a graceful shutdown waits for.
func (s *Server) Idle() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue) == 0 && s.stats.byStatus[StatusQueued] == 0 && s.stats.byStatus[StatusRunning] == 0
}

// runJob executes one admitted job end to end: transition to running,
// derive the job's context (server lifetime ∧ per-job timeout ∧ client
// cancel), run the capture/replay pipeline, and record the terminal
// state. ctx is the worker pool's root; every path into the simulator
// derives from it.
func (s *Server) runJob(ctx context.Context, j *job) {
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if s.cfg.JobTimeout > 0 {
		var tcancel context.CancelFunc
		jctx, tcancel = context.WithTimeout(jctx, s.cfg.JobTimeout)
		defer tcancel()
	}
	if !j.begin(s.cfg.Now(), cancel) {
		// Canceled while queued; registry already holds the terminal
		// state.
		s.noteTransition(StatusQueued, StatusCanceled)
		s.journalTerminal(j, StatusCanceled, j.view(false).Error)
		return
	}
	s.noteTransition(StatusQueued, StatusRunning)
	s.journalAppend(j, recRunning, nil)

	br, err := analysis.RunProgramContext(jctx, j.w, j.prog, j.rc)
	end := s.cfg.Now()
	if err != nil {
		body := errorBody(err)
		status := StatusFailed
		if body.Kind == kindCanceled {
			status = StatusCanceled
		}
		j.fail(end, body, status)
		s.noteTerminal(j, StatusRunning, status)
		s.journalTerminal(j, status, body)
		return
	}
	profiles, techErrs, rerr := renderProfiles(br, j.techniques)
	if rerr != nil {
		body := errorBody(rerr)
		j.fail(end, body, StatusFailed)
		s.noteTerminal(j, StatusRunning, StatusFailed)
		s.journalTerminal(j, StatusFailed, body)
		return
	}
	j.complete(end, profiles, techErrs)
	s.noteTerminal(j, StatusRunning, StatusDone)
	s.journalDone(j, profiles, techErrs)
}

// noteTransition moves one job between status buckets in the counters.
func (s *Server) noteTransition(from, to Status) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stats.byStatus[from] > 0 {
		s.stats.byStatus[from]--
	}
	s.stats.byStatus[to]++
}

// noteTerminal records a job reaching a terminal status and applies the
// finished-job retention cap.
func (s *Server) noteTerminal(j *job, from, to Status) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stats.byStatus[from] > 0 {
		s.stats.byStatus[from]--
	}
	s.stats.byStatus[to]++
	s.finished = append(s.finished, j.id)
	for len(s.finished) > s.cfg.KeepFinished {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// register admits a validated job: charge the tenant's counters, assign
// an ID, and enqueue. It reports the admission outcome; on queue-full
// the job is not registered (and nothing is journaled — a rejected job
// must not resurrect on recovery).
func (s *Server) register(j *job) (ok bool, queueDepth int) {
	s.mu.Lock()
	s.seq++
	j.id = "j-" + pad6(s.seq)
	if s.journal != nil {
		// Created before the enqueue so a worker that grabs the job
		// immediately still orders its records after the submitted one.
		j.journaled = make(chan struct{})
	}
	select {
	case s.queue <- j:
	default:
		s.stats.rejectedQueue++
		s.tenantStatsLocked(j.tenant).RejectedQueue++
		s.mu.Unlock()
		return false, len(s.queue)
	}
	s.jobs[j.id] = j
	s.stats.submitted++
	s.stats.byStatus[StatusQueued]++
	s.tenantStatsLocked(j.tenant).Submitted++
	depth := len(s.queue)
	s.mu.Unlock()
	s.journalSubmitted(j)
	return true, depth
}

// tenantStatsLocked returns (creating if needed) the tenant's counter
// block. Callers hold s.mu.
func (s *Server) tenantStatsLocked(tenant string) *TenantStats {
	ts := s.stats.tenants[tenant]
	if ts == nil {
		ts = &TenantStats{}
		s.stats.tenants[tenant] = ts
	}
	return ts
}

// lookup returns the registered job, if it is still retained.
func (s *Server) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// retryAfter estimates when a rejected submission is worth retrying:
// the time for the worker pool to turn over half the queue, floored at
// one second. It is a heuristic — the client contract is only "wait at
// least this long", and the header is what makes the backpressure
// cooperative rather than a retry stampede.
func (s *Server) retryAfter() time.Duration {
	depth := len(s.queue)
	secs := 1 + depth/(2*s.cfg.Workers)
	return time.Duration(secs) * time.Second
}

// pad6 renders a sequence number as a fixed-width decimal, so job IDs
// sort lexically in submission order.
func pad6(n uint64) string {
	s := strconv.FormatUint(n, 10)
	for len(s) < 6 {
		s = "0" + s
	}
	return s
}

// StoreSnapshot exposes the shared trace store's traffic counters (the
// /v1/stats cache section).
func StoreSnapshot() tracestore.Stats {
	return analysis.TraceStore().Snapshot()
}
