package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/pics"
	"repro/internal/program"
	"repro/internal/simerr"
	"repro/internal/workloads"
)

// Status is a job's lifecycle state.
type Status string

// The job lifecycle: queued → running → done | failed | canceled.
const (
	// StatusQueued: admitted, waiting for a worker.
	StatusQueued Status = "queued"
	// StatusRunning: a worker is simulating or replaying the job.
	StatusRunning Status = "running"
	// StatusDone: profiles are available (individual techniques may
	// still have failed — see JobView.TechniqueErrors).
	StatusDone Status = "done"
	// StatusFailed: the run produced no profiles; JobView.Error holds
	// the typed failure.
	StatusFailed Status = "failed"
	// StatusCanceled: stopped by client request, per-job timeout, or
	// server shutdown before completing.
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// JobRequest is the POST /v1/jobs body. Exactly one of Workload and
// Program selects what to profile; unknown fields are rejected.
type JobRequest struct {
	// Tenant identifies the quota bucket and shows up in /v1/stats;
	// empty maps to "anonymous".
	Tenant string `json:"tenant,omitempty"`
	// Workload names a suite benchmark (workloads.Names); the program
	// is built at Config.Scale exactly as the experiment harness would.
	Workload string `json:"workload,omitempty"`
	// Program describes an inline program instead of a suite workload.
	Program *ProgramSpec `json:"program,omitempty"`
	// Config overrides RunConfig knobs; absent fields keep the
	// evaluation defaults.
	Config *ConfigSpec `json:"config,omitempty"`
	// Techniques lists the profiles to return (AllTechniques; default
	// ["tea"]).
	Techniques []string `json:"techniques,omitempty"`
}

// ProgramSpec parametrizes an inline program: a workload kernel built
// with an explicit iteration count and, for the case-study kernels,
// their tuning knobs. It is the service-safe subset of the
// program-construction API — requests choose parameters, never raw
// instructions, so every buildable program is one the simulator's
// guards already cover.
type ProgramSpec struct {
	// Kind is a suite workload name; "lbm" and "nab" additionally
	// accept their case-study knobs below.
	Kind string `json:"kind"`
	// Iters is the kernel iteration count (2 .. Config.MaxIters).
	Iters int `json:"iters"`
	// PrefetchDist inserts software prefetches this many iterations
	// ahead (lbm only; 0 disables, max 64).
	PrefetchDist int `json:"prefetch_dist,omitempty"`
	// FastMath replaces the serializing flag accesses with the
	// fast-math variant (nab only).
	FastMath bool `json:"fast_math,omitempty"`
}

// ConfigSpec is the RunConfig surface a job may override. Pointer
// fields distinguish "absent" (keep the default) from an explicit zero
// (rejected where invalid).
type ConfigSpec struct {
	// Interval is the sampling period in cycles (must be > 0).
	Interval *uint64 `json:"interval,omitempty"`
	// Jitter decorrelates the sample clock (default: interval/16).
	Jitter *uint64 `json:"jitter,omitempty"`
	// Seed drives the sample-clock jitter.
	Seed *uint64 `json:"seed,omitempty"`
	// Scale multiplies the workload's default iteration count
	// (0 < scale ≤ Config.MaxScale; ignored for inline programs, whose
	// Iters is explicit).
	Scale *float64 `json:"scale,omitempty"`
	// CheckpointInterval enables interval-parallel capture: the trace is
	// recorded as stitched segments from checkpoints taken every this
	// many committed instructions (0 or absent: serial capture; must be
	// ≥ 2 otherwise). Results are byte-identical either way; this is a
	// latency knob, not an accuracy knob.
	CheckpointInterval *uint64 `json:"checkpoint_interval,omitempty"`
	// CaptureWorkers bounds the per-capture segment worker pool (0 or
	// absent: GOMAXPROCS; must not be negative). Only meaningful with
	// checkpoint_interval set.
	CaptureWorkers *int `json:"capture_workers,omitempty"`
}

// AllTechniques lists the valid JobRequest.Techniques entries in
// evaluation order. "golden" is the per-cycle reference attribution;
// the rest are the sampled techniques of Figure 5.
var AllTechniques = []string{"golden", "tea", "nci-tea", "ibs", "spe", "ris"}

// job is one submitted profiling job and its mutable lifecycle state.
type job struct {
	id         string
	tenant     string
	w          workloads.Workload
	prog       *program.Program
	rc         analysis.RunConfig
	techniques []string

	// req is the validated request, retained for journaling; nil for
	// display-only shells restored from a broken journal payload.
	req *JobRequest
	// journaled gates this job's later journal records behind its
	// submitted record (closed once that append finished, successfully
	// or not); nil when journaling is off or the job was recovered.
	journaled chan struct{}

	mu        sync.Mutex
	changed   chan struct{} // closed and replaced on every state change
	status    Status
	err       *ErrorBody
	techErrs  map[string]*ErrorBody
	profiles  map[string][]byte
	cancelReq bool
	cancel    context.CancelFunc
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// JobView is the wire representation of a job (GET /v1/jobs/{id} and
// the stream's terminal record).
type JobView struct {
	// ID is the server-assigned job identifier ("j-000001"; IDs sort in
	// submission order).
	ID string `json:"id"`
	// Tenant is the quota bucket the job was charged to.
	Tenant string `json:"tenant"`
	// Status is the lifecycle state.
	Status Status `json:"status"`
	// Workload is the benchmark name the job profiles.
	Workload string `json:"workload"`
	// Program is the built program's name (for inline lbm jobs this
	// includes the prefetch distance, e.g. "lbm(pd=3)").
	Program string `json:"program"`
	// Techniques echoes the requested technique list after defaulting.
	Techniques []string `json:"techniques"`
	// QueueMs is the time from admission to a worker picking the job
	// up (0 while queued).
	QueueMs float64 `json:"queue_ms"`
	// RunMs is the time from pickup to the terminal state (0 until
	// finished).
	RunMs float64 `json:"run_ms"`
	// Error is the typed failure of a failed or canceled job.
	Error *ErrorBody `json:"error,omitempty"`
	// TechniqueErrors maps techniques whose replay probe failed to
	// their typed errors; the remaining Profiles are complete.
	TechniqueErrors map[string]*ErrorBody `json:"technique_errors,omitempty"`
	// Profiles maps each requested technique to its PICS profile.
	// Embedded here the document is re-encoded by the envelope encoder
	// (JSON-equivalent); GET /v1/jobs/{id}/profiles/{technique} serves
	// the byte-identical pics.WriteJSON artifact.
	Profiles map[string]json.RawMessage `json:"profiles,omitempty"`
}

// newJob wraps a validated request; the caller assigns the ID on
// admission.
func newJob(tenant string, w workloads.Workload, p *program.Program, rc analysis.RunConfig, techniques []string, now time.Time) *job {
	return &job{
		tenant:     tenant,
		w:          w,
		prog:       p,
		rc:         rc,
		techniques: techniques,
		changed:    make(chan struct{}),
		status:     StatusQueued,
		submitted:  now,
	}
}

// broadcastLocked wakes every stream watcher. Callers hold j.mu around
// the state change; the channel swap is part of the same critical
// section, the close happens after unlock via the returned func.
func (j *job) broadcastLocked() chan struct{} {
	ch := j.changed
	j.changed = make(chan struct{})
	return ch
}

// watch returns a channel closed at the job's next state change (or
// already closed if one raced the caller's snapshot).
func (j *job) watch() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.changed
}

// begin transitions queued → running and installs the worker's cancel
// hook. It reports false — finalizing the job as canceled — when a
// cancellation raced the pickup.
func (j *job) begin(now time.Time, cancel context.CancelFunc) bool {
	j.mu.Lock()
	if j.cancelReq {
		j.status = StatusCanceled
		j.err = &ErrorBody{Kind: kindCanceled, Status: statusForKind(kindCanceled), Message: "canceled before running"}
		j.finished = now
		ch := j.broadcastLocked()
		j.mu.Unlock()
		close(ch)
		return false
	}
	j.status = StatusRunning
	j.started = now
	j.cancel = cancel
	ch := j.broadcastLocked()
	j.mu.Unlock()
	close(ch)
	return true
}

// requestCancel asks the job to stop: queued jobs are canceled when a
// worker next drains them, running jobs get their context canceled. It
// reports false when the job is already terminal.
func (j *job) requestCancel() bool {
	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.cancelReq = true
	cancel := j.cancel
	ch := j.broadcastLocked()
	j.mu.Unlock()
	close(ch)
	if cancel != nil {
		cancel()
	}
	return true
}

// fail finalizes the job without profiles.
func (j *job) fail(now time.Time, body *ErrorBody, status Status) {
	j.mu.Lock()
	j.status = status
	j.err = body
	j.finished = now
	j.cancel = nil
	ch := j.broadcastLocked()
	j.mu.Unlock()
	close(ch)
}

// complete finalizes the job with its rendered profiles.
func (j *job) complete(now time.Time, profiles map[string][]byte, techErrs map[string]*ErrorBody) {
	j.mu.Lock()
	j.status = StatusDone
	j.profiles = profiles
	j.techErrs = techErrs
	j.finished = now
	j.cancel = nil
	ch := j.broadcastLocked()
	j.mu.Unlock()
	close(ch)
}

// profileBytes returns the stored pics.WriteJSON document for one
// technique, exactly as the writer produced it — the raw-profile
// endpoint's byte-identical contract. The second result reports whether
// the technique failed (with its typed error); ok is false while the
// job has no profiles at all.
func (j *job) profileBytes(name string) (doc []byte, techErr *ErrorBody, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terr := j.techErrs[name]; terr != nil {
		return nil, terr, true
	}
	doc, ok = j.profiles[name]
	return doc, nil, ok
}

// view snapshots the job for the wire; includeProfiles controls
// whether the (potentially large) profile documents ride along.
func (j *job) view(includeProfiles bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:         j.id,
		Tenant:     j.tenant,
		Status:     j.status,
		Workload:   j.w.Name,
		Program:    j.prog.Name,
		Techniques: j.techniques,
		Error:      j.err,
	}
	if !j.started.IsZero() {
		v.QueueMs = float64(j.started.Sub(j.submitted)) / float64(time.Millisecond)
	}
	if !j.finished.IsZero() && !j.started.IsZero() {
		v.RunMs = float64(j.finished.Sub(j.started)) / float64(time.Millisecond)
	}
	if len(j.techErrs) > 0 {
		v.TechniqueErrors = make(map[string]*ErrorBody, len(j.techErrs))
		for name, body := range j.techErrs {
			v.TechniqueErrors[name] = body
		}
	}
	if includeProfiles && j.profiles != nil {
		v.Profiles = make(map[string]json.RawMessage, len(j.profiles))
		for name, doc := range j.profiles {
			v.Profiles[name] = json.RawMessage(doc)
		}
	}
	return v
}

// buildJob validates a request into a runnable job. Every defect comes
// back as a typed *simerr.Error (ErrInvalidConfig or ErrInvalidProgram),
// which the HTTP layer maps to 400 — user input is rejected here or
// runs under the simulator's guards, never anywhere it could panic the
// server.
func (s *Server) buildJob(req *JobRequest) (*job, error) {
	rc := analysis.DefaultRunConfig()
	if req.Config != nil {
		if req.Config.Interval != nil {
			rc.Interval = *req.Config.Interval
			rc.Jitter = rc.Interval / 16
		}
		if req.Config.Jitter != nil {
			rc.Jitter = *req.Config.Jitter
		}
		if req.Config.Seed != nil {
			rc.Seed = *req.Config.Seed
		}
		if req.Config.Scale != nil {
			rc.Scale = *req.Config.Scale
		}
		if req.Config.CheckpointInterval != nil {
			rc.CheckpointInterval = *req.Config.CheckpointInterval
		}
		if req.Config.CaptureWorkers != nil {
			rc.CaptureWorkers = *req.Config.CaptureWorkers
		}
	}
	if rc.Interval == 0 {
		return nil, simerr.New(simerr.ErrInvalidConfig, simerr.Snapshot{},
			"config.interval must be positive")
	}
	if rc.CheckpointInterval == 1 {
		return nil, simerr.New(simerr.ErrInvalidConfig, simerr.Snapshot{},
			"config.checkpoint_interval must be 0 (serial) or >= 2")
	}
	if rc.CaptureWorkers < 0 {
		return nil, simerr.New(simerr.ErrInvalidConfig, simerr.Snapshot{},
			"config.capture_workers must not be negative")
	}
	if rc.Scale <= 0 || rc.Scale > s.cfg.MaxScale {
		return nil, simerr.New(simerr.ErrInvalidConfig, simerr.Snapshot{},
			"config.scale %v outside (0, %v]", rc.Scale, s.cfg.MaxScale)
	}

	techniques, err := normalizeTechniques(req.Techniques)
	if err != nil {
		return nil, err
	}

	var w workloads.Workload
	var p *program.Program
	switch {
	case req.Workload != "" && req.Program != nil:
		return nil, simerr.New(simerr.ErrInvalidConfig, simerr.Snapshot{},
			"workload and program are mutually exclusive")
	case req.Workload != "":
		w, err = workloads.ByName(req.Workload)
		if err != nil {
			return nil, err
		}
		p = w.Build(rc.Iters(w))
	case req.Program != nil:
		w, p, err = s.buildProgram(req.Program)
		if err != nil {
			return nil, err
		}
	default:
		return nil, simerr.New(simerr.ErrInvalidConfig, simerr.Snapshot{},
			"request needs a workload name or an inline program")
	}

	tenant := req.Tenant
	if tenant == "" {
		tenant = "anonymous"
	}
	j := newJob(tenant, w, p, rc, techniques, s.cfg.Now())
	// Retain the normalized request so the journal's submitted record
	// rebuilds this job identically on replay.
	norm := *req
	norm.Tenant = tenant
	norm.Techniques = techniques
	j.req = &norm
	return j, nil
}

// buildProgram materializes an inline ProgramSpec.
func (s *Server) buildProgram(spec *ProgramSpec) (workloads.Workload, *program.Program, error) {
	w, err := workloads.ByName(spec.Kind)
	if err != nil {
		return workloads.Workload{}, nil, err
	}
	if spec.Iters < 2 || spec.Iters > s.cfg.MaxIters {
		return workloads.Workload{}, nil, simerr.New(simerr.ErrInvalidProgram,
			simerr.Snapshot{Workload: spec.Kind},
			"program.iters %d outside [2, %d]", spec.Iters, s.cfg.MaxIters)
	}
	if spec.PrefetchDist != 0 && spec.Kind != "lbm" {
		return workloads.Workload{}, nil, simerr.New(simerr.ErrInvalidProgram,
			simerr.Snapshot{Workload: spec.Kind},
			"program.prefetch_dist applies only to kind \"lbm\"")
	}
	if spec.PrefetchDist < 0 || spec.PrefetchDist > 64 {
		return workloads.Workload{}, nil, simerr.New(simerr.ErrInvalidProgram,
			simerr.Snapshot{Workload: spec.Kind},
			"program.prefetch_dist %d outside [0, 64]", spec.PrefetchDist)
	}
	if spec.FastMath && spec.Kind != "nab" {
		return workloads.Workload{}, nil, simerr.New(simerr.ErrInvalidProgram,
			simerr.Snapshot{Workload: spec.Kind},
			"program.fast_math applies only to kind \"nab\"")
	}
	switch spec.Kind {
	case "lbm":
		return w, workloads.LBM(spec.Iters, spec.PrefetchDist), nil
	case "nab":
		return w, workloads.NAB(spec.Iters, spec.FastMath), nil
	default:
		return w, w.Build(spec.Iters), nil
	}
}

// normalizeTechniques validates and deduplicates the requested list;
// empty defaults to ["tea"].
func normalizeTechniques(req []string) ([]string, error) {
	if len(req) == 0 {
		return []string{"tea"}, nil
	}
	valid := make(map[string]bool, len(AllTechniques))
	for _, t := range AllTechniques {
		valid[t] = true
	}
	seen := make(map[string]bool, len(req))
	out := make([]string, 0, len(req))
	for _, t := range req {
		if !valid[t] {
			return nil, simerr.New(simerr.ErrInvalidConfig, simerr.Snapshot{Technique: t},
				"unknown technique %q (valid: %v)", t, AllTechniques)
		}
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out, nil
}

// profileByName maps a technique name to its profile in a finished run.
func profileByName(br *analysis.BenchRun, name string) *pics.Profile {
	switch name {
	case "golden":
		return br.Golden
	case "tea":
		return br.TEA
	case "nci-tea":
		return br.NCITEA
	case "ibs":
		return br.IBS
	case "spe":
		return br.SPE
	case "ris":
		return br.RIS
	}
	return nil
}

// renderProfiles serializes each requested technique's profile with the
// same writer the CLI harness uses, so server results are
// byte-identical to a local analysis.RunProgram. Techniques that failed
// during replay land in the error map instead; a serialization failure
// (an internal bug, not user input) fails the job.
func renderProfiles(br *analysis.BenchRun, techniques []string) (map[string][]byte, map[string]*ErrorBody, error) {
	profiles := make(map[string][]byte, len(techniques))
	techErrs := make(map[string]*ErrorBody)
	for _, name := range techniques {
		if terr, bad := br.Errors[name]; bad {
			techErrs[name] = errorBody(terr)
			continue
		}
		p := profileByName(br, name)
		if p == nil {
			return nil, nil, simerr.New(simerr.ErrInternal, simerr.Snapshot{Technique: name},
				"finished run holds no %q profile", name)
		}
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			return nil, nil, err
		}
		profiles[name] = buf.Bytes()
	}
	return profiles, techErrs, nil
}
