// Durability layer: the service's write-ahead journaling and crash
// recovery, layered over internal/journal.
//
// With Config.JournalDir set, every job state transition is appended to
// the WAL before the next transition for that job can be journaled
// (submissions gate later records through job.journaled, so replay
// never sees "running" before "submitted"), and terminal profiles are
// persisted as content-verified result files. On startup New replays
// the WAL: terminal jobs are restored with their exact pre-crash bytes
// (the raw-profile endpoint serves the same document after a kill -9),
// and jobs that were queued or running when the process died are
// re-enqueued — the tracestore's capture dedup makes the re-run
// idempotent, so an interrupted job completes with profiles
// byte-identical to an uninterrupted one.
//
// Journaling failure is never a job failure. A runtime append or
// result-write error flips the server into degraded memory-only mode:
// the incident is logged and counted, /v1/healthz reports the mode,
// /v1/readyz goes not-ready, and the server keeps serving correct
// bytes from memory. The one thing the service never does is serve
// wrong data — a result file that fails its digest on recovery
// resurfaces the job as failed with a typed error, not as a 500 and
// not as silently different bytes.
package serve

import (
	"encoding/json"
	"strconv"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/journal"
	"repro/internal/program"
	"repro/internal/simerr"
	"repro/internal/workloads"
	"repro/internal/xiter"
)

// Journal record types. The journal package is semantics-free; these
// strings are the service's replay contract (a WAL is only readable by
// the serve version that wrote it, policed by journal.FormatVersion).
const (
	recSubmitted = "submitted" // Data: submitData
	recRunning   = "running"   // no Data
	recCancel    = "cancel"    // no Data (client cancel request)
	recDone      = "done"      // Data: terminalData (Results set)
	recFailed    = "failed"    // Data: terminalData (Error set)
	recCanceled  = "canceled"  // Data: terminalData (Error set)
)

// submitData is the recSubmitted payload: the validated request,
// sufficient to rebuild the job deterministically on replay.
type submitData struct {
	Req JobRequest `json:"req"`
}

// terminalData is the payload of the three terminal record types.
type terminalData struct {
	// Error is the typed failure of a failed/canceled job.
	Error *ErrorBody `json:"error,omitempty"`
	// TechErrs carries per-technique replay failures of a done job.
	TechErrs map[string]*ErrorBody `json:"technique_errors,omitempty"`
	// Results points each successful technique at its verified result
	// file.
	Results map[string]journal.ResultRef `json:"results,omitempty"`
}

// RecoveryStats reports what journal replay found at startup
// (surfaced through /v1/stats).
type RecoveryStats struct {
	// Replayed counts intact WAL records folded at startup.
	Replayed int `json:"replayed"`
	// TornBytes is the size of the torn tail truncated on open.
	TornBytes int64 `json:"torn_bytes"`
	// RestoredDone / RestoredFailed / RestoredCanceled count terminal
	// jobs restored with their pre-crash state.
	RestoredDone     int `json:"restored_done"`
	RestoredFailed   int `json:"restored_failed"`
	RestoredCanceled int `json:"restored_canceled"`
	// Requeued counts interrupted (queued or running) jobs put back on
	// the queue.
	Requeued int `json:"requeued"`
	// DuplicateTerminals counts terminal records for already-terminal
	// jobs (ignored; the first terminal record wins).
	DuplicateTerminals int `json:"duplicate_terminals"`
	// UnknownJobRecords counts records referencing a job with no
	// submitted record (skipped).
	UnknownJobRecords int `json:"unknown_job_records"`
	// MalformedRecords counts records whose payload or type was
	// unintelligible (skipped; framing-level corruption fails Open
	// instead).
	MalformedRecords int `json:"malformed_records"`
	// ResultLoadFailures counts done jobs restored as failed because a
	// result file was missing or failed verification.
	ResultLoadFailures int `json:"result_load_failures"`
}

// durability is the journaling state block (guarded by Server.mu).
type durability struct {
	degraded       bool
	degradedReason string
	appends        uint64
	appendErrors   uint64
	resultWrites   uint64
	resultErrors   uint64
	recovery       RecoveryStats
}

// Service modes, reported by /v1/healthz, /v1/readyz, and /v1/stats.
const (
	// ModeDurable: journaling active; restarts recover all jobs.
	ModeDurable = "durable"
	// ModeMemoryOnly: no journal configured; a restart loses all jobs.
	ModeMemoryOnly = "memory-only"
	// ModeDegraded: journaling was active but hit a disk fault and was
	// switched off; the server keeps serving from memory.
	ModeDegraded = "degraded"
)

// Mode reports the durability mode.
func (s *Server) Mode() string {
	if s.journal == nil {
		return ModeMemoryOnly
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur.degraded {
		return ModeDegraded
	}
	return ModeDurable
}

// Close releases the journal (if any). The worker pool is stopped
// separately by canceling Run's context.
func (s *Server) Close() error {
	if s.journal == nil {
		return nil
	}
	return s.journal.Close()
}

// degrade switches journaling off after a runtime disk fault. The
// server continues memory-only: jobs keep running and results stay
// correct, but a restart from here loses post-degradation state (the
// operator signal is /v1/readyz + the stats counters).
func (s *Server) degrade(reason string) {
	s.mu.Lock()
	already := s.dur.degraded
	if !already {
		s.dur.degraded = true
		s.dur.degradedReason = reason
	}
	s.mu.Unlock()
	if !already {
		s.cfg.Logf("teaserve: journal fault, degrading to memory-only mode: %s", reason)
	}
}

// journalActive reports whether appends should be attempted.
func (s *Server) journalActive() bool {
	if s.journal == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.dur.degraded
}

// journalAppend appends one record for j, waiting for the job's
// submitted record to commit first so per-job ordering holds in the
// WAL. Failures degrade the server and are never surfaced to the job.
func (s *Server) journalAppend(j *job, typ string, data any) {
	if !s.journalActive() {
		return
	}
	if j.journaled != nil && typ != recSubmitted {
		<-j.journaled
	}
	var raw json.RawMessage
	if data != nil {
		b, err := json.Marshal(data)
		if err != nil {
			s.degrade("encode " + typ + " record: " + err.Error())
			return
		}
		raw = b
	}
	err := s.journal.Append(journal.Record{
		Type:       typ,
		JobID:      j.id,
		TimeUnixMs: s.cfg.Now().UnixMilli(),
		Data:       raw,
	})
	s.mu.Lock()
	s.dur.appends++
	if err != nil {
		s.dur.appendErrors++
	}
	s.mu.Unlock()
	if err != nil {
		s.degrade("append " + typ + " record: " + err.Error())
	}
}

// journalSubmitted commits the job's submitted record and releases the
// per-job ordering gate (always, so a degraded append never deadlocks
// later records).
func (s *Server) journalSubmitted(j *job) {
	if j.journaled != nil {
		defer close(j.journaled)
	}
	if j.req == nil {
		return
	}
	s.journalAppend(j, recSubmitted, submitData{Req: *j.req})
}

// journalDone persists a completed job: result files first (verified
// refs), then the terminal record pointing at them. Any write failure
// degrades and skips the record entirely — replay will re-enqueue the
// job, and capture dedup makes that re-run cheap and byte-identical.
func (s *Server) journalDone(j *job, profiles map[string][]byte, techErrs map[string]*ErrorBody) {
	if !s.journalActive() {
		return
	}
	refs := make(map[string]journal.ResultRef, len(profiles))
	for _, name := range xiter.SortedKeys(profiles) {
		ref, err := s.journal.WriteResult(j.id, name, profiles[name])
		s.mu.Lock()
		s.dur.resultWrites++
		if err != nil {
			s.dur.resultErrors++
		}
		s.mu.Unlock()
		if err != nil {
			s.degrade("write result " + j.id + "/" + name + ": " + err.Error())
			return
		}
		refs[name] = ref
	}
	s.journalAppend(j, recDone, terminalData{TechErrs: techErrs, Results: refs})
}

// journalTerminal records a failed or canceled outcome.
func (s *Server) journalTerminal(j *job, status Status, body *ErrorBody) {
	typ := recFailed
	if status == StatusCanceled {
		typ = recCanceled
	}
	s.journalAppend(j, typ, terminalData{Error: body})
}

// replayedJob is the folded per-job state during WAL replay.
type replayedJob struct {
	id        string
	req       *JobRequest
	running   bool
	cancelReq bool
	termType  string
	term      *terminalData
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// restore folds the recovered WAL records into the registry and
// returns the interrupted jobs to re-enqueue. It runs inside New,
// before the server is shared, so it touches fields without locks.
func (s *Server) restore(rec *journal.Recovery) []*job {
	s.dur.recovery.TornBytes = rec.TornBytes

	byID := make(map[string]*replayedJob)
	var order []string
	for _, r := range rec.Records {
		s.dur.recovery.Replayed++
		rj := byID[r.JobID]
		switch r.Type {
		case recSubmitted:
			var d submitData
			if err := json.Unmarshal(r.Data, &d); err != nil {
				s.dur.recovery.MalformedRecords++
				continue
			}
			if rj == nil {
				rj = &replayedJob{id: r.JobID}
				byID[r.JobID] = rj
				order = append(order, r.JobID)
			}
			rj.req = &d.Req
			rj.submitted = time.UnixMilli(r.TimeUnixMs)
		case recRunning:
			if rj == nil {
				s.dur.recovery.UnknownJobRecords++
				continue
			}
			rj.running = true
			rj.started = time.UnixMilli(r.TimeUnixMs)
		case recCancel:
			if rj == nil {
				s.dur.recovery.UnknownJobRecords++
				continue
			}
			rj.cancelReq = true
		case recDone, recFailed, recCanceled:
			if rj == nil {
				s.dur.recovery.UnknownJobRecords++
				continue
			}
			if rj.term != nil {
				s.dur.recovery.DuplicateTerminals++
				continue
			}
			var d terminalData
			if err := json.Unmarshal(r.Data, &d); err != nil {
				s.dur.recovery.MalformedRecords++
				continue
			}
			rj.termType = r.Type
			rj.term = &d
			rj.finished = time.UnixMilli(r.TimeUnixMs)
		default:
			s.dur.recovery.MalformedRecords++
		}
	}

	var requeue []*job
	for _, id := range order {
		rj := byID[id]
		s.bumpSeq(id)
		j := s.restoreOne(rj, &requeue)
		if j == nil {
			continue
		}
		j.id = id
		j.submitted = rj.submitted
		j.started = rj.started
		j.finished = rj.finished
		s.jobs[id] = j
		s.stats.byStatus[j.status]++
		s.tenantStatsLocked(j.tenant).Submitted++
		if j.status.Terminal() {
			s.finished = append(s.finished, id)
		}
	}
	for len(s.finished) > s.cfg.KeepFinished {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
	return requeue
}

// restoreOne materializes one replayed job. Interrupted jobs are
// appended to requeue; terminal jobs come back with their journaled
// outcome — a done job whose result files fail verification is
// restored as failed with the typed load error, never served with
// unverified bytes.
func (s *Server) restoreOne(rj *replayedJob, requeue *[]*job) *job {
	j, buildErr := s.rebuild(rj)

	switch {
	case rj.term == nil && rj.cancelReq:
		// Canceled while queued/running, then crashed before the
		// terminal record: finalize as canceled.
		j.status = StatusCanceled
		j.err = &ErrorBody{Kind: kindCanceled, Status: statusForKind(kindCanceled),
			Message: "canceled before the crash; finalized on recovery"}
		s.dur.recovery.RestoredCanceled++
	case rj.term == nil:
		// Interrupted mid-queue or mid-run: run it (again). Capture
		// dedup makes the re-run idempotent.
		if buildErr != nil {
			j.status = StatusFailed
			j.err = errorBody(buildErr)
			s.dur.recovery.RestoredFailed++
			return j
		}
		j.status = StatusQueued
		*requeue = append(*requeue, j)
		s.dur.recovery.Requeued++
	case rj.termType == recDone:
		profiles := make(map[string][]byte, len(rj.term.Results))
		var loadErr error
		for _, name := range xiter.SortedKeys(rj.term.Results) {
			data, err := s.journal.ReadResult(rj.term.Results[name])
			if err != nil {
				loadErr = err
				break
			}
			profiles[name] = data
		}
		if loadErr != nil {
			j.status = StatusFailed
			j.err = errorBody(simerr.Wrap(simerr.ErrDecode, simerr.Snapshot{}, loadErr,
				"job %s recovered as done but its result files fail verification", rj.id))
			s.dur.recovery.ResultLoadFailures++
			s.dur.recovery.RestoredFailed++
			return j
		}
		j.status = StatusDone
		j.profiles = profiles
		j.techErrs = rj.term.TechErrs
		s.dur.recovery.RestoredDone++
	case rj.termType == recFailed:
		j.status = StatusFailed
		j.err = rj.term.Error
		s.dur.recovery.RestoredFailed++
	default: // recCanceled
		j.status = StatusCanceled
		j.err = rj.term.Error
		s.dur.recovery.RestoredCanceled++
	}
	return j
}

// rebuild reconstructs a runnable job from its journaled request. When
// validation fails (limits tightened across the restart, or a
// malformed request payload), it returns a display-only shell plus the
// error — terminal jobs only need the shell; interrupted jobs become
// failed-typed.
func (s *Server) rebuild(rj *replayedJob) (*job, error) {
	if rj.req == nil {
		return s.shellJob(rj), simerr.New(simerr.ErrDecode, simerr.Snapshot{},
			"journal holds no request payload for job %s", rj.id)
	}
	j, err := s.buildJob(rj.req)
	if err != nil {
		return s.shellJob(rj), err
	}
	return j, nil
}

// shellJob builds a minimal displayable job for records whose request
// cannot be rebuilt. It is never enqueued.
func (s *Server) shellJob(rj *replayedJob) *job {
	var req JobRequest
	if rj.req != nil {
		req = *rj.req
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "anonymous"
	}
	name := req.Workload
	if name == "" && req.Program != nil {
		name = req.Program.Kind
	}
	if name == "" {
		name = "unknown"
	}
	j := newJob(tenant, workloads.Workload{Name: name}, &program.Program{Name: name},
		analysis.RunConfig{}, req.Techniques, s.cfg.Now())
	j.req = rj.req
	return j
}

// bumpSeq advances the ID sequence past a recovered job ID so new
// submissions never collide with journaled ones.
func (s *Server) bumpSeq(id string) {
	num, ok := strings.CutPrefix(id, "j-")
	if !ok {
		return
	}
	n, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return
	}
	if n > s.seq {
		s.seq = n
	}
}
