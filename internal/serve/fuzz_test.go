package serve_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/serve"
)

// FuzzSubmit is the service's chaos harness at the HTTP boundary: no
// request body, however malformed, may panic the server or escape the
// JSON error contract. Valid bodies are admitted (202) or shed (429
// once the queue fills — there are no workers draining it here); every
// other outcome must be a documented 4xx with a decodable error
// envelope. A panic inside the handler fails the fuzz run outright
// because it propagates through ServeHTTP into the test binary.
func FuzzSubmit(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"workload":"mcf"}`,
		`{"tenant":"t0","workload":"bwaves","techniques":["tea","ibs"],"config":{"interval":128,"jitter":8,"seed":7,"scale":0.5}}`,
		`{"program":{"kind":"lbm","iters":64,"prefetch_dist":3}}`,
		`{"program":{"kind":"nab","iters":64,"fast_math":true}}`,
		`{"workload":"mcf","config":{"scale":-1}}`,
		`{"workload":"mcf","config":{"interval":0}}`,
		`{"workload":"mcf","techniques":["perf"]}`,
		`{"workload":"mcf","unknown_field":true}`,
		`{"workload":"mcf"} trailing`,
		`[1,2,3]`,
		`"just a string"`,
		`{"workload":` + strings.Repeat("[", 200) + strings.Repeat("]", 200) + `}`,
		`{"config":{"interval":18446744073709551615}}`,
		`{"config":{"scale":1e308}}`,
		`{"config":{"scale":null},"workload":"mcf"}`,
		`{"program":{"kind":"mcf","iters":-5}}`,
		"\x00\xff\xfe",
		`{"tenant":"` + strings.Repeat("é", 300) + `","workload":"mcf"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	// One server for the whole run; no worker pool, so admitted jobs
	// accumulate until QueueDepth and then every valid body is a 429 —
	// the fuzzer keeps exercising both the accept and shed paths early
	// on and the full-queue path forever after, without running any
	// simulations.
	s, err := serve.New(serve.Config{QueueDepth: 8, MaxBodyBytes: 1 << 16})
	if err != nil {
		f.Fatalf("serve.New: %v", err)
	}
	handler := s.Handler()

	allowed := map[int]bool{
		http.StatusAccepted:              true,
		http.StatusBadRequest:            true,
		http.StatusRequestEntityTooLarge: true,
		http.StatusTooManyRequests:       true,
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(string(body)))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)

		if !allowed[rec.Code] {
			t.Fatalf("POST /v1/jobs answered %d for body %q", rec.Code, body)
		}
		if rec.Code == http.StatusAccepted {
			var sub serve.SubmitResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil || sub.ID == "" {
				t.Fatalf("202 with undecodable body %q: %v", rec.Body.Bytes(), err)
			}
			return
		}
		var env struct {
			Error *serve.ErrorBody `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Error == nil {
			t.Fatalf("%d with undecodable error envelope %q: %v", rec.Code, rec.Body.Bytes(), err)
		}
		if env.Error.Kind == "" || env.Error.Status != rec.Code {
			t.Fatalf("error envelope %+v does not match response code %d", env.Error, rec.Code)
		}
		if rec.Code == http.StatusTooManyRequests && rec.Header().Get("Retry-After") == "" {
			t.Fatalf("429 without Retry-After header")
		}
	})
}
