package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/journal"
	"repro/internal/serve"
	"repro/internal/workloads"
)

// journaledServer starts a server with a journal rooted at dir.
func journaledServer(t *testing.T, dir string, cfg serve.Config) *testServer {
	t.Helper()
	cfg.JournalDir = dir
	return startServer(t, cfg)
}

// statsView fetches and decodes /v1/stats.
func statsView(t *testing.T, ts *testServer) serve.StatsView {
	t.Helper()
	resp, data := getJSON(t, ts.url("/v1/stats"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: got %d; body: %s", resp.StatusCode, data)
	}
	var v serve.StatsView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	return v
}

// rawJournal opens dir's journal directly (for tests that hand-craft
// WAL contents) and closes it again.
func writeJournalRecords(t *testing.T, dir string, recs ...journal.Record) {
	t.Helper()
	j, _, err := journal.Open(dir, nil)
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatalf("journal.Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("journal.Close: %v", err)
	}
}

// submitReq is a recSubmitted payload as serve writes it — hand-built
// here to pin the replay wire format.
func submitReq(tenant string) json.RawMessage {
	return json.RawMessage(`{"req":{"tenant":"` + tenant +
		`","workload":"mcf","config":{"scale":0.05},"techniques":["tea"]}}`)
}

// TestCrashRecoveryByteIdentical is the headline property in-process:
// finish a job on a journaled server, restart on the same directory,
// and the raw profile endpoint serves the exact same bytes.
func TestCrashRecoveryByteIdentical(t *testing.T) {
	dir := t.TempDir()
	ts := journaledServer(t, dir, serve.Config{Workers: 2})
	id := submit(t, ts, `{"workload":"mcf","config":{"scale":0.05},"techniques":["tea","ibs"]}`)
	v := await(t, ts, id)
	if v.Status != serve.StatusDone {
		t.Fatalf("job ended %s: %+v", v.Status, v.Error)
	}
	pre := map[string][]byte{}
	for _, tech := range []string{"tea", "ibs"} {
		resp, data := getJSON(t, ts.url("/v1/jobs/"+id+"/profiles/"+tech))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pre-crash profile %s: %d", tech, resp.StatusCode)
		}
		pre[tech] = data
	}
	ts.srv.Close() // release the WAL handle; the test server teardown is the "crash"

	ts2 := journaledServer(t, dir, serve.Config{Workers: 2})
	v2 := await(t, ts2, id)
	if v2.Status != serve.StatusDone {
		t.Fatalf("recovered job is %s: %+v", v2.Status, v2.Error)
	}
	for _, tech := range []string{"tea", "ibs"} {
		resp, data := getJSON(t, ts2.url("/v1/jobs/"+id+"/profiles/"+tech))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("recovered profile %s: %d", tech, resp.StatusCode)
		}
		if !bytes.Equal(data, pre[tech]) {
			t.Fatalf("recovered %s profile differs from pre-crash bytes", tech)
		}
	}
	st := statsView(t, ts2)
	if st.Durability.Recovery.RestoredDone != 1 {
		t.Fatalf("recovery stats: %+v; want 1 restored done job", st.Durability.Recovery)
	}
	if st.Durability.Mode != serve.ModeDurable {
		t.Fatalf("mode = %q, want %q", st.Durability.Mode, serve.ModeDurable)
	}
}

// TestRecoveryRequeuesInterrupted: a job journaled as submitted+running
// but never terminal (killed mid-run) is re-enqueued on startup and
// completes with profiles byte-identical to an uninterrupted local run.
func TestRecoveryRequeuesInterrupted(t *testing.T) {
	dir := t.TempDir()
	writeJournalRecords(t, dir,
		journal.Record{Type: "submitted", JobID: "j-000007", TimeUnixMs: 1000, Data: submitReq("t0")},
		journal.Record{Type: "running", JobID: "j-000007", TimeUnixMs: 2000},
	)

	ts := journaledServer(t, dir, serve.Config{Workers: 2})
	v := await(t, ts, "j-000007")
	if v.Status != serve.StatusDone {
		t.Fatalf("requeued job ended %s: %+v", v.Status, v.Error)
	}
	resp, got := getJSON(t, ts.url("/v1/jobs/j-000007/profiles/tea"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile after requeue: %d", resp.StatusCode)
	}
	rc := analysis.DefaultRunConfig()
	rc.Scale = 0.05
	w, err := workloads.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	want := localProfiles(t, w, rc, []string{"tea"})["tea"]
	if !bytes.Equal(got, want) {
		t.Fatal("re-run profile differs from an uninterrupted local run")
	}
	st := statsView(t, ts)
	if st.Durability.Recovery.Requeued != 1 {
		t.Fatalf("recovery stats: %+v; want 1 requeued job", st.Durability.Recovery)
	}
	// New submissions must not collide with the recovered ID space.
	id := submit(t, ts, `{"workload":"mcf","config":{"scale":0.05}}`)
	if id <= "j-000007" {
		t.Fatalf("post-recovery ID %s does not advance past recovered j-000007", id)
	}
}

// TestRecoveryEdgeCases covers the replay state machine's tolerance:
// duplicate terminal records (first wins), records for unknown job IDs
// (skipped), and a cancel-before-crash (finalized canceled).
func TestRecoveryEdgeCases(t *testing.T) {
	dir := t.TempDir()
	failedBody := json.RawMessage(`{"error":{"kind":"runaway","status":422,"message":"boom"}}`)
	writeJournalRecords(t, dir,
		// j-000001: failed twice (a crash between append and ack could
		// produce a re-run that fails again) — first record wins.
		journal.Record{Type: "submitted", JobID: "j-000001", TimeUnixMs: 1, Data: submitReq("a")},
		journal.Record{Type: "running", JobID: "j-000001", TimeUnixMs: 2},
		journal.Record{Type: "failed", JobID: "j-000001", TimeUnixMs: 3, Data: failedBody},
		journal.Record{Type: "failed", JobID: "j-000001", TimeUnixMs: 4, Data: failedBody},
		// Records for a job that was never submitted: skipped, counted.
		journal.Record{Type: "running", JobID: "j-000099", TimeUnixMs: 5},
		journal.Record{Type: "done", JobID: "j-000099", TimeUnixMs: 6, Data: json.RawMessage(`{}`)},
		// j-000002: cancel requested, crash before the terminal record.
		journal.Record{Type: "submitted", JobID: "j-000002", TimeUnixMs: 7, Data: submitReq("b")},
		journal.Record{Type: "cancel", JobID: "j-000002", TimeUnixMs: 8},
		// An unrecognized record type from a hypothetical future writer:
		// skipped, counted, not fatal.
		journal.Record{Type: "annotation", JobID: "j-000001", TimeUnixMs: 9},
	)

	ts := journaledServer(t, dir, serve.Config{Workers: 1})

	v := await(t, ts, "j-000001")
	if v.Status != serve.StatusFailed || v.Error == nil || v.Error.Kind != "runaway" {
		t.Fatalf("j-000001 restored as %s / %+v; want failed/runaway", v.Status, v.Error)
	}
	v2 := await(t, ts, "j-000002")
	if v2.Status != serve.StatusCanceled {
		t.Fatalf("j-000002 restored as %s; want canceled", v2.Status)
	}
	if resp, _ := getJSON(t, ts.url("/v1/jobs/j-000099")); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown-job records materialized a job: %d", resp.StatusCode)
	}

	r := statsView(t, ts).Durability.Recovery
	if r.DuplicateTerminals != 1 {
		t.Errorf("DuplicateTerminals = %d, want 1 (%+v)", r.DuplicateTerminals, r)
	}
	if r.UnknownJobRecords != 2 {
		t.Errorf("UnknownJobRecords = %d, want 2 (%+v)", r.UnknownJobRecords, r)
	}
	if r.MalformedRecords != 1 {
		t.Errorf("MalformedRecords = %d, want 1 for the unknown type (%+v)", r.MalformedRecords, r)
	}
	if r.RestoredFailed != 1 || r.RestoredCanceled != 1 {
		t.Errorf("restored failed=%d canceled=%d, want 1/1 (%+v)", r.RestoredFailed, r.RestoredCanceled, r)
	}
}

// TestRecoveryMissingResultFile: a done job whose result file vanished
// (or was corrupted) must come back failed with a typed error — never
// a panic, never a 500 on the job view, never unverified bytes.
func TestRecoveryMissingResultFile(t *testing.T) {
	for _, tc := range []struct {
		name     string
		sabotage func(t *testing.T, dir, id string)
	}{
		{"missing", func(t *testing.T, dir, id string) {
			path := filepath.Join(dir, "results", id+"-tea.bin")
			if err := os.Remove(path); err != nil {
				t.Fatalf("remove result: %v", err)
			}
		}},
		{"corrupted", func(t *testing.T, dir, id string) {
			path := filepath.Join(dir, "results", id+"-tea.bin")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read result: %v", err)
			}
			data[len(data)/2] ^= 0x01
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatalf("corrupt result: %v", err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			ts := journaledServer(t, dir, serve.Config{Workers: 1})
			id := submit(t, ts, `{"workload":"mcf","config":{"scale":0.05}}`)
			if v := await(t, ts, id); v.Status != serve.StatusDone {
				t.Fatalf("job ended %s", v.Status)
			}
			ts.srv.Close()
			tc.sabotage(t, dir, id)

			ts2 := journaledServer(t, dir, serve.Config{Workers: 1})
			resp, data := getJSON(t, ts2.url("/v1/jobs/"+id))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("job view after sabotage: %d %s", resp.StatusCode, data)
			}
			var v serve.JobView
			if err := json.Unmarshal(data, &v); err != nil {
				t.Fatalf("decode view: %v", err)
			}
			if v.Status != serve.StatusFailed || v.Error == nil || v.Error.Kind != "decode" {
				t.Fatalf("restored as %s / %+v; want failed with kind decode", v.Status, v.Error)
			}
			r := statsView(t, ts2).Durability.Recovery
			if r.ResultLoadFailures != 1 || r.RestoredFailed != 1 {
				t.Fatalf("recovery stats %+v; want 1 result load failure restored failed", r)
			}
		})
	}
}

// TestRecoveryEmptyAndAbsentJournal: a journal directory that does not
// exist yet, and one holding an empty WAL, both come up clean.
func TestRecoveryEmptyAndAbsentJournal(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "not-yet-created", "journal")
	ts := journaledServer(t, dir, serve.Config{Workers: 1})
	st := statsView(t, ts)
	if st.Durability.Mode != serve.ModeDurable || st.Durability.Recovery.Replayed != 0 {
		t.Fatalf("fresh journal: %+v", st.Durability)
	}
	// A job runs normally and is journaled.
	id := submit(t, ts, `{"workload":"mcf","config":{"scale":0.05}}`)
	if v := await(t, ts, id); v.Status != serve.StatusDone {
		t.Fatalf("job ended %s", v.Status)
	}
	ts.srv.Close()

	ts2 := journaledServer(t, dir, serve.Config{Workers: 1})
	if got := statsView(t, ts2).Durability.Recovery.RestoredDone; got != 1 {
		t.Fatalf("restored done = %d, want 1", got)
	}
}

// TestHealthzReadyz pins the liveness/readiness split: healthz is
// always 200 and carries the mode; readyz reflects queue saturation.
func TestHealthzReadyz(t *testing.T) {
	// Memory-only server: healthy, ready, mode reported.
	ts := startServer(t, serve.Config{Workers: 1})
	resp, data := getJSON(t, ts.url("/v1/healthz"))
	var hv serve.HealthView
	if resp.StatusCode != http.StatusOK || json.Unmarshal(data, &hv) != nil {
		t.Fatalf("healthz: %d %s", resp.StatusCode, data)
	}
	if hv.Status != "ok" || hv.Mode != serve.ModeMemoryOnly {
		t.Fatalf("healthz body %+v; want ok/memory-only", hv)
	}
	resp, _ = getJSON(t, ts.url("/v1/readyz"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz on idle server: %d", resp.StatusCode)
	}

	// Journaled server reports durable mode.
	ts2 := journaledServer(t, t.TempDir(), serve.Config{Workers: 1})
	resp, data = getJSON(t, ts2.url("/v1/healthz"))
	if json.Unmarshal(data, &hv) != nil || hv.Mode != serve.ModeDurable {
		t.Fatalf("journaled healthz: %d %s", resp.StatusCode, data)
	}

	// A saturated queue flips readiness (workers not running), while
	// liveness stays 200.
	ts3 := startQueueOnly(t, serve.Config{QueueDepth: 1})
	submit(t, ts3, `{"workload":"mcf","config":{"scale":0.05}}`)
	resp, data = getJSON(t, ts3.url("/v1/readyz"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz on saturated queue: %d %s", resp.StatusCode, data)
	}
	var rv serve.ReadyView
	if err := json.Unmarshal(data, &rv); err != nil || rv.Ready || rv.Reason == "" {
		t.Fatalf("readyz body %s: %v", data, err)
	}
	if resp, _ := getJSON(t, ts3.url("/v1/healthz")); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under saturation: %d", resp.StatusCode)
	}
}
