package cpu

import (
	"context"
	"fmt"

	"repro/internal/branch"
	"repro/internal/emu"
	"repro/internal/events"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/simerr"
)

const invalidLine = ^uint64(0)

// rasEntries is the return-address-stack depth.
const rasEntries = 16

// Stats aggregates core-level statistics for one run.
type Stats struct {
	Cycles      uint64
	Committed   uint64
	StateCycles [events.NumCommitStates]uint64
	Mispredicts uint64
	BTBMisses   uint64
	Violations  uint64
	Squashed    uint64
	Flushes     uint64
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// CPU is the cycle-level out-of-order core.
type CPU struct {
	cfg    Config
	prog   *program.Program
	stream *emu.Stream
	hier   *mem.Hierarchy
	bp     *branch.Predictor
	probes []Probe

	cycle      uint64
	rob        *rob
	lastWriter [isa.NumRegs]*UOp

	iqInt, iqMem, iqFP []*UOp
	lq, sq             []*UOp
	drainQ             []*UOp
	pendingLoads       []*UOp

	fetchBuf    []*UOp
	fetchNext   *emu.Inst
	fetchResume uint64
	awaitBranch *UOp
	pendDRL1    bool
	pendDRTLB   bool
	lastLine    uint64
	streamDry   bool

	lastRef       Ref // last committed µop (final PSV)
	haveLast      bool
	flushActive   bool
	blockDispatch *UOp

	// freeUOps recycles µop storage: a µop returns to the pool the
	// moment it leaves the pipeline (commit for non-stores, SQ drain for
	// stores, squash otherwise). Probes therefore only ever see
	// value-typed Refs. squashScratch is reused across squashes.
	freeUOps      []*UOp
	squashScratch []*UOp

	// ras is the return-address stack: call sites push their return
	// index at fetch, returns pop their prediction. Squashes can leave
	// it stale (as in real front-ends), causing return mispredicts.
	ras []int
	// btb is a direct-mapped branch target buffer (tag per entry);
	// taken branches whose tag mismatches pay a resteer bubble.
	btb []uint64

	divBusyUntil  uint64
	fdivBusyUntil uint64

	info  CycleInfo
	Stats Stats

	// MaxCycles aborts runaway simulations with simerr.ErrRunaway.
	MaxCycles uint64
	// WatchdogCommitCycles aborts runs that stop committing with
	// simerr.ErrDeadlock (the forward-progress watchdog).
	WatchdogCommitCycles uint64
	// lastCommitCycle is the watchdog anchor: the most recent cycle an
	// instruction committed (0 before the first commit).
	lastCommitCycle uint64
	// err latches the typed failure that stopped the run; Step returns
	// false forever once it is set.
	err *simerr.Error
	// SampleOverheadCycles, when nonzero, stalls the whole pipeline for
	// that many cycles each time a probe requests an interrupt — the
	// mechanism behind the sampling performance-overhead measurement.
	SampleOverheadCycles uint64
	pendingOverhead      uint64
}

// New builds a core for the given program with a private memory system.
func New(cfg Config, p *program.Program) *CPU {
	return NewWithHierarchy(cfg, p, mem.NewHierarchy(cfg.Mem))
}

// NewWithHierarchy builds a core over an existing memory system —
// multi-core systems pass per-core hierarchies that share an LLC and
// DRAM (mem.NewHierarchyShared).
func NewWithHierarchy(cfg Config, p *program.Program, h *mem.Hierarchy) *CPU {
	c := &CPU{
		cfg:                  cfg,
		prog:                 p,
		stream:               emu.NewStream(p),
		hier:                 h,
		bp:                   branch.New(cfg.BP),
		rob:                  newROB(cfg.ROBEntries),
		lastLine:             invalidLine,
		MaxCycles:            cfg.MaxCycles,
		WatchdogCommitCycles: cfg.WatchdogCommitCycles,
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = DefaultMaxCycles
	}
	if c.WatchdogCommitCycles == 0 {
		c.WatchdogCommitCycles = DefaultWatchdogCommitCycles
	}
	return c
}

// Default guard thresholds. The longest legitimate commit gap on the
// Table 2 core is a few hundred cycles (a DRAM-latency stall plus queue
// drain); the watchdog default leaves three orders of magnitude of
// headroom, so it only trips on genuine livelock.
const (
	DefaultMaxCycles            = 2_000_000_000
	DefaultWatchdogCommitCycles = 1_000_000
)

// Attach registers a probe. All probes observe the same execution.
func (c *CPU) Attach(p Probe) { c.probes = append(c.probes, p) }

// Hierarchy exposes the memory system (for statistics).
func (c *CPU) Hierarchy() *mem.Hierarchy { return c.hier }

// Predictor exposes the branch predictor (for statistics).
func (c *CPU) Predictor() *branch.Predictor { return c.bp }

// Config returns the core configuration.
func (c *CPU) Config() Config { return c.cfg }

// Program returns the program under execution.
func (c *CPU) Program() *program.Program { return c.prog }

// Cycle returns the current cycle number.
func (c *CPU) Cycle() uint64 { return c.cycle }

// RequestSampleOverhead charges the configured per-sample interrupt
// cost to the pipeline; sampling probes call it when they deliver a
// sample to software.
func (c *CPU) RequestSampleOverhead() {
	c.pendingOverhead += c.SampleOverheadCycles
}

// Step advances the core by one cycle and reports whether it is still
// running. Multi-core systems interleave Step calls across cores that
// share a memory system; single-core callers use Run or RunContext.
// When a guard trips (runaway cycle budget, commit watchdog), Step
// latches a typed error — visible via Failure/Err — and returns false.
func (c *CPU) Step() bool {
	if c.err != nil || c.done() {
		return false
	}
	c.cycle++
	if c.cycle > c.MaxCycles {
		c.err = simerr.New(simerr.ErrRunaway, c.snapshot(),
			"program %q exceeded %d cycles", c.prog.Name, c.MaxCycles)
		return false
	}
	if c.cycle-c.lastCommitCycle > c.WatchdogCommitCycles {
		c.err = simerr.New(simerr.ErrDeadlock, c.snapshot(),
			"program %q committed nothing for %d cycles", c.prog.Name, c.WatchdogCommitCycles)
		return false
	}
	if c.pendingOverhead > 0 {
		// The sampling interrupt handler occupies the core; the
		// pipeline makes no progress but the clock advances.
		c.pendingOverhead--
		c.Stats.Cycles++
		return true
	}
	c.commitStage()
	c.executeStage()
	c.issueStage()
	c.dispatchStage()
	c.fetchStage()
	c.Stats.Cycles++
	return true
}

// Finish fires the probes' completion hooks; call it exactly once after
// the last Step. Run does this automatically.
func (c *CPU) Finish() {
	for _, p := range c.probes {
		p.OnDone(c.Stats.Cycles)
	}
}

// Run simulates the program to completion and returns the statistics.
// A guard failure (runaway, deadlock) panics with the typed
// *simerr.Error; public API boundaries (analysis.RunProgramContext,
// the CLIs) recover it. Callers that want the error instead use
// RunContext.
//
//tealint:ctxroot uncancellable convenience entry point: callers with a context use RunContext
func (c *CPU) Run() *Stats {
	stats, err := c.RunContext(context.Background())
	if err != nil {
		//tealint:ignore nakedpanic panic value is the typed *simerr.Error, recovered at API boundaries
		panic(err)
	}
	return stats
}

// RunContext simulates the program to completion, honoring ctx
// cancellation and deadlines, and returns the statistics. On failure —
// cancellation (simerr.ErrCanceled wrapping ctx.Err()), a runaway
// program (simerr.ErrRunaway), or a commit-stage deadlock
// (simerr.ErrDeadlock with a pipeline-state dump) — the probes'
// completion hooks never fire, so no partial profile can be observed
// downstream.
func (c *CPU) RunContext(ctx context.Context) (*Stats, error) {
	// The context is polled every ctxCheckInterval cycles: rarely enough
	// to stay off the hot path, often enough (microseconds of wall
	// clock) that cancellation is prompt.
	const ctxCheckInterval = 4096
	for {
		if c.cycle%ctxCheckInterval == 0 {
			if cause := context.Cause(ctx); cause != nil {
				c.err = simerr.Wrap(simerr.ErrCanceled, c.snapshot(), cause, "run canceled")
				return &c.Stats, c.err
			}
		}
		if !c.Step() {
			break
		}
	}
	if c.err != nil {
		return &c.Stats, c.err
	}
	c.Finish()
	return &c.Stats, nil
}

// Failure returns the typed error that stopped the run, or nil. (A
// typed accessor rather than error so callers can panic with it at
// invariant boundaries without losing the type.)
func (c *CPU) Failure() *simerr.Error { return c.err }

// Err returns the failure as a plain error (nil when the run is
// healthy), for errors.Is/errors.As call sites.
func (c *CPU) Err() error {
	if c.err == nil {
		return nil
	}
	return c.err
}

// snapshot captures the diagnostic state attached to guard failures.
func (c *CPU) snapshot() simerr.Snapshot {
	s := simerr.Snapshot{Program: c.prog.Name, Cycle: c.cycle}
	if c.haveLast {
		s.PC = c.lastRef.PC
		s.Seq = c.lastRef.Seq
	}
	s.Detail = c.pipelineDump()
	return s
}

// pipelineDump renders the pipeline state for deadlock/runaway
// diagnostics: where every in-flight structure stood when the guard
// tripped.
func (c *CPU) pipelineDump() string {
	d := fmt.Sprintf("rob %d/%d", c.rob.len(), c.cfg.ROBEntries)
	if !c.rob.empty() {
		h := c.rob.headUOp()
		d += fmt.Sprintf(" head{seq %d pc %#x op %v dispatched %v issued %v completed %v}",
			h.Seq(), h.PC(), h.Op(), h.dispatched, h.issued, h.completed)
	}
	d += fmt.Sprintf("; iq int/mem/fp %d/%d/%d; lq %d sq %d drain %d; fetchBuf %d",
		len(c.iqInt), len(c.iqMem), len(c.iqFP), len(c.lq), len(c.sq), len(c.drainQ), len(c.fetchBuf))
	d += fmt.Sprintf("; fetchResume %d streamDry %v awaitBranch %v blockDispatch %v lastCommit cycle %d",
		c.fetchResume, c.streamDry, c.awaitBranch != nil, c.blockDispatch != nil, c.lastCommitCycle)
	return d
}

func (c *CPU) done() bool {
	return c.streamDry && c.fetchNext == nil && len(c.fetchBuf) == 0 && c.rob.empty()
}

// ---------------------------------------------------------------------------
// Commit stage

func (c *CPU) commitStage() {
	ci := &c.info
	ci.Cycle = c.cycle
	ci.Committed = ci.Committed[:0]
	ci.Head = Ref{}
	ci.LastCommitted = Ref{}

	switch {
	case c.rob.empty():
		if c.flushActive && c.haveLast {
			ci.State = events.Flushed
			ci.LastCommitted = c.lastRef
		} else {
			ci.State = events.Drained
		}
	default:
		head := c.rob.headUOp()
		if !head.doneAt(c.cycle) {
			ci.State = events.Stalled
			ci.Head = head.Ref()
		} else {
			ci.State = events.Compute
			for len(ci.Committed) < c.cfg.CommitWidth && !c.rob.empty() {
				u := c.rob.headUOp()
				if !u.doneAt(c.cycle) {
					break
				}
				c.rob.pop()
				c.commitUOp(u)
				ci.Committed = append(ci.Committed, u.Ref())
				if u.PSV.Has(events.FLMB) || u.PSV.Has(events.FLEX) || u.PSV.Has(events.FLMO) {
					c.flushActive = true
					c.Stats.Flushes++
				}
				ser := isa.IsSerializing(u.Op())
				if ser {
					c.serializingFlush(u)
				}
				// Stores stay live in the SQ until their post-commit
				// cache write finishes; everything else recycles now.
				if !isa.IsStore(u.Op()) {
					c.retireUOp(u)
				}
				if ser {
					break
				}
			}
		}
	}

	c.Stats.StateCycles[ci.State]++
	for _, p := range c.probes {
		p.OnCycle(ci)
	}
}

func (c *CPU) commitUOp(u *UOp) {
	u.committed = true
	u.CommitCycle = c.cycle
	c.lastCommitCycle = c.cycle
	c.lastRef = u.Ref()
	c.haveLast = true
	c.Stats.Committed++
	if isa.IsStore(u.Op()) {
		c.drainQ = append(c.drainQ, u)
	} else if isa.IsLoad(u.Op()) || u.Op() == isa.OpPrefetch {
		c.lq = removeUOp(c.lq, u)
	}
	if c.blockDispatch == u {
		c.blockDispatch = nil
	}
	c.stream.Release(u.Seq() + 1)
	r := c.lastRef
	for _, p := range c.probes {
		p.OnCommit(r, c.cycle)
	}
}

// retireUOp recycles a committed non-store µop's storage the cycle it
// commits. Its dynamic record was already released from the stream
// buffer, so both the µop shell and the record return to their pools.
func (c *CPU) retireUOp(u *UOp) {
	if d := u.Dyn.Static.Dests(); d != isa.NoReg && d != isa.RegZero && c.lastWriter[d] == u {
		// Equivalent to leaving the pointer: a committed producer always
		// reads as ready, so consumers wired to nil see the same thing.
		c.lastWriter[d] = nil
	}
	if c.awaitBranch == u {
		// fetchStage would resolve the redirect later this same cycle
		// (the branch is provably done); do it here before the storage
		// is recycled.
		c.fetchResume = u.CompleteCycle + c.cfg.RedirectPenalty
		c.awaitBranch = nil
		c.lastLine = invalidLine
	}
	c.stream.RecycleInst(u.Dyn)
	c.freeUOp(u)
}

// allocUOp takes a µop shell from the free list (or allocates one) and
// resets it, preserving the generation counter that guards stale
// dependency pointers.
func (c *CPU) allocUOp(d *emu.Inst) *UOp {
	if n := len(c.freeUOps); n > 0 {
		u := c.freeUOps[n-1]
		c.freeUOps = c.freeUOps[:n-1]
		gen := u.gen
		*u = UOp{Dyn: d, FetchCycle: c.cycle, valueFromSeq: -1, gen: gen}
		return u
	}
	return &UOp{Dyn: d, FetchCycle: c.cycle, valueFromSeq: -1}
}

// freeUOp returns a µop shell to the pool. Bumping the generation here
// makes any pointer still wired to this shell read as "producer
// recycled" immediately, before the storage is reused.
func (c *CPU) freeUOp(u *UOp) {
	u.gen++
	u.Dyn = nil
	c.freeUOps = append(c.freeUOps, u)
}

// serializingFlush implements the pipeline flush a serializing CSR
// instruction performs at commit (the nab case study's fsflags/frflags
// behavior): everything fetched behind it is thrown away and the
// front-end refetches after the redirect penalty.
func (c *CPU) serializingFlush(u *UOp) {
	for _, f := range c.fetchBuf {
		f.squashed = true
		c.Stats.Squashed++
		r := f.Ref()
		for _, p := range c.probes {
			p.OnSquash(r, c.cycle)
		}
		// The dynamic record stays in the stream buffer for re-delivery
		// after the rewind; only the shell recycles.
		c.freeUOp(f)
	}
	c.fetchBuf = c.fetchBuf[:0]
	c.fetchNext = nil
	c.stream.Rewind(u.Seq() + 1)
	c.streamDry = false
	c.awaitBranch = nil
	c.pendDRL1, c.pendDRTLB = false, false
	c.lastLine = invalidLine
	c.fetchResume = c.cycle + c.cfg.RedirectPenalty
}

// ---------------------------------------------------------------------------
// Execute stage: the load/store unit state machines live in lsu.go.

func (c *CPU) executeStage() {
	c.executeStores()
	c.executeLoads()
	c.drainStores()
}

// ---------------------------------------------------------------------------
// Issue stage

func (c *CPU) issueStage() {
	c.iqInt = c.issueFrom(c.iqInt, c.cfg.IntIssueWidth)
	c.iqMem = c.issueFrom(c.iqMem, c.cfg.MemIssueWidth)
	c.iqFP = c.issueFrom(c.iqFP, c.cfg.FPIssueWidth)
}

func (c *CPU) issueFrom(iq []*UOp, width int) []*UOp {
	issued := 0
	out := iq[:0]
	for _, u := range iq {
		if issued >= width || !u.ready(c.cycle) || !c.unitFree(u) {
			out = append(out, u)
			continue
		}
		c.issueUOp(u)
		issued++
	}
	return out
}

func (c *CPU) unitFree(u *UOp) bool {
	switch u.Op() {
	case isa.OpDiv, isa.OpRem:
		return c.divBusyUntil <= c.cycle
	case isa.OpFDiv, isa.OpFSqrt:
		return c.fdivBusyUntil <= c.cycle
	}
	return true
}

func (c *CPU) issueUOp(u *UOp) {
	u.issued = true
	u.IssueCycle = c.cycle
	op := u.Op()
	switch isa.ClassOf(op) {
	case isa.ClassLoad, isa.ClassStore:
		u.aguDone = c.cycle + 1
		if isa.ClassOf(op) == isa.ClassLoad {
			c.pendingLoads = append(c.pendingLoads, u)
		}
	default:
		lat := c.cfg.Latency(op)
		u.completed = true
		u.CompleteCycle = c.cycle + lat
		switch op {
		case isa.OpDiv, isa.OpRem:
			c.divBusyUntil = c.cycle + lat
		case isa.OpFDiv, isa.OpFSqrt:
			c.fdivBusyUntil = c.cycle + lat
		}
	}
}

// ---------------------------------------------------------------------------
// Dispatch stage

func (c *CPU) dispatchStage() {
	if c.blockDispatch != nil {
		return
	}
	for n := 0; n < c.cfg.DecodeWidth; n++ {
		if len(c.fetchBuf) == 0 || c.rob.full() {
			return
		}
		u := c.fetchBuf[0]
		if c.cycle < u.FetchCycle+c.cfg.FrontEndDepth {
			return
		}
		op := u.Op()

		if isa.IsSerializing(op) {
			// Serializing µops dispatch alone: wait for the ROB to
			// drain, then block dispatch until they commit.
			if !c.rob.empty() {
				return
			}
			u.PSV = u.PSV.Set(events.FLEX)
			u.completed = true
			u.CompleteCycle = c.cycle + 1
			c.enterROB(u)
			c.blockDispatch = u
			return
		}

		switch isa.ClassOf(op) {
		case isa.ClassSystem: // nop-like (halt)
			u.completed = true
			u.CompleteCycle = c.cycle + 1
		case isa.ClassALU, isa.ClassMulDiv, isa.ClassBranch:
			if op == isa.OpNop {
				u.completed = true
				u.CompleteCycle = c.cycle + 1
				break
			}
			if len(c.iqInt) >= c.cfg.IntIQEntries {
				return
			}
		case isa.ClassFP, isa.ClassFPDiv:
			if len(c.iqFP) >= c.cfg.FPIQEntries {
				return
			}
		case isa.ClassLoad:
			if len(c.iqMem) >= c.cfg.MemIQEntries || c.lqOccupancy() >= c.cfg.LQEntries {
				return
			}
		case isa.ClassStore:
			if len(c.iqMem) >= c.cfg.MemIQEntries {
				return
			}
			if c.sqOccupancy() >= c.cfg.SQEntries {
				// The Drained commit state this causes is explained by
				// the DR-SQ event on the blocked store (Table 1).
				u.PSV = u.PSV.Set(events.DRSQ)
				return
			}
		}

		c.wireSources(u)
		c.enterROB(u)
		switch isa.ClassOf(op) {
		case isa.ClassALU, isa.ClassMulDiv, isa.ClassBranch:
			if op != isa.OpNop {
				c.iqInt = append(c.iqInt, u)
			}
		case isa.ClassFP, isa.ClassFPDiv:
			c.iqFP = append(c.iqFP, u)
		case isa.ClassLoad:
			c.iqMem = append(c.iqMem, u)
			c.lq = append(c.lq, u)
		case isa.ClassStore:
			c.iqMem = append(c.iqMem, u)
			c.sq = append(c.sq, u)
		}
	}
}

func (c *CPU) wireSources(u *UOp) {
	s1, s2 := u.Dyn.Static.Sources()
	if s1 != isa.NoReg && s1 != isa.RegZero {
		if p := c.lastWriter[s1]; p != nil {
			u.src1, u.src1Gen = p, p.gen
		}
	}
	if s2 != isa.NoReg && s2 != isa.RegZero {
		if p := c.lastWriter[s2]; p != nil {
			u.src2, u.src2Gen = p, p.gen
		}
	}
}

func (c *CPU) enterROB(u *UOp) {
	u.dispatched = true
	u.DispatchCycle = c.cycle
	c.rob.push(u)
	c.fetchBuf = c.fetchBuf[1:]
	if d := u.Dyn.Static.Dests(); d != isa.NoReg && d != isa.RegZero {
		c.lastWriter[d] = u
	}
	c.flushActive = false
	r := u.Ref()
	for _, p := range c.probes {
		p.OnDispatch(r, c.cycle)
	}
}

// lqOccupancy counts live load-queue entries.
func (c *CPU) lqOccupancy() int { return len(c.lq) }

// sqOccupancy counts store-queue entries, lazily freeing stores whose
// post-commit cache write has finished (retired stores).
func (c *CPU) sqOccupancy() int {
	out := c.sq[:0]
	for _, st := range c.sq {
		if st.committed && st.drainStarted && st.drainDone <= c.cycle {
			// The SQ entry was the store's last pipeline reference (it
			// left the drain queue when the cache write started), so its
			// storage recycles here.
			c.stream.RecycleInst(st.Dyn)
			c.freeUOp(st)
			continue
		}
		out = append(out, st)
	}
	c.sq = out
	return len(c.sq)
}

// ---------------------------------------------------------------------------
// Fetch stage

func (c *CPU) fetchStage() {
	if c.awaitBranch != nil {
		br := c.awaitBranch
		if !br.doneAt(c.cycle) {
			return
		}
		c.fetchResume = br.CompleteCycle + c.cfg.RedirectPenalty
		c.awaitBranch = nil
		c.lastLine = invalidLine
	}
	if c.cycle < c.fetchResume {
		return
	}
	hitLat := c.cfg.Mem.L1I.HitLatency
	lineShift := uint(6)
	for lb := c.cfg.Mem.L1I.LineBytes; lb > 64; lb >>= 1 {
		lineShift++
	}
	budget := c.cfg.FetchWidth
	for budget > 0 && len(c.fetchBuf) < c.cfg.FetchBufEntries {
		if c.fetchNext == nil {
			c.fetchNext = c.stream.Next()
			if c.fetchNext == nil {
				c.streamDry = true
				return
			}
		}
		d := c.fetchNext
		line := d.PC >> lineShift
		if line != c.lastLine {
			res := c.hier.Fetch(d.PC, c.cycle)
			c.lastLine = line
			if res.L1Miss {
				c.pendDRL1 = true
			}
			if res.TLBMiss {
				c.pendDRTLB = true
			}
			if res.Done > c.cycle+hitLat {
				// Front-end stall: the instruction is fetched when the
				// line (and translation) arrive.
				c.fetchResume = res.Done
				return
			}
		}

		u := c.allocUOp(d)
		if c.pendDRL1 {
			u.PSV = u.PSV.Set(events.DRL1)
			c.pendDRL1 = false
		}
		if c.pendDRTLB {
			u.PSV = u.PSV.Set(events.DRTLB)
			c.pendDRTLB = false
		}
		switch {
		case isa.IsCondBranch(u.Op()):
			pred, prov := c.bp.Predict(d.PC)
			c.bp.Update(d.PC, prov, pred, d.Taken)
			if pred != d.Taken {
				u.Mispredicted = true
				u.PSV = u.PSV.Set(events.FLMB)
				c.Stats.Mispredicts++
			}
		case u.Op() == isa.OpCall:
			// Push the return index; a bounded stack drops the oldest
			// entry on overflow (deep recursion then mispredicts).
			if len(c.ras) >= rasEntries {
				copy(c.ras, c.ras[1:])
				c.ras = c.ras[:rasEntries-1]
			}
			c.ras = append(c.ras, d.Index+1)
		case u.Op() == isa.OpRet:
			predicted := -1
			if n := len(c.ras); n > 0 {
				predicted = c.ras[n-1]
				c.ras = c.ras[:n-1]
			}
			if predicted != d.NextIndex {
				u.Mispredicted = true
				u.PSV = u.PSV.Set(events.FLMB)
				c.Stats.Mispredicts++
			}
		}
		c.fetchNext = nil
		c.fetchBuf = append(c.fetchBuf, u)
		budget--
		r := u.Ref()
		for _, p := range c.probes {
			p.OnFetch(r, c.cycle)
		}
		if u.Mispredicted {
			// Wrong path: fetch stalls until the branch resolves and
			// the front-end redirects.
			c.awaitBranch = u
			return
		}
		if u.Dyn.IsBranch() && u.Dyn.Taken {
			// Taken branches end the fetch packet. A correctly
			// predicted taken branch still needs its target from the
			// BTB; a tag miss costs a short resteer bubble while the
			// decoder computes the target (returns come from the RAS).
			c.lastLine = invalidLine
			if u.Op() != isa.OpRet && c.cfg.BTBEntries > 0 {
				if c.btb == nil {
					c.btb = make([]uint64, c.cfg.BTBEntries)
				}
				idx := (d.PC >> 2) % uint64(len(c.btb))
				if c.btb[idx] != d.PC {
					c.btb[idx] = d.PC
					c.fetchResume = c.cycle + c.cfg.BTBMissPenalty
					c.Stats.BTBMisses++
				}
			}
			return
		}
	}
}

func removeUOp(list []*UOp, u *UOp) []*UOp {
	out := list[:0]
	for _, x := range list {
		if x != u {
			out = append(out, x)
		}
	}
	return out
}
