package cpu

import (
	"repro/internal/events"
	"repro/internal/isa"
)

// wordOf returns the 8-byte-aligned word address of a memory access;
// forwarding and ordering-violation checks match at word granularity.
func wordOf(addr uint64) uint64 { return addr &^ 7 }

// executeStores processes stores whose address generation completes
// this cycle: the effective address becomes visible to the forwarding
// logic, translation runs (an L1 D-TLB miss sets ST-TLB and delays the
// store's completion), and the ordering-violation check fires against
// younger loads that already obtained a value for the same word.
func (c *CPU) executeStores() {
	// Index-based iteration: a detected violation squashes a suffix of
	// the program-ordered store queue in place, so the slice may shrink
	// while we walk it.
	for i := 0; i < len(c.sq); i++ {
		st := c.sq[i]
		if !st.issued || st.completed || c.cycle < st.aguDone {
			continue
		}
		miss, tdone := c.hier.TranslateData(st.Dyn.MemAddr, st.aguDone)
		if miss {
			st.PSV = st.PSV.Set(events.STTLB)
		}
		st.translated = true
		st.tlbDone = tdone
		st.completed = true
		if tdone > st.aguDone {
			st.CompleteCycle = tdone
		} else {
			st.CompleteCycle = st.aguDone
		}
		c.checkOrderingViolation(st)
	}
}

// checkOrderingViolation finds the oldest younger load that read the
// word st writes before st's address was known — a memory ordering
// violation (FL-MO): the load is replayed and every µop younger than
// the load is squashed and refetched (Section 3).
func (c *CPU) checkOrderingViolation(st *UOp) {
	var victim *UOp
	w := wordOf(st.Dyn.MemAddr)
	for _, ld := range c.lq {
		if ld.Seq() <= st.Seq() || !ld.hasValue || ld.Op() == isa.OpPrefetch {
			continue
		}
		if wordOf(ld.Dyn.MemAddr) != w {
			continue
		}
		if ld.valueFromSeq >= int64(st.Seq()) {
			continue // the load already saw this store's data
		}
		if victim == nil || ld.Seq() < victim.Seq() {
			victim = ld
		}
	}
	if victim == nil {
		return
	}
	c.Stats.Violations++
	victim.PSV = victim.PSV.Set(events.FLMO)
	// Replay the load: it re-executes after the squash and will forward
	// from the now-executed store.
	victim.completed = false
	victim.hasValue = false
	victim.valueFromSeq = -1
	victim.aguDone = c.cycle + 1
	c.pendingLoads = append(c.pendingLoads, victim)
	c.squashYoungerThan(victim)
}

// executeLoads advances the pending-load state machines: address
// generation, translation (ST-TLB), store-to-load forwarding, and the
// cache access (ST-L1/ST-LLC), retrying on MSHR rejection.
func (c *CPU) executeLoads() {
	out := c.pendingLoads[:0]
	for _, ld := range c.pendingLoads {
		if ld.squashed {
			continue
		}
		if !c.tryLoad(ld) {
			out = append(out, ld)
		}
	}
	c.pendingLoads = out
}

// tryLoad attempts to make progress on one load; it reports whether the
// load finished (or no longer needs the pending list).
func (c *CPU) tryLoad(ld *UOp) bool {
	if c.cycle < ld.aguDone {
		return false
	}
	addr := ld.Dyn.MemAddr
	if !ld.translated {
		miss, tdone := c.hier.TranslateData(addr, ld.aguDone)
		if miss {
			ld.PSV = ld.PSV.Set(events.STTLB)
		}
		ld.translated = true
		ld.tlbDone = tdone
	}
	if c.cycle < ld.tlbDone {
		return false
	}

	if ld.Op() == isa.OpPrefetch {
		// Software prefetch: bring the line into the LLC and retire
		// without waiting for the data; retry while the LLC MSHRs are
		// exhausted.
		if !c.hier.PrefetchLLC(addr, c.cycle) {
			return false
		}
		ld.completed = true
		ld.hasValue = true
		ld.CompleteCycle = c.cycle + 1
		return true
	}

	// Store-to-load forwarding: the youngest older store with a known
	// (generated) address to the same word supplies the value. Older
	// stores whose addresses are still unknown are invisible — the load
	// speculates past them, which the violation check may later catch.
	w := wordOf(addr)
	var fwd *UOp
	for _, st := range c.sq {
		if st.Seq() >= ld.Seq() {
			continue
		}
		if !st.issued || c.cycle < st.aguDone {
			continue // address not generated yet: invisible to the LSU
		}
		if wordOf(st.Dyn.MemAddr) != w {
			continue
		}
		if fwd == nil || st.Seq() > fwd.Seq() {
			fwd = st
		}
	}
	if fwd != nil {
		ld.completed = true
		ld.hasValue = true
		ld.valueFromSeq = int64(fwd.Seq())
		ld.CompleteCycle = c.cycle + c.cfg.ForwardLatency
		return true
	}

	res := c.hier.Data(addr, c.cycle, false)
	if res.Rejected {
		return false // L1D MSHRs full: retry next cycle
	}
	if res.L1Miss {
		ld.PSV = ld.PSV.Set(events.STL1)
	}
	if res.LLCMiss {
		ld.PSV = ld.PSV.Set(events.STLLC)
	}
	ld.completed = true
	ld.hasValue = true
	ld.valueFromSeq = -1
	ld.CompleteCycle = res.Done
	return true
}

// drainStores writes committed stores to the memory system in program
// order, initiating at most one store per cycle; a store's SQ entry is
// recycled when its cache write completes, which is what backs up into
// the DR-SQ dispatch stall when store bandwidth is the bottleneck.
func (c *CPU) drainStores() {
	if len(c.drainQ) == 0 {
		return
	}
	st := c.drainQ[0]
	res := c.hier.Data(st.Dyn.MemAddr, c.cycle, true)
	if res.Rejected {
		return // MSHRs full: retry next cycle
	}
	// Initiations are in order, one per cycle. The store deposits its
	// data into the cache (hit) or the MSHR's write buffer (miss) and
	// its SQ entry recycles at hit latency; a miss's line fill proceeds
	// in the background, holding the MSHR. Store bandwidth pressure
	// therefore surfaces as MSHR-full rejections stalling the drain,
	// which backs up into DR-SQ dispatch stalls.
	st.drainStarted = true
	st.drainDone = c.cycle + c.cfg.Mem.L1D.HitLatency
	c.drainQ = c.drainQ[1:]
}

// squashYoungerThan removes every µop younger than keep from the
// pipeline, rewinds the instruction stream to re-deliver them, and
// restarts fetch after the redirect penalty.
func (c *CPU) squashYoungerThan(keep *UOp) {
	seq := keep.Seq()
	removed := c.rob.squashYoungerThan(seq, c.squashScratch[:0])
	c.squashScratch = removed
	for _, u := range removed {
		u.squashed = true
		c.Stats.Squashed++
		r := u.Ref()
		for _, p := range c.probes {
			p.OnSquash(r, c.cycle)
		}
	}
	for _, u := range c.fetchBuf {
		u.squashed = true
		c.Stats.Squashed++
		r := u.Ref()
		for _, p := range c.probes {
			p.OnSquash(r, c.cycle)
		}
	}
	c.fetchNext = nil

	c.iqInt = dropYounger(c.iqInt, seq)
	c.iqMem = dropYounger(c.iqMem, seq)
	c.iqFP = dropYounger(c.iqFP, seq)
	c.lq = dropYounger(c.lq, seq)
	c.sq = dropYounger(c.sq, seq)
	c.pendingLoads = dropYounger(c.pendingLoads, seq)

	// Rebuild the register-writer map from the surviving ROB contents;
	// registers whose last writer was squashed or already committed
	// fall back to the architectural value (ready).
	for i := range c.lastWriter {
		c.lastWriter[i] = nil
	}
	for i := 0; i < c.rob.len(); i++ {
		u := c.rob.at(i)
		if d := u.Dyn.Static.Dests(); d != isa.NoReg && d != isa.RegZero {
			c.lastWriter[d] = u
		}
	}

	if c.awaitBranch != nil && c.awaitBranch.Seq() > seq {
		c.awaitBranch = nil
	}
	if c.blockDispatch != nil && c.blockDispatch.Seq() > seq {
		c.blockDispatch = nil
	}
	c.pendDRL1, c.pendDRTLB = false, false
	c.lastLine = invalidLine
	c.stream.Rewind(seq + 1)
	c.streamDry = false
	c.fetchResume = c.cycle + c.cfg.RedirectPenalty

	// All bookkeeping above is done with the squashed µops still intact;
	// now their shells recycle. The dynamic records stay in the stream
	// buffer — the rewind re-delivers them to fresh shells.
	for _, u := range removed {
		c.freeUOp(u)
	}
	for _, u := range c.fetchBuf {
		c.freeUOp(u)
	}
	c.fetchBuf = c.fetchBuf[:0]
}

func dropYounger(list []*UOp, seq uint64) []*UOp {
	out := list[:0]
	for _, u := range list {
		if u.Seq() <= seq {
			out = append(out, u)
		}
	}
	return out
}
