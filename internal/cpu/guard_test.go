package cpu

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/simerr"
)

// selfLoop builds a program that branches to itself forever — the
// canonical runaway input.
func selfLoop() *program.Program {
	b := program.NewBuilder("self-loop")
	b.Func("main")
	b.Label("spin")
	b.Addi(isa.X(1), isa.X(1), 1)
	b.Jmp("spin")
	b.Halt()
	return b.MustBuild()
}

func countdown() *program.Program {
	b := program.NewBuilder("countdown")
	b.Func("main")
	b.Movi(isa.X(1), 64)
	b.Label("loop")
	b.Addi(isa.X(1), isa.X(1), -1)
	b.Bne(isa.X(1), isa.X(0), "loop")
	b.Halt()
	return b.MustBuild()
}

func TestRunawayReturnsTypedError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 10_000
	c := New(cfg, selfLoop())
	_, err := c.RunContext(context.Background())
	if !errors.Is(err, simerr.ErrRunaway) {
		t.Fatalf("RunContext on a self-loop: err = %v, want ErrRunaway", err)
	}
	var se *simerr.Error
	if !errors.As(err, &se) {
		t.Fatalf("error is not a *simerr.Error: %v", err)
	}
	if se.Snap.Program != "self-loop" || se.Snap.Cycle == 0 {
		t.Errorf("snapshot missing program/cycle: %+v", se.Snap)
	}
	if se.Snap.Detail == "" || !strings.Contains(se.Snap.Detail, "rob") {
		t.Errorf("snapshot missing pipeline dump: %q", se.Snap.Detail)
	}
	// A failed run latches: Step never resumes.
	if c.Step() {
		t.Errorf("Step returned true after a guard failure")
	}
	if !errors.Is(c.Err(), simerr.ErrRunaway) {
		t.Errorf("Err() = %v", c.Err())
	}
}

func TestRunPanicsTypedOnRunaway(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 10_000
	c := New(cfg, selfLoop())
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("Run did not panic on a runaway program")
		}
		se, ok := r.(*simerr.Error)
		if !ok || !errors.Is(se, simerr.ErrRunaway) {
			t.Fatalf("Run panicked with %v, want typed ErrRunaway", r)
		}
	}()
	c.Run()
}

// TestWatchdogDetectsCommitStall pins the forward-progress watchdog:
// with a threshold below a legitimate stall's length, the run ends in
// ErrDeadlock with a pipeline-state dump instead of spinning until
// MaxCycles. (There is no reachable true deadlock on valid programs, so
// the test shrinks the threshold under a normal run's startup gap.)
func TestWatchdogDetectsCommitStall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WatchdogCommitCycles = 2 // below fetch-to-commit latency
	c := New(cfg, countdown())
	_, err := c.RunContext(context.Background())
	if !errors.Is(err, simerr.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	var se *simerr.Error
	if !errors.As(err, &se) || !strings.Contains(se.Snap.Detail, "fetchBuf") {
		t.Errorf("deadlock error missing pipeline dump: %v", err)
	}
}

func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	c := New(DefaultConfig(), countdown())
	stats, err := c.RunContext(context.Background())
	if err != nil {
		t.Fatalf("healthy run failed: %v", err)
	}
	if stats.Committed == 0 {
		t.Errorf("no instructions committed")
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := New(DefaultConfig(), selfLoop())
	_, err := c.RunContext(ctx)
	if !errors.Is(err, simerr.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
}

func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	cfg := DefaultConfig()
	cfg.MaxCycles = 1 << 62 // let the deadline, not the budget, fire
	cfg.WatchdogCommitCycles = 1 << 62
	c := New(cfg, selfLoop())
	start := time.Now()
	_, err := c.RunContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded in the chain", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation not prompt: took %v", elapsed)
	}
}
